// Tests for campaign span tracing: deterministic per-lane nesting, sampling
// cardinality bounds, Chrome trace-event export, and spans.json delivery in
// forensic bundles.
package pmrace_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// checkNesting asserts spans on each lane nest like a call stack: a span
// overlapping a still-open span on its lane must close before it.
func checkNesting(t *testing.T, spans []obs.Span) {
	t.Helper()
	stacks := make(map[int][]obs.Span)
	for _, s := range spans { // Snapshot order: by StartNs, ties by ID
		st := stacks[s.Lane]
		for len(st) > 0 && st[len(st)-1].StartNs+st[len(st)-1].DurNs <= s.StartNs {
			st = st[:len(st)-1]
		}
		if len(st) > 0 {
			top := st[len(st)-1]
			if s.StartNs+s.DurNs > top.StartNs+top.DurNs {
				t.Fatalf("lane %d: span %s [%d,%d] overlaps %s [%d,%d] without nesting",
					s.Lane, s.Name, s.StartNs, s.StartNs+s.DurNs,
					top.Name, top.StartNs, top.StartNs+top.DurNs)
			}
		}
		stacks[s.Lane] = append(st, s)
	}
}

// TestCampaignSpanNesting runs a fully sequential traced campaign and checks
// the span timeline: per-lane nesting holds, every span name is from the
// fixed set, the expected lifecycle stages appear, and the Chrome export
// passes the shape validator.
func TestCampaignSpanNesting(t *testing.T) {
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(25, time.Minute),
		pmrace.WithWorkers(1),
		pmrace.WithThreads(1),
		pmrace.WithMode(pmrace.ModeNone),
		pmrace.WithSeed(7),
		pmrace.WithInlineValidation(),
		pmrace.WithTracing(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for range c.Events() {
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}

	spans := c.Spans()
	if len(spans) == 0 {
		t.Fatal("traced campaign recorded no spans")
	}
	checkNesting(t, spans)

	allowed := make(map[string]bool)
	for _, n := range obs.SpanNames() {
		allowed[n] = true
	}
	seen := make(map[string]int)
	for _, s := range spans {
		if !allowed[s.Name] {
			t.Fatalf("span name %q outside the fixed set", s.Name)
		}
		seen[s.Name]++
	}
	for _, want := range []string{obs.SpanCampaign, obs.SpanSeedPick, obs.SpanExecRun, obs.SpanConflictAnalysis} {
		if seen[want] == 0 {
			t.Fatalf("no %s span recorded (saw %v)", want, seen)
		}
	}
	if seen[obs.SpanCampaign] != 1 {
		t.Fatalf("recorded %d campaign spans, want 1", seen[obs.SpanCampaign])
	}

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("campaign export fails the trace-event validator: %v", err)
	}
}

// TestCampaignSpanSampling checks the default-off and sampled contracts: an
// untraced campaign records nothing (and WriteTrace refuses), and a sampled
// campaign records far fewer exec_run spans than executions.
func TestCampaignSpanSampling(t *testing.T) {
	run := func(opts ...pmrace.CampaignOption) *pmrace.Campaign {
		base := []pmrace.CampaignOption{
			pmrace.WithBudget(40, time.Minute),
			pmrace.WithWorkers(1),
			pmrace.WithThreads(1),
			pmrace.WithMode(pmrace.ModeNone),
			pmrace.WithSeed(7),
			pmrace.WithInlineValidation(),
		}
		c, err := pmrace.NewCampaign(context.Background(), "pclht", append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for range c.Events() {
		}
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		return c
	}

	plain := run()
	if plain.Spans() != nil {
		t.Fatal("tracing must be off by default")
	}
	if err := plain.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace on an untraced campaign must error")
	}

	sampled := run(pmrace.WithTracing(8))
	res, _ := sampled.Wait()
	execSpans := 0
	for _, s := range sampled.Spans() {
		if s.Name == obs.SpanExecRun {
			execSpans++
		}
	}
	if execSpans == 0 {
		t.Fatal("sampled campaign recorded no exec_run spans")
	}
	if execSpans > res.Execs/2 {
		t.Fatalf("sampling rate 8 recorded %d exec_run spans over %d execs", execSpans, res.Execs)
	}
}

// TestCampaignBundleSpans checks every forensic bundle of a traced campaign
// carries spans.json with the flight-recorder snapshot at bundle time.
func TestCampaignBundleSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("full fuzzing loop")
	}
	dir := t.TempDir()
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(60, time.Minute),
		pmrace.WithWorkers(2),
		pmrace.WithSeed(7),
		pmrace.WithKeySpace(12),
		pmrace.WithOpsPerSeed(40),
		pmrace.WithArtifacts(dir),
		pmrace.WithTracing(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for range c.Events() {
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bugs) == 0 {
		t.Fatal("campaign found no bugs, cannot test bundle spans")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bundles := 0
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "anomalies" {
			continue
		}
		bundles++
		path := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(path, artifact.SpansFile)); err != nil {
			t.Fatalf("bundle %s has no %s: %v", e.Name(), artifact.SpansFile, err)
		}
		b, err := artifact.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Spans) == 0 {
			t.Fatalf("bundle %s: spans.json is empty for a traced campaign", e.Name())
		}
	}
	if bundles == 0 {
		t.Fatalf("no bundles written for %d bugs", len(res.Bugs))
	}
}
