// Package api is the versioned wire contract of the pmraced control plane.
//
// Every document that crosses the REST boundary — campaign specifications,
// campaign snapshots, bug summaries, artifact listings, error envelopes — is
// defined here once and consumed by both sides: internal/serve marshals these
// types out of the server and package client unmarshals them back, so the
// two cannot drift. The in-process session API shares the same lifecycle
// enum (pmrace.CampaignState is an alias of State), which keeps the REST
// `state` field and Campaign.State() spelling-identical.
//
// # Versioning policy
//
// The contract is versioned by URL prefix (BasePath, currently /api/v1).
// Within a version, changes are strictly additive: new optional request
// fields (absent means default), new response fields (clients must ignore
// unknown fields — encoding/json does), new endpoints. Renaming or removing
// a field, changing a field's type or semantics, or changing an error code
// requires a new version prefix served alongside the old one. Error
// responses always carry an Error envelope with a machine-readable Code;
// codes are append-only.
//
// # Endpoints (v1)
//
//	GET    /api/v1                          server info (ServerInfo)
//	GET    /api/v1/campaigns                list campaigns ([]Campaign)
//	POST   /api/v1/campaigns                submit (CampaignSpec -> Campaign)
//	GET    /api/v1/campaigns/{id}           one campaign (Campaign)
//	DELETE /api/v1/campaigns/{id}           cancel (Campaign)
//	GET    /api/v1/campaigns/{id}/events    Server-Sent Events stream
//	GET    /api/v1/campaigns/{id}/artifacts bundle listing ([]ArtifactInfo)
//	GET    /api/v1/campaigns/{id}/artifacts/{name}  one bundle (ArtifactBundle)
//	GET    /api/v1/campaigns/{id}/trace     span timeline (Chrome trace-event JSON)
//
// The SSE stream frames events exactly like a single campaign's /events
// endpoint: `event:` carries the kind, `id:` the emitter sequence number and
// `data:` the JSONL envelope ({kind, seq, at_ms, data}); obs.DecodeEvent
// rebuilds the typed event from (kind, data).
package api

import (
	"fmt"
	"time"

	"github.com/pmrace-go/pmrace/internal/obs"
)

// Version is the current API version; BasePath prefixes every endpoint.
const (
	Version  = "v1"
	BasePath = "/api/" + Version
)

// Stats is the live statistics snapshot embedded in Campaign documents; it
// is the same document a single campaign's /status endpoint serves.
type Stats = obs.Stats

// Event is one typed campaign event, as streamed over SSE and decoded by
// obs.DecodeEvent.
type Event = obs.Event

// State is the campaign lifecycle. It is shared verbatim between the
// in-process API (pmrace.Campaign.State) and the REST `state` field.
type State string

// The campaign lifecycle. In-process campaigns start immediately, so they
// are born Running; under pmraced a campaign is Pending while queued for
// worker-budget headroom.
const (
	// StatePending: accepted, waiting for worker budget.
	StatePending State = "pending"
	// StateRunning: fuzzing workers are executing.
	StateRunning State = "running"
	// StateDraining: cancellation requested; in-flight executions are
	// finishing and partial results are being persisted.
	StateDraining State = "draining"
	// StateDone: budget exhausted, results final.
	StateDone State = "done"
	// StateCancelled: cancelled before budget exhaustion; partial results
	// are final.
	StateCancelled State = "cancelled"
	// StateFailed: the campaign aborted with an error (see Campaign.Error).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final: no further transitions.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// CampaignSpec is the submit request: what to fuzz and with which budget.
// Zero values select the engine's evaluation defaults (the same defaults the
// functional options leave in place), except Workers, which pmraced defaults
// to 1 so a spec's cost against the shared worker budget is explicit.
type CampaignSpec struct {
	// Target is the registered PM system to fuzz. Required.
	Target string `json:"target"`
	// Mode selects exploration: "pmrace" (default), "delay" or "none".
	Mode string `json:"mode,omitempty"`
	// Workers is the number of fuzzing workers, charged against the
	// server's worker budget for the campaign's lifetime (default 1).
	Workers int `json:"workers,omitempty"`
	// Threads is the driver-thread count per execution (default 4).
	Threads int `json:"threads,omitempty"`
	// MaxExecs / Duration bound the campaign (defaults 200 / 30s);
	// whichever is hit first ends it. Duration is nanoseconds on the wire.
	MaxExecs int           `json:"max_execs,omitempty"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Seed fixes all campaign randomness for reproducibility.
	Seed int64 `json:"seed,omitempty"`
	// KeySpace / OpsPerSeed shape the generated workload.
	KeySpace   int `json:"key_space,omitempty"`
	OpsPerSeed int `json:"ops_per_seed,omitempty"`
	// Protocol fuzzes through memcached text-protocol byte streams instead
	// of synthetic operation vectors (the wire front-end mode).
	Protocol bool `json:"protocol,omitempty"`
	// MaxCrashStates caps crash states validated per finding.
	MaxCrashStates int `json:"max_crash_states,omitempty"`
	// InlineValidation validates findings synchronously on the discovering
	// worker, keeping a single-worker campaign's event stream
	// deterministic.
	InlineValidation bool `json:"inline_validation,omitempty"`
	// EADR models battery-backed caches; NoCheckpoints disables in-memory
	// pool checkpoints.
	EADR          bool `json:"eadr,omitempty"`
	NoCheckpoints bool `json:"no_checkpoints,omitempty"`
	// Artifacts requests a forensic bundle per confirmed bug, fetchable
	// through the artifacts endpoints; ArtifactsAll extends that to every
	// judged finding.
	Artifacts    bool `json:"artifacts,omitempty"`
	ArtifactsAll bool `json:"artifacts_all,omitempty"`
	// TraceSample overrides the server's span-sampling rate for this
	// campaign: 0 keeps the server default, N>0 samples every Nth
	// execution's spans, negative disables tracing entirely.
	TraceSample int `json:"trace_sample,omitempty"`
}

// Campaign is one campaign as the control plane reports it.
type Campaign struct {
	// ID is the server-assigned campaign identifier.
	ID   string       `json:"id"`
	Spec CampaignSpec `json:"spec"`
	// State is the lifecycle state; Error is set when State is "failed".
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Created/Started/Finished stamp the lifecycle transitions; Started
	// and Finished are zero while the campaign has not reached them.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// Stats is the live snapshot (terminal campaigns: the final one).
	Stats Stats `json:"stats"`
	// Bugs lists confirmed bugs once the campaign is terminal. Bugs whose
	// fingerprint an earlier campaign on the same target already reported
	// are flagged Duplicate by the shared cross-campaign dedup store.
	Bugs []Bug `json:"bugs,omitempty"`
	// ArtifactCount is the number of forensic bundles written so far.
	ArtifactCount int `json:"artifact_count,omitempty"`
}

// Bug is one confirmed bug in a campaign's inventory.
type Bug struct {
	// Fingerprint is the cross-process bug identity (the same string
	// artifact bundles and replay match on).
	Fingerprint string `json:"fingerprint"`
	// Kind is "inter", "intra" or "sync".
	Kind string `json:"kind"`
	// Site is the grouping site (dirty store site, or sync-update site).
	Site string `json:"site"`
	// Summary is the one-line human report.
	Summary string `json:"summary"`
	// Duplicate marks a bug first reported by an earlier campaign on the
	// same target (FirstReportedBy names it).
	Duplicate       bool   `json:"duplicate,omitempty"`
	FirstReportedBy string `json:"first_reported_by,omitempty"`
}

// ServerInfo is the GET /api/v1 document.
type ServerInfo struct {
	Version string `json:"version"`
	// Targets lists the registered PM systems this server can fuzz.
	Targets []string `json:"targets"`
	// WorkerBudget / WorkersInUse describe the shared execution capacity.
	WorkerBudget int `json:"worker_budget"`
	WorkersInUse int `json:"workers_in_use"`
	// Campaigns counts campaigns the server currently tracks (all states).
	Campaigns int `json:"campaigns"`
	// Draining reports a server in graceful shutdown: submissions are
	// rejected, running campaigns are finishing.
	Draining bool `json:"draining"`
}

// ArtifactInfo is one row of a campaign's bundle listing.
type ArtifactInfo struct {
	// Name is the bundle directory name ("0001-inter", ...), the handle
	// the fetch endpoint takes.
	Name string `json:"name"`
	// Fingerprint/Kind/Status summarize the bundle's bug.json.
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`
	Status      string `json:"status"`
}

// ArtifactBundle is a fetched forensic bundle: the five bundle documents in
// one envelope. Bug/Schedule/Trace/PMDiff are the verbatim JSON documents
// (internal/artifact's schemas, themselves versioned by bug.json's `schema`
// field); Seed is the plain-text seed.
type ArtifactBundle struct {
	Bug      map[string]any `json:"bug"`
	Seed     string         `json:"seed"`
	Schedule map[string]any `json:"schedule,omitempty"`
	Trace    []any          `json:"trace,omitempty"`
	PMDiff   []any          `json:"pmdiff,omitempty"`
	// Spans is the campaign span snapshot captured when the bundle was
	// written (spans.json); empty when the campaign ran untraced.
	Spans []any `json:"spans,omitempty"`
}

// Error codes. Append-only; clients switch on Code, not Message.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownTarget = "unknown_target"
	CodeNotFound      = "not_found"
	CodeConflict      = "conflict"
	CodeDraining      = "draining"
	CodeInternal      = "internal"
)

// Error is the JSON error envelope every non-2xx response carries, and the
// error type the client returns for API-level failures.
type Error struct {
	// StatusCode is the HTTP status (transport detail, not serialized).
	StatusCode int `json:"-"`
	// Code is the machine-readable error class.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("pmraced: %s (%s)", e.Message, e.Code)
}

// IsCode reports whether err is an *Error with the given code.
func IsCode(err error, code string) bool {
	ae, ok := err.(*Error)
	return ok && ae.Code == code
}
