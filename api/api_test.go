package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StatePending: false, StateRunning: false, StateDraining: false,
		StateDone: true, StateCancelled: true, StateFailed: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, !want, want)
		}
	}
}

func TestIsCode(t *testing.T) {
	err := error(&Error{StatusCode: 404, Code: CodeNotFound, Message: "no campaign"})
	if !IsCode(err, CodeNotFound) || IsCode(err, CodeConflict) {
		t.Fatalf("IsCode misclassifies %v", err)
	}
	if IsCode(errors.New("plain"), CodeNotFound) {
		t.Fatal("IsCode matched a non-API error")
	}
	if want := "pmraced: no campaign (not_found)"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// TestSpecWireFormat pins the v1 field names: renaming one is a breaking
// change requiring a new version prefix, so this test failing means the
// contract was broken, not that it should be updated casually.
func TestSpecWireFormat(t *testing.T) {
	raw, err := json.Marshal(CampaignSpec{
		Target: "pclht", Mode: "none", Workers: 2, Threads: 1,
		MaxExecs: 10, Duration: time.Second, Seed: 7, KeySpace: 8,
		OpsPerSeed: 4, MaxCrashStates: 2, InlineValidation: true,
		EADR: true, NoCheckpoints: true, Artifacts: true, ArtifactsAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"target":"pclht"`, `"mode":"none"`, `"workers":2`, `"threads":1`,
		`"max_execs":10`, fmt.Sprintf(`"duration_ns":%d`, time.Second),
		`"seed":7`, `"key_space":8`, `"ops_per_seed":4`,
		`"max_crash_states":2`, `"inline_validation":true`, `"eadr":true`,
		`"no_checkpoints":true`, `"artifacts":true`, `"artifacts_all":true`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("spec wire form missing %s: %s", field, raw)
		}
	}
}
