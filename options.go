package pmrace

import (
	"io"
	"time"

	"github.com/pmrace-go/pmrace/internal/obs"
)

// CampaignOption configures a campaign created with NewCampaign. The
// functional options cover the public surface; zero values select the
// evaluation defaults, consolidated in one place (fuzz.Options
// withDefaults), so documentation and behaviour cannot drift.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	opts             Options
	sinks            []obs.Sink
	progress         io.Writer
	progressInterval time.Duration
	eventBuf         int
	httpAddr         string
	traceSample      int
}

// WithOptions replaces the whole legacy Options struct at once.
//
// Deprecated: every Options knob now has a dedicated functional option (see
// the option table in README.md); compose those instead. WithOptions
// remains only for configurations assembled as a struct before the
// functional-options API, and it composes badly: it overwrites every knob
// set by options that appear before it.
func WithOptions(opts Options) CampaignOption {
	return func(c *campaignConfig) { c.opts = opts }
}

// WithWorkers sets the number of concurrent fuzzing workers.
func WithWorkers(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.Workers = n }
}

// WithThreads sets the number of driver threads per execution.
func WithThreads(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.Threads = n }
}

// WithMode selects the interleaving exploration strategy.
func WithMode(m ExploreMode) CampaignOption {
	return func(c *campaignConfig) { c.opts.Mode = m }
}

// WithBudget bounds the campaign: maxExecs executions or wall of elapsed
// time, whichever is hit first. A zero value leaves that bound at its
// default (200 executions / 30s).
func WithBudget(maxExecs int, wall time.Duration) CampaignOption {
	return func(c *campaignConfig) {
		c.opts.MaxExecs = maxExecs
		c.opts.Duration = wall
	}
}

// WithSeed seeds all campaign randomness for reproducibility.
func WithSeed(seed int64) CampaignOption {
	return func(c *campaignConfig) { c.opts.Seed = seed }
}

// WithKeySpace sets the workload key-space size.
func WithKeySpace(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.KeySpace = n }
}

// WithOpsPerSeed sets the operation count of generated seeds.
func WithOpsPerSeed(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.OpsPerSeed = n }
}

// WithCorpusDir loads the initial corpus from dir and persists
// coverage-improving seeds back into it.
func WithCorpusDir(dir string) CampaignOption {
	return func(c *campaignConfig) { c.opts.CorpusDir = dir }
}

// WithProtocolTraffic switches the campaign's workload from synthetic
// operation vectors to real memcached text-protocol byte streams: seeds are
// per-connection byte streams (with pipelining, malformed frames and
// mid-request crash points) parsed by the wire front-end, and the parsed
// commands enter the target through the same dispatch as synthetic
// operations, so bug fingerprints are shared between the two modes (see
// DESIGN.md §16).
func WithProtocolTraffic() CampaignOption {
	return func(c *campaignConfig) { c.opts.Protocol = true }
}

// WithEADR models battery-backed caches (paper §6.6).
func WithEADR() CampaignOption {
	return func(c *campaignConfig) { c.opts.EADR = true }
}

// WithoutCheckpoints disables the in-memory pool checkpoints (Figure 10's
// ablation).
func WithoutCheckpoints() CampaignOption {
	return func(c *campaignConfig) { c.opts.NoCheckpoints = true }
}

// WithMutator overrides the default operation mutator.
func WithMutator(m Mutator) CampaignOption {
	return func(c *campaignConfig) { c.opts.Mutator = m }
}

// WithWhitelist adds developer-specified benign patterns on top of the
// default (mini-PMDK transactional allocation).
func WithWhitelist(entries ...string) CampaignOption {
	return func(c *campaignConfig) {
		c.opts.ExtraWhitelist = append(c.opts.ExtraWhitelist, entries...)
	}
}

// WithSink attaches an event sink (JSONL trace writer, progress line,
// collector, ...). Sinks receive every event synchronously and never drop.
func WithSink(s Sink) CampaignOption {
	return func(c *campaignConfig) { c.sinks = append(c.sinks, s) }
}

// WithJSONTrace streams the campaign's event trace to w as JSON lines, one
// event per line.
func WithJSONTrace(w io.Writer) CampaignOption {
	return WithSink(obs.NewJSONLSink(w))
}

// WithProgress renders a 1 Hz human status line (execs, execs/s, coverage,
// bugs) to w while the campaign runs.
func WithProgress(w io.Writer) CampaignOption {
	return func(c *campaignConfig) { c.progress = w }
}

// WithProgressInterval adjusts the progress-line refresh interval (mostly
// for tests; the default is one second).
func WithProgressInterval(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.progressInterval = d }
}

// WithEventBuffer sets the Events() channel capacity (default 4096). When
// the consumer falls behind, the oldest buffered event is shed — sinks are
// the lossless path.
func WithEventBuffer(n int) CampaignOption {
	return func(c *campaignConfig) { c.eventBuf = n }
}

// WithHTTPAddr serves live campaign introspection on addr (":0" picks a free
// port; Campaign.HTTPAddr returns the bound address): Prometheus /metrics,
// /status snapshots, an SSE /events stream, /healthz and /debug/pprof. The
// server lives for the campaign's duration.
func WithHTTPAddr(addr string) CampaignOption {
	return func(c *campaignConfig) { c.httpAddr = addr }
}

// WithTracing enables span tracing: the campaign records a timeline of
// supervisor, worker, validation and crash-enumeration spans into a bounded
// flight recorder, exports it as Chrome trace-event JSON (Perfetto-viewable
// via the introspection server's /trace endpoint or `pmrace trace`), and
// dumps the recorder on anomalies. sampleN selects which executions record
// per-exec spans (every Nth; campaign-level and validation spans are always
// on); sampleN <= 0 picks the default rate (every 8th execution).
func WithTracing(sampleN int) CampaignOption {
	return func(c *campaignConfig) {
		if sampleN <= 0 {
			sampleN = obs.DefaultTraceSample
		}
		c.traceSample = sampleN
	}
}

// WithHangTimeout bounds each thread's lock acquisition during pre-failure
// execution; a thread exceeding it is declared hung (default 80ms,
// simulation-scaled from the paper's timings).
func WithHangTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.opts.HangTimeout = d }
}

// WithRedundantThreshold sets the dynamic-occurrence count above which a
// redundant-store site is reported as an "Other" finding (default 100).
func WithRedundantThreshold(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.RedundantThreshold = n }
}

// WithExecsPerInterleaving sets the execution-tier repetition count: how
// many times each seed (and each scheduled interleaving) is executed
// (default 2).
func WithExecsPerInterleaving(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.ExecsPerInterleaving = n }
}

// WithMaxInterleavingsPerSeed bounds how many interleaving-tier queue
// entries are scheduled per seed iteration (default 6).
func WithMaxInterleavingsPerSeed(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.MaxInterleavingsPerSeed = n }
}

// WithoutInterleavingTier ablates interleaving-tier exploration ("w/o IE",
// Figure 9).
func WithoutInterleavingTier() CampaignOption {
	return func(c *campaignConfig) { c.opts.DisableInterleavingTier = true }
}

// WithoutSeedTier ablates seed-tier evolution ("w/o SE", Figure 9): the
// corpus never grows beyond the initial seeds.
func WithoutSeedTier() CampaignOption {
	return func(c *campaignConfig) { c.opts.DisableSeedTier = true }
}

// WithMaxCrashStates caps the crash states enumerated and validated per
// finding. The default (1) reproduces the paper's single-adversarial-image
// validation; higher values add the persisted-only baseline and one state
// per flushed-but-unfenced cache line, and a finding is a bug if any
// enumerated state fails recovery.
func WithMaxCrashStates(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.MaxCrashStates = n }
}

// WithValidationWorkers sizes the asynchronous post-failure validation pool
// (default 2): findings queue to it instead of stalling the fuzzing workers
// during recovery runs.
func WithValidationWorkers(n int) CampaignOption {
	return func(c *campaignConfig) { c.opts.ValidationWorkers = n }
}

// WithValidationWallTimeout bounds each recovery run's wall-clock time in
// post-failure validation. Recovery exceeding it — an uninstrumented spin, a
// sleep, a runaway loop the spin-lock hang detector cannot see — is abandoned
// and judged a bug with RecoveryHung.
func WithValidationWallTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.opts.ValidationWallTimeout = d }
}

// WithInlineValidation validates findings synchronously on the fuzzing worker
// that discovered them instead of the asynchronous pool, keeping the event
// stream deterministic for single-worker campaigns (at the cost of stalling
// the worker during recovery runs).
func WithInlineValidation() CampaignOption {
	return func(c *campaignConfig) { c.opts.InlineValidation = true }
}

// WithAliasHints seeds the interleaving queue with statically inferred
// load/store alias pairs (from `pmvet -alias`, loaded via LoadAliasHints).
// Queue entries whose observed sites cover a hinted pair are explored
// before any purely dynamically prioritized entry.
func WithAliasHints(hints []AliasHint) CampaignOption {
	return func(c *campaignConfig) { c.opts.AliasHints = hints }
}

// WithArtifacts writes a forensic bundle — bug report with taint lineage,
// finding seed, interleaving schedule, PM access trace and dirty-word diff —
// into a numbered subdirectory of dir for every confirmed bug. Bundles
// replay with `pmrace -artifact <bundle>`.
func WithArtifacts(dir string) CampaignOption {
	return func(c *campaignConfig) { c.opts.ArtifactDir = dir }
}

// WithAllArtifacts extends WithArtifacts to every deduplicated finding,
// including validated and whitelisted false positives — the forensic mode
// for auditing the validator itself. It requires WithArtifacts: a campaign
// configured with WithAllArtifacts but no artifact directory fails at start
// rather than silently dropping the bundles.
func WithAllArtifacts() CampaignOption {
	return func(c *campaignConfig) { c.opts.ArtifactAll = true }
}
