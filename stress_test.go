// Race stress tests for the lock-free and striped hot-path structures: the
// coverage bitmap, the site registry (shared and per-thread-cached paths)
// and the striped pmem pool, each hammered from 8 goroutines. Run under the
// race detector (`go test -race -run HotPathRace`); CI does.
package pmrace_test

import (
	"context"
	"sync"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

const stressGoroutines = 8

// TestHotPathRaceBitmap hammers Bitmap.Set and Merge concurrently with
// overlapping hash ranges so every word sees CAS contention.
func TestHotPathRaceBitmap(t *testing.T) {
	global := cover.NewBitmap()
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := cover.NewBitmap()
			for i := 0; i < 20000; i++ {
				// Overlapping ranges: every goroutine revisits hashes
				// its neighbours set.
				h := cover.EdgeHash(uint32(i%4096), uint32(g%3))
				local.Set(h)
				global.Set(h)
				if i%512 == 0 {
					global.Merge(local)
					global.Count()
				}
			}
			global.Merge(local)
		}(g)
	}
	wg.Wait()
	if global.Count() == 0 {
		t.Fatal("no coverage recorded")
	}
}

// TestHotPathRaceSites hammers the registry's copy-on-write publication from
// concurrent Here calls plus per-goroutine caches, checking all goroutines
// resolve one call site to one ID.
func TestHotPathRaceSites(t *testing.T) {
	ids := make([]site.ID, stressGoroutines)
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := site.NewCache()
			var last site.ID
			for i := 0; i < 20000; i++ {
				last = c.Here(0)
				if i%64 == 0 {
					site.Here(0) // uncached registry path
					site.Lookup(last)
				}
			}
			ids[g] = last
		}(g)
	}
	wg.Wait()
	for g := 1; g < stressGoroutines; g++ {
		if ids[g] != ids[0] {
			t.Fatalf("goroutine %d resolved site %v, goroutine 0 resolved %v", g, ids[g], ids[0])
		}
	}
}

// TestHotPathRacePool hammers the striped pool: overlapping loads, stores,
// flush/fence cycles, CAS and accessor swaps from 8 simulated threads while
// another goroutine interleaves the whole-pool operations (Snapshot,
// CrashImage, Restore) that take the writer-preference guard exclusively.
func TestHotPathRacePool(t *testing.T) {
	const poolSize = 1 << 16
	p := pmem.New(poolSize)
	snap := p.Snapshot()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tid := pmem.ThreadID(g)
			st := uint32(g + 1)
			for i := 0; i < 8000; i++ {
				// Rotate through lines so stripes contend and spans
				// sometimes straddle two lines.
				addr := pmem.Addr((i*56 + g*8) % (poolSize - 64))
				switch i % 7 {
				case 0:
					p.Store64(tid, st, addr, uint64(i))
				case 1:
					p.Load64(addr)
					p.WordState(addr)
				case 2:
					p.Flush(tid, addr, 16)
					p.Fence(tid)
				case 3:
					p.CAS64(tid, st, addr, 0, uint64(g))
				case 4:
					p.SwapAccessor(addr, pmem.Accessor{Site: st, Thread: tid, Valid: true})
					p.ShadowLabel(addr)
				case 5:
					p.InstrStore64(tid, st, addr, uint64(i), uint32(g))
				case 6:
					p.InstrLoad64(tid, st, addr)
				}
			}
		}(g)
	}
	// Whole-pool operations racing the striped fast paths.
	var imgWG sync.WaitGroup
	imgWG.Add(1)
	go func() {
		defer imgWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			img := p.CrashImage()
			pmem.RecycleImage(img)
			p.Snapshot()
		}
	}()
	wg.Wait()
	close(done)
	imgWG.Wait()
	p.Restore(snap)
	if got := p.Load64(0); got != 0 {
		t.Fatalf("restored pool word 0 = %d, want 0", got)
	}
}

// TestHotPathRaceCampaignCancel hammers the campaign observability path
// under the race detector: 8 fuzzing workers emitting events through the
// shared emitter, a consumer draining the subscriber channel, concurrent
// Snapshot callers, and a mid-run context cancellation that must stop every
// worker within one execution.
func TestHotPathRaceCampaignCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := pmrace.NewCampaign(ctx, "pclht",
		pmrace.WithBudget(1<<30, time.Hour),
		pmrace.WithWorkers(stressGoroutines),
		pmrace.WithSeed(9),
		pmrace.WithSink(pmrace.NewCollector()),
		pmrace.WithEventBuffer(64), // small ring: exercise drop-oldest shedding
	)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent snapshot readers racing the workers.
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Snapshot()
			}
		}()
	}

	// Cancel once a handful of executions have flowed through the stream.
	execs := 0
	for ev := range c.Events() {
		if _, ok := ev.(*pmrace.ExecDone); ok {
			if execs++; execs == 5 {
				cancel()
			}
		}
	}
	res, err := c.Wait()
	close(stop)
	snapWG.Wait()
	if err != nil {
		t.Fatalf("cancelled campaign returned error: %v", err)
	}
	if res.Execs < 5 {
		t.Fatalf("campaign stopped after %d execs, want >= 5", res.Execs)
	}
}
