module github.com/pmrace-go/pmrace

go 1.22
