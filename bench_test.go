// Benchmarks regenerating each table and figure of the paper's evaluation
// (§6). Every benchmark runs the corresponding experiment harness at a
// reduced budget and reports the headline quantities as custom metrics; the
// full-budget rows printed in EXPERIMENTS.md come from `go run
// ./cmd/pmexperiments -all`. Run with:
//
//	go test -bench=. -benchmem
package pmrace_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/experiments"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/sched"
)

// benchConfig is a reduced-budget configuration so one benchmark iteration
// stays in the seconds range.
func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.ExecsPerTarget = 16
	cfg.Workers = 2
	return cfg
}

// BenchmarkTable2UniqueBugs regenerates Tables 2 and 5: fuzz every system
// with PM-aware exploration and count unique bugs per type.
func BenchmarkTable2UniqueBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd, err := experiments.RunBugDetection(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, row := range bd.Table5() {
			total += row.Total
		}
		b.ReportMetric(float64(total), "unique-bugs")
		if i == 0 {
			b.Log("\n" + bd.Table2() + "\n" + bd.Table5String())
		}
	}
}

// BenchmarkTable3FalsePositives regenerates Tables 3 and 6: candidates,
// confirmed inconsistencies and post-failure verdicts per system.
func BenchmarkTable3FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd, err := experiments.RunBugDetection(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var inter, fps float64
		for _, row := range bd.Table3() {
			inter += float64(row.Inter)
			fps += float64(row.ValidatedFP + row.WhitelistedFP)
		}
		b.ReportMetric(inter, "inter-inconsistencies")
		b.ReportMetric(fps, "false-positives")
		if i == 0 {
			b.Log("\n" + bd.Table3String())
		}
	}
}

// BenchmarkTable4MutatorCoverage regenerates Table 4: memcached command
// coverage under the AFL++-style byte mutator vs PMRace's operation mutator.
func BenchmarkTable4MutatorCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Commands["AFL++"]["Error"]), "aflpp-error-cmds")
		b.ReportMetric(float64(res.Commands["PMRace"]["Error"]), "pmrace-error-cmds")
		b.ReportMetric(float64(res.Branch["PMRace"]), "pmrace-branch-cov")
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure8ExplorationTime regenerates Figure 8: the time to identify
// PM Inter-thread Inconsistencies under PMRace vs random delay injection.
func BenchmarkFigure8ExplorationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFigure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var pmraceHits, delayHits float64
		for _, s := range series {
			if s.Scheme == "PMRace" {
				pmraceHits += float64(len(s.Times))
			} else {
				delayHits += float64(len(s.Times))
			}
		}
		b.ReportMetric(pmraceHits, "pmrace-detections")
		b.ReportMetric(delayHits, "delayinj-detections")
		if i == 0 {
			b.Log("\n" + experiments.Figure8String(series))
		}
	}
}

// BenchmarkFigure9TierAblation regenerates Figure 9: P-CLHT coverage with
// the full fuzzer, without interleaving-tier and without seed-tier
// exploration.
func BenchmarkFigure9TierAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.RunFigure9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			switch s.Variant {
			case "PMRace":
				b.ReportMetric(float64(s.Branch+s.Alias), "full-coverage")
			case "w/o IE":
				b.ReportMetric(float64(s.Branch+s.Alias), "no-ie-coverage")
			case "w/o SE":
				b.ReportMetric(float64(s.Branch+s.Alias), "no-se-coverage")
			}
		}
		if i == 0 {
			b.Log("\n" + experiments.Figure9String(series))
		}
	}
}

// BenchmarkFigure10Checkpoints regenerates Figure 10: input-generation
// throughput with and without in-memory pool checkpoints.
func BenchmarkFigure10Checkpoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.ExecsPerTarget = 12
		rows, err := experiments.RunFigure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var pmdkSpeedup, memcachedSpeedup float64
		var pmdkN float64
		for _, r := range rows {
			if r.System == "memcached-pmem" {
				memcachedSpeedup += r.Speedup() / 2
			} else {
				pmdkSpeedup += r.Speedup()
				pmdkN++
			}
		}
		b.ReportMetric(pmdkSpeedup/pmdkN, "pmdk-cp-speedup")
		b.ReportMetric(memcachedSpeedup, "memcached-cp-speedup")
		if i == 0 {
			b.Log("\n" + experiments.Figure10String(rows))
		}
	}
}

// BenchmarkFuzzThroughput measures raw campaign-execution throughput on
// P-CLHT (the engine the evaluation's wall-clock numbers stand on) across
// worker counts. The PM-aware strategy stalls writers to open race windows,
// so even on few cores extra workers overlap those stalls; the sweep checks
// the striped pool and lock-free coverage actually let them.
func BenchmarkFuzzThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fz, err := fuzz.New("pclht", fuzz.Options{
					MaxExecs: 20,
					Duration: 30 * time.Second,
					Workers:  workers,
					Seed:     int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := fz.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ExecsPerSec, "execs/s")
			}
		})
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationWriterWait varies how long cond_signal stalls the writer
// before its flush (the paper sets it to the typical execution time of the
// program; too short and readers miss the window, too long and throughput
// collapses). Reported metric: inter-thread inconsistency detections on the
// P-CLHT campaign.
func BenchmarkAblationWriterWait(b *testing.B) {
	for _, ww := range []time.Duration{200 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		ww := ww
		b.Run(ww.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sched.DefaultConfig()
				cfg.WriterWait = ww
				fz, err := fuzz.New("pclht", fuzz.Options{
					MaxExecs: 24,
					Duration: 60 * time.Second,
					Seed:     7,
					Sched:    cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := fz.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.FirstInterTimes)), "inter-detections")
				b.ReportMetric(res.ExecsPerSec, "execs/s")
			}
		})
	}
}

// BenchmarkAblationEADR compares the ADR failure model (volatile caches,
// paper §3.1) against eADR (battery-backed caches, §6.6): inter-thread
// inconsistencies exist only under ADR, while synchronization
// inconsistencies survive both.
func BenchmarkAblationEADR(b *testing.B) {
	for _, eadr := range []bool{false, true} {
		name := "ADR"
		if eadr {
			name = "eADR"
		}
		eadr := eadr
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fz, err := fuzz.New("pclht", fuzz.Options{
					MaxExecs: 24,
					Duration: 60 * time.Second,
					Seed:     7,
					EADR:     eadr,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := fz.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Counts.InterCandidates+res.Counts.IntraCandidates), "dirty-read-candidates")
				b.ReportMetric(float64(res.Counts.SyncBugs), "sync-bugs")
			}
		})
	}
}

// BenchmarkAblationHotKeyCorpus measures the contribution of the hot-key
// seed style (similar keys, §4.5) by comparing the default corpus against a
// corpus without it on memcached, where the read-modify-write windows only
// open on shared keys.
func BenchmarkAblationHotKeyCorpus(b *testing.B) {
	for _, hot := range []bool{true, false} {
		name := "with-hotkeys"
		keySpace := 16
		if !hot {
			name = "wide-keyspace"
			keySpace = 512 // effectively no key sharing
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fz, err := fuzz.New("memcached", fuzz.Options{
					MaxExecs: 40,
					Duration: 60 * time.Second,
					Seed:     5,
					KeySpace: keySpace,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := fz.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Counts.Inter), "inter-inconsistencies")
			}
		})
	}
}
