// Command pmraced is the pmrace control plane: a long-running server that
// schedules many concurrent fuzzing campaigns — per target, per exploration
// strategy — over a shared worker budget, behind the versioned REST API of
// package api (consumed by package client and `pmrace submit|status|cancel|
// logs`).
//
// Usage:
//
//	pmraced -addr :7762 -budget 8 -data /var/lib/pmraced -retention 200
//
// Campaigns queue FIFO and are admitted whenever their worker count fits
// under the budget. All campaigns on one target share a corpus directory
// (coverage found by one seeds the next) and a bug-fingerprint store that
// flags re-discovered bugs as duplicates. /metrics merges every campaign's
// registry into one labeled Prometheus exposition; /status reports all
// campaigns.
//
// SIGTERM/SIGINT drains gracefully: submissions are rejected with 503,
// in-flight executions finish, partial results and artifact bundles are
// persisted, then the HTTP server shuts down. A second signal aborts
// immediately.
//
// Exit codes: 0 — clean drain; 2 — usage/runtime error or drain timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pmrace-go/pmrace/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":7762", "listen address")
		budget       = flag.Int("budget", 4, "shared fuzzing-worker budget across campaigns")
		data         = flag.String("data", "", "state directory (corpus + artifacts); empty = fresh temp dir")
		retention    = flag.Int("retention", 0, "artifact bundles retained across campaigns (0 = unlimited)")
		maxCampaigns = flag.Int("max-campaigns", 64, "campaigns tracked at once (queued and terminal included)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
		traceSample  = flag.Int("trace-sample", 0, "default span-sampling rate per campaign: 0 = every 8th exec, negative disables tracing")
	)
	flag.Parse()

	sup, err := serve.New(serve.Config{
		WorkerBudget: *budget,
		MaxCampaigns: *maxCampaigns,
		DataDir:      *data,
		Retention:    *retention,
		DrainTimeout: *drainTimeout,
		TraceSample:  *traceSample,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmraced: %v\n", err)
		return 2
	}

	srv := &http.Server{Addr: *addr, Handler: sup.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pmraced: listening on %s (budget %d workers, data %s)\n",
		*addr, *budget, sup.DataDir())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "pmraced: %v\n", err)
		return 2
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "pmraced: draining — waiting for in-flight executions")
	code := 0
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := sup.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "pmraced: %v\n", err)
		code = 2
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pmraced: shutdown: %v\n", err)
		code = 2
	}
	if code == 0 {
		fmt.Fprintln(os.Stderr, "pmraced: drained cleanly")
	}
	return code
}
