// Command pmvet statically checks hand-instrumented PM code for
// instrumentation-completeness: unflushed stores, raw pool accesses that
// bypass the rt hook API, dropped taint labels, and fence-pairing mistakes.
// It is the compile-time companion of the dynamic detectors — see
// DESIGN.md §11.
//
// Usage:
//
//	pmvet [flags] [packages]
//
// Packages default to ./internal/targets/... ./examples/... — the
// instrumented workload code pmvet's rules are written for. Exit status is
// 0 for no findings, 1 for findings, 2 for analysis errors (mirroring
// cmd/pmrace's bug/error split).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/pmrace-go/pmrace/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		include   = flag.String("include", "", "comma-separated analyzer names to run (default: all)")
		exclude   = flag.String("exclude", "", "comma-separated analyzer names to skip")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON instead of text")
		aliasPath = flag.String("alias", "", "write the static alias-pair report (JSON) to this file")
		list      = flag.Bool("list", false, "list registered analyzers and exit")
		quiet     = flag.Bool("q", false, "suppress the per-package progress line")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// The source importer resolves module imports through the go command,
	// which consults the working directory's module — anchor at the module
	// root so pmvet works from any subdirectory.
	if err := chdirModuleRoot(); err != nil {
		fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
		return 2
	}

	analyzers, err := lint.ByName(*include)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
		return 2
	}
	if *exclude != "" {
		skip, err := lint.ByName(*exclude)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
			return 2
		}
		skipped := map[string]bool{}
		for _, a := range skip {
			skipped[a.Name] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/targets/...", "./examples/..."}
	}

	loader := lint.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
		return 2
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "pmvet: %d analyzers over %d packages\n", len(analyzers), len(pkgs))
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
		return 2
	}

	if *aliasPath != "" {
		rep := lint.BuildAliasReport(pkgs)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmvet: encoding alias report: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*aliasPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
			return 2
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "pmvet: wrote %d alias pairs to %s\n", len(rep.Pairs), *aliasPath)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "pmvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "pmvet: %d findings\n", len(findings))
		}
		return 1
	}
	return 0
}

// chdirModuleRoot walks up from the working directory to the nearest go.mod
// and chdirs there.
func chdirModuleRoot() error {
	dir, err := os.Getwd()
	if err != nil {
		return err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return os.Chdir(dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return fmt.Errorf("no go.mod found above the working directory; run pmvet from inside the module")
		}
		dir = parent
	}
}
