// The trace subcommand exports a span timeline as Chrome trace-event JSON,
// viewable in ui.perfetto.dev or chrome://tracing:
//
//	pmrace trace -server http://host:7762 c0001 > timeline.json
//	pmrace trace ./bugs/0001-inter -o timeline.json
//	pmrace trace -check c0001
//
// The positional argument is either a pmraced campaign ID (fetched from the
// server's /trace endpoint) or a local artifact-bundle directory (converted
// from the bundle's spans.json). -check validates the exported document
// against the Chrome trace-event contract instead of trusting it blindly —
// CI uses it to gate the export format.
package main

import (
	"bytes"
	"fmt"
	"os"

	"github.com/pmrace-go/pmrace/client"
	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/obs"
)

func runTrace(args []string) int {
	fs, server := remoteFlags("trace")
	out := fs.String("o", "", "write the trace to this file (default: stdout)")
	check := fs.Bool("check", false, "validate the exported document's trace-event shape (exit 2 on violation)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "pmrace: trace: want exactly one argument — a campaign ID or an artifact-bundle directory")
		return 2
	}
	arg := fs.Arg(0)

	var raw []byte
	if st, err := os.Stat(arg); err == nil && st.IsDir() {
		raw, err = bundleTrace(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: trace: %v\n", err)
			return 2
		}
	} else {
		ctx, stop := signalContext()
		defer stop()
		raw, err = client.New(*server).Trace(ctx, arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: trace: %v\n", err)
			return 2
		}
	}

	if *check {
		if err := obs.ValidateChromeTrace(raw); err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: trace: invalid trace-event document: %v\n", err)
			return 2
		}
	}
	if *out == "" {
		_, err := os.Stdout.Write(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: trace: %v\n", err)
			return 2
		}
		return 0
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: trace: %v\n", err)
		return 2
	}
	return 0
}

// bundleTrace converts an artifact bundle's span snapshot (spans.json) into
// a Chrome trace-event document.
func bundleTrace(dir string) ([]byte, error) {
	b, err := artifact.Load(dir)
	if err != nil {
		return nil, err
	}
	meta := obs.TraceMeta{Campaign: dir, Target: b.Bug.Target}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, b.Spans, meta); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
