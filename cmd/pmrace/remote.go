// The remote subcommands drive a pmraced control plane through package
// client:
//
//	pmrace submit -server http://host:7762 -target pclht -execs 500 -wait
//	pmrace status -server http://host:7762 [-id c0001]
//	pmrace cancel -server http://host:7762 -id c0001 [-wait]
//	pmrace logs   -server http://host:7762 -id c0001 [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/client"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// runRemote dispatches the pmraced subcommands. cmd is os.Args[1], args the
// flags after it. Exit codes match the local runs: 0 clean, 1 the campaign
// confirmed bugs, 2 usage/transport error.
func runRemote(cmd string, args []string) int {
	switch cmd {
	case "submit":
		return runSubmit(args)
	case "status":
		return runStatus(args)
	case "cancel":
		return runCancel(args)
	case "logs":
		return runLogs(args)
	case "trace":
		return runTrace(args)
	default:
		fmt.Fprintf(os.Stderr, "pmrace: unknown command %q (want submit, status, cancel, logs or trace)\n", cmd)
		return 2
	}
}

// remoteFlags declares the flags every subcommand shares.
func remoteFlags(name string) (*flag.FlagSet, *string) {
	fs := newFlagSet(name)
	server := fs.String("server", "http://127.0.0.1:7762", "pmraced base URL")
	return fs, server
}

// submitErrorLine renders a submit failure for the terminal. An unknown
// target is an operator typo, not a protocol failure, so instead of the raw
// API error envelope it prints the server's one-line explanation, which
// ends with the registered-target listing.
func submitErrorLine(err error) string {
	if ae, ok := err.(*api.Error); ok && ae.Code == api.CodeUnknownTarget {
		return fmt.Sprintf("pmrace: %s", ae.Message)
	}
	return fmt.Sprintf("pmrace: submit: %v", err)
}

func runSubmit(args []string) int {
	fs, server := remoteFlags("submit")
	var (
		target    = fs.String("target", "pclht", "target system to fuzz")
		mode      = fs.String("mode", "", "exploration: pmrace | delay | none (server default: pmrace)")
		workers   = fs.Int("workers", 1, "fuzzing workers, charged against the server's budget")
		threads   = fs.Int("threads", 0, "driver threads per execution (0 = server default)")
		execs     = fs.Int("execs", 0, "execution budget (0 = server default)")
		duration  = fs.Duration("duration", 0, "wall-clock budget (0 = server default)")
		seed      = fs.Int64("seed", 0, "random seed (0 = unseeded default)")
		proto     = fs.Bool("proto", false, "fuzz through memcached text-protocol byte streams instead of synthetic op vectors")
		artifacts = fs.Bool("artifacts", false, "write a forensic bundle per confirmed bug (fetch via the artifacts endpoints)")
		artAll    = fs.Bool("artifacts-all", false, "with -artifacts: also bundle validated/whitelisted false positives")
		traceSmpl = fs.Int("trace-sample", 0, "span-sampling rate: 0 = server default, N samples every Nth exec, negative disables tracing")
		wait      = fs.Bool("wait", false, "block until the campaign is terminal and print its final document")
		jsonOut   = fs.Bool("json", false, "print campaign documents as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cl := client.New(*server)
	ctx, stop := signalContext()
	defer stop()

	doc, err := cl.Submit(ctx, api.CampaignSpec{
		Target: *target, Mode: *mode, Workers: *workers, Threads: *threads,
		MaxExecs: *execs, Duration: *duration, Seed: *seed, Protocol: *proto,
		Artifacts: *artifacts, ArtifactsAll: *artAll, TraceSample: *traceSmpl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, submitErrorLine(err))
		return 2
	}
	if !*wait {
		printCampaign(doc, *jsonOut)
		return 0
	}
	final, err := cl.Wait(ctx, doc.ID, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: wait: %v\n", err)
		return 2
	}
	printCampaign(final, *jsonOut)
	if len(final.Bugs) > 0 {
		return 1
	}
	return 0
}

func runStatus(args []string) int {
	fs, server := remoteFlags("status")
	id := fs.String("id", "", "campaign ID (empty: list all campaigns and the server document)")
	jsonOut := fs.Bool("json", false, "print documents as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cl := client.New(*server)
	ctx, stop := signalContext()
	defer stop()

	if *id != "" {
		doc, err := cl.Get(ctx, *id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: status: %v\n", err)
			return 2
		}
		printCampaign(doc, *jsonOut)
		return 0
	}
	info, err := cl.Info(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: status: %v\n", err)
		return 2
	}
	list, err := cl.List(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: status: %v\n", err)
		return 2
	}
	if *jsonOut {
		printJSON(struct {
			Server    *api.ServerInfo `json:"server"`
			Campaigns []api.Campaign  `json:"campaigns"`
		}{info, list})
		return 0
	}
	fmt.Printf("pmraced %s: %d/%d workers in use, %d campaigns, draining=%v\n",
		info.Version, info.WorkersInUse, info.WorkerBudget, info.Campaigns, info.Draining)
	for i := range list {
		printCampaign(&list[i], false)
	}
	return 0
}

func runCancel(args []string) int {
	fs, server := remoteFlags("cancel")
	id := fs.String("id", "", "campaign ID (required)")
	wait := fs.Bool("wait", false, "block until the drain settles and print the final document")
	jsonOut := fs.Bool("json", false, "print campaign documents as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "pmrace: cancel: -id is required")
		return 2
	}
	cl := client.New(*server)
	ctx, stop := signalContext()
	defer stop()

	doc, err := cl.Cancel(ctx, *id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: cancel: %v\n", err)
		return 2
	}
	if *wait && !doc.State.Terminal() {
		if doc, err = cl.Wait(ctx, *id, 0); err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: cancel: %v\n", err)
			return 2
		}
	}
	printCampaign(doc, *jsonOut)
	return 0
}

func runLogs(args []string) int {
	fs, server := remoteFlags("logs")
	id := fs.String("id", "", "campaign ID (required)")
	jsonOut := fs.Bool("json", false, "print the raw JSONL envelopes instead of human lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *id == "" {
		fmt.Fprintln(os.Stderr, "pmrace: logs: -id is required")
		return 2
	}
	cl := client.New(*server)
	ctx, stop := signalContext()
	defer stop()

	events, errFn, err := cl.Events(ctx, *id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: logs: %v\n", err)
		return 2
	}
	for ev := range events {
		if *jsonOut {
			printJSON(struct {
				Kind obs.Kind `json:"kind"`
				Data any      `json:"data"`
			}{ev.Kind(), ev})
			continue
		}
		fmt.Printf("%-22s %s\n", ev.Kind(), obs.Fingerprint(ev))
	}
	if err := errFn(); err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: logs: %v\n", err)
		return 2
	}
	return 0
}

func printCampaign(c *api.Campaign, asJSON bool) {
	if asJSON {
		printJSON(c)
		return
	}
	line := fmt.Sprintf("%s  %-10s %-9s execs=%d bugs=%d", c.ID, c.Spec.Target, c.State,
		c.Stats.Execs, len(c.Bugs))
	if c.Error != "" {
		line += "  error=" + c.Error
	}
	fmt.Println(line)
	for _, b := range c.Bugs {
		dup := ""
		if b.Duplicate {
			dup = fmt.Sprintf("  (duplicate of %s's finding)", b.FirstReportedBy)
		}
		fmt.Printf("    [%s] %s — %s%s\n", b.Kind, b.Site, b.Summary, dup)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// signalContext cancels on Ctrl-C / SIGTERM so remote waits and streams end
// promptly.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// newFlagSet gives each subcommand its own flag namespace with the standard
// continue-on-error-reported behavior.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("pmrace "+name, flag.ContinueOnError)
}
