// Command pmrace fuzzes one of the bundled concurrent PM systems (or any
// registered target) with PM-aware coverage-guided fuzzing and prints the
// detected bugs, inconsistency statistics and detailed reports.
//
// Usage:
//
//	pmrace -target pclht -execs 120 -workers 4
//	pmrace -list
//	pmrace -target memcached -mode delay -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/site"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered targets and exit")
		target   = flag.String("target", "pclht", "target system to fuzz")
		execs    = flag.Int("execs", 120, "execution budget")
		duration = flag.Duration("duration", 2*time.Minute, "wall-clock budget")
		workers  = flag.Int("workers", 4, "concurrent fuzzing workers")
		threads  = flag.Int("threads", 4, "driver threads per execution")
		seed     = flag.Int64("seed", 1, "random seed")
		mode     = flag.String("mode", "pmrace", "exploration: pmrace | delay | none")
		noCP     = flag.Bool("no-checkpoints", false, "disable in-memory pool checkpoints")
		eadr     = flag.Bool("eadr", false, "model battery-backed caches (stores durable at visibility)")
		corpus   = flag.String("corpus", "", "seed-corpus directory (loaded at start, improving seeds saved back)")
		replay   = flag.String("replay", "", "replay one saved .seed file against the target and exit")
		verbose  = flag.Bool("v", false, "print full per-inconsistency reports")
	)
	flag.Parse()

	if *list {
		fmt.Println("registered targets:")
		for _, n := range pmrace.Targets() {
			fmt.Println("  " + n)
		}
		return
	}

	if *replay != "" {
		if err := replaySeed(*target, *replay, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: replay: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := pmrace.Options{
		MaxExecs:      *execs,
		Duration:      *duration,
		Workers:       *workers,
		Threads:       *threads,
		Seed:          *seed,
		NoCheckpoints: *noCP,
		EADR:          *eadr,
		CorpusDir:     *corpus,
	}
	switch strings.ToLower(*mode) {
	case "pmrace":
		opts.Mode = pmrace.ModePMAware
	case "delay":
		opts.Mode = pmrace.ModeDelayInj
	case "none":
		opts.Mode = pmrace.ModeNone
	default:
		fmt.Fprintf(os.Stderr, "pmrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	fmt.Printf("fuzzing %s (%s exploration, %d workers, budget %d execs / %s)\n",
		*target, opts.Mode, opts.Workers, opts.MaxExecs, *duration)
	res, err := pmrace.Fuzz(*target, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\n%d executions over %d seeds in %s (%.1f exec/s)\n",
		res.Execs, res.Seeds, res.Elapsed.Round(time.Millisecond), res.ExecsPerSec)
	fmt.Printf("coverage: %d branch bits, %d PM alias pair bits\n", res.BranchCov, res.AliasCov)
	c := res.Counts
	fmt.Printf("candidates: %d inter, %d intra\n", c.InterCandidates, c.IntraCandidates)
	fmt.Printf("inconsistencies: %d inter (%d validated FP, %d whitelisted FP), %d intra, %d sync (%d FP)\n",
		c.Inter, c.InterValidated, c.InterWhitelist, c.Intra, c.Sync, c.SyncValidated)

	fmt.Printf("\nunique bugs (%d):\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  [%s] %s — %s\n", b.Kind, site.Lookup(b.GroupSite), b.Summary)
	}
	for _, o := range res.DB.Others() {
		fmt.Printf("  [Other] %s — %s: %s\n", site.Lookup(o.Site), o.Kind, o.Description)
	}

	if *verbose {
		fmt.Println("\ndetailed reports:")
		for _, j := range res.DB.Inconsistencies() {
			fmt.Println(core.FormatInconsistency(j))
		}
		for _, j := range res.DB.Syncs() {
			fmt.Println(core.FormatSync(j))
		}
	}
}
