// Command pmrace fuzzes one of the bundled concurrent PM systems (or any
// registered target) with PM-aware coverage-guided fuzzing and prints the
// detected bugs, inconsistency statistics and detailed reports.
//
// Usage:
//
//	pmrace -target pclht -execs 120 -workers 4
//	pmrace -target pclht -execs 50 -json > trace.jsonl
//	pmrace -target pclht -http :8080 -artifacts ./bugs -duration 10m
//	pmrace -target memcached -mode delay -duration 30s -progress
//	pmrace -artifact ./bugs/0001-sync
//	pmrace -list
//
// Against a pmraced control plane (see cmd/pmraced), the subcommands drive
// campaigns remotely over the versioned REST API:
//
//	pmrace submit -server http://host:7762 -target pclht -execs 500 -wait
//	pmrace status -server http://host:7762 [-id c0001]
//	pmrace cancel -server http://host:7762 -id c0001 -wait
//	pmrace logs   -server http://host:7762 -id c0001
//	pmrace trace  -server http://host:7762 c0001 > timeline.json
//
// With -json the typed event stream (exec_done, seed_accepted,
// inconsistency_found, validation_verdict, bug_confirmed, campaign_done,
// ...) goes to stdout as JSON lines and the human summary moves to stderr.
// -http serves live introspection (/metrics, /status, /events, /healthz,
// /debug/pprof) while the campaign runs; -artifacts writes a replayable
// forensic bundle per confirmed bug, and -artifact replays one.
// Ctrl-C cancels the campaign's context: workers stop within one execution
// and the partial results are reported.
//
// Exit codes: 0 — clean campaign (or successful replay/reproduction);
// 1 — the campaign confirmed bugs (or a replay failed to reproduce);
// 2 — usage or runtime error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/site"
)

func main() { os.Exit(run()) }

// run is main with an exit code: 0 clean campaign, 1 confirmed bugs,
// 2 usage/runtime error.
func run() int {
	// The pmraced subcommands (submit/status/cancel/logs) drive a remote
	// control plane; everything else is the local flag CLI.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "cancel", "logs", "trace":
			return runRemote(os.Args[1], os.Args[2:])
		}
	}
	var (
		list      = flag.Bool("list", false, "list registered targets and exit")
		target    = flag.String("target", "pclht", "target system to fuzz")
		execs     = flag.Int("execs", 120, "execution budget")
		duration  = flag.Duration("duration", 2*time.Minute, "wall-clock budget")
		workers   = flag.Int("workers", 4, "concurrent fuzzing workers")
		threads   = flag.Int("threads", 4, "driver threads per execution")
		seed      = flag.Int64("seed", 1, "random seed")
		mode      = flag.String("mode", "pmrace", "exploration: pmrace | delay | none")
		proto     = flag.Bool("proto", false, "fuzz through memcached text-protocol byte streams instead of synthetic op vectors")
		noCP      = flag.Bool("no-checkpoints", false, "disable in-memory pool checkpoints")
		eadr      = flag.Bool("eadr", false, "model battery-backed caches (stores durable at visibility)")
		corpus    = flag.String("corpus", "", "seed-corpus directory (loaded at start, improving seeds saved back)")
		replay    = flag.String("replay", "", "replay one saved .seed file against the target and exit")
		artifact  = flag.String("artifact", "", "replay one forensic bug bundle directory and exit (0 = reproduced)")
		artifacts = flag.String("artifacts", "", "write a forensic bundle per confirmed bug into this directory")
		artAll    = flag.Bool("artifacts-all", false, "with -artifacts: also bundle validated/whitelisted false positives")
		httpAddr  = flag.String("http", "", "serve live introspection (/metrics /status /events /trace /healthz /debug/pprof) on this address")
		traceFlag = flag.Bool("trace", false, "record a span timeline (flight recorder + Chrome trace-event export on /trace)")
		traceSmpl = flag.Int("trace-sample", 0, "with -trace: record per-exec spans for every Nth execution (0 = default 8)")
		jsonOut   = flag.Bool("json", false, "stream the event trace as JSONL to stdout (summary goes to stderr)")
		progress  = flag.Bool("progress", false, "render a 1 Hz status line while fuzzing")
		verbose   = flag.Bool("v", false, "print full per-inconsistency reports")

		aliasHints     = flag.String("alias-hints", "", "pmvet alias-pair report (pmvet -alias out.json) used to prioritize the interleaving queue")
		maxCrashStates = flag.Int("max-crash-states", 1, "crash states validated per finding (1 = the paper's single adversarial image)")
		valWorkers     = flag.Int("validate-workers", 2, "asynchronous post-failure validation workers")
		valWallTimeout = flag.Duration("validate-wall-timeout", 2*time.Second, "wall-clock bound per recovery run in post-failure validation")
	)
	flag.Parse()

	if *list {
		fmt.Println("registered targets:")
		for _, n := range pmrace.Targets() {
			fmt.Println("  " + n)
		}
		return 0
	}

	if *artifact != "" {
		return replayArtifact(*artifact, *target)
	}

	if *replay != "" {
		if err := replaySeed(*target, *replay, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: replay: %v\n", err)
			return 2
		}
		return 0
	}

	var explore pmrace.ExploreMode
	switch strings.ToLower(*mode) {
	case "pmrace":
		explore = pmrace.ModePMAware
	case "delay":
		explore = pmrace.ModeDelayInj
	case "none":
		explore = pmrace.ModeNone
	default:
		fmt.Fprintf(os.Stderr, "pmrace: unknown mode %q\n", *mode)
		return 2
	}

	options := []pmrace.CampaignOption{
		pmrace.WithBudget(*execs, *duration),
		pmrace.WithWorkers(*workers),
		pmrace.WithThreads(*threads),
		pmrace.WithSeed(*seed),
		pmrace.WithMode(explore),
		pmrace.WithCorpusDir(*corpus),
		pmrace.WithMaxCrashStates(*maxCrashStates),
		pmrace.WithValidationWorkers(*valWorkers),
		pmrace.WithValidationWallTimeout(*valWallTimeout),
	}
	if *aliasHints != "" {
		hints, err := pmrace.LoadAliasHints(*aliasHints)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmrace: %v\n", err)
			return 2
		}
		options = append(options, pmrace.WithAliasHints(hints))
	}
	if *proto {
		options = append(options, pmrace.WithProtocolTraffic())
	}
	if *noCP {
		options = append(options, pmrace.WithoutCheckpoints())
	}
	if *eadr {
		options = append(options, pmrace.WithEADR())
	}
	if *artifacts != "" {
		options = append(options, pmrace.WithArtifacts(*artifacts))
		if *artAll {
			options = append(options, pmrace.WithAllArtifacts())
		}
	} else if *artAll {
		fmt.Fprintln(os.Stderr, "pmrace: -artifacts-all requires -artifacts")
		return 2
	}
	if *httpAddr != "" {
		options = append(options, pmrace.WithHTTPAddr(*httpAddr))
	}
	if *traceFlag || *traceSmpl > 0 {
		options = append(options, pmrace.WithTracing(*traceSmpl))
	}
	// The human-readable stream: stdout normally, stderr when stdout
	// carries the JSONL trace.
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = os.Stderr
		options = append(options, pmrace.WithJSONTrace(os.Stdout))
	}
	if *progress {
		options = append(options, pmrace.WithProgress(out))
	}

	// Ctrl-C cancels the campaign context: workers finish their current
	// execution and stop; partial results are still reported below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(out, "fuzzing %s (%s exploration, %d workers, budget %d execs / %s)\n",
		*target, explore, *workers, *execs, *duration)
	c, err := pmrace.NewCampaign(ctx, *target, options...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: %v\n", err)
		return 2
	}
	if addr := c.HTTPAddr(); addr != "" {
		fmt.Fprintf(out, "introspection: http://%s/status\n", addr)
	}
	// Drain the event stream until the campaign closes it; sinks (-json)
	// run independently of this loop.
	for range c.Events() {
	}
	res, err := c.Wait()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: %v\n", err)
		return 2
	}
	if ctx.Err() != nil {
		fmt.Fprintf(out, "\ninterrupted — partial results\n")
	}

	fmt.Fprintf(out, "\n%d executions over %d seeds in %s (%.1f exec/s)\n",
		res.Execs, res.Seeds, res.Elapsed.Round(time.Millisecond), res.ExecsPerSec)
	fmt.Fprintf(out, "coverage: %d branch bits, %d PM alias pair bits\n", res.BranchCov, res.AliasCov)
	c2 := res.Counts
	fmt.Fprintf(out, "candidates: %d inter, %d intra\n", c2.InterCandidates, c2.IntraCandidates)
	fmt.Fprintf(out, "inconsistencies: %d inter (%d validated FP, %d whitelisted FP), %d intra, %d sync (%d FP)\n",
		c2.Inter, c2.InterValidated, c2.InterWhitelist, c2.Intra, c2.Sync, c2.SyncValidated)

	fmt.Fprintf(out, "\nunique bugs (%d):\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Fprintf(out, "  [%s] %s — %s\n", b.Kind, site.Lookup(b.GroupSite), b.Summary)
	}
	for _, o := range res.DB.Others() {
		fmt.Fprintf(out, "  [Other] %s — %s: %s\n", site.Lookup(o.Site), o.Kind, o.Description)
	}

	if *verbose {
		fmt.Fprintln(out, "\ndetailed reports:")
		for _, j := range res.DB.Inconsistencies() {
			fmt.Fprintln(out, core.FormatInconsistency(j))
		}
		for _, j := range res.DB.Syncs() {
			fmt.Fprintln(out, core.FormatSync(j))
		}
	}

	if len(res.Bugs) > 0 || len(res.DB.Others()) > 0 {
		return 1
	}
	return 0
}
