package main

import (
	"fmt"
	"os"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// replayArtifact re-executes a forensic bug bundle and checks that the
// reproduced finding carries the fingerprint recorded in bug.json. The
// bundle names its own target; the -target flag only overrides a bundle
// missing one. Exit codes: 0 reproduced, 1 not reproduced, 2 error.
func replayArtifact(dir, fallbackTarget string) int {
	b, err := artifact.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: artifact: %v\n", err)
		return 2
	}
	targetName := b.Bug.Target
	if targetName == "" {
		targetName = fallbackTarget
	}
	if _, err := targets.New(targetName); err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: artifact: %v\n", err)
		return 2
	}
	factory := func() targets.Target {
		t, err := targets.New(targetName)
		if err != nil {
			panic(err)
		}
		return t
	}
	fmt.Printf("replaying artifact %s against %s\n", dir, targetName)
	fmt.Printf("  recorded: [%s/%s] %s\n", b.Bug.Kind, b.Bug.Status, b.Bug.Fingerprint)
	r, err := fuzz.ReplayArtifact(factory, b, 8)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmrace: artifact: %v\n", err)
		return 2
	}
	if r.Reproduced {
		fmt.Printf("  reproduced after %d execution(s) via %s\n", r.Execs, r.Strategy)
		return 0
	}
	fmt.Printf("  NOT reproduced in %d execution(s); findings observed:\n", r.Execs)
	for _, fp := range r.Found {
		fmt.Printf("    %s\n", fp)
	}
	return 1
}

// replaySeed re-executes one saved seed against a target, first plainly and
// then once per PM-aware sync-point entry, printing every inconsistency the
// checkers report. It is the triage counterpart of the fuzzer: bug reports
// carry the seed that found them (paper §4.1 step 6), and replay turns a
// seed back into the detection.
func replaySeed(targetName, path string, threads int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading seed: %w", err)
	}
	seed := workload.Decode(string(data), threads)
	if seed.Empty() {
		return fmt.Errorf("seed %s contains no operations", path)
	}
	factory := func() targets.Target {
		t, err := targets.New(targetName)
		if err != nil {
			panic(err)
		}
		return t
	}
	if _, err := targets.New(targetName); err != nil {
		return err
	}
	x := fuzz.NewExecutor(factory, fuzz.ExecOptions{
		CollectStats:   true,
		UseCheckpoints: true,
		HangTimeout:    150 * time.Millisecond,
	})

	if seed.Proto != nil {
		fmt.Printf("replaying %s (%d protocol commands over %d streams, %d threads) against %s\n",
			path, seed.Size(), len(seed.Proto.Streams), threads, targetName)
	} else {
		fmt.Printf("replaying %s (%d ops, %d threads) against %s\n", path, len(seed.Ops), threads, targetName)
	}
	base, err := x.Run(seed, sched.None{})
	if err != nil {
		return err
	}
	reportExec("plain execution", base)

	queue := sched.BuildQueue(base.Stats)
	fmt.Printf("exploring %d sync-point entries\n", queue.Len())
	for i := 0; ; i++ {
		entry := queue.Pop()
		if entry == nil {
			break
		}
		pm := sched.NewPMAware(sched.DefaultConfig(), entry, 0)
		res, err := x.Run(seed, pm)
		if err != nil {
			return err
		}
		if len(res.Inconsistencies) > 0 || len(res.Hangs) > 0 {
			reportExec(fmt.Sprintf("entry %d (PM offset %#x)", i, entry.Addr), res)
		}
	}
	return nil
}

func reportExec(label string, res *fuzz.ExecResult) {
	if len(res.Inconsistencies) == 0 && len(res.Hangs) == 0 {
		fmt.Printf("%s: no findings (%d candidates)\n", label, len(res.Candidates))
		return
	}
	fmt.Printf("%s:\n", label)
	for _, c := range res.Inconsistencies {
		in := c.In
		fmt.Printf("  [%s/%s] write %s -> read %s -> side effect %s\n",
			in.Kind, in.Flow,
			site.Lookup(site.ID(in.Event.WriteSite)), site.Lookup(site.ID(in.Event.ReadSite)),
			site.Lookup(in.StoreSite))
	}
	for _, s := range res.Syncs {
		fmt.Printf("  [Sync] %q updated at %s\n", s.Si.Var.Name, site.Lookup(s.Si.Site))
	}
	for _, h := range res.Hangs {
		fmt.Printf("  [hang] thread %d at %s\n", h.Thread, h.Site)
	}
}
