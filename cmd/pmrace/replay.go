package main

import (
	"fmt"
	"os"
	"time"

	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// replaySeed re-executes one saved seed against a target, first plainly and
// then once per PM-aware sync-point entry, printing every inconsistency the
// checkers report. It is the triage counterpart of the fuzzer: bug reports
// carry the seed that found them (paper §4.1 step 6), and replay turns a
// seed back into the detection.
func replaySeed(targetName, path string, threads int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading seed: %w", err)
	}
	seed := workload.Decode(string(data), threads)
	if len(seed.Ops) == 0 {
		return fmt.Errorf("seed %s contains no operations", path)
	}
	factory := func() targets.Target {
		t, err := targets.New(targetName)
		if err != nil {
			panic(err)
		}
		return t
	}
	if _, err := targets.New(targetName); err != nil {
		return err
	}
	x := fuzz.NewExecutor(factory, fuzz.ExecOptions{
		CollectStats:   true,
		UseCheckpoints: true,
		HangTimeout:    150 * time.Millisecond,
	})

	fmt.Printf("replaying %s (%d ops, %d threads) against %s\n", path, len(seed.Ops), threads, targetName)
	base, err := x.Run(seed, sched.None{})
	if err != nil {
		return err
	}
	reportExec("plain execution", base)

	queue := sched.BuildQueue(base.Stats)
	fmt.Printf("exploring %d sync-point entries\n", queue.Len())
	for i := 0; ; i++ {
		entry := queue.Pop()
		if entry == nil {
			break
		}
		pm := sched.NewPMAware(sched.DefaultConfig(), entry, 0)
		res, err := x.Run(seed, pm)
		if err != nil {
			return err
		}
		if len(res.Inconsistencies) > 0 || len(res.Hangs) > 0 {
			reportExec(fmt.Sprintf("entry %d (PM offset %#x)", i, entry.Addr), res)
		}
	}
	return nil
}

func reportExec(label string, res *fuzz.ExecResult) {
	if len(res.Inconsistencies) == 0 && len(res.Hangs) == 0 {
		fmt.Printf("%s: no findings (%d candidates)\n", label, len(res.Candidates))
		return
	}
	fmt.Printf("%s:\n", label)
	for _, c := range res.Inconsistencies {
		in := c.In
		fmt.Printf("  [%s/%s] write %s -> read %s -> side effect %s\n",
			in.Kind, in.Flow,
			site.Lookup(site.ID(in.Event.WriteSite)), site.Lookup(site.ID(in.Event.ReadSite)),
			site.Lookup(in.StoreSite))
	}
	for _, s := range res.Syncs {
		fmt.Printf("  [Sync] %q updated at %s\n", s.Si.Var.Name, site.Lookup(s.Si.Site))
	}
	for _, h := range res.Hangs {
		fmt.Printf("  [hang] thread %d at %s\n", h.Thread, h.Site)
	}
}
