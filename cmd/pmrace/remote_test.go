package main

import (
	"errors"
	"strings"
	"testing"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/internal/serve"
)

// TestSubmitErrorLineUnknownTarget: a typo'd target name must print the
// server's friendly one-liner — which names every registered target — not
// the raw API error envelope.
func TestSubmitErrorLineUnknownTarget(t *testing.T) {
	sup, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatalf("new supervisor: %v", err)
	}
	_, err = sup.Submit(api.CampaignSpec{Target: "memcachd"})
	if err == nil {
		t.Fatal("submit of unknown target succeeded")
	}
	line := submitErrorLine(err)
	if strings.Contains(line, "unknown_target") || strings.Contains(line, "pmraced:") {
		t.Fatalf("raw API envelope leaked into the terminal line: %q", line)
	}
	for _, want := range []string{"pmrace: ", `unknown target "memcachd"`, "registered", "memcached", "pmwal"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q does not mention %q", line, want)
		}
	}
}

// TestSubmitErrorLineOtherErrors: every other failure keeps the submit:
// prefix and full error so operators can see the code.
func TestSubmitErrorLineOtherErrors(t *testing.T) {
	line := submitErrorLine(&api.Error{StatusCode: 503, Code: api.CodeDraining, Message: "server is draining"})
	if !strings.Contains(line, "submit:") || !strings.Contains(line, api.CodeDraining) {
		t.Fatalf("non-target errors must keep the raw form: %q", line)
	}
	line = submitErrorLine(errors.New("connection refused"))
	if !strings.Contains(line, "submit: connection refused") {
		t.Fatalf("transport errors must keep the raw form: %q", line)
	}
}
