// Command pminstr generates an instrumented shadow package from a plain
// pmplain-dialect package: every persistent-memory access is rewritten into
// the corresponding rt.Thread hook call with taint labels threaded through,
// preserving line numbers so the shadow target produces the same file:line
// bug fingerprints as a hand-instrumented twin. See DESIGN.md §15.
//
// Usage:
//
//	pminstr -src <dir> [-out <dir>] [-pkg <name>] [-prefix pminstr_] [-diff] [-check]
//
// -src is the plain package directory (relative to the module root). -out
// defaults to a sibling directory named after -pkg; -pkg defaults to the
// source package name with a "gen" suffix. With -diff, nothing is written:
// the regenerated output is compared against the files already in -out and
// any drift is an error (CI uses this). With -check, pmvet's analyzers run
// over the output package and any finding is an error — generated
// instrumentation is required to be pmvet-clean.
//
// Exit status: 0 success, 1 drift or findings, 2 usage or analysis errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/pmrace-go/pmrace/internal/instr"
	"github.com/pmrace-go/pmrace/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		src    = flag.String("src", "", "plain package directory (required)")
		out    = flag.String("out", "", "output directory (default: sibling of -src named after -pkg)")
		pkg    = flag.String("pkg", "", "generated package name (default: source package name + \"gen\")")
		prefix = flag.String("prefix", instr.ShadowFilePrefix, "generated file name prefix")
		diff   = flag.Bool("diff", false, "compare against existing output instead of writing; drift is an error")
		check  = flag.Bool("check", false, "run pmvet's analyzers over the output package; findings are errors")
		quiet  = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if *src == "" {
		fmt.Fprintln(os.Stderr, "pminstr: -src is required")
		return 2
	}

	// The source importer resolves imports through the go command from the
	// working directory's module — anchor at the module root.
	if err := chdirModuleRoot(); err != nil {
		fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
		return 2
	}
	module, err := modulePath("go.mod")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
		return 2
	}

	srcRel := filepath.ToSlash(filepath.Clean(*src))
	loader := lint.NewLoader()
	pkgIn, err := loader.LoadDir(filepath.Clean(*src), module+"/"+srcRel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pminstr: loading %s: %v\n", *src, err)
		return 2
	}
	pkgName := *pkg
	if pkgName == "" {
		pkgName = pkgIn.Types.Name() + "gen"
	}
	outDir := *out
	if outDir == "" {
		outDir = filepath.Join(filepath.Dir(filepath.Clean(*src)), pkgName)
	}

	files, err := instr.Generate(pkgIn, instr.Options{PkgName: pkgName, FilePrefix: *prefix})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
		return 2
	}

	status := 0
	if *diff {
		for _, f := range files {
			path := filepath.Join(outDir, f.Name)
			have, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pminstr: %s: %v (regenerate with: pminstr -src %s -out %s -pkg %s)\n", path, err, *src, outDir, pkgName)
				status = 1
				continue
			}
			if !bytes.Equal(have, f.Src) {
				fmt.Fprintf(os.Stderr, "pminstr: %s is stale: regenerated output differs (rerun pminstr and commit)\n", path)
				status = 1
			}
		}
		if status == 0 && !*quiet {
			fmt.Fprintf(os.Stderr, "pminstr: %d generated files match %s\n", len(files), outDir)
		}
	} else {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
			return 2
		}
		for _, f := range files {
			path := filepath.Join(outDir, f.Name)
			if err := os.WriteFile(path, f.Src, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
				return 2
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "pminstr: wrote %s\n", path)
			}
		}
	}

	if *check {
		outRel := filepath.ToSlash(filepath.Clean(outDir))
		pkgOut, err := loader.LoadDir(filepath.Clean(outDir), module+"/"+outRel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pminstr: loading generated package: %v\n", err)
			return 2
		}
		findings, err := lint.Run([]*lint.Package{pkgOut}, lint.Analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pminstr: %v\n", err)
			return 2
		}
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "pminstr: generated code must be pmvet-clean: %d findings\n", len(findings))
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "pminstr: pmvet clean (%d analyzers)\n", len(lint.Analyzers()))
		}
	}
	return status
}

// modulePath reads the module path from go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// chdirModuleRoot walks up from the working directory to the nearest go.mod
// and chdirs there.
func chdirModuleRoot() error {
	dir, err := os.Getwd()
	if err != nil {
		return err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return os.Chdir(dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return fmt.Errorf("no go.mod found above the working directory; run pminstr from inside the module")
		}
		dir = parent
	}
}
