// Command pmexperiments regenerates the paper's evaluation tables and
// figures against the Go reproduction (see EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Usage:
//
//	pmexperiments -all
//	pmexperiments -table 2          # also prints Table 5
//	pmexperiments -table 3          # also covers Table 6
//	pmexperiments -table 4
//	pmexperiments -figure 8
//	pmexperiments -figure 9
//	pmexperiments -figure 10
//	pmexperiments -all -quick       # CI-sized budgets
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/pmrace-go/pmrace/internal/experiments"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every table and figure")
		table  = flag.Int("table", 0, "table to regenerate (2, 3, 4, 5 or 6)")
		figure = flag.Int("figure", 0, "figure to regenerate (8, 9 or 10)")
		quick  = flag.Bool("quick", false, "use small CI budgets")
		csvDir = flag.String("csv", "", "also write figure data as CSV files into this directory")
	)
	flag.Parse()

	cfg := experiments.Full()
	if *quick {
		cfg = experiments.Quick()
	}

	ran := false
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "pmexperiments: %s: %v\n", what, err)
		os.Exit(1)
	}

	if *all || *table == 2 || *table == 3 || *table == 5 || *table == 6 {
		ran = true
		bd, err := experiments.RunBugDetection(cfg)
		if err != nil {
			fail("bug detection", err)
		}
		if *all || *table == 2 {
			fmt.Println(bd.Table2())
		}
		if *all || *table == 2 || *table == 5 {
			fmt.Println(bd.Table5String())
		}
		if *all || *table == 3 || *table == 6 {
			fmt.Println(bd.Table3String())
		}
	}
	if *all || *table == 4 {
		ran = true
		res, err := experiments.RunTable4(cfg)
		if err != nil {
			fail("table 4", err)
		}
		fmt.Println(res.String())
	}
	if *all || *figure == 8 {
		ran = true
		series, err := experiments.RunFigure8(cfg)
		if err != nil {
			fail("figure 8", err)
		}
		fmt.Println(experiments.Figure8String(series))
		if *csvDir != "" {
			if err := experiments.Figure8CSV(*csvDir, series); err != nil {
				fail("figure 8 csv", err)
			}
		}
	}
	if *all || *figure == 9 {
		ran = true
		series, err := experiments.RunFigure9(cfg)
		if err != nil {
			fail("figure 9", err)
		}
		fmt.Println(experiments.Figure9String(series))
		if *csvDir != "" {
			if err := experiments.Figure9CSV(*csvDir, series); err != nil {
				fail("figure 9 csv", err)
			}
		}
	}
	if *all || *figure == 10 {
		ran = true
		rows, err := experiments.RunFigure10(cfg)
		if err != nil {
			fail("figure 10", err)
		}
		fmt.Println(experiments.Figure10String(rows))
		if *csvDir != "" {
			if err := experiments.Figure10CSV(*csvDir, rows); err != nil {
				fail("figure 10 csv", err)
			}
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
