// Tests for the campaign session API: event-stream determinism, context
// cancellation latency, statistics-snapshot consistency with the returned
// Result, and the machine-readable JSONL trace.
package pmrace_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// TestCampaignEventStreamDeterminism runs the same fully sequential
// configuration twice (one worker, one driver thread, no exploration
// scheduling, fixed seed) and asserts the two event sequences are identical
// modulo timestamps: same kinds, same payloads, in the same order.
func TestCampaignEventStreamDeterminism(t *testing.T) {
	run := func() []string {
		col := pmrace.NewCollector()
		c, err := pmrace.NewCampaign(context.Background(), "pclht",
			pmrace.WithBudget(25, time.Minute),
			pmrace.WithWorkers(1),
			pmrace.WithThreads(1),
			pmrace.WithMode(pmrace.ModeNone),
			pmrace.WithSeed(7),
			pmrace.WithInlineValidation(),
			pmrace.WithSink(col),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		evs := col.Events()
		fps := make([]string, len(evs))
		for i, ev := range evs {
			fps[i] = obs.Fingerprint(ev)
		}
		return fps
	}

	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	if a[len(a)-1][:13] != "campaign_done" {
		t.Fatalf("last event is not campaign_done: %s", a[len(a)-1])
	}
}

// TestCampaignCancelLatency cancels the context after the first completed
// execution of a large-budget campaign and asserts every worker stops within
// one execution — far before the budget would have been exhausted.
func TestCampaignCancelLatency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := pmrace.NewCampaign(ctx, "pclht",
		pmrace.WithBudget(1<<30, time.Hour),
		pmrace.WithWorkers(4),
		pmrace.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for proof that fuzzing is underway, then cancel.
	sawExec := false
	for ev := range c.Events() {
		if _, ok := ev.(*pmrace.ExecDone); ok && !sawExec {
			sawExec = true
			cancel()
			break
		}
	}
	if !sawExec {
		t.Fatal("event stream ended without a single ExecDone")
	}

	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-c.Done()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not stop within 30s of cancellation")
	}
	latency := time.Since(start)

	res, err := c.Wait()
	if err != nil {
		t.Fatalf("cancelled campaign returned error: %v", err)
	}
	if res == nil || res.Execs < 1 {
		t.Fatalf("cancelled campaign lost its partial results: %+v", res)
	}
	if res.Execs >= 1<<30 {
		t.Fatal("campaign ran to budget despite cancellation")
	}
	t.Logf("cancel -> done in %s after %d execs", latency, res.Execs)
}

// TestCampaignSnapshotMatchesResult asserts that the live statistics
// snapshot after completion and the terminal CampaignDone event both agree
// with the returned Result's aggregates.
func TestCampaignSnapshotMatchesResult(t *testing.T) {
	col := pmrace.NewCollector()
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(30, time.Minute),
		pmrace.WithWorkers(2),
		pmrace.WithSeed(11),
		pmrace.WithSink(col),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var final *pmrace.CampaignDone
	for _, ev := range col.Events() {
		if d, ok := ev.(*pmrace.CampaignDone); ok {
			final = d
		}
	}
	if final == nil {
		t.Fatal("no CampaignDone event recorded")
	}

	check := func(name string, stats pmrace.Stats) {
		t.Helper()
		if stats.Execs != res.Execs {
			t.Errorf("%s: Execs = %d, Result.Execs = %d", name, stats.Execs, res.Execs)
		}
		if stats.Seeds != res.Seeds {
			t.Errorf("%s: Seeds = %d, Result.Seeds = %d", name, stats.Seeds, res.Seeds)
		}
		if stats.BranchCov != res.BranchCov {
			t.Errorf("%s: BranchCov = %d, Result.BranchCov = %d", name, stats.BranchCov, res.BranchCov)
		}
		if stats.AliasCov != res.AliasCov {
			t.Errorf("%s: AliasCov = %d, Result.AliasCov = %d", name, stats.AliasCov, res.AliasCov)
		}
		if stats.Bugs != len(res.Bugs) {
			t.Errorf("%s: Bugs = %d, len(Result.Bugs) = %d", name, stats.Bugs, len(res.Bugs))
		}
		if stats.Target != res.Target {
			t.Errorf("%s: Target = %q, Result.Target = %q", name, stats.Target, res.Target)
		}
		if stats.Mode != res.Mode.String() {
			t.Errorf("%s: Mode = %q, Result.Mode = %q", name, stats.Mode, res.Mode.String())
		}
		wantInc := len(res.DB.Inconsistencies()) + len(res.DB.Syncs())
		if stats.Inconsistencies != wantInc {
			t.Errorf("%s: Inconsistencies = %d, want %d", name, stats.Inconsistencies, wantInc)
		}
	}
	check("CampaignDone.Stats", final.Stats)
	check("Snapshot()", c.Snapshot())
}

// jsonlLine mirrors the trace envelope: {kind, seq, at_ms, data}.
type jsonlLine struct {
	Kind string          `json:"kind"`
	Seq  uint64          `json:"seq"`
	AtMs float64         `json:"at_ms"`
	Data json.RawMessage `json:"data"`
}

// TestCampaignJSONLTrace runs a campaign with the JSONL trace sink and
// asserts every line parses, the sequence numbers are strictly increasing
// (single worker = single producer), and the final campaign_done line's
// stats equal the returned Result.
func TestCampaignJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(20, time.Minute),
		pmrace.WithWorkers(1),
		pmrace.WithSeed(5),
		pmrace.WithJSONTrace(&buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("trace has only %d lines", len(lines))
	}
	var last jsonlLine
	var prevSeq uint64
	kinds := map[string]int{}
	for i, ln := range lines {
		var l jsonlLine
		if err := json.Unmarshal(ln, &l); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		if l.Seq <= prevSeq {
			t.Fatalf("line %d: seq %d not greater than previous %d", i, l.Seq, prevSeq)
		}
		prevSeq = l.Seq
		kinds[l.Kind]++
		last = l
	}
	if kinds["exec_done"] != res.Execs {
		t.Errorf("trace has %d exec_done lines, Result.Execs = %d", kinds["exec_done"], res.Execs)
	}
	if last.Kind != "campaign_done" {
		t.Fatalf("last trace line is %q, want campaign_done", last.Kind)
	}

	var payload struct {
		Stats pmrace.Stats `json:"stats"`
	}
	if err := json.Unmarshal(last.Data, &payload); err != nil {
		t.Fatalf("campaign_done payload: %v", err)
	}
	st := payload.Stats
	if st.Execs != res.Execs || st.Seeds != res.Seeds ||
		st.BranchCov != res.BranchCov || st.AliasCov != res.AliasCov ||
		st.Bugs != len(res.Bugs) {
		t.Errorf("campaign_done stats %+v do not match Result (execs=%d seeds=%d br=%d al=%d bugs=%d)",
			st, res.Execs, res.Seeds, res.BranchCov, res.AliasCov, len(res.Bugs))
	}
}

// TestWithOptionsCompat keeps the deprecated struct escape hatch working for
// configurations assembled before the functional-options API.
func TestWithOptionsCompat(t *testing.T) {
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithOptions(pmrace.Options{MaxExecs: 8, Workers: 2, Seed: 2}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Execs < 8 {
		t.Fatalf("campaign ran %d executions, want >= 8", res.Execs)
	}
}

// TestCampaignStateLifecycle walks a campaign through the typed lifecycle:
// Running while in flight, Done after a completed budget, Cancelled after a
// context cancellation — and the Snapshot stats carry the same string.
func TestCampaignStateLifecycle(t *testing.T) {
	c, err := pmrace.NewCampaign(context.Background(), "pclht",
		pmrace.WithBudget(5, time.Minute), pmrace.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := c.State(); st != pmrace.StateRunning && st != pmrace.StateDone {
		t.Fatalf("in-flight state = %q", st)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := c.State(); st != pmrace.StateDone {
		t.Fatalf("terminal state = %q, want %q", st, pmrace.StateDone)
	}
	if got := c.Snapshot().State; got != string(pmrace.StateDone) {
		t.Fatalf("snapshot state = %q, want %q", got, pmrace.StateDone)
	}
	if !pmrace.StateDone.Terminal() || pmrace.StateRunning.Terminal() {
		t.Fatal("Terminal() misclassifies states")
	}

	ctx, cancel := context.WithCancel(context.Background())
	c2, err := pmrace.NewCampaign(ctx, "pclht",
		pmrace.WithBudget(1_000_000, time.Hour), pmrace.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := c2.State(); st != pmrace.StateCancelled {
		t.Fatalf("cancelled campaign state = %q, want %q", st, pmrace.StateCancelled)
	}
}
