// Live introspection server for long campaigns. A campaign run with an HTTP
// address exposes:
//
//	/healthz      liveness probe ("ok")
//	/status       the campaign Snapshot as JSON
//	/metrics      Prometheus text exposition of the obs registry
//	/events       the event stream as Server-Sent Events
//	/trace        the span timeline as Chrome trace-event JSON (Perfetto)
//	/debug/pprof  the standard Go profiling endpoints
//
// Each /events client gets its own SubscribeExtra channel, so any number of
// observers can stream without stealing events from the in-process
// Campaign.Events channel or from each other.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server serves the live-introspection endpoints of one campaign.
type Server struct {
	em     *Emitter
	status func() any
	tr     *Tracer

	srv    *http.Server
	ln     net.Listener
	cancel context.CancelFunc
}

// SetTracer attaches the campaign tracer; /trace answers 404 without one.
// Call before Start.
func (s *Server) SetTracer(tr *Tracer) {
	if s != nil {
		s.tr = tr
	}
}

// NewServer builds the server. status supplies the /status document (the
// campaign snapshot); when nil, /status answers 404.
func NewServer(em *Emitter, status func() any) *Server {
	s := &Server{em: em, status: status}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.srv = &http.Server{
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	return s
}

// Start binds addr (":0" picks a free port) and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: introspection listen on %s: %w", addr, err)
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck // always ErrServerClosed after Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Cancelling the base context first terminates open
// SSE streams, so the graceful shutdown below does not wait on them.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	s.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	if s.status == nil {
		http.NotFound(w, nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.status()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.em.Registry()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleEvents streams the campaign event feed as SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ServeSSE(w, r, s.em)
}

// handleTrace serves the campaign's span timeline as Chrome trace-event
// JSON, loadable in ui.perfetto.dev.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tr == nil || !s.tr.Enabled() {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := WriteChromeTrace(w, s.tr.Spans(), s.tr.Meta()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeSSE streams em's event feed to one HTTP client as Server-Sent
// Events. Each event becomes one frame: `event:` carries the kind, `id:`
// the emitter sequence number, and `data:` the same envelope JSONLSink
// writes per line. The stream ends when the emitter closes (campaign done),
// the client disconnects, or the request context is cancelled. Both the
// single-campaign obs.Server and the pmraced control plane serve their
// event endpoints through it, so the two streams cannot diverge in framing.
func ServeSSE(w http.ResponseWriter, r *http.Request, em *Emitter) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, unsub := em.SubscribeExtra(1024)
	defer unsub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		// Prefer draining buffered events over cancellation: the campaign
		// closes the emitter and then the server back to back, and the
		// terminal events (campaign_done) must not lose that race. A
		// disconnected client ends the loop through the write error below.
		var ev Event
		var ok bool
		select {
		case ev, ok = <-ch:
		default:
			select {
			case ev, ok = <-ch:
			case <-r.Context().Done():
				return
			}
		}
		if !ok {
			return
		}
		m := ev.Meta()
		data, err := json.Marshal(jsonlEnvelope{
			Kind: ev.Kind(),
			Seq:  m.Seq,
			AtMs: float64(m.At.Microseconds()) / 1e3,
			Data: ev,
		})
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind(), m.Seq, data); err != nil {
			return
		}
		fl.Flush()
	}
}
