package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryCounterConcurrent hammers one counter from 8 goroutines and
// checks the total is exact.
func TestRegistryCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(MExecs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
	if reg.Counter(MExecs) != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a new handle")
	}
}

// TestNilMetricHandles checks every metric type is nil-receiver safe, so
// producers can hold nil handles when metrics are disabled.
func TestNilMetricHandles(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(7)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.Snapshot() // must not panic
}

// TestHistogramSnapshot checks count/sum/mean and that the quantile bounds
// bracket the observations.
func TestHistogramSnapshot(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	st := h.Snapshot()
	if st.Count != 101 {
		t.Fatalf("count = %d, want 101", st.Count)
	}
	wantSum := 100*100*time.Microsecond + 50*time.Millisecond
	if st.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", st.Sum, wantSum)
	}
	if st.P50 < 100*time.Microsecond || st.P50 > time.Millisecond {
		t.Fatalf("p50 = %v, want a bucket bound near 100µs", st.P50)
	}
	if st.P95 > st.P50*1024 {
		t.Fatalf("p95 = %v implausibly far above p50 %v", st.P95, st.P50)
	}
}

// TestEmitterStampsAndSinks checks sequence stamping and synchronous sink
// fan-out.
func TestEmitterStampsAndSinks(t *testing.T) {
	col := NewCollector()
	em := NewEmitter(col)
	em.Emit(&PhaseChange{Phase: "fuzzing", Prev: "init"})
	em.Emit(&ExecDone{Exec: 1, NewBits: 3})
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("collector saw %d events, want 2", len(evs))
	}
	if evs[0].Meta().Seq != 1 || evs[1].Meta().Seq != 2 {
		t.Fatalf("bad sequence stamps: %d, %d", evs[0].Meta().Seq, evs[1].Meta().Seq)
	}
	if evs[1].Kind() != KindExecDone {
		t.Fatalf("kind = %s, want %s", evs[1].Kind(), KindExecDone)
	}
	// Emit after Close is a silent no-op.
	em.Emit(&ExecDone{Exec: 2})
	if len(col.Events()) != 2 {
		t.Fatal("emit after Close reached the sink")
	}
}

// TestEmitterNil checks the nil emitter is inert.
func TestEmitterNil(t *testing.T) {
	var em *Emitter
	em.Emit(&ExecDone{})
	if em.Registry() != nil {
		t.Fatal("nil emitter must return a nil registry")
	}
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEmitterChannelRing checks ring-buffer shedding: with a full buffer and
// no consumer, old events are displaced and the final event still lands.
func TestEmitterChannelRing(t *testing.T) {
	em := NewEmitter()
	ch := em.Subscribe(4)
	for i := 1; i <= 10; i++ {
		em.Emit(&ExecDone{Exec: i})
	}
	em.Emit(&CampaignDone{Stats: Stats{Execs: 10}})
	em.Close()
	var got []Event
	for ev := range ch {
		got = append(got, ev)
	}
	if len(got) != 4 {
		t.Fatalf("buffered %d events, want 4", len(got))
	}
	if _, ok := got[len(got)-1].(*CampaignDone); !ok {
		t.Fatalf("last buffered event is %T, want *CampaignDone", got[len(got)-1])
	}
	if em.Dropped() == 0 {
		t.Fatal("expected dropped-event accounting")
	}
}

// TestJSONLSink checks every line is standalone-parseable and carries the
// envelope plus payload.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	em := NewEmitter(NewJSONLSink(&buf))
	em.Emit(&ExecDone{Exec: 7, Worker: 2, NewBits: 5, BranchCov: 100, AliasCov: 40})
	em.Emit(&BugConfirmed{Class: "inter", Site: "pclht.go:42"})
	em.Emit(&CampaignDone{Stats: Stats{Target: "pclht", Execs: 7, Bugs: 1}})
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3", len(lines))
	}
	type envelope struct {
		Kind Kind                   `json:"kind"`
		Seq  uint64                 `json:"seq"`
		AtMs float64                `json:"at_ms"`
		Data map[string]interface{} `json:"data"`
	}
	var last envelope
	for i, line := range lines {
		var env envelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("line %d not parseable: %v\n%s", i, err, line)
		}
		if env.Seq != uint64(i+1) {
			t.Fatalf("line %d seq = %d", i, env.Seq)
		}
		last = env
	}
	if last.Kind != KindCampaignDone {
		t.Fatalf("last line kind = %s, want %s", last.Kind, KindCampaignDone)
	}
	stats, ok := last.Data["stats"].(map[string]interface{})
	if !ok {
		t.Fatalf("campaign_done payload missing stats: %v", last.Data)
	}
	if stats["execs"].(float64) != 7 || stats["bugs"].(float64) != 1 {
		t.Fatalf("campaign_done stats = %v", stats)
	}
}

// TestProgressSink checks the renderer emits a final line on Close.
func TestProgressSink(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgressSink(w, time.Hour, func() Stats {
		return Stats{Execs: 42, ExecsPerSec: 21.5, BranchCov: 9, Bugs: 1}
	})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "42 execs") || !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress output %q", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestFingerprintStable checks fingerprints ignore stamps and timing.
func TestFingerprintStable(t *testing.T) {
	a := &ExecDone{Exec: 3, NewBits: 1, Duration: 5 * time.Millisecond}
	a.Seq, a.At = 9, time.Second
	b := &ExecDone{Exec: 3, NewBits: 1, Duration: 9 * time.Millisecond}
	b.Seq, b.At = 2, time.Minute
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("fingerprints differ:\n%s\n%s", Fingerprint(a), Fingerprint(b))
	}
	if Fingerprint(a) == Fingerprint(&ExecDone{Exec: 4, NewBits: 1}) {
		t.Fatal("fingerprint must include payload fields")
	}
}
