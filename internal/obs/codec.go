package obs

import (
	"encoding/json"
	"fmt"
)

// DecodeEvent unmarshals the payload of a JSONL or SSE envelope back into
// its typed event, keyed by the envelope's kind. It is the inverse of the
// `data` field jsonlEnvelope serializes, letting consumers of /events and of
// trace files rebuild the same typed stream Campaign.Events delivers
// in-process (modulo the Seq/At stamps, which the envelope carries
// separately).
func DecodeEvent(kind Kind, data []byte) (Event, error) {
	var ev Event
	switch kind {
	case KindPhaseChange:
		ev = &PhaseChange{}
	case KindExecDone:
		ev = &ExecDone{}
	case KindSeedAccepted:
		ev = &SeedAccepted{}
	case KindInterleavingScheduled:
		ev = &InterleavingScheduled{}
	case KindInconsistencyFound:
		ev = &InconsistencyFound{}
	case KindValidationVerdict:
		ev = &ValidationVerdict{}
	case KindBugConfirmed:
		ev = &BugConfirmed{}
	case KindCampaignDone:
		ev = &CampaignDone{}
	default:
		return nil, fmt.Errorf("obs: unknown event kind %q", kind)
	}
	if err := json.Unmarshal(data, ev); err != nil {
		return nil, fmt.Errorf("obs: decoding %s event: %w", kind, err)
	}
	return ev, nil
}
