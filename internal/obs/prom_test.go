package obs

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"exec_latency":   "exec_latency",
		"weird-name.x":   "weird_name_x",
		"9lives":         "_9lives",
		"a:b":            "a:b",
		"CamelCase_ok":   "CamelCase_ok",
		"with space/sep": "with_space_sep",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusCountersGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter(MBugs).Add(3)
	r.Gauge(MBranchCov).Set(17)
	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE pmrace_cover_branch_bits gauge\n" +
		"pmrace_cover_branch_bits 17\n" +
		"# TYPE pmrace_detect_bugs_total counter\n" +
		"pmrace_detect_bugs_total 3\n"
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, nil); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, b.String())
	}
}

// promSample is one parsed non-comment exposition line.
type promSample struct {
	name  string
	le    string // histogram bucket label, "" otherwise
	value float64
}

// parsePrometheus is a minimal text-format parser: it checks every line is
// `name[{le="v"}] value` with a numeric value, that every sample belongs to
// a family declared by a preceding # TYPE line, and returns the samples.
func parsePrometheus(t *testing.T, text string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		var s promSample
		if i := strings.IndexByte(name, '{'); i >= 0 {
			label := name[i:]
			s.name = name[:i]
			if !strings.HasPrefix(label, `{le="`) || !strings.HasSuffix(label, `"}`) {
				t.Fatalf("unexpected label set %q", label)
			}
			s.le = label[len(`{le="`) : len(label)-len(`"}`)]
		} else {
			s.name = name
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		s.value = v
		// Every sample must belong to a declared family: its name or,
		// for histogram series, the name minus the suffix.
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if _, ok := types[base]; !ok && strings.HasSuffix(base, suf) {
				base = strings.TrimSuffix(base, suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no # TYPE declaration", s.name)
		}
		samples = append(samples, s)
	}
	return samples, types
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(HExecLatency)
	for _, d := range []time.Duration{
		500 * time.Nanosecond, // bucket 0 (sub-microsecond)
		time.Microsecond,      // bucket 0 (le="1e-06" is inclusive)
		3 * time.Microsecond,  // bucket 2
		5 * time.Second,       // mid-range
		5000 * time.Second,    // overflow: only visible in +Inf
	} {
		h.Observe(d)
	}
	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	samples, types := parsePrometheus(t, b.String())
	if types["pmrace_exec_latency_seconds"] != "histogram" {
		t.Fatalf("family type = %q, want histogram (types: %v)", types["pmrace_exec_latency_seconds"], types)
	}

	var les []float64
	var cum []float64
	var sum, count float64
	for _, s := range samples {
		switch s.name {
		case "pmrace_exec_latency_seconds_bucket":
			if s.le == "+Inf" {
				les = append(les, 1e308)
			} else {
				le, err := strconv.ParseFloat(s.le, 64)
				if err != nil {
					t.Fatalf("bucket le %q: %v", s.le, err)
				}
				les = append(les, le)
			}
			cum = append(cum, s.value)
		case "pmrace_exec_latency_seconds_sum":
			sum = s.value
		case "pmrace_exec_latency_seconds_count":
			count = s.value
		}
	}
	if len(les) != histBuckets {
		t.Fatalf("bucket lines = %d, want %d (31 finite + +Inf)", len(les), histBuckets)
	}
	if !sort.Float64sAreSorted(les) {
		t.Fatalf("le bounds not increasing: %v", les)
	}
	if les[0] != 1e-6 {
		t.Fatalf("first le = %v, want 1e-06", les[0])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decrease at %d: %v", i, cum)
		}
	}
	if count != 5 || cum[len(cum)-1] != 5 {
		t.Fatalf("count = %v, +Inf = %v, want 5", count, cum[len(cum)-1])
	}
	// The finite buckets hold only the four in-range observations; the
	// 5000s overflow appears in +Inf alone.
	if cum[len(cum)-2] != 4 {
		t.Fatalf("last finite bucket = %v, want 4", cum[len(cum)-2])
	}
	wantSum := 5005.000004 + 500e-9
	if diff := sum - wantSum; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("sum = %v, want ~%v", sum, wantSum)
	}
}

// TestHistogramBucketInclusive pins Prometheus le-inclusivity: a duration of
// exactly 2^i µs must count toward the le=2^i µs bucket, not the next one.
func TestHistogramBucketInclusive(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Microsecond)        // le="1e-06"
	h.Observe(2 * time.Microsecond)    // le="2e-06"
	h.Observe(1024 * time.Microsecond) // le="0.001024"
	counts, count, _ := h.Buckets()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	for i, want := range map[int]int64{0: 1, 1: 1, 10: 1} {
		if counts[i] != want {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, counts[i], want, counts[:12])
		}
	}
}

func TestWritePrometheusSortedAcrossKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter(MExecs).Inc()
	r.Counter(MBugs).Inc()
	r.Gauge(MAliasCov).Set(1)
	r.Histogram(HValidationLatency).Observe(time.Millisecond)
	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	var fams []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(fams) {
		t.Fatalf("families not sorted: %v", fams)
	}
	// Rendering twice produces identical output (deterministic).
	var b2 bytes.Buffer
	if err := WritePrometheus(&b2, r); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("exposition output not deterministic")
	}
}

// TestWritePrometheusLabeled merges two registries under distinct campaign
// labels: one # TYPE line per family, one labeled sample series per
// registry, histogram buckets carrying the labels before le, and label
// values escaped.
func TestWritePrometheusLabeled(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter(MExecs).Add(3)
	r2.Counter(MExecs).Add(5)
	r1.Gauge(MBranchCov).Set(7)
	r1.Histogram(HValidationLatency).Observe(time.Millisecond)

	var b bytes.Buffer
	err := WritePrometheusLabeled(&b,
		LabeledRegistry{Labels: []Label{{"campaign", "c0001"}, {"target", "pclht"}}, Reg: r1},
		LabeledRegistry{Labels: []Label{{"campaign", "c0002"}, {"target", `x"y`}}, Reg: r2},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if n := strings.Count(out, "# TYPE pmrace_fuzz_execs_total counter"); n != 1 {
		t.Fatalf("exec family TYPE line appears %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`pmrace_fuzz_execs_total{campaign="c0001",target="pclht"} 3`,
		`pmrace_fuzz_execs_total{campaign="c0002",target="x\"y"} 5`,
		`pmrace_cover_branch_bits{campaign="c0001",target="pclht"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing sample %q in:\n%s", want, out)
		}
	}
	// Histogram samples carry the label set too: buckets merge it with le,
	// sum/count wrap it alone.
	if !strings.Contains(out, `_bucket{campaign="c0001",target="pclht",le=`) {
		t.Errorf("histogram buckets not labeled:\n%s", out)
	}
	if !strings.Contains(out, `_count{campaign="c0001",target="pclht"} 1`) {
		t.Errorf("histogram count not labeled:\n%s", out)
	}
	// The unlabeled single-registry form is unchanged.
	var plain bytes.Buffer
	if err := WritePrometheus(&plain, r1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), "pmrace_fuzz_execs_total 3\n") {
		t.Errorf("unlabeled exposition changed:\n%s", plain.String())
	}
}
