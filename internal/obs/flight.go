package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// flightShards is the lock-shard count of the flight recorder. Completed
// spans are spread round-robin over the shards, so concurrent workers almost
// never contend on the same mutex even when every execution is sampled.
const flightShards = 8

// FlightRecorder keeps the last-N completed spans in a lock-sharded ring
// buffer. Recording is O(1) with one short shard-local critical section;
// Snapshot merges the shards into start-order and is only taken on anomaly
// dumps, timeline exports and bundle writes — the rare path pays for the
// hot path.
type FlightRecorder struct {
	next   atomic.Uint64
	shards [flightShards]flightShard
}

type flightShard struct {
	mu   sync.Mutex
	buf  []Span
	pos  int
	full bool
}

// NewFlightRecorder creates a recorder keeping roughly capacity spans
// (rounded up to at least 16 per shard).
func NewFlightRecorder(capacity int) *FlightRecorder {
	per := capacity / flightShards
	if per < 16 {
		per = 16
	}
	f := &FlightRecorder{}
	for i := range f.shards {
		f.shards[i].buf = make([]Span, per)
	}
	return f
}

// Record appends a completed span, evicting the oldest span of its shard
// when the ring is full.
func (f *FlightRecorder) Record(sp Span) {
	if f == nil {
		return
	}
	s := &f.shards[f.next.Add(1)%flightShards]
	s.mu.Lock()
	s.buf[s.pos] = sp
	s.pos++
	if s.pos == len(s.buf) {
		s.pos = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Len returns the number of spans currently held.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	n := 0
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		if s.full {
			n += len(s.buf)
		} else {
			n += s.pos
		}
		s.mu.Unlock()
	}
	return n
}

// Snapshot copies out the recorded spans sorted by start time (ties by ID,
// so snapshots are deterministic for a given recording).
func (f *FlightRecorder) Snapshot() []Span {
	if f == nil {
		return nil
	}
	var out []Span
	for i := range f.shards {
		s := &f.shards[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.buf[s.pos:]...)
			out = append(out, s.buf[:s.pos]...)
		} else {
			out = append(out, s.buf[:s.pos]...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}
