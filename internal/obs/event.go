package obs

import "time"

// Kind identifies an event type; the string doubles as the JSONL "kind"
// discriminator.
type Kind string

// The event taxonomy.
const (
	// KindPhaseChange marks a campaign lifecycle transition
	// (init -> fuzzing -> done).
	KindPhaseChange Kind = "phase_change"
	// KindExecDone is emitted after every execution with its coverage
	// delta and finding counts.
	KindExecDone Kind = "exec_done"
	// KindSeedAccepted is emitted when a seed enters the corpus: the
	// initial seeds, corpus-directory imports, and every seed retained
	// because an execution improved coverage.
	KindSeedAccepted Kind = "seed_accepted"
	// KindInterleavingScheduled is emitted when the interleaving tier
	// pops a priority-queue entry and schedules PM-aware executions
	// around its address.
	KindInterleavingScheduled Kind = "interleaving_scheduled"
	// KindInconsistencyFound is emitted by the detection layer when a
	// new (deduplicated) inconsistency enters the result database.
	KindInconsistencyFound Kind = "inconsistency_found"
	// KindValidationVerdict is emitted by post-failure validation for
	// every judged finding.
	KindValidationVerdict Kind = "validation_verdict"
	// KindBugConfirmed is emitted when a finding survives post-failure
	// validation and is recorded as a bug.
	KindBugConfirmed Kind = "bug_confirmed"
	// KindCampaignDone carries the final Stats snapshot; it is always
	// the last event of a campaign.
	KindCampaignDone Kind = "campaign_done"
)

// EventMeta is the envelope every event carries: a campaign-unique sequence
// number and the elapsed time since campaign start. The fields are stamped
// by the Emitter; JSONL encoding hoists them into the envelope, so they are
// excluded from the payload ("-" tags).
type EventMeta struct {
	Seq uint64        `json:"-"`
	At  time.Duration `json:"-"`
}

// Meta returns the embedded envelope for in-place stamping.
func (m *EventMeta) Meta() *EventMeta { return m }

// Event is one typed campaign event.
type Event interface {
	Kind() Kind
	Meta() *EventMeta
}

// PhaseChange marks a campaign lifecycle transition.
type PhaseChange struct {
	EventMeta
	Phase string `json:"phase"`
	Prev  string `json:"prev,omitempty"`
}

// Kind implements Event.
func (*PhaseChange) Kind() Kind { return KindPhaseChange }

// ExecDone reports one finished execution.
type ExecDone struct {
	EventMeta
	// Exec is the global 1-based execution ordinal.
	Exec int `json:"exec"`
	// Worker is the fuzzing worker that ran it.
	Worker int `json:"worker"`
	// NewBits counts coverage bits this execution set first.
	NewBits int `json:"new_bits"`
	// BranchCov/AliasCov are the global coverage counts afterwards.
	BranchCov int `json:"branch_cov"`
	AliasCov  int `json:"alias_cov"`
	// Candidates/Inconsistencies/Syncs count this execution's raw
	// findings (before deduplication).
	Candidates      int `json:"candidates"`
	Inconsistencies int `json:"inconsistencies"`
	Syncs           int `json:"syncs"`
	// Duration is the wall-clock cost of the execution.
	Duration time.Duration `json:"duration_ns"`
}

// Kind implements Event.
func (*ExecDone) Kind() Kind { return KindExecDone }

// SeedAccepted reports a seed entering the corpus.
type SeedAccepted struct {
	EventMeta
	// Origin is "initial", "corpus-dir" or "improving".
	Origin string `json:"origin"`
	// Ops is the seed's operation count.
	Ops int `json:"ops"`
	// CorpusSize is the corpus size after acceptance.
	CorpusSize int `json:"corpus_size"`
}

// Kind implements Event.
func (*SeedAccepted) Kind() Kind { return KindSeedAccepted }

// InterleavingScheduled reports one interleaving-tier exploration target.
type InterleavingScheduled struct {
	EventMeta
	Worker int `json:"worker"`
	// Addr is the hot shared PM address whose loads become sync points.
	Addr uint64 `json:"addr"`
	// Priority is the entry's access-frequency priority.
	Priority int `json:"priority"`
	// Skip is the Pitfall-3 skip count applied to its cond_waits.
	Skip int `json:"skip"`
}

// Kind implements Event.
func (*InterleavingScheduled) Kind() Kind { return KindInterleavingScheduled }

// InconsistencyFound reports a new deduplicated finding entering the result
// database. Class is "inter", "intra" or "sync"; the site fields are
// human-readable file:line locations.
type InconsistencyFound struct {
	EventMeta
	Class     string `json:"class"`
	WriteSite string `json:"write_site,omitempty"`
	ReadSite  string `json:"read_site,omitempty"`
	StoreSite string `json:"store_site,omitempty"`
	// Var is the annotated variable name for sync inconsistencies.
	Var string `json:"var,omitempty"`
	// Flow is "value" or "address" for inter/intra findings.
	Flow string `json:"flow,omitempty"`
}

// Kind implements Event.
func (*InconsistencyFound) Kind() Kind { return KindInconsistencyFound }

// ValidationVerdict reports one post-failure validation outcome.
type ValidationVerdict struct {
	EventMeta
	Class string `json:"class"`
	// Status is the verdict: "bug", "validated-fp" or "whitelisted-fp".
	Status string `json:"status"`
	// RecoveryHung reports that the recovery run itself hung.
	RecoveryHung bool `json:"recovery_hung,omitempty"`
	// CrashStates is the number of enumerated crash states the finding was
	// judged against (zero for whitelisted/external findings that skip
	// recovery).
	CrashStates int `json:"crash_states,omitempty"`
	// Latency is the wall-clock cost of the validation run.
	Latency time.Duration `json:"latency_ns"`
}

// Kind implements Event.
func (*ValidationVerdict) Kind() Kind { return KindValidationVerdict }

// BugConfirmed reports a finding that survived post-failure validation.
type BugConfirmed struct {
	EventMeta
	Class string `json:"class"`
	// Site is the grouping site (dirty write site, or sync-update site).
	Site string `json:"site"`
	// Var is the variable name for sync bugs.
	Var     string `json:"var,omitempty"`
	Summary string `json:"summary,omitempty"`
}

// Kind implements Event.
func (*BugConfirmed) Kind() Kind { return KindBugConfirmed }

// CampaignDone carries the terminal statistics; its Stats equal the
// campaign's returned Result aggregates.
type CampaignDone struct {
	EventMeta
	Stats Stats `json:"stats"`
}

// Kind implements Event.
func (*CampaignDone) Kind() Kind { return KindCampaignDone }

// Stats is a point-in-time statistics snapshot, also carried by the
// terminal CampaignDone event.
type Stats struct {
	Target string `json:"target"`
	Mode   string `json:"mode"`
	// State is the campaign lifecycle state ("pending", "running",
	// "draining", "done", "cancelled", "failed") — the typed api.State
	// enum as a string. The fuzzer itself leaves it empty; the campaign
	// wrappers (pmrace.Campaign, pmraced) stamp it into the snapshots
	// they serve, replacing the old ad-hoc phase strings.
	State string `json:"state,omitempty"`
	// Execs and Seeds mirror Result.Execs/Result.Seeds.
	Execs int `json:"execs"`
	Seeds int `json:"seeds"`
	// BranchCov/AliasCov are global coverage bit counts.
	BranchCov int `json:"branch_cov"`
	AliasCov  int `json:"alias_cov"`
	// Inconsistencies counts deduplicated findings (inter+intra+sync).
	Inconsistencies int `json:"inconsistencies"`
	// Bugs counts unique bugs (the paper's §6.2 grouping).
	Bugs        int           `json:"bugs"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	// Interleavings counts interleaving-tier entries actually scheduled;
	// InterleavingsPruned counts entries dropped by schedule-equivalence
	// pruning (their class had already run without a novel outcome).
	Interleavings       int64 `json:"interleavings"`
	InterleavingsPruned int64 `json:"interleavings_pruned"`
	// CheckpointRestores counts dirty-line pool restores served by the
	// in-memory checkpoint (the fork-server substitute).
	CheckpointRestores int64 `json:"checkpoint_restores"`
	// Validations counts post-failure validation runs.
	Validations int64 `json:"validations"`
	// EventsDropped counts events the subscriber channel shed because
	// the consumer fell behind (sinks never drop).
	EventsDropped int64 `json:"events_dropped"`
}
