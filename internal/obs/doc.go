// Package obs is PMRace's campaign observability layer: a typed event
// stream, a lock-cheap metrics registry, and pluggable sinks.
//
// A fuzzing campaign used to be a black box — the original blocking entry
// point returned one terminal Result. The event stream makes the
// campaign watchable while it runs: every layer of the stack (executor,
// scheduler tiers, corpus, detection, post-failure validation) emits typed
// events through one Emitter, which fans them out to attached sinks (a JSONL
// trace writer, a human progress line, an in-memory collector for tests) and
// to an optional subscriber channel consumed through Campaign.Events().
//
// The taxonomy maps onto the paper's measurements: ExecDone events carry the
// per-execution coverage deltas behind Figure 9's timelines and Figure 10's
// throughput, InconsistencyFound/BugConfirmed arrival times are Figure 8's
// detection-time series, and ValidationVerdict latencies are the
// post-failure stage cost the checkpoint design amortizes.
package obs
