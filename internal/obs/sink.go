package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink consumes campaign events. Emit is called synchronously from fuzzing
// workers, so implementations must be safe for concurrent use and cheap;
// Close flushes buffered state once the campaign is over.
type Sink interface {
	Emit(Event)
	Close() error
}

// jsonlEnvelope is one JSONL trace line: the stamped envelope plus the
// kind-specific payload.
type jsonlEnvelope struct {
	Kind Kind    `json:"kind"`
	Seq  uint64  `json:"seq"`
	AtMs float64 `json:"at_ms"`
	Data Event   `json:"data"`
}

// JSONLSink writes one JSON object per event to w — the machine-readable
// campaign trace behind EXPERIMENTS.md's time-series plots.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink creates a JSONL trace writer over w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	m := ev.Meta()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonlEnvelope{
		Kind: ev.Kind(),
		Seq:  m.Seq,
		AtMs: float64(m.At) / float64(time.Millisecond),
		Data: ev,
	})
}

// Close implements Sink; it reports the first write error, if any.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Collector is an in-memory sink for tests: it records every event in
// emission order.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

// Close implements Sink.
func (c *Collector) Close() error { return nil }

// Events returns a copy of the recorded events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Kinds returns the recorded event kinds in order.
func (c *Collector) Kinds() []Kind {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Kind, len(c.events))
	for i, ev := range c.events {
		out[i] = ev.Kind()
	}
	return out
}

// ProgressSink renders a single human status line (execs, execs/s,
// coverage, bugs) at a fixed interval, pulling numbers from a Stats
// provider rather than accumulating events itself.
type ProgressSink struct {
	w     io.Writer
	snap  func() Stats
	stop  chan struct{}
	done  chan struct{}
	close sync.Once
}

// NewProgressSink starts a progress renderer writing to w every interval
// (1s when interval <= 0). snap supplies the live statistics.
func NewProgressSink(w io.Writer, interval time.Duration, snap func() Stats) *ProgressSink {
	if interval <= 0 {
		interval = time.Second
	}
	p := &ProgressSink{
		w:    w,
		snap: snap,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go p.loop(interval)
	return p
}

func (p *ProgressSink) loop(interval time.Duration) {
	defer close(p.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			p.render(false)
		case <-p.stop:
			p.render(true)
			return
		}
	}
}

func (p *ProgressSink) render(last bool) {
	st := p.snap()
	end := "\r"
	if last {
		end = "\n"
	}
	fmt.Fprintf(p.w, "%8d execs | %7.1f exec/s | cov %5d br / %5d alias | %d inconsistencies | %d bugs%s",
		st.Execs, st.ExecsPerSec, st.BranchCov, st.AliasCov, st.Inconsistencies, st.Bugs, end)
}

// Emit implements Sink; progress is time-driven, not event-driven.
func (p *ProgressSink) Emit(Event) {}

// Close stops the renderer after a final full-stats line.
func (p *ProgressSink) Close() error {
	p.close.Do(func() { close(p.stop) })
	<-p.done
	return nil
}

// MultiSink fans one event out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Close implements Sink; it closes every sink and returns the first error.
func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
