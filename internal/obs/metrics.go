package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Standard metric names. Producers register them lazily through the
// Registry; keeping the names here stops dashboards and code drifting.
const (
	MExecs                = "fuzz_execs_total"
	MSeedsAccepted        = "corpus_seeds_accepted_total"
	MInterleavings        = "sched_interleavings_total"
	MInterleavingsPruned  = "sched_interleavings_pruned_total"
	MInconsistencies      = "detect_inconsistencies_total"
	MBugs                 = "detect_bugs_total"
	MCheckpointRestores   = "exec_checkpoint_restores_total"
	MValidations          = "validate_runs_total"
	MValidateCrashStates  = "validate_crash_states_total"
	MValidateWallTimeouts = "validate_wall_timeouts_total"
	MEventsDropped        = "obs_events_dropped_total"
	MSSEDropped           = "obs_sse_dropped_total"
	GQueueDepth           = "serve_queue_depth"
	GWorkerBudgetInUse    = "serve_worker_budget_in_use"
	MBranchCov            = "cover_branch_bits"
	MAliasCov             = "cover_alias_bits"
	HExecLatency          = "exec_latency"
	HValidationLatency    = "validate_latency"
	HValidateStateLatency = "validate_state_latency"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver safe so producers can hold a nil handle when metrics are
// disabled without branching at every increment site.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two latency buckets; bucket i holds
// observations with ceil(log2(us)) == i, so the range spans 1µs..~2200s.
const histBuckets = 32

// Histogram accumulates durations into lock-free power-of-two buckets: one
// atomic add per observation, no mutex on the hot path. A histogram can also
// carry one exemplar: a pointer from the latency distribution to a concrete
// artifact (bundle name) that exhibited it, surfaced in JSON snapshots.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	ex      atomic.Pointer[Exemplar]
}

// Exemplar links a histogram to one concrete observation's artifact.
type Exemplar struct {
	// Label identifies the exemplar source, e.g. an artifact bundle name.
	Label string `json:"label"`
	// Value is the observation's duration.
	Value time.Duration `json:"value_ns"`
}

// SetExemplar records label as the histogram's exemplar (last writer wins).
func (h *Histogram) SetExemplar(label string, v time.Duration) {
	if h == nil || label == "" {
		return
	}
	h.ex.Store(&Exemplar{Label: label, Value: v})
}

// Exemplar returns the current exemplar, or nil.
func (h *Histogram) Exemplar() *Exemplar {
	if h == nil {
		return nil
	}
	return h.ex.Load()
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	// bits.Len64(us-1) is ceil(log2(us)): exactly 2^i µs lands in bucket i,
	// matching the inclusive le=2^i µs bound the Prometheus renderer
	// exports for it. Non-positive durations land in bucket 0.
	var idx int
	if us > 0 {
		idx = bits.Len64(uint64(us) - 1)
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Buckets returns a copy of the raw per-bucket counts plus the total count
// and sum in nanoseconds. Bucket i holds observations with
// ceil(log2(microseconds)) == i, i.e. durations in (2^(i-1), 2^i] µs (the
// last bucket also absorbs overflow); the Prometheus renderer turns these
// into cumulative le-bounds.
func (h *Histogram) Buckets() (counts [histBuckets]int64, count, sumNs int64) {
	if h == nil {
		return
	}
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts, h.count.Load(), h.sum.Load()
}

// HistStat is a histogram snapshot.
type HistStat struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	// P50/P95 are bucket-upper-bound approximations.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	// Exemplar links the distribution to a concrete artifact when one was
	// recorded (e.g. the bundle name of a validated finding).
	Exemplar   string        `json:"exemplar,omitempty"`
	ExemplarNs time.Duration `json:"exemplar_ns,omitempty"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistStat {
	if h == nil {
		return HistStat{}
	}
	var st HistStat
	st.Count = h.count.Load()
	st.Sum = time.Duration(h.sum.Load())
	if st.Count == 0 {
		return st
	}
	st.Mean = st.Sum / time.Duration(st.Count)
	st.P50 = h.quantile(st.Count, 0.50)
	st.P95 = h.quantile(st.Count, 0.95)
	if ex := h.ex.Load(); ex != nil {
		st.Exemplar = ex.Label
		st.ExemplarNs = ex.Value
	}
	return st
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the bucket-upper-bound approximation of the q-quantile
// over all observations so far (0 when empty).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	return h.quantile(count, q)
}

// quantile returns the upper bound of the bucket containing the q-quantile.
func (h *Histogram) quantile(count int64, q float64) time.Duration {
	rank := int64(q * float64(count))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			// Bucket i holds values up to 2^i microseconds.
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	// Unreachable: the last bucket absorbs every overflow observation.
	return time.Duration(uint64(1)<<(histBuckets-1)) * time.Microsecond
}

// Registry is a names-to-metrics map with lock-free metric updates.
// Get-or-create goes through a mutex (rare); producers cache the returned
// handles, so steady-state cost is one atomic op per update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Safe to call
// on a nil registry (returns a nil, no-op handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every registered metric.
type MetricsSnapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

// Snapshot copies all metric values.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistStat),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
