package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: the campaign's wall-clock attribution layer. A Span records
// where one stage of the schedule → execute → detect → validate lifecycle
// spent its time; completed spans land in the flight recorder (last-N ring,
// dumped on anomaly) and feed per-stage latency histograms in the metrics
// registry. The subsystem is stdlib-only and costs a single atomic load when
// disabled; the per-access PM hooks are never on the span path at all — the
// hot path of PR 1 stays exactly as benchmarked.

// Span names. The set is fixed: every span a campaign records carries one of
// these names, which bounds the per-stage histogram cardinality (one
// span_<name> family per name, never one per exec or per address).
const (
	// SpanQueueWait covers a pmraced campaign's admission wait: submission
	// until the worker budget had headroom.
	SpanQueueWait = "queue_wait"
	// SpanCampaign covers the whole fuzzing run, lane 0.
	SpanCampaign = "campaign"
	// SpanSeedPick covers one seed-tier corpus pick.
	SpanSeedPick = "seed_pick"
	// SpanInterleaving covers one interleaving-tier decision: the queue
	// pop, the equivalence-pruning check and the schedule choice.
	SpanInterleaving = "interleaving"
	// SpanExecRun covers one sampled execution end to end.
	SpanExecRun = "exec_run"
	// SpanConflictAnalysis covers the final log drain and deferred batch
	// conflict analysis at the end of an execution.
	SpanConflictAnalysis = "conflict_analysis"
	// SpanCrashStateEnum covers crash-state enumeration for one finding.
	SpanCrashStateEnum = "crash_state_enum"
	// SpanValidate covers one finding's post-failure validation verdict.
	SpanValidate = "validate"
	// SpanValidateState covers one crash state's recovery run inside a
	// validation.
	SpanValidateState = "validate_state"
)

// SpanNames lists every span name the engine records, for cardinality
// checks and dashboards.
func SpanNames() []string {
	return []string{
		SpanQueueWait, SpanCampaign, SpanSeedPick, SpanInterleaving,
		SpanExecRun, SpanConflictAnalysis, SpanCrashStateEnum,
		SpanValidate, SpanValidateState,
	}
}

// SpanHistName is the metrics-registry histogram name for a span name.
func SpanHistName(name string) string { return "span_" + name }

// Lane bases. A lane is the span's display thread (the Chrome trace-event
// tid): spans on one lane are required to nest properly, so each logical
// actor gets its own lane.
const (
	// LaneSupervisor carries queue_wait and the campaign phase spans.
	LaneSupervisor = 0
	// LaneWorkerBase + w is fuzzing worker w's lane (seed_pick,
	// interleaving, exec_run, conflict_analysis).
	LaneWorkerBase = 1
	// LaneValidatorBase + i is validation worker i's lane.
	LaneValidatorBase = 100
	// LaneExecDetailBase starts the per-execution detail lanes: crash-state
	// enumeration runs on driver-thread goroutines concurrent with the
	// worker's exec_run span, so each capture gets a lane of its own.
	LaneExecDetailBase = 1000
)

// DefaultTraceSample is the default per-exec sampling rate: one execution in
// DefaultTraceSample records detailed spans.
const DefaultTraceSample = 8

// defaultFlightSpans sizes the flight recorder: the last-N completed spans
// kept for anomaly dumps and timeline export.
const defaultFlightSpans = 4096

// maxAnomalyDumps bounds standalone anomaly dumps per tracer, so a
// pathological campaign (every exec beyond p99.9) cannot fill the disk.
const maxAnomalyDumps = 8

// Span is one completed span record as the flight recorder stores it and
// spans.json serializes it.
type Span struct {
	// ID is unique within the tracer; Parent links an enclosing span (0 =
	// root).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name is one of the Span* constants.
	Name string `json:"name"`
	// Lane is the display thread; spans sharing a lane nest properly.
	Lane int `json:"lane"`
	// Exec is the sampled-execution ordinal tying the spans of one
	// execution together (0 = not execution-scoped).
	Exec int64 `json:"exec,omitempty"`
	// StartNs/DurNs are nanoseconds since the tracer epoch / duration.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// Attrs carries span attributes (entry description, verdict, counts).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceMeta names the trace for export: the Perfetto process row.
type TraceMeta struct {
	Campaign string `json:"campaign,omitempty"`
	Target   string `json:"target,omitempty"`
}

// Tracer records spans for one campaign. All methods are safe on a nil
// receiver (every producer can hold an unconditional handle), and Start is a
// single atomic load plus a branch when tracing is disabled — nothing else
// on the disabled path.
type Tracer struct {
	enabled atomic.Bool
	sampleN int64
	execCtr atomic.Int64 // Sample() calls (≈ executions offered)
	sampled atomic.Int64 // sampled-execution ordinals
	ids     atomic.Uint64
	epoch   time.Time
	flight  *FlightRecorder
	reg     *Registry

	hmu   sync.Mutex
	hists map[string]*Histogram

	mu         sync.Mutex
	meta       TraceMeta
	anomalyDir string
	anomalies  int
}

// NewTracer creates an enabled tracer recording into reg's span histograms
// (reg may be nil: spans then only reach the flight recorder). sampleN is
// the per-exec sampling rate (1 = every execution, n = one in n); values
// <= 0 select DefaultTraceSample.
func NewTracer(reg *Registry, sampleN int) *Tracer {
	if sampleN <= 0 {
		sampleN = DefaultTraceSample
	}
	t := &Tracer{
		sampleN: int64(sampleN),
		epoch:   time.Now(),
		flight:  NewFlightRecorder(defaultFlightSpans),
		reg:     reg,
		hists:   make(map[string]*Histogram),
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips the atomic gate; a disabled tracer's Start returns an
// inert span after one atomic load.
func (t *Tracer) SetEnabled(v bool) {
	if t != nil {
		t.enabled.Store(v)
	}
}

// SetMeta names the trace for export.
func (t *Tracer) SetMeta(campaign, target string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = TraceMeta{Campaign: campaign, Target: target}
	t.mu.Unlock()
}

// Meta returns the trace naming metadata.
func (t *Tracer) Meta() TraceMeta {
	if t == nil {
		return TraceMeta{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.meta
}

// SetAnomalyDir routes standalone anomaly dumps (hang-watchdog trips,
// p99.9 outlier executions) into dir, created on first dump. Empty keeps
// anomaly dumps disabled; confirmed-bug dumps ride the artifact bundle
// regardless.
func (t *Tracer) SetAnomalyDir(dir string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.anomalyDir = dir
	t.mu.Unlock()
}

// Epoch returns the tracer's time origin (StartNs is relative to it).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Sample reports whether the next execution should record detailed spans:
// one call per offered execution, true once every sampleN calls.
func (t *Tracer) Sample() bool {
	if t == nil || !t.enabled.Load() {
		return false
	}
	return t.execCtr.Add(1)%t.sampleN == 0
}

// NextExec allocates the next sampled-execution ordinal, shared by all
// spans of one sampled execution.
func (t *Tracer) NextExec() int64 {
	if t == nil {
		return 0
	}
	return t.sampled.Add(1)
}

// Start opens a span on the given lane. A nil tracer, a disabled tracer or
// a negative lane (the "not sampled" lane) returns an inert SpanCtx whose
// methods are all no-ops — callers never branch.
func (t *Tracer) Start(lane int, name string) SpanCtx {
	if t == nil || lane < 0 || !t.enabled.Load() {
		return SpanCtx{}
	}
	return SpanCtx{t: t, id: t.ids.Add(1), name: name, lane: int32(lane), start: time.Now()}
}

// hist returns the cached span histogram for a name.
func (t *Tracer) hist(name string) *Histogram {
	t.hmu.Lock()
	defer t.hmu.Unlock()
	h, ok := t.hists[name]
	if !ok {
		h = t.reg.Histogram(SpanHistName(name))
		t.hists[name] = h
	}
	return h
}

// finish records a completed span.
func (t *Tracer) finish(s *SpanCtx, d time.Duration) {
	sp := Span{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Lane:    int(s.lane),
		Exec:    s.exec,
		StartNs: s.start.Sub(t.epoch).Nanoseconds(),
		DurNs:   d.Nanoseconds(),
		Attrs:   s.attrs,
	}
	t.flight.Record(sp)
	t.hist(s.name).Observe(d)
}

// Spans returns the flight recorder's contents, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.flight.Snapshot()
}

// WriteChrome renders the flight recorder as Chrome trace-event JSON
// (viewable in ui.perfetto.dev).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: tracing disabled")
	}
	return WriteChromeTrace(w, t.Spans(), t.Meta())
}

// AnomalyDump is the standalone anomaly-dump document (and the spans.json
// schema inside artifact bundles, with Reason "bug_confirmed").
type AnomalyDump struct {
	Schema   int    `json:"schema"`
	Campaign string `json:"campaign,omitempty"`
	Target   string `json:"target,omitempty"`
	Reason   string `json:"reason"`
	Spans    []Span `json:"spans"`
}

// DumpAnomaly writes the flight recorder's last-N spans as a standalone
// anomaly dump named after reason. Dumps are rate-limited to
// maxAnomalyDumps per tracer and dropped when no anomaly directory is
// configured; both make the call safe on hot-ish paths.
func (t *Tracer) DumpAnomaly(reason string) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	dir := t.anomalyDir
	if dir == "" || t.anomalies >= maxAnomalyDumps {
		t.mu.Unlock()
		return
	}
	t.anomalies++
	n := t.anomalies
	meta := t.meta
	t.mu.Unlock()

	dump := AnomalyDump{
		Schema:   1,
		Campaign: meta.Campaign,
		Target:   meta.Target,
		Reason:   reason,
		Spans:    t.flight.Snapshot(),
	}
	if dump.Spans == nil {
		dump.Spans = []Span{}
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("anomaly-%03d-%s.json", n, reason))
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}

// SpanCtx is an open span handle. The zero value is inert: every method is
// a no-op, so call sites thread handles unconditionally and the disabled /
// unsampled path never branches.
type SpanCtx struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	lane   int32
	exec   int64
	start  time.Time
	attrs  map[string]string
}

// Active reports whether the span will be recorded on End.
func (s *SpanCtx) Active() bool { return s != nil && s.t != nil }

// ID returns the span's tracer-unique ID (0 for inert spans).
func (s *SpanCtx) ID() uint64 { return s.id }

// SetAttr attaches an attribute; keys should come from a small fixed set.
func (s *SpanCtx) SetAttr(k, v string) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// SetExec tags the span with a sampled-execution ordinal.
func (s *SpanCtx) SetExec(n int64) {
	if s.t != nil {
		s.exec = n
	}
}

// Child opens a sub-span on the same lane and execution, parented to s.
func (s *SpanCtx) Child(name string) SpanCtx {
	if s.t == nil {
		return SpanCtx{}
	}
	c := s.t.Start(int(s.lane), name)
	c.parent = s.id
	c.exec = s.exec
	return c
}

// End completes the span: it lands in the flight recorder and its duration
// in the span_<name> histogram. End is idempotent; durations are clamped to
// >= 1ns so a span's B/E trace events never coincide.
func (s *SpanCtx) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	if d <= 0 {
		d = 1
	}
	s.t.finish(s, d)
	s.t = nil
}
