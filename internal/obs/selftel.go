package obs

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// Runtime self-telemetry: a 1 Hz sampler turning Go runtime health (GC
// pause, goroutine count, heap, scheduling latency) into registry gauges, so
// /metrics explains when the engine itself — not the target — is the
// bottleneck.

// Runtime gauge names.
const (
	GRuntimeGoroutines  = "runtime_goroutines"
	GRuntimeHeapBytes   = "runtime_heap_alloc_bytes"
	GRuntimeGCPauseNs   = "runtime_gc_pause_total_ns"
	GRuntimeSchedLatP50 = "runtime_sched_latency_p50_ns"
	GRuntimeSchedLatP99 = "runtime_sched_latency_p99_ns"
)

// schedLatMetric is the runtime/metrics histogram of goroutine scheduling
// latency (time runnable goroutines waited for a P).
const schedLatMetric = "/sched/latencies:seconds"

// RuntimeSampler periodically samples runtime health into a Registry.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler begins sampling reg's runtime gauges every interval
// (<= 0 selects 1s). One sample is taken synchronously so the gauges are
// never absent from a scrape that races the first tick.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	sampleRuntime(reg)
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sampleRuntime(reg)
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Close stops the sampler and waits for its goroutine to exit.
func (s *RuntimeSampler) Close() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// sampleRuntime takes one sample into reg.
func sampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge(GRuntimeGoroutines).Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge(GRuntimeHeapBytes).Set(int64(ms.HeapAlloc))
	reg.Gauge(GRuntimeGCPauseNs).Set(int64(ms.PauseTotalNs))

	samples := []metrics.Sample{{Name: schedLatMetric}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[0].Value.Float64Histogram()
		reg.Gauge(GRuntimeSchedLatP50).Set(histQuantileNs(h, 0.50))
		reg.Gauge(GRuntimeSchedLatP99).Set(histQuantileNs(h, 0.99))
	}
}

// histQuantileNs estimates a quantile of a runtime/metrics histogram (bucket
// values in seconds) in nanoseconds, using each bucket's upper bound.
func histQuantileNs(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			ub := h.Buckets[i+1]
			if ub > 1e9 { // +Inf bucket: fall back to the lower bound
				ub = h.Buckets[i]
			}
			return int64(ub * 1e9)
		}
	}
	return int64(h.Buckets[len(h.Buckets)-1] * 1e9)
}
