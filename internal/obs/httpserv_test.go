package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// allKindsEvents returns one event of every kind, ending with the terminal
// CampaignDone, mirroring a miniature campaign.
func allKindsEvents() []Event {
	return []Event{
		&PhaseChange{Phase: "fuzzing", Prev: "init"},
		&SeedAccepted{Origin: "initial", Ops: 10, CorpusSize: 1},
		&ExecDone{Exec: 1, Worker: 0, NewBits: 3, BranchCov: 3, AliasCov: 1, Candidates: 2, Duration: time.Millisecond},
		&InterleavingScheduled{Worker: 0, Addr: 0x40, Priority: 7, Skip: 1},
		&InconsistencyFound{Class: "inter", WriteSite: "a.go:1", ReadSite: "b.go:2", StoreSite: "c.go:3", Flow: "value"},
		&ValidationVerdict{Class: "inter", Status: "bug", Latency: time.Millisecond},
		&BugConfirmed{Class: "inter", Site: "a.go:1", Summary: "dirty read"},
		&CampaignDone{Stats: Stats{Target: "t", Mode: "pmrace", Execs: 1, Seeds: 1, Bugs: 1}},
	}
}

func TestSubscribeExtraIndependence(t *testing.T) {
	em := NewEmitter()
	main := em.Subscribe(64)
	ex1, cancel1 := em.SubscribeExtra(64)
	ex2, cancel2 := em.SubscribeExtra(64)
	defer cancel2()

	events := allKindsEvents()
	for _, ev := range events {
		em.Emit(ev)
	}

	want := make([]string, len(events))
	for i, ev := range events {
		want[i] = Fingerprint(ev)
	}
	check := func(name string, ch <-chan Event) {
		t.Helper()
		for i, w := range want {
			select {
			case ev := <-ch:
				if got := Fingerprint(ev); got != w {
					t.Fatalf("%s event %d: got %q, want %q", name, i, got, w)
				}
			default:
				t.Fatalf("%s: missing event %d", name, i)
			}
		}
		select {
		case ev := <-ch:
			t.Fatalf("%s: unexpected extra event %q", name, Fingerprint(ev))
		default:
		}
	}
	check("main", main)
	check("extra1", ex1)
	check("extra2", ex2)

	// Cancelling detaches and closes the channel; later emits skip it.
	cancel1()
	if _, ok := <-ex1; ok {
		t.Fatal("cancelled extra channel not closed")
	}
	em.Emit(&PhaseChange{Phase: "done", Prev: "fuzzing"})
	select {
	case ev := <-ex2:
		if got := Fingerprint(ev); got != "phase_change done<-fuzzing" {
			t.Fatalf("extra2 after cancel1: got %q", got)
		}
	default:
		t.Fatal("extra2 missed event emitted after cancel1")
	}

	// Close closes every remaining extra; cancel afterwards must not panic.
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	for ev := range ex2 {
		_ = ev // drain the buffered event, then the close
	}
	cancel2()
	cancel1()
}

func TestSubscribeExtraAfterClose(t *testing.T) {
	em := NewEmitter()
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	ch, cancel := em.SubscribeExtra(8)
	if _, ok := <-ch; ok {
		t.Fatal("SubscribeExtra after Close returned an open channel")
	}
	cancel()
}

func newTestServer(t *testing.T, em *Emitter, status func() any) *Server {
	t.Helper()
	s := NewServer(em, status)
	if _, err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServerBasicEndpoints(t *testing.T) {
	em := NewEmitter()
	defer em.Close()
	em.Registry().Counter(MExecs).Add(9)
	s := newTestServer(t, em, func() any {
		return Stats{Target: "pclht", Mode: "pmrace", Execs: 9}
	})
	base := "http://" + s.Addr()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz body = %q", body)
	}

	body, resp := get("/status")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/status Content-Type = %q", ct)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Target != "pclht" || st.Execs != 9 {
		t.Fatalf("/status decoded %+v", st)
	}

	body, resp = get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	samples, _ := parsePrometheus(t, body)
	found := false
	for _, s := range samples {
		if s.name == "pmrace_fuzz_execs_total" && s.value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/metrics missing pmrace_fuzz_execs_total 9:\n%s", body)
	}

	if resp, err := http.Get(base + "/debug/pprof/cmdline"); err != nil {
		t.Fatalf("pprof: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof status %d", resp.StatusCode)
		}
	}
}

func TestServerStatusNil(t *testing.T) {
	em := NewEmitter()
	defer em.Close()
	s := newTestServer(t, em, nil)
	resp, err := http.Get("http://" + s.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/status with nil supplier: status %d, want 404", resp.StatusCode)
	}
}

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	event string
	id    string
	data  string
}

func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseFrame{}) {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestServerSSEFullEquality connects an /events client before any event is
// emitted (response headers received implies the SubscribeExtra registration
// happened), emits one event of every kind, closes the emitter, and checks
// the decoded SSE stream equals the in-process sequence event for event.
func TestServerSSEFullEquality(t *testing.T) {
	em := NewEmitter()
	s := newTestServer(t, em, nil)

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}

	events := allKindsEvents()
	for _, ev := range events {
		em.Emit(ev)
	}
	em.Close() // ends the extra channel, so the stream reaches EOF

	frames := readSSE(t, resp.Body)
	if len(frames) != len(events) {
		t.Fatalf("got %d SSE frames, want %d", len(frames), len(events))
	}
	for i, fr := range frames {
		want := events[i]
		m := want.Meta()
		if fr.event != string(want.Kind()) {
			t.Errorf("frame %d: event field %q, want %q", i, fr.event, want.Kind())
		}
		if fr.id != fmt.Sprintf("%d", m.Seq) {
			t.Errorf("frame %d: id field %q, want %d", i, fr.id, m.Seq)
		}
		var env struct {
			Kind Kind            `json:"kind"`
			Seq  uint64          `json:"seq"`
			AtMs float64         `json:"at_ms"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(fr.data), &env); err != nil {
			t.Fatalf("frame %d: data not JSON: %v\n%s", i, err, fr.data)
		}
		if env.Kind != want.Kind() || env.Seq != m.Seq {
			t.Errorf("frame %d: envelope kind=%q seq=%d, want kind=%q seq=%d",
				i, env.Kind, env.Seq, want.Kind(), m.Seq)
		}
		got, err := DecodeEvent(env.Kind, env.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if gf, wf := Fingerprint(got), Fingerprint(want); gf != wf {
			t.Errorf("frame %d: decoded fingerprint %q, want %q", i, gf, wf)
		}
	}
}

func TestDecodeEventUnknownKind(t *testing.T) {
	if _, err := DecodeEvent(Kind("nope"), []byte(`{}`)); err == nil {
		t.Fatal("DecodeEvent accepted unknown kind")
	}
}
