package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerSpanBasics checks the span lifecycle: parent/child linkage, lane
// and exec inheritance, attributes, and delivery to the flight recorder and
// the span histograms.
func TestTracerSpanBasics(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1)
	tr.SetMeta("c0001", "pclht")

	sp := tr.Start(LaneWorkerBase, SpanExecRun)
	if !sp.Active() {
		t.Fatal("enabled tracer must return an active span")
	}
	exec := tr.NextExec()
	sp.SetExec(exec)
	child := sp.Child(SpanConflictAnalysis)
	child.SetAttr("batches", "3")
	child.End()
	sp.End()
	sp.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Snapshot orders by start time: parent opened first.
	parent, inner := spans[0], spans[1]
	if parent.Name != SpanExecRun || inner.Name != SpanConflictAnalysis {
		t.Fatalf("span order %q, %q", parent.Name, inner.Name)
	}
	if inner.Parent != parent.ID {
		t.Fatalf("child parent=%d, want %d", inner.Parent, parent.ID)
	}
	if inner.Lane != parent.Lane || inner.Exec != exec || parent.Exec != exec {
		t.Fatalf("child must inherit lane and exec: %+v / %+v", parent, inner)
	}
	if inner.Attrs["batches"] != "3" {
		t.Fatalf("attrs = %v", inner.Attrs)
	}
	if parent.DurNs <= 0 {
		t.Fatal("durations must be clamped positive")
	}
	if reg.Histogram(SpanHistName(SpanExecRun)).Count() != 1 {
		t.Fatal("span histogram did not observe the span")
	}
}

// TestTracerDisabledAndNil checks the inert paths: nil tracer, disabled
// tracer, and the negative "not sampled" lane all produce no-op spans, and
// every method is nil-safe.
func TestTracerDisabledAndNil(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Enabled() || nilTr.Sample() || nilTr.NextExec() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	nilTr.SetEnabled(true)
	nilTr.SetMeta("x", "y")
	nilTr.SetAnomalyDir("/nope")
	nilTr.DumpAnomaly("r")
	sp := nilTr.Start(0, SpanCampaign)
	sp.SetAttr("k", "v")
	sp.SetExec(1)
	c := sp.Child(SpanSeedPick)
	c.End()
	sp.End()
	if nilTr.Spans() != nil {
		t.Fatal("nil tracer must have no spans")
	}

	tr := NewTracer(NewRegistry(), 1)
	tr.SetEnabled(false)
	if sp := tr.Start(0, SpanCampaign); sp.Active() {
		t.Fatal("disabled tracer must return an inert span")
	}
	if tr.Sample() {
		t.Fatal("disabled tracer must not sample")
	}
	if sp := tr.Start(-1, SpanExecRun); sp.Active() {
		t.Fatal("negative lane must return an inert span")
	}
	tr.SetEnabled(true)
	sp2 := tr.Start(-1, SpanExecRun)
	sp2.End()
	if len(tr.Spans()) != 0 {
		t.Fatal("unsampled lane must record nothing")
	}
}

// TestTracerSampling checks the modular sampling contract: with rate n,
// exactly one in n Sample calls is true.
func TestTracerSampling(t *testing.T) {
	tr := NewTracer(nil, 4)
	hits := 0
	for i := 0; i < 40; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 40 at rate 4, want 10", hits)
	}
}

// TestFlightRecorderBounded checks the ring semantics: the recorder holds at
// most its capacity and Snapshot is sorted by start time.
func TestFlightRecorderBounded(t *testing.T) {
	fr := NewFlightRecorder(256)
	for i := 0; i < 1000; i++ {
		fr.Record(Span{ID: uint64(i + 1), Name: SpanExecRun, StartNs: int64(i)})
	}
	got := fr.Snapshot()
	if len(got) > 256 {
		t.Fatalf("recorder holds %d spans, cap 256", len(got))
	}
	if len(got) == 0 {
		t.Fatal("recorder is empty")
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartNs < got[i-1].StartNs {
			t.Fatalf("snapshot not sorted at %d: %d < %d", i, got[i].StartNs, got[i-1].StartNs)
		}
	}
	// The ring keeps the most recent spans.
	if got[len(got)-1].StartNs != 999 {
		t.Fatalf("newest span start %d, want 999", got[len(got)-1].StartNs)
	}
}

// TestFlightRecorderConcurrent stress-tests the recorder under -race:
// concurrent recording, snapshotting and anomaly dumping must be safe.
func TestFlightRecorderConcurrent(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(NewRegistry(), 1)
	tr.SetMeta("c0001", "pclht")
	tr.SetAnomalyDir(dir)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start(LaneWorkerBase+w, SpanExecRun)
				c := sp.Child(SpanConflictAnalysis)
				c.End()
				sp.End()
			}
		}(w)
	}
	for d := 0; d < 4; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = tr.Spans()
				tr.DumpAnomaly("stress")
			}
		}()
	}
	wg.Wait()

	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) > maxAnomalyDumps {
		t.Fatalf("wrote %d anomaly dumps, want 1..%d", len(files), maxAnomalyDumps)
	}
	var dump AnomalyDump
	raw, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Schema != 1 || dump.Reason != "stress" || dump.Campaign != "c0001" {
		t.Fatalf("dump header %+v", dump)
	}
}

// TestAnomalyDumpGating checks anomaly dumps are dropped without a directory
// and rate-limited with one.
func TestAnomalyDumpGating(t *testing.T) {
	tr := NewTracer(nil, 1)
	sp := tr.Start(0, SpanCampaign)
	sp.End()
	tr.DumpAnomaly("no_dir") // no directory configured: silently dropped

	dir := t.TempDir()
	tr.SetAnomalyDir(dir)
	for i := 0; i < maxAnomalyDumps+5; i++ {
		tr.DumpAnomaly("hang")
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != maxAnomalyDumps {
		t.Fatalf("wrote %d dumps, want the %d-dump rate limit", len(files), maxAnomalyDumps)
	}
}

// TestWriteChromeTraceRoundTrip checks the exported document satisfies the
// same shape contract CI enforces, including timestamp ties between nested
// and adjacent spans.
func TestWriteChromeTraceRoundTrip(t *testing.T) {
	spans := []Span{
		// Outer and inner span opening at the same timestamp on one lane.
		{ID: 1, Name: SpanCampaign, Lane: 0, StartNs: 0, DurNs: 5000},
		{ID: 2, Parent: 1, Name: SpanSeedPick, Lane: 0, StartNs: 0, DurNs: 1000},
		// A slice closing exactly where the next one opens.
		{ID: 3, Parent: 1, Name: SpanInterleaving, Lane: 0, StartNs: 1000, DurNs: 1000},
		{ID: 4, Parent: 1, Name: SpanExecRun, Lane: 0, StartNs: 2000, DurNs: 1000},
		// Zero-duration span: the export clamps it to 1ns.
		{ID: 5, Name: SpanValidate, Lane: 100, StartNs: 10, DurNs: 0, Attrs: map[string]string{"status": "Bug"}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, TraceMeta{Campaign: "c0007", Target: "cceh"}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails its own validator: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, "pmrace c0007 (cceh)", "supervisor", "validator 0", `"status":"Bug"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q:\n%s", want, out)
		}
	}
}

// TestValidateChromeTraceRejects checks the validator catches the shape
// violations it exists for.
func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no traceEvents": `{"other": []}`,
		"missing name":   `{"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":0}]}`,
		"missing ts":     `{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0}]}`,
		"unmatched E":    `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"unclosed B":     `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`,
		"crossed pairs":  `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},{"name":"b","ph":"B","ts":2,"pid":1,"tid":0},{"name":"a","ph":"E","ts":3,"pid":1,"tid":0},{"name":"b","ph":"E","ts":4,"pid":1,"tid":0}]}`,
		"ts goes back":   `{"traceEvents":[{"name":"a","ph":"B","ts":5,"pid":1,"tid":0},{"name":"a","ph":"E","ts":4,"pid":1,"tid":0}]}`,
		"unexpected ph":  `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]}`,
	}
	for label, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", label, doc)
		}
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty traceEvents must be valid: %v", err)
	}
}

// TestSpanHistogramCardinality checks the tracer only ever creates span
// histograms from the fixed name set: per-stage latency families stay
// bounded no matter how many executions run.
func TestSpanHistogramCardinality(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1)
	for i := 0; i < 200; i++ {
		for _, name := range SpanNames() {
			sp := tr.Start(LaneWorkerBase+i%4, name)
			sp.End()
		}
	}
	allowed := make(map[string]bool)
	for _, n := range SpanNames() {
		allowed[SpanHistName(n)] = true
	}
	for _, name := range reg.Names() {
		if strings.HasPrefix(name, "span_") && !allowed[name] {
			t.Fatalf("unexpected span histogram %q", name)
		}
	}
}

// TestEmitterTerminalDelivery checks SubscribeExtra's deterministic terminal
// contract: a subscriber attaching after campaign_done was emitted — during
// drain or after Close — still receives the terminal event.
func TestEmitterTerminalDelivery(t *testing.T) {
	em := NewEmitter()
	em.Emit(&ExecDone{Exec: 1})
	em.Emit(&CampaignDone{Stats: Stats{Execs: 1}})

	// Attached during drain (after campaign_done, before Close).
	drainCh, cancel := em.SubscribeExtra(8)
	defer cancel()
	select {
	case ev := <-drainCh:
		if _, ok := ev.(*CampaignDone); !ok {
			t.Fatalf("drain subscriber got %T, want *CampaignDone", ev)
		}
	default:
		t.Fatal("drain subscriber did not receive the terminal event")
	}

	em.Close()

	// Attached after Close: terminal event, then closed channel.
	lateCh, _ := em.SubscribeExtra(8)
	ev, ok := <-lateCh
	if !ok {
		t.Fatal("late subscriber channel closed without the terminal event")
	}
	if _, isDone := ev.(*CampaignDone); !isDone {
		t.Fatalf("late subscriber got %T, want *CampaignDone", ev)
	}
	if _, ok := <-lateCh; ok {
		t.Fatal("late subscriber channel must close after the terminal event")
	}

	// No terminal was ever emitted: post-Close subscribe is just closed.
	em2 := NewEmitter()
	em2.Emit(&ExecDone{Exec: 1})
	em2.Close()
	emptyCh, _ := em2.SubscribeExtra(8)
	if _, ok := <-emptyCh; ok {
		t.Fatal("no terminal event was emitted; channel must be closed and empty")
	}
}

// TestEmitterSSEDropCounter checks extra-subscriber sheds surface in both
// the total and the SSE-specific drop counters.
func TestEmitterSSEDropCounter(t *testing.T) {
	em := NewEmitter()
	_, cancel := em.SubscribeExtra(1) // tiny buffer, no consumer
	defer cancel()
	for i := 0; i < 50; i++ {
		em.Emit(&ExecDone{Exec: i})
	}
	sse := em.Registry().Counter(MSSEDropped).Value()
	if sse == 0 {
		t.Fatal("expected obs_sse_dropped_total accounting")
	}
	if em.Dropped() < sse {
		t.Fatalf("total drops %d < SSE drops %d; SSE sheds must count in both", em.Dropped(), sse)
	}
	em.Close()
}

// TestObsSpanDisabledPin pins the disabled-path cost: Start on a disabled
// tracer must stay an atomic load plus a branch — no allocation, well under
// the PM-hook budget. Gated on PMRACE_BENCH_PIN=1 because wall-clock
// assertions are meaningless under -race or a loaded CI box.
func TestObsSpanDisabledPin(t *testing.T) {
	if os.Getenv("PMRACE_BENCH_PIN") != "1" {
		t.Skip("set PMRACE_BENCH_PIN=1 to pin the disabled-path cost")
	}
	tr := NewTracer(nil, 8)
	tr.SetEnabled(false)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start(1, SpanExecRun)
			sp.End()
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("disabled span path allocates %d/op, want 0", allocs)
	}
	if ns := float64(res.NsPerOp()); ns > 100 {
		t.Fatalf("disabled span path costs %.1f ns/op, want < 100", ns)
	}
	_ = time.Now() // keep the time import stable if assertions change
}
