package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exported metric so pmrace series never collide
// with other jobs scraped into the same Prometheus.
const promPrefix = "pmrace_"

// Label is one Prometheus label pair attached to every sample of a
// registry in a labeled exposition.
type Label struct {
	Name  string
	Value string
}

// LabeledRegistry pairs a registry with the label set identifying it in a
// merged exposition (e.g. campaign="c0001",target="pclht").
type LabeledRegistry struct {
	Labels []Label
	Reg    *Registry
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family followed by its
// samples, families sorted by name so output is deterministic. Counters and
// gauges keep their registry names (counters already carry the `_total`
// convention); histograms are exported in base seconds as `<name>_seconds`
// with cumulative `_bucket` samples at the power-of-two microsecond bounds,
// plus `_sum` and `_count`. A nil registry renders nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	return WritePrometheusLabeled(w, LabeledRegistry{Reg: r})
}

// WritePrometheusLabeled merges several registries into one exposition,
// attaching each registry's label set to its samples. Families present in
// more than one registry are emitted once (`# TYPE` line) with one labeled
// sample series per registry — how pmraced exports per-campaign metrics
// from a single /metrics endpoint. Registries appear in argument order
// within a family; nil registries are skipped.
func WritePrometheusLabeled(w io.Writer, regs ...LabeledRegistry) error {
	type series struct {
		labels string // rendered label pairs, "" or `a="b",c="d"`
		render func(io.Writer, string, string) error
	}
	type family struct {
		name   string // fully prefixed, sanitized family name
		typ    string
		series []series
	}
	byName := map[string]*family{}
	add := func(name, typ string, s series) {
		f, ok := byName[name]
		if !ok {
			f = &family{name: name, typ: typ}
			byName[name] = f
		}
		f.series = append(f.series, s)
	}

	for _, lr := range regs {
		if lr.Reg == nil {
			continue
		}
		labels := renderLabels(lr.Labels)
		snap := lr.Reg.Snapshot()
		for name, v := range snap.Counters {
			v := v
			add(promPrefix+sanitizeMetricName(name), "counter", series{
				labels: labels,
				render: func(w io.Writer, fam, lb string) error {
					_, err := fmt.Fprintf(w, "%s%s %d\n", fam, wrapLabels(lb), v)
					return err
				},
			})
		}
		for name, v := range snap.Gauges {
			v := v
			add(promPrefix+sanitizeMetricName(name), "gauge", series{
				labels: labels,
				render: func(w io.Writer, fam, lb string) error {
					_, err := fmt.Fprintf(w, "%s%s %d\n", fam, wrapLabels(lb), v)
					return err
				},
			})
		}
		for name := range snap.Histograms {
			counts, count, sumNs := lr.Reg.Histogram(name).Buckets()
			add(promPrefix+sanitizeMetricName(name)+"_seconds", "histogram", series{
				labels: labels,
				render: func(w io.Writer, fam, lb string) error {
					return renderHistogram(w, fam, lb, counts, count, sumNs)
				},
			})
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := s.render(w, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders label pairs as `a="b",c="d"` (no braces), escaping
// values per the text exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeMetricName(l.Name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// wrapLabels braces a rendered label string for a plain sample ("" stays "").
func wrapLabels(lb string) string {
	if lb == "" {
		return ""
	}
	return "{" + lb + "}"
}

// escapeLabelValue escapes backslash, double quote and newline, as the text
// exposition format requires inside label values.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\"", `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderHistogram writes the cumulative bucket series. Registry bucket i
// holds durations of at most 2^i microseconds (exclusive above 2^(i-1)), so
// its le-bound is 2^i µs expressed in seconds; the clamped overflow bucket
// has no finite bound and only surfaces in +Inf. lb carries the series'
// extra label pairs, merged before the le label.
func renderHistogram(w io.Writer, fam, lb string, counts [histBuckets]int64, count, sumNs int64) error {
	if lb != "" {
		lb += ","
	}
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(float64(uint64(1)<<uint(i))/1e6, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, lb, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, lb, count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(sumNs)/1e9, 'g', -1, 64)
	plain := strings.TrimSuffix(lb, ",")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		fam, wrapLabels(plain), sum, fam, wrapLabels(plain), count); err != nil {
		return err
	}
	return nil
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_' and prefixing
// an underscore when the first rune is a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
