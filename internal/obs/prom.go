package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exported metric so pmrace series never collide
// with other jobs scraped into the same Prometheus.
const promPrefix = "pmrace_"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family followed by its
// samples, families sorted by name so output is deterministic. Counters and
// gauges keep their registry names (counters already carry the `_total`
// convention); histograms are exported in base seconds as `<name>_seconds`
// with cumulative `_bucket` samples at the power-of-two microsecond bounds,
// plus `_sum` and `_count`. A nil registry renders nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()

	type family struct {
		name   string // fully prefixed, sanitized family name
		typ    string
		render func(io.Writer, string) error
	}
	var fams []family

	for name, v := range snap.Counters {
		v := v
		fams = append(fams, family{
			name: promPrefix + sanitizeMetricName(name),
			typ:  "counter",
			render: func(w io.Writer, fam string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", fam, v)
				return err
			},
		})
	}
	for name, v := range snap.Gauges {
		v := v
		fams = append(fams, family{
			name: promPrefix + sanitizeMetricName(name),
			typ:  "gauge",
			render: func(w io.Writer, fam string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", fam, v)
				return err
			},
		})
	}
	for name := range snap.Histograms {
		counts, count, sumNs := r.Histogram(name).Buckets()
		fams = append(fams, family{
			name: promPrefix + sanitizeMetricName(name) + "_seconds",
			typ:  "histogram",
			render: func(w io.Writer, fam string) error {
				return renderHistogram(w, fam, counts, count, sumNs)
			},
		})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if err := f.render(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// renderHistogram writes the cumulative bucket series. Registry bucket i
// holds durations of at most 2^i microseconds (exclusive above 2^(i-1)), so
// its le-bound is 2^i µs expressed in seconds; the clamped overflow bucket
// has no finite bound and only surfaces in +Inf.
func renderHistogram(w io.Writer, fam string, counts [histBuckets]int64, count, sumNs int64) error {
	var cum int64
	for i := 0; i < histBuckets-1; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(float64(uint64(1)<<uint(i))/1e6, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(sumNs)/1e9, 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", fam, sum, fam, count); err != nil {
		return err
	}
	return nil
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_' and prefixing
// an underscore when the first rune is a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
