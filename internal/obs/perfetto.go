package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export: spans render as B/E (duration begin/end) event
// pairs in the JSON object format Perfetto's ui.perfetto.dev and
// chrome://tracing both load. Lanes map to trace threads (tid), so the
// nesting guarantee per lane becomes proper slice stacking in the UI.

// chromeEvent is one trace event. Ts is microseconds (float, so nanosecond
// precision survives the division).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`

	// sort keys, not serialized
	tsNs  int64
	durNs int64
}

// laneName is the human thread name a lane renders under.
func laneName(lane int) string {
	switch {
	case lane == LaneSupervisor:
		return "supervisor"
	case lane >= LaneExecDetailBase:
		return fmt.Sprintf("exec detail %d", lane-LaneExecDetailBase)
	case lane >= LaneValidatorBase:
		return fmt.Sprintf("validator %d", lane-LaneValidatorBase)
	default:
		return fmt.Sprintf("worker %d", lane-LaneWorkerBase)
	}
}

// WriteChromeTrace renders spans as Chrome trace-event JSON
// ({"traceEvents": [...]}). Events are emitted in a deterministic order that
// keeps ts non-decreasing and B/E pairs properly matched per tid: at equal
// timestamps, ends sort before begins (a slice closing exactly where the
// next opens), outer begins before inner begins, and inner ends before
// outer ends.
func WriteChromeTrace(w io.Writer, spans []Span, meta TraceMeta) error {
	evs := make([]chromeEvent, 0, len(spans)*2+16)

	procName := "pmrace"
	if meta.Campaign != "" {
		procName = "pmrace " + meta.Campaign
	}
	if meta.Target != "" {
		procName += " (" + meta.Target + ")"
	}
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": procName},
	})

	lanes := make(map[int]bool)
	for _, sp := range spans {
		if !lanes[sp.Lane] {
			lanes[sp.Lane] = true
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: sp.Lane,
				Args: map[string]any{"name": laneName(sp.Lane)},
			}, chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: sp.Lane,
				Args: map[string]any{"sort_index": sp.Lane},
			})
		}
		args := map[string]any{"id": sp.ID}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Exec != 0 {
			args["exec"] = sp.Exec
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		dur := sp.DurNs
		if dur <= 0 {
			dur = 1
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name, Ph: "B", Ts: float64(sp.StartNs) / 1e3,
			Pid: 1, Tid: sp.Lane, Args: args,
			tsNs: sp.StartNs, durNs: dur,
		}, chromeEvent{
			Name: sp.Name, Ph: "E", Ts: float64(sp.StartNs+dur) / 1e3,
			Pid: 1, Tid: sp.Lane,
			tsNs: sp.StartNs + dur, durNs: dur,
		})
	}

	sort.SliceStable(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		// Metadata first, in emission order.
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Ph == "M" {
			return false
		}
		if a.tsNs != b.tsNs {
			return a.tsNs < b.tsNs
		}
		// Equal timestamps: close slices before opening new ones.
		if a.Ph != b.Ph {
			return a.Ph == "E"
		}
		if a.Ph == "B" {
			// Outer (longer) slices open first.
			return a.durNs > b.durNs
		}
		// Inner (later-started, i.e. shorter) slices close first.
		return a.durNs < b.durNs
	})

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ValidateChromeTrace checks that data is structurally valid Chrome
// trace-event JSON: the traceEvents array is present, every B/E event
// carries name/ph/ts/pid/tid, timestamps are non-decreasing in emission
// order, and B/E pairs match like parentheses per (pid, tid). This is the
// shape contract CI asserts on exported timelines.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	type tidKey struct {
		pid, tid string
	}
	stacks := make(map[tidKey][]string)
	lastTs := map[tidKey]float64{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if ph == "M" {
			continue
		}
		if ph != "B" && ph != "E" {
			return fmt.Errorf("trace: event %d (%s): unexpected ph %q", i, name, ph)
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			return fmt.Errorf("trace: event %d (%s): missing ts", i, name)
		}
		if _, ok := ev["pid"]; !ok {
			return fmt.Errorf("trace: event %d (%s): missing pid", i, name)
		}
		if _, ok := ev["tid"]; !ok {
			return fmt.Errorf("trace: event %d (%s): missing tid", i, name)
		}
		key := tidKey{jsonNum(ev["pid"]), jsonNum(ev["tid"])}
		if prev, seen := lastTs[key]; seen && ts < prev {
			return fmt.Errorf("trace: event %d (%s): ts %v before previous %v on tid %s",
				i, name, ts, prev, key.tid)
		}
		lastTs[key] = ts
		switch ph {
		case "B":
			stacks[key] = append(stacks[key], name)
		case "E":
			st := stacks[key]
			if len(st) == 0 {
				return fmt.Errorf("trace: event %d: E %q on tid %s without open B", i, name, key.tid)
			}
			if top := st[len(st)-1]; top != name {
				return fmt.Errorf("trace: event %d: E %q closes open B %q on tid %s", i, name, top, key.tid)
			}
			stacks[key] = st[:len(st)-1]
		}
	}
	for key, st := range stacks {
		if len(st) != 0 {
			return fmt.Errorf("trace: tid %s: %d unclosed B events (top %q)", key.tid, len(st), st[len(st)-1])
		}
	}
	return nil
}

// jsonNum renders a decoded JSON number (or anything else) as a map key.
func jsonNum(v any) string {
	if f, ok := v.(float64); ok {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}
