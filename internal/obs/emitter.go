package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Emitter is the hub every producer layer emits through. It stamps events
// with a sequence number and elapsed time, forwards them synchronously to
// the attached sinks, and offers a bounded subscriber channel with
// ring-buffer semantics: when the consumer falls behind, the oldest
// buffered event is shed so the hot path never blocks on a slow reader.
// Sinks never drop. The metrics Registry is exposed for producers to cache
// lock-free handles from.
//
// A nil *Emitter is a valid no-op producer target, so layers like the
// detection DB can emit unconditionally.
type Emitter struct {
	start      time.Time
	seq        atomic.Uint64
	reg        *Registry
	dropped    *Counter
	sseDropped *Counter

	mu       sync.Mutex
	sinks    []Sink
	ch       chan Event
	extras   []chan Event
	closed   bool
	terminal Event // the CampaignDone event, once emitted
}

// NewEmitter creates an emitter with the given sinks attached.
func NewEmitter(sinks ...Sink) *Emitter {
	e := &Emitter{start: time.Now(), reg: NewRegistry(), sinks: sinks}
	e.dropped = e.reg.Counter(MEventsDropped)
	e.sseDropped = e.reg.Counter(MSSEDropped)
	return e
}

// AddSink attaches a sink; call before the campaign starts emitting.
func (e *Emitter) AddSink(s Sink) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sinks = append(e.sinks, s)
}

// Registry returns the emitter's metrics registry.
func (e *Emitter) Registry() *Registry {
	if e == nil {
		return nil
	}
	return e.reg
}

// Elapsed returns the time since the emitter (campaign) started.
func (e *Emitter) Elapsed() time.Duration {
	if e == nil {
		return 0
	}
	return time.Since(e.start)
}

// Dropped returns how many events the subscriber channel shed.
func (e *Emitter) Dropped() int64 { return e.Registry().Counter(MEventsDropped).Value() }

// Subscribe returns the event channel, creating it with the given buffer on
// first call (256 when buf <= 0). The channel is closed by Close; events
// emitted while the buffer is full displace the oldest buffered event.
func (e *Emitter) Subscribe(buf int) <-chan Event {
	if buf <= 0 {
		buf = 256
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ch == nil {
		e.ch = make(chan Event, buf)
	}
	return e.ch
}

// SubscribeExtra returns an additional, independent subscriber channel with
// the same ring-buffer shedding as Subscribe (256 when buf <= 0). Unlike
// Subscribe — which always hands back the one campaign channel — every call
// creates a fresh channel that receives its own copy of each event, so
// transient consumers (an SSE stream per HTTP client) never steal events
// from Campaign.Events. The returned cancel func detaches and closes the
// channel; it is idempotent and safe to call after Close.
//
// Terminal-event delivery is deterministic: a subscriber attaching after
// campaign_done was emitted — during drain, or even after Close — still
// receives that terminal event (pre-delivered into the fresh channel), so a
// late SSE client always observes the campaign's conclusion instead of an
// empty stream.
func (e *Emitter) SubscribeExtra(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	ch := make(chan Event, buf)
	if e == nil {
		close(ch)
		return ch, func() {}
	}
	e.mu.Lock()
	if e.closed {
		if e.terminal != nil {
			ch <- e.terminal // fresh channel, buf >= 1: never blocks
		}
		e.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if e.terminal != nil {
		ch <- e.terminal
	}
	e.extras = append(e.extras, ch)
	e.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.mu.Lock()
			closed := e.closed
			for i, c := range e.extras {
				if c == ch {
					e.extras = append(e.extras[:i], e.extras[i+1:]...)
					break
				}
			}
			e.mu.Unlock()
			if !closed {
				// Close already closed every extra channel; closing
				// again here would panic.
				close(ch)
			}
		})
	}
	return ch, cancel
}

// Emit stamps ev and delivers it to all sinks and the subscriber channels.
func (e *Emitter) Emit(ev Event) {
	if e == nil {
		return
	}
	m := ev.Meta()
	m.Seq = e.seq.Add(1)
	m.At = time.Since(e.start)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if ev.Kind() == KindCampaignDone {
		// Remembered under the same critical section that delivers it, so
		// a SubscribeExtra racing this Emit either attaches first (and
		// receives it below) or pre-receives it on attach — never both,
		// never neither.
		e.terminal = ev
	}
	for _, s := range e.sinks {
		s.Emit(ev)
	}
	if e.ch != nil {
		e.sendRing(e.ch, ev, false)
	}
	for _, ch := range e.extras {
		e.sendRing(ch, ev, true)
	}
}

// sendRing delivers ev to a bounded subscriber channel without ever
// blocking: both the send and the ring-buffer eviction are non-blocking, so
// holding the emitter mutex around it is safe. extra marks SSE-style
// SubscribeExtra channels, whose sheds are additionally counted in
// obs_sse_dropped_total.
func (e *Emitter) sendRing(ch chan Event, ev Event, extra bool) {
	drop := func() {
		e.dropped.Inc()
		if extra {
			e.sseDropped.Inc()
		}
	}
	select {
	case ch <- ev:
	default:
		// Shed the oldest buffered event to make room. The receive
		// races with the consumer; losing that race just means the
		// consumer caught up and the retried send finds capacity.
		select {
		case <-ch:
			drop()
		default:
		}
		select {
		case ch <- ev:
		default:
			drop()
		}
	}
}

// Close marks the emitter terminal: the subscriber channel is closed and
// sinks are closed. Emit calls after Close are no-ops; Close is idempotent.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	if e.ch != nil {
		close(e.ch)
	}
	for _, ch := range e.extras {
		close(ch)
	}
	e.extras = nil
	sinks := e.sinks
	e.sinks = nil
	e.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Fingerprint renders an event as a deterministic string: everything except
// the stamped sequence number and all timing fields. Two campaigns with the
// same configuration and seed produce identical fingerprint sequences
// ("identical modulo timestamps"), which the determinism tests assert.
func Fingerprint(ev Event) string {
	switch v := ev.(type) {
	case *PhaseChange:
		return fmt.Sprintf("phase_change %s<-%s", v.Phase, v.Prev)
	case *ExecDone:
		return fmt.Sprintf("exec_done #%d w%d new=%d br=%d al=%d cand=%d inc=%d sync=%d",
			v.Exec, v.Worker, v.NewBits, v.BranchCov, v.AliasCov, v.Candidates, v.Inconsistencies, v.Syncs)
	case *SeedAccepted:
		return fmt.Sprintf("seed_accepted %s ops=%d corpus=%d", v.Origin, v.Ops, v.CorpusSize)
	case *InterleavingScheduled:
		return fmt.Sprintf("interleaving w%d addr=%#x prio=%d skip=%d", v.Worker, v.Addr, v.Priority, v.Skip)
	case *InconsistencyFound:
		return fmt.Sprintf("inconsistency %s w=%s r=%s s=%s var=%s flow=%s",
			v.Class, v.WriteSite, v.ReadSite, v.StoreSite, v.Var, v.Flow)
	case *ValidationVerdict:
		return fmt.Sprintf("verdict %s %s hung=%v states=%d", v.Class, v.Status, v.RecoveryHung, v.CrashStates)
	case *BugConfirmed:
		return fmt.Sprintf("bug %s site=%s var=%s", v.Class, v.Site, v.Var)
	case *CampaignDone:
		return fmt.Sprintf("campaign_done target=%s mode=%s execs=%d seeds=%d br=%d al=%d inc=%d bugs=%d",
			v.Stats.Target, v.Stats.Mode, v.Stats.Execs, v.Stats.Seeds,
			v.Stats.BranchCov, v.Stats.AliasCov, v.Stats.Inconsistencies, v.Stats.Bugs)
	default:
		return strings.TrimSpace(fmt.Sprintf("%s %+v", ev.Kind(), ev))
	}
}
