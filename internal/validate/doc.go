// Package validate implements PMRace's post-failure validation (paper §4.4),
// hardened in two directions beyond the paper:
//
//   - Every recovery run executes in a watchdog-supervised goroutine with a
//     wall-clock deadline (Options.WallTimeout, distinct from the spin-lock
//     HangTimeout). Recovery that spins in an uninstrumented loop, sleeps
//     forever or panics becomes a StatusBug verdict with RecoveryHung or
//     RecoveryErr populated instead of wedging the campaign; the abandoned
//     goroutine's environment is cancelled so it stops mutating its pool at
//     its next hook call.
//
//   - A finding is judged against a *list* of enumerated crash states
//     (pmem.CrashStates) rather than the single adversarial image, and the
//     Result carries a per-state verdict table. A finding is a bug if any
//     state fails recovery — strictly stronger than the single-image §4.4
//     verdict, which is reproduced exactly by passing one adversarial state.
//
// Per state, the oracles are unchanged from the paper:
//
//   - Inter-/intra-thread inconsistency: if recovery overwrote every byte of
//     the recorded durable side effect, the state passes (the application's
//     recovery mechanism fixes it); otherwise it fails. States whose image
//     does not contain the side effect (the persisted baseline) skip the
//     overwrite oracle — only a hang or error fails them.
//   - Synchronization inconsistency: the annotated variable must hold its
//     expected initial value after recovery in every state.
//
// A whitelist check runs first: inconsistencies whose stacks or sites match
// developer-specified benign patterns (redo-logged allocation, checksummed
// regions, lazy recovery) are classified as whitelisted false positives.
package validate
