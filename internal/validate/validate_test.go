package validate

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// fakeTarget is a controllable target whose Recover behaviour drives each
// validation scenario.
type fakeTarget struct {
	recover func(t *rt.Thread) error
}

func (f *fakeTarget) Name() string                       { return "fake" }
func (f *fakeTarget) PoolSize() uint64                   { return 4096 }
func (f *fakeTarget) Setup(*rt.Thread) error             { return nil }
func (f *fakeTarget) Exec(*rt.Thread, workload.Op) error { return nil }
func (f *fakeTarget) Annotations() int                   { return 0 }
func (f *fakeTarget) Recover(t *rt.Thread) error         { return f.recover(t) }

func factoryOf(rec func(t *rt.Thread) error) targets.Factory {
	return func() targets.Target { return &fakeTarget{recover: rec} }
}

func sideEffectImage(t *testing.T) ([]byte, *core.Inconsistency) {
	t.Helper()
	env := rt.NewEnv(pmem.New(4096), rt.Config{})
	t1, t2 := env.Spawn(), env.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64)
	t2.Store64(512, v, lab, taint.None)
	ins := env.Detector().Inconsistencies()
	if len(ins) != 1 {
		t.Fatalf("setup produced %d inconsistencies", len(ins))
	}
	img := env.Pool().CrashImageWith([]pmem.Range{ins[0].SideEffect})
	return img, ins[0]
}

func TestInconsistencyBugWhenRecoveryIgnoresIt(t *testing.T) {
	img, in := sideEffectImage(t)
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return nil }), pmem.AdversarialState(img), in, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
	if len(res.States) != 1 || res.States[0].State != pmem.StateSideEffect {
		t.Fatalf("states = %+v, want one side-effect-persisted row", res.States)
	}
	if res.States[0].Status != core.StatusBug {
		t.Fatalf("state verdict = %v, want bug", res.States[0].Status)
	}
}

func TestInconsistencyFPWhenRecoveryOverwrites(t *testing.T) {
	img, in := sideEffectImage(t)
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(512, 0, taint.None, taint.None) // overwrite the side effect
		th.Persist(512, 8)
		return nil
	})
	res := Inconsistency(f, pmem.AdversarialState(img), in, Options{})
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("status = %v, want validated FP", res.Status)
	}
}

func TestInconsistencyWhitelisted(t *testing.T) {
	img, in := sideEffectImage(t)
	in.Stack = []string{"pmdk.go:10 pmdk.(*Tx).Alloc"}
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return nil }), pmem.AdversarialState(img), in,
		Options{Whitelist: core.NewWhitelist("pmdk.(*Tx).Alloc")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("status = %v, want whitelisted FP", res.Status)
	}
	if len(res.States) != 0 {
		t.Fatalf("whitelisted finding must skip recovery, got states %+v", res.States)
	}
}

func TestInconsistencyRecoveryErrorIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return errors.New("broken") }), pmem.AdversarialState(img), in, Options{})
	if res.Status != core.StatusBug || res.RecoveryErr == nil {
		t.Fatalf("res = %+v, want bug with error", res)
	}
}

func TestInconsistencyRecoveryHangIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	// Recovery spins on a lock that the crash image holds.
	imgLocked := append([]byte(nil), img...)
	imgLocked[128] = 1 // lock word at offset 128 = held
	f := factoryOf(func(th *rt.Thread) error {
		th.SpinLock(128)
		return nil
	})
	res := Inconsistency(f, pmem.AdversarialState(imgLocked), in, Options{HangTimeout: 20 * time.Millisecond})
	if res.Status != core.StatusBug || !res.RecoveryHung {
		t.Fatalf("res = %+v, want hung bug", res)
	}
	if res.States[0].WallTimeout {
		t.Fatalf("spin-lock hang must be caught by the spin detector, not the watchdog: %+v", res.States[0])
	}
}

func syncImage(t *testing.T) ([]byte, *core.SyncInconsistency) {
	t.Helper()
	env := rt.NewEnv(pmem.New(4096), rt.Config{})
	env.AnnotateSyncVar(core.SyncVar{Name: "lock", Addr: 128, Size: 8, InitVal: 0})
	th := env.Spawn()
	th.SpinLock(128)
	sis := env.Detector().SyncInconsistencies()
	if len(sis) != 1 {
		t.Fatalf("setup produced %d sync inconsistencies", len(sis))
	}
	img := env.Pool().CrashImageWith([]pmem.Range{{Off: 128, Len: 8}})
	return img, sis[0]
}

func TestSyncBugWhenLockNotReinitialized(t *testing.T) {
	img, si := syncImage(t)
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), pmem.AdversarialState(img), si, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
}

func TestSyncFPWhenRecoveryReinitializes(t *testing.T) {
	img, si := syncImage(t)
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(128, 0, taint.None, taint.None)
		th.Persist(128, 8)
		return nil
	})
	res := Sync(f, pmem.AdversarialState(img), si, Options{})
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("status = %v, want validated FP", res.Status)
	}
}

func TestSyncWhitelisted(t *testing.T) {
	img, si := syncImage(t)
	si.Stack = []string{"checksum.go:5 checksummedRegion"}
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), pmem.AdversarialState(img), si,
		Options{Whitelist: core.NewWhitelist("checksummedRegion")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("status = %v, want whitelisted FP", res.Status)
	}
}

func TestSyncOutOfRangeAddrIsBug(t *testing.T) {
	img, si := syncImage(t)
	si.Addr = 1 << 40
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), pmem.AdversarialState(img), si, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
}

func TestExternalInconsistencyIsAlwaysBug(t *testing.T) {
	img, in := sideEffectImage(t)
	in.External = true
	// Even a recovery that overwrites everything cannot un-send data.
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(512, 0, taint.None, taint.None)
		th.Persist(512, 8)
		return nil
	})
	res := Inconsistency(f, pmem.AdversarialState(img), in, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("external effect must be a bug, got %v", res.Status)
	}
	// Unless whitelisted.
	in.Stack = []string{"proto.go:9 checksummedReply"}
	res = Inconsistency(f, pmem.AdversarialState(img), in, Options{Whitelist: core.NewWhitelist("checksummedReply")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("whitelist must still apply, got %v", res.Status)
	}
}

// --- multi-crash-state aggregation ---

// TestMultiStateAnyFailureIsBug builds a two-state list where recovery passes
// on the adversarial image but hangs on a second state with a held lock: the
// finding-level verdict must be bug, with both rows in the table.
func TestMultiStateAnyFailureIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	locked := append([]byte(nil), img...)
	locked[128] = 1
	states := []pmem.CrashState{
		{Name: pmem.StateSideEffect, HasSideEffect: true, Img: img},
		{Name: "pending-line@0x80", HasSideEffect: true, Img: locked},
	}
	f := factoryOf(func(th *rt.Thread) error {
		th.SpinLock(128) // hangs only in the locked state
		th.SpinUnlock(128)
		th.Store64(512, 0, taint.None, taint.None) // fix the side effect
		th.Persist(512, 8)
		return nil
	})
	res := Inconsistency(f, states, in, Options{HangTimeout: 20 * time.Millisecond})
	if res.Status != core.StatusBug || !res.RecoveryHung {
		t.Fatalf("res = %+v, want hung bug", res)
	}
	if len(res.States) != 2 {
		t.Fatalf("got %d state rows, want 2", len(res.States))
	}
	if res.States[0].Status != core.StatusValidatedFP {
		t.Fatalf("adversarial state = %v, want validated FP", res.States[0].Status)
	}
	if res.States[1].Status != core.StatusBug || !res.States[1].RecoveryHung {
		t.Fatalf("locked state = %+v, want hung bug", res.States[1])
	}
}

// TestBaselineStateSkipsOverwriteOracle: in the persisted-only baseline the
// side effect never reached PM, so a clean recovery that overwrites nothing
// must still pass that state.
func TestBaselineStateSkipsOverwriteOracle(t *testing.T) {
	img, in := sideEffectImage(t)
	baseline := make([]byte, len(img)) // side effect absent
	states := []pmem.CrashState{{Name: pmem.StateBaseline, Img: baseline}}
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return nil }), states, in, Options{})
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("baseline-only validation = %v, want validated FP", res.Status)
	}
}

// --- watchdog hang paths ---

// waitGoroutines polls until the goroutine count drops back to at most base,
// failing the test if it never does: the watchdog must not leak goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestUninstrumentedSpinRecoveryIsWallTimeoutBug is the acceptance scenario:
// a recovery spinning in a plain Go loop — invisible to the spin-lock hang
// detector — must be classified as a hung bug within WallTimeout plus
// scheduling slack, not wedge the caller forever (it deadlocks without the
// watchdog). The loop checks a stop flag so the abandoned goroutine can exit
// and the leak assertion can run.
func TestUninstrumentedSpinRecoveryIsWallTimeoutBug(t *testing.T) {
	img, in := sideEffectImage(t)
	var stop atomic.Bool
	base := runtime.NumGoroutine()
	f := factoryOf(func(*rt.Thread) error {
		for !stop.Load() {
		}
		return nil
	})
	start := time.Now()
	res := Inconsistency(f, pmem.AdversarialState(img), in, Options{WallTimeout: 100 * time.Millisecond})
	elapsed := time.Since(start)
	if res.Status != core.StatusBug || !res.RecoveryHung {
		t.Fatalf("res = %+v, want hung bug", res)
	}
	if !res.States[0].WallTimeout {
		t.Fatalf("state = %+v, want wall-timeout hang", res.States[0])
	}
	if res.RecoveryErr == nil || !strings.Contains(res.RecoveryErr.Error(), "wall timeout") {
		t.Fatalf("err = %v, want wall-timeout error", res.RecoveryErr)
	}
	if elapsed > 1100*time.Millisecond {
		t.Fatalf("verdict took %s, want within WallTimeout+1s", elapsed)
	}
	stop.Store(true)
	waitGoroutines(t, base)
}

// TestRecoveryPanicIsBug: a panicking recovery is a failed recovery, reported
// with the panic message, without crashing the campaign.
func TestRecoveryPanicIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	f := factoryOf(func(*rt.Thread) error { panic("recovery exploded") })
	res := Inconsistency(f, pmem.AdversarialState(img), in, Options{})
	if res.Status != core.StatusBug || res.RecoveryHung {
		t.Fatalf("res = %+v, want non-hang bug", res)
	}
	if res.RecoveryErr == nil || !strings.Contains(res.RecoveryErr.Error(), "recovery exploded") {
		t.Fatalf("err = %v, want panic message", res.RecoveryErr)
	}
}

// TestSleepExceedingWallTimeoutIsBug: recovery sleeping past WallTimeout (but
// far below HangTimeout, so the spin detector never fires) is a watchdog hang.
func TestSleepExceedingWallTimeoutIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	base := runtime.NumGoroutine()
	f := factoryOf(func(*rt.Thread) error {
		time.Sleep(300 * time.Millisecond)
		return nil
	})
	res := Inconsistency(f, pmem.AdversarialState(img), in,
		Options{WallTimeout: 50 * time.Millisecond, HangTimeout: time.Second})
	if res.Status != core.StatusBug || !res.RecoveryHung || !res.States[0].WallTimeout {
		t.Fatalf("res = %+v, want wall-timeout bug", res)
	}
	waitGoroutines(t, base)
}

// TestInstrumentedLoopCancelledAfterWallTimeout: a recovery looping through
// instrumented stores is abandoned at the deadline and then actually stopped
// by the environment's cancellation hook — the goroutine exits via
// CancelError instead of mutating its pool forever.
func TestInstrumentedLoopCancelledAfterWallTimeout(t *testing.T) {
	img, in := sideEffectImage(t)
	base := runtime.NumGoroutine()
	f := factoryOf(func(th *rt.Thread) error {
		for {
			th.Store64(256, 1, taint.None, taint.None)
		}
	})
	res := Inconsistency(f, pmem.AdversarialState(img), in,
		Options{WallTimeout: 100 * time.Millisecond, HangTimeout: time.Minute})
	if res.Status != core.StatusBug || !res.RecoveryHung || !res.States[0].WallTimeout {
		t.Fatalf("res = %+v, want wall-timeout bug", res)
	}
	waitGoroutines(t, base)
}

// TestDefaultHangTimeoutMatchesRuntime pins the satellite fix: validation
// inherits the runtime's shared spin-lock default instead of a private 100ms.
func TestDefaultHangTimeoutMatchesRuntime(t *testing.T) {
	img, si := syncImage(t)
	// A recovery that spins just under the runtime default must complete:
	// with the old private 100ms default it would be declared hung.
	f := factoryOf(func(th *rt.Thread) error {
		time.Sleep(rt.DefaultHangTimeout / 2)
		th.SpinLock(192) // free line: acquires immediately
		th.SpinUnlock(192)
		th.Store64(128, 0, taint.None, taint.None)
		th.Persist(128, 8)
		return nil
	})
	res := Sync(f, pmem.AdversarialState(img), si, Options{})
	if res.RecoveryHung {
		t.Fatalf("res = %+v: default hang timeout shorter than rt.DefaultHangTimeout", res)
	}
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("status = %v, want validated FP", res.Status)
	}
}
