package validate

import (
	"errors"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// fakeTarget is a controllable target whose Recover behaviour drives each
// validation scenario.
type fakeTarget struct {
	recover func(t *rt.Thread) error
}

func (f *fakeTarget) Name() string                       { return "fake" }
func (f *fakeTarget) PoolSize() uint64                   { return 4096 }
func (f *fakeTarget) Setup(*rt.Thread) error             { return nil }
func (f *fakeTarget) Exec(*rt.Thread, workload.Op) error { return nil }
func (f *fakeTarget) Annotations() int                   { return 0 }
func (f *fakeTarget) Recover(t *rt.Thread) error         { return f.recover(t) }

func factoryOf(rec func(t *rt.Thread) error) targets.Factory {
	return func() targets.Target { return &fakeTarget{recover: rec} }
}

func sideEffectImage(t *testing.T) ([]byte, *core.Inconsistency) {
	t.Helper()
	env := rt.NewEnv(pmem.New(4096), rt.Config{})
	t1, t2 := env.Spawn(), env.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64)
	t2.Store64(512, v, lab, taint.None)
	ins := env.Detector().Inconsistencies()
	if len(ins) != 1 {
		t.Fatalf("setup produced %d inconsistencies", len(ins))
	}
	img := env.Pool().CrashImageWith([]pmem.Range{ins[0].SideEffect})
	return img, ins[0]
}

func TestInconsistencyBugWhenRecoveryIgnoresIt(t *testing.T) {
	img, in := sideEffectImage(t)
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return nil }), img, in, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
}

func TestInconsistencyFPWhenRecoveryOverwrites(t *testing.T) {
	img, in := sideEffectImage(t)
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(512, 0, taint.None, taint.None) // overwrite the side effect
		th.Persist(512, 8)
		return nil
	})
	res := Inconsistency(f, img, in, Options{})
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("status = %v, want validated FP", res.Status)
	}
}

func TestInconsistencyWhitelisted(t *testing.T) {
	img, in := sideEffectImage(t)
	in.Stack = []string{"pmdk.go:10 pmdk.(*Tx).Alloc"}
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return nil }), img, in,
		Options{Whitelist: core.NewWhitelist("pmdk.(*Tx).Alloc")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("status = %v, want whitelisted FP", res.Status)
	}
}

func TestInconsistencyRecoveryErrorIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	res := Inconsistency(factoryOf(func(*rt.Thread) error { return errors.New("broken") }), img, in, Options{})
	if res.Status != core.StatusBug || res.RecoveryErr == nil {
		t.Fatalf("res = %+v, want bug with error", res)
	}
}

func TestInconsistencyRecoveryHangIsBug(t *testing.T) {
	img, in := sideEffectImage(t)
	// Recovery spins on a lock that the crash image holds.
	imgLocked := append([]byte(nil), img...)
	imgLocked[128] = 1 // lock word at offset 128 = held
	f := factoryOf(func(th *rt.Thread) error {
		th.SpinLock(128)
		return nil
	})
	res := Inconsistency(f, imgLocked, in, Options{HangTimeout: 20 * time.Millisecond})
	if res.Status != core.StatusBug || !res.RecoveryHung {
		t.Fatalf("res = %+v, want hung bug", res)
	}
}

func syncImage(t *testing.T) ([]byte, *core.SyncInconsistency) {
	t.Helper()
	env := rt.NewEnv(pmem.New(4096), rt.Config{})
	env.AnnotateSyncVar(core.SyncVar{Name: "lock", Addr: 128, Size: 8, InitVal: 0})
	th := env.Spawn()
	th.SpinLock(128)
	sis := env.Detector().SyncInconsistencies()
	if len(sis) != 1 {
		t.Fatalf("setup produced %d sync inconsistencies", len(sis))
	}
	img := env.Pool().CrashImageWith([]pmem.Range{{Off: 128, Len: 8}})
	return img, sis[0]
}

func TestSyncBugWhenLockNotReinitialized(t *testing.T) {
	img, si := syncImage(t)
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), img, si, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
}

func TestSyncFPWhenRecoveryReinitializes(t *testing.T) {
	img, si := syncImage(t)
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(128, 0, taint.None, taint.None)
		th.Persist(128, 8)
		return nil
	})
	res := Sync(f, img, si, Options{})
	if res.Status != core.StatusValidatedFP {
		t.Fatalf("status = %v, want validated FP", res.Status)
	}
}

func TestSyncWhitelisted(t *testing.T) {
	img, si := syncImage(t)
	si.Stack = []string{"checksum.go:5 checksummedRegion"}
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), img, si,
		Options{Whitelist: core.NewWhitelist("checksummedRegion")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("status = %v, want whitelisted FP", res.Status)
	}
}

func TestSyncOutOfRangeAddrIsBug(t *testing.T) {
	img, si := syncImage(t)
	si.Addr = 1 << 40
	res := Sync(factoryOf(func(*rt.Thread) error { return nil }), img, si, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("status = %v, want bug", res.Status)
	}
}

func TestExternalInconsistencyIsAlwaysBug(t *testing.T) {
	img, in := sideEffectImage(t)
	in.External = true
	// Even a recovery that overwrites everything cannot un-send data.
	f := factoryOf(func(th *rt.Thread) error {
		th.Store64(512, 0, taint.None, taint.None)
		th.Persist(512, 8)
		return nil
	})
	res := Inconsistency(f, img, in, Options{})
	if res.Status != core.StatusBug {
		t.Fatalf("external effect must be a bug, got %v", res.Status)
	}
	// Unless whitelisted.
	in.Stack = []string{"proto.go:9 checksummedReply"}
	res = Inconsistency(f, img, in, Options{Whitelist: core.NewWhitelist("checksummedReply")})
	if res.Status != core.StatusWhitelistedFP {
		t.Fatalf("whitelist must still apply, got %v", res.Status)
	}
}
