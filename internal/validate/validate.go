// Package validate implements PMRace's post-failure validation (paper §4.4).
// For each detected inconsistency the fuzzer duplicated the pool at the
// adversarial crash point (durable side effect persisted, dependent data
// lost). Validation restarts the target on that image, runs its recovery
// code under a write recorder, and decides:
//
//   - Inter-/intra-thread inconsistency: if recovery overwrote every byte of
//     the recorded durable side effect, the inconsistency is a validated
//     false positive (the application's recovery mechanism fixes it);
//     otherwise it is reported as a bug.
//   - Synchronization inconsistency: if the annotated variable holds its
//     expected initial value after recovery, it is benign; otherwise the
//     stale synchronization state survived — a PM Execution Context Bug.
//
// A whitelist check runs first: inconsistencies whose stacks or sites match
// developer-specified benign patterns (redo-logged allocation, checksummed
// regions, lazy recovery) are classified as whitelisted false positives.
package validate

import (
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
)

// Options configure validation runs.
type Options struct {
	// HangTimeout bounds recovery execution; recovery that hangs (e.g. on
	// a never-released persistent lock) confirms the bug.
	HangTimeout time.Duration
	// Whitelist holds the benign patterns; nil disables whitelisting.
	Whitelist *core.Whitelist
	// Obs, when set, receives a ValidationVerdict event (with the
	// validation run's latency) per judged finding and feeds the
	// validate_runs_total counter and validate_latency histogram.
	Obs *obs.Emitter
}

// observe emits the verdict event and updates the validation metrics.
func (o Options) observe(class string, r Result, started time.Time) Result {
	r.Latency = time.Since(started)
	o.Obs.Registry().Counter(obs.MValidations).Inc()
	o.Obs.Registry().Histogram(obs.HValidationLatency).Observe(r.Latency)
	o.Obs.Emit(&obs.ValidationVerdict{
		Class:        class,
		Status:       r.Status.String(),
		RecoveryHung: r.RecoveryHung,
		Latency:      r.Latency,
	})
	return r
}

// Result is the outcome of one validation run.
type Result struct {
	Status core.Status
	// RecoveryHung reports that the recovery code itself hung — direct
	// evidence for synchronization bugs.
	RecoveryHung bool
	// RecoveryErr records a recovery failure, if any.
	RecoveryErr error
	// Latency is the wall time of the validation run (whitelist check,
	// recovery execution and verdict); artifact bundles record it.
	Latency time.Duration
}

// Inconsistency validates one inter-/intra-thread inconsistency against its
// crash image.
func Inconsistency(factory targets.Factory, img []byte, in *core.Inconsistency, opts Options) Result {
	started := time.Now()
	class := "intra"
	if in.Kind == core.KindInter {
		class = "inter"
	}
	if opts.Whitelist != nil && opts.Whitelist.MatchInconsistency(in) {
		return opts.observe(class, Result{Status: core.StatusWhitelistedFP}, started)
	}
	if in.External {
		// The external world cannot be overwritten by recovery: a disk
		// write or a message based on lost PM state is a bug outright.
		return opts.observe(class, Result{Status: core.StatusBug}, started)
	}
	env, hung, err := runRecovery(factory, img, opts)
	if hung {
		return opts.observe(class, Result{Status: core.StatusBug, RecoveryHung: true, RecoveryErr: err}, started)
	}
	if err != nil {
		// Recovery could not complete: the inconsistency was not fixed.
		return opts.observe(class, Result{Status: core.StatusBug, RecoveryErr: err}, started)
	}
	if env.RangeOverwritten(in.SideEffect) {
		return opts.observe(class, Result{Status: core.StatusValidatedFP}, started)
	}
	return opts.observe(class, Result{Status: core.StatusBug}, started)
}

// Sync validates one synchronization inconsistency against its crash image.
func Sync(factory targets.Factory, img []byte, si *core.SyncInconsistency, opts Options) Result {
	started := time.Now()
	if opts.Whitelist != nil && opts.Whitelist.MatchStack(si.Stack) {
		return opts.observe("sync", Result{Status: core.StatusWhitelistedFP}, started)
	}
	env, hung, err := runRecovery(factory, img, opts)
	if hung {
		return opts.observe("sync", Result{Status: core.StatusBug, RecoveryHung: true, RecoveryErr: err}, started)
	}
	if err != nil {
		return opts.observe("sync", Result{Status: core.StatusBug, RecoveryErr: err}, started)
	}
	if si.Addr+8 > env.Pool().Size() {
		return opts.observe("sync", Result{Status: core.StatusBug}, started)
	}
	if env.Pool().Load64(si.Addr) == si.Var.InitVal {
		return opts.observe("sync", Result{Status: core.StatusValidatedFP}, started)
	}
	return opts.observe("sync", Result{Status: core.StatusBug}, started)
}

// runRecovery restarts the target on the crash image with write recording
// enabled and runs its recovery procedure, converting hangs into results
// instead of panics.
func runRecovery(factory targets.Factory, img []byte, opts Options) (env *rt.Env, hung bool, err error) {
	if opts.HangTimeout <= 0 {
		opts.HangTimeout = 100 * time.Millisecond
	}
	env = rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: opts.HangTimeout})
	env.EnableWriteRecorder()
	tgt := factory()
	th := env.Spawn()
	defer func() {
		if r := recover(); r != nil {
			if h, ok := r.(rt.HangError); ok {
				hung = true
				err = h
				return
			}
			panic(r)
		}
	}()
	err = tgt.Recover(th)
	return env, false, err
}
