package validate

import (
	"fmt"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
)

// DefaultWallTimeout bounds one recovery run's wall-clock time when Options
// leaves WallTimeout zero. It is deliberately much larger than the spin-lock
// HangTimeout: the spin detector fires first for instrumented hangs, and the
// watchdog only catches what the detector cannot see.
const DefaultWallTimeout = 2 * time.Second

// Options configure validation runs.
type Options struct {
	// HangTimeout bounds spin-lock acquisition inside recovery; recovery
	// that hangs on a never-released persistent lock confirms the bug.
	// Zero selects rt.DefaultHangTimeout — the same default the fuzzing
	// runtime uses, so the two layers cannot disagree.
	HangTimeout time.Duration
	// WallTimeout bounds one recovery run's total wall-clock time. It
	// catches hangs the spin-lock detector cannot see: uninstrumented
	// loops, sleeps, runaway recovery. Zero selects DefaultWallTimeout.
	WallTimeout time.Duration
	// Whitelist holds the benign patterns; nil disables whitelisting.
	Whitelist *core.Whitelist
	// Obs, when set, receives a ValidationVerdict event per judged finding
	// and feeds the validation counters and latency histograms.
	Obs *obs.Emitter
	// Trace, when set, records a validate span per finding (with a
	// validate_state child per crash state) on lane TraceLane. Findings are
	// rare, so validation spans are always-on rather than sampled.
	Trace     *obs.Tracer
	TraceLane int
}

// observe emits the verdict event and updates the validation metrics.
func (o Options) observe(class string, r Result, started time.Time) Result {
	r.Latency = time.Since(started)
	o.Obs.Registry().Counter(obs.MValidations).Inc()
	o.Obs.Registry().Histogram(obs.HValidationLatency).Observe(r.Latency)
	o.Obs.Emit(&obs.ValidationVerdict{
		Class:        class,
		Status:       r.Status.String(),
		RecoveryHung: r.RecoveryHung,
		CrashStates:  len(r.States),
		Latency:      r.Latency,
	})
	return r
}

// finish is observe plus span completion: the validate span records the
// class and final status as attributes.
func (o Options) finish(sp *obs.SpanCtx, class string, r Result, started time.Time) Result {
	r = o.observe(class, r, started)
	sp.SetAttr("class", class)
	sp.SetAttr("status", r.Status.String())
	sp.End()
	return r
}

// StateVerdict is one row of the per-state verdict table.
type StateVerdict struct {
	// State names the crash state (pmem.StateSideEffect, ...).
	State string
	// Status is this state's verdict: bug or validated FP.
	Status core.Status
	// RecoveryHung reports the recovery run hung (spin-lock detector or
	// wall-clock watchdog).
	RecoveryHung bool
	// WallTimeout reports that the watchdog, not the spin-lock detector,
	// declared the hang.
	WallTimeout bool
	// RecoveryErr records a recovery failure, if any.
	RecoveryErr error
	// Latency is the wall time of this state's recovery run.
	Latency time.Duration
}

// Result is the outcome of one validation run.
type Result struct {
	Status core.Status
	// RecoveryHung reports that some state's recovery run hung — direct
	// evidence for synchronization bugs.
	RecoveryHung bool
	// RecoveryErr records the first failing state's recovery error.
	RecoveryErr error
	// Latency is the wall time of the whole validation (whitelist check
	// plus every state's recovery run); artifact bundles record it.
	Latency time.Duration
	// States is the per-state verdict table, in enumeration order. Empty
	// for whitelisted and external findings, which skip recovery.
	States []StateVerdict
}

// aggregate folds the per-state table into the finding-level verdict: a bug
// if any enumerated state failed recovery, a validated FP only when every
// state passed. The first failing state's evidence is hoisted to the top.
func aggregate(r Result) Result {
	r.Status = core.StatusValidatedFP
	for _, v := range r.States {
		if v.Status == core.StatusBug {
			r.Status = core.StatusBug
			r.RecoveryHung = v.RecoveryHung
			r.RecoveryErr = v.RecoveryErr
			break
		}
	}
	return r
}

// Inconsistency validates one inter-/intra-thread inconsistency against its
// enumerated crash states (pmem.CrashStates, or pmem.AdversarialState for
// the paper's single-image validation).
func Inconsistency(factory targets.Factory, states []pmem.CrashState, in *core.Inconsistency, opts Options) Result {
	started := time.Now()
	sp := opts.Trace.Start(opts.TraceLane, obs.SpanValidate)
	class := "intra"
	if in.Kind == core.KindInter {
		class = "inter"
	}
	if opts.Whitelist != nil && opts.Whitelist.MatchInconsistency(in) {
		return opts.finish(&sp, class, Result{Status: core.StatusWhitelistedFP}, started)
	}
	if in.External {
		// The external world cannot be overwritten by recovery: a disk
		// write or a message based on lost PM state is a bug outright.
		return opts.finish(&sp, class, Result{Status: core.StatusBug}, started)
	}
	var res Result
	for _, st := range states {
		hasSE := st.HasSideEffect
		res.States = append(res.States, opts.judgeState(factory, st, &sp, func(env *rt.Env) core.Status {
			if !hasSE {
				// The side effect never reached PM in this state;
				// recovery completing cleanly is all we can ask.
				return core.StatusValidatedFP
			}
			if env.RangeOverwritten(in.SideEffect) {
				return core.StatusValidatedFP
			}
			return core.StatusBug
		}))
	}
	return opts.finish(&sp, class, aggregate(res), started)
}

// Sync validates one synchronization inconsistency against its enumerated
// crash states. The annotated variable must hold its expected initial value
// after recovery in every state.
func Sync(factory targets.Factory, states []pmem.CrashState, si *core.SyncInconsistency, opts Options) Result {
	started := time.Now()
	sp := opts.Trace.Start(opts.TraceLane, obs.SpanValidate)
	if opts.Whitelist != nil && opts.Whitelist.MatchStack(si.Stack) {
		return opts.finish(&sp, "sync", Result{Status: core.StatusWhitelistedFP}, started)
	}
	var res Result
	for _, st := range states {
		res.States = append(res.States, opts.judgeState(factory, st, &sp, func(env *rt.Env) core.Status {
			if si.Addr+8 > env.Pool().Size() {
				return core.StatusBug
			}
			if env.Pool().Load64(si.Addr) == si.Var.InitVal {
				return core.StatusValidatedFP
			}
			return core.StatusBug
		}))
	}
	return opts.finish(&sp, "sync", aggregate(res), started)
}

// judgeState runs one state's recovery under the watchdog and applies the
// caller's oracle to the recovered environment when recovery completed.
// parent is the enclosing validate span; each state records a
// validate_state child under it.
func (o Options) judgeState(factory targets.Factory, st pmem.CrashState, parent *obs.SpanCtx, oracle func(*rt.Env) core.Status) StateVerdict {
	start := time.Now()
	v := StateVerdict{State: st.Name}
	ssp := parent.Child(obs.SpanValidateState)
	ssp.SetAttr("state", st.Name)
	env, hung, wallTimedOut, err := runRecovery(factory, st.Img, o)
	v.Latency = time.Since(start)
	reg := o.Obs.Registry()
	reg.Counter(obs.MValidateCrashStates).Inc()
	reg.Histogram(obs.HValidateStateLatency).Observe(v.Latency)
	if wallTimedOut {
		reg.Counter(obs.MValidateWallTimeouts).Inc()
		// A watchdog trip is an anomaly worth forensics even when the
		// verdict is a bug anyway: dump the flight recorder.
		o.Trace.DumpAnomaly("validate_wall_timeout")
	}
	v.WallTimeout = wallTimedOut
	switch {
	case hung:
		v.Status, v.RecoveryHung, v.RecoveryErr = core.StatusBug, true, err
	case err != nil:
		// Recovery could not complete: the state was not fixed.
		v.Status, v.RecoveryErr = core.StatusBug, err
	default:
		v.Status = oracle(env)
	}
	ssp.SetAttr("status", v.Status.String())
	if v.RecoveryHung {
		ssp.SetAttr("hung", "true")
	}
	ssp.End()
	return v
}

// recoveryResult is what the sandboxed recovery goroutine reports.
type recoveryResult struct {
	hung bool
	err  error
}

// runRecovery restarts the target on the crash image with write recording
// enabled and runs its recovery procedure in a watchdog-supervised goroutine.
// Spin-lock hangs (rt.HangError) and recovery panics become results; a run
// exceeding opts.WallTimeout is abandoned — its environment is cancelled so
// the goroutine stops mutating the pool at its next hook call — and reported
// as hung with wallTimedOut set. The image is fully copied before the
// goroutine starts, so the caller may recycle it as soon as runRecovery
// returns, even after a wall timeout.
func runRecovery(factory targets.Factory, img []byte, opts Options) (env *rt.Env, hung, wallTimedOut bool, err error) {
	if opts.HangTimeout <= 0 {
		opts.HangTimeout = rt.DefaultHangTimeout
	}
	if opts.WallTimeout <= 0 {
		opts.WallTimeout = DefaultWallTimeout
	}
	env = rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: opts.HangTimeout})
	env.EnableWriteRecorder()
	// Buffered so an abandoned goroutine's send never blocks: the watchdog
	// result channel must not leak the recovery goroutine on top of the
	// hang it just detected.
	done := make(chan recoveryResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				switch e := r.(type) {
				case rt.HangError:
					done <- recoveryResult{hung: true, err: e}
				case rt.CancelError:
					// Abandoned by the watchdog; the verdict was
					// already returned. Exit quietly.
				default:
					done <- recoveryResult{err: fmt.Errorf("validate: recovery panicked: %v", r)}
				}
			}
		}()
		tgt := factory()
		th := env.Spawn()
		done <- recoveryResult{err: tgt.Recover(th)}
	}()
	timer := time.NewTimer(opts.WallTimeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return env, r.hung, false, r.err
	case <-timer.C:
		env.Cancel()
		return env, true, true, fmt.Errorf("validate: recovery exceeded wall timeout %s", opts.WallTimeout)
	}
}
