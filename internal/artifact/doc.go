// Package artifact writes and loads forensic bug bundles: self-contained
// directories that capture everything a triager needs to understand and
// reproduce one confirmed PM concurrency finding without re-running the
// campaign (paper §4.1 step 6 — "detailed bug reports" with inputs, stacks
// and interleavings — extended with the machine-readable state needed for
// automated replay).
//
// A bundle directory holds:
//
//	bug.json       the report: kind, verdict, sites, stacks, taint lineage
//	seed.txt       the encoded program input that found the bug
//	schedule.json  the PM-aware interleaving decisions of the finding run
//	trace.json     the tail of the runtime PM access trace at detection
//	pmdiff.json    the dirty words (cache vs. persisted) at detection
//
// Site identities are persisted as resolved file:line strings, never as
// numeric site IDs: IDs are process-local (they depend on hook discovery
// order), while file:line fingerprints are stable across processes, which is
// what lets `pmrace -artifact <dir>` check that a replay reproduced the same
// bug.
package artifact
