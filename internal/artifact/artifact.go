package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// SchemaVersion is stamped into bug.json; bump on incompatible changes.
const SchemaVersion = 1

// Bundle file names.
const (
	BugFile      = "bug.json"
	SeedFile     = "seed.txt"
	ScheduleFile = "schedule.json"
	TraceFile    = "trace.json"
	PMDiffFile   = "pmdiff.json"
	SpansFile    = "spans.json"
)

// Range is a byte range in the pool.
type Range struct {
	Off uint64 `json:"off"`
	Len uint64 `json:"len"`
}

// LineageEvent is one dirty-read event in the taint expansion of the label
// that made the store a durable side effect, with sites resolved.
type LineageEvent struct {
	Addr      uint64 `json:"addr"`
	Epoch     uint32 `json:"epoch"`
	WriteSite string `json:"write_site"`
	ReadSite  string `json:"read_site"`
	Writer    int32  `json:"writer"`
	Reader    int32  `json:"reader"`
}

// Report is the bug.json document.
type Report struct {
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Kind        string `json:"kind"`   // "inter" | "intra" | "sync"
	Status      string `json:"status"` // verdict from post-failure validation
	Target      string `json:"target"`
	// Threads is the driver-thread count of the finding campaign; replay
	// decodes seed.txt with it.
	Threads int `json:"threads"`

	// Inter-/intra-thread fields.
	Flow       string         `json:"flow,omitempty"` // "value" | "address"
	External   bool           `json:"external,omitempty"`
	WriteSite  string         `json:"write_site,omitempty"`
	ReadSite   string         `json:"read_site,omitempty"`
	StoreSite  string         `json:"store_site,omitempty"`
	SideEffect *Range         `json:"side_effect,omitempty"`
	DirtyRange *Range         `json:"dirty_range,omitempty"`
	Lineage    []LineageEvent `json:"lineage,omitempty"`

	// Synchronization-variable fields.
	SyncVar  string `json:"sync_var,omitempty"`
	SyncSite string `json:"sync_site,omitempty"`
	SyncAddr uint64 `json:"sync_addr,omitempty"`
	OldVal   uint64 `json:"old_val,omitempty"`
	NewVal   uint64 `json:"new_val,omitempty"`
	InitVal  uint64 `json:"init_val,omitempty"`

	Stack       []string `json:"stack,omitempty"`
	Summary     string   `json:"summary"`
	Occurrences int      `json:"occurrences"`

	// Validation records the post-failure run that produced Status.
	ValidationMs float64 `json:"validation_ms"`
	RecoveryHung bool    `json:"recovery_hung,omitempty"`
	// States is the per-crash-state verdict table (additive to schema 1;
	// absent in single-state bundles written by older builds).
	States []StateVerdict `json:"states,omitempty"`
}

// StateVerdict is one row of the per-crash-state verdict table: the outcome
// of running recovery on one enumerated crash image.
type StateVerdict struct {
	// State names the crash state ("side-effect-persisted",
	// "persisted-baseline", "pending-line@<offset>").
	State string `json:"state"`
	// Status is this state's verdict: "bug" or "validated-fp".
	Status string `json:"status"`
	// RecoveryHung reports a hang (spin-lock detector or watchdog).
	RecoveryHung bool `json:"recovery_hung,omitempty"`
	// WallTimeout reports that the wall-clock watchdog declared the hang.
	WallTimeout bool `json:"wall_timeout,omitempty"`
	// RecoveryErr is the recovery failure message, if any.
	RecoveryErr string `json:"recovery_err,omitempty"`
	// LatencyMs is this state's recovery-run wall time.
	LatencyMs float64 `json:"latency_ms"`
}

// Schedule is the schedule.json document: the interleaving-exploration
// decisions of the execution that detected the bug, enough for replay to
// re-target the same sync point (the PM address, not the process-local site
// IDs, identifies it across runs — pool layout is deterministic given the
// same target setup).
type Schedule struct {
	Mode       string   `json:"mode"` // "pmaware" | "delay" | "none"
	Addr       uint64   `json:"addr,omitempty"`
	Priority   int      `json:"priority,omitempty"`
	Skip       int      `json:"skip,omitempty"`
	LoadSites  []string `json:"load_sites,omitempty"`
	StoreSites []string `json:"store_sites,omitempty"`
	// Outcome of the strategy in the finding run (Pitfall bookkeeping).
	CondWaits  int  `json:"cond_waits,omitempty"`
	Signalled  bool `json:"signalled,omitempty"`
	Disabled   bool `json:"disabled,omitempty"`
	Privileged bool `json:"privileged,omitempty"`
}

// TraceEntry is one PM access from the runtime trace ring, sites resolved.
type TraceEntry struct {
	Seq    uint64 `json:"seq"`
	Thread int    `json:"thread"`
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr"`
	Site   string `json:"site"`
}

// DirtyWord is one still-non-persisted pool word at detection time: the
// cache/persisted value divergence a crash at that instant would expose.
type DirtyWord struct {
	Addr      uint64 `json:"addr"`
	Cache     uint64 `json:"cache"`
	Persisted uint64 `json:"persisted"`
	Writer    int    `json:"writer"`
	Site      string `json:"site"`
	Epoch     uint32 `json:"epoch"`
}

// Bundle is one complete forensic artifact.
type Bundle struct {
	Bug      Report
	Seed     string
	Schedule Schedule
	Trace    []TraceEntry
	PMDiff   []DirtyWord
	// Spans is the campaign flight recorder's last-N spans at bundle time
	// (spans.json): the wall-clock timeline leading up to the finding.
	Spans []obs.Span
}

// siteStr resolves a site ID to its stable file:line string.
func siteStr(id site.ID) string { return site.Lookup(id).String() }

// FingerprintInconsistency renders the cross-process identity of an
// inter-/intra-thread inconsistency: kind plus the resolved write, read and
// side-effect sites plus the flow kind. Replay matches on it.
func FingerprintInconsistency(in *core.Inconsistency) string {
	kind := "intra"
	if in.Kind == core.KindInter {
		kind = "inter"
	}
	return fmt.Sprintf("%s|%s->%s=>%s|%s", kind,
		siteStr(site.ID(in.Event.WriteSite)), siteStr(site.ID(in.Event.ReadSite)),
		siteStr(in.StoreSite), in.Flow)
}

// FingerprintSync is the synchronization-variable analogue.
func FingerprintSync(si *core.SyncInconsistency) string {
	return fmt.Sprintf("sync|%s@%s", si.Var.Name, siteStr(si.Site))
}

// Validation carries the post-failure run facts the report records.
type Validation struct {
	Latency      time.Duration
	RecoveryHung bool
	// States is the per-crash-state verdict table, in enumeration order.
	States []StateVerdict
}

// ConvertLineage resolves a taint-event lineage for the report.
func ConvertLineage(evs []taint.Event) []LineageEvent {
	out := make([]LineageEvent, 0, len(evs))
	for _, ev := range evs {
		out = append(out, LineageEvent{
			Addr:      ev.Addr,
			Epoch:     ev.Epoch,
			WriteSite: siteStr(site.ID(ev.WriteSite)),
			ReadSite:  siteStr(site.ID(ev.ReadSite)),
			Writer:    ev.Writer,
			Reader:    ev.Reader,
		})
	}
	return out
}

// ConvertTrace resolves a runtime access trace for the bundle.
func ConvertTrace(accs []rt.Access) []TraceEntry {
	out := make([]TraceEntry, 0, len(accs))
	for _, a := range accs {
		out = append(out, TraceEntry{
			Seq:    a.Seq,
			Thread: int(a.Thread),
			Kind:   a.Kind.String(),
			Addr:   uint64(a.Addr),
			Site:   siteStr(a.Site),
		})
	}
	return out
}

// ConvertDirty resolves a pool dirty-word diff for the bundle.
func ConvertDirty(words []pmem.DirtyWord) []DirtyWord {
	out := make([]DirtyWord, 0, len(words))
	for _, w := range words {
		out = append(out, DirtyWord{
			Addr:      uint64(w.Addr),
			Cache:     w.Cache,
			Persisted: w.Persisted,
			Writer:    int(w.Writer),
			Site:      siteStr(site.ID(w.Site)),
			Epoch:     w.Epoch,
		})
	}
	return out
}

// FromInconsistency builds the report for a judged inter-/intra-thread
// inconsistency.
func FromInconsistency(target string, threads int, in *core.Inconsistency, st core.Status, v Validation) Report {
	kind := "intra"
	if in.Kind == core.KindInter {
		kind = "inter"
	}
	return Report{
		Schema:      SchemaVersion,
		Fingerprint: FingerprintInconsistency(in),
		Kind:        kind,
		Status:      st.String(),
		Target:      target,
		Threads:     threads,
		Flow:        in.Flow.String(),
		External:    in.External,
		WriteSite:   siteStr(site.ID(in.Event.WriteSite)),
		ReadSite:    siteStr(site.ID(in.Event.ReadSite)),
		StoreSite:   siteStr(in.StoreSite),
		SideEffect:  &Range{Off: uint64(in.SideEffect.Off), Len: in.SideEffect.Len},
		DirtyRange:  &Range{Off: uint64(in.DirtyRange.Off), Len: in.DirtyRange.Len},
		Lineage:     ConvertLineage(in.Lineage),
		Stack:       in.Stack,
		Summary: fmt.Sprintf("durable side effect at %s based on non-persisted data written at %s (read at %s, %s flow)",
			siteStr(in.StoreSite), siteStr(site.ID(in.Event.WriteSite)), siteStr(site.ID(in.Event.ReadSite)), in.Flow),
		Occurrences:  in.Count,
		ValidationMs: float64(v.Latency.Microseconds()) / 1e3,
		RecoveryHung: v.RecoveryHung,
		States:       v.States,
	}
}

// FromSync builds the report for a judged synchronization inconsistency.
func FromSync(target string, threads int, si *core.SyncInconsistency, st core.Status, v Validation) Report {
	return Report{
		Schema:      SchemaVersion,
		Fingerprint: FingerprintSync(si),
		Kind:        "sync",
		Status:      st.String(),
		Target:      target,
		Threads:     threads,
		SyncVar:     si.Var.Name,
		SyncSite:    siteStr(si.Site),
		SyncAddr:    uint64(si.Addr),
		OldVal:      si.OldVal,
		NewVal:      si.NewVal,
		InitVal:     si.Var.InitVal,
		Stack:       si.Stack,
		Summary: fmt.Sprintf("persistent synchronization variable %q updated at %s survives restart",
			si.Var.Name, siteStr(si.Site)),
		Occurrences:  si.Count,
		ValidationMs: float64(v.Latency.Microseconds()) / 1e3,
		RecoveryHung: v.RecoveryHung,
		States:       v.States,
	}
}

// Writer emits numbered bundle directories under a base directory,
// deduplicating by fingerprint so a long campaign does not rewrite the same
// bug on every occurrence. Safe for concurrent use by fuzzing workers.
type Writer struct {
	dir  string
	mu   sync.Mutex
	n    int
	seen map[string]struct{}
}

// NewWriter creates the base directory (if needed) and a writer into it.
// Numbering resumes after the highest existing bundle, so pointing a new
// campaign at a previous run's directory never overwrites its bundles; the
// fingerprints of existing bundles are loaded into the dedup set, so a
// later campaign sharing the directory never rewrites a bug an earlier one
// already bundled (the cross-campaign dedup the pmraced control plane
// relies on). A bundle whose bug.json cannot be read is skipped for dedup
// but still counts for numbering.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating %s: %w", dir, err)
	}
	w := &Writer{dir: dir, seen: make(map[string]struct{})}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".") {
			// A dot-prefixed directory is a staging area a previous writer
			// abandoned mid-crash (bundles land via rename, so a completed
			// one never keeps the prefix). Sweep it; it neither counts for
			// numbering nor for dedup.
			if strings.HasSuffix(e.Name(), tmpSuffix) {
				_ = os.RemoveAll(filepath.Join(dir, e.Name()))
			}
			continue
		}
		num, _, _ := strings.Cut(e.Name(), "-")
		if n, err := strconv.Atoi(num); err == nil && n > w.n {
			w.n = n
		}
		var rep Report
		if err := readJSON(filepath.Join(dir, e.Name(), BugFile), &rep); err == nil && rep.Fingerprint != "" {
			w.seen[rep.Fingerprint] = struct{}{}
		}
	}
	return w, nil
}

// Dir returns the writer's base directory.
func (w *Writer) Dir() string { return w.dir }

// Count returns how many bundles have been written.
func (w *Writer) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// tmpSuffix marks a writer's staging directory. Staging names also carry a
// leading dot, which the GC walk, bundle listings and reopened writers all
// skip — a half-written bundle is invisible everywhere until it is renamed
// into place.
const tmpSuffix = ".tmp"

// Write persists the bundle as the next numbered directory and returns its
// path; a bundle whose fingerprint was already written returns "" with no
// error. The bundle's files are staged in a dot-prefixed temp directory and
// renamed into place, so concurrent readers of the tree (artifact listings,
// retention GC) never observe a partially written bundle. The fingerprint
// is recorded (and the number consumed) only after the rename, so a failed
// write can be retried when the bug recurs. The lock is held across the
// disk write: bundles are rare (one per distinct confirmed bug), so
// serializing them costs nothing measurable.
func (w *Writer) Write(b *Bundle) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.seen[b.Bug.Fingerprint]; dup {
		return "", nil
	}
	name := fmt.Sprintf("%04d-%s", w.n+1, b.Bug.Kind)
	tmp := filepath.Join(w.dir, "."+name+tmpSuffix)
	if err := WriteBundle(tmp, b); err != nil {
		_ = os.RemoveAll(tmp)
		return "", err
	}
	dir := filepath.Join(w.dir, name)
	if err := os.Rename(tmp, dir); err != nil {
		_ = os.RemoveAll(tmp)
		return "", fmt.Errorf("artifact: publishing %s: %w", dir, err)
	}
	w.n++
	w.seen[b.Bug.Fingerprint] = struct{}{}
	return dir, nil
}

// WriteBundle persists one bundle into dir, creating it.
func WriteBundle(dir string, b *Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: creating %s: %w", dir, err)
	}
	if err := writeJSON(filepath.Join(dir, BugFile), b.Bug); err != nil {
		return err
	}
	seed := b.Seed
	if !strings.HasSuffix(seed, "\n") && seed != "" {
		seed += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, SeedFile), []byte(seed), 0o644); err != nil {
		return fmt.Errorf("artifact: writing seed: %w", err)
	}
	if err := writeJSON(filepath.Join(dir, ScheduleFile), b.Schedule); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, TraceFile), b.Trace); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, PMDiffFile), b.PMDiff); err != nil {
		return err
	}
	spans := b.Spans
	if spans == nil {
		// spans.json is always present — an untraced campaign writes an
		// empty list, so consumers never special-case its absence.
		spans = []obs.Span{}
	}
	return writeJSON(filepath.Join(dir, SpansFile), spans)
}

// Load reads a bundle back from dir. bug.json and seed.txt are required;
// the forensic extras are optional so hand-trimmed bundles still replay.
func Load(dir string) (*Bundle, error) {
	b := &Bundle{}
	if err := readJSON(filepath.Join(dir, BugFile), &b.Bug); err != nil {
		return nil, err
	}
	if b.Bug.Schema > SchemaVersion {
		return nil, fmt.Errorf("artifact: %s has schema %d, this build understands <= %d",
			dir, b.Bug.Schema, SchemaVersion)
	}
	seed, err := os.ReadFile(filepath.Join(dir, SeedFile))
	if err != nil {
		return nil, fmt.Errorf("artifact: reading seed: %w", err)
	}
	b.Seed = string(seed)
	if err := readJSON(filepath.Join(dir, ScheduleFile), &b.Schedule); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := readJSON(filepath.Join(dir, TraceFile), &b.Trace); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := readJSON(filepath.Join(dir, PMDiffFile), &b.PMDiff); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := readJSON(filepath.Join(dir, SpansFile), &b.Spans); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	return b, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: encoding %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// readJSON decodes path into v; a missing file is returned as an
// os.IsNotExist error for the caller to tolerate.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("artifact: decoding %s: %w", filepath.Base(path), err)
	}
	return nil
}
