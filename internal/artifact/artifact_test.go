package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// testInconsistency builds a synthetic inter-thread inconsistency with
// named (stable) sites.
func testInconsistency(t *testing.T) *core.Inconsistency {
	t.Helper()
	wr := site.Named("writer.go")
	rd := site.Named("reader.go")
	st := site.Named("store.go")
	ev := taint.Event{
		Addr: 0x40, Epoch: 3,
		WriteSite: uint32(wr), ReadSite: uint32(rd),
		Writer: 1, Reader: 2,
	}
	return &core.Inconsistency{
		Kind:      core.KindInter,
		Event:     ev,
		StoreSite: st,
		Flow:      core.FlowAddress,
		Stack:     []string{"store.go:0 doPut"},
		Lineage:   []taint.Event{ev},
		Count:     2,
	}
}

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	in := testInconsistency(t)
	rep := FromInconsistency("pclht", 4, in, core.StatusBug,
		Validation{Latency: 1500 * time.Microsecond, RecoveryHung: true})
	return &Bundle{
		Bug:  rep,
		Seed: "0 put 1 10\n1 get 1",
		Schedule: Schedule{
			Mode: "pmaware", Addr: 0x40, Priority: 9, Skip: 1,
			LoadSites: []string{"reader.go:0"}, CondWaits: 2, Signalled: true,
		},
		Trace: []TraceEntry{
			{Seq: 1, Thread: 1, Kind: "store", Addr: 0x40, Site: "writer.go:0"},
			{Seq: 2, Thread: 2, Kind: "load", Addr: 0x40, Site: "reader.go:0"},
		},
		PMDiff: []DirtyWord{
			{Addr: 0x40, Cache: 7, Persisted: 0, Writer: 1, Site: "writer.go:0", Epoch: 3},
		},
	}
}

func TestFingerprintsUseResolvedSites(t *testing.T) {
	in := testInconsistency(t)
	fp := FingerprintInconsistency(in)
	want := "inter|writer.go:0->reader.go:0=>store.go:0|address"
	if fp != want {
		t.Fatalf("FingerprintInconsistency = %q, want %q", fp, want)
	}

	si := &core.SyncInconsistency{
		Var:  core.SyncVar{Name: "bucket-lock"},
		Site: site.Named("lock.go"),
	}
	if fp := FingerprintSync(si); fp != "sync|bucket-lock@lock.go:0" {
		t.Fatalf("FingerprintSync = %q", fp)
	}
}

func TestFromInconsistencyReport(t *testing.T) {
	in := testInconsistency(t)
	rep := FromInconsistency("pclht", 4, in, core.StatusBug,
		Validation{Latency: 1500 * time.Microsecond, RecoveryHung: true})
	if rep.Schema != SchemaVersion || rep.Kind != "inter" || rep.Status != "bug" {
		t.Fatalf("report header %+v", rep)
	}
	if rep.Target != "pclht" || rep.Threads != 4 {
		t.Fatalf("report target %+v", rep)
	}
	if rep.WriteSite != "writer.go:0" || rep.ReadSite != "reader.go:0" || rep.StoreSite != "store.go:0" {
		t.Fatalf("report sites %+v", rep)
	}
	if rep.Flow != "address" || len(rep.Lineage) != 1 || rep.Lineage[0].WriteSite != "writer.go:0" {
		t.Fatalf("report flow/lineage %+v", rep)
	}
	if rep.ValidationMs != 1.5 || !rep.RecoveryHung {
		t.Fatalf("report validation %+v", rep)
	}
	if !strings.Contains(rep.Summary, "store.go:0") {
		t.Fatalf("summary lacks side-effect site: %q", rep.Summary)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := testBundle(t)
	dir := filepath.Join(t.TempDir(), "0001-inter")
	if err := WriteBundle(dir, b); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{BugFile, SeedFile, ScheduleFile, TraceFile, PMDiffFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The writer normalizes the seed with a trailing newline.
	wantSeed := b.Seed + "\n"
	if got.Seed != wantSeed {
		t.Fatalf("seed round trip: %q, want %q", got.Seed, wantSeed)
	}
	if !reflect.DeepEqual(got.Bug, b.Bug) {
		t.Fatalf("bug round trip:\n got %+v\nwant %+v", got.Bug, b.Bug)
	}
	if !reflect.DeepEqual(got.Schedule, b.Schedule) {
		t.Fatalf("schedule round trip:\n got %+v\nwant %+v", got.Schedule, b.Schedule)
	}
	if !reflect.DeepEqual(got.Trace, b.Trace) {
		t.Fatalf("trace round trip:\n got %+v\nwant %+v", got.Trace, b.Trace)
	}
	if !reflect.DeepEqual(got.PMDiff, b.PMDiff) {
		t.Fatalf("pmdiff round trip:\n got %+v\nwant %+v", got.PMDiff, b.PMDiff)
	}
}

func TestLoadToleratesTrimmedBundle(t *testing.T) {
	b := testBundle(t)
	dir := filepath.Join(t.TempDir(), "trimmed")
	if err := WriteBundle(dir, b); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{ScheduleFile, TraceFile, PMDiffFile} {
		if err := os.Remove(filepath.Join(dir, f)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("trimmed bundle must load: %v", err)
	}
	if got.Bug.Fingerprint != b.Bug.Fingerprint {
		t.Fatalf("fingerprint lost: %q", got.Bug.Fingerprint)
	}

	// bug.json, however, is required.
	if err := os.Remove(filepath.Join(dir, BugFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a bundle without bug.json")
	}
}

func TestLoadRejectsNewerSchema(t *testing.T) {
	b := testBundle(t)
	b.Bug.Schema = SchemaVersion + 1
	dir := filepath.Join(t.TempDir(), "future")
	if err := WriteBundle(dir, b); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load(newer schema) err = %v, want schema error", err)
	}
}

func TestWriterDedupAndNumbering(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "bugs"))
	if err != nil {
		t.Fatal(err)
	}
	b := testBundle(t)
	dir1, err := w.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dir1) != "0001-inter" {
		t.Fatalf("first bundle dir = %q, want 0001-inter", dir1)
	}

	// Same fingerprint again: silently skipped.
	dup, err := w.Write(b)
	if err != nil || dup != "" {
		t.Fatalf("duplicate write: dir=%q err=%v, want \"\", nil", dup, err)
	}
	if w.Count() != 1 {
		t.Fatalf("Count after dup = %d, want 1", w.Count())
	}

	// A different fingerprint gets the next number.
	b2 := testBundle(t)
	b2.Bug.Fingerprint = "sync|lock@lock.go:0"
	b2.Bug.Kind = "sync"
	dir2, err := w.Write(b2)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dir2) != "0002-sync" {
		t.Fatalf("second bundle dir = %q, want 0002-sync", dir2)
	}
	if w.Count() != 2 {
		t.Fatalf("Count = %d, want 2", w.Count())
	}

	// Reopening the same directory resumes numbering after the existing
	// bundles instead of overwriting them.
	w2, err := NewWriter(w.Dir())
	if err != nil {
		t.Fatal(err)
	}
	b3 := testBundle(t)
	b3.Bug.Fingerprint = "sync|other@other.go:0"
	b3.Bug.Kind = "sync"
	dir3, err := w2.Write(b3)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dir3) != "0003-sync" {
		t.Fatalf("bundle dir after reopen = %q, want 0003-sync", dir3)
	}
}

// TestWriterRetriesAfterFailedWrite pins that a failed bundle write neither
// consumes the fingerprint nor the bundle number: when the bug recurs, the
// bundle is written as if the failure never happened.
func TestWriterRetriesAfterFailedWrite(t *testing.T) {
	base := filepath.Join(t.TempDir(), "bugs")
	w, err := NewWriter(base)
	if err != nil {
		t.Fatal(err)
	}
	// A regular file where the bundle directory would go makes MkdirAll
	// (and so Write) fail.
	block := filepath.Join(base, "0001-inter")
	if err := os.WriteFile(block, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	b := testBundle(t)
	if _, err := w.Write(b); err == nil {
		t.Fatal("Write over a blocking file succeeded, want error")
	}
	if w.Count() != 0 {
		t.Fatalf("Count after failed write = %d, want 0", w.Count())
	}
	if err := os.Remove(block); err != nil {
		t.Fatal(err)
	}
	dir, err := w.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dir) != "0001-inter" {
		t.Fatalf("retried bundle dir = %q, want 0001-inter", dir)
	}
}

// TestWriterLoadsSeenFingerprints pins cross-campaign dedup through a
// shared directory: a fresh writer over an existing artifact tree refuses
// to rewrite fingerprints already bundled on disk.
func TestWriterLoadsSeenFingerprints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bugs")
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := testBundle(t)
	if _, err := w.Write(b); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := w2.Write(b); err != nil || got != "" {
		t.Fatalf("reopened writer rewrote existing fingerprint: dir=%q err=%v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d bundles, want 1", len(entries))
	}
}

// TestGCRetention pins the retention budget: the oldest bundles across a
// two-level artifact tree are removed until at most retain remain, and
// emptied campaign directories disappear with them.
func TestGCRetention(t *testing.T) {
	root := t.TempDir()
	write := func(campaign, name string, age time.Duration) string {
		t.Helper()
		dir := filepath.Join(root, campaign, name)
		b := testBundle(t)
		b.Bug.Fingerprint = campaign + "/" + name
		if err := WriteBundle(dir, b); err != nil {
			t.Fatal(err)
		}
		mod := time.Now().Add(-age)
		if err := os.Chtimes(filepath.Join(dir, BugFile), mod, mod); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	oldest := write("c0001", "0001-inter", 3*time.Hour)
	mid := write("c0001", "0002-sync", 2*time.Hour)
	newest := write("c0002", "0001-inter", time.Hour)

	removed, err := GC(root, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != oldest || removed[1] != mid {
		t.Fatalf("removed = %v, want [%s %s]", removed, oldest, mid)
	}
	if _, err := os.Stat(newest); err != nil {
		t.Fatalf("newest bundle gone: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "c0001")); !os.IsNotExist(err) {
		t.Fatalf("emptied campaign dir still present (err=%v)", err)
	}

	// Under budget: nothing to do. retain <= 0 disables GC entirely.
	if removed, err := GC(root, 5, time.Minute); err != nil || len(removed) != 0 {
		t.Fatalf("under-budget GC removed %v (err=%v)", removed, err)
	}
	if removed, err := GC(root, 0, time.Minute); err != nil || len(removed) != 0 {
		t.Fatalf("disabled GC removed %v (err=%v)", removed, err)
	}
}

// TestGCGraceWindow: bundles younger than the grace window are exempt from
// the retention budget — a freshly published bundle cannot be collected by
// another campaign's GC pass — while still occupying budget, so the same
// number of aged bundles is removed.
func TestGCGraceWindow(t *testing.T) {
	root := t.TempDir()
	write := func(campaign, name string, age time.Duration) string {
		t.Helper()
		dir := filepath.Join(root, campaign, name)
		b := testBundle(t)
		b.Bug.Fingerprint = campaign + "/" + name
		if err := WriteBundle(dir, b); err != nil {
			t.Fatal(err)
		}
		mod := time.Now().Add(-age)
		if err := os.Chtimes(filepath.Join(dir, BugFile), mod, mod); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	old := write("c0001", "0001-inter", 3*time.Hour)
	fresh := write("c0002", "0001-sync", 0) // just published

	// Budget 1 with both bundles present: the fresh one is newest, so a
	// grace-less GC would keep it and delete the old one — but with grace
	// the fresh bundle is also untouchable, so only the old one can go.
	removed, err := GC(root, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != old {
		t.Fatalf("removed = %v, want [%s]", removed, old)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("bundle inside the grace window was collected: %v", err)
	}

	// With only the fresh bundle left, a repeat pass removes nothing: the
	// grace window shields it even though the budget is exactly met.
	if removed, err := GC(root, 1, time.Minute); err != nil || len(removed) != 0 {
		t.Fatalf("GC removed fresh bundles %v (err=%v)", removed, err)
	}
}

// TestGCSkipsInFlightWrites models the GC-vs-writer race directly: a
// staging directory (dot-prefixed, as Writer.Write stages bundles before
// renaming them into place) already contains a bug.json, yet GC must
// neither count nor delete it, no matter how tight the budget.
func TestGCSkipsInFlightWrites(t *testing.T) {
	root := t.TempDir()
	staging := filepath.Join(root, "c0001", ".0001-inter.tmp")
	b := testBundle(t)
	if err := WriteBundle(staging, b); err != nil {
		t.Fatal(err)
	}
	mod := time.Now().Add(-3 * time.Hour) // even an old-looking temp dir is off-limits
	if err := os.Chtimes(filepath.Join(staging, BugFile), mod, mod); err != nil {
		t.Fatal(err)
	}
	if removed, err := GC(root, 1, 0); err != nil || len(removed) != 0 {
		t.Fatalf("GC touched an in-flight bundle: removed=%v err=%v", removed, err)
	}
	if _, err := os.Stat(filepath.Join(staging, BugFile)); err != nil {
		t.Fatalf("staging directory gone: %v", err)
	}
}

// TestWriterStagesThenRenames pins the publish protocol: a successful Write
// leaves exactly the final bundle (no temp residue), and a reopened writer
// sweeps abandoned staging directories without letting them consume bundle
// numbers or dedup slots.
func TestWriterStagesThenRenames(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := testBundle(t)
	path, err := w.Write(b)
	if err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != filepath.Base(path) {
		t.Fatalf("directory after Write = %v, want just %s", ents, filepath.Base(path))
	}

	// Abandon a staging dir as a crashed writer would, then reopen.
	stale := filepath.Join(dir, ".0002-sync.tmp")
	b2 := testBundle(t)
	b2.Bug.Fingerprint = "other/fingerprint"
	if err := WriteBundle(stale, b2); err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("reopened writer kept stale staging dir (err=%v)", err)
	}
	// The abandoned bundle was never published: its fingerprint must not
	// count as seen, and numbering continues from the published bundle.
	path2, err := w2.Write(b2)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path2) != "0002-"+b2.Bug.Kind {
		t.Fatalf("second bundle = %s, want 0002-%s", filepath.Base(path2), b2.Bug.Kind)
	}
}
