package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// bundleRef is one on-disk bundle located by GC.
type bundleRef struct {
	path string
	mod  time.Time
}

// GC enforces a retention budget over every bundle below root: when more
// than retain bundles exist, the oldest (by bug.json modification time,
// ties broken by path) are deleted until the budget holds, and empty
// campaign directories left behind are removed. A bundle is any directory
// up to two levels below root containing bug.json — both a campaign's flat
// artifact directory (root/0001-inter) and the pmraced layout
// (root/<campaign-id>/0001-inter) are covered. retain <= 0 disables GC.
// The removed bundle paths are returned.
//
// Two rules keep GC from racing an in-flight Writer on the same tree:
// dot-prefixed directories (the Writer's stage-then-rename temp dirs) are
// never touched, and bundles whose bug.json is younger than grace are
// exempt from the budget — a bundle that just landed must stay fetchable
// at least that long, even when an older campaign's GC pass runs over the
// shared root moments later.
func GC(root string, retain int, grace time.Duration) ([]string, error) {
	if retain <= 0 {
		return nil, nil
	}
	bundles, err := findBundles(root, 2)
	if err != nil || len(bundles) <= retain {
		return nil, err
	}
	if grace > 0 {
		cutoff := time.Now().Add(-grace)
		aged := bundles[:0]
		for _, b := range bundles {
			if b.mod.Before(cutoff) {
				aged = append(aged, b)
			}
		}
		// Bundles inside the grace window still occupy budget — they are
		// only exempt from removal — so the excess shrinks accordingly.
		excess := len(bundles) - retain
		if excess > len(aged) {
			excess = len(aged)
		}
		bundles = aged
		retain = len(bundles) - excess
	}
	if len(bundles) <= retain {
		return nil, nil
	}
	sort.Slice(bundles, func(i, j int) bool {
		if !bundles[i].mod.Equal(bundles[j].mod) {
			return bundles[i].mod.Before(bundles[j].mod)
		}
		return bundles[i].path < bundles[j].path
	})
	var removed []string
	for _, b := range bundles[:len(bundles)-retain] {
		if err := os.RemoveAll(b.path); err != nil {
			return removed, fmt.Errorf("artifact: gc removing %s: %w", b.path, err)
		}
		removed = append(removed, b.path)
		// Drop the parent campaign directory when the bundle was its last
		// content (os.Remove refuses non-empty directories).
		if parent := filepath.Dir(b.path); parent != filepath.Clean(root) {
			_ = os.Remove(parent)
		}
	}
	return removed, nil
}

// findBundles walks up to depth levels below root collecting directories
// that hold a bug.json. Dot-prefixed directories are Writer staging areas
// (or foreign noise) and are skipped. A missing root yields no bundles.
func findBundles(root string, depth int) ([]bundleRef, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("artifact: gc reading %s: %w", root, err)
	}
	var out []bundleRef
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if fi, err := os.Stat(filepath.Join(dir, BugFile)); err == nil {
			out = append(out, bundleRef{path: dir, mod: fi.ModTime()})
			continue
		}
		if depth > 1 {
			sub, err := findBundles(dir, depth-1)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	return out, nil
}
