package sched

import "sync"

// Interleaving equivalence pruning.
//
// Two queue entries whose sync-point decisions are permutations of each other
// — same address, same skip count, same load-site and store-site sets — force
// the same read-after-write windows, so executing both mostly re-explores one
// partial-order equivalence class. The fuzzer fingerprints every scheduled
// interleaving with EntrySignature, observes each execution's outcome
// signature (alias-pair coverage hash, dirty-word set hash), and prunes a
// queued interleaving when its class has already run without producing a
// novel outcome. A class whose latest round was productive — a globally
// unseen outcome, or a bug — is never pruned, and an unseen signature is
// never pruned — pruning can only skip work that demonstrably repeated
// itself. A bug run does not pin its class forever: the finding is already
// in the campaign's dedup database, so once the class goes quiet it is
// pruned like any other.

// EntrySignature fingerprints a queue entry plus its Pitfall-3 skip count.
// The load-site and store-site sets are folded permutation-invariantly (XOR
// of per-site mixes), so two entries whose decisions are reorderings of the
// same site sets collide by construction — that collision is the point.
func EntrySignature(e *Entry, skip int) uint64 {
	h := mix64(uint64(e.Addr) ^ 0x9e3779b97f4a7c15)
	h ^= mix64(uint64(skip)<<1 | 1)
	var loads, stores uint64
	for s := range e.LoadSites {
		loads ^= mix64(uint64(s) | 1<<40)
	}
	for s := range e.StoreSites {
		stores ^= mix64(uint64(s) | 1<<41)
	}
	return mix64(h ^ loads*0xbf58476d1ce4e5b9 ^ stores*0x94d049bb133111eb)
}

// OutcomeSig is the observable outcome of one execution: the alias-pair
// coverage bitmap hash and the pool's dirty-word set hash. Two executions
// with equal signatures exercised the same cross-thread PM access pairs and
// left the same words unpersisted — the detector cannot distinguish them.
type OutcomeSig struct {
	Alias uint64
	Dirty uint64
}

// equivClass tracks one schedule-equivalence class.
type equivClass struct {
	runs int
	// lastRunNovel records whether the class's latest execution produced
	// an unseen outcome or a bug; either keeps the class schedulable for
	// at least one more round.
	lastRunNovel bool
}

// EquivClasses is the campaign-global equivalence-class table. Safe for
// concurrent use by fuzzing workers.
type EquivClasses struct {
	mu      sync.Mutex
	classes map[uint64]*equivClass
	seen    map[OutcomeSig]struct{}

	scheduled int
	pruned    int
}

// NewEquivClasses creates an empty table.
func NewEquivClasses() *EquivClasses {
	return &EquivClasses{
		classes: make(map[uint64]*equivClass),
		seen:    make(map[OutcomeSig]struct{}),
	}
}

// ShouldPrune reports whether the interleaving fingerprinted by key can be
// dropped: its class has executed before and its most recent execution
// neither produced an outcome unseen at the time nor found a bug. A key with
// no recorded run — an unseen signature — is never pruned, and one
// productive run earns the class at least one more round.
func (c *EquivClasses) ShouldPrune(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[key]
	prune := ok && cl.runs > 0 && !cl.lastRunNovel
	if prune {
		c.pruned++
	} else {
		c.scheduled++
	}
	return prune
}

// OutcomeNovel folds one execution's outcome signature into the global seen
// set and reports whether it was unseen. The caller ORs the results of a
// round's executions (plus any bug found) into the round's productive flag.
func (c *EquivClasses) OutcomeNovel(out OutcomeSig) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, seen := c.seen[out]
	c.seen[out] = struct{}{}
	return !seen
}

// Record folds one scheduled round of the class fingerprinted by key:
// productive means some execution of the round yielded a globally novel
// outcome or a bug, and earns the class at least one more round.
func (c *EquivClasses) Record(key uint64, productive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.classes[key]
	if !ok {
		cl = &equivClass{}
		c.classes[key] = cl
	}
	cl.runs++
	cl.lastRunNovel = productive
}

// Counts returns how many interleavings were scheduled and how many were
// pruned so far.
func (c *EquivClasses) Counts() (scheduled, pruned int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scheduled, c.pruned
}

// mix64 is a 64-bit finalizer (splitmix64).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
