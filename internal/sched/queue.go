package sched

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// AddrStats accumulates the observed accesses to one PM address across the
// executions of a seed. The runtime records every instrumented load and
// store; the fuzzer folds the records into the priority queue of shared data
// accesses from which sync points are selected (paper §4.2.2).
type AddrStats struct {
	Loads   map[site.ID]int
	Stores  map[site.ID]int
	Threads map[pmem.ThreadID]struct{}
	Total   int
}

// NewAddrStats creates empty per-address statistics.
func NewAddrStats() *AddrStats {
	return &AddrStats{
		Loads:   make(map[site.ID]int),
		Stores:  make(map[site.ID]int),
		Threads: make(map[pmem.ThreadID]struct{}),
	}
}

// Record adds one access.
func (a *AddrStats) Record(t pmem.ThreadID, s site.ID, isStore bool) {
	if isStore {
		a.Stores[s]++
	} else {
		a.Loads[s]++
	}
	a.Threads[t] = struct{}{}
	a.Total++
}

// Shared reports whether the address was accessed by more than one thread
// (the "shared data access" selection principle).
func (a *AddrStats) Shared() bool { return len(a.Threads) > 1 }

// Merge folds other into a.
func (a *AddrStats) Merge(other *AddrStats) {
	for s, n := range other.Loads {
		a.Loads[s] += n
	}
	for s, n := range other.Stores {
		a.Stores[s] += n
	}
	for t := range other.Threads {
		a.Threads[t] = struct{}{}
	}
	a.Total += other.Total
}

// Entry is one priority-queue element: a PM address with the load and store
// instructions that access it. The loads become sync points (cond_wait is
// injected before them); the stores trigger cond_signal.
type Entry struct {
	Addr       pmem.Addr
	LoadSites  map[site.ID]struct{}
	StoreSites map[site.ID]struct{}
	Priority   int
}

// Key identifies the entry for the per-seed skip bookkeeping.
func (e *Entry) Key() pmem.Addr { return e.Addr }

// Describe renders the entry for span attribution: the address with its
// load/store site counts and priority.
func (e *Entry) Describe() string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf("%#x loads=%d stores=%d prio=%d",
		uint64(e.Addr), len(e.LoadSites), len(e.StoreSites), e.Priority)
}

// Queue is the priority queue of shared PM data access instructions grouped
// by address. Entries are ordered by access frequency (hot shared data
// first) and popped at most once per seed. All methods are safe for
// concurrent use: with equivalence pruning a worker keeps popping past
// pruned entries while another may still be reprioritizing, so the cursor
// and the entry order share one mutex.
type Queue struct {
	mu      sync.Mutex
	entries []*Entry
	next    int
}

// BuildQueue constructs a queue from per-address statistics. Only addresses
// matching the paper's three selection principles are included: PM accesses,
// shared across threads, prioritized by access frequency. Entries also need
// at least one load and one store (otherwise no read-after-write interleaving
// exists to force).
func BuildQueue(stats map[pmem.Addr]*AddrStats) *Queue {
	q := &Queue{}
	for addr, st := range stats {
		if !st.Shared() || len(st.Loads) == 0 || len(st.Stores) == 0 {
			continue
		}
		e := &Entry{
			Addr:       addr,
			LoadSites:  make(map[site.ID]struct{}, len(st.Loads)),
			StoreSites: make(map[site.ID]struct{}, len(st.Stores)),
			Priority:   st.Total,
		}
		for s := range st.Loads {
			e.LoadSites[s] = struct{}{}
		}
		for s := range st.Stores {
			e.StoreSites[s] = struct{}{}
		}
		q.entries = append(q.entries, e)
	}
	sort.Slice(q.entries, func(i, j int) bool {
		if q.entries[i].Priority != q.entries[j].Priority {
			return q.entries[i].Priority > q.entries[j].Priority
		}
		return q.entries[i].Addr < q.entries[j].Addr
	})
	return q
}

// Reprioritize adjusts each entry's priority by boost and re-sorts with the
// BuildQueue comparator (priority descending, address ascending). It is a
// no-op once popping has started: re-ordering behind the cursor would make
// entries repeat or vanish.
func (q *Queue) Reprioritize(boost func(*Entry) int) {
	if boost == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next > 0 {
		return
	}
	for _, e := range q.entries {
		e.Priority += boost(e)
	}
	sort.Slice(q.entries, func(i, j int) bool {
		if q.entries[i].Priority != q.entries[j].Priority {
			return q.entries[i].Priority > q.entries[j].Priority
		}
		return q.entries[i].Addr < q.entries[j].Addr
	})
}

// Len returns the number of entries in the queue.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Remaining returns how many entries have not been popped yet.
func (q *Queue) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries) - q.next
}

// Pop returns the next unexplored entry, or nil when the queue is exhausted.
func (q *Queue) Pop() *Entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next >= len(q.entries) {
		return nil
	}
	e := q.entries[q.next]
	q.next++
	return e
}
