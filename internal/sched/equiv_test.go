package sched

import (
	"sync"
	"testing"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

func testStats(n int) map[pmem.Addr]*AddrStats {
	stats := make(map[pmem.Addr]*AddrStats)
	for i := 0; i < n; i++ {
		st := NewAddrStats()
		st.Record(0, site.ID(2*i+1), false)
		st.Record(1, site.ID(2*i+2), true)
		st.Total = n - i // descending priority
		stats[pmem.Addr(i*8)] = st
	}
	return stats
}

// Reprioritize may run from one worker while another is already popping the
// queue (alias-hint boosting vs. a pruning loop that keeps consuming
// entries). The race detector must see one linearization: either the boost
// lands before the first Pop or it is a no-op.
func TestQueueReprioritizeRacesPop(t *testing.T) {
	for round := 0; round < 50; round++ {
		q := BuildQueue(testStats(16))
		var wg sync.WaitGroup
		wg.Add(2)
		popped := make([]*Entry, 0, 16)
		go func() {
			defer wg.Done()
			for {
				e := q.Pop()
				if e == nil {
					break
				}
				popped = append(popped, e)
			}
		}()
		go func() {
			defer wg.Done()
			q.Reprioritize(func(e *Entry) int { return int(e.Addr) })
		}()
		wg.Wait()
		if len(popped) != 16 {
			t.Fatalf("round %d: popped %d entries, want 16 (none lost or repeated)", round, len(popped))
		}
		seen := make(map[pmem.Addr]bool, len(popped))
		for _, e := range popped {
			if seen[e.Addr] {
				t.Fatalf("round %d: entry %d popped twice", round, e.Addr)
			}
			seen[e.Addr] = true
		}
		if q.Remaining() != 0 || q.Len() != 16 {
			t.Fatalf("round %d: Remaining=%d Len=%d after drain", round, q.Remaining(), q.Len())
		}
	}
}

// An interleaving whose signature has never been recorded must never be
// pruned, whatever the table has seen from other classes.
func TestEquivNeverPrunesUnseenSignature(t *testing.T) {
	c := NewEquivClasses()
	// Populate the table with stale classes sharing one boring outcome.
	boring := OutcomeSig{Alias: 1, Dirty: 2}
	for key := uint64(0); key < 100; key++ {
		c.Record(key, c.OutcomeNovel(boring))
		c.Record(key, c.OutcomeNovel(boring)) // repeat round: stale
	}
	for key := uint64(1000); key < 1100; key++ {
		if c.ShouldPrune(key) {
			t.Fatalf("unseen signature %d pruned", key)
		}
	}
}

func TestEquivPruneLifecycle(t *testing.T) {
	c := NewEquivClasses()
	key := uint64(42)
	if c.ShouldPrune(key) {
		t.Fatal("never-run class pruned")
	}
	// First round produced a globally novel outcome: keep exploring.
	c.Record(key, c.OutcomeNovel(OutcomeSig{Alias: 7, Dirty: 7}))
	if c.ShouldPrune(key) {
		t.Fatal("class with novel last outcome pruned")
	}
	// Re-run repeated an already-seen outcome: now prunable.
	c.Record(key, c.OutcomeNovel(OutcomeSig{Alias: 7, Dirty: 7}))
	if !c.ShouldPrune(key) {
		t.Fatal("stale class not pruned")
	}
	// A new outcome resurrects the class.
	c.Record(key, c.OutcomeNovel(OutcomeSig{Alias: 8, Dirty: 8}))
	if c.ShouldPrune(key) {
		t.Fatal("class resurrected by novel outcome still pruned")
	}
	scheduled, pruned := c.Counts()
	if scheduled != 3 || pruned != 1 {
		t.Fatalf("Counts() = (%d, %d), want (3, 1)", scheduled, pruned)
	}
}

// A round that found a bug keeps its class schedulable for the next round
// even when the outcome signature repeats; once the class goes quiet — no
// novel outcome, no bug — it is pruned (the finding is already recorded).
func TestEquivBugRoundKeepsClass(t *testing.T) {
	c := NewEquivClasses()
	key := uint64(7)
	out := OutcomeSig{Alias: 3, Dirty: 4}
	c.OutcomeNovel(out) // outcome already seen globally
	c.Record(key, c.OutcomeNovel(out) || true)
	if c.ShouldPrune(key) {
		t.Fatal("bug-bearing round pruned")
	}
	c.Record(key, c.OutcomeNovel(out) || false)
	if !c.ShouldPrune(key) {
		t.Fatal("quiet class not pruned after its bug was recorded")
	}
}

// EntrySignature must be invariant under site-set iteration order (Go maps
// randomize it) and sensitive to every component it folds.
func TestEntrySignatureComponents(t *testing.T) {
	mk := func() *Entry {
		return &Entry{
			Addr:       64,
			LoadSites:  map[site.ID]struct{}{1: {}, 2: {}, 3: {}},
			StoreSites: map[site.ID]struct{}{9: {}, 10: {}},
		}
	}
	base := EntrySignature(mk(), 0)
	for i := 0; i < 20; i++ {
		if got := EntrySignature(mk(), 0); got != base {
			t.Fatalf("signature varies across identical entries: %x vs %x", got, base)
		}
	}
	if EntrySignature(mk(), 1) == base {
		t.Fatal("skip count not folded into signature")
	}
	e := mk()
	e.Addr = 128
	if EntrySignature(e, 0) == base {
		t.Fatal("address not folded into signature")
	}
	e = mk()
	delete(e.LoadSites, 3)
	if EntrySignature(e, 0) == base {
		t.Fatal("load-site set not folded into signature")
	}
	e = mk()
	e.StoreSites[11] = struct{}{}
	if EntrySignature(e, 0) == base {
		t.Fatal("store-site set not folded into signature")
	}
	// Load sites and store sites must not be interchangeable.
	a := &Entry{Addr: 8, LoadSites: map[site.ID]struct{}{5: {}}, StoreSites: map[site.ID]struct{}{6: {}}}
	b := &Entry{Addr: 8, LoadSites: map[site.ID]struct{}{6: {}}, StoreSites: map[site.ID]struct{}{5: {}}}
	if EntrySignature(a, 0) == EntrySignature(b, 0) {
		t.Fatal("swapping load and store site sets keeps the signature")
	}
}

func TestEquivConcurrentAccess(t *testing.T) {
	c := NewEquivClasses()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := uint64(i % 17)
				c.ShouldPrune(key)
				novel := c.OutcomeNovel(OutcomeSig{Alias: uint64(w), Dirty: uint64(i % 5)})
				c.Record(key, novel || i%31 == 0)
			}
		}(w)
	}
	wg.Wait()
	scheduled, pruned := c.Counts()
	if scheduled+pruned != 800 {
		t.Fatalf("scheduled+pruned = %d, want 800", scheduled+pruned)
	}
}
