package sched

import (
	"math/rand"
	"sync"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// Strategy is the hook interface the instrumentation runtime calls around PM
// accesses. Implementations must be safe for concurrent use: hooks are
// invoked from all worker threads of the program under test.
type Strategy interface {
	// BeginExec resets per-execution state; n is the number of worker
	// threads that will run.
	BeginExec(n int)
	// ThreadStart and ThreadExit bracket one worker thread's execution.
	ThreadStart(t pmem.ThreadID)
	ThreadExit(t pmem.ThreadID)
	// BeforeLoad runs before an instrumented PM load.
	BeforeLoad(t pmem.ThreadID, addr pmem.Addr, s site.ID)
	// BeforeStore runs before an instrumented PM store.
	BeforeStore(t pmem.ThreadID, addr pmem.Addr, s site.ID)
	// AfterStore runs after an instrumented PM store, before any flush of
	// the stored data.
	AfterStore(t pmem.ThreadID, addr pmem.Addr, s site.ID)
	// EndExec finishes the execution.
	EndExec()
}

// None is the no-op strategy: the program runs under the Go scheduler alone.
type None struct{}

// BeginExec implements Strategy.
func (None) BeginExec(int) {}

// ThreadStart implements Strategy.
func (None) ThreadStart(pmem.ThreadID) {}

// ThreadExit implements Strategy.
func (None) ThreadExit(pmem.ThreadID) {}

// BeforeLoad implements Strategy.
func (None) BeforeLoad(pmem.ThreadID, pmem.Addr, site.ID) {}

// BeforeStore implements Strategy.
func (None) BeforeStore(pmem.ThreadID, pmem.Addr, site.ID) {}

// AfterStore implements Strategy.
func (None) AfterStore(pmem.ThreadID, pmem.Addr, site.ID) {}

// EndExec implements Strategy.
func (None) EndExec() {}

// DelayInjector implements the evaluation's Delay Inj baseline (§6.1):
// before each PM access it injects a random delay drawn uniformly from
// [0, MaxDelay). It is PM-oblivious: every access is equally likely to be
// delayed, regardless of persistency state.
type DelayInjector struct {
	// MaxDelay bounds the injected delay. The paper uses 1 ms on real
	// systems; the simulation scales it down by default.
	MaxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewDelayInjector creates a delay injector with the given bound and seed.
func NewDelayInjector(maxDelay time.Duration, seed int64) *DelayInjector {
	if maxDelay <= 0 {
		maxDelay = 200 * time.Microsecond
	}
	return &DelayInjector{MaxDelay: maxDelay, rng: rand.New(rand.NewSource(seed))}
}

func (d *DelayInjector) delay() {
	d.mu.Lock()
	n := time.Duration(d.rng.Int63n(int64(d.MaxDelay)))
	d.mu.Unlock()
	time.Sleep(n)
}

// BeginExec implements Strategy.
func (d *DelayInjector) BeginExec(int) {}

// ThreadStart implements Strategy.
func (d *DelayInjector) ThreadStart(pmem.ThreadID) {}

// ThreadExit implements Strategy.
func (d *DelayInjector) ThreadExit(pmem.ThreadID) {}

// BeforeLoad implements Strategy.
func (d *DelayInjector) BeforeLoad(pmem.ThreadID, pmem.Addr, site.ID) { d.delay() }

// BeforeStore implements Strategy.
func (d *DelayInjector) BeforeStore(pmem.ThreadID, pmem.Addr, site.ID) { d.delay() }

// AfterStore implements Strategy.
func (d *DelayInjector) AfterStore(pmem.ThreadID, pmem.Addr, site.ID) {}

// EndExec implements Strategy.
func (d *DelayInjector) EndExec() {}

var (
	_ Strategy = None{}
	_ Strategy = (*DelayInjector)(nil)
	_ Strategy = (*PMAware)(nil)
)
