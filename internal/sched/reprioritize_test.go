package sched

import (
	"testing"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

func twoEntryStats() map[pmem.Addr]*AddrStats {
	ld, st := site.Named("r-load.go"), site.Named("r-store.go")
	stats := map[pmem.Addr]*AddrStats{}
	hot := NewAddrStats()
	for i := 0; i < 5; i++ {
		hot.Record(1, ld, false)
		hot.Record(2, st, true)
	}
	cold := NewAddrStats()
	cold.Record(1, ld, false)
	cold.Record(2, st, true)
	stats[0xA] = hot
	stats[0xB] = cold
	return stats
}

func TestReprioritize(t *testing.T) {
	q := BuildQueue(twoEntryStats())
	q.Reprioritize(func(e *Entry) int {
		if e.Addr == 0xB {
			return 1000
		}
		return 0
	})
	if e := q.Pop(); e == nil || e.Addr != 0xB {
		t.Fatalf("first = %+v, want boosted 0xB", e)
	}
	if e := q.Pop(); e == nil || e.Addr != 0xA {
		t.Fatalf("second = %+v, want 0xA", e)
	}
}

// Reprioritize after the first Pop must not reorder: entries behind the
// cursor would repeat or vanish.
func TestReprioritizeAfterPopIsNoop(t *testing.T) {
	q := BuildQueue(twoEntryStats())
	if e := q.Pop(); e == nil || e.Addr != 0xA {
		t.Fatalf("first = %+v, want 0xA", e)
	}
	q.Reprioritize(func(e *Entry) int { return 1000 })
	if e := q.Pop(); e == nil || e.Addr != 0xB {
		t.Fatalf("second = %+v, want 0xB", e)
	}
	if e := q.Pop(); e != nil {
		t.Fatalf("queue should be exhausted, got %+v", e)
	}
}
