package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

func testConfig() Config {
	return Config{
		Poll:       5 * time.Microsecond,
		WriterWait: 500 * time.Microsecond,
		MaxWait:    100 * time.Millisecond,
		Seed:       1,
	}
}

func entryFor(addr pmem.Addr, loads, stores []site.ID) *Entry {
	e := &Entry{Addr: addr, LoadSites: map[site.ID]struct{}{}, StoreSites: map[site.ID]struct{}{}}
	for _, s := range loads {
		e.LoadSites[s] = struct{}{}
	}
	for _, s := range stores {
		e.StoreSites[s] = struct{}{}
	}
	return e
}

func TestAddrStatsRecordAndShared(t *testing.T) {
	st := NewAddrStats()
	st.Record(1, 10, false)
	if st.Shared() {
		t.Fatalf("single-thread access must not be shared")
	}
	st.Record(2, 11, true)
	if !st.Shared() || st.Total != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Loads[10] != 1 || st.Stores[11] != 1 {
		t.Fatalf("site counts wrong: %+v", st)
	}
}

func TestAddrStatsMerge(t *testing.T) {
	a, b := NewAddrStats(), NewAddrStats()
	a.Record(1, 10, false)
	b.Record(2, 10, false)
	b.Record(2, 11, true)
	a.Merge(b)
	if a.Total != 3 || a.Loads[10] != 2 || !a.Shared() {
		t.Fatalf("merged = %+v", a)
	}
}

func TestBuildQueueFiltersAndOrders(t *testing.T) {
	stats := map[pmem.Addr]*AddrStats{}
	// Hot shared address with loads and stores.
	hot := NewAddrStats()
	for i := 0; i < 10; i++ {
		hot.Record(1, 1, false)
		hot.Record(2, 2, true)
	}
	stats[100] = hot
	// Cooler shared address.
	cool := NewAddrStats()
	cool.Record(1, 3, false)
	cool.Record(2, 4, true)
	stats[200] = cool
	// Shared but load-only: no read-after-write to force.
	loadOnly := NewAddrStats()
	loadOnly.Record(1, 5, false)
	loadOnly.Record(2, 6, false)
	stats[300] = loadOnly
	// Unshared.
	solo := NewAddrStats()
	solo.Record(1, 7, false)
	solo.Record(1, 8, true)
	stats[400] = solo

	q := BuildQueue(stats)
	if q.Len() != 2 {
		t.Fatalf("queue length = %d, want 2", q.Len())
	}
	first := q.Pop()
	if first.Addr != 100 {
		t.Fatalf("first entry addr = %d, want hottest (100)", first.Addr)
	}
	second := q.Pop()
	if second.Addr != 200 {
		t.Fatalf("second entry addr = %d", second.Addr)
	}
	if q.Pop() != nil {
		t.Fatalf("exhausted queue must return nil")
	}
	if q.Remaining() != 0 {
		t.Fatalf("remaining = %d", q.Remaining())
	}
}

func TestBuildQueueDeterministicTieBreak(t *testing.T) {
	stats := map[pmem.Addr]*AddrStats{}
	for _, addr := range []pmem.Addr{300, 100, 200} {
		st := NewAddrStats()
		st.Record(1, 1, false)
		st.Record(2, 2, true)
		stats[addr] = st
	}
	q := BuildQueue(stats)
	if a := q.Pop().Addr; a != 100 {
		t.Fatalf("tie-break must order by address, got %d", a)
	}
}

func TestNoneStrategyIsNoop(t *testing.T) {
	var s Strategy = None{}
	s.BeginExec(4)
	s.ThreadStart(1)
	s.BeforeLoad(1, 0, 0)
	s.BeforeStore(1, 0, 0)
	s.AfterStore(1, 0, 0)
	s.ThreadExit(1)
	s.EndExec()
}

func TestDelayInjectorBounded(t *testing.T) {
	d := NewDelayInjector(100*time.Microsecond, 42)
	start := time.Now()
	for i := 0; i < 20; i++ {
		d.BeforeLoad(1, 0, 0)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("delays unreasonably long: %v", elapsed)
	}
}

func TestDelayInjectorDefaultBound(t *testing.T) {
	d := NewDelayInjector(0, 1)
	if d.MaxDelay <= 0 {
		t.Fatalf("default MaxDelay must be positive")
	}
}

func TestPMAwareWaitReleasedBySignal(t *testing.T) {
	loadSite, storeSite := site.Named("pw-load"), site.Named("pw-store")
	p := NewPMAware(testConfig(), entryFor(64, []site.ID{loadSite}, []site.ID{storeSite}), 0)
	p.BeginExec(2)
	p.ThreadStart(1)
	p.ThreadStart(2)

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // reader
		defer wg.Done()
		p.BeforeLoad(1, 64, loadSite)
		mu.Lock()
		order = append(order, "read")
		mu.Unlock()
		p.ThreadExit(1)
	}()
	go func() { // writer
		defer wg.Done()
		time.Sleep(200 * time.Microsecond)
		mu.Lock()
		order = append(order, "write")
		mu.Unlock()
		p.AfterStore(2, 64, storeSite)
		p.ThreadExit(2)
	}()
	wg.Wait()
	p.EndExec()

	if len(order) != 2 || order[0] != "write" || order[1] != "read" {
		t.Fatalf("order = %v, want write before read", order)
	}
	out := p.Outcome()
	if !out.Signalled || out.CondWaits != 1 || out.Disabled {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestPMAwareSignalDisablesFutureWaits(t *testing.T) {
	loadSite, storeSite := site.Named("pd-load"), site.Named("pd-store")
	p := NewPMAware(testConfig(), entryFor(64, []site.ID{loadSite}, []site.ID{storeSite}), 0)
	p.BeginExec(1)
	p.ThreadStart(1)
	p.AfterStore(1, 64, storeSite) // signal first (Pitfall-1)
	done := make(chan struct{})
	go func() {
		p.BeforeLoad(1, 64, loadSite) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("cond_wait after signal must not block")
	}
}

func TestPMAwareSkipCount(t *testing.T) {
	loadSite := site.Named("ps-load")
	p := NewPMAware(testConfig(), entryFor(64, []site.ID{loadSite}, []site.ID{site.Named("ps-store")}), 2)
	p.BeginExec(1)
	p.ThreadStart(1)
	done := make(chan struct{})
	go func() {
		p.BeforeLoad(1, 64, loadSite) // skipped (skip 2 -> 1)
		p.BeforeLoad(1, 64, loadSite) // skipped (skip 1 -> 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("skipped cond_waits must not block")
	}
	if got := p.Outcome().CondWaits; got != 0 {
		t.Fatalf("skipped waits must not count, got %d", got)
	}
}

func TestPMAwareAllBlockedElectsPrivileged(t *testing.T) {
	loadSite := site.Named("pp-load")
	cfg := testConfig()
	cfg.MaxWait = 10 * time.Second // privileged election must fire first
	p := NewPMAware(cfg, entryFor(64, []site.ID{loadSite}, []site.ID{site.Named("pp-store")}), 0)
	p.BeginExec(2)
	p.ThreadStart(1)
	p.ThreadStart(2)
	var released atomic.Int32
	var wg sync.WaitGroup
	for _, tid := range []pmem.ThreadID{1, 2} {
		wg.Add(1)
		go func(tid pmem.ThreadID) {
			defer wg.Done()
			p.BeforeLoad(tid, 64, loadSite)
			released.Add(1)
		}(tid)
	}
	// One thread must be elected privileged and released; the other stays
	// blocked until we signal.
	deadline := time.Now().Add(5 * time.Second)
	for released.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if released.Load() == 0 {
		t.Fatalf("no privileged thread was released")
	}
	p.condSignal() // release the rest
	wg.Wait()
	if !p.Outcome().PrivilegedUsed {
		t.Fatalf("outcome must record privileged use")
	}
}

func TestPMAwareBlockedThreadDisablesSyncPoint(t *testing.T) {
	loadSite := site.Named("pb-load")
	cfg := testConfig()
	cfg.MaxWait = time.Millisecond
	p := NewPMAware(cfg, entryFor(64, []site.ID{loadSite}, []site.ID{site.Named("pb-store")}), 0)
	p.BeginExec(2)
	p.ThreadStart(1)
	p.ThreadStart(2) // second thread never waits, so not "all blocked"
	done := make(chan struct{})
	go func() {
		p.BeforeLoad(1, 64, loadSite)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("blocked thread must give up after MaxWait")
	}
	out := p.Outcome()
	if !out.Disabled || out.CondWaits != 1 {
		t.Fatalf("outcome = %+v, want disabled with one wait", out)
	}
	// Once disabled, further waits return immediately.
	start := time.Now()
	p.BeforeLoad(1, 64, loadSite)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("disabled sync point must not wait")
	}
}

func TestPMAwareIgnoresOtherAddressesAndSites(t *testing.T) {
	loadSite := site.Named("pi-load")
	p := NewPMAware(testConfig(), entryFor(64, []site.ID{loadSite}, []site.ID{site.Named("pi-store")}), 0)
	p.BeginExec(1)
	p.ThreadStart(1)
	done := make(chan struct{})
	go func() {
		p.BeforeLoad(1, 128, loadSite)            // wrong address
		p.BeforeLoad(1, 64, site.Named("other"))  // wrong site
		p.AfterStore(1, 64, site.Named("other2")) // wrong store site: no signal
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("non-entry accesses must not block")
	}
	if p.Outcome().Signalled {
		t.Fatalf("non-entry store must not signal")
	}
}

func TestPMAwareNilEntryIsNoop(t *testing.T) {
	p := NewPMAware(testConfig(), nil, 0)
	p.BeginExec(1)
	p.ThreadStart(1)
	p.BeforeLoad(1, 64, 1)
	p.AfterStore(1, 64, 1)
	if p.Outcome().Signalled || p.Outcome().CondWaits != 0 {
		t.Fatalf("nil entry must be inert: %+v", p.Outcome())
	}
}

func TestPMAwareZeroConfigGetsDefaults(t *testing.T) {
	p := NewPMAware(Config{}, nil, 0)
	if p.cfg.Poll <= 0 || p.cfg.MaxWait <= 0 {
		t.Fatalf("zero config must be replaced by defaults: %+v", p.cfg)
	}
}
