// Package sched implements PMRace's interleaving exploration (paper §4.2.2):
// a PM-aware strategy that drives executions towards reading non-persisted
// data by injecting conditional waits before selected load instructions
// ("sync points") and condition signals after the corresponding stores, plus
// the random delay-injection baseline ("Delay Inj" in the evaluation) and a
// priority queue of shared PM data accesses from which sync points are drawn.
package sched
