package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// Config tunes the PM-aware thread scheduling. Durations are scaled for the
// simulation; the algorithm is the one in the paper's Figure 6.
type Config struct {
	// Poll is the sleep between condition checks inside cond_wait (the
	// paper's usleep(100)).
	Poll time.Duration
	// WriterWait is how long cond_signal stalls the writer thread so that
	// reader threads can execute their loads against the still-unflushed
	// store (the paper sets it to the typical total execution time of the
	// original program).
	WriterWait time.Duration
	// MaxWait is the wall-clock bound on one cond_wait after which the
	// waiting thread is considered blocked (Pitfall-3): the sync point is
	// disabled and the wait abandoned. It is a duration rather than a
	// loop count because sleep granularity varies by platform, and a
	// waiter may hold application-level locks — the bound must stay well
	// under the runtime's hang timeout.
	MaxWait time.Duration
	// Seed seeds the privileged-thread selection.
	Seed int64
}

// DefaultConfig returns simulation-scale defaults.
func DefaultConfig() Config {
	return Config{
		Poll:       20 * time.Microsecond,
		WriterWait: 2 * time.Millisecond,
		MaxWait:    4 * time.Millisecond,
		Seed:       1,
	}
}

// Outcome summarizes one execution under the PM-aware strategy, feeding the
// per-seed skip bookkeeping (Pitfall-3): when a sync point was disabled, the
// fuzzer saves an increased initial skip so future campaigns on the same seed
// do not block on the same cond_wait executions.
type Outcome struct {
	// CondWaits is the number of cond_wait executions that entered the
	// waiting path.
	CondWaits int
	// Signalled reports whether any cond_signal fired.
	Signalled bool
	// Disabled reports whether the sync point was disabled because a
	// thread blocked too long.
	Disabled bool
	// PrivilegedUsed reports whether a privileged thread was selected
	// because all threads blocked (Pitfall-2).
	PrivilegedUsed bool
}

type waiterState struct {
	bypass  atomic.Bool
	waiting atomic.Bool
}

// PMAware is the PM-aware interleaving exploration strategy (paper §4.2.2,
// Figure 6). For the selected priority-queue entry it injects cond_wait
// before the entry's load sites (sync points) and cond_signal after the
// entry's store sites, stalling the writer before its flush so readers
// observe non-persisted data. It mitigates the three pitfalls described in
// the paper: cond_wait is a no-op once signalled; if all threads block, a
// randomly selected privileged thread bypasses every wait; if one thread
// blocks too long, the sync point is disabled and the skip count reported in
// the Outcome.
type PMAware struct {
	cfg      Config
	entry    *Entry
	initSkip int

	m        atomic.Int32 // the condition variable of Figure 6
	armed    atomic.Bool  // true only between BeginExec and EndExec
	enabled  atomic.Bool  // sync.is_enabled
	skip     atomic.Int32 // sync.skip
	disabled atomic.Bool
	signal   atomic.Bool
	privUsed atomic.Bool
	waits    atomic.Int32
	waiting  atomic.Int32 // threads currently inside cond_wait

	mu      sync.Mutex
	rng     *rand.Rand
	threads map[pmem.ThreadID]*waiterState
	active  int
}

// NewPMAware creates the strategy for one campaign targeting the given
// priority-queue entry with the given initial skip count (0 for a fresh
// entry).
func NewPMAware(cfg Config, entry *Entry, skip int) *PMAware {
	if cfg.Poll <= 0 {
		cfg = DefaultConfig()
	}
	p := &PMAware{
		cfg:      cfg,
		entry:    entry,
		initSkip: skip,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		threads:  make(map[pmem.ThreadID]*waiterState),
	}
	p.enabled.Store(true)
	p.skip.Store(int32(skip))
	return p
}

// BeginExec implements Strategy. Hooks are inert until BeginExec so that the
// setup/recovery phase (which runs the same instrumented code) cannot trip
// sync points before worker threads exist.
func (p *PMAware) BeginExec(int) {
	p.m.Store(0)
	p.signal.Store(false)
	p.armed.Store(true)
}

// ThreadStart implements Strategy.
func (p *PMAware) ThreadStart(t pmem.ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.threads[t] = &waiterState{}
	p.active++
}

// ThreadExit implements Strategy.
func (p *PMAware) ThreadExit(t pmem.ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.threads[t]; ok {
		delete(p.threads, t)
		p.active--
	}
}

func (p *PMAware) state(t pmem.ThreadID) *waiterState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.threads[t]
}

// BeforeLoad implements Strategy: it injects cond_wait before the entry's
// sync points.
func (p *PMAware) BeforeLoad(t pmem.ThreadID, addr pmem.Addr, s site.ID) {
	if p.entry == nil || !p.armed.Load() || addr != p.entry.Addr {
		return
	}
	if _, ok := p.entry.LoadSites[s]; !ok {
		return
	}
	p.condWait(t)
}

// BeforeStore implements Strategy.
func (p *PMAware) BeforeStore(pmem.ThreadID, pmem.Addr, site.ID) {}

// AfterStore implements Strategy: it fires cond_signal after the entry's
// store sites, before the writer flushes.
func (p *PMAware) AfterStore(t pmem.ThreadID, addr pmem.Addr, s site.ID) {
	if p.entry == nil || !p.armed.Load() || addr != p.entry.Addr {
		return
	}
	if _, ok := p.entry.StoreSites[s]; !ok {
		return
	}
	p.condSignal()
}

// EndExec implements Strategy.
func (p *PMAware) EndExec() { p.armed.Store(false) }

// Description captures the schedule parameters of one PMAware instance for
// forensic bug artifacts: which sync point it targeted and with what skip.
type Description struct {
	Addr        pmem.Addr
	Priority    int
	InitialSkip int
	LoadSites   []site.ID
	StoreSites  []site.ID
}

// Describe returns the strategy's schedule parameters.
func (p *PMAware) Describe() Description {
	d := Description{InitialSkip: p.initSkip}
	if p.entry == nil {
		return d
	}
	d.Addr = p.entry.Addr
	d.Priority = p.entry.Priority
	for s := range p.entry.LoadSites {
		d.LoadSites = append(d.LoadSites, s)
	}
	for s := range p.entry.StoreSites {
		d.StoreSites = append(d.StoreSites, s)
	}
	return d
}

// Outcome returns the campaign summary used for skip bookkeeping.
func (p *PMAware) Outcome() Outcome {
	return Outcome{
		CondWaits:      int(p.waits.Load()),
		Signalled:      p.signal.Load(),
		Disabled:       p.disabled.Load(),
		PrivilegedUsed: p.privUsed.Load(),
	}
}

// condWait is Figure 6's wait: spin until the condition variable is set,
// handling skip counts, privileged bypass and blocked-thread disabling.
func (p *PMAware) condWait(t pmem.ThreadID) {
	st := p.state(t)
	if st == nil || !p.enabled.Load() || st.bypass.Load() {
		return
	}
	// sync.skip > 0: this cond_wait execution is skipped (Pitfall-3
	// bookkeeping from earlier campaigns on the same seed).
	for {
		cur := p.skip.Load()
		if cur == 0 {
			break
		}
		if p.skip.CompareAndSwap(cur, cur-1) {
			return
		}
	}
	p.waits.Add(1)
	p.waiting.Add(1)
	defer p.waiting.Add(-1)
	st.waiting.Store(true)
	defer st.waiting.Store(false)
	deadline := time.Now().Add(p.cfg.MaxWait)
	for p.m.Load() == 0 {
		time.Sleep(p.cfg.Poll)
		if p.allBlocked() {
			// Pitfall-2: every thread is waiting for a writer
			// that does not exist; a random thread becomes
			// privileged and bypasses all waits.
			p.electPrivileged()
		}
		if st.bypass.Load() {
			return
		}
		if time.Now().After(deadline) {
			// Pitfall-3: this thread blocked too long; disable
			// the sync point for the rest of the campaign.
			p.enabled.Store(false)
			p.disabled.Store(true)
			return
		}
		if !p.enabled.Load() {
			return
		}
	}
}

// condSignal is Figure 6's signal: set the condition and stall the writer so
// readers can consume the unflushed store. Two refinements over the paper's
// pseudo-code keep the one-shot useful: the signal only fires while a reader
// is actually waiting (a store nobody observes — e.g. the first write that
// creates the shared object — must not burn the campaign's signal), and only
// the first successful signal stalls the writer (Pitfall-1: once m is set,
// waits are disabled, so further stalls would only starve threads queued on
// the writer's application-level locks).
func (p *PMAware) condSignal() {
	if p.waiting.Load() == 0 {
		return
	}
	if p.m.Swap(1) != 0 {
		return
	}
	p.signal.Store(true)
	time.Sleep(p.cfg.WriterWait)
}

func (p *PMAware) allBlocked() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active == 0 {
		return false
	}
	for _, st := range p.threads {
		if !st.waiting.Load() {
			return false
		}
	}
	return true
}

func (p *PMAware) electPrivileged() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var waiting []*waiterState
	for _, st := range p.threads {
		if st.bypass.Load() {
			return // already have a privileged thread
		}
		if st.waiting.Load() {
			waiting = append(waiting, st)
		}
	}
	if len(waiting) == 0 {
		return
	}
	waiting[p.rng.Intn(len(waiting))].bypass.Store(true)
	p.privUsed.Store(true)
}
