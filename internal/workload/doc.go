// Package workload models the structured inputs PMRace feeds to PM systems:
// sequences of key-value operations distributed across worker threads. PM
// applications are interactive in-memory systems (key-value stores, indexes),
// so inputs are operation sequences rather than raw bytes (paper §4.5); the
// package also provides a memcached-style text encoding so the AFL++-style
// byte-level baseline mutator has something to mutate, and a parser whose
// rejects become the "Error" command class of the paper's Table 4.
package workload
