// Package workload models the inputs PMRace feeds to PM systems.
//
// The primary form is the structured operation vector: sequences of
// key-value operations distributed across worker threads. PM applications
// are interactive in-memory systems (key-value stores, indexes), so inputs
// are operation sequences rather than raw bytes (paper §4.5); the package
// also provides a memcached-style text encoding so the AFL++-style
// byte-level baseline mutator has something to mutate, and a parser whose
// rejects become the "Error" command class of the paper's Table 4.
//
// The second form is the protocol byte-stream seed (ProtoSeed): recorded
// memcached text-protocol traffic, one raw byte stream per client
// connection, played through the internal/wire front-end during execution.
// ProtoGen is its load generator — zipfian key mixes, pipelined bursts,
// connection churn, malformed frames and mid-request crash points. Both
// seed forms share one text encoding (Seed.Encode / Decode dispatches on a
// "#proto" header), so corpus files and artifact bundles replay either kind.
package workload
