package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpKindStringsAndClasses(t *testing.T) {
	cases := []struct {
		kind  OpKind
		verb  string
		class string
	}{
		{OpGet, "get", "Get*"},
		{OpBGet, "bget", "Get*"},
		{OpSet, "set", "Update*"},
		{OpAdd, "add", "Update*"},
		{OpReplace, "replace", "Update*"},
		{OpAppend, "append", "Update*"},
		{OpPrepend, "prepend", "Update*"},
		{OpIncr, "incr", "incr"},
		{OpDecr, "decr", "decr"},
		{OpDelete, "delete", "delete"},
		{OpError, "error", "Error"},
	}
	for _, c := range cases {
		if c.kind.String() != c.verb {
			t.Fatalf("%v verb = %q, want %q", c.kind, c.kind.String(), c.verb)
		}
		if c.kind.Class() != c.class {
			t.Fatalf("%v class = %q, want %q", c.kind, c.kind.Class(), c.class)
		}
	}
	if len(Classes()) != 6 {
		t.Fatalf("classes = %v", Classes())
	}
}

func TestMutates(t *testing.T) {
	if OpGet.Mutates() || OpBGet.Mutates() || OpError.Mutates() {
		t.Fatalf("reads must not mutate")
	}
	for _, k := range []OpKind{OpSet, OpAdd, OpReplace, OpAppend, OpPrepend, OpIncr, OpDecr, OpDelete} {
		if !k.Mutates() {
			t.Fatalf("%v must mutate", k)
		}
	}
}

func TestParseOpValidCommands(t *testing.T) {
	cases := map[string]Op{
		"get key1":         {Kind: OpGet, Key: "key1"},
		"bget key1":        {Kind: OpBGet, Key: "key1"},
		"set key1 v1":      {Kind: OpSet, Key: "key1", Value: "v1"},
		"add key1 v1":      {Kind: OpAdd, Key: "key1", Value: "v1"},
		"replace key1 v1":  {Kind: OpReplace, Key: "key1", Value: "v1"},
		"append key1 v1":   {Kind: OpAppend, Key: "key1", Value: "v1"},
		"prepend key1 v1":  {Kind: OpPrepend, Key: "key1", Value: "v1"},
		"incr counter 5":   {Kind: OpIncr, Key: "counter", Value: "5"},
		"decr counter 2":   {Kind: OpDecr, Key: "counter", Value: "2"},
		"delete key1":      {Kind: OpDelete, Key: "key1"},
		"  set key1 v1   ": {Kind: OpSet, Key: "key1", Value: "v1"},
	}
	for line, want := range cases {
		got := ParseOp(strings.TrimSpace(line))
		if got != want {
			t.Fatalf("ParseOp(%q) = %+v, want %+v", line, got, want)
		}
	}
}

func TestParseOpInvalidCommands(t *testing.T) {
	invalid := []string{
		"",
		"bogus key1",
		"get",
		"get a b",
		"set key1",
		"set key1 v1 extra",
		"incr key1 notanumber",
		"incr key1",
		"set \x01bad v1",
		"delete " + strings.Repeat("k", 100),
	}
	for _, line := range invalid {
		if got := ParseOp(line); got.Kind != OpError {
			t.Fatalf("ParseOp(%q) = %+v, want error", line, got)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := NewGenerator(7, 8, 4)
	s := g.NewSeed(50)
	decoded := Decode(s.Encode(), s.Threads)
	if len(decoded.Ops) != len(s.Ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(decoded.Ops), len(s.Ops))
	}
	for i := range s.Ops {
		got, want := decoded.Ops[i], s.Ops[i]
		if got.Kind != want.Kind || got.Key != want.Key {
			t.Fatalf("op %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestDecodeSkipsBlankLines(t *testing.T) {
	s := Decode("\n\nget key1\n\n\nset key2 v\n", 2)
	if len(s.Ops) != 2 {
		t.Fatalf("ops = %+v", s.Ops)
	}
}

func TestSeedCloneIndependent(t *testing.T) {
	g := NewGenerator(1, 8, 4)
	s := g.NewSeed(5)
	c := s.Clone()
	c.Ops[0].Key = "changed"
	if s.Ops[0].Key == "changed" {
		t.Fatalf("clone must not share backing array")
	}
}

func TestSplitRoundRobin(t *testing.T) {
	s := &Seed{Threads: 3}
	for i := 0; i < 7; i++ {
		s.Ops = append(s.Ops, Op{Kind: OpGet, Key: string(rune('a' + i))})
	}
	parts := s.Split()
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 2 {
		t.Fatalf("lengths = %d %d %d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	if parts[0][0].Key != "a" || parts[1][0].Key != "b" || parts[0][1].Key != "d" {
		t.Fatalf("round-robin order broken: %+v", parts)
	}
}

func TestSplitZeroThreads(t *testing.T) {
	s := &Seed{Ops: []Op{{Kind: OpGet, Key: "k"}}}
	parts := s.Split()
	if len(parts) != 1 || len(parts[0]) != 1 {
		t.Fatalf("zero threads must fall back to one: %+v", parts)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42, 8, 4).NewSeed(20)
	b := NewGenerator(42, 8, 4).NewSeed(20)
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("same seed must generate same ops")
		}
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g := NewGenerator(1, 0, 0)
	if g.KeySpace <= 0 || g.Threads <= 0 {
		t.Fatalf("defaults not applied: %+v", g)
	}
}

func TestPopulationSeedAllInserts(t *testing.T) {
	g := NewGenerator(1, 8, 4)
	s := g.PopulationSeed(100)
	if len(s.Ops) != 100 {
		t.Fatalf("ops = %d", len(s.Ops))
	}
	keys := map[string]bool{}
	for _, op := range s.Ops {
		if op.Kind != OpSet {
			t.Fatalf("population seed must be all inserts, got %v", op.Kind)
		}
		keys[op.Key] = true
	}
	if len(keys) < 50 {
		t.Fatalf("population seed must use many distinct keys, got %d", len(keys))
	}
}

// Property: every generated op encodes to text that parses back to an
// equivalent op — the operation mutator always produces valid commands
// (unlike the AFL++ byte mutator, per Table 4).
func TestGeneratedOpsAlwaysParseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		g := NewGenerator(seed, 8, 4)
		s := g.NewSeed(int(n%64) + 1)
		decoded := Decode(s.Encode(), 4)
		if len(decoded.Ops) != len(s.Ops) {
			return false
		}
		for i := range decoded.Ops {
			if decoded.Ops[i].Kind == OpError {
				return false
			}
			if decoded.Ops[i].Kind != s.Ops[i].Kind || decoded.Ops[i].Key != s.Ops[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split never loses or duplicates operations.
func TestSplitPreservesOpsProperty(t *testing.T) {
	f := func(n uint8, threads uint8) bool {
		g := NewGenerator(int64(n), 8, int(threads%8)+1)
		s := g.NewSeed(int(n))
		total := 0
		for _, part := range s.Split() {
			total += len(part)
		}
		return total == len(s.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
