package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// ProtoGen generates memcached text-protocol byte streams for protocol-mode
// fuzzing: zipfian key mixes (a few hot keys absorb most traffic, maximizing
// shared PM accesses), pipelined request bursts, connection churn, malformed
// frames, and mid-request crash points. It is the protocol-mode counterpart
// of Generator.
type ProtoGen struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	KeySpace int
	Threads  int
}

// NewProtoGen creates a protocol generator with the given RNG seed.
func NewProtoGen(seed int64, keySpace, threads int) *ProtoGen {
	if keySpace <= 0 {
		keySpace = 16
	}
	if threads <= 0 {
		threads = 4
	}
	rng := rand.New(rand.NewSource(seed))
	return &ProtoGen{
		rng:      rng,
		zipf:     rand.NewZipf(rng, 1.3, 1, uint64(keySpace-1)),
		KeySpace: keySpace,
		Threads:  threads,
	}
}

// Key draws a zipfian-distributed key: rank 0 (key000) is by far the
// hottest, matching skewed cache traffic and concentrating racing
// operations on shared items.
func (g *ProtoGen) Key() string { return fmt.Sprintf("key%03d", g.zipf.Uint64()) }

// value returns a payload; about one in six is a multi-line value (>64
// bytes) so log-structured targets exercise multi-cache-line appends.
func (g *ProtoGen) value() string {
	if g.rng.Intn(6) == 0 {
		n := 80 + g.rng.Intn(120)
		return strings.Repeat("x", n-9) + fmt.Sprintf("%09d", g.rng.Intn(1_000_000_000))
	}
	return fmt.Sprintf("val%06d", g.rng.Intn(1_000_000))
}

// Command appends one well-formed protocol command to b and returns the
// extended stream.
func (g *ProtoGen) Command(b []byte) []byte {
	noreply := ""
	if g.rng.Intn(5) == 0 {
		noreply = " noreply"
	}
	switch g.rng.Intn(16) {
	case 0, 1, 2:
		b = append(b, fmt.Sprintf("get %s\r\n", g.Key())...)
	case 3:
		// Multi-key get exercises the batched lookup path.
		b = append(b, fmt.Sprintf("gets %s %s\r\n", g.Key(), g.Key())...)
	case 4, 5, 6, 7:
		v := g.value()
		b = append(b, fmt.Sprintf("set %s 0 0 %d%s\r\n%s\r\n", g.Key(), len(v), noreply, v)...)
	case 8:
		v := g.value()
		b = append(b, fmt.Sprintf("add %s 0 0 %d%s\r\n%s\r\n", g.Key(), len(v), noreply, v)...)
	case 9:
		v := g.value()
		b = append(b, fmt.Sprintf("replace %s 0 0 %d%s\r\n%s\r\n", g.Key(), len(v), noreply, v)...)
	case 10:
		b = append(b, fmt.Sprintf("append %s 0 0 1%s\r\nx\r\n", g.Key(), noreply)...)
	case 11:
		b = append(b, fmt.Sprintf("prepend %s 0 0 1%s\r\ny\r\n", g.Key(), noreply)...)
	case 12:
		b = append(b, fmt.Sprintf("incr %s %d%s\r\n", g.Key(), 1+g.rng.Intn(9), noreply)...)
	case 13:
		b = append(b, fmt.Sprintf("decr %s %d%s\r\n", g.Key(), 1+g.rng.Intn(9), noreply)...)
	case 14:
		b = append(b, fmt.Sprintf("delete %s%s\r\n", g.Key(), noreply)...)
	default:
		if g.rng.Intn(8) == 0 {
			// Rare: flush_all wipes the store and, on log targets,
			// drives compaction concurrently with appends.
			b = append(b, "flush_all\r\n"...)
		} else {
			b = append(b, fmt.Sprintf("get %s\r\n", g.Key())...)
		}
	}
	return b
}

// Malformed appends one malformed frame: the parser must answer an RFC-style
// error and resynchronize without panicking or wedging the connection.
func (g *ProtoGen) Malformed(b []byte) []byte {
	switch g.rng.Intn(8) {
	case 0:
		b = append(b, "bogus command\r\n"...)
	case 1:
		// Declared length longer than the data chunk.
		b = append(b, fmt.Sprintf("set %s 0 0 64\r\nshort\r\n", g.Key())...)
	case 2:
		// Non-numeric byte count.
		b = append(b, fmt.Sprintf("set %s 0 0 nine\r\n", g.Key())...)
	case 3:
		// Missing arguments.
		b = append(b, "set\r\n"...)
	case 4:
		// Control bytes where a key belongs.
		b = append(b, "get \x01\x02\x03\r\n"...)
	case 5:
		// Bare LF instead of CRLF after the data block.
		b = append(b, fmt.Sprintf("set %s 0 0 3\r\nabc\n", g.Key())...)
	case 6:
		// Absurd declared length; the parser must refuse, not allocate.
		b = append(b, fmt.Sprintf("set %s 0 0 99999999\r\n", g.Key())...)
	default:
		// Binary junk mid-stream.
		junk := make([]byte, 4+g.rng.Intn(12))
		g.rng.Read(junk)
		b = append(b, junk...)
		b = append(b, '\r', '\n')
	}
	return b
}

// Stream builds one connection's byte stream of n commands with the given
// malformed-frame ratio (per mille).
func (g *ProtoGen) Stream(n, malformedPerMille int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		if g.rng.Intn(1000) < malformedPerMille {
			b = g.Malformed(b)
		} else {
			b = g.Command(b)
		}
	}
	if g.rng.Intn(3) == 0 {
		b = append(b, "quit\r\n"...)
	}
	return b
}

// MixSeed is the default protocol seed: streams connections of pipelined
// zipfian traffic (~4% malformed frames) plus up to two mid-request crash
// points.
func (g *ProtoGen) MixSeed(streams, cmdsPerStream int) *Seed {
	s := &Seed{Threads: g.Threads, Proto: &ProtoSeed{}}
	for i := 0; i < streams; i++ {
		s.Proto.Streams = append(s.Proto.Streams, g.Stream(cmdsPerStream, 40))
	}
	for i := g.rng.Intn(3); i > 0; i-- {
		s.Proto.Crash = append(s.Proto.Crash, CrashPoint{
			Stream: g.rng.Intn(streams),
			Cmd:    g.rng.Intn(cmdsPerStream),
		})
	}
	return s
}

// ChurnSeed models connection churn: many short-lived connections (1–4
// commands, often ending in quit) multiplexed over few driver threads, so
// each thread serves a run of distinct connections back to back.
func (g *ProtoGen) ChurnSeed(conns int) *Seed {
	s := &Seed{Threads: g.Threads, Proto: &ProtoSeed{}}
	for i := 0; i < conns; i++ {
		b := g.Stream(1+g.rng.Intn(4), 20)
		if g.rng.Intn(2) == 0 {
			b = append(b, "quit\r\n"...)
		}
		s.Proto.Streams = append(s.Proto.Streams, b)
	}
	return s
}

// HotSeed concentrates long pipelined update bursts on the hottest keys —
// the protocol analogue of Generator.HotKeySeed, arming read-after-write
// sync points on shared items.
func (g *ProtoGen) HotSeed(streams, cmdsPerStream int) *Seed {
	s := &Seed{Threads: g.Threads, Proto: &ProtoSeed{}}
	for i := 0; i < streams; i++ {
		var b []byte
		for j := 0; j < cmdsPerStream; j++ {
			key := fmt.Sprintf("key%03d", g.rng.Intn(3))
			switch g.rng.Intn(8) {
			case 0, 1, 2:
				v := g.value()
				b = append(b, fmt.Sprintf("set %s 0 0 %d\r\n%s\r\n", key, len(v), v)...)
			case 3, 4:
				b = append(b, fmt.Sprintf("append %s 0 0 1\r\nx\r\n", key)...)
			case 5:
				b = append(b, fmt.Sprintf("prepend %s 0 0 1\r\ny\r\n", key)...)
			case 6:
				v := g.value()
				b = append(b, fmt.Sprintf("replace %s 0 0 %d\r\n%s\r\n", key, len(v), v)...)
			default:
				b = append(b, fmt.Sprintf("get %s\r\n", key)...)
			}
		}
		s.Proto.Streams = append(s.Proto.Streams, b)
	}
	s.Proto.Crash = append(s.Proto.Crash, CrashPoint{Stream: 0, Cmd: cmdsPerStream / 2})
	return s
}

// Rand exposes the generator's RNG for the protocol mutator.
func (g *ProtoGen) Rand() *rand.Rand { return g.rng }
