package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// OpKind enumerates the operation types of the evaluated systems' driver
// interfaces.
type OpKind int

const (
	// OpGet looks a key up.
	OpGet OpKind = iota
	// OpBGet is memcached's bget (batched get); same class as get.
	OpBGet
	// OpSet inserts or updates a key.
	OpSet
	// OpAdd inserts only if absent.
	OpAdd
	// OpReplace updates only if present.
	OpReplace
	// OpAppend appends to an existing value.
	OpAppend
	// OpPrepend prepends to an existing value.
	OpPrepend
	// OpIncr increments a numeric value.
	OpIncr
	// OpDecr decrements a numeric value.
	OpDecr
	// OpDelete removes a key.
	OpDelete
	// OpFlushAll drops (or, for log-structured targets, compacts away)
	// every stored item — memcached's flush_all. Only the protocol
	// generator emits it; the synthetic generator never does, because a
	// store wipe destroys the shared-key pressure the fuzzer relies on.
	OpFlushAll
	// OpError is an unparseable command (only produced by Decode).
	OpError
)

var opNames = map[OpKind]string{
	OpGet: "get", OpBGet: "bget", OpSet: "set", OpAdd: "add",
	OpReplace: "replace", OpAppend: "append", OpPrepend: "prepend",
	OpIncr: "incr", OpDecr: "decr", OpDelete: "delete",
	OpFlushAll: "flush_all", OpError: "error",
}

// String returns the protocol verb.
func (k OpKind) String() string {
	if n, ok := opNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Class returns the paper's Table 4 command class for the kind: "Get*",
// "Update*", "incr", "decr", "delete" or "Error".
func (k OpKind) Class() string {
	switch k {
	case OpGet, OpBGet:
		return "Get*"
	case OpSet, OpAdd, OpReplace, OpAppend, OpPrepend:
		return "Update*"
	case OpIncr:
		return "incr"
	case OpDecr:
		return "decr"
	case OpDelete, OpFlushAll:
		return "delete"
	default:
		return "Error"
	}
}

// Classes lists the Table 4 command classes in presentation order.
func Classes() []string {
	return []string{"Get*", "Update*", "incr", "decr", "delete", "Error"}
}

// Mutates reports whether the operation writes to the store.
func (k OpKind) Mutates() bool {
	switch k {
	case OpSet, OpAdd, OpReplace, OpAppend, OpPrepend, OpIncr, OpDecr, OpDelete, OpFlushAll:
		return true
	}
	return false
}

// Op is one key-value operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value string
	// Raw preserves the original text of an unparseable command.
	Raw string
}

// String renders the op in the text protocol.
func (o Op) String() string {
	switch o.Kind {
	case OpFlushAll:
		return o.Kind.String()
	case OpGet, OpBGet, OpDelete:
		return fmt.Sprintf("%s %s", o.Kind, o.Key)
	case OpIncr, OpDecr:
		v := o.Value
		if v == "" {
			v = "1"
		}
		return fmt.Sprintf("%s %s %s", o.Kind, o.Key, v)
	case OpError:
		return o.Raw
	default:
		return fmt.Sprintf("%s %s %s", o.Kind, o.Key, o.Value)
	}
}

// Seed is one fuzzer input: an operation sequence distributed over a number
// of worker threads, or — when Proto is set — recorded protocol byte streams
// played through the wire front-end (one stream per connection).
type Seed struct {
	Ops     []Op
	Threads int
	// Proto, when non-nil, makes this a protocol-traffic seed; Ops is
	// ignored by the executor in that case.
	Proto *ProtoSeed
}

// Clone deep-copies the seed.
func (s *Seed) Clone() *Seed {
	c := &Seed{Ops: append([]Op(nil), s.Ops...), Threads: s.Threads}
	if s.Proto != nil {
		c.Proto = s.Proto.clone()
	}
	return c
}

// Empty reports whether the seed carries no work at all.
func (s *Seed) Empty() bool {
	if s == nil {
		return true
	}
	if s.Proto != nil {
		return len(s.Proto.Streams) == 0
	}
	return len(s.Ops) == 0
}

// Size is the seed's workload length for reporting: operations for op-vector
// seeds, framed commands for protocol seeds.
func (s *Seed) Size() int {
	if s.Proto != nil {
		return s.Proto.Commands()
	}
	return len(s.Ops)
}

// Split distributes the operations round-robin over the seed's threads,
// preserving per-thread order.
func (s *Seed) Split() [][]Op {
	n := s.Threads
	if n < 1 {
		n = 1
	}
	out := make([][]Op, n)
	for i, op := range s.Ops {
		out[i%n] = append(out[i%n], op)
	}
	return out
}

// Encode renders the seed as text: one command per line for op-vector seeds,
// the #proto quoted-stream format for protocol seeds. Both forms round-trip
// through Decode, corpus .seed files and artifact bundles.
func (s *Seed) Encode() string {
	if s.Proto != nil {
		return s.encodeProto()
	}
	var b strings.Builder
	for _, op := range s.Ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Decode parses seed text. A leading "#proto" header selects the protocol
// byte-stream format; otherwise each line is one command, and unparseable
// lines become OpError entries (counted in the "Error" class of Table 4).
func Decode(text string, threads int) *Seed {
	if strings.HasPrefix(strings.TrimSpace(text), protoHeader) {
		return decodeProto(text, threads)
	}
	s := &Seed{Threads: threads}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s.Ops = append(s.Ops, ParseOp(line))
	}
	return s
}

// ParseOp parses one command line.
func ParseOp(line string) Op {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Op{Kind: OpError, Raw: line}
	}
	kind, ok := verbKind(fields[0])
	if !ok {
		return Op{Kind: OpError, Raw: line}
	}
	switch kind {
	case OpFlushAll:
		if len(fields) != 1 {
			return Op{Kind: OpError, Raw: line}
		}
		return Op{Kind: OpFlushAll}
	case OpGet, OpBGet, OpDelete:
		if len(fields) != 2 || !validKey(fields[1]) {
			return Op{Kind: OpError, Raw: line}
		}
		return Op{Kind: kind, Key: fields[1]}
	case OpIncr, OpDecr:
		if len(fields) != 3 || !validKey(fields[1]) {
			return Op{Kind: OpError, Raw: line}
		}
		if _, err := strconv.ParseUint(fields[2], 10, 64); err != nil {
			return Op{Kind: OpError, Raw: line}
		}
		return Op{Kind: kind, Key: fields[1], Value: fields[2]}
	default:
		if len(fields) != 3 || !validKey(fields[1]) || !validValue(fields[2]) {
			return Op{Kind: OpError, Raw: line}
		}
		return Op{Kind: kind, Key: fields[1], Value: fields[2]}
	}
}

func verbKind(verb string) (OpKind, bool) {
	for k, n := range opNames {
		if k != OpError && n == verb {
			return k, true
		}
	}
	return OpError, false
}

func validKey(k string) bool {
	if len(k) == 0 || len(k) > 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

func validValue(v string) bool {
	if len(v) == 0 || len(v) > 1024 {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c < ' ' || c > '~' {
			return false
		}
	}
	return true
}

// Generator produces random seeds over a bounded key space. A small key
// space deliberately concentrates operations on shared keys, increasing
// shared PM accesses and PM alias pairs (paper §4.5: "PMRace prioritizes
// similar keys as operation parameters").
type Generator struct {
	rng      *rand.Rand
	KeySpace int
	Threads  int
}

// NewGenerator creates a generator with the given seed.
func NewGenerator(seed int64, keySpace, threads int) *Generator {
	if keySpace <= 0 {
		keySpace = 16
	}
	if threads <= 0 {
		threads = 4
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), KeySpace: keySpace, Threads: threads}
}

var genKinds = []OpKind{
	OpGet, OpBGet, OpSet, OpSet, OpSet, OpAdd, OpReplace,
	OpAppend, OpPrepend, OpIncr, OpDecr, OpDelete,
}

// Key returns a random key from the key space.
func (g *Generator) Key() string { return fmt.Sprintf("key%03d", g.rng.Intn(g.KeySpace)) }

// Value returns a random printable value.
func (g *Generator) Value() string { return fmt.Sprintf("val%06d", g.rng.Intn(1_000_000)) }

// Op returns one random operation.
func (g *Generator) Op() Op {
	kind := genKinds[g.rng.Intn(len(genKinds))]
	op := Op{Kind: kind, Key: g.Key()}
	switch kind {
	case OpIncr, OpDecr:
		op.Value = strconv.Itoa(1 + g.rng.Intn(9))
	case OpSet, OpAdd, OpReplace, OpAppend, OpPrepend:
		op.Value = g.Value()
	}
	return op
}

// NewSeed returns a random seed with n operations.
func (g *Generator) NewSeed(n int) *Seed {
	s := &Seed{Threads: g.Threads}
	for i := 0; i < n; i++ {
		s.Ops = append(s.Ops, g.Op())
	}
	return s
}

// PopulationSeed returns a seed consisting of insertions with distinct keys,
// the "load phase" fallback that triggers resizing in PM key-value stores
// and indexes (paper §4.5).
func (g *Generator) PopulationSeed(n int) *Seed {
	s := &Seed{Threads: g.Threads}
	for i := 0; i < n; i++ {
		s.Ops = append(s.Ops, Op{Kind: OpSet, Key: fmt.Sprintf("key%03d", i%max(g.KeySpace*4, n)), Value: g.Value()})
	}
	return s
}

// HotKeySeed returns a seed whose operations concentrate on very few keys
// with a read-modify-write heavy mix (sets, appends, gets). Similar keys
// maximize shared PM accesses and PM alias pairs (paper §4.5), and chains of
// updates interleaved with reads are what arm the read-after-write sync
// points of the PM-aware exploration.
func (g *Generator) HotKeySeed(n int) *Seed {
	s := &Seed{Threads: g.Threads}
	hot := 3
	if g.KeySpace < hot {
		hot = g.KeySpace
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", g.rng.Intn(hot))
		var op Op
		switch g.rng.Intn(8) {
		case 0, 1, 2:
			op = Op{Kind: OpSet, Key: key, Value: g.Value()}
		case 3, 4:
			op = Op{Kind: OpAppend, Key: key, Value: "x"}
		case 5:
			op = Op{Kind: OpPrepend, Key: key, Value: "y"}
		case 6:
			op = Op{Kind: OpReplace, Key: key, Value: g.Value()}
		default:
			op = Op{Kind: OpGet, Key: key}
		}
		s.Ops = append(s.Ops, op)
	}
	return s
}

// Rand exposes the generator's RNG for the mutator.
func (g *Generator) Rand() *rand.Rand { return g.rng }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
