package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ProtoSeed is a protocol-traffic fuzzer input: instead of an abstract
// operation vector, the seed is a set of recorded client byte streams — one
// per connection — fed through the memcached text-protocol front-end
// (internal/wire) during execution. Streams may contain pipelined requests,
// malformed frames and binary junk; the parser is expected to survive all of
// it. Crash points mark commands where the executor captures an adversarial
// crash image between parse and PM commit and later replays it through the
// target's recovery code.
type ProtoSeed struct {
	// Streams holds the raw client bytes of each connection.
	Streams [][]byte
	// Crash lists mid-request crash points.
	Crash []CrashPoint
}

// CrashPoint names one command in one stream. The executor snapshots the PM
// pool after the command has been parsed but before its first PM store — the
// "between parse and commit" window where a real server would lose an
// acknowledged-in-flight request.
type CrashPoint struct {
	// Stream indexes ProtoSeed.Streams.
	Stream int
	// Cmd is the 0-based command ordinal within the stream.
	Cmd int
}

// protoHeader starts the text encoding of a protocol seed. Decode dispatches
// on it, so protocol seeds round-trip through the same corpus files and
// artifact bundles as operation-vector seeds.
const protoHeader = "#proto v1"

// NewProtoSeed wraps raw connection streams in a seed.
func NewProtoSeed(threads int, streams ...[]byte) *Seed {
	return &Seed{Threads: threads, Proto: &ProtoSeed{Streams: streams}}
}

// clone deep-copies the proto payload.
func (p *ProtoSeed) clone() *ProtoSeed {
	c := &ProtoSeed{
		Streams: make([][]byte, len(p.Streams)),
		Crash:   append([]CrashPoint(nil), p.Crash...),
	}
	for i, s := range p.Streams {
		c.Streams[i] = append([]byte(nil), s...)
	}
	return c
}

// Commands counts the newline-terminated frames across all streams — a cheap
// upper bound on the number of protocol commands, used for reporting.
func (p *ProtoSeed) Commands() int {
	n := 0
	for _, s := range p.Streams {
		for _, b := range s {
			if b == '\n' {
				n++
			}
		}
	}
	return n
}

// encodeProto renders the seed in the #proto text format: a header line, one
// quoted line per stream, and one line per crash point. strconv.Quote makes
// arbitrary bytes (CRLF framing, fuzz junk) safe for line-oriented corpus
// files and JSON-embedded artifact seeds.
func (s *Seed) encodeProto() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s threads=%d\n", protoHeader, s.Threads)
	for _, stream := range s.Proto.Streams {
		fmt.Fprintf(&b, "#stream %s\n", strconv.Quote(string(stream)))
	}
	for _, cp := range s.Proto.Crash {
		fmt.Fprintf(&b, "#crash %d %d\n", cp.Stream, cp.Cmd)
	}
	return b.String()
}

// decodeProto parses the #proto text format. Unparseable stream or crash
// lines are dropped rather than failing the whole seed, mirroring Decode's
// tolerance for corrupt corpus entries.
func decodeProto(text string, threads int) *Seed {
	s := &Seed{Threads: threads, Proto: &ProtoSeed{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, protoHeader):
			if i := strings.Index(line, "threads="); i >= 0 {
				if n, err := strconv.Atoi(strings.TrimSpace(line[i+len("threads="):])); err == nil && n > 0 && n <= 64 {
					s.Threads = n
				}
			}
		case strings.HasPrefix(line, "#stream "):
			q, err := strconv.Unquote(strings.TrimSpace(line[len("#stream "):]))
			if err != nil {
				continue
			}
			s.Proto.Streams = append(s.Proto.Streams, []byte(q))
		case strings.HasPrefix(line, "#crash "):
			fields := strings.Fields(line[len("#crash "):])
			if len(fields) != 2 {
				continue
			}
			stream, err1 := strconv.Atoi(fields[0])
			cmd, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || stream < 0 || cmd < 0 {
				continue
			}
			s.Proto.Crash = append(s.Proto.Crash, CrashPoint{Stream: stream, Cmd: cmd})
		}
	}
	// Crash points referencing dropped streams are meaningless; prune them.
	kept := s.Proto.Crash[:0]
	for _, cp := range s.Proto.Crash {
		if cp.Stream < len(s.Proto.Streams) {
			kept = append(kept, cp)
		}
	}
	s.Proto.Crash = kept
	return s
}
