package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlushAllOp(t *testing.T) {
	op := ParseOp("flush_all")
	if op.Kind != OpFlushAll {
		t.Fatalf("ParseOp(flush_all) = %v", op.Kind)
	}
	if op.String() != "flush_all" {
		t.Fatalf("String() = %q", op.String())
	}
	if !OpFlushAll.Mutates() {
		t.Fatal("flush_all should mutate")
	}
	if OpFlushAll.Class() != "delete" {
		t.Fatalf("Class() = %q", OpFlushAll.Class())
	}
	if got := ParseOp("flush_all 0 noreply"); got.Kind != OpError {
		t.Fatalf("flush_all with args should be OpError, got %v", got.Kind)
	}
	// Round-trip through the text encoding.
	s := &Seed{Ops: []Op{{Kind: OpFlushAll}}, Threads: 2}
	back := Decode(s.Encode(), 2)
	if len(back.Ops) != 1 || back.Ops[0].Kind != OpFlushAll {
		t.Fatalf("round-trip = %+v", back.Ops)
	}
}

func TestProtoSeedRoundTrip(t *testing.T) {
	s := &Seed{
		Threads: 3,
		Proto: &ProtoSeed{
			Streams: [][]byte{
				[]byte("set key000 0 0 3\r\nabc\r\nget key000\r\n"),
				{0x00, 0xff, '\r', '\n', 'g', 'e', 't'}, // binary junk survives
				[]byte("quit\r\n"),
			},
			Crash: []CrashPoint{{Stream: 0, Cmd: 1}, {Stream: 2, Cmd: 0}},
		},
	}
	text := s.Encode()
	if !strings.HasPrefix(text, "#proto v1") {
		t.Fatalf("encoding missing header: %q", text)
	}
	back := Decode(text, 1)
	if back.Proto == nil {
		t.Fatal("decoded seed lost proto payload")
	}
	if back.Threads != 3 {
		t.Fatalf("threads = %d, want 3 (from header)", back.Threads)
	}
	if len(back.Proto.Streams) != 3 {
		t.Fatalf("streams = %d", len(back.Proto.Streams))
	}
	for i := range s.Proto.Streams {
		if !bytes.Equal(back.Proto.Streams[i], s.Proto.Streams[i]) {
			t.Fatalf("stream %d mismatch: %q vs %q", i, back.Proto.Streams[i], s.Proto.Streams[i])
		}
	}
	if len(back.Proto.Crash) != 2 || back.Proto.Crash[0] != (CrashPoint{0, 1}) {
		t.Fatalf("crash points = %+v", back.Proto.Crash)
	}
	// Re-encoding is stable.
	if again := back.Encode(); again != text {
		t.Fatalf("re-encode drifted:\n%q\n%q", text, again)
	}
}

func TestProtoDecodeTolerance(t *testing.T) {
	text := "#proto v1 threads=2\n" +
		"#stream \"get key000\\r\\n\"\n" +
		"#stream not-a-quoted-string\n" + // dropped
		"#crash 0 1\n" +
		"#crash 9 0\n" + // references a missing stream: pruned
		"#crash nope\n" // dropped
	s := Decode(text, 4)
	if s.Proto == nil || len(s.Proto.Streams) != 1 {
		t.Fatalf("streams = %+v", s.Proto)
	}
	if len(s.Proto.Crash) != 1 || s.Proto.Crash[0] != (CrashPoint{0, 1}) {
		t.Fatalf("crash = %+v", s.Proto.Crash)
	}
}

func TestProtoSeedCloneAndHelpers(t *testing.T) {
	s := NewProtoSeed(2, []byte("get a\r\nget b\r\n"))
	s.Proto.Crash = []CrashPoint{{0, 0}}
	c := s.Clone()
	c.Proto.Streams[0][0] = 'X'
	c.Proto.Crash[0].Cmd = 9
	if s.Proto.Streams[0][0] != 'g' || s.Proto.Crash[0].Cmd != 0 {
		t.Fatal("Clone did not deep-copy proto payload")
	}
	if s.Empty() {
		t.Fatal("seed with streams should not be Empty")
	}
	if (&Seed{Proto: &ProtoSeed{}}).Empty() != true {
		t.Fatal("proto seed without streams should be Empty")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2 framed commands", s.Size())
	}
	if (&Seed{Ops: []Op{{Kind: OpGet, Key: "k"}}}).Empty() {
		t.Fatal("op seed should not be Empty")
	}
}

func TestProtoGen(t *testing.T) {
	g := NewProtoGen(42, 16, 4)
	seed := g.MixSeed(8, 12)
	if len(seed.Proto.Streams) != 8 {
		t.Fatalf("streams = %d", len(seed.Proto.Streams))
	}
	for i, st := range seed.Proto.Streams {
		if len(st) == 0 {
			t.Fatalf("stream %d empty", i)
		}
	}
	for _, cp := range seed.Proto.Crash {
		if cp.Stream < 0 || cp.Stream >= 8 || cp.Cmd < 0 || cp.Cmd >= 12 {
			t.Fatalf("crash point out of range: %+v", cp)
		}
	}
	// Deterministic for a fixed RNG seed.
	again := NewProtoGen(42, 16, 4).MixSeed(8, 12)
	if seed.Encode() != again.Encode() {
		t.Fatal("MixSeed not deterministic for fixed seed")
	}
	// Round-trips through the text encoding.
	back := Decode(seed.Encode(), 4)
	if back.Proto == nil || len(back.Proto.Streams) != 8 {
		t.Fatal("generated seed does not round-trip")
	}
	if churn := g.ChurnSeed(10); len(churn.Proto.Streams) != 10 {
		t.Fatalf("churn streams = %d", len(churn.Proto.Streams))
	}
	if hot := g.HotSeed(4, 10); len(hot.Proto.Crash) == 0 {
		t.Fatal("hot seed should carry a crash point")
	}
}
