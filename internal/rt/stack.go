package rt

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
)

// captureStack returns the current call stack as "file.go:line Function"
// frames, skipping runtime-internal frames. Detected inconsistencies carry
// these stacks into bug reports (paper §4.1 step 6) and the whitelist matches
// against them (§4.4).
func captureStack() []string {
	var pcs [32]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	var out []string
	for {
		frame, more := frames.Next()
		if frame.Function != "" && !strings.Contains(frame.Function, "internal/rt.") {
			fn := frame.Function
			if i := strings.LastIndexByte(fn, '/'); i >= 0 {
				fn = fn[i+1:]
			}
			out = append(out, fmt.Sprintf("%s:%d %s", filepath.Base(frame.File), frame.Line, fn))
		}
		if !more || len(out) >= 16 {
			break
		}
	}
	return out
}
