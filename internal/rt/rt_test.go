package rt

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func newEnv(t *testing.T, cfg Config) *Env {
	t.Helper()
	return NewEnv(pmem.New(4096), cfg)
}

func TestLoadCleanWordHasNoLabel(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 42, taint.None, taint.None)
	t1.Persist(64, 8)
	val, lab := t1.Load64(64)
	if val != 42 || lab != taint.None {
		t.Fatalf("val=%d lab=%d, want 42 with no taint", val, lab)
	}
	if len(e.Detector().Candidates()) != 0 {
		t.Fatalf("clean read must not create candidates")
	}
}

func TestDirtyReadCreatesInterCandidate(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 42, taint.None, taint.None) // not flushed
	val, lab := t2.Load64(64)
	if val != 42 {
		t.Fatalf("val = %d", val)
	}
	if lab == taint.None {
		t.Fatalf("dirty cross-thread read must be tainted")
	}
	cands := e.Detector().Candidates()
	if len(cands) != 1 || !cands[0].Inter() {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestDirtyReadSameThreadIsIntraCandidate(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	_, lab := t1.Load64(64)
	if lab == taint.None {
		t.Fatalf("intra dirty read must be tainted")
	}
	inter, intra := e.Detector().CandidateCounts()
	if inter != 0 || intra != 1 {
		t.Fatalf("counts = %d inter %d intra", inter, intra)
	}
}

// TestFigure1ValueFlow reproduces the paper's Figure 1: thread-1 writes x
// without flushing; thread-2 reads x and durably writes y based on it.
func TestFigure1ValueFlow(t *testing.T) {
	var detected []*core.Inconsistency
	e := newEnv(t, Config{
		OnInconsistency: func(_ *Env, in *core.Inconsistency) { detected = append(detected, in) },
	})
	t1, t2 := e.Spawn(), e.Spawn()

	const x, y = 64, 512
	t1.Store64(x, 0xA, taint.None, taint.None) // store A to x, no flush yet
	v, lab := t2.Load64(x)                     // thread-2 reads non-persisted A
	t2.Store64(y, v, lab, taint.None)          // writes y based on A
	t2.Persist(y, 8)                           // y durable while x is not

	if len(detected) != 1 {
		t.Fatalf("detected %d inconsistencies, want 1", len(detected))
	}
	in := detected[0]
	if in.Kind != core.KindInter || in.Flow != core.FlowValue {
		t.Fatalf("kind=%v flow=%v", in.Kind, in.Flow)
	}
	if in.SideEffect.Off != y || in.DirtyRange.Off != x {
		t.Fatalf("side effect %+v dirty %+v", in.SideEffect, in.DirtyRange)
	}
	if len(in.Stack) == 0 {
		t.Fatalf("inconsistency must carry a stack trace")
	}
}

// TestPCLHTAddressFlow reproduces the address-flow shape of the P-CLHT bug:
// thread-2 reads an unflushed table pointer and inserts (NT store) at an
// address derived from it.
func TestPCLHTAddressFlow(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()

	const tablePtr = 0                                 // holds offset of current table
	t1.Store64(tablePtr, 1024, taint.None, taint.None) // swap to new table, unflushed

	ptr, lab := t2.Load64(tablePtr)
	t2.NTStore64(ptr+16, 0xBEEF, taint.None, lab) // address derived from dirty pointer

	ins := e.Detector().Inconsistencies()
	if len(ins) != 1 || ins[0].Flow != core.FlowAddress || ins[0].Kind != core.KindInter {
		t.Fatalf("inconsistencies = %+v", ins)
	}
}

func TestPersistedDependencyIsNotInconsistency(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64) // candidate: dirty read
	t1.Persist(64, 8)       // but writer persists before the side effect
	t2.Store64(512, v, lab, taint.None)
	if got := len(e.Detector().Inconsistencies()); got != 0 {
		t.Fatalf("persisted dependency must not confirm, got %d", got)
	}
	if got := len(e.Detector().Candidates()); got != 1 {
		t.Fatalf("the candidate must still be recorded, got %d", got)
	}
}

func TestShadowLabelPropagatesAcrossStores(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2, t3 := e.Spawn(), e.Spawn(), e.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64)               // tainted
	t2.Store64(128, v+1, lab, taint.None) // derived value stored (side effect)
	t2.Persist(128, 8)
	// Thread-3 loads the derived value after it was persisted: the word is
	// clean, but its shadow label still carries the dependency.
	_, lab3 := t3.Load64(128)
	if lab3 == taint.None {
		t.Fatalf("shadow label must propagate through PM")
	}
	t3.Store64(256, 1, lab3, taint.None)
	// Original x is still dirty: transitive side effect confirmed.
	found := false
	for _, in := range e.Detector().Inconsistencies() {
		if in.SideEffect.Off == 256 {
			found = true
		}
	}
	if !found {
		t.Fatalf("transitive durable side effect not detected: %+v", e.Detector().Inconsistencies())
	}
}

func TestNTStoreIsDurableSideEffect(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64)
	t2.NTStore64(512, v, lab, taint.None) // durable immediately
	ins := e.Detector().Inconsistencies()
	if len(ins) != 1 {
		t.Fatalf("NT store side effect not detected: %+v", ins)
	}
}

func TestStoreBytesAndLoadBytesTaint(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.StoreBytes(64, []byte("dirty value bytes"), taint.None, taint.None)
	data, lab := t2.LoadBytes(64, 17)
	if string(data) != "dirty value bytes" {
		t.Fatalf("data = %q", data)
	}
	if lab == taint.None {
		t.Fatalf("dirty byte read must be tainted")
	}
	t2.StoreBytes(512, data, lab, taint.None)
	if len(e.Detector().Inconsistencies()) != 1 {
		t.Fatalf("byte-range side effect not detected")
	}
}

func TestCAS64SuccessAndFailure(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	ok, old, _ := t1.CAS64(64, 0, 7, taint.None, taint.None)
	if !ok || old != 0 {
		t.Fatalf("CAS should succeed: ok=%v old=%d", ok, old)
	}
	ok, old, _ = t1.CAS64(64, 0, 9, taint.None, taint.None)
	if ok || old != 7 {
		t.Fatalf("CAS should fail: ok=%v old=%d", ok, old)
	}
}

func TestCASObservesDirtyData(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 3, taint.None, taint.None)
	_, _, lab := t2.CAS64(64, 3, 4, taint.None, taint.None)
	if lab == taint.None {
		t.Fatalf("CAS on dirty word must return taint")
	}
	if len(e.Detector().Candidates()) != 1 {
		t.Fatalf("CAS dirty read must create a candidate")
	}
}

func TestSpinLockRoundTrip(t *testing.T) {
	e := newEnv(t, Config{HangTimeout: 100 * time.Millisecond})
	t1 := e.Spawn()
	t1.SpinLock(64)
	if got := e.Pool().Load64(64); got != 1 {
		t.Fatalf("lock word = %d, want 1", got)
	}
	t1.SpinUnlock(64)
	if got := e.Pool().Load64(64); got != 0 {
		t.Fatalf("lock word = %d, want 0", got)
	}
}

func TestSpinLockHangDetection(t *testing.T) {
	var hang *HangReport
	e := newEnv(t, Config{
		HangTimeout: 20 * time.Millisecond,
		OnHang:      func(_ *Env, h HangReport) { hang = &h },
	})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.SpinLock(64) // held and never released
	defer func() {
		r := recover()
		if _, ok := r.(HangError); !ok {
			t.Fatalf("expected HangError panic, got %v", r)
		}
		if hang == nil || hang.Thread != t2.ID || hang.Addr != 64 {
			t.Fatalf("hang report = %+v", hang)
		}
		if herr, _ := r.(HangError); herr.Error() == "" {
			t.Fatalf("HangError must format")
		}
	}()
	t2.SpinLock(64)
}

func TestSyncVarAnnotationTriggersCallback(t *testing.T) {
	var syncs []*core.SyncInconsistency
	e := newEnv(t, Config{
		OnSync: func(_ *Env, si *core.SyncInconsistency) { syncs = append(syncs, si) },
	})
	e.AnnotateSyncVar(core.SyncVar{Name: "bucket-lock", Addr: 64, Size: 8, InitVal: 0})
	t1 := e.Spawn()
	t1.SpinLock(64)
	if len(syncs) != 1 || syncs[0].Var.Name != "bucket-lock" || syncs[0].NewVal != 1 {
		t.Fatalf("syncs = %+v", syncs)
	}
	t1.SpinUnlock(64) // different site: second report
	if len(syncs) != 2 {
		t.Fatalf("unlock must also report, got %d", len(syncs))
	}
}

func TestBranchCoverage(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	before := e.Coverage().Branch.Count()
	t1.Branch()
	t1.Branch()
	after := e.Coverage().Branch.Count()
	if after <= before {
		t.Fatalf("branch coverage did not grow: %d -> %d", before, after)
	}
}

func TestAliasCoverageCrossThreadOnly(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	t1.Load64(64) // same thread: no alias pair
	t1.Fence()    // sync point: drains t1's access log
	if got := e.Coverage().Alias.Count(); got != 0 {
		t.Fatalf("same-thread accesses must not form alias pairs, got %d", got)
	}
	t2.Load64(64) // cross-thread back-to-back: alias pair
	t2.Fence()
	if got := e.Coverage().Alias.Count(); got != 1 {
		t.Fatalf("alias coverage = %d, want 1", got)
	}
}

// TestDeferredAnalysisPublishesAtSyncPoints pins the epoch-log contract:
// per-access analysis results are not published inline but at the next sync
// point (fence, unlock, exit), and the thread's drain clock advances once per
// drain, not per access.
func TestDeferredAnalysisPublishesAtSyncPoints(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	t2.Load64(64) // cross-thread alias pair, still in t2's log
	if got := e.Coverage().Alias.Count(); got != 0 {
		t.Fatalf("alias pair published before sync point: count = %d", got)
	}
	if c := e.Batch().Clock(t2.ID); c != 0 {
		t.Fatalf("clock advanced before drain: %d", c)
	}
	t2.Load64(64)
	t2.Fence()
	if got := e.Coverage().Alias.Count(); got != 1 {
		t.Fatalf("alias coverage after drain = %d, want 1", got)
	}
	if c := e.Batch().Clock(t2.ID); c != 1 {
		t.Fatalf("clock after one drain = %d, want 1", c)
	}
	t2.Exit()
	// An empty log drains nothing: the clock must not advance.
	if c := e.Batch().Clock(t2.ID); c != 1 {
		t.Fatalf("clock after empty exit drain = %d, want 1", c)
	}
}

func TestStatsCollection(t *testing.T) {
	e := NewEnv(pmem.New(4096), Config{CollectStats: true})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	t2.Load64(64)
	t1.Exit()
	t2.Exit()
	stats := e.Stats()
	st, ok := stats[64]
	if !ok || !st.Shared() || st.Total != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestStatsDisabledByDefault(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	if len(e.Stats()) != 0 {
		t.Fatalf("stats must be off unless enabled")
	}
}

func TestWriteRecorder(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None) // before enabling: not recorded
	e.EnableWriteRecorder()
	t1.Store64(128, 2, taint.None, taint.None)
	t1.StoreBytes(256, make([]byte, 24), taint.None, taint.None)
	if e.RangeOverwritten(pmem.Range{Off: 64, Len: 8}) {
		t.Fatalf("pre-recorder write must not count")
	}
	if !e.RangeOverwritten(pmem.Range{Off: 128, Len: 8}) {
		t.Fatalf("recorded write must count")
	}
	if !e.RangeOverwritten(pmem.Range{Off: 256, Len: 24}) {
		t.Fatalf("byte-range write must count")
	}
	if e.RangeOverwritten(pmem.Range{Off: 256, Len: 40}) {
		t.Fatalf("partially overwritten range must not count")
	}
	if len(e.WrittenWords()) != 4 {
		t.Fatalf("written words = %v", e.WrittenWords())
	}
}

func TestRangeOverwrittenWithoutRecorder(t *testing.T) {
	e := newEnv(t, Config{})
	if e.RangeOverwritten(pmem.Range{Off: 0, Len: 8}) {
		t.Fatalf("without recorder nothing is overwritten")
	}
}

func TestOnInconsistencyPoolStillBuggy(t *testing.T) {
	checked := false
	e := NewEnv(pmem.New(4096), Config{
		OnInconsistency: func(env *Env, in *core.Inconsistency) {
			// At detection time the dependency must still be dirty.
			if !env.Pool().WordState(in.DirtyRange.Off).Dirty {
				panic("dependency already clean at callback time")
			}
			checked = true
		},
	})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 5, taint.None, taint.None)
	v, lab := t2.Load64(64)
	t2.Store64(512, v, lab, taint.None)
	if !checked {
		t.Fatalf("callback did not run")
	}
}

func TestSpawnAssignsSequentialIDs(t *testing.T) {
	e := newEnv(t, Config{})
	a, b := e.Spawn(), e.Spawn()
	if a.ID == b.ID {
		t.Fatalf("thread IDs must differ")
	}
	if a.Env() != e {
		t.Fatalf("Env accessor broken")
	}
	a.Exit()
	b.Exit()
}

func TestCaptureStackSkipsRuntimeFrames(t *testing.T) {
	stack := captureStack()
	if len(stack) == 0 {
		t.Fatalf("stack must not be empty")
	}
	for _, fr := range stack {
		if fr == "" {
			t.Fatalf("empty frame")
		}
	}
}

func TestRedundantStoreDetection(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 7, taint.None, taint.None)
	for i := 0; i < 3; i++ {
		t1.Store64(64, 7, taint.None, taint.None) // same value: redundant
	}
	t1.Exit()
	red := e.Detector().RedundantStores()
	if len(red) != 1 || red[0].Count != 3 {
		t.Fatalf("redundant stores = %+v", red)
	}
}

func TestRedundantStoreIgnoresZeroOverZero(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 0, taint.None, taint.None) // zero over zero: init noise
	if len(e.Detector().RedundantStores()) != 0 {
		t.Fatalf("zero-over-zero must be ignored")
	}
}

func TestRedundantFlushChecker(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	t1.Persist(64, 8) // useful
	t1.Persist(64, 8) // redundant: already clean
	t1.Flush(64, 8)   // redundant again
	t1.Fence()
	red := e.Detector().RedundantFlushes()
	if len(red) == 0 {
		t.Fatalf("redundant flush not detected")
	}
	total := 0
	for _, r := range red {
		total += r.Count
	}
	if total != 2 {
		t.Fatalf("redundant flush count = %d, want 2", total)
	}
}

func TestUnflushedScanner(t *testing.T) {
	e := newEnv(t, Config{})
	t1 := e.Spawn()
	t1.Store64(64, 1, taint.None, taint.None)
	t1.Persist(64, 8)
	t1.Store64(512, 2, taint.None, taint.None) // never flushed
	t1.Store64(520, 3, taint.None, taint.None) // same site? different line word
	missing := core.UnflushedScanner(e.Pool())
	if len(missing) == 0 {
		t.Fatalf("unflushed writes not found")
	}
	words := 0
	for _, u := range missing {
		words += u.Words
	}
	if words != 2 {
		t.Fatalf("unflushed words = %d, want 2", words)
	}
}

// Property: after persisting every range that was stored, the cache image
// equals the persisted image (no write escapes the persistence protocol).
func TestPersistAllMakesImagesEqualProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		e := NewEnv(pmem.New(4096), Config{})
		th := e.Spawn()
		var addrs []pmem.Addr
		for i, op := range ops {
			addr := pmem.Addr(op%(4096/8)) * 8
			th.Store64(addr, uint64(i)+1, taint.None, taint.None)
			addrs = append(addrs, addr)
		}
		for _, a := range addrs {
			th.Persist(a, 8)
		}
		return e.Pool().PersistedEquals(0, 4096)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every dirty cross-thread read yields a non-None label, and the
// label's events name the actual writer.
func TestDirtyReadLabelProperty(t *testing.T) {
	f := func(slots []uint8) bool {
		e := NewEnv(pmem.New(4096), Config{})
		w, r := e.Spawn(), e.Spawn()
		for i, s := range slots {
			addr := pmem.Addr(s%32)*64 + 1024
			w.Store64(addr, uint64(i)+1, taint.None, taint.None)
			_, lab := r.Load64(addr)
			if lab == taint.None {
				return false
			}
			events := e.Labels().Events(lab)
			if len(events) == 0 || events[len(events)-1].Writer != int32(w.ID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHookStore64(b *testing.B) {
	e := NewEnv(pmem.New(1<<20), Config{})
	th := e.Spawn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th.Store64(pmem.Addr(i%(1<<16))*8, uint64(i), taint.None, taint.None)
	}
}

func BenchmarkHookLoad64(b *testing.B) {
	e := NewEnv(pmem.New(1<<20), Config{})
	th := e.Spawn()
	th.Store64(64, 1, taint.None, taint.None)
	th.Persist(64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		th.Load64(64)
	}
}

func BenchmarkHookDirtyReadDetection(b *testing.B) {
	e := NewEnv(pmem.New(1<<20), Config{})
	w, r := e.Spawn(), e.Spawn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := pmem.Addr(i%(1<<10)) * 64
		w.Store64(addr, uint64(i), taint.None, taint.None)
		r.Load64(addr)
	}
}

func TestAccessTraceRing(t *testing.T) {
	e := NewEnv(pmem.New(4096), Config{TraceDepth: 3})
	th := e.Spawn()
	th.Store64(64, 1, taint.None, taint.None)
	th.Load64(64)
	th.Persist(64, 8)
	th.NTStore64(128, 2, taint.None, taint.None)
	trace := e.RecentAccesses()
	if len(trace) != 3 {
		t.Fatalf("trace length = %d, want ring capacity 3", len(trace))
	}
	// Chronological order and sequence numbers must be increasing.
	for i := 1; i < len(trace); i++ {
		if trace[i].Seq <= trace[i-1].Seq {
			t.Fatalf("trace not chronological: %+v", trace)
		}
	}
	// Ring wrap: the first event (the store) must have been evicted.
	if trace[0].Kind == AccStore && trace[0].Addr == 64 {
		t.Fatalf("oldest event should have been evicted from the ring")
	}
	lines := FormatTrace(trace, 2)
	if len(lines) != 2 {
		t.Fatalf("FormatTrace tail = %d lines", len(lines))
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	e := newEnv(t, Config{})
	th := e.Spawn()
	th.Store64(64, 1, taint.None, taint.None)
	if e.RecentAccesses() != nil {
		t.Fatalf("tracing must be off unless configured")
	}
}

func TestAccessKindStrings(t *testing.T) {
	kinds := map[AccessKind]string{
		AccLoad: "load", AccStore: "store", AccNTStore: "ntstore",
		AccCAS: "cas", AccFlush: "flush", AccFence: "fence",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

// TestExternSideEffect covers Definition 2's non-PM durable effects: data
// derived from a non-persisted write escaping to disk/another program.
func TestExternSideEffect(t *testing.T) {
	e := newEnv(t, Config{})
	t1, t2 := e.Spawn(), e.Spawn()
	t1.Store64(64, 5, taint.None, taint.None) // unflushed
	_, lab := t2.Load64(64)
	t2.ExternSideEffect(lab) // e.g. answering a client with the dirty value
	ins := e.Detector().Inconsistencies()
	if len(ins) != 1 || !ins[0].External || ins[0].Kind != core.KindInter {
		t.Fatalf("inconsistencies = %+v", ins)
	}
	// Untainted external effects are not findings.
	t2.ExternSideEffect(taint.None)
	if len(e.Detector().Inconsistencies()) != 1 {
		t.Fatalf("untainted extern effect must not report")
	}
}
