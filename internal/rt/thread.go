package rt

import (
	"fmt"
	"runtime"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// fastPC reports whether the frame-pointer caller-PC capture verified at
// startup; when false every hook falls back to the runtime.Callers unwind.
var fastPC = site.VerifyReturnPC()

// logSize is the capacity of a thread's access log. 256 records (~8 KiB)
// cover a typical critical section; a full log self-drains, so the bound
// only sets drain granularity, never drops records.
const logSize = 256

// Thread is the hook handle one simulated program thread uses for every PM
// access. Each hook call site is one "instrumented instruction": the hook
// resolves its caller to a site ID that plays the role of PMRace's LLVM
// instruction ID.
//
// Every exported hook is marked go:noinline — the hook must own a real stack
// frame so the one-instruction frame-pointer walk in site.ReturnPC lands on
// the instrumented call site (the fallback unwind needs the fixed frame depth
// too).
//
// A Thread is used by a single goroutine.
type Thread struct {
	// ID is the simulated thread ID; it appears in the paper's
	// (instruction, persistency state, thread) access triples.
	ID  pmem.ThreadID
	env *Env

	// sites caches PC→site-ID resolutions so steady-state hook calls
	// never touch the shared registry. Single-goroutine, like the Thread.
	sites *site.Cache

	// shard is the thread's slice of the access-trace ring (nil when
	// tracing is off), cached at Spawn so each traced hook is one direct
	// append with no ring indirection.
	shard *traceShard

	// log is the thread's epoch-append access log: hooks append one record
	// per access with no lock and no inline analysis; the deferred
	// analyses (alias pairs, statistics, redundant stores) run in batches
	// when the log drains at a sync point (lock, unlock, fence, exit) or
	// when it fills. clock is the FastTrack-style epoch counter advancing
	// once per drain, so all records of a batch share one epoch.
	log   [logSize]core.LogRecord
	logN  int
	clock uint32

	branchPrev uint32
}

// Env returns the environment the thread runs in.
func (t *Thread) Env() *Env { return t.env }

// Exit drains the thread's access log and unregisters the thread from the
// interleaving strategy. It is a sync point: after Exit, every deferred
// analysis result from this thread is published.
func (t *Thread) Exit() {
	t.drainLog()
	t.env.noteThreadExit(t.ID)
	t.env.strat.ThreadExit(t.ID)
}

// HangError is panicked when a spin lock exceeds the hang timeout; the
// campaign executor recovers it and records a hang (e.g. a deadlock from a
// conventional concurrency bug, or a never-released persistent lock after
// recovery).
type HangError struct{ Report HangReport }

// Error implements error.
func (h HangError) Error() string {
	return fmt.Sprintf("rt: thread %d hung acquiring lock at PM offset %#x (%s)", h.Report.Thread, h.Report.Addr, h.Report.Site)
}

// siteFromPC resolves a hook's instrumented call site from the raw return PC
// the hook captured with site.ReturnPC. Kept out of line so the fallback's
// unwind depth is fixed whether or not the compiler would inline it: Here(1)
// resolves the caller of this function's caller, i.e. the instrumented site.
//
//go:noinline
func (t *Thread) siteFromPC(pc uintptr) site.ID {
	if fastPC && pc != 0 {
		return t.sites.ForPC(pc)
	}
	return t.sites.Here(1)
}

// logAccess appends one record to the thread's access log, draining first if
// the log is full. No lock: the log is as thread-local as the Thread.
func (t *Thread) logAccess(addr pmem.Addr, prev pmem.Accessor, s site.ID, kind uint8) {
	if t.logN == logSize {
		t.drainLog()
	}
	t.log[t.logN] = core.LogRecord{Addr: addr, Prev: prev, Site: s, Kind: kind}
	t.logN++
}

// drainLog hands the accumulated records to the environment's batch analyzer
// and advances the thread's epoch clock.
func (t *Thread) drainLog() {
	if t.logN == 0 {
		return
	}
	t.env.batch.Process(t.ID, t.clock, t.log[:t.logN])
	t.logN = 0
	t.clock++
}

// --- loads ---

// Load64 performs an instrumented 8-byte PM load. It returns the loaded
// value and its taint label: the union of the shadow label of the stored
// value and, when the word is dirty, a fresh label for the inconsistency
// candidate created by this read (paper §4.3, "PM Inter-thread Inconsistency
// Candidate" checker).
//
//go:noinline
func (t *Thread) Load64(addr pmem.Addr) (uint64, taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	return t.load64At(addr, s)
}

func (t *Thread) load64At(addr pmem.Addr, s site.ID) (uint64, taint.Label) {
	e := t.env
	e.checkCancel()
	if !e.stratNone {
		e.strat.BeforeLoad(t.ID, addr, s)
	}
	t.traceAccess(AccLoad, addr, s)
	val, meta, shadow, prev := e.pool.InstrLoad64(t.ID, uint32(s), addr)
	var kind uint8
	if meta.Dirty {
		kind = core.KindDirty
	}
	t.logAccess(addr, prev, s, kind)
	lab := taint.Label(shadow)
	if meta.Dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      addr &^ (pmem.WordSize - 1),
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	return val, lab
}

// LoadBytes performs an instrumented PM load of n bytes. Dirty words in the
// range produce inconsistency candidates exactly like Load64.
//
//go:noinline
func (t *Thread) LoadBytes(addr pmem.Addr, n uint64) ([]byte, taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	e := t.env
	e.checkCancel()
	if !e.stratNone {
		e.strat.BeforeLoad(t.ID, addr, s)
	}
	t.traceAccess(AccLoad, addr, s)
	out, meta, waddr, dirty, rawLabels, prev := e.pool.InstrLoadBytes(t.ID, uint32(s), addr, n)
	var kind uint8
	if dirty {
		kind = core.KindDirty
	}
	t.logAccess(addr, prev, s, kind)
	lab := e.labels.UnionAll(labelsOf(rawLabels))
	if dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      waddr,
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	return out, lab
}

// --- stores ---

// Store64 performs an instrumented 8-byte PM store. valLab is the taint
// label of the stored value; addrLab is the label of the address computation
// (non-None when the target address derives from loaded PM data, e.g.
// indexing through a table pointer). A non-None label whose source is still
// non-persisted makes this store a durable side effect: a PM inter- or
// intra-thread inconsistency (paper Definition 2).
//
//go:noinline
func (t *Thread) Store64(addr pmem.Addr, val uint64, valLab, addrLab taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	t.store64At(addr, val, valLab, addrLab, s)
}

func (t *Thread) store64At(addr pmem.Addr, val uint64, valLab, addrLab taint.Label, s site.ID) {
	e := t.env
	e.checkCancel()
	if !e.stratNone {
		e.strat.BeforeStore(t.ID, addr, s)
	}
	t.traceAccess(AccStore, addr, s)
	t.checkSideEffect(s, addr, 8, valLab, addrLab)
	old, prev := e.pool.InstrStore64(t.ID, uint32(s), addr, val, uint32(valLab))
	kind := core.KindStore | core.KindDirty
	if old == val && old != 0 {
		kind |= core.KindRedundant
	}
	t.logAccess(addr, prev, s, kind)
	e.recordWrite(addr, 8)
	t.checkSyncVar(s, addr, 8, old, val)
	if !e.stratNone {
		e.strat.AfterStore(t.ID, addr, s)
	}
}

// StoreBytes performs an instrumented PM store of a byte slice.
//
//go:noinline
func (t *Thread) StoreBytes(addr pmem.Addr, data []byte, valLab, addrLab taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	e := t.env
	e.checkCancel()
	n := uint64(len(data))
	if !e.stratNone {
		e.strat.BeforeStore(t.ID, addr, s)
	}
	t.traceAccess(AccStore, addr, s)
	t.checkSideEffect(s, addr, n, valLab, addrLab)
	prev := e.pool.InstrStoreBytes(t.ID, uint32(s), addr, data, uint32(valLab))
	t.logAccess(addr, prev, s, core.KindStore|core.KindDirty)
	e.recordWrite(addr, n)
	if !e.stratNone {
		e.strat.AfterStore(t.ID, addr, s)
	}
}

// NTStore64 performs an instrumented non-temporal 8-byte store: the write is
// durable immediately (PM_CLEAN), so it is itself a durable side effect if
// its value or address is tainted — the movnt64 pattern of the P-CLHT bug.
//
//go:noinline
func (t *Thread) NTStore64(addr pmem.Addr, val uint64, valLab, addrLab taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	e := t.env
	e.checkCancel()
	if !e.stratNone {
		e.strat.BeforeStore(t.ID, addr, s)
	}
	t.traceAccess(AccNTStore, addr, s)
	t.checkSideEffect(s, addr, 8, valLab, addrLab)
	old, prev := e.pool.InstrNTStore64(t.ID, uint32(s), addr, val, uint32(valLab))
	t.logAccess(addr, prev, s, core.KindStore)
	e.recordWrite(addr, 8)
	t.checkSyncVar(s, addr, 8, old, val)
}

// NTStoreBytes performs an instrumented non-temporal store of a byte slice.
//
//go:noinline
func (t *Thread) NTStoreBytes(addr pmem.Addr, data []byte, valLab, addrLab taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	e := t.env
	e.checkCancel()
	n := uint64(len(data))
	if !e.stratNone {
		e.strat.BeforeStore(t.ID, addr, s)
	}
	t.traceAccess(AccNTStore, addr, s)
	t.checkSideEffect(s, addr, n, valLab, addrLab)
	prev := e.pool.InstrNTStoreBytes(t.ID, uint32(s), addr, data, uint32(valLab))
	t.logAccess(addr, prev, s, core.KindStore)
	e.recordWrite(addr, n)
}

// CAS64 performs an instrumented compare-and-swap. On success it has store
// semantics (side-effect and sync-variable checks apply); on failure it has
// load semantics. The returned label covers the observed value.
//
//go:noinline
func (t *Thread) CAS64(addr pmem.Addr, old, new uint64, valLab, addrLab taint.Label) (bool, uint64, taint.Label) {
	s := t.siteFromPC(site.ReturnPC())
	return t.cas64At(addr, old, new, valLab, addrLab, s)
}

func (t *Thread) cas64At(addr pmem.Addr, old, new uint64, valLab, addrLab taint.Label, s site.ID) (bool, uint64, taint.Label) {
	e := t.env
	e.checkCancel()
	if !e.stratNone {
		e.strat.BeforeStore(t.ID, addr, s)
	}
	t.traceAccess(AccCAS, addr, s)
	ok, observed, meta, shadow, prev := e.pool.InstrCAS64(t.ID, uint32(s), addr, old, new, uint32(valLab))
	t.logAccess(addr, prev, s, core.KindStore|core.KindDirty)
	lab := taint.Label(shadow)
	if meta.Dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      addr &^ (pmem.WordSize - 1),
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	if ok {
		t.checkSideEffect(s, addr, 8, valLab, addrLab)
		e.recordWrite(addr, 8)
		t.checkSyncVar(s, addr, 8, observed, new)
		if !e.stratNone {
			e.strat.AfterStore(t.ID, addr, s)
		}
	}
	return ok, observed, lab
}

// ExternSideEffect reports a durable side effect outside the pool: writing
// to disk, sending data to another process, answering a client. Definition 2
// counts these alongside PM writes — if the outgoing data derives from
// still-non-persisted PM state, a crash leaves the external world ahead of
// PM. The label is the taint of the escaping data.
//
//go:noinline
func (t *Thread) ExternSideEffect(lab taint.Label) {
	if lab == taint.None {
		return
	}
	s := t.siteFromPC(site.ReturnPC())
	t.drainLog()
	e := t.env
	found := e.det.OnStore(core.StoreCheck{
		Thread:   t.ID,
		Site:     s,
		Addr:     0,
		Size:     0,
		ValLab:   lab,
		External: true,
		Stack:    captureStack(),
		StillDirty: func(a pmem.Addr, epoch uint32) bool {
			m := e.pool.WordState(a)
			return m.Dirty && epoch > m.CleanEpoch
		},
	})
	if e.cfg.OnInconsistency != nil {
		for _, in := range found {
			e.cfg.OnInconsistency(e, in)
		}
	}
}

// --- persistency ---

// Flush issues CLWB over the lines covering [addr, addr+n). The
// unnecessary-persistency checker records flushes whose covered words were
// all already clean (§4.3's extensible-checker example).
//
//go:noinline
func (t *Thread) Flush(addr pmem.Addr, n uint64) {
	t.flushAt(t.siteFromPC(site.ReturnPC()), addr, n)
}

func (t *Thread) flushAt(s site.ID, addr pmem.Addr, n uint64) {
	t.env.checkCancel()
	t.traceAccess(AccFlush, addr, s)
	_, _, anyDirty := t.env.pool.WordDirtyRange(addr, n)
	t.env.det.OnFlush(s, addr, anyDirty)
	t.env.pool.Flush(t.ID, addr, n)
}

// Fence issues SFENCE: the thread's pending flushes reach the persistence
// domain. A fence is a sync point — the thread's access log drains here.
//
//go:noinline
func (t *Thread) Fence() {
	t.env.checkCancel()
	t.env.pool.Fence(t.ID)
	t.drainLog()
}

// Persist is the common flush+fence sequence.
//
//go:noinline
func (t *Thread) Persist(addr pmem.Addr, n uint64) {
	t.flushAt(t.siteFromPC(site.ReturnPC()), addr, n)
	t.env.pool.Fence(t.ID)
	t.drainLog()
}

// --- control flow ---

// Branch records an edge-coverage event at the caller's location,
// corresponding to the branch instrumentation of the LLVM pass.
//
//go:noinline
func (t *Thread) Branch() {
	s := t.siteFromPC(site.ReturnPC())
	t.env.cov.Branch.Set(cover.EdgeHash(t.branchPrev, uint32(s)))
	t.branchPrev = uint32(s)
}

// --- locking ---

// SpinLock acquires a test-and-set lock stored in PM at addr (0 = free,
// 1 = held) by spinning on CAS64. If acquisition exceeds the environment's
// hang timeout the thread reports a hang and panics with HangError — this is
// how never-released persistent locks (PM Synchronization Inconsistency
// consequences) and conventional missing-unlock bugs manifest. Lock
// acquisition is a sync point: the access log drains before the thread
// enters the critical section.
//
//go:noinline
func (t *Thread) SpinLock(addr pmem.Addr) {
	s := t.siteFromPC(site.ReturnPC())
	t.drainLog()
	deadline := time.Now().Add(t.env.cfg.HangTimeout)
	spins := 0
	for {
		// Test-and-test-and-set: attempt the fully instrumented CAS
		// only when an uninstrumented peek shows the lock free.
		// Contended spinning then costs a striped read per iteration
		// instead of an accessor swap, taint union and detector call
		// — and stops flooding the access log with failed attempts.
		// The first CAS after every release is still instrumented, so
		// lock-word alias pairs and statistics are recorded exactly
		// once per acquisition attempt that could have succeeded.
		if t.env.pool.Load64(addr) == 0 {
			ok, _, _ := t.cas64At(addr, 0, 1, taint.None, taint.None, s)
			if ok {
				t.env.noteLockAcquired(addr, t.ID)
				return
			}
			continue
		}
		t.env.checkCancel()
		spins++
		// A lock whose recorded owner has exited — or whose owner is
		// this very thread, spinning on a lock it leaked earlier in
		// its own op stream — can never be granted; waiting out the
		// full hang timeout would report the same hang ~80ms later
		// (and cascade across every thread queued behind the leak).
		// Fail fast instead. Locks with no recorded owner — e.g. a
		// persistent lock word set in a crash image that recovery
		// trips over — still take the timeout path.
		if spins%32 == 0 && (t.env.lockUnacquirable(addr, t.ID) || time.Now().After(deadline)) {
			t.drainLog()
			rep := HangReport{
				Thread: t.ID,
				Addr:   addr,
				Site:   site.Lookup(s).String(),
				Stack:  captureStack(),
			}
			if t.env.cfg.OnHang != nil {
				t.env.cfg.OnHang(t.env, rep)
			}
			panic(HangError{Report: rep})
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			// Past the yield phase the holder is genuinely stalled
			// (usually a cond_wait window); sleep briefly rather
			// than burn the only CPU, but stay fine-grained so the
			// handoff after release is prompt.
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// SpinUnlock releases a SpinLock-acquired lock. Lock release is a sync
// point: the critical section's accesses drain to the batch analyzer here.
//
//go:noinline
func (t *Thread) SpinUnlock(addr pmem.Addr) {
	s := t.siteFromPC(site.ReturnPC())
	t.env.noteLockReleased(addr)
	t.store64At(addr, 0, taint.None, taint.None, s)
	t.drainLog()
}

// --- internal helpers ---

// checkSideEffect runs the durable-side-effect checker for a store with the
// given labels and dispatches newly found inconsistencies to the campaign
// callback while the pool still reflects the buggy state.
func (t *Thread) checkSideEffect(s site.ID, addr pmem.Addr, n uint64, valLab, addrLab taint.Label) {
	if valLab == taint.None && addrLab == taint.None {
		return
	}
	e := t.env
	found := e.det.OnStore(core.StoreCheck{
		Thread:  t.ID,
		Site:    s,
		Addr:    addr,
		Size:    n,
		ValLab:  valLab,
		AddrLab: addrLab,
		Stack:   captureStack(),
		StillDirty: func(a pmem.Addr, epoch uint32) bool {
			// The dependency is live while the word has stayed
			// non-persisted since the observed store: overwrites
			// keep the observed value lost on crash; only a flush
			// (raising CleanEpoch past the event) settles it.
			m := e.pool.WordState(a)
			return m.Dirty && epoch > m.CleanEpoch
		},
	})
	if e.cfg.OnInconsistency != nil {
		for _, in := range found {
			e.cfg.OnInconsistency(e, in)
		}
	}
}

func (t *Thread) checkSyncVar(s site.ID, addr pmem.Addr, n uint64, old, new uint64) {
	if !t.env.det.HasSyncVars() {
		return
	}
	si := t.env.det.OnSyncStore(t.ID, s, addr, n, old, new, nil)
	if si != nil {
		si.Stack = captureStack()
	}
	if si != nil && t.env.cfg.OnSync != nil {
		t.env.cfg.OnSync(t.env, si)
	}
}

func labelsOf(raw []uint32) []taint.Label {
	if len(raw) == 0 {
		return nil
	}
	out := make([]taint.Label, len(raw))
	for i, r := range raw {
		out[i] = taint.Label(r)
	}
	return out
}
