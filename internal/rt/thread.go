package rt

import (
	"fmt"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// Thread is the hook handle one simulated program thread uses for every PM
// access. Each hook call site is one "instrumented instruction": the hook
// resolves its caller to a site ID that plays the role of PMRace's LLVM
// instruction ID.
//
// A Thread is used by a single goroutine.
type Thread struct {
	// ID is the simulated thread ID; it appears in the paper's
	// (instruction, persistency state, thread) access triples.
	ID  pmem.ThreadID
	env *Env

	// sites caches PC→site-ID resolutions so steady-state hook calls
	// never touch the shared registry. Single-goroutine, like the Thread.
	sites *site.Cache

	// shard is the thread's slice of the access-trace ring (nil when
	// tracing is off), cached at Spawn so each traced hook is one direct
	// append with no ring indirection.
	shard *traceShard

	branchPrev uint32
}

// Env returns the environment the thread runs in.
func (t *Thread) Env() *Env { return t.env }

// Exit unregisters the thread from the interleaving strategy.
func (t *Thread) Exit() { t.env.strat.ThreadExit(t.ID) }

// HangError is panicked when a spin lock exceeds the hang timeout; the
// campaign executor recovers it and records a hang (e.g. a deadlock from a
// conventional concurrency bug, or a never-released persistent lock after
// recovery).
type HangError struct{ Report HangReport }

// Error implements error.
func (h HangError) Error() string {
	return fmt.Sprintf("rt: thread %d hung acquiring lock at PM offset %#x (%s)", h.Report.Thread, h.Report.Addr, h.Report.Site)
}

// --- loads ---

// Load64 performs an instrumented 8-byte PM load. It returns the loaded
// value and its taint label: the union of the shadow label of the stored
// value and, when the word is dirty, a fresh label for the inconsistency
// candidate created by this read (paper §4.3, "PM Inter-thread Inconsistency
// Candidate" checker).
func (t *Thread) Load64(addr pmem.Addr) (uint64, taint.Label) {
	s := t.sites.Here(0)
	return t.load64At(addr, s)
}

func (t *Thread) load64At(addr pmem.Addr, s site.ID) (uint64, taint.Label) {
	e := t.env
	e.checkCancel()
	e.strat.BeforeLoad(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, false)
	t.traceAccess(AccLoad, addr, s)
	val, meta, shadow, prev := e.pool.InstrLoad64(t.ID, uint32(s), addr)
	t.aliasCover(prev, s, meta.Dirty)
	lab := taint.Label(shadow)
	if meta.Dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      addr &^ (pmem.WordSize - 1),
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	return val, lab
}

// LoadBytes performs an instrumented PM load of n bytes. Dirty words in the
// range produce inconsistency candidates exactly like Load64.
func (t *Thread) LoadBytes(addr pmem.Addr, n uint64) ([]byte, taint.Label) {
	s := t.sites.Here(0)
	e := t.env
	e.checkCancel()
	e.strat.BeforeLoad(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, false)
	t.traceAccess(AccLoad, addr, s)
	out, meta, waddr, dirty, rawLabels, prev := e.pool.InstrLoadBytes(t.ID, uint32(s), addr, n)
	t.aliasCover(prev, s, dirty)
	lab := e.labels.UnionAll(labelsOf(rawLabels))
	if dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      waddr,
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	return out, lab
}

// --- stores ---

// Store64 performs an instrumented 8-byte PM store. valLab is the taint
// label of the stored value; addrLab is the label of the address computation
// (non-None when the target address derives from loaded PM data, e.g.
// indexing through a table pointer). A non-None label whose source is still
// non-persisted makes this store a durable side effect: a PM inter- or
// intra-thread inconsistency (paper Definition 2).
func (t *Thread) Store64(addr pmem.Addr, val uint64, valLab, addrLab taint.Label) {
	s := t.sites.Here(0)
	t.store64At(addr, val, valLab, addrLab, s)
}

func (t *Thread) store64At(addr pmem.Addr, val uint64, valLab, addrLab taint.Label, s site.ID) {
	e := t.env
	e.checkCancel()
	e.strat.BeforeStore(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, true)
	t.traceAccess(AccStore, addr, s)
	t.checkSideEffect(s, addr, 8, valLab, addrLab)
	old, prev := e.pool.InstrStore64(t.ID, uint32(s), addr, val, uint32(valLab))
	t.aliasCover(prev, s, true)
	if old == val && old != 0 {
		e.det.OnRedundantStore(s, addr)
	}
	e.recordWrite(addr, 8)
	t.checkSyncVar(s, addr, 8, old, val)
	e.strat.AfterStore(t.ID, addr, s)
}

// StoreBytes performs an instrumented PM store of a byte slice.
func (t *Thread) StoreBytes(addr pmem.Addr, data []byte, valLab, addrLab taint.Label) {
	s := t.sites.Here(0)
	e := t.env
	e.checkCancel()
	n := uint64(len(data))
	e.strat.BeforeStore(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, true)
	t.traceAccess(AccStore, addr, s)
	t.checkSideEffect(s, addr, n, valLab, addrLab)
	prev := e.pool.InstrStoreBytes(t.ID, uint32(s), addr, data, uint32(valLab))
	t.aliasCover(prev, s, true)
	e.recordWrite(addr, n)
	e.strat.AfterStore(t.ID, addr, s)
}

// NTStore64 performs an instrumented non-temporal 8-byte store: the write is
// durable immediately (PM_CLEAN), so it is itself a durable side effect if
// its value or address is tainted — the movnt64 pattern of the P-CLHT bug.
func (t *Thread) NTStore64(addr pmem.Addr, val uint64, valLab, addrLab taint.Label) {
	s := t.sites.Here(0)
	e := t.env
	e.checkCancel()
	e.strat.BeforeStore(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, true)
	t.traceAccess(AccNTStore, addr, s)
	t.checkSideEffect(s, addr, 8, valLab, addrLab)
	old, prev := e.pool.InstrNTStore64(t.ID, uint32(s), addr, val, uint32(valLab))
	t.aliasCover(prev, s, false)
	e.recordWrite(addr, 8)
	t.checkSyncVar(s, addr, 8, old, val)
}

// NTStoreBytes performs an instrumented non-temporal store of a byte slice.
func (t *Thread) NTStoreBytes(addr pmem.Addr, data []byte, valLab, addrLab taint.Label) {
	s := t.sites.Here(0)
	e := t.env
	e.checkCancel()
	n := uint64(len(data))
	e.strat.BeforeStore(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, true)
	t.traceAccess(AccNTStore, addr, s)
	t.checkSideEffect(s, addr, n, valLab, addrLab)
	prev := e.pool.InstrNTStoreBytes(t.ID, uint32(s), addr, data, uint32(valLab))
	t.aliasCover(prev, s, false)
	e.recordWrite(addr, n)
}

// CAS64 performs an instrumented compare-and-swap. On success it has store
// semantics (side-effect and sync-variable checks apply); on failure it has
// load semantics. The returned label covers the observed value.
func (t *Thread) CAS64(addr pmem.Addr, old, new uint64, valLab, addrLab taint.Label) (bool, uint64, taint.Label) {
	s := t.sites.Here(0)
	return t.cas64At(addr, old, new, valLab, addrLab, s)
}

func (t *Thread) cas64At(addr pmem.Addr, old, new uint64, valLab, addrLab taint.Label, s site.ID) (bool, uint64, taint.Label) {
	e := t.env
	e.checkCancel()
	e.strat.BeforeStore(t.ID, addr, s)
	e.recordStat(t.ID, addr, s, true)
	t.traceAccess(AccCAS, addr, s)
	ok, observed, meta, shadow, prev := e.pool.InstrCAS64(t.ID, uint32(s), addr, old, new, uint32(valLab))
	t.aliasCover(prev, s, true)
	lab := taint.Label(shadow)
	if meta.Dirty && meta.Writer != pmem.NoThread {
		ev := taint.Event{
			Addr:      addr &^ (pmem.WordSize - 1),
			Epoch:     meta.Epoch,
			WriteSite: meta.Site,
			ReadSite:  uint32(s),
			Writer:    int32(meta.Writer),
			Reader:    int32(t.ID),
		}
		lab = e.labels.Union(lab, e.det.OnDirtyRead(ev))
	}
	if ok {
		t.checkSideEffect(s, addr, 8, valLab, addrLab)
		e.recordWrite(addr, 8)
		t.checkSyncVar(s, addr, 8, observed, new)
		e.strat.AfterStore(t.ID, addr, s)
	}
	return ok, observed, lab
}

// ExternSideEffect reports a durable side effect outside the pool: writing
// to disk, sending data to another process, answering a client. Definition 2
// counts these alongside PM writes — if the outgoing data derives from
// still-non-persisted PM state, a crash leaves the external world ahead of
// PM. The label is the taint of the escaping data.
func (t *Thread) ExternSideEffect(lab taint.Label) {
	if lab == taint.None {
		return
	}
	s := t.sites.Here(0)
	e := t.env
	found := e.det.OnStore(core.StoreCheck{
		Thread:   t.ID,
		Site:     s,
		Addr:     0,
		Size:     0,
		ValLab:   lab,
		External: true,
		Stack:    captureStack(),
		StillDirty: func(a pmem.Addr, epoch uint32) bool {
			m := e.pool.WordState(a)
			return m.Dirty && epoch > m.CleanEpoch
		},
	})
	if e.cfg.OnInconsistency != nil {
		for _, in := range found {
			e.cfg.OnInconsistency(e, in)
		}
	}
}

// --- persistency ---

// Flush issues CLWB over the lines covering [addr, addr+n). The
// unnecessary-persistency checker records flushes whose covered words were
// all already clean (§4.3's extensible-checker example).
func (t *Thread) Flush(addr pmem.Addr, n uint64) {
	t.flushAt(t.sites.Here(0), addr, n)
}

func (t *Thread) flushAt(s site.ID, addr pmem.Addr, n uint64) {
	t.env.checkCancel()
	t.traceAccess(AccFlush, addr, s)
	_, _, anyDirty := t.env.pool.WordDirtyRange(addr, n)
	t.env.det.OnFlush(s, addr, anyDirty)
	t.env.pool.Flush(t.ID, addr, n)
}

// Fence issues SFENCE: the thread's pending flushes reach the persistence
// domain.
func (t *Thread) Fence() {
	t.env.checkCancel()
	t.env.pool.Fence(t.ID)
}

// Persist is the common flush+fence sequence.
func (t *Thread) Persist(addr pmem.Addr, n uint64) {
	t.flushAt(t.sites.Here(0), addr, n)
	t.env.pool.Fence(t.ID)
}

// --- control flow ---

// Branch records an edge-coverage event at the caller's location,
// corresponding to the branch instrumentation of the LLVM pass.
func (t *Thread) Branch() {
	s := t.sites.Here(0)
	t.env.cov.Branch.Set(cover.EdgeHash(t.branchPrev, uint32(s)))
	t.branchPrev = uint32(s)
}

// --- locking ---

// SpinLock acquires a test-and-set lock stored in PM at addr (0 = free,
// 1 = held) by spinning on CAS64. If acquisition exceeds the environment's
// hang timeout the thread reports a hang and panics with HangError — this is
// how never-released persistent locks (PM Synchronization Inconsistency
// consequences) and conventional missing-unlock bugs manifest.
func (t *Thread) SpinLock(addr pmem.Addr) {
	s := t.sites.Here(0)
	deadline := time.Now().Add(t.env.cfg.HangTimeout)
	for {
		ok, _, _ := t.cas64At(addr, 0, 1, taint.None, taint.None, s)
		if ok {
			return
		}
		if time.Now().After(deadline) {
			rep := HangReport{
				Thread: t.ID,
				Addr:   addr,
				Site:   site.Lookup(s).String(),
				Stack:  captureStack(),
			}
			if t.env.cfg.OnHang != nil {
				t.env.cfg.OnHang(t.env, rep)
			}
			panic(HangError{Report: rep})
		}
		time.Sleep(5 * time.Microsecond)
	}
}

// SpinUnlock releases a SpinLock-acquired lock.
func (t *Thread) SpinUnlock(addr pmem.Addr) {
	s := t.sites.Here(0)
	t.store64At(addr, 0, taint.None, taint.None, s)
}

// --- internal helpers ---

// aliasCover records a PM alias pair when the previous accessor of the word
// (returned by the fused pool operation that swapped it) was another thread.
func (t *Thread) aliasCover(prev pmem.Accessor, s site.ID, dirty bool) {
	if prev.Valid && prev.Thread != t.ID {
		t.env.cov.Alias.Set(cover.AliasHash(prev.Site, prev.Dirty, uint32(s), dirty))
	}
}

// checkSideEffect runs the durable-side-effect checker for a store with the
// given labels and dispatches newly found inconsistencies to the campaign
// callback while the pool still reflects the buggy state.
func (t *Thread) checkSideEffect(s site.ID, addr pmem.Addr, n uint64, valLab, addrLab taint.Label) {
	if valLab == taint.None && addrLab == taint.None {
		return
	}
	e := t.env
	found := e.det.OnStore(core.StoreCheck{
		Thread:  t.ID,
		Site:    s,
		Addr:    addr,
		Size:    n,
		ValLab:  valLab,
		AddrLab: addrLab,
		Stack:   captureStack(),
		StillDirty: func(a pmem.Addr, epoch uint32) bool {
			// The dependency is live while the word has stayed
			// non-persisted since the observed store: overwrites
			// keep the observed value lost on crash; only a flush
			// (raising CleanEpoch past the event) settles it.
			m := e.pool.WordState(a)
			return m.Dirty && epoch > m.CleanEpoch
		},
	})
	if e.cfg.OnInconsistency != nil {
		for _, in := range found {
			e.cfg.OnInconsistency(e, in)
		}
	}
}

func (t *Thread) checkSyncVar(s site.ID, addr pmem.Addr, n uint64, old, new uint64) {
	if !t.env.det.HasSyncVars() {
		return
	}
	si := t.env.det.OnSyncStore(t.ID, s, addr, n, old, new, nil)
	if si != nil {
		si.Stack = captureStack()
	}
	if si != nil && t.env.cfg.OnSync != nil {
		t.env.cfg.OnSync(t.env, si)
	}
}

func labelsOf(raw []uint32) []taint.Label {
	if len(raw) == 0 {
		return nil
	}
	out := make([]taint.Label, len(raw))
	for i, r := range raw {
		out[i] = taint.Label(r)
	}
	return out
}
