// Package rt is the instrumentation runtime of the reproduction: the
// in-simulation equivalent of the hook library that PMRace's LLVM pass links
// into the program under test (paper §4.1 step 1, §5). PM programs written
// against this package perform every persistent-memory access through Thread
// hook methods (Load64, Store64, NTStore64, Flush, Fence, CAS64, byte-range
// variants) and report control flow through Branch. The hooks:
//
//   - maintain the pool's persistency states and shadow taint labels;
//   - detect inconsistency candidates (reads of PM_DIRTY data) and durable
//     side effects (stores whose value or address is tainted), delegating to
//     the core detector;
//   - record PM alias pair and branch coverage;
//   - record per-address access statistics for the priority queue;
//   - call into the interleaving-exploration strategy around each access;
//   - watch for hangs in spin-lock acquisition.
package rt
