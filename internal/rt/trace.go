package rt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// AccessKind classifies a traced PM access.
type AccessKind uint8

// Access kinds recorded in the execution trace.
const (
	AccLoad AccessKind = iota
	AccStore
	AccNTStore
	AccCAS
	AccFlush
	AccFence
)

func (k AccessKind) String() string {
	switch k {
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	case AccNTStore:
		return "ntstore"
	case AccCAS:
		return "cas"
	case AccFlush:
		return "flush"
	case AccFence:
		return "fence"
	default:
		return "?"
	}
}

// Access is one traced PM access.
type Access struct {
	Seq    uint64
	Thread pmem.ThreadID
	Kind   AccessKind
	Addr   pmem.Addr
	Site   site.ID
}

// String renders the access the way bug reports print interleaving evidence.
func (a Access) String() string {
	return fmt.Sprintf("#%d t%d %-7s %#x @ %s", a.Seq, a.Thread, a.Kind, a.Addr, site.Lookup(a.Site))
}

// traceShards is the shard count of the access-trace ring. Driver threads
// land on shards by thread ID, so the handful of threads of one execution
// (plus the setup thread) each own a shard and never contend on add.
const traceShards = 16

// traceShard is one thread-affine slice of the trace ring. Its mutex is
// uncontended on the hot path — only the owning thread appends — and exists
// so snapshot() can read a consistent shard while hooks keep running. The
// shard caches a pointer to the ring's global sequence counter so Thread can
// hold a direct shard pointer and the hook never touches the ring header.
type traceShard struct {
	mu   sync.Mutex
	seq  *atomic.Uint64
	buf  []Access // len is a power of two
	mask int
	next int
	_    [3]uint64 // pad to a cache line so neighbouring shards don't false-share
}

// traceRing is a fixed-capacity record of recent PM accesses. PMRace's bug
// reports attach the access history around a detection so developers can see
// the buggy interleaving, not just its endpoints.
//
// The ring is sharded per thread: a global atomic sequence number preserves
// the total order of accesses while each thread appends to its own shard, so
// the tracing hook never re-serializes the concurrent executions the
// lock-free pool hot path allows. snapshot() merges the shards by Seq.
type traceRing struct {
	depth  int
	seq    atomic.Uint64
	_      [6]uint64 // keep the hot counter off the shard array's lines
	shards [traceShards]traceShard
}

func newTraceRing(depth int) *traceRing {
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	r := &traceRing{depth: depth}
	for i := range r.shards {
		r.shards[i].seq = &r.seq
		r.shards[i].buf = make([]Access, cap)
		r.shards[i].mask = cap - 1
	}
	return r
}

// shardFor returns the shard the given thread appends to; Spawn caches it in
// the Thread so the per-access hook skips the modulo and ring indirection.
func (r *traceRing) shardFor(t pmem.ThreadID) *traceShard {
	return &r.shards[uint64(t)%traceShards]
}

func (sh *traceShard) add(t pmem.ThreadID, k AccessKind, addr pmem.Addr, s site.ID) {
	// The ticket is drawn outside the lock: shard buffers need no internal
	// Seq order because snapshot sorts the merged entries globally.
	seq := sh.seq.Add(1)
	sh.mu.Lock()
	sh.buf[sh.next&sh.mask] = Access{Seq: seq, Thread: t, Kind: k, Addr: addr, Site: s}
	sh.next++
	sh.mu.Unlock()
}

// snapshot returns the most recent accesses in chronological order, merged
// across shards by sequence number and trimmed to the configured depth (the
// same contract as the previous single ring: "the last TraceDepth accesses").
func (r *traceRing) snapshot() []Access {
	var out []Access
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.next
		if n > len(sh.buf) {
			n = len(sh.buf)
		}
		out = append(out, sh.buf[:n]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if len(out) > r.depth {
		out = out[len(out)-r.depth:]
	}
	return out
}

// RecentAccesses returns the most recent PM accesses in chronological order,
// or nil when tracing is disabled. The fuzzer snapshots it inside the
// detection callback, so the tail of the trace is the interleaving that led
// to the finding.
func (e *Env) RecentAccesses() []Access {
	if e.trace == nil {
		return nil
	}
	return e.trace.snapshot()
}

// traceAccess appends to the thread's cached trace shard; it is a no-op when
// tracing is disabled.
func (t *Thread) traceAccess(k AccessKind, addr pmem.Addr, s site.ID) {
	if sh := t.shard; sh != nil {
		sh.add(t.ID, k, addr, s)
	}
}

// FormatTrace renders the last n accesses of a trace, one per line.
func FormatTrace(trace []Access, n int) []string {
	if len(trace) > n {
		trace = trace[len(trace)-n:]
	}
	out := make([]string, len(trace))
	for i, a := range trace {
		out[i] = a.String()
	}
	return out
}
