package rt

import (
	"fmt"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// AccessKind classifies a traced PM access.
type AccessKind uint8

// Access kinds recorded in the execution trace.
const (
	AccLoad AccessKind = iota
	AccStore
	AccNTStore
	AccCAS
	AccFlush
	AccFence
)

func (k AccessKind) String() string {
	switch k {
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	case AccNTStore:
		return "ntstore"
	case AccCAS:
		return "cas"
	case AccFlush:
		return "flush"
	case AccFence:
		return "fence"
	default:
		return "?"
	}
}

// Access is one traced PM access.
type Access struct {
	Seq    uint64
	Thread pmem.ThreadID
	Kind   AccessKind
	Addr   pmem.Addr
	Site   site.ID
}

// String renders the access the way bug reports print interleaving evidence.
func (a Access) String() string {
	return fmt.Sprintf("#%d t%d %-7s %#x @ %s", a.Seq, a.Thread, a.Kind, a.Addr, site.Lookup(a.Site))
}

// traceRing is a fixed-capacity ring of recent PM accesses. PMRace's bug
// reports attach the access history around a detection so developers can see
// the buggy interleaving, not just its endpoints.
type traceRing struct {
	mu   sync.Mutex
	buf  []Access
	next int
	full bool
	seq  uint64
}

func newTraceRing(depth int) *traceRing {
	return &traceRing{buf: make([]Access, depth)}
}

func (r *traceRing) add(t pmem.ThreadID, k AccessKind, addr pmem.Addr, s site.ID) {
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = Access{Seq: r.seq, Thread: t, Kind: k, Addr: addr, Site: s}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot returns the ring contents in chronological order.
func (r *traceRing) snapshot() []Access {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Access
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// RecentAccesses returns the most recent PM accesses in chronological order,
// or nil when tracing is disabled. The fuzzer snapshots it inside the
// detection callback, so the tail of the trace is the interleaving that led
// to the finding.
func (e *Env) RecentAccesses() []Access {
	if e.trace == nil {
		return nil
	}
	return e.trace.snapshot()
}

func (e *Env) traceAccess(t pmem.ThreadID, k AccessKind, addr pmem.Addr, s site.ID) {
	if e.trace != nil {
		e.trace.add(t, k, addr, s)
	}
}

// FormatTrace renders the last n accesses of a trace, one per line.
func FormatTrace(trace []Access, n int) []string {
	if len(trace) > n {
		trace = trace[len(trace)-n:]
	}
	out := make([]string, len(trace))
	for i, a := range trace {
		out[i] = a.String()
	}
	return out
}
