package rt

import (
	"sync"
	"testing"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// legacyTraceRing is the pre-sharding trace ring (one global mutex serializing
// every traced hook), kept here so the sharded ring is benchmarked against it
// in the same binary and run — the only fair A/B on a noisy shared vCPU.
type legacyTraceRing struct {
	mu   sync.Mutex
	buf  []Access
	next int
	full bool
	seq  uint64
}

func (r *legacyTraceRing) add(t pmem.ThreadID, k AccessKind, addr pmem.Addr, s site.ID) {
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = Access{Seq: r.seq, Thread: t, Kind: k, Addr: addr, Site: s}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// BenchmarkTraceAddLegacyMutex measures one append through the old
// single-mutex ring.
func BenchmarkTraceAddLegacyMutex(b *testing.B) {
	r := &legacyTraceRing{buf: make([]Access, 64)}
	s := site.Named("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.add(0, AccStore, pmem.Addr(i)*8, s)
	}
}

// BenchmarkTraceAddSharded measures one append through a thread's cached
// shard of the sharded ring.
func BenchmarkTraceAddSharded(b *testing.B) {
	r := newTraceRing(64)
	sh := r.shardFor(0)
	s := site.Named("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.add(0, AccStore, pmem.Addr(i)*8, s)
	}
}

// BenchmarkTraceAddLegacyMutexParallel is the contended case the sharding
// removes: every goroutine funnels through the one mutex.
func BenchmarkTraceAddLegacyMutexParallel(b *testing.B) {
	r := &legacyTraceRing{buf: make([]Access, 64)}
	s := site.Named("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.add(0, AccStore, pmem.Addr(i)*8, s)
			i++
		}
	})
}

// BenchmarkTraceAddShardedParallel spreads the same load over per-goroutine
// shards; only the global sequence ticket is shared.
func BenchmarkTraceAddShardedParallel(b *testing.B) {
	r := newTraceRing(64)
	var tid atomic32
	s := site.Named("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		t := pmem.ThreadID(tid.next())
		sh := r.shardFor(t)
		i := 0
		for pb.Next() {
			sh.add(t, AccStore, pmem.Addr(i)*8, s)
			i++
		}
	})
}

// BenchmarkTraceSnapshotMerge measures the cold-path merge-by-Seq over a ring
// populated from several shards.
func BenchmarkTraceSnapshotMerge(b *testing.B) {
	r := newTraceRing(64)
	s := site.Named("bench")
	for t := pmem.ThreadID(0); t < 4; t++ {
		sh := r.shardFor(t)
		for i := 0; i < 128; i++ {
			sh.add(t, AccStore, pmem.Addr(i)*8, s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.snapshot()) != 64 {
			b.Fatal("bad snapshot length")
		}
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int32
}

func (a *atomic32) next() int32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.n
	a.n++
	return n
}
