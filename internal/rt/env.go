package rt

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// DefaultHangTimeout is the spin-lock hang bound used when Config leaves
// HangTimeout zero. It is the single source of the default: the runtime and
// post-failure validation both inherit it, so the two layers cannot disagree
// about when a spinning thread counts as hung.
const DefaultHangTimeout = 250 * time.Millisecond

// Config configures an execution environment.
type Config struct {
	// Strategy is the interleaving exploration strategy; nil means
	// sched.None.
	Strategy sched.Strategy
	// HangTimeout bounds spin-lock acquisition; a thread spinning longer
	// is reported as hung. Zero selects DefaultHangTimeout.
	HangTimeout time.Duration
	// OnInconsistency, when set, is invoked synchronously at the moment a
	// durable side effect based on non-persisted data is detected, while
	// the pool still reflects the buggy state; the fuzzer uses it to
	// duplicate the pool at the crash point (paper §4.4).
	OnInconsistency func(*Env, *core.Inconsistency)
	// OnSync is the synchronization-inconsistency analogue.
	OnSync func(*Env, *core.SyncInconsistency)
	// OnHang is invoked when a spin lock exceeds HangTimeout.
	OnHang func(*Env, HangReport)
	// CollectStats enables per-address access statistics (needed to build
	// the priority queue; costs memory on large pools).
	CollectStats bool
	// TraceDepth, when positive, records the last TraceDepth PM accesses
	// in a ring buffer; bug reports attach the tail as interleaving
	// evidence.
	TraceDepth int
}

// HangReport describes a hung lock acquisition.
type HangReport struct {
	Thread pmem.ThreadID
	Addr   pmem.Addr
	Site   string
	Stack  []string
}

// Env is one instrumented execution environment: a pool plus the detection
// and exploration machinery shared by all threads of a fuzz campaign
// execution.
type Env struct {
	pool   *pmem.Pool
	labels *taint.Table
	det    *core.Detector
	cov    *cover.Coverage
	strat  sched.Strategy
	cfg    Config

	statsMu sync.Mutex
	stats   map[pmem.Addr]*sched.AddrStats

	trace *traceRing

	// recordOn is read on every store hook; it is atomic so the common
	// recorder-off case costs one load instead of a mutex round trip.
	recordOn atomic.Bool
	recMu    sync.Mutex
	written  map[pmem.Addr]struct{} // word-aligned offsets overwritten

	// cancelled is checked at the top of every pool-mutating hook; the
	// validation watchdog sets it to stop an abandoned recovery goroutine
	// from mutating its pool after the wall-clock deadline expired.
	cancelled atomic.Bool

	threadsMu sync.Mutex
	nextTID   pmem.ThreadID
}

// NewEnv creates an environment over the given pool.
func NewEnv(pool *pmem.Pool, cfg Config) *Env {
	if cfg.Strategy == nil {
		cfg.Strategy = sched.None{}
	}
	if cfg.HangTimeout <= 0 {
		cfg.HangTimeout = DefaultHangTimeout
	}
	labels := taint.NewTable()
	e := &Env{
		pool:   pool,
		labels: labels,
		det:    core.NewDetector(labels),
		cov:    cover.New(),
		strat:  cfg.Strategy,
		cfg:    cfg,
		stats:  make(map[pmem.Addr]*sched.AddrStats),
	}
	if cfg.TraceDepth > 0 {
		e.trace = newTraceRing(cfg.TraceDepth)
	}
	return e
}

// Pool returns the environment's pool.
func (e *Env) Pool() *pmem.Pool { return e.pool }

// Detector returns the environment's PM checkers.
func (e *Env) Detector() *core.Detector { return e.det }

// Coverage returns the environment's coverage maps.
func (e *Env) Coverage() *cover.Coverage { return e.cov }

// Labels returns the environment's taint table.
func (e *Env) Labels() *taint.Table { return e.labels }

// Strategy returns the interleaving strategy in use.
func (e *Env) Strategy() sched.Strategy { return e.strat }

// BeginExec notifies the strategy that an execution with n worker threads is
// starting.
func (e *Env) BeginExec(n int) { e.strat.BeginExec(n) }

// EndExec notifies the strategy that the execution finished.
func (e *Env) EndExec() { e.strat.EndExec() }

// Spawn allocates the next thread handle and registers it with the strategy.
func (e *Env) Spawn() *Thread {
	e.threadsMu.Lock()
	id := e.nextTID
	e.nextTID++
	e.threadsMu.Unlock()
	e.strat.ThreadStart(id)
	th := &Thread{ID: id, env: e, sites: site.NewCache()}
	if e.trace != nil {
		th.shard = e.trace.shardFor(id)
	}
	return th
}

// AnnotateSyncVar registers a persistent synchronization variable annotation
// (the pm_sync_var_hint equivalent, paper §5).
func (e *Env) AnnotateSyncVar(v core.SyncVar) { e.det.AnnotateSyncVar(v) }

// Stats returns the per-address access statistics collected so far.
func (e *Env) Stats() map[pmem.Addr]*sched.AddrStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	out := make(map[pmem.Addr]*sched.AddrStats, len(e.stats))
	for a, st := range e.stats {
		c := sched.NewAddrStats()
		c.Merge(st)
		out[a] = c
	}
	return out
}

func (e *Env) recordStat(t pmem.ThreadID, addr pmem.Addr, s site.ID, isStore bool) {
	if !e.cfg.CollectStats {
		return
	}
	e.statsMu.Lock()
	st, ok := e.stats[addr]
	if !ok {
		st = sched.NewAddrStats()
		e.stats[addr] = st
	}
	st.Record(t, s, isStore)
	e.statsMu.Unlock()
}

// CancelError is panicked by a hook call on a cancelled environment. The
// goroutine driving the cancelled execution recovers it and exits; unlike
// HangError it is not a finding, only a teardown signal.
type CancelError struct{}

// Error implements error.
func (CancelError) Error() string { return "rt: execution environment cancelled" }

// Cancel marks the environment cancelled: every subsequent pool-mutating hook
// call panics CancelError, so a goroutine stuck in an instrumented loop stops
// touching the pool at its next access. The validation watchdog calls it when
// a recovery run exceeds its wall-clock deadline. Goroutines that never call
// another hook (a plain `for {}`) cannot be stopped — Go has no goroutine
// kill — but they also cannot corrupt the pool.
func (e *Env) Cancel() { e.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (e *Env) Cancelled() bool { return e.cancelled.Load() }

// checkCancel panics CancelError when the environment is cancelled. One
// atomic load on the hot path, same pattern as recordOn.
func (e *Env) checkCancel() {
	if e.cancelled.Load() {
		panic(CancelError{})
	}
}

// EnableWriteRecorder starts recording every word offset written through the
// hooks; post-failure validation uses it to check whether recovery overwrote
// the durable side effects of a detected inconsistency.
func (e *Env) EnableWriteRecorder() {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	e.written = make(map[pmem.Addr]struct{})
	e.recordOn.Store(true)
}

// WrittenWords returns the recorded word-aligned offsets.
func (e *Env) WrittenWords() map[pmem.Addr]struct{} {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	out := make(map[pmem.Addr]struct{}, len(e.written))
	for a := range e.written {
		out[a] = struct{}{}
	}
	return out
}

// RangeOverwritten reports whether every word of the range was overwritten
// since EnableWriteRecorder.
func (e *Env) RangeOverwritten(r pmem.Range) bool {
	if !e.recordOn.Load() {
		return false
	}
	e.recMu.Lock()
	defer e.recMu.Unlock()
	if r.Len == 0 {
		return true
	}
	for w := r.Off / pmem.WordSize; w <= (r.End()-1)/pmem.WordSize; w++ {
		if _, ok := e.written[w*pmem.WordSize]; !ok {
			return false
		}
	}
	return true
}

func (e *Env) recordWrite(addr pmem.Addr, n uint64) {
	if !e.recordOn.Load() || n == 0 {
		return
	}
	e.recMu.Lock()
	defer e.recMu.Unlock()
	for w := addr / pmem.WordSize; w <= (addr+n-1)/pmem.WordSize; w++ {
		e.written[w*pmem.WordSize] = struct{}{}
	}
}
