package rt

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// DefaultHangTimeout is the spin-lock hang bound used when Config leaves
// HangTimeout zero. It is the single source of the default: the runtime and
// post-failure validation both inherit it, so the two layers cannot disagree
// about when a spinning thread counts as hung.
const DefaultHangTimeout = 250 * time.Millisecond

// Config configures an execution environment.
type Config struct {
	// Strategy is the interleaving exploration strategy; nil means
	// sched.None.
	Strategy sched.Strategy
	// HangTimeout bounds spin-lock acquisition; a thread spinning longer
	// is reported as hung. Zero selects DefaultHangTimeout.
	HangTimeout time.Duration
	// OnInconsistency, when set, is invoked synchronously at the moment a
	// durable side effect based on non-persisted data is detected, while
	// the pool still reflects the buggy state; the fuzzer uses it to
	// duplicate the pool at the crash point (paper §4.4).
	OnInconsistency func(*Env, *core.Inconsistency)
	// OnSync is the synchronization-inconsistency analogue.
	OnSync func(*Env, *core.SyncInconsistency)
	// OnHang is invoked when a spin lock exceeds HangTimeout.
	OnHang func(*Env, HangReport)
	// CollectStats enables per-address access statistics (needed to build
	// the priority queue; costs memory on large pools).
	CollectStats bool
	// TraceDepth, when positive, records the last TraceDepth PM accesses
	// in a ring buffer; bug reports attach the tail as interleaving
	// evidence.
	TraceDepth int
}

// HangReport describes a hung lock acquisition.
type HangReport struct {
	Thread pmem.ThreadID
	Addr   pmem.Addr
	Site   string
	Stack  []string
}

// Env is one instrumented execution environment: a pool plus the detection
// and exploration machinery shared by all threads of a fuzz campaign
// execution.
type Env struct {
	pool   *pmem.Pool
	labels *taint.Table
	det    *core.Detector
	cov    *cover.Coverage
	strat  sched.Strategy
	cfg    Config

	// stratNone records that the strategy is the no-op sched.None, letting
	// hooks skip the per-access interface calls entirely.
	stratNone bool

	// batch runs the deferred per-access analyses (alias pairs, statistics,
	// redundant stores) over thread log drains.
	batch *core.BatchAnalyzer

	trace *traceRing

	// recordOn is read on every store hook; it is atomic so the common
	// recorder-off case costs one load instead of a mutex round trip.
	recordOn atomic.Bool
	recMu    sync.Mutex
	written  map[pmem.Addr]struct{} // word-aligned offsets overwritten

	// cancelled is checked at the top of every pool-mutating hook; the
	// validation watchdog sets it to stop an abandoned recovery goroutine
	// from mutating its pool after the wall-clock deadline expired.
	cancelled atomic.Bool

	threadsMu sync.Mutex
	nextTID   pmem.ThreadID

	// lockMu guards the volatile lock-ownership bookkeeping below. It is
	// not part of the PM image: holders are recorded so a thread spinning
	// on a lock whose owner has already exited — a leaked lock from a
	// missing-unlock bug, or an owner abandoned after its own hang — can
	// fail fast instead of burning the full hang timeout. A held lock
	// with NO recorded holder (e.g. a persistent lock word left set in a
	// crash image that recovery then trips over) keeps the timeout path:
	// absence of an owner is exactly the recovery-hang case the timeout
	// exists to report.
	lockMu      sync.Mutex
	lockHolders map[pmem.Addr]pmem.ThreadID
	liveThreads map[pmem.ThreadID]struct{}
}

// NewEnv creates an environment over the given pool.
func NewEnv(pool *pmem.Pool, cfg Config) *Env {
	if cfg.Strategy == nil {
		cfg.Strategy = sched.None{}
	}
	if cfg.HangTimeout <= 0 {
		cfg.HangTimeout = DefaultHangTimeout
	}
	labels := taint.NewTable()
	e := &Env{
		pool:   pool,
		labels: labels,
		det:    core.NewDetector(labels),
		cov:    cover.New(),
		strat:  cfg.Strategy,
		cfg:    cfg,
	}
	_, e.stratNone = cfg.Strategy.(sched.None)
	e.lockHolders = make(map[pmem.Addr]pmem.ThreadID)
	e.liveThreads = make(map[pmem.ThreadID]struct{})
	e.batch = core.NewBatchAnalyzer(e.det, e.cov.Alias, cfg.CollectStats)
	if cfg.TraceDepth > 0 {
		e.trace = newTraceRing(cfg.TraceDepth)
	}
	return e
}

// Pool returns the environment's pool.
func (e *Env) Pool() *pmem.Pool { return e.pool }

// Detector returns the environment's PM checkers.
func (e *Env) Detector() *core.Detector { return e.det }

// Coverage returns the environment's coverage maps.
func (e *Env) Coverage() *cover.Coverage { return e.cov }

// Labels returns the environment's taint table.
func (e *Env) Labels() *taint.Table { return e.labels }

// Strategy returns the interleaving strategy in use.
func (e *Env) Strategy() sched.Strategy { return e.strat }

// BeginExec notifies the strategy that an execution with n worker threads is
// starting.
func (e *Env) BeginExec(n int) { e.strat.BeginExec(n) }

// EndExec notifies the strategy that the execution finished.
func (e *Env) EndExec() { e.strat.EndExec() }

// Spawn allocates the next thread handle and registers it with the strategy.
func (e *Env) Spawn() *Thread {
	e.threadsMu.Lock()
	id := e.nextTID
	e.nextTID++
	e.threadsMu.Unlock()
	e.lockMu.Lock()
	e.liveThreads[id] = struct{}{}
	e.lockMu.Unlock()
	e.strat.ThreadStart(id)
	th := &Thread{ID: id, env: e, sites: site.NewCache()}
	if e.trace != nil {
		th.shard = e.trace.shardFor(id)
	}
	return th
}

// AnnotateSyncVar registers a persistent synchronization variable annotation
// (the pm_sync_var_hint equivalent, paper §5).
func (e *Env) AnnotateSyncVar(v core.SyncVar) { e.det.AnnotateSyncVar(v) }

// noteLockAcquired records t as the volatile owner of the lock word.
func (e *Env) noteLockAcquired(addr pmem.Addr, t pmem.ThreadID) {
	e.lockMu.Lock()
	e.lockHolders[addr] = t
	e.lockMu.Unlock()
}

// noteLockReleased clears the volatile owner of the lock word.
func (e *Env) noteLockReleased(addr pmem.Addr) {
	e.lockMu.Lock()
	delete(e.lockHolders, addr)
	e.lockMu.Unlock()
}

// noteThreadExit removes t from the live set. Locks t still holds stay in
// lockHolders pointing at a dead thread, which is what lets their waiters
// fail fast.
func (e *Env) noteThreadExit(t pmem.ThreadID) {
	e.lockMu.Lock()
	delete(e.liveThreads, t)
	e.lockMu.Unlock()
}

// lockUnacquirable reports whether the lock word can never be granted to
// thread self: its recorded owner has exited (no live thread can release
// it), or the owner is self (the locks are non-recursive, so a thread
// spinning on a lock it already holds — the classic consequence of a
// missing-unlock bug earlier in its own op stream — waits forever). Either
// way the waiter is hung no matter how long it spins.
func (e *Env) lockUnacquirable(addr pmem.Addr, self pmem.ThreadID) bool {
	e.lockMu.Lock()
	defer e.lockMu.Unlock()
	holder, held := e.lockHolders[addr]
	if !held {
		return false
	}
	if holder == self {
		return true
	}
	_, live := e.liveThreads[holder]
	return !live
}

// Stats returns the per-address access statistics collected so far. With the
// epoch-log hooks, statistics become visible when a thread's log drains (sync
// points, full log, thread exit); callers read them at quiescent points.
func (e *Env) Stats() map[pmem.Addr]*sched.AddrStats {
	return e.batch.Stats()
}

// Batch returns the environment's batch analyzer; tests use it to inspect
// drain clocks.
func (e *Env) Batch() *core.BatchAnalyzer { return e.batch }

// CancelError is panicked by a hook call on a cancelled environment. The
// goroutine driving the cancelled execution recovers it and exits; unlike
// HangError it is not a finding, only a teardown signal.
type CancelError struct{}

// Error implements error.
func (CancelError) Error() string { return "rt: execution environment cancelled" }

// Cancel marks the environment cancelled: every subsequent pool-mutating hook
// call panics CancelError, so a goroutine stuck in an instrumented loop stops
// touching the pool at its next access. The validation watchdog calls it when
// a recovery run exceeds its wall-clock deadline. Goroutines that never call
// another hook (a plain `for {}`) cannot be stopped — Go has no goroutine
// kill — but they also cannot corrupt the pool.
func (e *Env) Cancel() { e.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (e *Env) Cancelled() bool { return e.cancelled.Load() }

// checkCancel panics CancelError when the environment is cancelled. One
// atomic load on the hot path, same pattern as recordOn.
func (e *Env) checkCancel() {
	if e.cancelled.Load() {
		panic(CancelError{})
	}
}

// EnableWriteRecorder starts recording every word offset written through the
// hooks; post-failure validation uses it to check whether recovery overwrote
// the durable side effects of a detected inconsistency.
func (e *Env) EnableWriteRecorder() {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	e.written = make(map[pmem.Addr]struct{})
	e.recordOn.Store(true)
}

// WrittenWords returns the recorded word-aligned offsets.
func (e *Env) WrittenWords() map[pmem.Addr]struct{} {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	out := make(map[pmem.Addr]struct{}, len(e.written))
	for a := range e.written {
		out[a] = struct{}{}
	}
	return out
}

// RangeOverwritten reports whether every word of the range was overwritten
// since EnableWriteRecorder.
func (e *Env) RangeOverwritten(r pmem.Range) bool {
	if !e.recordOn.Load() {
		return false
	}
	e.recMu.Lock()
	defer e.recMu.Unlock()
	if r.Len == 0 {
		return true
	}
	for w := r.Off / pmem.WordSize; w <= (r.End()-1)/pmem.WordSize; w++ {
		if _, ok := e.written[w*pmem.WordSize]; !ok {
			return false
		}
	}
	return true
}

func (e *Env) recordWrite(addr pmem.Addr, n uint64) {
	if !e.recordOn.Load() || n == 0 {
		return
	}
	e.recMu.Lock()
	defer e.recMu.Unlock()
	for w := addr / pmem.WordSize; w <= (addr+n-1)/pmem.WordSize; w++ {
		e.written[w*pmem.WordSize] = struct{}{}
	}
}
