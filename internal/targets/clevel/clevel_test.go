package clevel

import (
	"fmt"
	"testing"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/validate"
)

func setup(t *testing.T) (*rt.Env, *rt.Thread, *HT, []validate.Result) {
	t.Helper()
	h := New()
	var caps []struct {
		in  *core.Inconsistency
		img []byte
	}
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{
		OnInconsistency: func(e *rt.Env, in *core.Inconsistency) {
			caps = append(caps, struct {
				in  *core.Inconsistency
				img []byte
			}{in, e.Pool().CrashImageWith([]pmem.Range{in.SideEffect})})
		},
	})
	th := env.Spawn()
	if err := h.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	var results []validate.Result
	factory := func() targets.Target { return New() }
	for _, c := range caps {
		results = append(results, validate.Inconsistency(factory, pmem.AdversarialState(c.img), c.in,
			validate.Options{Whitelist: core.NewWhitelist(pmdk.DefaultWhitelist()...)}))
	}
	return env, th, h, results
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("clevel")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Annotations() != 0 {
		t.Fatalf("clevel has no annotations")
	}
}

func TestPutGetDelete(t *testing.T) {
	_, th, h, _ := setup(t)
	if err := h.Put(th, "alpha", "one"); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok := h.Get(th, "alpha")
	if !ok || v != targets.Fingerprint("one") {
		t.Fatalf("get = %d %v", v, ok)
	}
	h.Put(th, "alpha", "two")
	if v, _ := h.Get(th, "alpha"); v != targets.Fingerprint("two") {
		t.Fatalf("update failed")
	}
	if !h.Delete(th, "alpha") {
		t.Fatalf("delete failed")
	}
	if _, ok := h.Get(th, "alpha"); ok {
		t.Fatalf("deleted key found")
	}
	if h.Delete(th, "alpha") {
		t.Fatalf("double delete must fail")
	}
}

func TestManyInserts(t *testing.T) {
	_, th, h, _ := setup(t)
	const n = 80
	for i := 0; i < n; i++ {
		if err := h.Put(th, fmt.Sprintf("key%04d", i), "v"); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok := h.Get(th, fmt.Sprintf("key%04d", i)); !ok {
			t.Fatalf("key%04d lost", i)
		}
	}
}

// TestConstructorInconsistencyIsBenign is the Figure 7 scenario end to end:
// the constructor produces intra-thread inconsistencies, and post-failure
// validation classifies every one as a false positive (validated through the
// rebuild, or whitelisted through mini-PMDK's transactional allocation).
func TestConstructorInconsistencyIsBenign(t *testing.T) {
	env, _, _, results := setup(t)
	ins := env.Detector().Inconsistencies()
	if len(ins) == 0 {
		t.Fatalf("the constructor must produce inconsistencies (Figure 7)")
	}
	if len(results) == 0 {
		t.Fatalf("no validations ran")
	}
	for i, r := range results {
		if r.Status == core.StatusBug {
			t.Fatalf("validation %d = bug; clevel has no true bugs (got %+v)", i, r)
		}
	}
}

func TestConcurrentAllocCandidatesAreWhitelisted(t *testing.T) {
	h := New()
	var caps []struct {
		in  *core.Inconsistency
		img []byte
	}
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{
		OnInconsistency: func(e *rt.Env, in *core.Inconsistency) {
			caps = append(caps, struct {
				in  *core.Inconsistency
				img []byte
			}{in, e.Pool().CrashImageWith([]pmem.Range{in.SideEffect})})
		},
	})
	th := env.Spawn()
	if err := h.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	caps = caps[:0] // ignore constructor findings
	// Two threads allocating via AllocRedo: the second reads the first's
	// dirty bump pointer and makes durable records from it.
	t1, t2 := env.Spawn(), env.Spawn()
	h.Put(t1, "k1", "v1")
	h.Put(t2, "k2", "v2")
	h.Put(t1, "k3", "v3")
	wl := core.NewWhitelist(pmdk.DefaultWhitelist()...)
	factory := func() targets.Target { return New() }
	for _, c := range caps {
		if c.in.Kind != core.KindInter {
			continue
		}
		r := validate.Inconsistency(factory, pmem.AdversarialState(c.img), c.in, validate.Options{Whitelist: wl})
		if r.Status == core.StatusBug {
			t.Fatalf("allocator inconsistency must be whitelisted or validated, got bug: %+v", c.in)
		}
	}
}

func TestCrashMidConstructionRebuilds(t *testing.T) {
	// Crash while the constructor transaction is open: recovery must
	// revert and rebuild a working index.
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{})
	th := env.Spawn()
	h.pool = pmdk.Create(th)
	cons, _ := h.pool.Alloc(th, 64)
	h.pool.SetRoot(th, cons)
	tx := h.pool.Begin(th)
	tx.AddRange(cons, 8)
	// Crash before commit.
	img := env.Pool().CrashImage()

	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := h2.Put(th2, "k", "v"); err != nil {
		t.Fatalf("put after rebuild: %v", err)
	}
	if _, ok := h2.Get(th2, "k"); !ok {
		t.Fatalf("rebuilt index must work")
	}
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	env, th, h, _ := setup(t)
	for i := 0; i < 30; i++ {
		h.Put(th, fmt.Sprintf("key%04d", i), "v")
	}
	img := env.Pool().CrashImage()
	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := 0; i < 30; i++ {
		if _, ok := h2.Get(th2, fmt.Sprintf("key%04d", i)); !ok {
			t.Fatalf("persisted key%04d lost", i)
		}
	}
}

func TestRecoverEmptyPoolFails(t *testing.T) {
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{})
	if err := h.Recover(env.Spawn()); err == nil {
		t.Fatalf("recover on empty pool must fail")
	}
}
