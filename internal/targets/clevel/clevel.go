// Package clevel reimplements clevel hashing (USENIX ATC '20), the lock-free
// PM hash index the paper evaluates. PMRace found no true bugs in clevel;
// instead it exercises the false-positive machinery (paper §4.4, Figure 7,
// Table 3):
//
//   - The constructor allocates the metadata object and then assigns the
//     first level through the not-yet-persisted metadata pointer inside a
//     mini-PMDK transaction — an intra-thread inconsistency that post-failure
//     validation classifies as benign, because transaction recovery rebuilds
//     the index (the undo log reverts the metadata object).
//   - Concurrent inserts allocate nodes with redo-logged allocation
//     (pmdk.AllocRedo); reads of the non-persisted bump pointer flow into
//     durable bookkeeping — inter-thread inconsistencies covered by the
//     default whitelist ("transactional allocations in PMDK").
//
// The index itself is a two-level hash: a top level of buckets probed first
// and a bottom level for displaced keys, with CAS-claimed slots and no
// locks (searches and inserts are lock-free).
package clevel

import (
	"errors"
	"strconv"

	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func init() {
	targets.Register("clevel", func() targets.Target { return New() })
}

const (
	topBuckets    = 32
	bottomBuckets = 64
	slotsPerBkt   = 4
	bktSize       = slotsPerBkt * 16 // (key,val) pairs

	// Metadata object fields (the clevel_hash "level_meta").
	metaFirstLevel = 0  // top level pointer (Figure 7's m->first_level)
	metaLastLevel  = 8  // bottom level pointer
	metaIsResizing = 16 // resize flag (unused: the repro does not resize)
	metaSize       = 64
)

// HT is one clevel instance.
type HT struct {
	pool *pmdk.ObjPool
	meta pmem.Addr
}

// New creates an unopened instance.
func New() *HT { return &HT{} }

// Name implements targets.Target.
func (h *HT) Name() string { return "clevel" }

// PoolSize implements targets.Target.
func (h *HT) PoolSize() uint64 { return 512 << 10 }

// Annotations implements targets.Target: clevel is lock-free, no persistent
// synchronization variables (paper Table 3: 0 annotations).
func (h *HT) Annotations() int { return 0 }

// Setup implements targets.Target: format the pool, allocate the root
// ("cons") slot, and construct the index inside a transaction (Figure 7).
func (h *HT) Setup(t *rt.Thread) error {
	h.pool = pmdk.Create(t)
	cons, err := h.pool.Alloc(t, 64)
	if err != nil {
		return err
	}
	h.pool.SetRoot(t, cons)
	return h.construct(t, cons)
}

// construct mirrors Figure 7: root->cons = make_persistent<clevel_hash>()
// runs inside a transaction; the metadata handle is stored to the cons slot
// without a flush, read back while still non-persisted
// (clevel_hash.hpp:298), and the first level is assigned through that dirty
// handle (clevel_hash.hpp:300) — a PM intra-thread inconsistency whose
// durable side effect the transaction's recovery overwrites when the index
// is rebuilt, i.e. a benign inconsistency that post-failure validation
// classifies as a false positive.
func (h *HT) construct(t *rt.Thread, cons pmem.Addr) error {
	tx := h.pool.Begin(t)
	if err := tx.AddRange(cons, 8); err != nil {
		tx.Abort()
		return err
	}
	metaOff, err := tx.Alloc(metaSize)
	if err != nil {
		tx.Abort()
		return err
	}
	// make_persistent<level_bucket>() for both levels.
	first, err := tx.Alloc(topBuckets * bktSize)
	if err != nil {
		tx.Abort()
		return err
	}
	last, err := tx.Alloc(bottomBuckets * bktSize)
	if err != nil {
		tx.Abort()
		return err
	}
	zero := make([]byte, bktSize)
	for i := uint64(0); i < topBuckets; i++ {
		t.NTStoreBytes(first+i*bktSize, zero, taint.None, taint.None)
	}
	for i := uint64(0); i < bottomBuckets; i++ {
		t.NTStoreBytes(last+i*bktSize, zero, taint.None, taint.None)
	}
	t.Fence()

	// Store the metadata handle without flushing (the transaction commit
	// persists it later) ...
	t.Store64(cons, metaOff, taint.None, taint.None)
	// ... read the non-persisted handle back (Figure 7 line 298) ...
	m, mlab := t.Load64(cons)
	// ... and assign the levels through it (line 300): durable side
	// effects whose addresses derive from non-persisted data.
	t.Store64(m+metaFirstLevel, first, taint.None, mlab)
	t.Store64(m+metaLastLevel, last, taint.None, mlab)
	t.Store64(m+metaIsResizing, 0, taint.None, taint.None)
	t.Persist(m, metaSize)
	t.Persist(cons, 8)
	tx.Commit()
	h.meta = m
	return nil
}

// Exec implements targets.Target.
func (h *HT) Exec(t *rt.Thread, op workload.Op) error {
	t.Branch()
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		h.Get(t, op.Key)
	case workload.OpSet, workload.OpAdd, workload.OpReplace, workload.OpAppend, workload.OpPrepend:
		return h.Put(t, op.Key, op.Value)
	case workload.OpIncr, workload.OpDecr:
		n, _ := strconv.Atoi(op.Value)
		return h.Put(t, op.Key, strconv.Itoa(n+100))
	case workload.OpDelete:
		h.Delete(t, op.Key)
	}
	return nil
}

func (h *HT) levels(t *rt.Thread) (first, last pmem.Addr, lab taint.Label) {
	f, flab := t.Load64(h.meta + metaFirstLevel)
	l, llab := t.Load64(h.meta + metaLastLevel)
	return f, l, t.Env().Labels().Union(flab, llab)
}

// Get probes the top level then the bottom level, lock-free.
func (h *HT) Get(t *rt.Thread, key string) (uint64, bool) {
	t.Branch()
	kf := targets.Fingerprint(key)
	first, last, _ := h.levels(t)
	if v, ok := probe(t, first, kf%topBuckets, kf); ok {
		return v, true
	}
	return probe(t, last, kf%bottomBuckets, kf)
}

func probe(t *rt.Thread, level pmem.Addr, idx, kf uint64) (uint64, bool) {
	b := level + idx*bktSize
	for i := 0; i < slotsPerBkt; i++ {
		k, _ := t.Load64(b + pmem.Addr(i*16))
		if k == kf {
			v, _ := t.Load64(b + pmem.Addr(i*16) + 8)
			return v, true
		}
	}
	return 0, false
}

// Put claims a slot with CAS (lock-free), trying the top level first and
// displacing to the bottom level when full. Each insert also records a
// bookkeeping node through redo-logged allocation — the source of the
// whitelisted inter-thread inconsistencies.
func (h *HT) Put(t *rt.Thread, key, val string) error {
	t.Branch()
	kf, vf := targets.Fingerprint(key), targets.Fingerprint(val)
	first, last, lab := h.levels(t)

	// Redo-logged allocation of an insert-record node (crash-consistent,
	// whitelisted when its dirty bump pointer flows onward).
	node, err := h.pool.AllocRedo(t, 64)
	if err != nil {
		return err
	}
	t.NTStore64(node, kf, taint.None, taint.None)
	t.NTStore64(node+8, vf, taint.None, taint.None)
	t.Fence()

	for _, lv := range [2]struct {
		level pmem.Addr
		idx   uint64
	}{{first, kf % topBuckets}, {last, kf % bottomBuckets}} {
		b := lv.level + lv.idx*bktSize
		// Update in place if present.
		for i := 0; i < slotsPerBkt; i++ {
			slot := b + pmem.Addr(i*16)
			k, _ := t.Load64(slot)
			if k == kf {
				t.Store64(slot+8, vf, taint.None, lab)
				t.Persist(slot+8, 8)
				return nil
			}
		}
		// Claim an empty slot with CAS.
		for i := 0; i < slotsPerBkt; i++ {
			slot := b + pmem.Addr(i*16)
			ok, _, _ := t.CAS64(slot, 0, kf, taint.None, lab)
			if ok {
				t.Store64(slot+8, vf, taint.None, lab)
				t.Persist(slot, 16)
				return nil
			}
		}
	}
	return errors.New("clevel: both levels full for key")
}

// Delete zeroes a matching slot with CAS.
func (h *HT) Delete(t *rt.Thread, key string) bool {
	t.Branch()
	kf := targets.Fingerprint(key)
	first, last, lab := h.levels(t)
	for _, lv := range [2]struct {
		level pmem.Addr
		idx   uint64
	}{{first, kf % topBuckets}, {last, kf % bottomBuckets}} {
		b := lv.level + lv.idx*bktSize
		for i := 0; i < slotsPerBkt; i++ {
			slot := b + pmem.Addr(i*16)
			k, _ := t.Load64(slot)
			if k == kf {
				ok, _, _ := t.CAS64(slot, kf, 0, taint.None, lab)
				if ok {
					t.Persist(slot, 8)
					return true
				}
			}
		}
	}
	return false
}

// Recover implements targets.Target: mini-PMDK recovery reverts any
// uncommitted constructor transaction (the undo log resets the cons slot and
// rolls the allocator back), and an interrupted construction is then redone
// from scratch — the rebuild overwrites the metadata object at the same heap
// offsets, which is exactly the overwrite that validates the Figure 7
// inconsistency as benign.
func (h *HT) Recover(t *rt.Thread) error {
	pool, err := pmdk.Open(t)
	if err != nil {
		return err
	}
	h.pool = pool
	cons, _ := pool.Root(t)
	if cons == 0 {
		return errors.New("clevel: no root object")
	}
	meta, _ := t.Load64(cons)
	if meta == 0 {
		// Construction never committed: rebuild the index.
		return h.construct(t, cons)
	}
	h.meta = meta
	return nil
}
