// Package targets defines the interface between the fuzzer and the PM
// systems under test, plus a registry of the five concurrent PM systems the
// paper evaluates (Table 1): P-CLHT, clevel hashing, CCEH, FAST-FAIR and
// memcached-pmem. Each system is re-implemented in Go against the
// instrumentation runtime with the paper's bug inventory seeded at the
// corresponding algorithmic locations (see DESIGN.md §3).
package targets
