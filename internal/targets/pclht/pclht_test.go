package pclht

import (
	"fmt"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func setup(t *testing.T) (*rt.Env, *rt.Thread, *HT) {
	t.Helper()
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{HangTimeout: 50 * time.Millisecond})
	th := env.Spawn()
	if err := h.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th, h
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("pclht")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Name() != "pclht" || tgt.Annotations() != 4 {
		t.Fatalf("target meta wrong: %s %d", tgt.Name(), tgt.Annotations())
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	_, th, h := setup(t)
	if err := h.Put(th, "alpha", "one"); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok := h.Get(th, "alpha")
	if !ok || v != targets.Fingerprint("one") {
		t.Fatalf("get = %d %v", v, ok)
	}
	if _, ok := h.Get(th, "missing"); ok {
		t.Fatalf("missing key must not be found")
	}
}

func TestPutOverwritesExisting(t *testing.T) {
	_, th, h := setup(t)
	h.Put(th, "k", "v1")
	h.Put(th, "k", "v2")
	v, ok := h.Get(th, "k")
	if !ok || v != targets.Fingerprint("v2") {
		t.Fatalf("get after overwrite = %d %v", v, ok)
	}
	if got := h.Count(th); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestDelete(t *testing.T) {
	_, th, h := setup(t)
	h.Put(th, "k", "v")
	if !h.Delete(th, "k") {
		t.Fatalf("delete must succeed")
	}
	if _, ok := h.Get(th, "k"); ok {
		t.Fatalf("deleted key must be gone")
	}
	if h.Delete(th, "k") {
		t.Fatalf("double delete must fail")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	_, th, h := setup(t)
	h.Put(th, "k", "v1")
	if !h.Update(th, "k", "v2") {
		t.Fatalf("update must succeed")
	}
	v, _ := h.Get(th, "k")
	if v != targets.Fingerprint("v2") {
		t.Fatalf("value = %d", v)
	}
	// The bucket must still be writable (lock released on success path).
	h.Put(th, "k", "v3")
}

// TestBug5UpdateMissingKeyLeaksLock demonstrates the conventional
// concurrency bug (Table 2, Bug 5): update on an absent key leaks the bucket
// lock and later writers hang.
func TestBug5UpdateMissingKeyLeaksLock(t *testing.T) {
	var hung *rt.HangReport
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{
		HangTimeout: 20 * time.Millisecond,
		OnHang:      func(_ *rt.Env, r rt.HangReport) { hung = &r },
	})
	th := env.Spawn()
	if err := h.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if h.Update(th, "absent", "v") {
		t.Fatalf("update of absent key must fail")
	}
	defer func() {
		if _, ok := recover().(rt.HangError); !ok {
			t.Fatalf("expected hang from leaked bucket lock")
		}
		if hung == nil {
			t.Fatalf("OnHang must fire")
		}
	}()
	h.Put(th, "absent", "v") // same bucket: hangs on the leaked lock
}

func TestResizeGrowsAndPreservesItems(t *testing.T) {
	_, th, h := setup(t)
	// Insert enough distinct keys to overflow buckets and force resizes.
	const n = 60
	for i := 0; i < n; i++ {
		if err := h.Put(th, fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	table, _ := th.Load64(h.root + fldHtOff)
	buckets, _ := th.Load64(table)
	if buckets <= initialBuckets {
		t.Fatalf("resize never happened: %d buckets", buckets)
	}
	for i := 0; i < n; i++ {
		v, ok := h.Get(th, fmt.Sprintf("key%03d", i))
		if !ok || v != targets.Fingerprint(fmt.Sprintf("val%03d", i)) {
			t.Fatalf("key%03d lost after resize (ok=%v)", i, ok)
		}
	}
}

// TestBug3IntraInconsistencyDuringResize: the resizing thread reads its own
// unflushed table_new and makes a durable GC record from it.
func TestBug3IntraInconsistencyDuringResize(t *testing.T) {
	env, th, h := setup(t)
	for i := 0; i < 60; i++ {
		h.Put(th, fmt.Sprintf("key%03d", i), "v")
	}
	foundIntra := false
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindIntra {
			foundIntra = true
		}
	}
	if !foundIntra {
		t.Fatalf("resize must produce the intra-thread GC inconsistency (Bug 3)")
	}
}

// TestBug2SyncInconsistencyRecorded: bucket-lock updates in PM are recorded
// as synchronization inconsistencies.
func TestBug2SyncInconsistencyRecorded(t *testing.T) {
	env, th, h := setup(t)
	h.Put(th, "k", "v")
	names := map[string]bool{}
	for _, si := range env.Detector().SyncInconsistencies() {
		names[si.Var.Name] = true
	}
	if !names["bucket-lock"] {
		t.Fatalf("bucket-lock updates must be detected, got %v", names)
	}
	if !names["status-lock"] {
		t.Fatalf("status-lock updates must be detected, got %v", names)
	}
}

// TestBug2LocksSurviveRecovery: a bucket lock persisted as held is not
// re-initialized by recovery, so post-recovery writers hang.
func TestBug2LocksSurviveRecovery(t *testing.T) {
	env, th, h := setup(t)
	h.Put(th, "k", "v")
	// Force a crash image in which some bucket lock is held.
	table, _ := th.Load64(h.root + fldHtOff)
	b := table + 64 // bucket 0
	th.SpinLock(b + bktLock)
	img := env.Pool().CrashImageWith([]pmem.Range{{Off: b + bktLock, Len: 8}})

	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 20 * time.Millisecond})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if lock, _ := th2.Load64(b + bktLock); lock != 1 {
		t.Fatalf("bucket lock must still be held after recovery (Bug 2), got %d", lock)
	}
	// The re-initialized global locks are the validated false positives.
	if lock, _ := th2.Load64(h2.root + fldResizeLock); lock != 0 {
		t.Fatalf("resize lock must be re-initialized on recovery")
	}
}

// TestBug1DataLossAcrossCrash reproduces Figure 3's timeline directly: an
// item inserted through a not-yet-persisted table pointer is lost when the
// crash reverts the pointer.
func TestBug1DataLossAcrossCrash(t *testing.T) {
	env, th, h := setup(t)
	// Fill to the brink of resize, then trigger it.
	var keys []string
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key%03d", i)
		keys = append(keys, k)
		h.Put(th, k, "v")
	}
	inters := 0
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter {
			inters++
		}
	}
	// Sequential execution: the cross-thread window is not exercised, so
	// no inter inconsistency is expected here; the fuzzer integration
	// test (internal/fuzz) drives the concurrent schedule. This test
	// documents the sequential baseline.
	_ = inters
	// All committed items must be durable after persistence completes.
	img := env.Pool().CrashImage()
	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, k := range keys {
		if _, ok := h2.Get(th2, k); !ok {
			t.Fatalf("persisted key %s lost across clean crash", k)
		}
	}
}

// TestBug4RedundantWriteDetected: migration writes old bucket keys back
// unchanged.
func TestBug4RedundantWriteDetected(t *testing.T) {
	env, th, h := setup(t)
	for i := 0; i < 60; i++ {
		h.Put(th, fmt.Sprintf("key%03d", i), "v")
	}
	if len(env.Detector().RedundantStores()) == 0 {
		t.Fatalf("migration must produce redundant-store reports (Bug 4)")
	}
}

func TestExecDispatch(t *testing.T) {
	_, th, h := setup(t)
	ops := []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpGet, Key: "a"},
		{Kind: workload.OpBGet, Key: "a"},
		{Kind: workload.OpAdd, Key: "b", Value: "2"},
		{Kind: workload.OpIncr, Key: "c", Value: "3"},
		{Kind: workload.OpDecr, Key: "c", Value: "1"},
		{Kind: workload.OpReplace, Key: "a", Value: "9"},
		{Kind: workload.OpDelete, Key: "b"},
	}
	for _, op := range ops {
		if err := h.Exec(th, op); err != nil {
			t.Fatalf("exec %v: %v", op, err)
		}
	}
	if _, ok := h.Get(th, "b"); ok {
		t.Fatalf("delete via Exec failed")
	}
}

func TestRecoverWithoutRootFails(t *testing.T) {
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{})
	th := env.Spawn()
	if err := h.Recover(th); err == nil {
		t.Fatalf("recover on empty pool must fail")
	}
}

func TestCountMatchesInserts(t *testing.T) {
	_, th, h := setup(t)
	for i := 0; i < 10; i++ {
		h.Put(th, fmt.Sprintf("k%d", i), "v")
	}
	if got := h.Count(th); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}
