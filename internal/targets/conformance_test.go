package targets_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/targets/cceh"
	"github.com/pmrace-go/pmrace/internal/targets/clevel"
	"github.com/pmrace-go/pmrace/internal/targets/fastfair"
	"github.com/pmrace-go/pmrace/internal/targets/memcached"
	"github.com/pmrace-go/pmrace/internal/targets/pclht"
	"github.com/pmrace-go/pmrace/internal/targets/pclhtgen"
	"github.com/pmrace-go/pmrace/internal/targets/pmwal"
)

// kv is the uniform adapter the conformance suite drives: every evaluated
// system is, at its interface, a key-value structure.
type kv interface {
	targets.Target
	put(t *rt.Thread, key, val string) error
	get(t *rt.Thread, key string) (uint64, bool)
	del(t *rt.Thread, key string) bool
}

type pclhtKV struct{ *pclht.HT }

func (a pclhtKV) put(t *rt.Thread, k, v string) error       { return a.Put(t, k, v) }
func (a pclhtKV) get(t *rt.Thread, k string) (uint64, bool) { return a.Get(t, k) }
func (a pclhtKV) del(t *rt.Thread, k string) bool           { return a.Delete(t, k) }

// pclhtgenKV drives the pminstr-generated shadow of P-CLHT through the same
// suite: auto-instrumentation must not change observable behaviour.
type pclhtgenKV struct{ *pclhtgen.HT }

func (a pclhtgenKV) put(t *rt.Thread, k, v string) error       { return a.Put(t, k, v) }
func (a pclhtgenKV) get(t *rt.Thread, k string) (uint64, bool) { return a.Get(t, k) }
func (a pclhtgenKV) del(t *rt.Thread, k string) bool           { return a.Delete(t, k) }

type clevelKV struct{ *clevel.HT }

func (a clevelKV) put(t *rt.Thread, k, v string) error       { return a.Put(t, k, v) }
func (a clevelKV) get(t *rt.Thread, k string) (uint64, bool) { return a.Get(t, k) }
func (a clevelKV) del(t *rt.Thread, k string) bool           { return a.Delete(t, k) }

type ccehKV struct{ *cceh.HT }

func (a ccehKV) put(t *rt.Thread, k, v string) error       { return a.Put(t, k, v) }
func (a ccehKV) get(t *rt.Thread, k string) (uint64, bool) { return a.Get(t, k) }
func (a ccehKV) del(t *rt.Thread, k string) bool           { return a.Delete(t, k) }

type fastfairKV struct{ *fastfair.Tree }

func (a fastfairKV) put(t *rt.Thread, k, v string) error       { return a.Insert(t, k, v) }
func (a fastfairKV) get(t *rt.Thread, k string) (uint64, bool) { return a.Get(t, k) }
func (a fastfairKV) del(t *rt.Thread, k string) bool           { return a.Delete(t, k) }

type memcachedKV struct{ *memcached.KV }

func (a memcachedKV) put(t *rt.Thread, k, v string) error { return a.Set(t, k, []byte(v)) }
func (a memcachedKV) get(t *rt.Thread, k string) (uint64, bool) {
	v, ok := a.KV.Get(t, k)
	if !ok {
		return 0, false
	}
	return targets.Fingerprint(string(v)), true
}
func (a memcachedKV) del(t *rt.Thread, k string) bool { return a.KV.Delete(t, k) }

type pmwalKV struct{ *pmwal.WAL }

func (a pmwalKV) put(t *rt.Thread, k, v string) error { return a.Put(t, k, []byte(v)) }
func (a pmwalKV) get(t *rt.Thread, k string) (uint64, bool) {
	v, ok := a.WAL.Get(t, k)
	if !ok {
		return 0, false
	}
	return targets.Fingerprint(string(v)), true
}
func (a pmwalKV) del(t *rt.Thread, k string) bool { return a.WAL.Delete(t, k) }

// systems lists a constructor per evaluated target; lruEvicts marks systems
// that may legitimately drop old keys under memory pressure.
var systems = []struct {
	name      string
	make      func() kv
	lruEvicts bool
}{
	{"pclht", func() kv { return pclhtKV{pclht.New()} }, false},
	{"pclht-gen", func() kv { return pclhtgenKV{pclhtgen.New()} }, false},
	{"clevel", func() kv { return clevelKV{clevel.New()} }, false},
	{"cceh", func() kv { return ccehKV{cceh.New()} }, false},
	{"fastfair", func() kv { return fastfairKV{fastfair.New()} }, false},
	{"memcached", func() kv { return memcachedKV{memcached.New()} }, true},
	{"pmwal", func() kv { return pmwalKV{pmwal.New()} }, false},
}

func newInstr(t *testing.T, tgt targets.Target) (*rt.Env, *rt.Thread) {
	t.Helper()
	env := rt.NewEnv(pmem.New(tgt.PoolSize()), rt.Config{HangTimeout: 100 * time.Millisecond})
	th := env.Spawn()
	if err := tgt.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th
}

// TestConformanceSequentialModel runs a randomized put/get/delete workload
// against every system, checking each get against a map oracle. (Bounded
// keyspace keeps every structure within capacity; memcached is allowed to
// evict, so absent-but-expected keys are tolerated there.)
func TestConformanceSequentialModel(t *testing.T) {
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			s := sys.make()
			_, th := newInstr(t, s)
			oracle := map[string]string{}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("key%03d", rng.Intn(10))
				switch rng.Intn(4) {
				case 0, 1: // put
					val := fmt.Sprintf("val%06d", rng.Intn(1_000_000))
					if err := s.put(th, key, val); err != nil {
						t.Fatalf("op %d put: %v", i, err)
					}
					oracle[key] = val
				case 2: // get
					got, ok := s.get(th, key)
					want, exists := oracle[key]
					if exists != ok {
						if sys.lruEvicts && exists && !ok {
							delete(oracle, key) // evicted
							continue
						}
						t.Fatalf("op %d get(%s): present=%v, oracle=%v", i, key, ok, exists)
					}
					if ok && got != targets.Fingerprint(want) {
						t.Fatalf("op %d get(%s): wrong value", i, key)
					}
				default: // delete
					deleted := s.del(th, key)
					_, exists := oracle[key]
					if exists && !deleted && !sys.lruEvicts {
						t.Fatalf("op %d delete(%s): should have deleted", i, key)
					}
					delete(oracle, key)
				}
			}
		})
	}
}

// TestConformanceCrashDurability checks the fundamental PM contract on every
// system: once an operation completed (and thus flushed), its effect
// survives an immediate crash and recovery.
func TestConformanceCrashDurability(t *testing.T) {
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			s := sys.make()
			env, th := newInstr(t, s)
			n := 10
			if !sys.lruEvicts {
				n = 40
			}
			for i := 0; i < n; i++ {
				if err := s.put(th, fmt.Sprintf("key%03d", i), "durable"); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			img := env.Pool().CrashImage()
			s2 := sys.make()
			env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 100 * time.Millisecond})
			th2 := env2.Spawn()
			if err := s2.Recover(th2); err != nil {
				t.Fatalf("recover: %v", err)
			}
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key%03d", i)
				got, ok := s2.get(th2, k)
				if !ok || got != targets.Fingerprint("durable") {
					t.Fatalf("completed put of %s lost across crash (ok=%v)", k, ok)
				}
			}
		})
	}
}

// TestConformanceRecoveryIdempotent: recovering twice from the same image
// must work and preserve the data (restarts can crash and restart again).
func TestConformanceRecoveryIdempotent(t *testing.T) {
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			s := sys.make()
			env, th := newInstr(t, s)
			s.put(th, "stable", "v")
			img := env.Pool().CrashImage()

			s2 := sys.make()
			env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 100 * time.Millisecond})
			th2 := env2.Spawn()
			if err := s2.Recover(th2); err != nil {
				t.Fatalf("first recover: %v", err)
			}
			img2 := env2.Pool().CrashImage()

			s3 := sys.make()
			env3 := rt.NewEnv(pmem.FromImage(img2), rt.Config{HangTimeout: 100 * time.Millisecond})
			th3 := env3.Spawn()
			if err := s3.Recover(th3); err != nil {
				t.Fatalf("second recover: %v", err)
			}
			if _, ok := s3.get(th3, "stable"); !ok {
				t.Fatalf("data lost across double recovery")
			}
		})
	}
}

// TestConformanceEADRSafe: on an eADR platform every completed operation is
// durable even without any flushes — the simulated battery-backed cache
// keeps all five systems crash-safe by construction.
func TestConformanceEADRSafe(t *testing.T) {
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			s := sys.make()
			env := rt.NewEnv(pmem.NewWithOptions(s.PoolSize(), pmem.Options{EADR: true}),
				rt.Config{HangTimeout: 100 * time.Millisecond})
			th := env.Spawn()
			if err := s.Setup(th); err != nil {
				t.Fatalf("setup: %v", err)
			}
			s.put(th, "k", "v")
			if got := len(env.Detector().Candidates()); got != 0 {
				t.Fatalf("eADR execution produced %d dirty-read candidates", got)
			}
			img := env.Pool().CrashImage()
			s2 := sys.make()
			env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 100 * time.Millisecond})
			th2 := env2.Spawn()
			if err := s2.Recover(th2); err != nil {
				t.Fatalf("recover: %v", err)
			}
			if _, ok := s2.get(th2, "k"); !ok {
				t.Fatalf("eADR store lost across crash")
			}
		})
	}
}

// TestConformanceRandomCrashRecovery crashes every system at arbitrary
// operation boundaries and requires recovery to (a) complete without
// hanging, and (b) leave a usable structure: a fresh put/get works after the
// restart. Crash images at op boundaries contain only completed, flushed
// state, so pre-failure locks are never persisted as held.
func TestConformanceRandomCrashRecovery(t *testing.T) {
	for _, sys := range systems {
		sys := sys
		t.Run(sys.name, func(t *testing.T) {
			s := sys.make()
			env, th := newInstr(t, s)
			rng := rand.New(rand.NewSource(7))
			var images [][]byte
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("key%03d", rng.Intn(12))
				switch rng.Intn(3) {
				case 0, 1:
					s.put(th, key, fmt.Sprintf("v%04d", i))
				default:
					s.del(th, key)
				}
				if i%10 == 9 {
					images = append(images, env.Pool().CrashImage())
				}
			}
			for n, img := range images {
				s2 := sys.make()
				env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 100 * time.Millisecond})
				th2 := env2.Spawn()
				if err := s2.Recover(th2); err != nil {
					t.Fatalf("image %d: recover: %v", n, err)
				}
				if err := s2.put(th2, "post-crash", "alive"); err != nil {
					t.Fatalf("image %d: post-recovery put: %v", n, err)
				}
				got, ok := s2.get(th2, "post-crash")
				if !ok || got != targets.Fingerprint("alive") {
					t.Fatalf("image %d: post-recovery structure unusable", n)
				}
			}
		})
	}
}
