package pmwal

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func setup(t *testing.T, w *WAL) (*rt.Env, *rt.Thread) {
	t.Helper()
	env := rt.NewEnv(pmem.New(w.PoolSize()), rt.Config{})
	th := env.Spawn()
	if err := w.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("pmwal")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Annotations() != 0 {
		t.Fatalf("pmwal uses a volatile log lock; no annotations expected")
	}
}

func TestPutGetDelete(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	if err := w.Put(th, "greeting", []byte("hello world")); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok := w.Get(th, "greeting")
	if !ok || string(v) != "hello world" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if _, ok := w.Get(th, "absent"); ok {
		t.Fatalf("absent key found")
	}
	if !w.Delete(th, "greeting") {
		t.Fatalf("delete failed")
	}
	if _, ok := w.Get(th, "greeting"); ok {
		t.Fatalf("deleted key found")
	}
	if w.Delete(th, "greeting") {
		t.Fatalf("double delete must report false")
	}
}

func TestPutOverwriteKeepsLatest(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	w.Put(th, "k", []byte("one"))
	w.Put(th, "k", []byte("two"))
	v, _ := w.Get(th, "k")
	if string(v) != "two" {
		t.Fatalf("get = %q", v)
	}
	if w.Live() != 1 {
		t.Fatalf("live = %d, want 1", w.Live())
	}
}

func TestConcatAndArith(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	w.Put(th, "k", []byte("mid"))
	if err := w.Concat(th, "k", []byte("-end"), true); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Concat(th, "k", []byte("start-"), false); err != nil {
		t.Fatalf("prepend: %v", err)
	}
	if v, _ := w.Get(th, "k"); string(v) != "start-mid-end" {
		t.Fatalf("value = %q", v)
	}
	w.Put(th, "n", []byte("10"))
	w.Arith(th, "n", "5", true)
	if v, _ := w.Get(th, "n"); string(v) != "15" {
		t.Fatalf("incr -> %q", v)
	}
	w.Arith(th, "n", "20", false)
	if v, _ := w.Get(th, "n"); string(v) != "0" {
		t.Fatalf("decr floor -> %q", v)
	}
}

func TestLimitsRejected(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	if err := w.Put(th, strings.Repeat("k", maxKey+1), []byte("v")); err == nil {
		t.Fatalf("oversized key accepted")
	}
	if err := w.Put(th, "k", make([]byte, maxVal+1)); err == nil {
		t.Fatalf("oversized value accepted")
	}
}

func TestCompactRewindsTail(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	for i := 0; i < 20; i++ {
		w.Put(th, fmt.Sprintf("key%02d", i%4), []byte(fmt.Sprintf("val%02d", i)))
	}
	w.Delete(th, "key00")
	before, _ := th.Load64(hdrTail)
	if err := w.Compact(th); err != nil {
		t.Fatalf("compact: %v", err)
	}
	after, _ := th.Load64(hdrTail)
	if after >= before {
		t.Fatalf("compact did not rewind the tail: %d -> %d", before, after)
	}
	if w.Live() != 3 {
		t.Fatalf("live = %d, want 3", w.Live())
	}
	for i := 17; i < 20; i++ {
		k := fmt.Sprintf("key%02d", i%4)
		if v, ok := w.Get(th, k); !ok || string(v) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("%s = %q %v after compact", k, v, ok)
		}
	}
	if _, ok := w.Get(th, "key00"); ok {
		t.Fatalf("deleted key resurrected by compact")
	}
	_ = env
}

// TestCompactTriggeredBySpacePressure: appends beyond the pool end must
// compact in place rather than fail while dead records exist.
func TestCompactTriggeredBySpacePressure(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	big := make([]byte, maxVal)
	for i := 0; ; i++ {
		if err := w.Put(th, "hot", big); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i > int(w.PoolSize()/recMax)+4 {
			break // wrote more bytes than the pool holds: compaction ran
		}
	}
	if v, ok := w.Get(th, "hot"); !ok || len(v) != maxVal {
		t.Fatalf("hot key lost under space pressure")
	}
}

// TestWAL1DirtyTailDetected: an append that reads another thread's
// unflushed tail pointer and durably writes its record there is the seeded
// inter-thread inconsistency WAL-1.
func TestWAL1DirtyTailDetected(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	w.Put(th, "warm", []byte("v"))
	// Emulate an append whose trailing tail persist has not run yet: the
	// writer re-stores the current tail value without flushing it.
	writer := env.Spawn()
	tail, _ := writer.Load64(hdrTail)
	writer.Store64(hdrTail, tail, taint.None, taint.None) //pmvet:ignore unflushed-store -- test emulates the WAL-1 dirty window
	reader := env.Spawn()
	if err := w.Put(reader, "race", []byte("payload")); err != nil {
		t.Fatalf("put: %v", err)
	}
	inters := 0
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter {
			inters++
		}
	}
	if inters == 0 {
		t.Fatalf("append through a dirty tail must confirm an inter inconsistency (WAL-1)")
	}
}

// TestWAL2DirtyCommitMarkerDetected: compaction reads a commit marker that
// another thread stored but has not flushed, and durably rewinds the tail
// (and copies records) based on it — seeded bug WAL-2.
func TestWAL2DirtyCommitMarkerDetected(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	w.Put(th, "a", []byte("v1"))
	w.Put(th, "b", []byte("v2"))
	rec := w.index[targets.Fingerprint("a")]
	// Emulate an in-flight commit: re-store the checksum without flushing.
	writer := env.Spawn()
	sum, _ := writer.Load64(rec + rCksum)
	writer.Store64(rec+rCksum, sum, taint.None, taint.None) //pmvet:ignore unflushed-store -- test emulates the WAL-2 dirty window
	reader := env.Spawn()
	if err := w.Compact(reader); err != nil {
		t.Fatalf("compact: %v", err)
	}
	inters := 0
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter {
			inters++
		}
	}
	if inters == 0 {
		t.Fatalf("compaction over a dirty commit marker must confirm an inter inconsistency (WAL-2)")
	}
}

// TestWAL3TornAppendDetected: a multi-line value is only partially flushed
// before the commit checksum reads it back, so the durable marker depends
// on the thread's own non-persisted stores — the seeded intra-thread
// inconsistency.
func TestWAL3TornAppendDetected(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	big := []byte(strings.Repeat("x", 200)) // spans 4 cache lines
	if err := w.Put(th, "torn", big); err != nil {
		t.Fatalf("put: %v", err)
	}
	intras := 0
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindIntra {
			intras++
		}
	}
	if intras == 0 {
		t.Fatalf("torn multi-line append must confirm an intra inconsistency (WAL-3): %+v",
			env.Detector().Inconsistencies())
	}
}

// TestFixedVariantClean: NewFixed persists everything before publication,
// so the same workloads produce zero dirty-read candidates.
func TestFixedVariantClean(t *testing.T) {
	w := NewFixed()
	env, th := setup(t, w)
	big := []byte(strings.Repeat("x", 200))
	for i := 0; i < 10; i++ {
		w.Put(th, fmt.Sprintf("k%d", i%3), big)
	}
	w.Delete(th, "k0")
	w.Compact(th)
	w.Put(th, "post", []byte("v"))
	if got := len(env.Detector().Candidates()); got != 0 {
		t.Fatalf("fixed variant produced %d dirty-read candidates", got)
	}
}

func TestRecoveryReplaysLog(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	for i := 0; i < 10; i++ {
		w.Put(th, fmt.Sprintf("key%02d", i), []byte(fmt.Sprintf("val%02d", i)))
	}
	w.Put(th, "key03", []byte("newer"))
	w.Delete(th, "key07")
	img := env.Pool().CrashImage()
	w2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := w2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if w2.Live() != 9 {
		t.Fatalf("recovered %d keys, want 9", w2.Live())
	}
	if v, ok := w2.Get(th2, "key03"); !ok || string(v) != "newer" {
		t.Fatalf("replay must keep the latest version: %q %v", v, ok)
	}
	if _, ok := w2.Get(th2, "key07"); ok {
		t.Fatalf("tombstone ignored during replay")
	}
	// The log must remain appendable: sequence numbers continue.
	if err := w2.Put(th2, "post-crash", []byte("alive")); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if v, ok := w2.Get(th2, "post-crash"); !ok || string(v) != "alive" {
		t.Fatalf("post-recovery structure unusable: %q %v", v, ok)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	w.Put(th, "good", []byte("value"))
	goodEnd, _ := th.Load64(hdrTail)
	// Fake a torn append: advance the tail over a record whose checksum
	// was never written (all-zero header fails validation).
	th.NTStore64(goodEnd+rSize, recMin, taint.None, taint.None)
	th.NTStore64(goodEnd+rKind, kindPut, taint.None, taint.None)
	th.NTStore64(hdrTail, goodEnd+recMin, taint.None, taint.None)
	th.Fence()
	img := env.Pool().CrashImage()
	w2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := w2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, ok := w2.Get(th2, "good"); !ok {
		t.Fatalf("intact record must survive the torn tail")
	}
	if w2.Live() != 1 {
		t.Fatalf("torn record replayed: live=%d", w2.Live())
	}
	if tail, _ := th2.Load64(hdrTail); tail != goodEnd {
		t.Fatalf("recovery must rewind the tail over the torn record: %d, want %d", tail, goodEnd)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	w := New()
	env, th := setup(t, w)
	w.Put(th, "stable", []byte("v"))
	img := env.Pool().CrashImage()
	for i := 0; i < 2; i++ {
		w2 := New()
		env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
		th2 := env2.Spawn()
		if err := w2.Recover(th2); err != nil {
			t.Fatalf("recover %d: %v", i, err)
		}
		if _, ok := w2.Get(th2, "stable"); !ok {
			t.Fatalf("recover %d lost data", i)
		}
		img = env2.Pool().CrashImage()
	}
}

func TestRecoverUninitializedPoolFails(t *testing.T) {
	w := New()
	env := rt.NewEnv(pmem.New(w.PoolSize()), rt.Config{})
	if err := w.Recover(env.Spawn()); err == nil {
		t.Fatalf("recover on raw pool must fail")
	}
}

func TestExecDispatchAllOps(t *testing.T) {
	w := New()
	_, th := setup(t, w)
	ops := []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpAdd, Key: "a", Value: "2"},      // NOT_STORED
		{Kind: workload.OpAdd, Key: "b", Value: "2"},      // stored
		{Kind: workload.OpReplace, Key: "zz", Value: "x"}, // NOT_STORED
		{Kind: workload.OpReplace, Key: "a", Value: "3"},
		{Kind: workload.OpAppend, Key: "a", Value: "4"},
		{Kind: workload.OpPrepend, Key: "a", Value: "0"},
		{Kind: workload.OpIncr, Key: "n", Value: "7"},
		{Kind: workload.OpDecr, Key: "n", Value: "3"},
		{Kind: workload.OpGet, Key: "a"},
		{Kind: workload.OpBGet, Key: "a"},
		{Kind: workload.OpDelete, Key: "b"},
		{Kind: workload.OpFlushAll},
	}
	for _, op := range ops {
		if err := w.Exec(th, op); err != nil {
			t.Fatalf("%v: %v", op.Kind, err)
		}
	}
	if err := w.Exec(th, workload.Op{Kind: workload.OpError, Raw: "nonsense"}); err == nil {
		t.Fatalf("error op must report an error")
	}
	if v, _ := w.Get(th, "a"); string(v) != "034" {
		t.Fatalf("a = %q", v)
	}
	if v, _ := w.Get(th, "n"); string(v) != "4" {
		t.Fatalf("n = %q", v)
	}
}

// TestCampaignFindsSeededBugs: a short protocol-traffic campaign over the
// buggy log detects PM inconsistencies, and the same campaign over the
// fixed variant detects none — the bug inventory is real and the detector
// is not pattern-matching noise. Protocol mode matters here: torn
// multi-line appends (WAL-3) need multi-line values and compaction (WAL-2)
// is driven by flush_all frames, both of which the traffic generator
// produces and the synthetic op generator does not.
func TestCampaignFindsSeededBugs(t *testing.T) {
	opts := fuzz.Options{
		Threads:    4,
		KeySpace:   6,
		OpsPerSeed: 30,
		MaxExecs:   60,
		Duration:   60 * time.Second,
		Seed:       11,
		Protocol:   true,
	}
	fz := fuzz.NewWithFactory(func() targets.Target { return New() }, opts)
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.DB.Inconsistencies()) == 0 {
		t.Fatalf("campaign over the seeded log detected nothing")
	}

	fzFixed := fuzz.NewWithFactory(func() targets.Target { return NewFixed() }, opts)
	resFixed, err := fzFixed.Run()
	if err != nil {
		t.Fatalf("fixed run: %v", err)
	}
	if n := len(resFixed.DB.Inconsistencies()); n != 0 {
		t.Fatalf("fixed variant still detected %d inconsistencies: %+v", n, resFixed.DB.Inconsistencies())
	}
}
