// Package pmwal implements a persistent write-ahead log / durable queue in
// the style of a PM-backed redo log: every mutation appends a
// checksum-committed record, a volatile index maps each key to its latest
// record, and recovery replays the log from head to tail, stopping at the
// first torn record. Truncation (compaction) copies live records to the
// front of the log and durably rewinds the tail — the WAL analogue of
// checkpointing.
//
// The target is seeded with three concurrency bugs, one per detection class
// the paper distinguishes:
//
//	WAL-1 (unflushed tail pointer, inter): append publishes the new tail
//	  under the log lock but only flushes it after the lock is released.
//	  A concurrent append reads the dirty tail and durably writes its
//	  record header at an address derived from it; a crash in the window
//	  rewinds the tail and silently truncates the acknowledged record.
//	WAL-2 (fence-before-flush on the commit record, inter): append issues
//	  the commit-marker fence BEFORE the flush, so the marker line is
//	  still dirty when the lock drops. Compaction reads the marker to
//	  decide which records are committed and durably copies the record —
//	  resurrecting, after a crash, a record whose commit never persisted.
//	WAL-3 (torn multi-line append, intra): for values spanning multiple
//	  cache lines, append persists only the first value line, then
//	  computes the commit checksum by reading back its own unflushed
//	  payload and durably stores it — a committed record whose value
//	  bytes can be lost by a crash.
//
// NewFixed returns the corrected variant (persist-before-publish, full
// payload flush, flush-then-fence); it exists so tests can show the
// detector reports nothing once the bugs are patched.
package pmwal

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func init() {
	targets.Register("pmwal", func() targets.Target { return New() })
}

const (
	magic = 0x706d77616c303100 // "pmwal01"

	// Pool header.
	hdrMagic = 0
	hdrHead  = 8
	hdrTail  = 16

	// logBase is where records start.
	logBase = 64

	// Record layout: a 64-byte header, a 64-byte key slot, then the value
	// rounded up to whole cache lines.
	rSize  = 0  // total record size in bytes (multiple of 64)
	rSeq   = 8  // append sequence number
	rKind  = 16 // kindPut or kindTombstone
	rNKey  = 24
	rNVal  = 32
	rKeyFP = 40
	rCksum = 48 // commit marker: record is committed iff it matches
	rKey   = 64
	rVal   = 128

	kindPut       = 1
	kindTombstone = 2

	maxKey = 64
	maxVal = 1024
	// recMin is the smallest record (header + key slot, zero-length value).
	recMin = rVal
	recMax = rVal + maxVal
)

// WAL is one persistent-log instance. Only the log itself is persistent;
// the key index and the next sequence number are volatile and rebuilt by
// Recover.
type WAL struct {
	mu    sync.Mutex // the log lock
	index map[uint64]pmem.Addr
	seq   uint64
	fixed bool
}

// New creates an unopened instance carrying the seeded bugs.
func New() *WAL {
	return &WAL{index: make(map[uint64]pmem.Addr)}
}

// NewFixed creates the corrected variant: the tail pointer and commit
// marker are persisted before the log lock is released and multi-line
// values are flushed in full before the checksum reads them back.
func NewFixed() *WAL {
	return &WAL{index: make(map[uint64]pmem.Addr), fixed: true}
}

// Name implements targets.Target.
func (w *WAL) Name() string { return "pmwal" }

// PoolSize implements targets.Target.
func (w *WAL) PoolSize() uint64 { return 256 << 10 }

// Annotations implements targets.Target: the log lock is a volatile mutex,
// so no sync-variable annotations are needed.
func (w *WAL) Annotations() int { return 0 }

// Setup implements targets.Target: format the log header.
func (w *WAL) Setup(t *rt.Thread) error {
	t.NTStore64(hdrMagic, magic, taint.None, taint.None)
	t.NTStore64(hdrHead, logBase, taint.None, taint.None)
	t.NTStore64(hdrTail, logBase, taint.None, taint.None)
	t.Fence()
	return nil
}

// Exec implements targets.Target.
func (w *WAL) Exec(t *rt.Thread, op workload.Op) error {
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		t.Branch()
		w.Get(t, op.Key)
	case workload.OpSet:
		t.Branch()
		return w.Put(t, op.Key, []byte(op.Value))
	case workload.OpAdd:
		t.Branch()
		if _, ok := w.Get(t, op.Key); ok {
			return nil // NOT_STORED
		}
		return w.Put(t, op.Key, []byte(op.Value))
	case workload.OpReplace:
		t.Branch()
		if _, ok := w.Get(t, op.Key); !ok {
			return nil // NOT_STORED
		}
		return w.Put(t, op.Key, []byte(op.Value))
	case workload.OpAppend:
		t.Branch()
		return w.Concat(t, op.Key, []byte(op.Value), true)
	case workload.OpPrepend:
		t.Branch()
		return w.Concat(t, op.Key, []byte(op.Value), false)
	case workload.OpIncr:
		t.Branch()
		return w.Arith(t, op.Key, op.Value, true)
	case workload.OpDecr:
		t.Branch()
		return w.Arith(t, op.Key, op.Value, false)
	case workload.OpDelete:
		t.Branch()
		w.Delete(t, op.Key)
	case workload.OpFlushAll:
		t.Branch()
		return w.Compact(t)
	default:
		t.Branch() // error-handling path
		return fmt.Errorf("pmwal: ERROR %q", op.Raw)
	}
	return nil
}

// recordSize returns the rounded on-log footprint for a value length.
func recordSize(nval int) uint64 {
	return rVal + (uint64(nval)+63)/64*64
}

// recInBounds reports whether a record header loaded from PM can lie inside
// the log. Sizes read from PM may be garbage after a torn write; using them
// unchecked would walk out of the pool.
func recInBounds(t *rt.Thread, rec pmem.Addr, size uint64) bool {
	return size >= recMin && size <= recMax && size%64 == 0 &&
		rec >= logBase && rec+size <= t.Env().Pool().Size()
}

// checksum sums a record's key and value bytes. The reads may observe
// non-persisted data — deliberately: reading back the record's own
// unflushed value lines is seeded bug WAL-3, so unlike memcached this
// read-back is NOT whitelisted.
func (w *WAL) checksum(t *rt.Thread, rec pmem.Addr, nkey, nval uint64) (uint64, taint.Label) {
	kb, klab := t.LoadBytes(rec+rKey, nkey)
	vb, vlab := t.LoadBytes(rec+rVal, nval)
	sum := uint64(0x77616c) // avoid 0 for the empty record
	for _, b := range kb {
		sum = sum*131 + uint64(b)
	}
	for _, b := range vb {
		sum = sum*131 + uint64(b)
	}
	return sum, t.Env().Labels().Union(klab, vlab)
}

// appendRecord writes one log record and publishes it. This function
// carries all three seeded bugs; see the package comment.
func (w *WAL) appendRecord(t *rt.Thread, kind uint64, key string, val []byte) error {
	if len(key) > maxKey {
		return errors.New("pmwal: CLIENT_ERROR key too long")
	}
	if len(val) > maxVal {
		return errors.New("pmwal: SERVER_ERROR object too large for log")
	}
	size := recordSize(len(val))
	kf := targets.Fingerprint(key)

	w.mu.Lock()
	t.Branch()
	// WAL-1 (read side): the tail may be another append's store that has
	// not been flushed yet — the buggy variant flushes it after unlock.
	tail, tlab := t.Load64(hdrTail)
	if tail < logBase || tail > t.Env().Pool().Size() {
		w.mu.Unlock()
		return errors.New("pmwal: SERVER_ERROR corrupt tail")
	}
	if tail+size > t.Env().Pool().Size() {
		w.compactLocked(t)
		tail, tlab = t.Load64(hdrTail)
		if tail+size > t.Env().Pool().Size() {
			w.mu.Unlock()
			return errors.New("pmwal: SERVER_ERROR log full")
		}
	}
	rec := tail
	w.seq++
	// WAL-1 (write side): the record header lands at an address derived
	// from the possibly-dirty tail and is made durable below.
	t.Store64(rec+rSize, size, taint.None, tlab)
	t.Store64(rec+rSeq, w.seq, taint.None, tlab)
	t.Store64(rec+rKind, kind, taint.None, tlab)
	t.Store64(rec+rNKey, uint64(len(key)), taint.None, tlab)
	t.Store64(rec+rNVal, uint64(len(val)), taint.None, tlab)
	t.Store64(rec+rKeyFP, kf, taint.None, tlab)
	t.StoreBytes(rec+rKey, []byte(key), taint.None, tlab)
	t.StoreBytes(rec+rVal, val, taint.None, tlab)
	if w.fixed || uint64(len(val)) <= 64 {
		t.Persist(rec, rVal+uint64(len(val)))
	} else {
		// WAL-3: torn multi-line append — only the first value line is
		// flushed; the remaining lines never are.
		t.Persist(rec, rVal+64)
	}
	// Commit checksum: reads the payload back. On the WAL-3 path above the
	// thread reads its OWN unflushed value lines and the durable marker
	// store below depends on them (the intra-thread inconsistency).
	sum, slab := w.checksum(t, rec, uint64(len(key)), uint64(len(val)))
	t.Store64(rec+rCksum, sum, slab, tlab)
	if w.fixed {
		t.Persist(rec+rCksum, 8)
	}
	// Publish the new tail. The buggy variant persists it after unlock
	// (WAL-1's dirty window).
	//pmvet:ignore unflushed-store -- seeded bug WAL-1: the tail is flushed only after the lock is released
	t.Store64(hdrTail, tail+size, tlab, taint.None)
	if w.fixed {
		t.Persist(hdrTail, 8)
	}
	switch kind {
	case kindPut:
		w.index[kf] = rec
	case kindTombstone:
		delete(w.index, kf)
	}
	w.mu.Unlock()
	if !w.fixed {
		// WAL-2: the commit marker's fence is issued BEFORE its flush, so
		// the marker line stays dirty until the flush below executes —
		// after the lock has been dropped. (The trailing tail persist
		// eventually fences it; the window is the publication race.)
		t.Fence()
		t.Flush(rec+rCksum, 8)
		// WAL-1: the tail flush arrives only here, after unlock.
		t.Persist(hdrTail, 8)
	}
	return nil
}

// Put appends a committed put record for the key.
func (w *WAL) Put(t *rt.Thread, key string, val []byte) error {
	return w.appendRecord(t, kindPut, key, val)
}

// Delete appends a tombstone when the key is live; it reports whether a key
// was deleted.
func (w *WAL) Delete(t *rt.Thread, key string) bool {
	kf := targets.Fingerprint(key)
	w.mu.Lock()
	_, ok := w.index[kf]
	w.mu.Unlock()
	if !ok {
		return false
	}
	return w.appendRecord(t, kindTombstone, key, nil) == nil
}

// Get returns the latest committed value for the key. Uncommitted records
// (checksum mismatch) read as missing, like recovery treats them.
func (w *WAL) Get(t *rt.Thread, key string) ([]byte, bool) {
	kf := targets.Fingerprint(key)
	w.mu.Lock()
	rec, ok := w.index[kf]
	w.mu.Unlock()
	if !ok {
		return nil, false
	}
	t.Branch()
	size, _ := t.Load64(rec + rSize)
	if !recInBounds(t, rec, size) {
		return nil, false
	}
	nkey, _ := t.Load64(rec + rNKey)
	nval, _ := t.Load64(rec + rNVal)
	if nkey > maxKey || rVal+nval > size {
		return nil, false
	}
	want, _ := t.Load64(rec + rCksum)
	got, _ := w.checksum(t, rec, nkey, nval)
	if want != got {
		return nil, false
	}
	vb, _ := t.LoadBytes(rec+rVal, nval)
	return vb, true
}

// Concat appends (or prepends) to an existing value by appending a fresh
// put record with the combined bytes; a missing key is NOT_STORED.
func (w *WAL) Concat(t *rt.Thread, key string, extra []byte, appendTo bool) error {
	old, ok := w.Get(t, key)
	if !ok {
		return nil // NOT_STORED
	}
	var val []byte
	if appendTo {
		val = append(append([]byte(nil), old...), extra...)
	} else {
		val = append(append([]byte(nil), extra...), old...)
	}
	if len(val) > maxVal {
		return errors.New("pmwal: SERVER_ERROR object too large for log")
	}
	return w.Put(t, key, val)
}

// Arith increments or decrements a numeric value (missing keys start at 0,
// decrement saturates at 0).
func (w *WAL) Arith(t *rt.Thread, key, deltaStr string, up bool) error {
	d, err := strconv.ParseUint(deltaStr, 10, 64)
	if err != nil {
		return errors.New("pmwal: CLIENT_ERROR invalid delta")
	}
	var n uint64
	if old, ok := w.Get(t, key); ok {
		n, err = strconv.ParseUint(string(old), 10, 64)
		if err != nil {
			return errors.New("pmwal: CLIENT_ERROR non-numeric value")
		}
	}
	if up {
		n += d
	} else if n >= d {
		n -= d
	} else {
		n = 0
	}
	return w.Put(t, key, []byte(strconv.FormatUint(n, 10)))
}

// Compact copies every live committed record to the front of the log and
// durably rewinds the tail — the WAL's truncate operation, also triggered
// by flush_all traffic and by appends running out of log space.
func (w *WAL) Compact(t *rt.Thread) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.compactLocked(t)
	return nil
}

// compactLocked walks the committed prefix of the log, copies records that
// are still the latest version of a live key down to the log base, and
// rewrites head/tail. Caller holds w.mu.
func (w *WAL) compactLocked(t *rt.Thread) {
	t.Branch()
	head, hlab := t.Load64(hdrHead)
	tail, tlab := t.Load64(hdrTail)
	if head < logBase || head > t.Env().Pool().Size() {
		head = logBase
	}
	if tail < head || tail > t.Env().Pool().Size() {
		tail = head
	}
	walkLab := t.Env().Labels().Union(hlab, tlab)
	newIndex := make(map[uint64]pmem.Addr, len(w.index))
	dst := pmem.Addr(logBase)
	for rec := head; rec+recMin <= tail; {
		size, szlab := t.Load64(rec + rSize)
		if !recInBounds(t, rec, size) || rec+size > tail {
			break // torn tail: everything beyond is garbage
		}
		kind, _ := t.Load64(rec + rKind)
		nkey, _ := t.Load64(rec + rNKey)
		nval, _ := t.Load64(rec + rNVal)
		if nkey > maxKey || rVal+nval > size {
			break
		}
		// WAL-2 (read side): the commit marker may be another append's
		// store that is fenced but not yet flushed — still dirty. The
		// copy below and the tail rewrite are durable writes derived
		// from it.
		want, cklab := t.Load64(rec + rCksum)
		got, _ := w.checksum(t, rec, nkey, nval)
		if want != got {
			break // uncommitted record: truncation point
		}
		walkLab = t.Env().Labels().Union(walkLab, t.Env().Labels().Union(szlab, cklab))
		kf, _ := t.Load64(rec + rKeyFP)
		if kind == kindPut && w.index[kf] == rec {
			if dst != rec {
				// WAL-2 (write side): durable record copy based on the
				// possibly-dirty commit marker.
				body, blab := t.LoadBytes(rec, size)
				t.StoreBytes(dst, body, t.Env().Labels().Union(blab, cklab), walkLab)
				t.Persist(dst, size)
			}
			newIndex[kf] = dst
			dst += size
		}
		rec += size
	}
	// WAL-2 (write side): the durable tail rewind inherits the walk's
	// labels, including every commit marker read above.
	t.Store64(hdrHead, logBase, walkLab, taint.None)
	t.Store64(hdrTail, dst, walkLab, taint.None)
	t.Persist(hdrHead, 8)
	t.Persist(hdrTail, 8)
	w.index = newIndex
}

// Recover implements targets.Target: replay the log from head to tail,
// rebuilding the volatile index and stopping at the first record whose
// header or checksum does not verify (the torn tail). The tail is then
// durably rewound to the end of the valid prefix, so a later crash cannot
// resurrect the discarded suffix.
func (w *WAL) Recover(t *rt.Thread) error {
	m, _ := t.Load64(hdrMagic)
	if m != magic {
		return errors.New("pmwal: pool not initialized")
	}
	head, _ := t.Load64(hdrHead)
	tail, _ := t.Load64(hdrTail)
	if head < logBase || head > t.Env().Pool().Size() {
		head = logBase
	}
	if tail < head || tail > t.Env().Pool().Size() {
		tail = head
	}
	w.index = make(map[uint64]pmem.Addr)
	w.seq = 0
	rec := head
	for rec+recMin <= tail {
		size, _ := t.Load64(rec + rSize)
		if !recInBounds(t, rec, size) || rec+size > tail {
			break
		}
		kind, _ := t.Load64(rec + rKind)
		nkey, _ := t.Load64(rec + rNKey)
		nval, _ := t.Load64(rec + rNVal)
		if (kind != kindPut && kind != kindTombstone) || nkey > maxKey || rVal+nval > size {
			break
		}
		want, _ := t.Load64(rec + rCksum)
		got, _ := w.checksum(t, rec, nkey, nval)
		if want != got {
			break // torn or uncommitted: replay stops here
		}
		if seq, _ := t.Load64(rec + rSeq); seq > w.seq {
			w.seq = seq
		}
		kf, _ := t.Load64(rec + rKeyFP)
		switch kind {
		case kindPut:
			w.index[kf] = rec
		case kindTombstone:
			delete(w.index, kf)
		}
		rec += size
	}
	if rec != tail {
		// Torn-tail repair: truncate the log at the last valid record.
		t.Store64(hdrTail, rec, taint.None, taint.None)
		t.Persist(hdrTail, 8)
	}
	return nil
}

// Live returns the number of indexed keys (test oracle).
func (w *WAL) Live() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.index)
}
