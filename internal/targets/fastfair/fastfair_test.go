package fastfair

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
)

func setup(t *testing.T) (*rt.Env, *rt.Thread, *Tree) {
	t.Helper()
	tr := New()
	env := rt.NewEnv(pmem.New(tr.PoolSize()), rt.Config{HangTimeout: 50 * time.Millisecond})
	th := env.Spawn()
	if err := tr.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th, tr
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("fastfair")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Annotations() != 0 {
		t.Fatalf("fastfair has no annotations")
	}
}

func TestInsertGetDelete(t *testing.T) {
	_, th, tr := setup(t)
	if err := tr.Insert(th, "alpha", "one"); err != nil {
		t.Fatalf("insert: %v", err)
	}
	v, ok := tr.Get(th, "alpha")
	if !ok || v != targets.Fingerprint("one") {
		t.Fatalf("get = %d %v", v, ok)
	}
	tr.Insert(th, "alpha", "two")
	if v, _ := tr.Get(th, "alpha"); v != targets.Fingerprint("two") {
		t.Fatalf("update failed")
	}
	if !tr.Delete(th, "alpha") {
		t.Fatalf("delete failed")
	}
	if _, ok := tr.Get(th, "alpha"); ok {
		t.Fatalf("deleted key found")
	}
}

func TestSplitsPreserveAllKeys(t *testing.T) {
	_, th, tr := setup(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := tr.Insert(th, fmt.Sprintf("key%04d", i), fmt.Sprintf("v%04d", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(th, fmt.Sprintf("key%04d", i))
		if !ok || v != targets.Fingerprint(fmt.Sprintf("v%04d", i)) {
			t.Fatalf("key%04d lost after splits (ok=%v)", i, ok)
		}
	}
	if tr.Count(th) != n {
		t.Fatalf("count = %d, want %d", tr.Count(th), n)
	}
}

func TestLeafChainStaysSorted(t *testing.T) {
	_, th, tr := setup(t)
	for i := 0; i < 150; i++ {
		tr.Insert(th, fmt.Sprintf("key%04d", i*7919%1000), "v")
	}
	// Walk the chain and assert global ordering of entries.
	var all []uint64
	cur, _ := th.Load64(tr.root + fldFirstLeaf)
	for cur != 0 {
		nk, _ := th.Load64(cur + ndNKeys)
		for i := uint64(0); i < nk && i < entriesPerNode; i++ {
			k, _ := th.Load64(cur + ndEntries + pmem.Addr(i*16))
			if k != 0 {
				all = append(all, k)
			}
		}
		cur, _ = th.Load64(cur + ndSibling)
	}
	if len(all) == 0 {
		t.Fatalf("no entries found")
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Fatalf("leaf chain entries not globally sorted")
	}
}

// TestBug8SiblingWindow: a reader traversing the unflushed sibling pointer
// and inserting into the new node is an inter-thread inconsistency.
func TestBug8SiblingWindow(t *testing.T) {
	env, th, tr := setup(t)
	// Fill one leaf to the brink.
	for i := 0; i < entriesPerNode; i++ {
		tr.Insert(th, fmt.Sprintf("key%04d", i*10), "v")
	}
	// Split directly (the insert path would do this on overflow).
	leaf, _ := th.Load64(tr.root + fldFirstLeaf)
	th.SpinLock(leaf + ndLock)
	if err := tr.split(th, leaf); err != nil {
		t.Fatalf("split: %v", err)
	}
	// Simulate the reader arriving inside the window: re-dirty the
	// sibling pointer, then traverse and insert from another thread.
	sib, _ := th.Load64(leaf + ndSibling)
	th.Store64(leaf+ndSibling, sib, taint.None, taint.None) // dirty again
	th.SpinUnlock(leaf + ndLock)

	// Pick a key that hashes beyond the new node's first key so the
	// reader must traverse the (dirty) sibling pointer.
	first, _ := th.Load64(sib + ndEntries)
	var hotKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe%05d", i)
		if targets.Fingerprint(k) > first {
			hotKey = k
			break
		}
	}
	reader := env.Spawn()
	if err := tr.Insert(reader, hotKey, "vv"); err != nil {
		t.Fatalf("reader insert: %v", err)
	}
	foundInter := false
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter {
			foundInter = true
		}
	}
	if !foundInter {
		t.Fatalf("traversal through dirty sibling pointer must confirm an inter inconsistency (Bug 8)")
	}
}

func TestLazyRepairFixesTransientCount(t *testing.T) {
	_, th, tr := setup(t)
	tr.Insert(th, "a-key", "v")
	leaf, _ := th.Load64(tr.root + fldFirstLeaf)
	// Forge a transient FAST state: count claims 3 entries, only 1 landed.
	th.Store64(leaf+ndNKeys, 3, taint.None, taint.None)
	if _, ok := tr.Get(th, "a-key"); !ok {
		t.Fatalf("get must still find the key")
	}
	nk, _ := th.Load64(leaf + ndNKeys)
	if nk != 1 {
		t.Fatalf("lazy repair must fix the count, got %d", nk)
	}
}

func TestRecoveryRewritesMetadata(t *testing.T) {
	env, th, tr := setup(t)
	for i := 0; i < 30; i++ {
		tr.Insert(th, fmt.Sprintf("key%04d", i), "v")
	}
	img := env.Pool().CrashImage()
	tr2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	env2.EnableWriteRecorder()
	th2 := env2.Spawn()
	if err := tr2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if tr2.Count(th2) != 30 {
		t.Fatalf("recovered count = %d, want 30", tr2.Count(th2))
	}
	// The metadata rewrite is what validates count-update side effects.
	if !env2.RangeOverwritten(pmem.Range{Off: tr2.root + fldCount, Len: 8}) {
		t.Fatalf("recovery must rewrite the persistent counter")
	}
}

func TestPersistedKeysSurviveCrash(t *testing.T) {
	env, th, tr := setup(t)
	for i := 0; i < 60; i++ {
		tr.Insert(th, fmt.Sprintf("key%04d", i), "v")
	}
	img := env.Pool().CrashImage()
	tr2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := tr2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := 0; i < 60; i++ {
		if _, ok := tr2.Get(th2, fmt.Sprintf("key%04d", i)); !ok {
			t.Fatalf("persisted key%04d lost", i)
		}
	}
}

func TestWhitelistEntry(t *testing.T) {
	tr := New()
	wl := tr.Whitelist()
	if len(wl) == 0 || wl[0] != "fastfair.(*Tree).lazyRepair" {
		t.Fatalf("whitelist = %v", wl)
	}
}

func TestRecoverEmptyPoolFails(t *testing.T) {
	tr := New()
	env := rt.NewEnv(pmem.New(tr.PoolSize()), rt.Config{})
	if err := tr.Recover(env.Spawn()); err == nil {
		t.Fatalf("recover on empty pool must fail")
	}
}
