// Package fastfair reimplements FAST-FAIR (FAST '18), the byte-addressable
// persistent B+-tree the paper evaluates, seeded with the inter-thread bug
// PMRace found in it (paper Table 2, Bug 8) and the tolerance machinery that
// shapes its false-positive profile (§4.4):
//
//	Bug 8 (Inter): a split publishes the new node through the sibling
//	  pointer with a store that is flushed only after a window; a concurrent
//	  inserter traverses the unflushed pointer and writes its item into the
//	  new node — data loss when a crash reverts the pointer.
//
//	Lazy repair: FAST's in-place entry shifting leaves transient states
//	  (a claimed entry count ahead of the visible entries) that readers
//	  repair on access. The repair is a durable write based on possibly
//	  non-persisted data — crash-consistent by design, so it belongs on the
//	  whitelist (ExtraWhitelist entry "fastfair.(*Tree).lazyRepair").
//
//	Validated FPs: every insert updates a persistent item counter in the
//	  tree metadata; recovery recomputes and rewrites that metadata, so
//	  counter-based inconsistencies validate as benign.
//
// Structural simplification: the tree keeps FAST-FAIR's leaf layer — sorted
// nodes linked by sibling pointers, in-place shifting inserts, splits that
// link the new node before updating the parent — but replaces the internal
// layer with sibling-chain traversal (the original also relies on sibling
// chasing for concurrent correctness). The bug surface, which lives entirely
// in the leaf layer, is unchanged.
package fastfair

import (
	"errors"
	"strconv"

	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func init() {
	targets.Register("fastfair", func() targets.Target { return New() })
}

const (
	entriesPerNode = 14
	nodeSize       = 64 + entriesPerNode*16

	// Tree metadata (root object) fields.
	fldFirstLeaf = 0  // head of the leaf chain
	fldCount     = 64 // persistent item counter (recovery rewrites it)
	fldHeight    = 72 // persistent height bookkeeping (recovery rewrites it)
	rootSize     = 128

	// Node fields.
	ndNKeys   = 0
	ndSibling = 8
	ndLock    = 16 // in-PM node latch (unannotated, like the original mutex)
	ndEntries = 64
)

// Tree is one FAST-FAIR instance.
type Tree struct {
	pool *pmdk.ObjPool
	root pmem.Addr
}

// New creates an unopened instance.
func New() *Tree { return &Tree{} }

// Name implements targets.Target.
func (tr *Tree) Name() string { return "fastfair" }

// PoolSize implements targets.Target.
func (tr *Tree) PoolSize() uint64 { return 512 << 10 }

// Annotations implements targets.Target (paper Table 3: 0 annotations for
// FAST-FAIR — its latches are treated as volatile).
func (tr *Tree) Annotations() int { return 0 }

// Whitelist returns the target-specific benign patterns: the lazy-repair
// path is crash-consistent by design (paper §4.4's lazy recovery).
func (tr *Tree) Whitelist() []string { return []string{"fastfair.(*Tree).lazyRepair"} }

// Setup implements targets.Target.
func (tr *Tree) Setup(t *rt.Thread) error {
	tr.pool = pmdk.Create(t)
	root, err := tr.pool.Alloc(t, rootSize)
	if err != nil {
		return err
	}
	tr.root = root
	leaf, err := tr.newNode(t)
	if err != nil {
		return err
	}
	t.Store64(root+fldFirstLeaf, leaf, taint.None, taint.None)
	t.Store64(root+fldCount, 0, taint.None, taint.None)
	t.Store64(root+fldHeight, 1, taint.None, taint.None)
	t.Persist(root, rootSize)
	tr.pool.SetRoot(t, root)
	return nil
}

func (tr *Tree) newNode(t *rt.Thread) (pmem.Addr, error) {
	n, err := tr.pool.Alloc(t, nodeSize)
	if err != nil {
		return 0, err
	}
	zero := make([]byte, nodeSize)
	t.NTStoreBytes(n, zero, taint.None, taint.None)
	t.Fence()
	return n, nil
}

// Exec implements targets.Target.
func (tr *Tree) Exec(t *rt.Thread, op workload.Op) error {
	t.Branch()
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		tr.Get(t, op.Key)
	case workload.OpSet, workload.OpAdd, workload.OpReplace, workload.OpAppend, workload.OpPrepend:
		return tr.Insert(t, op.Key, op.Value)
	case workload.OpIncr, workload.OpDecr:
		n, _ := strconv.Atoi(op.Value)
		return tr.Insert(t, op.Key, strconv.Itoa(n+7))
	case workload.OpDelete:
		tr.Delete(t, op.Key)
	}
	return nil
}

// findLeaf chases sibling pointers to the leaf owning kf. The returned label
// taints addresses derived from the traversal — a dirty sibling pointer read
// here is the read side of Bug 8 (btree.h:876 analogue).
func (tr *Tree) findLeaf(t *rt.Thread, kf uint64) (pmem.Addr, taint.Label) {
	cur, lab := t.Load64(tr.root + fldFirstLeaf)
	for hop := 0; hop < 1<<16; hop++ {
		sib, slab := t.Load64(cur + ndSibling)
		if sib == 0 {
			break
		}
		first, flab := t.Load64(sib + ndEntries) // first key of the sibling
		if first == 0 || first > kf {
			break
		}
		cur = sib
		lab = t.Env().Labels().UnionAll([]taint.Label{lab, slab, flab})
	}
	return cur, lab
}

// Get searches the owning leaf, running the FAIR-style lazy repair when it
// observes a transient entry count.
func (tr *Tree) Get(t *rt.Thread, key string) (uint64, bool) {
	t.Branch()
	kf := targets.Fingerprint(key)
	leaf, lab := tr.findLeaf(t, kf)
	tr.lazyRepair(t, leaf, lab)
	nk, _ := t.Load64(leaf + ndNKeys)
	for i := uint64(0); i < nk && i < entriesPerNode; i++ {
		k, _ := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
		if k == kf {
			v, _ := t.Load64(leaf + ndEntries + pmem.Addr(i*16) + 8)
			return v, true
		}
	}
	return 0, false
}

// lazyRepair re-derives and rewrites the entry count when the claimed count
// runs ahead of the visible entries (a transient FAST state). The write is
// durable and based on possibly non-persisted data, but the pattern is
// crash-consistent by construction — the whitelisted lazy recovery of §4.4.
func (tr *Tree) lazyRepair(t *rt.Thread, leaf pmem.Addr, lab taint.Label) {
	nk, nlab := t.Load64(leaf + ndNKeys)
	if nk == 0 || nk > entriesPerNode {
		return
	}
	lastKey, klab := t.Load64(leaf + ndEntries + pmem.Addr((nk-1)*16))
	if lastKey != 0 {
		return
	}
	// Count the actually visible entries and repair the header.
	actual := uint64(0)
	for i := uint64(0); i < entriesPerNode; i++ {
		k, _ := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
		if k != 0 {
			actual++
		}
	}
	all := t.Env().Labels().UnionAll([]taint.Label{lab, nlab, klab})
	t.Store64(leaf+ndNKeys, actual, all, lab)
	t.Persist(leaf+ndNKeys, 8)
}

// Insert adds or updates a key using FAST in-place shifting and FAIR sibling
// linking on splits.
func (tr *Tree) Insert(t *rt.Thread, key, val string) error {
	t.Branch()
	kf, vf := targets.Fingerprint(key), targets.Fingerprint(val)
	for attempt := 0; attempt < 8; attempt++ {
		leaf, lab := tr.findLeaf(t, kf)
		t.SpinLock(leaf + ndLock)
		// The leaf may have split while we waited; re-check ownership.
		sib, _ := t.Load64(leaf + ndSibling)
		if sib != 0 {
			first, _ := t.Load64(sib + ndEntries)
			if first != 0 && first <= kf {
				t.SpinUnlock(leaf + ndLock)
				continue
			}
		}
		nk, _ := t.Load64(leaf + ndNKeys)
		if nk > entriesPerNode {
			nk = entriesPerNode
		}
		// Update in place when present.
		for i := uint64(0); i < nk; i++ {
			k, _ := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
			if k == kf {
				t.Store64(leaf+ndEntries+pmem.Addr(i*16)+8, vf, taint.None, lab)
				t.Persist(leaf+ndEntries+pmem.Addr(i*16)+8, 8)
				t.SpinUnlock(leaf + ndLock)
				return nil
			}
		}
		if nk < entriesPerNode {
			tr.fastInsert(t, leaf, nk, kf, vf, lab)
			t.SpinUnlock(leaf + ndLock)
			tr.bumpCount(t)
			return nil
		}
		// Full: FAIR split, then retry against the proper node.
		if err := tr.split(t, leaf); err != nil {
			t.SpinUnlock(leaf + ndLock)
			return err
		}
		t.SpinUnlock(leaf + ndLock)
	}
	return errors.New("fastfair: insert did not settle after splits")
}

// fastInsert shifts larger entries right one by one (each entry store is a
// regular store; the single flush comes at the end — FAST's transient
// states, observable by lock-free readers).
func (tr *Tree) fastInsert(t *rt.Thread, leaf pmem.Addr, nk, kf, vf uint64, lab taint.Label) {
	// Publish the grown count first (the original moves the count bump
	// ahead of the shifted entries' flush as well).
	t.Store64(leaf+ndNKeys, nk+1, taint.None, lab)
	i := int64(nk) - 1
	for ; i >= 0; i-- {
		k, klab := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
		if k < kf {
			break
		}
		v, vlab := t.Load64(leaf + ndEntries + pmem.Addr(i*16) + 8)
		t.Store64(leaf+ndEntries+pmem.Addr((i+1)*16), k, klab, lab)
		t.Store64(leaf+ndEntries+pmem.Addr((i+1)*16)+8, v, vlab, lab)
	}
	t.Store64(leaf+ndEntries+pmem.Addr((i+1)*16), kf, taint.None, lab)
	t.Store64(leaf+ndEntries+pmem.Addr((i+1)*16)+8, vf, taint.None, lab)
	t.Persist(leaf, nodeSize)
}

// split moves the upper half of a full leaf into a new node and links it
// into the sibling chain. BUG 8 (write side, btree.h:560 analogue): the
// sibling pointer store is flushed only after the interleaving window; a
// reader traversing the unflushed pointer inserts into a node a crash would
// unlink.
func (tr *Tree) split(t *rt.Thread, leaf pmem.Addr) error {
	newNode, err := tr.newNode(t)
	if err != nil {
		return err
	}
	half := uint64(entriesPerNode / 2)
	// Move upper half into the new node (non-temporal: node is private).
	for i := half; i < entriesPerNode; i++ {
		k, klab := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
		v, vlab := t.Load64(leaf + ndEntries + pmem.Addr(i*16) + 8)
		dst := newNode + ndEntries + pmem.Addr((i-half)*16)
		t.NTStore64(dst, k, klab, taint.None)
		t.NTStore64(dst+8, v, vlab, taint.None)
	}
	t.NTStore64(newNode+ndNKeys, entriesPerNode-half, taint.None, taint.None)
	oldSib, sibLab := t.Load64(leaf + ndSibling)
	t.NTStore64(newNode+ndSibling, oldSib, sibLab, taint.None)
	t.Fence()
	// Publish: regular store, flush deferred past the window (Bug 8).
	t.Store64(leaf+ndSibling, newNode, taint.None, taint.None)
	// Truncate the old node and clear the moved slots.
	for i := half; i < entriesPerNode; i++ {
		t.Store64(leaf+ndEntries+pmem.Addr(i*16), 0, taint.None, taint.None)
		t.Store64(leaf+ndEntries+pmem.Addr(i*16)+8, 0, taint.None, taint.None)
	}
	t.Store64(leaf+ndNKeys, half, taint.None, taint.None)
	t.Persist(leaf, nodeSize)
	return nil
}

// Delete removes a key from its leaf, shifting the tail left.
func (tr *Tree) Delete(t *rt.Thread, key string) bool {
	t.Branch()
	kf := targets.Fingerprint(key)
	leaf, lab := tr.findLeaf(t, kf)
	t.SpinLock(leaf + ndLock)
	defer t.SpinUnlock(leaf + ndLock)
	nk, nklab := t.Load64(leaf + ndNKeys)
	if nk > entriesPerNode {
		nk = entriesPerNode
	}
	for i := uint64(0); i < nk; i++ {
		k, _ := t.Load64(leaf + ndEntries + pmem.Addr(i*16))
		if k != kf {
			continue
		}
		for j := i; j+1 < nk; j++ {
			nx, nxlab := t.Load64(leaf + ndEntries + pmem.Addr((j+1)*16))
			nv, nvlab := t.Load64(leaf + ndEntries + pmem.Addr((j+1)*16) + 8)
			t.Store64(leaf+ndEntries+pmem.Addr(j*16), nx, nxlab, lab)
			t.Store64(leaf+ndEntries+pmem.Addr(j*16)+8, nv, nvlab, lab)
		}
		t.Store64(leaf+ndEntries+pmem.Addr((nk-1)*16), 0, taint.None, lab)
		t.Store64(leaf+ndEntries+pmem.Addr((nk-1)*16)+8, 0, taint.None, lab)
		t.Store64(leaf+ndNKeys, nk-1, nklab, lab)
		t.Persist(leaf, nodeSize)
		return true
	}
	return false
}

// bumpCount updates the persistent item counter. The counter is hot shared
// data: reading another thread's unflushed count and durably rewriting it is
// an inter-thread inconsistency whose side effect recovery overwrites — the
// validated false positives of the paper's FAST-FAIR row.
func (tr *Tree) bumpCount(t *rt.Thread) {
	c, clab := t.Load64(tr.root + fldCount)
	t.Store64(tr.root+fldCount, c+1, clab, taint.None)
	t.Persist(tr.root+fldCount, 8)
}

// Recover implements targets.Target: FAST-FAIR's recovery is lazy — it only
// re-derives tree metadata (item count, height) by walking the leaf chain
// and rewrites it, leaving node contents to be repaired on access.
func (tr *Tree) Recover(t *rt.Thread) error {
	pool, err := pmdk.Open(t)
	if err != nil {
		return err
	}
	tr.pool = pool
	root, _ := pool.Root(t)
	if root == 0 {
		return errors.New("fastfair: no root object")
	}
	tr.root = root
	count, nodes := uint64(0), uint64(0)
	cur, _ := t.Load64(root + fldFirstLeaf)
	for cur != 0 && nodes < 1<<16 {
		nodes++
		// Node latches are volatile objects reconstructed on restart
		// (the original's std::mutex); whole-node flushes may have
		// persisted one as held, so recovery re-initializes it. This
		// is why the paper reports no synchronization bug for
		// FAST-FAIR.
		t.Store64(cur+ndLock, 0, taint.None, taint.None)
		t.Persist(cur+ndLock, 8)
		nk, _ := t.Load64(cur + ndNKeys)
		if nk > entriesPerNode {
			nk = entriesPerNode
		}
		count += nk
		cur, _ = t.Load64(cur + ndSibling)
	}
	t.Store64(root+fldCount, count, taint.None, taint.None)
	t.Store64(root+fldHeight, nodes, taint.None, taint.None)
	t.Persist(root+fldCount, 16)
	return nil
}

// Count returns the persistent item counter (test oracle).
func (tr *Tree) Count(t *rt.Thread) uint64 {
	c, _ := t.Load64(tr.root + fldCount)
	return c
}
