package targets

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFingerprintNeverZero(t *testing.T) {
	f := func(s string) bool { return Fingerprint(s) != 0 }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	if Fingerprint("abc") != Fingerprint("abc") {
		t.Fatalf("fingerprint must be deterministic")
	}
	if Fingerprint("abc") == Fingerprint("abd") {
		t.Fatalf("different keys should differ")
	}
}

// The top bits must disperse across similar keys: extendible hashing indexes
// directories by them.
func TestFingerprintHighBitDispersion(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[Fingerprint(fmt.Sprintf("key%04d", i))>>60] = true
	}
	if len(seen) < 8 {
		t.Fatalf("top-4-bit buckets used = %d of 16, poor dispersion", len(seen))
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("definitely-not-registered"); err == nil {
		t.Fatalf("unknown target must error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration must panic")
		}
	}()
	Register("dup-test-target", nil)
	Register("dup-test-target", nil)
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
