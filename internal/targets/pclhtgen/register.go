// Package pclhtgen is the pminstr-generated shadow of the P-CLHT target:
// the plain source in internal/targets/pclhtplain run through the
// auto-instrumentation generator (cmd/pminstr). Everything except this file
// is generated — regenerate with:
//
//	go run ./cmd/pminstr -src internal/targets/pclhtplain -out internal/targets/pclhtgen -pkg pclhtgen
//
// CI regenerates the package with -diff (drift is an error) and runs pmvet
// over it pinned to zero findings. The conformance and shadow-diff tests
// assert that this target behaves identically to the hand-instrumented
// internal/targets/pclht — same seeded bugs, same file:line fingerprints
// (modulo the pminstr_ file prefix, normalized by internal/fuzz).
//
// This file is hand-written: generated output deliberately carries no init
// function, so registration (which panics on duplicate names) stays under
// human control.
package pclhtgen

import "github.com/pmrace-go/pmrace/internal/targets"

func init() {
	targets.Register("pclht-gen", func() targets.Target { return New() })
}
