package targets

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// Target is one PM system under test. A fresh instance is created per fuzz
// campaign; instances hold only volatile (DRAM) state — everything
// persistent lives in the pool, so Recover can reconstruct the system from a
// crash image alone.
type Target interface {
	// Name returns the registry name.
	Name() string
	// PoolSize returns the pool size the target needs.
	PoolSize() uint64
	// Setup initializes the persistent structures on a fresh pool. It
	// runs single-threaded before the workload (the phase whose cost the
	// in-memory checkpoints amortize).
	Setup(t *rt.Thread) error
	// Exec runs one operation on behalf of a worker thread.
	Exec(t *rt.Thread, op workload.Op) error
	// Recover re-opens the system from a (crash) pool image and runs its
	// recovery procedure, as the post-failure stage does.
	Recover(t *rt.Thread) error
	// Annotations returns how many source-level sync-variable annotation
	// call sites the target carries (the paper's Table 3 "Annotation"
	// column).
	Annotations() int
}

// Factory creates a fresh target instance.
type Factory func() Target

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register adds a target factory under a unique name. It panics on
// duplicates, like database/sql drivers.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("targets: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Has reports whether a target name is registered, without instantiating.
func Has(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	_, ok := registry[name]
	return ok
}

// New instantiates a registered target.
func New(name string) (Target, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("targets: unknown target %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered targets in sorted order.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fingerprint packs a string into a uint64 so that keys and values can live
// in fixed 8-byte PM slots. It is FNV-1a; the driver oracle compares
// fingerprints, never inverts them.
func Fingerprint(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// FNV-1a mixes poorly into the high bits for short similar keys, and
	// CCEH-style directories index by the top bits; finish with a
	// murmur3-style avalanche so all 64 bits disperse.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	if h == 0 { // 0 is the "empty slot" sentinel in the targets
		h = 1
	}
	return h
}
