// Package pclhtplain is the UNINSTRUMENTED P-CLHT: the same persistent
// cache-line hash table as internal/targets/pclht — including the five bugs
// PMRace found in it (paper Table 2, Bugs 1-5) — written against the plain
// pmplain dialect with no rt.Thread hooks and no taint labels. It is the
// input corpus for the pminstr generator: `pminstr -src .../pclhtplain`
// regenerates internal/targets/pclhtgen, whose campaign behaviour must
// match the hand-instrumented target bug for bug.
//
// The file is LINE-ALIGNED with pclht/pclht.go: every PM access sits on
// the same line number as its hand-instrumented counterpart, and pminstr
// preserves line numbers when rewriting, so the generated shadow package
// produces identical file:line bug fingerprints (modulo the pminstr_
// file-name prefix, which internal/fuzz's fingerprint normalizer strips).
// Lines that exist only in instrumented form (label unions, annotation
// plumbing) appear here as comments or collapsed plain statements.
//
// When editing: keep pclht/pclht.go and this file in lockstep. The
// shadow-diff test in internal/fuzz fails if the seeded-bug fingerprints
// of the two targets ever diverge, and CI regenerates the shadow package
// to catch drift between this source and the checked-in generated code.
// The rewrite rules themselves are documented in internal/instr.
package pclhtplain

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/pmplain"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
	// Padding so the import block spans the same lines as the
	// instrumented original; pminstr refills the block in place.
	//
)

// Registration lives in the shadow package's hand-written register.go —
// pminstr output carries no init — so regeneration never re-registers
// (targets.Register panics on duplicates).

const (
	slotsPerBucket = 3
	bucketSize     = 64 // lock + 3 keys + 3 vals + pad = one cache line
	initialBuckets = 8
	maxBuckets     = 1024

	// Root object field offsets. ht_off and table_new deliberately sit on
	// different cache lines, as in the original struct: flushing the
	// published table pointer must not incidentally persist table_new,
	// or Bug 3's dirty window would vanish.
	fldHtOff      = 0   // current table pointer (own line)
	fldTableNew   = 64  // new table pointer during resize
	fldGCHead     = 72  // GC bookkeeping slot (Bug 3 side effect)
	fldResizeLock = 128 // persistent resize lock (re-initialized on recovery)
	fldGCLock     = 136 // persistent GC lock (re-initialized on recovery)
	fldStatusLock = 144 // persistent status lock (re-initialized on recovery)
	fldItemCount  = 152 // persistent item counter
	rootSize      = 192

	// Bucket field offsets.
	bktLock = 0
	bktKey0 = 8
	bktVal0 = 32
)

// HT is one P-CLHT instance. All persistent state lives in the pool; the
// struct carries only volatile bookkeeping.
type HT struct {
	pool *pmplain.ObjPool
	root pmem.Addr

	resizeMu sync.Mutex // volatile helper serializing resize decisions
	puts     atomic.Int64
}

// New creates an unopened instance.
func New() *HT { return &HT{} }

// Name implements targets.Target (the generated shadow is "pclht-gen").
func (h *HT) Name() string { return "pclht-gen" }

// PoolSize implements targets.Target.
func (h *HT) PoolSize() uint64 { return 512 << 10 }

// Annotations implements targets.Target: bucket-lock, resize-lock, gc-lock
// and status-lock carry pm_sync_var_hint annotations (paper Table 3 reports
// 4 annotations for P-CLHT).
func (h *HT) Annotations() int { return 4 }

// Setup implements targets.Target: format the pool, allocate the root and
// the initial table.
func (h *HT) Setup(t *pmplain.Mem) error {
	h.pool = pmplain.Create(t)
	root, err := h.pool.Alloc(t, rootSize)
	if err != nil {
		return err
	}
	h.root = root
	table, err := h.newTable(t, initialBuckets)
	if err != nil {
		return err
	}
	t.Store64(root+fldHtOff, table)
	t.Store64(root+fldTableNew, 0)
	t.Store64(root+fldGCHead, 0)
	t.Store64(root+fldItemCount, 0)
	t.Persist(root, rootSize)
	h.pool.SetRoot(t, root)
	h.annotateRootLocks(t)
	return nil
}

func (h *HT) annotateRootLocks(t *pmplain.Mem) {
	// The three root locks are persistent sync variables (pm_sync_var_hint).
	t.SyncVarHint("resize-lock", h.root+fldResizeLock, 8, 0)
	t.SyncVarHint("gc-lock", h.root+fldGCLock, 8, 0)
	t.SyncVarHint("status-lock", h.root+fldStatusLock, 8, 0)
}

// newTable allocates and initializes a table with n buckets, annotating
// every in-PM bucket lock under the shared "bucket-lock" variable type.
func (h *HT) newTable(t *pmplain.Mem, n uint64) (pmem.Addr, error) {
	table, err := h.pool.Alloc(t, 64+n*bucketSize)
	if err != nil {
		return 0, err
	}
	t.NTStore64(table, n) // num_buckets
	// (the per-bucket lock hints are declared in the loop below)
	for i := uint64(0); i < n; i++ {
		b := table + 64 + i*bucketSize
		zero := make([]byte, bucketSize)
		t.NTStoreBytes(b, zero)
		t.SyncVarHint("bucket-lock", b+bktLock, 8, 0)
	}
	t.Fence()
	return table, nil
}

// Exec implements targets.Target.
func (h *HT) Exec(t *pmplain.Mem, op workload.Op) error {
	t.Branch()
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		h.Get(t, op.Key)
	case workload.OpSet, workload.OpAdd:
		return h.Put(t, op.Key, op.Value)
	case workload.OpReplace, workload.OpAppend, workload.OpPrepend:
		h.Update(t, op.Key, op.Value)
	case workload.OpIncr, workload.OpDecr:
		n, _ := strconv.Atoi(op.Value)
		return h.Put(t, op.Key, strconv.Itoa(n+1))
	case workload.OpDelete:
		h.Delete(t, op.Key)
	}
	return nil
}

// table loads the current table pointer; the returned label taints every
// address derived from it. This is the read side of Bug 1 (the analogue of
// clht_lb_res.c:417 reading h->ht_off).
func (h *HT) table(t *pmplain.Mem) pmem.Addr {
	return t.Load64(h.root + fldHtOff)
}

// bucketFor hashes key into the table, returning the bucket address and the
// taint of the address computation.
func (h *HT) bucketFor(t *pmplain.Mem, key string) pmem.Addr {
	table := h.table(t)
	n := t.Load64(table) // num_buckets (address derived from table ptr)
	// (pminstr unions the table-pointer and header taints into the result)
	idx := targets.Fingerprint(key) % n
	return table + 64 + idx*bucketSize
}

// Get performs a lock-free search (P-CLHT searches take no locks).
func (h *HT) Get(t *pmplain.Mem, key string) (uint64, bool) {
	t.Branch()
	b := h.bucketFor(t, key)
	kf := targets.Fingerprint(key)
	for i := 0; i < slotsPerBucket; i++ {
		k := t.Load64(b + bktKey0 + pmem.Addr(i*8))
		if k == kf {
			v := t.Load64(b + bktVal0 + pmem.Addr(i*8))
			return v, true
		}
	}
	return 0, false
}

// Put inserts or updates a key. Inserts into a table located through a
// non-persisted table pointer are exactly the paper's Bug 1: the movnt64
// item writes are durable side effects whose target address derives from the
// dirty pointer.
func (h *HT) Put(t *pmplain.Mem, key, val string) error {
	t.Branch()
	kf, vf := targets.Fingerprint(key), targets.Fingerprint(val)
	for attempt := 0; attempt < 4; attempt++ {
		b := h.bucketFor(t, key)
		t.SpinLock(b + bktLock)
		free := -1
		for i := 0; i < slotsPerBucket; i++ {
			k := t.Load64(b + bktKey0 + pmem.Addr(i*8))
			if k == kf {
				// Update in place (non-temporal, like the
				// original's value writes).
				t.NTStore64(b+bktVal0+pmem.Addr(i*8), vf)
				t.Fence()
				t.SpinUnlock(b + bktLock)
				return nil
			}
			if k == 0 && free < 0 {
				free = i
			}
		}
		if free >= 0 {
			t.NTStore64(b+bktKey0+pmem.Addr(free*8), kf)
			t.NTStore64(b+bktVal0+pmem.Addr(free*8), vf)
			t.Fence()
			t.SpinUnlock(b + bktLock)
			h.bumpCount(t)
			return nil
		}
		// Bucket full: release and resize, then retry against the new
		// table.
		t.SpinUnlock(b + bktLock)
		if err := h.resize(t); err != nil {
			return err
		}
	}
	return errors.New("pclht: bucket still full after resize")
}

// Update is clht_update: it takes the bucket lock and overwrites an existing
// key. Bug 5: when the key is absent the function returns without releasing
// the lock, hanging every later writer to the bucket.
func (h *HT) Update(t *pmplain.Mem, key, val string) bool {
	t.Branch()
	kf, vf := targets.Fingerprint(key), targets.Fingerprint(val)
	b := h.bucketFor(t, key)
	t.SpinLock(b + bktLock)
	for i := 0; i < slotsPerBucket; i++ {
		k := t.Load64(b + bktKey0 + pmem.Addr(i*8))
		if k == kf {
			t.NTStore64(b+bktVal0+pmem.Addr(i*8), vf)
			t.Fence()
			t.SpinUnlock(b + bktLock)
			return true
		}
	}
	// BUG 5: missing SpinUnlock on the not-found path (the original's
	// missing unlock in clht_update, clht_lb_res.c:526).
	return false
}

// Delete removes a key under the bucket lock.
func (h *HT) Delete(t *pmplain.Mem, key string) bool {
	t.Branch()
	kf := targets.Fingerprint(key)
	b := h.bucketFor(t, key)
	t.SpinLock(b + bktLock)
	for i := 0; i < slotsPerBucket; i++ {
		k := t.Load64(b + bktKey0 + pmem.Addr(i*8))
		if k == kf {
			t.NTStore64(b+bktKey0+pmem.Addr(i*8), 0)
			t.Fence()
			t.SpinUnlock(b + bktLock)
			return true
		}
	}
	t.SpinUnlock(b + bktLock)
	return false
}

func (h *HT) bumpCount(t *pmplain.Mem) {
	// The status lock briefly serializes the persistent item counter.
	t.SpinLock(h.root + fldStatusLock)
	c := t.Load64(h.root + fldItemCount)
	t.Store64(h.root+fldItemCount, c+1)
	t.Persist(h.root+fldItemCount, 8)
	t.SpinUnlock(h.root + fldStatusLock)
	h.puts.Add(1)
}

// resize migrates the table into one of twice the size. It contains the
// write side of Bug 1 (table pointer stored, flushed only after a window),
// Bug 3 (GC from the unflushed table_new) and Bug 4 (redundant bucket
// writes during migration).
func (h *HT) resize(t *pmplain.Mem) error {
	h.resizeMu.Lock()
	defer h.resizeMu.Unlock()
	t.Branch()
	t.SpinLock(h.root + fldResizeLock)
	defer t.SpinUnlock(h.root + fldResizeLock)

	oldTable := h.table(t)
	n := t.Load64(oldTable)
	// (pminstr unions the pointer/header taints for the migration stores)
	if n*2 > maxBuckets {
		return errors.New("pclht: table at maximum size")
	}
	newTable, err := h.newTable(t, n*2)
	if err != nil {
		return err
	}

	// table_new is recorded for helpers/GC but not flushed yet (Bug 3's
	// dependency, the analogue of clht_lb_res.c:789).
	t.Store64(h.root+fldTableNew, newTable)

	// Migrate all items into the new table.
	for i := uint64(0); i < n; i++ {
		ob := oldTable + 64 + i*bucketSize
		for s := 0; s < slotsPerBucket; s++ {
			k := t.Load64(ob + bktKey0 + pmem.Addr(s*8))
			if k == 0 {
				continue
			}
			v := t.Load64(ob + bktVal0 + pmem.Addr(s*8))
			h.insertMigrated(t, newTable, n*2, k, v)
			// BUG 4: the original redundantly writes the old
			// bucket back (clht_lb_res.c:321) — an unnecessary PM
			// write surfaced by PMRace as a candidate report.
			//pmvet:ignore unflushed-store -- seeded BUG 4: the redundant write is the finding; the old table is discarded after migration
			t.Store64(ob+bktKey0+pmem.Addr(s*8), k)
		}
	}

	// BUG 1 (write side): publish the new table with a regular store; the
	// flush comes only after the interleaving window (clht_lb_res.c:785
	// store, :786 flush). A reader scheduled inside the window inserts
	// into a table pointer that a crash would revert.
	t.Store64(h.root+fldHtOff, newTable)
	t.Persist(h.root+fldHtOff, 8)

	// BUG 3: GC reads the thread's own unflushed table_new and makes a
	// durable record from it (clht_gc.c:190): the old table is leaked if
	// a crash drops table_new.
	h.gc(t)

	t.Persist(h.root+fldTableNew, 8)
	t.Store64(h.root+fldTableNew, 0)
	t.Persist(h.root+fldTableNew, 8)
	return nil
}

// insertMigrated inserts a migrated item into the new table with
// non-temporal stores (buckets in the new table are private to the resizer
// until publication, so no locks are needed).
func (h *HT) insertMigrated(t *pmplain.Mem, table pmem.Addr, n, kf, vf uint64) {
	idx := kf % n
	b := table + 64 + idx*bucketSize
	for i := 0; i < slotsPerBucket; i++ {
		k := t.Load64(b + bktKey0 + pmem.Addr(i*8))
		if k == 0 || k == kf {
			t.NTStore64(b+bktKey0+pmem.Addr(i*8), kf)
			t.NTStore64(b+bktVal0+pmem.Addr(i*8), vf)
			t.Fence()
			return
		}
	}
	// Overflow during migration: drop into the first slot (the original
	// chains; the simplification does not affect the bug surface).
	t.NTStore64(b+bktKey0, kf)
	t.NTStore64(b+bktVal0, vf)
	t.Fence()
}

// gc performs the old-table garbage-collection bookkeeping of Bug 3.
func (h *HT) gc(t *pmplain.Mem) {
	t.SpinLock(h.root + fldGCLock)
	// Intra-thread dirty read: table_new was stored by this thread and
	// not flushed.
	tn := t.Load64(h.root + fldTableNew)
	// Durable side effect based on it: the GC record is written with a
	// non-temporal store.
	t.NTStore64(h.root+fldGCHead, tn)
	t.Fence()
	t.SpinUnlock(h.root + fldGCLock)
}

// Recover implements targets.Target: it re-opens the pool and rebuilds the
// volatile state by scanning the persisted table. Bug 2: bucket locks are
// *not* re-initialized (the original forgets clht_lock_initialization), so a
// lock persisted as held hangs post-recovery accesses; the resize/gc/status
// locks *are* reset, which is why the paper reports those sync
// inconsistencies as validated false positives.
func (h *HT) Recover(t *pmplain.Mem) error {
	pool, err := pmplain.Open(t)
	if err != nil {
		return err
	}
	h.pool = pool
	root := pool.Root(t)
	if root == 0 {
		return errors.New("pclht: no root object")
	}
	h.root = root
	// Re-initialize the global locks (but NOT the bucket locks — Bug 2).
	t.Store64(root+fldResizeLock, 0)
	t.Store64(root+fldGCLock, 0)
	t.Store64(root+fldStatusLock, 0)
	t.Persist(root+fldResizeLock, 24)
	h.annotateRootLocks(t)
	// Rebuild the volatile item count by scanning the recovered table.
	table := t.Load64(root + fldHtOff)
	n := t.Load64(table)
	count := int64(0)
	for i := uint64(0); i < n && i < maxBuckets; i++ {
		b := table + 64 + i*bucketSize
		t.SyncVarHint("bucket-lock", b+bktLock, 8, 0)
		for s := 0; s < slotsPerBucket; s++ {
			k := t.Load64(b + bktKey0 + pmem.Addr(s*8))
			if k != 0 {
				count++
			}
		}
	}
	h.puts.Store(count)
	return nil
}

// Count returns the number of persistent items reachable from the current
// table pointer (volatile bookkeeping; tests use it as an oracle).
func (h *HT) Count(t *pmplain.Mem) int {
	table := h.table(t)
	n := t.Load64(table)
	count := 0
	for i := uint64(0); i < n; i++ {
		b := table + 64 + i*bucketSize
		for s := 0; s < slotsPerBucket; s++ {
			if k := t.Load64(b + bktKey0 + pmem.Addr(s*8)); k != 0 {
				count++
			}
		}
	}
	return count
}
