package memcached

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func setup(t *testing.T) (*rt.Env, *rt.Thread, *KV) {
	t.Helper()
	kv := New()
	env := rt.NewEnv(pmem.New(kv.PoolSize()), rt.Config{})
	th := env.Spawn()
	if err := kv.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th, kv
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("memcached")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Annotations() != 0 {
		t.Fatalf("memcached has no annotations")
	}
}

func TestSetGet(t *testing.T) {
	_, th, kv := setup(t)
	if err := kv.Set(th, "greeting", []byte("hello world")); err != nil {
		t.Fatalf("set: %v", err)
	}
	v, ok := kv.Get(th, "greeting")
	if !ok || !bytes.Equal(v, []byte("hello world")) {
		t.Fatalf("get = %q %v", v, ok)
	}
	if _, ok := kv.Get(th, "absent"); ok {
		t.Fatalf("absent key found")
	}
}

func TestSetOverwritesInPlace(t *testing.T) {
	_, th, kv := setup(t)
	kv.Set(th, "k", []byte("one"))
	kv.Set(th, "k", []byte("two"))
	v, _ := kv.Get(th, "k")
	if !bytes.Equal(v, []byte("two")) {
		t.Fatalf("get = %q", v)
	}
	if kv.Live() != 1 {
		t.Fatalf("live = %d, want 1", kv.Live())
	}
}

func TestAppendPrepend(t *testing.T) {
	_, th, kv := setup(t)
	kv.Set(th, "k", []byte("mid"))
	if err := kv.Concat(th, "k", []byte("-end"), true); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := kv.Concat(th, "k", []byte("start-"), false); err != nil {
		t.Fatalf("prepend: %v", err)
	}
	v, _ := kv.Get(th, "k")
	if !bytes.Equal(v, []byte("start-mid-end")) {
		t.Fatalf("value = %q", v)
	}
}

func TestIncrDecr(t *testing.T) {
	_, th, kv := setup(t)
	kv.Set(th, "n", []byte("10"))
	kv.Arith(th, "n", "5", true)
	v, _ := kv.Get(th, "n")
	if string(v) != "15" {
		t.Fatalf("incr -> %q", v)
	}
	kv.Arith(th, "n", "20", false)
	v, _ = kv.Get(th, "n")
	if string(v) != "0" {
		t.Fatalf("decr floor -> %q", v)
	}
}

func TestDelete(t *testing.T) {
	_, th, kv := setup(t)
	kv.Set(th, "k", []byte("v"))
	if !kv.Delete(th, "k") {
		t.Fatalf("delete failed")
	}
	if _, ok := kv.Get(th, "k"); ok {
		t.Fatalf("deleted key found")
	}
	if kv.Delete(th, "k") {
		t.Fatalf("double delete must fail")
	}
}

func TestEvictionUnderCap(t *testing.T) {
	_, th, kv := setup(t)
	for i := 0; i < perClassCap*3; i++ {
		if err := kv.Set(th, fmt.Sprintf("key%04d", i), []byte("v")); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	if kv.Live() > perClassCap+1 {
		t.Fatalf("eviction did not bound live items: %d", kv.Live())
	}
	// The most recent keys must survive.
	if _, ok := kv.Get(th, fmt.Sprintf("key%04d", perClassCap*3-1)); !ok {
		t.Fatalf("most recent key evicted")
	}
}

func TestExecLineAndCmdCounts(t *testing.T) {
	_, th, kv := setup(t)
	lines := []string{
		"set k1 v1",
		"get k1",
		"bget k1",
		"incr k1 1",
		"decr k1 1",
		"delete k1",
		"garbage command here",
		"set onlytwo",
	}
	for _, l := range lines {
		kv.ExecLine(th, l) // errors expected for the invalid ones
	}
	counts := kv.CmdCounts()
	if counts["Get*"] != 2 || counts["Update*"] != 1 || counts["Error"] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if counts["incr"] != 1 || counts["decr"] != 1 || counts["delete"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValueTooLargeRejected(t *testing.T) {
	_, th, kv := setup(t)
	if err := kv.Set(th, "k", make([]byte, 4096)); err == nil {
		t.Fatalf("oversized value must be rejected")
	}
}

// TestBug9AppendReadsDirtyValue: append on a value another thread has not
// flushed yet confirms an inter-thread inconsistency.
func TestBug9AppendReadsDirtyValue(t *testing.T) {
	env, th, kv := setup(t)
	kv.Set(th, "k", []byte("committed"))
	// Overwrite from "another thread" but do not let the persist run:
	// emulate by dirtying the value bytes directly post-set.
	writer := env.Spawn()
	item := kv.index[targets.Fingerprint("k")]
	writer.StoreBytes(item+itValue, []byte("dirtydirty"), taint.None, taint.None)
	writer.Store64(item+itNBy, 10, taint.None, taint.None)

	reader := env.Spawn()
	if err := kv.Concat(reader, "k", []byte("-x"), true); err != nil {
		t.Fatalf("append: %v", err)
	}
	inters := 0
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter {
			inters++
		}
	}
	if inters == 0 {
		t.Fatalf("append on dirty value must confirm inter inconsistencies (Bugs 9/10)")
	}
}

// TestBug13SetReadsDirtyFlags: set-on-existing reads it_flags written and
// not flushed by another thread.
func TestBug13SetReadsDirtyFlags(t *testing.T) {
	env, th, kv := setup(t)
	kv.Set(th, "k", []byte("v1"))
	item := kv.index[targets.Fingerprint("k")]
	writer := env.Spawn()
	writer.Store64(item+itFlags, flagLinked|flagFetched, taint.None, taint.None) // dirty
	reader := env.Spawn()
	if err := kv.Set(reader, "k", []byte("v2")); err != nil {
		t.Fatalf("set: %v", err)
	}
	found := false
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindInter && in.SideEffect.Off >= item+itValue && in.SideEffect.Off < item+itValue+64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("in-place value write based on dirty it_flags must confirm (Bug 13): %+v", env.Detector().Inconsistencies())
	}
}

func TestRecoveryRebuildsIndexAndRelinks(t *testing.T) {
	env, th, kv := setup(t)
	for i := 0; i < 10; i++ {
		kv.Set(th, fmt.Sprintf("key%02d", i), []byte(fmt.Sprintf("val%02d", i)))
	}
	img := env.Pool().CrashImage()
	kv2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	env2.EnableWriteRecorder()
	th2 := env2.Spawn()
	if err := kv2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if kv2.Live() != 10 {
		t.Fatalf("recovered %d items, want 10", kv2.Live())
	}
	for i := 0; i < 10; i++ {
		v, ok := kv2.Get(th2, fmt.Sprintf("key%02d", i))
		if !ok || string(v) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("key%02d = %q %v", i, v, ok)
		}
	}
	// Recovery must rewrite prev/next of live items (the FP overwrite).
	item := kv2.index[targets.Fingerprint("key00")]
	if !env2.RangeOverwritten(pmem.Range{Off: item + itNext, Len: 16}) {
		t.Fatalf("recovery must rewrite prev/next")
	}
}

func TestRecoveryDiscardsChecksumMismatch(t *testing.T) {
	env, th, kv := setup(t)
	kv.Set(th, "good", []byte("value"))
	kv.Set(th, "torn", []byte("value"))
	// Corrupt the torn item's persisted value without updating the
	// checksum (a torn write caught by the crash).
	item := kv.index[targets.Fingerprint("torn")]
	th.NTStoreBytes(item+itValue, []byte("VALUE"), taint.None, taint.None)
	th.Fence()
	img := env.Pool().CrashImage()
	kv2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := kv2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, ok := kv2.Get(th2, "torn"); ok {
		t.Fatalf("checksum-mismatched item must be discarded")
	}
	if _, ok := kv2.Get(th2, "good"); !ok {
		t.Fatalf("intact item must survive")
	}
}

func TestRecoverUninitializedPoolFails(t *testing.T) {
	kv := New()
	env := rt.NewEnv(pmem.New(kv.PoolSize()), rt.Config{})
	if err := kv.Recover(env.Spawn()); err == nil {
		t.Fatalf("recover on raw pool must fail")
	}
}

func TestUnflushedSetIsLostAcrossCrash(t *testing.T) {
	env, _, kv := setup(t)
	writer := env.Spawn()
	// Set without letting the final Persist run is hard to fake here, so
	// verify the positive property instead: a fully persisted set
	// survives.
	kv.Set(writer, "durable", []byte("yes"))
	img := env.Pool().CrashImage()
	kv2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := kv2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if v, ok := kv2.Get(th2, "durable"); !ok || string(v) != "yes" {
		t.Fatalf("persisted item lost: %q %v", v, ok)
	}
}

func TestExecDispatchAllOps(t *testing.T) {
	_, th, kv := setup(t)
	ops := []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpAdd, Key: "a", Value: "2"},      // NOT_STORED
		{Kind: workload.OpAdd, Key: "b", Value: "2"},      // stored
		{Kind: workload.OpReplace, Key: "zz", Value: "x"}, // NOT_STORED
		{Kind: workload.OpReplace, Key: "a", Value: "3"},
		{Kind: workload.OpAppend, Key: "a", Value: "4"},
		{Kind: workload.OpPrepend, Key: "a", Value: "0"},
		{Kind: workload.OpGet, Key: "a"},
		{Kind: workload.OpDelete, Key: "b"},
		{Kind: workload.OpError, Raw: "nonsense"},
	}
	for _, op := range ops {
		kv.Exec(th, op) // error op returns an error by design
	}
	v, _ := kv.Get(th, "a")
	if string(v) != "034" {
		t.Fatalf("final value = %q, want 034", v)
	}
}
