// Package memcached reimplements memcached-pmem (Lenovo's persistent-slab
// port of memcached) as evaluated by the paper, seeded with the six
// inter-thread bugs PMRace reported in it (paper Table 2, Bugs 9-14):
//
//	Bug 9/10: append/prepend read the existing item's value bytes and
//	  length while another thread's set has not flushed them, and durably
//	  write a value derived from them — inconsistent data.
//	Bug 11: tail eviction walks the LRU through an unflushed "prev" field
//	  and frees (rewrites "slabs_clsid" of) the chunk it points at —
//	  inconsistent index.
//	Bug 12: the same walk follows an unflushed "next" field and updates
//	  that item's "it_flags" — inconsistent index.
//	Bug 13: set-on-existing-key reads the old item's unflushed "it_flags"
//	  and overwrites the value in place — inconsistent data.
//	Bug 14: freeing a chunk derives its "slabs_clsid" marker from the
//	  page-leader chunk's possibly unflushed "slabs_clsid" — inconsistent
//	  index.
//
// Items live in persistent slab pages; the hash index and LRU lists are
// volatile and rebuilt from the slabs on restart. The rebuild rewrites every
// item's prev/next fields, which is why most detected inter-thread
// inconsistencies validate as false positives (§4.4 — the paper filters 62
// of them), while side effects on slabs_clsid, it_flags and value bytes
// survive and are true bugs. Values carry a checksum; recovery discards
// items whose checksum mismatches, and the checksum computation itself is a
// crash-consistent read of possibly dirty data covered by the whitelist.
//
// Unlike the four index targets, the store maps its pool with the raw
// libpmem-style interface (no object-pool formatting) — the reason the
// paper's Figure 10 recommends disabling in-memory checkpoints for it.
package memcached

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func init() {
	targets.Register("memcached", func() targets.Target { return New() })
}

const (
	magic    = 0x6d656d632d706d00 // "memc-pm"
	pageSize = 4096
	// pagesBase is where slab pages start; the tiny header mimics
	// pmem_map_file over a raw file (cheap initialization).
	pagesBase = 64

	// Item header layout within a chunk.
	itNext  = 0
	itPrev  = 8
	itClsid = 16
	itFlags = 24
	itNKey  = 32
	itNBy   = 40
	itCksum = 48
	itKeyFP = 56
	itKey   = 64  // up to 64 key bytes
	itValue = 128 // value bytes up to chunk end

	flagLinked  = 1
	flagFetched = 2
	freeBit     = 0x100 // ORed into slabs_clsid when the chunk is free

	// perClassCap bounds live items per slab class; beyond it the LRU
	// tail is evicted (memcached's -m memory limit, scaled down so
	// evictions actually happen under fuzzing workloads).
	perClassCap = 12
)

// chunk classes: total chunk sizes (header+key+value).
var classSizes = [...]uint64{256, 512, 1024, 2048}

// KV is one memcached-pmem instance. The persistent state is the slab
// pages; everything else (index, LRU, free lists) is volatile and rebuilt by
// Recover.
type KV struct {
	mu    sync.Mutex // the cache_lock
	index map[uint64]pmem.Addr
	lru   [len(classSizes)]struct{ head, tail pmem.Addr }
	live  [len(classSizes)]int
	free  [len(classSizes)][]pmem.Addr

	cmdMu sync.Mutex
	cmds  map[string]int
}

// New creates an unopened instance.
func New() *KV {
	return &KV{index: make(map[uint64]pmem.Addr), cmds: make(map[string]int)}
}

// Name implements targets.Target.
func (kv *KV) Name() string { return "memcached" }

// PoolSize implements targets.Target.
func (kv *KV) PoolSize() uint64 { return 512 << 10 }

// Annotations implements targets.Target (paper Table 3: none for
// memcached-pmem — its locks are volatile mutexes).
func (kv *KV) Annotations() int { return 0 }

// Whitelist returns the benign patterns: checksum computation reads possibly
// dirty value bytes but the result is crash-consistent by construction
// (paper §4.4: the default whitelist covers "checksum-based crash-consistent
// operations in memcached-pmem").
func (kv *KV) Whitelist() []string { return []string{"memcached.(*KV).checksum"} }

// Setup implements targets.Target: a raw libpmem-style mapping — write the
// magic and the page bump pointer, nothing else (no expensive pool
// formatting).
func (kv *KV) Setup(t *rt.Thread) error {
	t.NTStore64(0, magic, taint.None, taint.None)
	t.NTStore64(8, pagesBase, taint.None, taint.None) // page bump pointer
	t.Fence()
	return nil
}

// CmdCounts returns how many commands of each Table 4 class were parsed.
func (kv *KV) CmdCounts() map[string]int {
	kv.cmdMu.Lock()
	defer kv.cmdMu.Unlock()
	out := make(map[string]int, len(kv.cmds))
	for k, v := range kv.cmds {
		out[k] = v
	}
	return out
}

func (kv *KV) countCmd(class string) {
	kv.cmdMu.Lock()
	kv.cmds[class]++
	kv.cmdMu.Unlock()
}

// ExecLine parses one protocol line like process_command() and dispatches
// it; unparseable lines are counted in the "Error" class and rejected.
func (kv *KV) ExecLine(t *rt.Thread, line string) error {
	t.Branch()
	op := workload.ParseOp(line)
	return kv.dispatch(t, op)
}

// Exec implements targets.Target.
func (kv *KV) Exec(t *rt.Thread, op workload.Op) error {
	return kv.dispatch(t, op)
}

func (kv *KV) dispatch(t *rt.Thread, op workload.Op) error {
	kv.countCmd(op.Kind.Class())
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		t.Branch()
		kv.Get(t, op.Key)
	case workload.OpSet:
		t.Branch()
		return kv.Set(t, op.Key, []byte(op.Value))
	case workload.OpAdd:
		t.Branch()
		if _, ok := kv.Get(t, op.Key); ok {
			return nil // NOT_STORED
		}
		return kv.Set(t, op.Key, []byte(op.Value))
	case workload.OpReplace:
		t.Branch()
		if _, ok := kv.Get(t, op.Key); !ok {
			return nil // NOT_STORED
		}
		return kv.Set(t, op.Key, []byte(op.Value))
	case workload.OpAppend:
		t.Branch()
		return kv.Concat(t, op.Key, []byte(op.Value), true)
	case workload.OpPrepend:
		t.Branch()
		return kv.Concat(t, op.Key, []byte(op.Value), false)
	case workload.OpIncr:
		t.Branch()
		return kv.Arith(t, op.Key, op.Value, true)
	case workload.OpDecr:
		t.Branch()
		return kv.Arith(t, op.Key, op.Value, false)
	case workload.OpDelete:
		t.Branch()
		kv.Delete(t, op.Key)
	case workload.OpFlushAll:
		t.Branch()
		kv.FlushAll(t)
	default:
		t.Branch() // error-handling path
		return fmt.Errorf("memcached: ERROR %q", op.Raw)
	}
	return nil
}

// chunkInBounds reports whether an offset loaded from PM can be a chunk
// address (zero counts as the nil sentinel). Pointers read from PM may be
// arbitrary bytes after a torn or raced write; dereferencing them would
// escape the pool.
func chunkInBounds(t *rt.Thread, off pmem.Addr) bool {
	return off == 0 || (off >= pagesBase && off+itValue <= t.Env().Pool().Size())
}

// fitsChunk reports whether a value of the given length fits inside the
// item's own chunk; in-place rewrites beyond the chunk would smash the
// neighbouring item's header.
func fitsChunk(t *rt.Thread, item pmem.Addr, valLen int) bool {
	clsid, _ := t.Load64(item + itClsid)
	cls := int(clsid&0xff) - 1
	if cls < 0 || cls >= len(classSizes) {
		return false
	}
	return uint64(itValue+valLen) <= classSizes[cls]
}

// classFor picks the smallest class fitting a value.
func classFor(valLen int) (int, bool) {
	need := uint64(itValue + valLen)
	for c, size := range classSizes {
		if need <= size {
			return c, true
		}
	}
	return 0, false
}

func pageLeader(off pmem.Addr) pmem.Addr {
	return (off-pagesBase)/pageSize*pageSize + pagesBase
}

// allocChunk returns a free chunk of the class, carving a new page or
// evicting the class LRU tail when needed. Caller holds kv.mu.
func (kv *KV) allocChunk(t *rt.Thread, cls int) (pmem.Addr, error) {
	// Enforce the memory cap first: evicting the LRU tail both frees a
	// chunk and keeps the class within budget.
	if kv.live[cls] >= perClassCap {
		kv.evictTail(t, cls)
	}
	if n := len(kv.free[cls]); n > 0 {
		c := kv.free[cls][n-1]
		kv.free[cls] = kv.free[cls][:n-1]
		return c, nil
	}
	// Carve a new page.
	t.Branch()
	bump, bumpLab := t.Load64(8)
	if bump+pageSize > t.Env().Pool().Size() {
		// Out of pages: force an eviction and retry once.
		kv.evictTail(t, cls)
		if n := len(kv.free[cls]); n > 0 {
			c := kv.free[cls][n-1]
			kv.free[cls] = kv.free[cls][:n-1]
			return c, nil
		}
		return 0, errors.New("memcached: SERVER_ERROR out of memory")
	}
	t.NTStore64(8, bump+pageSize, bumpLab, taint.None)
	size := classSizes[cls]
	for c := bump; c+size <= bump+pageSize; c += size {
		//pmvet:ignore unflushed-store -- Persist(bump, pageSize) below covers every chunk header in the page
		t.Store64(c+itClsid, uint64(cls+1)|freeBit, taint.None, bumpLab)
		kv.free[cls] = append(kv.free[cls], c)
	}
	t.Persist(bump, pageSize)
	// Pop one.
	n := len(kv.free[cls])
	c := kv.free[cls][n-1]
	kv.free[cls] = kv.free[cls][:n-1]
	return c, nil
}

// checksum sums the key and value bytes of an item. The reads may observe
// non-persisted data from other threads, but a mismatching checksum is
// discarded during recovery, so the pattern is crash-consistent
// (whitelisted).
func (kv *KV) checksum(t *rt.Thread, item pmem.Addr, nkey, nbytes uint64) (uint64, taint.Label) {
	kb, klab := t.LoadBytes(item+itKey, nkey)
	vb, vlab := t.LoadBytes(item+itValue, nbytes)
	sum := uint64(0)
	for _, b := range kb {
		sum = sum*131 + uint64(b)
	}
	for _, b := range vb {
		sum = sum*131 + uint64(b)
	}
	return sum, t.Env().Labels().Union(klab, vlab)
}

// Set stores a key/value pair.
func (kv *KV) Set(t *rt.Thread, key string, val []byte) error {
	t.Branch()
	if len(key) > 64 {
		return errors.New("memcached: CLIENT_ERROR key too long")
	}
	cls, ok := classFor(len(val))
	if !ok {
		return errors.New("memcached: SERVER_ERROR object too large")
	}
	kf := targets.Fingerprint(key)

	kv.mu.Lock()
	old, exists := kv.index[kf]
	kv.mu.Unlock()
	if exists {
		t.Branch()
		// BUG 13 (read side): the old item's it_flags may be another
		// thread's unflushed write — the lookup dropped the cache lock
		// (memcached's item refcount pattern), so the read races with
		// in-flight linking. The in-place value overwrite is a durable
		// side effect based on it (memcached.c:2824 analogue reading
		// items.c:1096's store).
		flags, flab := t.Load64(old + itFlags)
		if flags&flagLinked != 0 && fitsChunk(t, old, len(val)) {
			nb := uint64(len(val))
			t.StoreBytes(old+itValue, val, flab, taint.None)
			t.Store64(old+itNBy, nb, flab, taint.None)
			sum, slab := kv.checksum(t, old, uint64(len(key)), nb)
			t.Store64(old+itCksum, sum, slab, taint.None)
			// Flush after the stores (the lag that exposes the
			// value to other threads while dirty).
			t.Persist(old, itValue+nb)
			return nil
		}
	}
	kv.mu.Lock()
	item, err := kv.allocChunk(t, cls)
	if err != nil {
		kv.mu.Unlock()
		return err
	}
	t.Branch()
	kv.live[cls]++
	// Write the item. The value and header writes are regular stores; the
	// flush happens after the cache lock is released — the dirty window
	// behind Bugs 9, 10 and 13 (write sites: value bytes and nbytes, the
	// memcached.c:4292/4293 analogues).
	t.StoreBytes(item+itKey, []byte(key), taint.None, taint.None)
	t.StoreBytes(item+itValue, val, taint.None, taint.None)         // Bug 9 write site
	t.Store64(item+itNBy, uint64(len(val)), taint.None, taint.None) // Bug 10 write site
	t.Store64(item+itNKey, uint64(len(key)), taint.None, taint.None)
	t.Store64(item+itKeyFP, kf, taint.None, taint.None)
	sum, slab := kv.checksum(t, item, uint64(len(key)), uint64(len(val)))
	t.Store64(item+itCksum, sum, slab, taint.None)
	t.Store64(item+itClsid, uint64(cls+1), taint.None, taint.None)
	t.Store64(item+itFlags, flagLinked, taint.None, taint.None) // Bug 13 write site (items.c:1096)
	kv.linkHead(t, cls, item)
	kv.index[kf] = item
	kv.mu.Unlock()
	t.Persist(item, classSizes[cls])
	return nil
}

// linkHead pushes an item at the LRU head; prev/next live in PM but are
// deliberately not flushed — they are rebuilt on recovery (the write sites
// of the validated false positives, items.c:423 / slabs.c:549 analogues).
// Caller holds kv.mu.
func (kv *KV) linkHead(t *rt.Thread, cls int, item pmem.Addr) {
	head := kv.lru[cls].head
	t.Store64(item+itNext, head, taint.None, taint.None) //pmvet:ignore unflushed-store -- LRU link, rebuilt on recovery
	t.Store64(item+itPrev, 0, taint.None, taint.None)    //pmvet:ignore unflushed-store -- LRU link, rebuilt on recovery
	if head != 0 {
		//pmvet:ignore unflushed-store -- Bug 11 write site (items.c:423); LRU links are rebuilt on recovery
		t.Store64(head+itPrev, item, taint.None, taint.None)
	}
	kv.lru[cls].head = item
	if kv.lru[cls].tail == 0 {
		kv.lru[cls].tail = item
	}
}

// evictTail frees the class's LRU tail. This path carries Bugs 11, 12 and
// 14. Caller holds kv.mu.
func (kv *KV) evictTail(t *rt.Thread, cls int) {
	t.Branch()
	tail := kv.lru[cls].tail
	if tail == 0 {
		return
	}
	// BUG 11 (read side, items.c:464): the tail's prev may be unflushed;
	// the free of the chunk it designates durably rewrites that chunk's
	// slabs_clsid through the dirty pointer.
	prev, prlab := t.Load64(tail + itPrev)
	// BUG 12 (read side, slabs.c:412): following the unflushed next and
	// durably updating that item's it_flags.
	next, nxlab := t.Load64(tail + itNext)
	if !chunkInBounds(t, prev) {
		prev = 0
	}
	if !chunkInBounds(t, next) {
		next = 0
	}
	if next != 0 {
		flags, flab := t.Load64(next + itFlags)
		t.Store64(next+itFlags, flags|flagFetched, flab, nxlab) // slabs.c:549-ish side effect
		t.Persist(next+itFlags, 8)
	}
	kv.unlinkLocked(t, cls, tail)
	kv.freeChunk(t, cls, tail, prlab)
	if prev != 0 && prev != tail {
		// BUG 11 side effect: mark the prev-designated chunk's class
		// id through the dirty pointer (the slab accounting write).
		c, clab := t.Load64(prev + itClsid)
		t.Store64(prev+itClsid, c, clab, prlab)
		t.Persist(prev+itClsid, 8)
	}
}

// unlinkLocked removes an item from its LRU list and the index, rewriting
// neighbours' prev/next (rebuilt on recovery — FP-class side effects).
// Caller holds kv.mu.
func (kv *KV) unlinkLocked(t *rt.Thread, cls int, item pmem.Addr) {
	prev, prlab := t.Load64(item + itPrev)
	next, nxlab := t.Load64(item + itNext)
	if !chunkInBounds(t, prev) {
		prev = 0
	}
	if !chunkInBounds(t, next) {
		next = 0
	}
	if prev != 0 {
		t.Store64(prev+itNext, next, nxlab, prlab) //pmvet:ignore unflushed-store -- LRU link, rebuilt on recovery
	} else {
		kv.lru[cls].head = next
	}
	if next != 0 {
		t.Store64(next+itPrev, prev, prlab, nxlab) //pmvet:ignore unflushed-store -- LRU link, rebuilt on recovery
	} else {
		kv.lru[cls].tail = prev
	}
	kf, _ := t.Load64(item + itKeyFP)
	if kv.index[kf] == item {
		delete(kv.index, kf)
	}
	flags, flab := t.Load64(item + itFlags)
	//pmvet:ignore unflushed-store -- deliberate: an unflushed unlink marker is revalidated by the recovery checksum
	t.Store64(item+itFlags, flags&^flagLinked, flab, taint.None)
	kv.live[cls]--
}

// freeChunk returns a chunk to the class free list. BUG 14 (items.c:627
// reading items.c:623): the free marker's class id is derived from the page
// leader's possibly unflushed slabs_clsid.
func (kv *KV) freeChunk(t *rt.Thread, cls int, item pmem.Addr, extra taint.Label) {
	leader := pageLeader(item)
	lc, lclab := t.Load64(leader + itClsid) // may be another thread's dirty write
	lab := t.Env().Labels().Union(lclab, extra)
	if item != leader {
		t.Store64(item+itClsid, (lc&0xff)|freeBit, lab, taint.None)
	} else {
		t.Store64(item+itClsid, uint64(cls+1)|freeBit, taint.None, taint.None)
	}
	t.Persist(item+itClsid, 8)
	kv.free[cls] = append(kv.free[cls], item)
}

// FlushAll drops every stored item — the protocol front-end's flush_all
// (immediate form; the delay argument is not modelled). It walks the index
// in address order so replays of the same seed produce identical PM access
// sequences.
func (kv *KV) FlushAll(t *rt.Thread) {
	t.Branch()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	items := make([]pmem.Addr, 0, len(kv.index))
	for _, it := range kv.index {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, item := range items {
		clsid, _ := t.Load64(item + itClsid)
		cls := int(clsid&0xff) - 1
		if cls < 0 || cls >= len(classSizes) {
			continue
		}
		kv.unlinkLocked(t, cls, item)
		kv.freeChunk(t, cls, item, taint.None)
	}
}

// Get returns the value bytes of a key.
func (kv *KV) Get(t *rt.Thread, key string) ([]byte, bool) {
	kf := targets.Fingerprint(key)
	kv.mu.Lock()
	item, ok := kv.index[kf]
	kv.mu.Unlock()
	if !ok {
		return nil, false
	}
	t.Branch()
	nb, _ := t.Load64(item + itNBy)
	if nb > classSizes[len(classSizes)-1] {
		return nil, false
	}
	val, _ := t.LoadBytes(item+itValue, nb)
	return val, true
}

// Concat implements append/prepend. BUGS 9 and 10 (read side,
// memcached.c:2805): the existing value bytes and length may be another
// thread's unflushed writes; the derived value written to the new item is a
// durable side effect based on them.
func (kv *KV) Concat(t *rt.Thread, key string, suffix []byte, appendTo bool) error {
	kf := targets.Fingerprint(key)
	kv.mu.Lock()
	item, ok := kv.index[kf]
	kv.mu.Unlock()
	if !ok {
		return nil // NOT_STORED
	}
	t.Branch()
	// The item data is read after the cache lock is dropped (memcached's
	// refcount pattern): the reads race with another thread's unflushed
	// set — the Bug 9/10 windows.
	nb, nblab := t.Load64(item + itNBy)
	if nb > classSizes[len(classSizes)-1] {
		return errors.New("memcached: corrupt length")
	}
	old, vlab := t.LoadBytes(item+itValue, nb)
	lab := t.Env().Labels().Union(nblab, vlab)
	var merged []byte
	if appendTo {
		merged = append(append([]byte(nil), old...), suffix...)
	} else {
		merged = append(append([]byte(nil), suffix...), old...)
	}
	if !fitsChunk(t, item, len(merged)) {
		return errors.New("memcached: SERVER_ERROR object too large")
	}
	// Durable write of the derived value (and its length) in place.
	t.StoreBytes(item+itValue, merged, lab, taint.None)
	t.Store64(item+itNBy, uint64(len(merged)), lab, taint.None)
	sum, slab := kv.checksum(t, item, uint64(len(key)), uint64(len(merged)))
	t.Store64(item+itCksum, sum, slab, taint.None)
	t.Persist(item, itValue+uint64(len(merged)))
	return nil
}

// Arith implements incr/decr over ASCII-numeric values.
func (kv *KV) Arith(t *rt.Thread, key, deltaStr string, up bool) error {
	cur, ok := kv.Get(t, key)
	if !ok {
		return nil // NOT_FOUND
	}
	t.Branch()
	n := uint64(0)
	for _, b := range cur {
		if b < '0' || b > '9' {
			return errors.New("memcached: CLIENT_ERROR non-numeric value")
		}
		n = n*10 + uint64(b-'0')
	}
	d := uint64(0)
	for _, b := range []byte(deltaStr) {
		if b < '0' || b > '9' {
			return errors.New("memcached: CLIENT_ERROR invalid delta")
		}
		d = d*10 + uint64(b-'0')
	}
	if up {
		n += d
	} else if n >= d {
		n -= d
	} else {
		n = 0
	}
	return kv.Set(t, key, []byte(fmt.Sprintf("%d", n)))
}

// Delete unlinks and frees a key's item.
func (kv *KV) Delete(t *rt.Thread, key string) bool {
	kf := targets.Fingerprint(key)
	kv.mu.Lock()
	defer kv.mu.Unlock()
	item, ok := kv.index[kf]
	if !ok {
		return false
	}
	t.Branch()
	cls64, _ := t.Load64(item + itClsid)
	cls := int(cls64&0xff) - 1
	if cls < 0 || cls >= len(classSizes) {
		return false
	}
	kv.unlinkLocked(t, cls, item)
	kv.freeChunk(t, cls, item, taint.None)
	return true
}

// Recover implements targets.Target: scan the persistent slabs and rebuild
// the volatile index and LRU lists, rewriting every live item's prev/next
// fields (the overwrite that validates most detected inconsistencies as
// false positives) and discarding items with mismatched checksums.
func (kv *KV) Recover(t *rt.Thread) error {
	m, _ := t.Load64(0)
	if m != magic {
		return errors.New("memcached: pool not initialized")
	}
	kv.index = make(map[uint64]pmem.Addr)
	for c := range kv.lru {
		kv.lru[c] = struct{ head, tail pmem.Addr }{}
		kv.free[c] = nil
		kv.live[c] = 0
	}
	bump, _ := t.Load64(8)
	if bump > t.Env().Pool().Size() {
		bump = pagesBase
	}
	for page := pmem.Addr(pagesBase); page+pageSize <= bump; page += pageSize {
		leaderCls, _ := t.Load64(page + itClsid)
		cls := int(leaderCls&0xff) - 1
		if cls < 0 || cls >= len(classSizes) {
			continue
		}
		size := classSizes[cls]
		for c := page; c+size <= page+pageSize; c += size {
			clsid, _ := t.Load64(c + itClsid)
			flags, _ := t.Load64(c + itFlags)
			if clsid&freeBit != 0 || flags&flagLinked == 0 {
				kv.free[cls] = append(kv.free[cls], c)
				continue
			}
			nkey, _ := t.Load64(c + itNKey)
			nb, _ := t.Load64(c + itNBy)
			if nkey > 64 || itValue+nb > size {
				kv.free[cls] = append(kv.free[cls], c)
				continue
			}
			want, _ := t.Load64(c + itCksum)
			got, _ := kv.checksum(t, c, nkey, nb)
			if want != got {
				// Checksum mismatch: the crash caught a
				// partially persisted item; disregard it.
				kv.free[cls] = append(kv.free[cls], c)
				continue
			}
			kf, _ := t.Load64(c + itKeyFP)
			kv.index[kf] = c
			kv.live[cls]++
			// Relink: rewrite prev/next (the recovery overwrite).
			head := kv.lru[cls].head
			t.Store64(c+itNext, head, taint.None, taint.None)
			t.Store64(c+itPrev, 0, taint.None, taint.None)
			if head != 0 {
				//pmvet:ignore unflushed-store -- recovery relink of the previous head; rebuilt again on the next recovery
				t.Store64(head+itPrev, c, taint.None, taint.None)
			}
			t.Persist(c+itNext, 16)
			kv.lru[cls].head = c
			if kv.lru[cls].tail == 0 {
				kv.lru[cls].tail = c
			}
		}
	}
	return nil
}

// Live returns the number of indexed items (test oracle).
func (kv *KV) Live() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.index)
}
