package cceh

import (
	"fmt"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
)

func setup(t *testing.T) (*rt.Env, *rt.Thread, *HT) {
	t.Helper()
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{HangTimeout: 50 * time.Millisecond})
	th := env.Spawn()
	if err := h.Setup(th); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return env, th, h
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("cceh")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if tgt.Name() != "cceh" || tgt.Annotations() != 2 {
		t.Fatalf("meta: %s %d", tgt.Name(), tgt.Annotations())
	}
}

func TestPutGetDelete(t *testing.T) {
	_, th, h := setup(t)
	if err := h.Put(th, "alpha", "one"); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, ok := h.Get(th, "alpha")
	if !ok || v != targets.Fingerprint("one") {
		t.Fatalf("get = %d %v", v, ok)
	}
	h.Put(th, "alpha", "two")
	if v, _ := h.Get(th, "alpha"); v != targets.Fingerprint("two") {
		t.Fatalf("update failed")
	}
	if !h.Delete(th, "alpha") {
		t.Fatalf("delete failed")
	}
	if _, ok := h.Get(th, "alpha"); ok {
		t.Fatalf("deleted key found")
	}
}

func TestSplitAndDirectoryDoubling(t *testing.T) {
	_, th, h := setup(t)
	const n = 120
	for i := 0; i < n; i++ {
		if err := h.Put(th, fmt.Sprintf("key%04d", i), fmt.Sprintf("v%04d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if h.Depth(th) <= initialDepth {
		t.Fatalf("directory never doubled: depth %d", h.Depth(th))
	}
	lost := 0
	for i := 0; i < n; i++ {
		if _, ok := h.Get(th, fmt.Sprintf("key%04d", i)); !ok {
			lost++
		}
	}
	// The last-slot overwrite fallback may drop a couple of items under
	// pathological skew, but the structure must retain nearly everything.
	if lost > n/20 {
		t.Fatalf("lost %d of %d items across splits", lost, n)
	}
}

// TestBug7IntraInconsistencyOnDoubling: doubling reads the unflushed
// capacity and builds the new directory from it.
func TestBug7IntraInconsistencyOnDoubling(t *testing.T) {
	env, th, h := setup(t)
	for i := 0; i < 120; i++ {
		h.Put(th, fmt.Sprintf("key%04d", i), "v")
	}
	foundIntra := false
	for _, in := range env.Detector().Inconsistencies() {
		if in.Kind == core.KindIntra {
			foundIntra = true
		}
	}
	if !foundIntra {
		t.Fatalf("directory doubling must produce the intra inconsistency (Bug 7)")
	}
}

// TestBug6SegmentLockSurvivesRecovery: segment locks are not re-initialized.
func TestBug6SegmentLockSurvivesRecovery(t *testing.T) {
	env, th, h := setup(t)
	h.Put(th, "k", "v")
	// Identify the segment of "k" and craft an image with its lock held.
	kf := targets.Fingerprint("k")
	seg, _, _ := h.segmentFor(th, kf)
	th.SpinLock(seg + segLock)
	img := env.Pool().CrashImageWith([]pmem.Range{{Off: seg + segLock, Len: 8}})

	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: 20 * time.Millisecond})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if lock, _ := th2.Load64(seg + segLock); lock != 1 {
		t.Fatalf("segment lock must still be held after recovery (Bug 6)")
	}
	if lock, _ := th2.Load64(h2.root + fldDirLock); lock != 0 {
		t.Fatalf("dir lock must be re-initialized")
	}
	// Post-recovery writers to that segment hang.
	defer func() {
		if _, ok := recover().(rt.HangError); !ok {
			t.Fatalf("expected hang on never-released segment lock")
		}
	}()
	h2.Put(th2, "k", "v2")
}

func TestSyncInconsistenciesRecorded(t *testing.T) {
	env, th, h := setup(t)
	h.Put(th, "k", "v")
	names := map[string]bool{}
	for _, si := range env.Detector().SyncInconsistencies() {
		names[si.Var.Name] = true
	}
	if !names["segment-lock"] {
		t.Fatalf("segment-lock updates must be detected, got %v", names)
	}
}

func TestPersistedDataSurvivesCrash(t *testing.T) {
	env, th, h := setup(t)
	var keys []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key%04d", i)
		keys = append(keys, k)
		h.Put(th, k, "v")
	}
	img := env.Pool().CrashImage()
	h2 := New()
	env2 := rt.NewEnv(pmem.FromImage(img), rt.Config{})
	th2 := env2.Spawn()
	if err := h2.Recover(th2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, k := range keys {
		if _, ok := h2.Get(th2, k); !ok {
			t.Fatalf("persisted key %s lost", k)
		}
	}
}

func TestRecoverEmptyPoolFails(t *testing.T) {
	h := New()
	env := rt.NewEnv(pmem.New(h.PoolSize()), rt.Config{})
	if err := h.Recover(env.Spawn()); err == nil {
		t.Fatalf("recover on empty pool must fail")
	}
}

func TestDirIndex(t *testing.T) {
	if dirIndex(0xFFFFFFFFFFFFFFFF, 2) != 3 {
		t.Fatalf("top-2-bit index of all-ones must be 3")
	}
	if dirIndex(0, 2) != 0 {
		t.Fatalf("top bits of zero must be 0")
	}
	if dirIndex(123, 0) != 0 {
		t.Fatalf("depth 0 must index 0")
	}
}
