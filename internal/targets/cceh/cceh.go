// Package cceh reimplements CCEH (Cacheline-Conscious Extendible Hashing,
// FAST '19), one of the lock-based PM indexes the paper evaluates, seeded
// with the two bugs PMRace found in it (paper Table 2, Bugs 6-7):
//
//	Bug 6 (Sync): segment locks live in PM and are not released after a
//	  restart — post-recovery writers to the segment hang.
//	Bug 7 (Intra): directory doubling stores the new directory capacity and
//	  reads it back before flushing, allocating/initializing the new
//	  directory from the non-persisted value — PM leakage after a crash.
//
// The structure is extendible hashing: a directory of segment pointers
// indexed by the top bits of the key hash; segments carry a persistent lock,
// a local depth and a fixed array of key/value slots; a full segment splits,
// doubling the directory when its local depth reaches the global depth.
// Searches are lock-free (inter-thread inconsistency candidates without
// durable side effects — the paper reports 15 candidates and 0 confirmed
// inter-thread inconsistencies for CCEH).
package cceh

import (
	"errors"
	"math/bits"
	"strconv"
	"sync"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func init() {
	targets.Register("cceh", func() targets.Target { return New() })
}

const (
	slotsPerSegment = 16
	segHeaderSize   = 64
	segSize         = segHeaderSize + slotsPerSegment*16 // lock|depth + (key,val) slots
	initialDepth    = 1
	maxDepth        = 8

	// Root object fields (separate cache lines where dirtiness matters).
	fldDirOff   = 0   // directory pointer
	fldDepth    = 8   // global depth
	fldCapacity = 64  // directory capacity — Bug 7's non-persisted field
	fldDirLock  = 128 // persistent directory lock (annotated, never left held)
	rootSize    = 192

	// Segment fields.
	segLock  = 0
	segDepth = 8
	segSlots = segHeaderSize
)

// HT is one CCEH instance.
type HT struct {
	pool *pmdk.ObjPool
	root pmem.Addr

	growMu sync.Mutex // volatile serialization of directory growth
}

// New creates an unopened instance.
func New() *HT { return &HT{} }

// Name implements targets.Target.
func (h *HT) Name() string { return "cceh" }

// PoolSize implements targets.Target.
func (h *HT) PoolSize() uint64 { return 512 << 10 }

// Annotations implements targets.Target: segment-lock and dir-lock carry
// annotations (paper Table 3: 2 annotations for CCEH).
func (h *HT) Annotations() int { return 2 }

// Setup implements targets.Target.
func (h *HT) Setup(t *rt.Thread) error {
	h.pool = pmdk.Create(t)
	root, err := h.pool.Alloc(t, rootSize)
	if err != nil {
		return err
	}
	h.root = root
	t.Env().AnnotateSyncVar(core.SyncVar{Name: "dir-lock", Addr: root + fldDirLock, Size: 8, InitVal: 0})

	// Two initial segments, directory of two entries.
	capacity := uint64(1) << initialDepth
	dir, err := h.newDirectory(t, capacity, taint.None)
	if err != nil {
		return err
	}
	for i := uint64(0); i < capacity; i++ {
		seg, err := h.newSegment(t, initialDepth, taint.None)
		if err != nil {
			return err
		}
		t.NTStore64(dir+8+i*8, seg, taint.None, taint.None)
	}
	t.Fence()
	t.Store64(root+fldDirOff, dir, taint.None, taint.None)
	t.Store64(root+fldDepth, initialDepth, taint.None, taint.None)
	t.Store64(root+fldCapacity, capacity, taint.None, taint.None)
	t.Persist(root, rootSize)
	h.pool.SetRoot(t, root)
	return nil
}

// newDirectory allocates a directory object: a capacity header followed by
// capacity segment pointers. The header write carries the taint of the
// capacity value — Bug 7's durable side effect when that value is dirty.
func (h *HT) newDirectory(t *rt.Thread, capacity uint64, capLab taint.Label) (pmem.Addr, error) {
	dir, err := h.pool.Alloc(t, 8+capacity*8)
	if err != nil {
		return 0, err
	}
	//pmvet:ignore fence-pairing -- callers fence after finishing directory initialization
	t.NTStore64(dir, capacity, capLab, taint.None)
	return dir, nil
}

// newSegment allocates a zeroed segment with the given local depth and
// annotates its persistent lock. depthLab carries the taint of the depth
// value, which split derives from a loaded local depth.
func (h *HT) newSegment(t *rt.Thread, depth uint64, depthLab taint.Label) (pmem.Addr, error) {
	seg, err := h.pool.Alloc(t, segSize)
	if err != nil {
		return 0, err
	}
	zero := make([]byte, segSize)
	t.NTStoreBytes(seg, zero, taint.None, taint.None)
	t.NTStore64(seg+segDepth, depth, depthLab, taint.None)
	t.Fence()
	t.Env().AnnotateSyncVar(core.SyncVar{Name: "segment-lock", Addr: seg + segLock, Size: 8, InitVal: 0})
	return seg, nil
}

// Exec implements targets.Target.
func (h *HT) Exec(t *rt.Thread, op workload.Op) error {
	t.Branch()
	switch op.Kind {
	case workload.OpGet, workload.OpBGet:
		h.Get(t, op.Key)
	case workload.OpSet, workload.OpAdd, workload.OpReplace, workload.OpAppend, workload.OpPrepend:
		return h.Put(t, op.Key, op.Value)
	case workload.OpIncr, workload.OpDecr:
		n, _ := strconv.Atoi(op.Value)
		return h.Put(t, op.Key, strconv.Itoa(n*2+1))
	case workload.OpDelete:
		h.Delete(t, op.Key)
	}
	return nil
}

// segmentFor resolves the segment for a key hash through the directory. The
// global depth is derived from the directory object's own capacity header
// rather than a separate root field: a lock-free reader must never combine
// an old directory pointer with a new depth (or vice versa), or it would
// index past the directory into unrelated memory.
func (h *HT) segmentFor(t *rt.Thread, kf uint64) (seg pmem.Addr, lab taint.Label, depth uint64) {
	dir, dlab := t.Load64(h.root + fldDirOff)
	cap64, clab := t.Load64(dir) // capacity header of this directory
	lab = t.Env().Labels().UnionAll([]taint.Label{dlab, clab})
	gd := uint64(bits.Len64(cap64))
	if gd > 0 {
		gd--
	}
	if gd > maxDepth {
		gd = maxDepth
	}
	idx := dirIndex(kf, gd)
	seg, slab := t.Load64(dir + 8 + idx*8)
	return seg, t.Env().Labels().Union(lab, slab), gd
}

// dirIndex takes the top gd bits of the hash.
func dirIndex(kf, gd uint64) uint64 {
	if gd == 0 {
		return 0
	}
	return kf >> (64 - gd)
}

// Get is a lock-free search; reads of in-flight (unflushed) slot writes are
// inter-thread inconsistency candidates without durable side effects.
func (h *HT) Get(t *rt.Thread, key string) (uint64, bool) {
	t.Branch()
	kf := targets.Fingerprint(key)
	seg, _, _ := h.segmentFor(t, kf)
	for i := 0; i < slotsPerSegment; i++ {
		slot := seg + segSlots + pmem.Addr(i*16)
		k, _ := t.Load64(slot)
		if k == kf {
			v, _ := t.Load64(slot + 8)
			return v, true
		}
	}
	return 0, false
}

// Put inserts or updates under the persistent segment lock.
func (h *HT) Put(t *rt.Thread, key, val string) error {
	t.Branch()
	kf, vf := targets.Fingerprint(key), targets.Fingerprint(val)
	for attempt := 0; attempt < maxDepth+2; attempt++ {
		seg, lab, gd := h.segmentFor(t, kf)
		t.SpinLock(seg + segLock)
		// Re-check that the segment was not split while waiting.
		cur, _, _ := h.segmentFor(t, kf)
		if cur != seg {
			t.SpinUnlock(seg + segLock)
			continue
		}
		free := -1
		for i := 0; i < slotsPerSegment; i++ {
			slot := seg + segSlots + pmem.Addr(i*16)
			k, _ := t.Load64(slot)
			if k == kf {
				// Update: a regular store followed by an
				// explicit flush (the dirty window Get readers
				// observe).
				t.Store64(slot+8, vf, taint.None, lab)
				t.Persist(slot+8, 8)
				t.SpinUnlock(seg + segLock)
				return nil
			}
			if k == 0 && free < 0 {
				free = i
			}
		}
		if free >= 0 {
			slot := seg + segSlots + pmem.Addr(free*16)
			t.Store64(slot+8, vf, taint.None, lab)
			t.Store64(slot, kf, taint.None, lab)
			t.Persist(slot, 16)
			t.SpinUnlock(seg + segLock)
			return nil
		}
		t.SpinUnlock(seg + segLock)
		if err := h.split(t, kf, gd); err != nil {
			return err
		}
	}
	return errors.New("cceh: segment still full after split")
}

// Delete zeroes the key slot under the segment lock.
func (h *HT) Delete(t *rt.Thread, key string) bool {
	t.Branch()
	kf := targets.Fingerprint(key)
	seg, lab, _ := h.segmentFor(t, kf)
	t.SpinLock(seg + segLock)
	for i := 0; i < slotsPerSegment; i++ {
		slot := seg + segSlots + pmem.Addr(i*16)
		k, _ := t.Load64(slot)
		if k == kf {
			t.Store64(slot, 0, taint.None, lab)
			t.Persist(slot, 8)
			t.SpinUnlock(seg + segLock)
			return true
		}
	}
	t.SpinUnlock(seg + segLock)
	return false
}

// split replaces a full segment with two of double local depth, doubling the
// directory when the local depth reaches the global depth (Bug 7 lives in
// the doubling path).
func (h *HT) split(t *rt.Thread, kf, gdSeen uint64) error {
	h.growMu.Lock()
	defer h.growMu.Unlock()
	t.Branch()
	t.SpinLock(h.root + fldDirLock)
	defer t.SpinUnlock(h.root + fldDirLock)

	dir, dlab := t.Load64(h.root + fldDirOff)
	gd, _ := t.Load64(h.root + fldDepth)
	idx := dirIndex(kf, gd)
	seg, _ := t.Load64(dir + 8 + idx*8)
	ld, ldlab := t.Load64(seg + segDepth)

	if ld >= gd {
		if gd >= maxDepth {
			return errors.New("cceh: directory at maximum depth")
		}
		var err error
		dir, gd, err = h.doubleDirectory(t, dir, gd)
		if err != nil {
			return err
		}
		// The doubled directory comes fresh from Alloc.
		dlab = taint.None
		idx = dirIndex(kf, gd)
	}

	// Split seg into two segments of local depth ld+1.
	left, err := h.newSegment(t, ld+1, ldlab)
	if err != nil {
		return err
	}
	right, err := h.newSegment(t, ld+1, ldlab)
	if err != nil {
		return err
	}
	t.SpinLock(seg + segLock)
	for i := 0; i < slotsPerSegment; i++ {
		slot := seg + segSlots + pmem.Addr(i*16)
		k, klab := t.Load64(slot)
		if k == 0 {
			continue
		}
		v, vlab := t.Load64(slot + 8)
		dst := left
		if k>>(64-(ld+1))&1 == 1 {
			dst = right
		}
		h.placeInSegment(t, dst, k, v, t.Env().Labels().Union(klab, vlab))
	}
	t.SpinUnlock(seg + segLock)

	// Point every directory entry that referenced seg at the matching new
	// segment; entry updates are flushed immediately (the original's
	// clflush-per-entry), leaving no dirty directory window.
	cap64, _ := t.Load64(dir)
	for i := uint64(0); i < cap64; i++ {
		e, _ := t.Load64(dir + 8 + i*8)
		if e != seg {
			continue
		}
		dst := left
		if i>>(gd-(ld+1))&1 == 1 {
			dst = right
		}
		t.NTStore64(dir+8+i*8, dst, taint.None, dlab)
	}
	t.Fence()
	return nil
}

// doubleDirectory doubles the directory. BUG 7: the new capacity is stored
// (CCEH.h:165 analogue), read back before any flush (CCEH.cpp:171 analogue)
// and used to allocate and initialize the new directory — a durable side
// effect based on non-persisted data. If the crash drops the capacity store,
// the allocated directory is unreachable garbage: PM leakage.
func (h *HT) doubleDirectory(t *rt.Thread, dir, gd uint64) (pmem.Addr, uint64, error) {
	oldCap, oclab := t.Load64(dir)
	t.Store64(h.root+fldCapacity, oldCap*2, oclab, taint.None) // not flushed yet
	// Intra-thread dirty read of the capacity just stored.
	newCap, capLab := t.Load64(h.root + fldCapacity)
	newDir, err := h.newDirectory(t, newCap, capLab) // durable side effect
	if err != nil {
		return 0, 0, err
	}
	for i := uint64(0); i < oldCap; i++ {
		e, elab := t.Load64(dir + 8 + i*8)
		t.NTStore64(newDir+8+2*i*8, e, elab, capLab)
		t.NTStore64(newDir+8+(2*i+1)*8, e, elab, capLab)
	}
	t.Fence()
	// CCEH publishes the new directory with immediately flushed stores
	// (MSB-tagged pointer + clflush in the original): no dirty window, so
	// — matching the paper — PMRace finds no inter-thread bug here.
	t.NTStore64(h.root+fldDirOff, newDir, taint.None, taint.None)
	t.NTStore64(h.root+fldDepth, gd+1, taint.None, taint.None)
	t.Fence()
	t.Persist(h.root+fldCapacity, 8)
	return newDir, gd + 1, nil
}

func (h *HT) placeInSegment(t *rt.Thread, seg pmem.Addr, k, v uint64, lab taint.Label) {
	for i := 0; i < slotsPerSegment; i++ {
		slot := seg + segSlots + pmem.Addr(i*16)
		cur, _ := t.Load64(slot)
		if cur == 0 || cur == k {
			t.NTStore64(slot, k, taint.None, lab)
			t.NTStore64(slot+8, v, taint.None, lab)
			t.Fence()
			return
		}
	}
	// Pathological skew: overwrite the last slot rather than silently
	// dropping the item (the original chains via probing; the
	// simplification does not affect the bug surface).
	slot := seg + segSlots + pmem.Addr((slotsPerSegment-1)*16)
	t.NTStore64(slot, k, taint.None, lab)
	t.NTStore64(slot+8, v, taint.None, lab)
	t.Fence()
}

// Recover implements targets.Target. BUG 6: segment locks are not released
// — a lock persisted as held hangs post-recovery writers. The directory
// lock is re-initialized (its sync inconsistencies validate as benign).
func (h *HT) Recover(t *rt.Thread) error {
	pool, err := pmdk.Open(t)
	if err != nil {
		return err
	}
	h.pool = pool
	root, _ := pool.Root(t)
	if root == 0 {
		return errors.New("cceh: no root object")
	}
	h.root = root
	t.Store64(root+fldDirLock, 0, taint.None, taint.None)
	t.Persist(root+fldDirLock, 8)
	t.Env().AnnotateSyncVar(core.SyncVar{Name: "dir-lock", Addr: root + fldDirLock, Size: 8, InitVal: 0})
	// Walk the directory to re-annotate segment locks (but never reset
	// them — Bug 6).
	dir, _ := t.Load64(root + fldDirOff)
	cap64, _ := t.Load64(dir)
	seen := map[pmem.Addr]bool{}
	for i := uint64(0); i < cap64 && i < (1<<maxDepth); i++ {
		seg, _ := t.Load64(dir + 8 + i*8)
		if seg == 0 || seen[seg] {
			continue
		}
		seen[seg] = true
		t.Env().AnnotateSyncVar(core.SyncVar{Name: "segment-lock", Addr: seg + segLock, Size: 8, InitVal: 0})
	}
	return nil
}

// Depth returns the current global depth (test oracle).
func (h *HT) Depth(t *rt.Thread) uint64 {
	gd, _ := t.Load64(h.root + fldDepth)
	return gd
}
