package pmem

import (
	"math/bits"
	"sync"
)

// imageBufs recycles crash-image byte slices. Every detected inconsistency
// duplicates the whole pool (paper §4.4); on busy campaigns that is the
// dominant allocation, so consumers hand exhausted images back through
// RecycleImage instead of leaving them to the garbage collector.
var imageBufs sync.Pool

// getImageBuf returns a zero-copy-reusable buffer of length n, either
// recycled or freshly allocated. Callers overwrite the full length.
func getImageBuf(n uint64) []byte {
	if v := imageBufs.Get(); v != nil {
		if b := v.([]byte); uint64(cap(b)) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// RecycleImage returns a crash image obtained from CrashImage or
// CrashImageWith to the buffer pool. The caller must not use the slice
// afterwards.
func RecycleImage(img []byte) {
	if cap(img) == 0 {
		return
	}
	imageBufs.Put(img[:cap(img)])
}

// CrashImage returns a copy of the persisted image: the bytes that survive a
// power failure at this instant. Everything still sitting in the volatile
// cache overlay is lost, exactly as under the ADR failure model assumed by
// the paper (§3.1).
func (p *Pool) CrashImage() []byte {
	img := getImageBuf(p.size)
	p.guard.Lock()
	copy(img, p.persisted)
	p.guard.Unlock()
	return img
}

// CrashImageWith returns a crash image in which the given ranges are taken
// from the cache image instead of the persisted image. PMRace uses it to
// construct the adversarial crash point for a detected inconsistency: the
// durable side effect has reached PM (its flush completed) while the
// non-persisted data it depends on has not (paper Figure 3).
func (p *Pool) CrashImageWith(extra []Range) []byte {
	img := getImageBuf(p.size)
	p.guard.Lock()
	copy(img, p.persisted)
	for _, r := range extra {
		if r.Off+r.Len > p.size {
			continue
		}
		copy(img[r.Off:r.End()], p.cache[r.Off:r.End()])
	}
	p.guard.Unlock()
	return img
}

// Snapshot is a deep copy of a pool's full state, used to implement the
// in-memory checkpoints that replace AFL++'s fork server (paper §5): a fuzz
// campaign restores the snapshot taken right after pool initialization
// instead of re-initializing the pool.
type Snapshot struct {
	size      uint64
	cache     []byte
	persisted []byte
	meta      []WordMeta
	shadow    []uint32
	eadr      bool
}

// Snapshot captures the pool's current cache image, persisted image and
// per-word metadata. Pending (flushed but unfenced) lines are not captured;
// checkpoints are taken at quiescent points where no flush is in flight.
func (p *Pool) Snapshot() *Snapshot {
	p.guard.Lock()
	defer p.guard.Unlock()
	s := &Snapshot{
		size:      p.size,
		cache:     append([]byte(nil), p.cache...),
		persisted: append([]byte(nil), p.persisted...),
		meta:      append([]WordMeta(nil), p.meta...),
		shadow:    append([]uint32(nil), p.shadow...),
		eadr:      p.eadr,
	}
	return s
}

// Restore resets the pool to a previously captured snapshot. The last-access
// records and pending flush sets are cleared: the restored pool behaves like
// a freshly checkpointed process.
//
// When the pool's state is already based on the same snapshot (it was
// created by NewFromSnapshot or previously restored to it), only the cache
// lines touched since then are copied back, so the cost of the fork-server
// substitute is proportional to one execution's dirty set rather than the
// pool size.
func (p *Pool) Restore(s *Snapshot) {
	p.guard.Lock()
	defer p.guard.Unlock()
	if s.size != p.size {
		panic("pmem: snapshot size mismatch")
	}
	if p.baseSnap == s {
		p.restoreTouched(s)
	} else {
		copy(p.cache, s.cache)
		copy(p.persisted, s.persisted)
		copy(p.meta, s.meta)
		copy(p.shadow, s.shadow)
		for i := range p.last {
			p.last[i] = Accessor{}
		}
		for i := range p.touched {
			p.touched[i].Store(0)
		}
	}
	p.pending = make(map[ThreadID][]stagedLine)
	p.baseSnap = s
}

// restoreTouched copies back only the lines recorded in the touched bitmap.
// The caller holds the guard exclusively.
func (p *Pool) restoreTouched(s *Snapshot) {
	for wi := range p.touched {
		w := p.touched[wi].Load()
		if w == 0 {
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			line := (Addr(wi)*64 + Addr(b)) * LineSize
			end := line + LineSize
			copy(p.cache[line:end], s.cache[line:end])
			copy(p.persisted[line:end], s.persisted[line:end])
			wFirst, wLast := line/WordSize, (end-1)/WordSize
			copy(p.meta[wFirst:wLast+1], s.meta[wFirst:wLast+1])
			copy(p.shadow[wFirst:wLast+1], s.shadow[wFirst:wLast+1])
			for i := wFirst; i <= wLast; i++ {
				p.last[i] = Accessor{}
			}
		}
		p.touched[wi].Store(0)
	}
}

// NewFromSnapshot creates an independent pool initialized from a snapshot,
// preserving the source pool's platform options (eADR).
func NewFromSnapshot(s *Snapshot) *Pool {
	p := NewWithOptions(s.size, Options{EADR: s.eadr})
	p.Restore(s)
	return p
}
