package pmem

// CrashImage returns a copy of the persisted image: the bytes that survive a
// power failure at this instant. Everything still sitting in the volatile
// cache overlay is lost, exactly as under the ADR failure model assumed by
// the paper (§3.1).
func (p *Pool) CrashImage() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	img := make([]byte, p.size)
	copy(img, p.persisted)
	return img
}

// CrashImageWith returns a crash image in which the given ranges are taken
// from the cache image instead of the persisted image. PMRace uses it to
// construct the adversarial crash point for a detected inconsistency: the
// durable side effect has reached PM (its flush completed) while the
// non-persisted data it depends on has not (paper Figure 3).
func (p *Pool) CrashImageWith(extra []Range) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	img := make([]byte, p.size)
	copy(img, p.persisted)
	for _, r := range extra {
		if r.Off+r.Len > p.size {
			continue
		}
		copy(img[r.Off:r.End()], p.cache[r.Off:r.End()])
	}
	return img
}

// Snapshot is a deep copy of a pool's full state, used to implement the
// in-memory checkpoints that replace AFL++'s fork server (paper §5): a fuzz
// campaign restores the snapshot taken right after pool initialization
// instead of re-initializing the pool.
type Snapshot struct {
	size      uint64
	cache     []byte
	persisted []byte
	meta      []WordMeta
	shadow    []uint32
	eadr      bool
}

// Snapshot captures the pool's current cache image, persisted image and
// per-word metadata. Pending (flushed but unfenced) lines are not captured;
// checkpoints are taken at quiescent points where no flush is in flight.
func (p *Pool) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{
		size:      p.size,
		cache:     append([]byte(nil), p.cache...),
		persisted: append([]byte(nil), p.persisted...),
		meta:      append([]WordMeta(nil), p.meta...),
		shadow:    append([]uint32(nil), p.shadow...),
		eadr:      p.eadr,
	}
	return s
}

// Restore resets the pool to a previously captured snapshot. The last-access
// records and pending flush sets are cleared: the restored pool behaves like
// a freshly checkpointed process.
func (p *Pool) Restore(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.size != p.size {
		panic("pmem: snapshot size mismatch")
	}
	copy(p.cache, s.cache)
	copy(p.persisted, s.persisted)
	copy(p.meta, s.meta)
	copy(p.shadow, s.shadow)
	for i := range p.last {
		p.last[i] = Accessor{}
	}
	p.pending = make(map[ThreadID][]stagedLine)
}

// NewFromSnapshot creates an independent pool initialized from a snapshot,
// preserving the source pool's platform options (eADR).
func NewFromSnapshot(s *Snapshot) *Pool {
	p := NewWithOptions(s.size, Options{EADR: s.eadr})
	p.Restore(s)
	return p
}
