package pmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// imageBufs recycles crash-image byte slices. Every detected inconsistency
// duplicates the whole pool (paper §4.4); on busy campaigns that is the
// dominant allocation, so consumers hand exhausted images back through
// RecycleImage instead of leaving them to the garbage collector.
var imageBufs sync.Pool

// getImageBuf returns a zero-copy-reusable buffer of length n, either
// recycled or freshly allocated. Callers overwrite the full length.
func getImageBuf(n uint64) []byte {
	if v := imageBufs.Get(); v != nil {
		if b := v.([]byte); uint64(cap(b)) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// RecycleImage returns a crash image obtained from CrashImage or
// CrashImageWith to the buffer pool. The caller must not use the slice
// afterwards.
func RecycleImage(img []byte) {
	if cap(img) == 0 {
		return
	}
	imageBufs.Put(img[:cap(img)])
}

// CrashImage returns a copy of the persisted image: the bytes that survive a
// power failure at this instant. Everything still sitting in the volatile
// cache overlay is lost, exactly as under the ADR failure model assumed by
// the paper (§3.1).
func (p *Pool) CrashImage() []byte {
	img := getImageBuf(p.size)
	p.guard.Lock()
	copy(img, p.persisted)
	p.guard.Unlock()
	return img
}

// CrashImageWith returns a crash image in which the given ranges are taken
// from the cache image instead of the persisted image. PMRace uses it to
// construct the adversarial crash point for a detected inconsistency: the
// durable side effect has reached PM (its flush completed) while the
// non-persisted data it depends on has not (paper Figure 3).
//
// A range that partially overlaps the pool is clamped to the pool's end; a
// range that lies entirely outside it (or whose length overflows) panics —
// silently dropping it would validate the finding against an image missing
// its own side effect, turning a real bug into a falsely-clean recovery run.
func (p *Pool) CrashImageWith(extra []Range) []byte {
	img := getImageBuf(p.size)
	p.guard.Lock()
	copy(img, p.persisted)
	for _, r := range extra {
		if r.Len == 0 {
			continue
		}
		if r.Off >= p.size || r.End() < r.Off {
			p.guard.Unlock()
			panic(fmt.Sprintf("pmem: crash-image range [%#x,%#x) entirely outside pool of size %#x",
				r.Off, r.End(), p.size))
		}
		end := r.End()
		if end > p.size {
			end = p.size
		}
		copy(img[r.Off:end], p.cache[r.Off:end])
	}
	p.guard.Unlock()
	return img
}

// Names of the fixed enumerated crash states; per-pending-line states are
// named "pending-line@<offset>".
const (
	// StateSideEffect is the paper's §4.4 adversarial image: the durable
	// side effect is force-persisted, the dependent dirty data is lost.
	StateSideEffect = "side-effect-persisted"
	// StateBaseline is the plain persisted image: what an ADR crash with
	// no adversarial timing preserves.
	StateBaseline = "persisted-baseline"
)

// CrashState is one plausible post-crash pool image for a finding.
type CrashState struct {
	// Name identifies how the state was constructed (StateSideEffect,
	// StateBaseline, or "pending-line@<offset>").
	Name string
	// HasSideEffect reports that the finding's durable side effect is
	// persisted in this image. The §4.4 overwrite oracle only applies to
	// such states: in the baseline the side effect never reached PM, so
	// recovery has nothing to overwrite and only a hang or error there is
	// evidence of a bug.
	HasSideEffect bool
	// Img is the crash image; recyclable through RecycleImage.
	Img []byte
}

// AdversarialState wraps a single §4.4 adversarial image (from
// CrashImageWith) as a one-entry state list — the single-image validation
// the paper describes, and what callers that manage their own images use.
func AdversarialState(img []byte) []CrashState {
	return []CrashState{{Name: StateSideEffect, HasSideEffect: true, Img: img}}
}

// RecycleStates hands every state image back to the buffer pool. The caller
// must not use the states afterwards.
func RecycleStates(states []CrashState) {
	for i := range states {
		RecycleImage(states[i].Img)
		states[i].Img = nil
	}
}

// CrashStates enumerates up to max plausible crash states for a finding
// whose durable side effect covers the extra ranges (WITCHER-style bounded
// crash-state enumeration layered on the paper's single adversarial image):
//
//  1. the §4.4 adversarial image — side effect persisted, dirty data lost;
//  2. the persisted-only baseline;
//  3. one state per flushed-but-unfenced cache line, the adversarial image
//     with that line's staged data additionally applied — a crash after the
//     line left the CPU but before its fence retired.
//
// The enumeration order is deterministic (pending lines sorted by address),
// so a finding validates identically across runs. max <= 1 returns exactly
// the adversarial image, reproducing single-image validation.
func (p *Pool) CrashStates(extra []Range, max int) []CrashState {
	adv := p.CrashImageWith(extra)
	states := []CrashState{{Name: StateSideEffect, HasSideEffect: true, Img: adv}}
	if max <= 1 {
		return states
	}
	states = append(states, CrashState{Name: StateBaseline, Img: p.CrashImage()})
	if len(states) >= max {
		return states
	}

	// Collect the distinct staged lines across threads, keeping the latest
	// view per line. Thread order is sorted so map iteration cannot perturb
	// which view wins or the resulting state order. A captured entry
	// contributes its materialized flush-time data; an uncaptured entry's
	// flush-time data is the line's current contents (pendingLine
	// invariant), read under the line's stripe.
	p.guard.RLock()
	p.pendingMu.Lock()
	lineData := make(map[Addr][LineSize]byte, 4)
	current := make(map[Addr]bool, 4)
	tids := make([]ThreadID, 0, len(p.pending))
	for t := range p.pending {
		tids = append(tids, t)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, t := range tids {
		for _, s := range p.pending[t] {
			if s.cap != nil {
				lineData[s.line] = s.cap.data
				delete(current, s.line)
			} else {
				current[s.line] = true
			}
		}
	}
	p.pendingMu.Unlock()
	for l := range current {
		m := p.lockSpan(l, LineSize)
		var data [LineSize]byte
		copy(data[:], p.cache[l:l+LineSize])
		p.unlockSpan(m)
		lineData[l] = data
	}
	p.guard.RUnlock()

	lines := make([]Addr, 0, len(lineData))
	for l := range lineData {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		if len(states) >= max {
			break
		}
		img := getImageBuf(p.size)
		copy(img, adv)
		data := lineData[l]
		copy(img[l:l+LineSize], data[:])
		states = append(states, CrashState{
			Name:          fmt.Sprintf("pending-line@%#x", l),
			HasSideEffect: true,
			Img:           img,
		})
	}
	return states
}

// Snapshot is a deep copy of a pool's full state, used to implement the
// in-memory checkpoints that replace AFL++'s fork server (paper §5): a fuzz
// campaign restores the snapshot taken right after pool initialization
// instead of re-initializing the pool.
type Snapshot struct {
	size      uint64
	cache     []byte
	persisted []byte
	meta      []WordMeta
	shadow    []uint32
	eadr      bool
}

// Snapshot captures the pool's current cache image, persisted image and
// per-word metadata. Pending (flushed but unfenced) lines are not captured;
// checkpoints are taken at quiescent points where no flush is in flight.
func (p *Pool) Snapshot() *Snapshot {
	p.guard.Lock()
	defer p.guard.Unlock()
	s := &Snapshot{
		size:      p.size,
		cache:     append([]byte(nil), p.cache...),
		persisted: append([]byte(nil), p.persisted...),
		meta:      append([]WordMeta(nil), p.meta...),
		shadow:    append([]uint32(nil), p.shadow...),
		eadr:      p.eadr,
	}
	return s
}

// Restore resets the pool to a previously captured snapshot. The last-access
// records and pending flush sets are cleared: the restored pool behaves like
// a freshly checkpointed process.
//
// When the pool's state is already based on the same snapshot (it was
// created by NewFromSnapshot or previously restored to it), only the cache
// lines touched since then are copied back, so the cost of the fork-server
// substitute is proportional to one execution's dirty set rather than the
// pool size.
func (p *Pool) Restore(s *Snapshot) {
	p.guard.Lock()
	defer p.guard.Unlock()
	if s.size != p.size {
		panic("pmem: snapshot size mismatch")
	}
	if p.baseSnap == s {
		p.restoreTouched(s)
	} else {
		copy(p.cache, s.cache)
		copy(p.persisted, s.persisted)
		copy(p.meta, s.meta)
		copy(p.shadow, s.shadow)
		for i := range p.last {
			p.last[i] = Accessor{}
		}
		for i := range p.touched {
			p.touched[i].Store(0)
		}
	}
	// Reuse the pending map and its per-thread slices: a fuzz campaign
	// restores once per execution, and rebuilding the map here was the last
	// per-restore allocation on the hot path.
	p.pendingMu.Lock()
	for t, entries := range p.pending {
		for i := range entries {
			p.linePending[entries[i].line/LineSize].Store(0)
			entries[i].cap = nil
		}
		p.pending[t] = entries[:0]
	}
	p.pendingMu.Unlock()
	p.baseSnap = s
}

// restoreTouched copies back only the lines recorded in the touched bitmap.
// The caller holds the guard exclusively.
func (p *Pool) restoreTouched(s *Snapshot) {
	for wi := range p.touched {
		w := p.touched[wi].Load()
		if w == 0 {
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			line := (Addr(wi)*64 + Addr(b)) * LineSize
			end := line + LineSize
			copy(p.cache[line:end], s.cache[line:end])
			copy(p.persisted[line:end], s.persisted[line:end])
			wFirst, wLast := line/WordSize, (end-1)/WordSize
			copy(p.meta[wFirst:wLast+1], s.meta[wFirst:wLast+1])
			copy(p.shadow[wFirst:wLast+1], s.shadow[wFirst:wLast+1])
			for i := wFirst; i <= wLast; i++ {
				p.last[i] = Accessor{}
			}
		}
		p.touched[wi].Store(0)
	}
}

// NewFromSnapshot creates an independent pool initialized from a snapshot,
// preserving the source pool's platform options (eADR).
func NewFromSnapshot(s *Snapshot) *Pool {
	p := NewWithOptions(s.size, Options{EADR: s.eadr})
	p.Restore(s)
	return p
}
