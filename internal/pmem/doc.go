// Package pmem simulates a byte-addressable persistent memory device fronted
// by volatile write-back CPU caches, following the failure model used by
// PMRace (ASPLOS '22, §3.1): stores become visible to all threads immediately
// (coherent caches) but become durable only after an explicit cache-line
// flush (CLWB/CLFLUSHOPT) followed by a store fence (SFENCE). A crash
// discards every write that has not reached the persistence domain.
//
// The pool keeps two byte arrays: the cache image (what running threads
// observe) and the persisted image (what survives a crash). Per 8-byte word
// it additionally tracks the persistency state consumed by the PMRace
// checkers: a dirty bit, the writing thread, the writing instruction site and
// a store epoch used to invalidate stale inconsistency-candidate events, plus
// a shadow taint label and the last-accessor triple used for PM alias pair
// coverage.
//
// Locking. The pool serializes individual accesses at cache-line
// granularity: a fixed array of stripe mutexes is indexed by line number, so
// simulated threads touching disjoint lines proceed in parallel. Whole-pool
// operations (Snapshot, Restore, crash-image capture) take a writer-
// preference guard (sync.RWMutex) exclusively, while every striped fast path
// holds the guard shared — preserving the single-lock atomicity the
// checkpoint and crash machinery rely on. Thread interleaving in the
// simulation happens between hook calls, never inside one, which mirrors the
// per-instruction atomicity assumed by PMRace's interleaving exploration.
package pmem
