package pmem

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Addr is a byte offset within a pool. Pools are position independent: all
// recorded addresses are offsets so that crash images can be re-mapped
// without worrying about address space layout randomization (paper §4.4).
type Addr = uint64

// ThreadID identifies a simulated thread of the instrumented program.
// Thread 0 is conventionally the main/setup thread.
type ThreadID int32

// NoThread marks a word that has never been written.
const NoThread ThreadID = -1

const (
	// WordSize is the granularity of persistency-state tracking.
	WordSize = 8
	// LineSize is the cache-line granularity of flush operations.
	LineSize = 64
	// numStripes is the number of line-lock stripes. A power of two so the
	// stripe index is a mask; 64 stripes let a full stripe set be tracked
	// in one uint64 mask and acquired in ascending order (deadlock-free).
	numStripes = 64
)

// Range is a byte range [Off, Off+Len) within a pool.
type Range struct {
	Off Addr
	Len uint64
}

// End returns the exclusive upper bound of the range.
func (r Range) End() Addr { return r.Off + r.Len }

// WordMeta is the persistency state of one 8-byte word.
type WordMeta struct {
	// Dirty reports whether the word holds data that is visible in the
	// cache but not yet persisted (PM_DIRTY in the paper).
	Dirty bool
	// Writer is the thread that performed the most recent store.
	Writer ThreadID
	// Site is the instruction site of the most recent store.
	Site uint32
	// Epoch increments on every store to the word. Inconsistency
	// candidates record the epoch they observed.
	Epoch uint32
	// CleanEpoch is the store epoch at the word's most recent transition
	// to the persisted state. A candidate event with Epoch > CleanEpoch
	// on a still-dirty word has a continuously non-persisted dependency:
	// later overwrites do not persist the observed value, only a flush
	// does.
	CleanEpoch uint32
}

// Accessor records the most recent access to a word, used to form PM alias
// instruction pairs: two back-to-back accesses to the same address by
// different threads.
type Accessor struct {
	Site   uint32
	Thread ThreadID
	Dirty  bool
	Valid  bool
}

// pendingLine is one cache line flushed by a thread and awaiting its fence.
// Flush does not copy the line: as long as nothing stores to it, the line's
// flush-time contents ARE its current contents, so Fence can commit straight
// from the cache image. Only when a store hits a line with pending flushes is
// the flush-time view materialized into cap (copy-on-write), keeping the
// common flush→fence sequence free of per-line data copies.
//
// Invariant: cap == nil ⟺ the line's data and word epochs are unchanged
// since this entry's flush. Every store path calls capturePending before
// mutating the cache, which fills cap for all uncaptured entries of the line.
type pendingLine struct {
	line Addr // line-aligned offset
	cap  *lineCapture
}

// lineCapture is the materialized flush-time view of a pending line. All
// uncaptured entries of a line share one capture (their views are identical
// by the pendingLine invariant), so a store allocates at most one per line.
type lineCapture struct {
	data   [LineSize]byte
	epochs [LineSize / WordSize]uint32
}

// Pool is a simulated persistent memory pool.
//
// All methods are safe for concurrent use.
type Pool struct {
	// guard is the writer-preference guard: striped fast paths hold it
	// shared, whole-pool operations hold it exclusively. Go's RWMutex
	// blocks new readers once a writer waits, so Snapshot/Restore cannot
	// starve under a steady hook stream.
	guard   sync.RWMutex
	stripes [numStripes]sync.Mutex

	size      uint64
	cache     []byte
	persisted []byte
	meta      []WordMeta
	shadow    []uint32 // taint label per word
	last      []Accessor

	pendingMu sync.Mutex
	pending   map[ThreadID][]pendingLine
	// linePending counts, per cache line, how many pendingLine entries
	// reference the line. Store paths consult it (one atomic load, under the
	// line's stripe) to decide whether a copy-on-write capture is needed;
	// with no flush in flight the check is the only overhead.
	linePending []atomic.Uint32

	// touched is a bitmap with one bit per cache line, set when the line's
	// data, metadata, shadow labels or accessor records changed since the
	// last Restore. Checkpoint restore copies back only touched lines, so
	// its cost is proportional to the execution's dirty set instead of the
	// pool size.
	touched  []atomic.Uint64
	baseSnap *Snapshot // snapshot the pool state is based on (guarded by guard)

	// stores counts all store operations, used by tests and stats.
	stores atomic.Uint64
	// flushes and fences count persistency operations.
	flushes atomic.Uint64
	fences  atomic.Uint64

	evictMu   sync.Mutex
	evictRNG  *rand.Rand
	evictProb float64
	eadr      bool
}

// Options configure pool construction.
type Options struct {
	// EvictProb, when positive, enables random cache eviction: on each
	// store, with this probability one dirty line is written back to the
	// persisted image. Eviction does not clear the dirty bit because the
	// program cannot rely on it (the paper's checkers conservatively
	// treat unflushed data as non-persisted).
	EvictProb float64
	// EvictSeed seeds the eviction RNG for reproducibility.
	EvictSeed int64
	// EADR models a platform with extended ADR (paper §6.6): CPU caches
	// are battery-backed and inside the persistence domain, so every
	// store is durable at visibility and no word is ever dirty. PM
	// Inter-thread Inconsistency cannot occur; PM Synchronization
	// Inconsistency still can — locks persisted in PM outlive the
	// threads that held them regardless of cache durability.
	EADR bool
}

// New creates a zeroed pool of the given size in bytes. The size is rounded
// up to a multiple of the cache-line size.
func New(size uint64) *Pool { return NewWithOptions(size, Options{}) }

// NewWithOptions creates a pool with explicit options.
func NewWithOptions(size uint64, opt Options) *Pool {
	if size == 0 {
		size = LineSize
	}
	if rem := size % LineSize; rem != 0 {
		size += LineSize - rem
	}
	lines := size / LineSize
	p := &Pool{
		size:        size,
		cache:       make([]byte, size),
		persisted:   make([]byte, size),
		meta:        make([]WordMeta, size/WordSize),
		shadow:      make([]uint32, size/WordSize),
		last:        make([]Accessor, size/WordSize),
		pending:     make(map[ThreadID][]pendingLine),
		linePending: make([]atomic.Uint32, lines),
		touched:     make([]atomic.Uint64, (lines+63)/64),
	}
	for i := range p.meta {
		p.meta[i].Writer = NoThread
	}
	if opt.EvictProb > 0 {
		p.evictProb = opt.EvictProb
		p.evictRNG = rand.New(rand.NewSource(opt.EvictSeed))
	}
	p.eadr = opt.EADR
	return p
}

// EADR reports whether the pool models battery-backed (persistent) caches.
func (p *Pool) EADR() bool { return p.eadr }

// FromImage creates a pool whose cache and persisted images both equal the
// given crash image, as if the file had been re-mapped after a restart. All
// words start clean with no writer, matching a freshly mapped file.
func FromImage(img []byte) *Pool {
	p := New(uint64(len(img)))
	copy(p.cache, img)
	copy(p.persisted, img)
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return p.size }

func (p *Pool) check(addr Addr, n uint64) {
	if addr+n > p.size || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%#x,%#x) out of pool bounds %#x", addr, addr+n, p.size))
	}
}

func lineOf(addr Addr) Addr { return addr &^ (LineSize - 1) }

// --- striped locking ---

// lockSpan acquires the stripe mutexes covering [addr, addr+n) in ascending
// stripe order and returns the stripe mask to pass to unlockSpan. The caller
// must hold guard shared (RLock) and must have bounds-checked the range.
func (p *Pool) lockSpan(addr Addr, n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	if first == last {
		s := first % numStripes
		p.stripes[s].Lock()
		return 1 << s
	}
	var mask uint64
	if last-first >= numStripes-1 {
		mask = ^uint64(0)
	} else {
		for l := first; l <= last; l++ {
			mask |= 1 << (l % numStripes)
		}
	}
	for m := mask; m != 0; {
		i := bits.TrailingZeros64(m)
		p.stripes[i].Lock()
		m &^= 1 << i
	}
	return mask
}

// unlockSpan releases the stripes acquired by lockSpan.
func (p *Pool) unlockSpan(mask uint64) {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		p.stripes[i].Unlock()
		mask &^= 1 << i
	}
}

// markTouched records that the lines covering [addr, addr+n) diverged from
// the base snapshot. Bits are set with a CAS loop because one touched word
// covers 64 lines spread across all stripes.
func (p *Pool) markTouched(addr Addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	for l := first; l <= last; l++ {
		w := &p.touched[l/64]
		mask := uint64(1) << (l % 64)
		for {
			old := w.Load()
			if old&mask != 0 {
				break
			}
			if w.CompareAndSwap(old, old|mask) {
				break
			}
		}
	}
}

// --- loads ---

// Load64 reads an 8-byte little-endian word from the cache image.
func (p *Pool) Load64(addr Addr) uint64 {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	v := le64(p.cache[addr:])
	p.unlockSpan(m)
	p.guard.RUnlock()
	return v
}

// LoadBytes copies n bytes starting at addr from the cache image.
func (p *Pool) LoadBytes(addr Addr, n uint64) []byte {
	p.check(addr, n)
	out := make([]byte, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	copy(out, p.cache[addr:addr+n])
	p.unlockSpan(m)
	p.guard.RUnlock()
	return out
}

// --- stores ---

// Store64 writes an 8-byte word to the cache image and marks the containing
// words dirty on behalf of thread t at instruction site.
func (p *Pool) Store64(t ThreadID, site uint32, addr Addr, val uint64) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	p.capturePending(addr, 8)
	putLE64(p.cache[addr:], val)
	p.markStored(t, site, addr, 8)
	p.unlockSpan(m)
	p.guard.RUnlock()
	p.maybeEvict()
}

// StoreBytes writes data to the cache image and marks the covered words
// dirty.
func (p *Pool) StoreBytes(t ThreadID, site uint32, addr Addr, data []byte) {
	n := uint64(len(data))
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	p.capturePending(addr, n)
	copy(p.cache[addr:], data)
	p.markStored(t, site, addr, n)
	p.unlockSpan(m)
	p.guard.RUnlock()
	p.maybeEvict()
}

// NTStore64 performs a non-temporal store: the write bypasses the cache
// hierarchy and is considered persisted immediately (PM_CLEAN per the paper's
// checker semantics). The value still becomes visible in the cache image.
func (p *Pool) NTStore64(t ThreadID, site uint32, addr Addr, val uint64) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	p.capturePending(addr, 8)
	putLE64(p.cache[addr:], val)
	putLE64(p.persisted[addr:], val)
	p.markNT(t, site, addr, 8)
	p.unlockSpan(m)
	p.guard.RUnlock()
}

// NTStoreBytes performs a non-temporal store of a byte range.
func (p *Pool) NTStoreBytes(t ThreadID, site uint32, addr Addr, data []byte) {
	n := uint64(len(data))
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	p.capturePending(addr, n)
	copy(p.cache[addr:], data)
	copy(p.persisted[addr:], data)
	p.markNT(t, site, addr, n)
	p.unlockSpan(m)
	p.guard.RUnlock()
}

// CAS64 performs an atomic compare-and-swap on a word, returning whether the
// swap happened and the value observed. A successful CAS is a store (the
// word becomes dirty); a failed CAS is only a load.
func (p *Pool) CAS64(t ThreadID, site uint32, addr Addr, old, new uint64) (bool, uint64) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	cur := le64(p.cache[addr:])
	ok := cur == old
	if ok {
		p.capturePending(addr, 8)
		putLE64(p.cache[addr:], new)
		p.markStored(t, site, addr, 8)
	}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return ok, cur
}

// Flush simulates CLWB over the cache lines covering [addr, addr+n): each
// line is staged on thread t and will reach the persistence domain at t's
// next Fence. Words stored after the flush but before the fence keep their
// dirty state (their epoch advanced). Flush itself copies no data — it raises
// the lines' pending counters and appends entries; the flush-time contents
// are materialized lazily (capturePending) only if a store hits the line
// before the fence. A flush racing a store linearizes at its entry append,
// matching per-line CLWB semantics.
func (p *Pool) Flush(t ThreadID, addr Addr, n uint64) {
	p.check(addr, n)
	p.flushes.Add(1)
	p.guard.RLock()
	first := lineOf(addr)
	for line := first; line < addr+n; line += LineSize {
		// Raise the counter before publishing the entry: a store that
		// misses the counter is ordered before this flush; one that sees
		// it scans the pending entries under pendingMu.
		p.linePending[line/LineSize].Add(1)
	}
	p.pendingMu.Lock()
	entries := p.pending[t]
	for line := first; line < addr+n; line += LineSize {
		entries = append(entries, pendingLine{line: line})
	}
	p.pending[t] = entries
	p.pendingMu.Unlock()
	p.guard.RUnlock()
}

// capturePending materializes the flush-time view of every uncaptured pending
// entry covering [addr, addr+n). Store paths call it before mutating the
// cache; the caller holds the guard shared and the stripes covering the
// range, so the copied data is the pre-store state the flushes observed.
func (p *Pool) capturePending(addr Addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	for l := first; l <= last; l++ {
		if p.linePending[l].Load() == 0 {
			continue
		}
		line := l * LineSize
		var view *lineCapture
		p.pendingMu.Lock()
		for _, entries := range p.pending {
			for i := range entries {
				if entries[i].line != line || entries[i].cap != nil {
					continue
				}
				if view == nil {
					view = &lineCapture{}
					copy(view.data[:], p.cache[line:line+LineSize])
					for w := 0; w < LineSize/WordSize; w++ {
						view.epochs[w] = p.meta[(line+Addr(w*WordSize))/WordSize].Epoch
					}
				}
				entries[i].cap = view
			}
		}
		p.pendingMu.Unlock()
	}
}

// Fence simulates SFENCE on thread t: every line staged by t's previous
// flushes is committed to the persisted image, and each word whose epoch is
// unchanged since the flush becomes clean. Captured entries commit their
// materialized flush-time view; uncaptured entries commit the current line
// directly — by the pendingLine invariant the two are identical, so lazy
// capture preserves exact eager-copy semantics.
func (p *Pool) Fence(t ThreadID) {
	p.fences.Add(1)
	p.guard.RLock()
	p.pendingMu.Lock()
	count := len(p.pending[t])
	p.pendingMu.Unlock()
	// Entries stay visible in the map until committed so concurrent stores
	// keep capturing them; thread t is sequential, so no new entries for t
	// appear while its fence runs.
	for i := 0; i < count; i++ {
		p.pendingMu.Lock()
		e := p.pending[t][i]
		p.pendingMu.Unlock()
		line := e.line
		m := p.lockSpan(line, LineSize)
		// A store may have captured this entry after the peek above;
		// re-read the capture pointer under the line's stripe, which
		// orders the commit against any capturing store.
		p.pendingMu.Lock()
		view := p.pending[t][i].cap
		p.pendingMu.Unlock()
		if view != nil {
			copy(p.persisted[line:line+LineSize], view.data[:])
			for w := 0; w < LineSize/WordSize; w++ {
				wi := (line + Addr(w*WordSize)) / WordSize
				if p.meta[wi].Epoch == view.epochs[w] {
					p.meta[wi].Dirty = false
					p.meta[wi].CleanEpoch = p.meta[wi].Epoch
				}
			}
		} else {
			// Unchanged since flush: current contents are the
			// flush-time contents and every epoch matches.
			copy(p.persisted[line:line+LineSize], p.cache[line:line+LineSize])
			for w := 0; w < LineSize/WordSize; w++ {
				wi := (line + Addr(w*WordSize)) / WordSize
				p.meta[wi].Dirty = false
				p.meta[wi].CleanEpoch = p.meta[wi].Epoch
			}
		}
		p.linePending[line/LineSize].Add(^uint32(0))
		p.markTouched(line, LineSize)
		p.unlockSpan(m)
	}
	if count > 0 {
		p.pendingMu.Lock()
		p.pending[t] = p.pending[t][:0]
		p.pendingMu.Unlock()
	}
	p.guard.RUnlock()
}

// PersistNow force-persists a byte range, marking its words clean. It models
// flush immediately followed by fence and is used by recovery code and tests.
func (p *Pool) PersistNow(t ThreadID, addr Addr, n uint64) {
	p.check(addr, n)
	p.flushes.Add(1)
	p.fences.Add(1)
	p.guard.RLock()
	for line := lineOf(addr); line < addr+n; line += LineSize {
		m := p.lockSpan(line, LineSize)
		copy(p.persisted[line:line+LineSize], p.cache[line:line+LineSize])
		for w := 0; w < LineSize/WordSize; w++ {
			mw := &p.meta[(line+Addr(w*WordSize))/WordSize]
			mw.Dirty = false
			mw.CleanEpoch = mw.Epoch
		}
		p.markTouched(line, LineSize)
		p.unlockSpan(m)
	}
	p.guard.RUnlock()
}

// markStored marks the words covering a store dirty. Callers hold the guard
// shared and the stripes covering the range.
func (p *Pool) markStored(t ThreadID, site uint32, addr Addr, n uint64) {
	if p.eadr {
		// Persistent caches: every store is durable at visibility.
		from, to := addr&^(WordSize-1), ((addr+n-1)|(WordSize-1))+1
		copy(p.persisted[from:to], p.cache[from:to])
		p.markNT(t, site, addr, n)
		return
	}
	p.stores.Add(1)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		m := &p.meta[wi]
		m.Dirty = true
		m.Writer = t
		m.Site = site
		m.Epoch++
	}
	p.markTouched(addr, n)
}

func (p *Pool) markNT(t ThreadID, site uint32, addr Addr, n uint64) {
	p.stores.Add(1)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		m := &p.meta[wi]
		m.Dirty = false
		m.Writer = t
		m.Site = site
		m.Epoch++
		m.CleanEpoch = m.Epoch
	}
	p.markTouched(addr, n)
}

// maybeEvict runs after a store completes (no stripes held): with the
// configured probability it picks a random line and, if dirty, writes it back
// to the persisted image. The dirty bits stay set: programs must not depend
// on eviction.
func (p *Pool) maybeEvict() {
	if p.evictRNG == nil {
		return
	}
	p.evictMu.Lock()
	hit := p.evictRNG.Float64() < p.evictProb
	var line Addr
	if hit {
		line = Addr(p.evictRNG.Int63n(int64(p.size/LineSize))) * LineSize
	}
	p.evictMu.Unlock()
	if !hit {
		return
	}
	p.guard.RLock()
	m := p.lockSpan(line, LineSize)
	for w := 0; w < LineSize/WordSize; w++ {
		if p.meta[(line+Addr(w*WordSize))/WordSize].Dirty {
			copy(p.persisted[line:line+LineSize], p.cache[line:line+LineSize])
			p.markTouched(line, LineSize)
			break
		}
	}
	p.unlockSpan(m)
	p.guard.RUnlock()
}

// WordState returns the persistency state of the word containing addr.
func (p *Pool) WordState(addr Addr) WordMeta {
	p.check(addr, 1)
	p.guard.RLock()
	m := p.lockSpan(addr, 1)
	st := p.meta[addr/WordSize]
	p.unlockSpan(m)
	p.guard.RUnlock()
	return st
}

// WordDirtyRange reports whether any word covering [addr, addr+n) is dirty
// and, if so, returns that word's state and word-aligned address.
func (p *Pool) WordDirtyRange(addr Addr, n uint64) (WordMeta, Addr, bool) {
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	defer func() {
		p.unlockSpan(m)
		p.guard.RUnlock()
	}()
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		if p.meta[wi].Dirty {
			return p.meta[wi], wi * WordSize, true
		}
	}
	return WordMeta{}, 0, false
}

// ShadowLabel returns the taint label stored for the word containing addr.
func (p *Pool) ShadowLabel(addr Addr) uint32 {
	p.check(addr, 1)
	p.guard.RLock()
	m := p.lockSpan(addr, 1)
	l := p.shadow[addr/WordSize]
	p.unlockSpan(m)
	p.guard.RUnlock()
	return l
}

// SetShadowLabel stores a taint label for every word covering [addr, addr+n).
func (p *Pool) SetShadowLabel(addr Addr, n uint64, label uint32) {
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		p.shadow[wi] = label
	}
	p.markTouched(addr, n)
	p.unlockSpan(m)
	p.guard.RUnlock()
}

// ShadowLabelRange returns the shadow labels of all words covering the range,
// deduplicated, excluding zero.
func (p *Pool) ShadowLabelRange(addr Addr, n uint64) []uint32 {
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	var out []uint32
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		l := p.shadow[wi]
		if l == 0 {
			continue
		}
		dup := false
		for _, e := range out {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return out
}

// SwapAccessor atomically replaces the last-accessor record of the word
// containing addr and returns the previous record. The runtime uses it to
// form PM alias pairs.
func (p *Pool) SwapAccessor(addr Addr, a Accessor) Accessor {
	p.check(addr, 1)
	p.guard.RLock()
	m := p.lockSpan(addr, 1)
	wi := addr / WordSize
	prev := p.last[wi]
	p.last[wi] = a
	// Accessor records are cleared by Restore, so the line counts as
	// diverged from the checkpoint even without a data write.
	p.markTouched(addr, 1)
	p.unlockSpan(m)
	p.guard.RUnlock()
	return prev
}

// --- fused instrumented accessors ---
//
// One instrumented PM access needs several pieces of pool state: the value,
// the word's persistency metadata, its shadow taint label, the last-accessor
// swap for alias-pair coverage, and (for stores) the dirty marking and label
// update. Composing those from the fine-grained primitives above costs one
// guard+stripe round trip per piece; the Instr* variants perform the whole
// per-access protocol in a single striped critical section, keeping
// single-thread hook cost close to a single-lock design. The fine-grained
// primitives remain for tests, validators and recovery code.

// InstrLoad64 performs the instrumented-load protocol on the word containing
// addr: read the 8-byte value, the word's metadata and shadow label, and
// record thread t at the given site as the word's last accessor (tagged with
// the observed persistency state). The previous accessor is returned for
// alias-pair coverage.
func (p *Pool) InstrLoad64(t ThreadID, site uint32, addr Addr) (val uint64, meta WordMeta, shadow uint32, prev Accessor) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	wi := addr / WordSize
	val = le64(p.cache[addr:])
	meta = p.meta[wi]
	shadow = p.shadow[wi]
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: meta.Dirty, Valid: true}
	p.markTouched(addr, 1)
	p.unlockSpan(m)
	p.guard.RUnlock()
	return
}

// InstrLoadBytes is the byte-range load protocol: copy the range, find the
// first dirty word (if any), collect the deduplicated non-zero shadow labels
// and swap the first word's accessor, all atomically.
func (p *Pool) InstrLoadBytes(t ThreadID, site uint32, addr Addr, n uint64) (out []byte, meta WordMeta, waddr Addr, dirty bool, labels []uint32, prev Accessor) {
	p.check(addr, n)
	out = make([]byte, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	copy(out, p.cache[addr:addr+n])
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		if !dirty && p.meta[wi].Dirty {
			meta, waddr, dirty = p.meta[wi], wi*WordSize, true
		}
		l := p.shadow[wi]
		if l == 0 {
			continue
		}
		dup := false
		for _, e := range labels {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			labels = append(labels, l)
		}
	}
	wi := addr / WordSize
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: dirty, Valid: true}
	p.markTouched(addr, 1)
	p.unlockSpan(m)
	p.guard.RUnlock()
	return
}

// InstrStore64 performs the instrumented-store protocol: read the previous
// value, write the new one, mark the covered words dirty, replace their
// shadow label and record the access as last accessor, in one critical
// section. It returns the overwritten value and the previous accessor.
func (p *Pool) InstrStore64(t ThreadID, site uint32, addr Addr, val uint64, label uint32) (old uint64, prev Accessor) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	old = le64(p.cache[addr:])
	p.capturePending(addr, 8)
	putLE64(p.cache[addr:], val)
	p.markStored(t, site, addr, 8)
	for wi := addr / WordSize; wi <= (addr+7)/WordSize; wi++ {
		p.shadow[wi] = label
	}
	wi := addr / WordSize
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: true, Valid: true}
	p.unlockSpan(m)
	p.guard.RUnlock()
	p.maybeEvict()
	return
}

// InstrStoreBytes is the byte-range store protocol.
func (p *Pool) InstrStoreBytes(t ThreadID, site uint32, addr Addr, data []byte, label uint32) (prev Accessor) {
	n := uint64(len(data))
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	p.capturePending(addr, n)
	copy(p.cache[addr:], data)
	p.markStored(t, site, addr, n)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		p.shadow[wi] = label
	}
	wi := addr / WordSize
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: true, Valid: true}
	p.unlockSpan(m)
	p.guard.RUnlock()
	p.maybeEvict()
	return
}

// InstrNTStore64 is the non-temporal store protocol: the write reaches the
// persisted image immediately and the words end clean.
func (p *Pool) InstrNTStore64(t ThreadID, site uint32, addr Addr, val uint64, label uint32) (old uint64, prev Accessor) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	old = le64(p.cache[addr:])
	p.capturePending(addr, 8)
	putLE64(p.cache[addr:], val)
	putLE64(p.persisted[addr:], val)
	p.markNT(t, site, addr, 8)
	for wi := addr / WordSize; wi <= (addr+7)/WordSize; wi++ {
		p.shadow[wi] = label
	}
	wi := addr / WordSize
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: false, Valid: true}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return
}

// InstrNTStoreBytes is the byte-range non-temporal store protocol.
func (p *Pool) InstrNTStoreBytes(t ThreadID, site uint32, addr Addr, data []byte, label uint32) (prev Accessor) {
	n := uint64(len(data))
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	p.capturePending(addr, n)
	copy(p.cache[addr:], data)
	copy(p.persisted[addr:], data)
	p.markNT(t, site, addr, n)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		p.shadow[wi] = label
	}
	wi := addr / WordSize
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: false, Valid: true}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return
}

// InstrCAS64 is the compare-and-swap protocol: the pre-CAS metadata, shadow
// label and accessor swap plus the CAS itself in one critical section. On
// success the covered words' shadow label is replaced; a failed CAS has load
// semantics and leaves data, metadata and labels untouched.
func (p *Pool) InstrCAS64(t ThreadID, site uint32, addr Addr, old, new uint64, label uint32) (ok bool, observed uint64, meta WordMeta, shadow uint32, prev Accessor) {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	wi := addr / WordSize
	meta = p.meta[wi]
	shadow = p.shadow[wi]
	prev = p.last[wi]
	p.last[wi] = Accessor{Site: site, Thread: t, Dirty: true, Valid: true}
	observed = le64(p.cache[addr:])
	ok = observed == old
	if ok {
		p.capturePending(addr, 8)
		putLE64(p.cache[addr:], new)
		p.markStored(t, site, addr, 8)
		for w := addr / WordSize; w <= (addr+7)/WordSize; w++ {
			p.shadow[w] = label
		}
	} else {
		// Only the accessor record diverged from the checkpoint.
		p.markTouched(addr, 1)
	}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return
}

// EpochAt returns the store epoch of the word containing addr.
func (p *Pool) EpochAt(addr Addr) uint32 {
	p.check(addr, 1)
	p.guard.RLock()
	m := p.lockSpan(addr, 1)
	e := p.meta[addr/WordSize].Epoch
	p.unlockSpan(m)
	p.guard.RUnlock()
	return e
}

// Stats returns operation counters: stores, flushes and fences performed.
func (p *Pool) Stats() (stores, flushes, fences uint64) {
	return p.stores.Load(), p.flushes.Load(), p.fences.Load()
}

// PersistedEquals reports whether the persisted image of [addr, addr+n)
// equals the cache image, i.e. whether the range is fully durable.
func (p *Pool) PersistedEquals(addr Addr, n uint64) bool {
	p.check(addr, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	eq := true
	for i := addr; i < addr+n; i++ {
		if p.cache[i] != p.persisted[i] {
			eq = false
			break
		}
	}
	p.unlockSpan(m)
	p.guard.RUnlock()
	return eq
}

// PersistedLoad64 reads a word from the persisted image (what a crash would
// preserve), bypassing the cache. Tests and validators use it.
func (p *Pool) PersistedLoad64(addr Addr) uint64 {
	p.check(addr, 8)
	p.guard.RLock()
	m := p.lockSpan(addr, 8)
	v := le64(p.persisted[addr:])
	p.unlockSpan(m)
	p.guard.RUnlock()
	return v
}

// PersistedBytes copies n bytes starting at addr from the persisted image.
func (p *Pool) PersistedBytes(addr Addr, n uint64) []byte {
	p.check(addr, n)
	out := make([]byte, n)
	p.guard.RLock()
	m := p.lockSpan(addr, n)
	copy(out, p.persisted[addr:addr+n])
	p.unlockSpan(m)
	p.guard.RUnlock()
	return out
}

// DirtyWord is one word that is visible in the cache but not yet persisted,
// with both images' values: the PM-state diff a crash at this moment would
// expose. Forensic artifact bundles attach the dirty set at detection time.
type DirtyWord struct {
	Addr      Addr     `json:"addr"`
	Cache     uint64   `json:"cache"`
	Persisted uint64   `json:"persisted"`
	Writer    ThreadID `json:"writer"`
	Site      uint32   `json:"site"`
	Epoch     uint32   `json:"epoch"`
}

// DirtyWords returns the dirty words of the pool in address order, capped at
// max entries when max > 0. It takes the whole-pool guard exclusively so the
// returned diff is a consistent cut across all stripes.
func (p *Pool) DirtyWords(max int) []DirtyWord {
	p.guard.Lock()
	defer p.guard.Unlock()
	var out []DirtyWord
	for w := range p.meta {
		m := &p.meta[w]
		if !m.Dirty {
			continue
		}
		a := Addr(w) * WordSize
		out = append(out, DirtyWord{
			Addr:      a,
			Cache:     le64(p.cache[a:]),
			Persisted: le64(p.persisted[a:]),
			Writer:    m.Writer,
			Site:      m.Site,
			Epoch:     m.Epoch,
		})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// DirtySetHash folds the pool's current dirty-line set (line addresses only)
// into one order-independent 64-bit value. The fuzzer uses it as the
// persistency-state half of an execution's outcome signature for
// interleaving-equivalence pruning. The granularity is deliberately the
// cache line, not the word: flush and fence semantics act on lines, and
// word-level hashing splits equivalence classes on noise — e.g. which slot
// of a hash bucket a racy insert happened to claim — that no crash state
// distinguishes. Only lines touched since the base snapshot are scanned:
// dirty words inherited from the checkpoint itself are identical for every
// execution of a seed, so omitting them cannot split or merge equivalence
// classes within that seed.
func (p *Pool) DirtySetHash() uint64 {
	p.guard.Lock()
	defer p.guard.Unlock()
	h := uint64(0)
	n := uint64(0)
	for wi := range p.touched {
		w := p.touched[wi].Load()
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << b
			line := (Addr(wi)*64 + Addr(b)) * LineSize
			for word := line / WordSize; word < (line+LineSize)/WordSize; word++ {
				if p.meta[word].Dirty {
					h ^= mix64(uint64(line))
					n++
					break
				}
			}
		}
	}
	return h ^ mix64(n)
}

// mix64 is a splitmix64 finalizer used to spread dirty-word addresses before
// the order-independent XOR fold in DirtySetHash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
