// Package pmem simulates a byte-addressable persistent memory device fronted
// by volatile write-back CPU caches, following the failure model used by
// PMRace (ASPLOS '22, §3.1): stores become visible to all threads immediately
// (coherent caches) but become durable only after an explicit cache-line
// flush (CLWB/CLFLUSHOPT) followed by a store fence (SFENCE). A crash
// discards every write that has not reached the persistence domain.
//
// The pool keeps two byte arrays: the cache image (what running threads
// observe) and the persisted image (what survives a crash). Per 8-byte word
// it additionally tracks the persistency state consumed by the PMRace
// checkers: a dirty bit, the writing thread, the writing instruction site and
// a store epoch used to invalidate stale inconsistency-candidate events, plus
// a shadow taint label and the last-accessor triple used for PM alias pair
// coverage.
package pmem

import (
	"fmt"
	"math/rand"
	"sync"
)

// Addr is a byte offset within a pool. Pools are position independent: all
// recorded addresses are offsets so that crash images can be re-mapped
// without worrying about address space layout randomization (paper §4.4).
type Addr = uint64

// ThreadID identifies a simulated thread of the instrumented program.
// Thread 0 is conventionally the main/setup thread.
type ThreadID int32

// NoThread marks a word that has never been written.
const NoThread ThreadID = -1

const (
	// WordSize is the granularity of persistency-state tracking.
	WordSize = 8
	// LineSize is the cache-line granularity of flush operations.
	LineSize = 64
)

// Range is a byte range [Off, Off+Len) within a pool.
type Range struct {
	Off Addr
	Len uint64
}

// End returns the exclusive upper bound of the range.
func (r Range) End() Addr { return r.Off + r.Len }

// WordMeta is the persistency state of one 8-byte word.
type WordMeta struct {
	// Dirty reports whether the word holds data that is visible in the
	// cache but not yet persisted (PM_DIRTY in the paper).
	Dirty bool
	// Writer is the thread that performed the most recent store.
	Writer ThreadID
	// Site is the instruction site of the most recent store.
	Site uint32
	// Epoch increments on every store to the word. Inconsistency
	// candidates record the epoch they observed.
	Epoch uint32
	// CleanEpoch is the store epoch at the word's most recent transition
	// to the persisted state. A candidate event with Epoch > CleanEpoch
	// on a still-dirty word has a continuously non-persisted dependency:
	// later overwrites do not persist the observed value, only a flush
	// does.
	CleanEpoch uint32
}

// Accessor records the most recent access to a word, used to form PM alias
// instruction pairs: two back-to-back accesses to the same address by
// different threads.
type Accessor struct {
	Site   uint32
	Thread ThreadID
	Dirty  bool
	Valid  bool
}

// stagedLine is a cache line captured by a flush and awaiting a fence.
type stagedLine struct {
	line   Addr // line-aligned offset
	data   [LineSize]byte
	epochs [LineSize / WordSize]uint32
}

// Pool is a simulated persistent memory pool.
//
// All methods are safe for concurrent use. The pool serializes individual
// accesses with a single mutex: thread interleaving in the simulation happens
// between hook calls, never inside one, which mirrors the per-instruction
// atomicity assumed by PMRace's interleaving exploration.
type Pool struct {
	mu        sync.Mutex
	size      uint64
	cache     []byte
	persisted []byte
	meta      []WordMeta
	shadow    []uint32 // taint label per word
	last      []Accessor
	pending   map[ThreadID][]stagedLine

	// stores counts all store operations, used by tests and stats.
	stores uint64
	// flushes and fences count persistency operations.
	flushes uint64
	fences  uint64

	evictRNG  *rand.Rand
	evictProb float64
	eadr      bool
}

// Options configure pool construction.
type Options struct {
	// EvictProb, when positive, enables random cache eviction: on each
	// store, with this probability one dirty line is written back to the
	// persisted image. Eviction does not clear the dirty bit because the
	// program cannot rely on it (the paper's checkers conservatively
	// treat unflushed data as non-persisted).
	EvictProb float64
	// EvictSeed seeds the eviction RNG for reproducibility.
	EvictSeed int64
	// EADR models a platform with extended ADR (paper §6.6): CPU caches
	// are battery-backed and inside the persistence domain, so every
	// store is durable at visibility and no word is ever dirty. PM
	// Inter-thread Inconsistency cannot occur; PM Synchronization
	// Inconsistency still can — locks persisted in PM outlive the
	// threads that held them regardless of cache durability.
	EADR bool
}

// New creates a zeroed pool of the given size in bytes. The size is rounded
// up to a multiple of the cache-line size.
func New(size uint64) *Pool { return NewWithOptions(size, Options{}) }

// NewWithOptions creates a pool with explicit options.
func NewWithOptions(size uint64, opt Options) *Pool {
	if size == 0 {
		size = LineSize
	}
	if rem := size % LineSize; rem != 0 {
		size += LineSize - rem
	}
	p := &Pool{
		size:      size,
		cache:     make([]byte, size),
		persisted: make([]byte, size),
		meta:      make([]WordMeta, size/WordSize),
		shadow:    make([]uint32, size/WordSize),
		last:      make([]Accessor, size/WordSize),
		pending:   make(map[ThreadID][]stagedLine),
	}
	for i := range p.meta {
		p.meta[i].Writer = NoThread
	}
	if opt.EvictProb > 0 {
		p.evictProb = opt.EvictProb
		p.evictRNG = rand.New(rand.NewSource(opt.EvictSeed))
	}
	p.eadr = opt.EADR
	return p
}

// EADR reports whether the pool models battery-backed (persistent) caches.
func (p *Pool) EADR() bool { return p.eadr }

// FromImage creates a pool whose cache and persisted images both equal the
// given crash image, as if the file had been re-mapped after a restart. All
// words start clean with no writer, matching a freshly mapped file.
func FromImage(img []byte) *Pool {
	p := New(uint64(len(img)))
	copy(p.cache, img)
	copy(p.persisted, img)
	return p
}

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return p.size }

func (p *Pool) check(addr Addr, n uint64) {
	if addr+n > p.size || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%#x,%#x) out of pool bounds %#x", addr, addr+n, p.size))
	}
}

func lineOf(addr Addr) Addr { return addr &^ (LineSize - 1) }

// Load64 reads an 8-byte little-endian word from the cache image.
func (p *Pool) Load64(addr Addr) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 8)
	return le64(p.cache[addr:])
}

// LoadBytes copies n bytes starting at addr from the cache image.
func (p *Pool) LoadBytes(addr Addr, n uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	out := make([]byte, n)
	copy(out, p.cache[addr:addr+n])
	return out
}

// Store64 writes an 8-byte word to the cache image and marks the containing
// words dirty on behalf of thread t at instruction site.
func (p *Pool) Store64(t ThreadID, site uint32, addr Addr, val uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 8)
	putLE64(p.cache[addr:], val)
	p.markStored(t, site, addr, 8)
	p.maybeEvict()
}

// StoreBytes writes data to the cache image and marks the covered words
// dirty.
func (p *Pool) StoreBytes(t ThreadID, site uint32, addr Addr, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, uint64(len(data)))
	copy(p.cache[addr:], data)
	p.markStored(t, site, addr, uint64(len(data)))
	p.maybeEvict()
}

// NTStore64 performs a non-temporal store: the write bypasses the cache
// hierarchy and is considered persisted immediately (PM_CLEAN per the paper's
// checker semantics). The value still becomes visible in the cache image.
func (p *Pool) NTStore64(t ThreadID, site uint32, addr Addr, val uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 8)
	putLE64(p.cache[addr:], val)
	putLE64(p.persisted[addr:], val)
	p.markNT(t, site, addr, 8)
}

// NTStoreBytes performs a non-temporal store of a byte range.
func (p *Pool) NTStoreBytes(t ThreadID, site uint32, addr Addr, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, uint64(len(data)))
	copy(p.cache[addr:], data)
	copy(p.persisted[addr:], data)
	p.markNT(t, site, addr, uint64(len(data)))
}

// CAS64 performs an atomic compare-and-swap on a word, returning whether the
// swap happened and the value observed. A successful CAS is a store (the
// word becomes dirty); a failed CAS is only a load.
func (p *Pool) CAS64(t ThreadID, site uint32, addr Addr, old, new uint64) (bool, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 8)
	cur := le64(p.cache[addr:])
	if cur != old {
		return false, cur
	}
	putLE64(p.cache[addr:], new)
	p.markStored(t, site, addr, 8)
	return true, cur
}

// Flush simulates CLWB over the cache lines covering [addr, addr+n): the
// current cache contents of each line are staged on thread t and will reach
// the persistence domain at t's next Fence. Words stored after the flush but
// before the fence keep their dirty state (their epoch advanced).
func (p *Pool) Flush(t ThreadID, addr Addr, n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	p.flushes++
	for line := lineOf(addr); line < addr+n; line += LineSize {
		var s stagedLine
		s.line = line
		copy(s.data[:], p.cache[line:line+LineSize])
		for w := 0; w < LineSize/WordSize; w++ {
			s.epochs[w] = p.meta[(line+Addr(w*WordSize))/WordSize].Epoch
		}
		p.pending[t] = append(p.pending[t], s)
	}
}

// Fence simulates SFENCE on thread t: every line staged by t's previous
// flushes is committed to the persisted image, and each word whose epoch is
// unchanged since the flush becomes clean.
func (p *Pool) Fence(t ThreadID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fences++
	for _, s := range p.pending[t] {
		copy(p.persisted[s.line:s.line+LineSize], s.data[:])
		for w := 0; w < LineSize/WordSize; w++ {
			wi := (s.line + Addr(w*WordSize)) / WordSize
			if p.meta[wi].Epoch == s.epochs[w] {
				p.meta[wi].Dirty = false
				p.meta[wi].CleanEpoch = p.meta[wi].Epoch
			}
		}
	}
	delete(p.pending, t)
}

// PersistNow force-persists a byte range, marking its words clean. It models
// flush immediately followed by fence and is used by recovery code and tests.
func (p *Pool) PersistNow(t ThreadID, addr Addr, n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	p.flushes++
	p.fences++
	for line := lineOf(addr); line < addr+n; line += LineSize {
		copy(p.persisted[line:line+LineSize], p.cache[line:line+LineSize])
		for w := 0; w < LineSize/WordSize; w++ {
			m := &p.meta[(line+Addr(w*WordSize))/WordSize]
			m.Dirty = false
			m.CleanEpoch = m.Epoch
		}
	}
}

func (p *Pool) markStored(t ThreadID, site uint32, addr Addr, n uint64) {
	if p.eadr {
		// Persistent caches: every store is durable at visibility.
		from, to := addr&^(WordSize-1), ((addr+n-1)|(WordSize-1))+1
		copy(p.persisted[from:to], p.cache[from:to])
		p.markNT(t, site, addr, n)
		return
	}
	p.stores++
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		m := &p.meta[wi]
		m.Dirty = true
		m.Writer = t
		m.Site = site
		m.Epoch++
	}
}

func (p *Pool) markNT(t ThreadID, site uint32, addr Addr, n uint64) {
	p.stores++
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		m := &p.meta[wi]
		m.Dirty = false
		m.Writer = t
		m.Site = site
		m.Epoch++
		m.CleanEpoch = m.Epoch
	}
}

func (p *Pool) maybeEvict() {
	if p.evictRNG == nil || p.evictRNG.Float64() >= p.evictProb {
		return
	}
	// Pick a random line; if it contains dirty words, write it back.
	// The dirty bits stay set: programs must not depend on eviction.
	line := Addr(p.evictRNG.Int63n(int64(p.size/LineSize))) * LineSize
	for w := 0; w < LineSize/WordSize; w++ {
		if p.meta[(line+Addr(w*WordSize))/WordSize].Dirty {
			copy(p.persisted[line:line+LineSize], p.cache[line:line+LineSize])
			return
		}
	}
}

// WordState returns the persistency state of the word containing addr.
func (p *Pool) WordState(addr Addr) WordMeta {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 1)
	return p.meta[addr/WordSize]
}

// WordDirtyRange reports whether any word covering [addr, addr+n) is dirty
// and, if so, returns that word's state and word-aligned address.
func (p *Pool) WordDirtyRange(addr Addr, n uint64) (WordMeta, Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		if p.meta[wi].Dirty {
			return p.meta[wi], wi * WordSize, true
		}
	}
	return WordMeta{}, 0, false
}

// ShadowLabel returns the taint label stored for the word containing addr.
func (p *Pool) ShadowLabel(addr Addr) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 1)
	return p.shadow[addr/WordSize]
}

// SetShadowLabel stores a taint label for every word covering [addr, addr+n).
func (p *Pool) SetShadowLabel(addr Addr, n uint64, label uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		p.shadow[wi] = label
	}
}

// ShadowLabelRange returns the shadow labels of all words covering the range,
// deduplicated, excluding zero.
func (p *Pool) ShadowLabelRange(addr Addr, n uint64) []uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	var out []uint32
	for wi := addr / WordSize; wi <= (addr+n-1)/WordSize; wi++ {
		l := p.shadow[wi]
		if l == 0 {
			continue
		}
		dup := false
		for _, e := range out {
			if e == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

// SwapAccessor atomically replaces the last-accessor record of the word
// containing addr and returns the previous record. The runtime uses it to
// form PM alias pairs.
func (p *Pool) SwapAccessor(addr Addr, a Accessor) Accessor {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 1)
	wi := addr / WordSize
	prev := p.last[wi]
	p.last[wi] = a
	return prev
}

// EpochAt returns the store epoch of the word containing addr.
func (p *Pool) EpochAt(addr Addr) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 1)
	return p.meta[addr/WordSize].Epoch
}

// Stats returns operation counters: stores, flushes and fences performed.
func (p *Pool) Stats() (stores, flushes, fences uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stores, p.flushes, p.fences
}

// PersistedEquals reports whether the persisted image of [addr, addr+n)
// equals the cache image, i.e. whether the range is fully durable.
func (p *Pool) PersistedEquals(addr Addr, n uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	for i := addr; i < addr+n; i++ {
		if p.cache[i] != p.persisted[i] {
			return false
		}
	}
	return true
}

// PersistedLoad64 reads a word from the persisted image (what a crash would
// preserve), bypassing the cache. Tests and validators use it.
func (p *Pool) PersistedLoad64(addr Addr) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, 8)
	return le64(p.persisted[addr:])
}

// PersistedBytes copies n bytes starting at addr from the persisted image.
func (p *Pool) PersistedBytes(addr Addr, n uint64) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.check(addr, n)
	out := make([]byte, n)
	copy(out, p.persisted[addr:addr+n])
	return out
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
