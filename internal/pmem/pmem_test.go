package pmem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRoundsUpToLineSize(t *testing.T) {
	p := New(100)
	if p.Size() != 128 {
		t.Fatalf("size = %d, want 128", p.Size())
	}
	if New(0).Size() != LineSize {
		t.Fatalf("zero-size pool should round up to one line")
	}
	if New(128).Size() != 128 {
		t.Fatalf("aligned size must be preserved")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 0xdeadbeefcafe)
	if got := p.Load64(64); got != 0xdeadbeefcafe {
		t.Fatalf("Load64 = %#x, want 0xdeadbeefcafe", got)
	}
}

func TestStoreIsVisibleButNotPersisted(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 42)
	if got := p.Load64(64); got != 42 {
		t.Fatalf("cache visibility: got %d, want 42", got)
	}
	if got := p.PersistedLoad64(64); got != 0 {
		t.Fatalf("persisted image should be 0 before flush+fence, got %d", got)
	}
	st := p.WordState(64)
	if !st.Dirty || st.Writer != 1 || st.Site != 7 {
		t.Fatalf("word state = %+v, want dirty writer=1 site=7", st)
	}
}

func TestFlushAloneDoesNotPersist(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 42)
	p.Flush(1, 64, 8)
	if got := p.PersistedLoad64(64); got != 0 {
		t.Fatalf("flush without fence must not persist, got %d", got)
	}
	if !p.WordState(64).Dirty {
		t.Fatalf("word must stay dirty until fence")
	}
}

func TestFlushFencePersistsAndCleans(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 42)
	p.Flush(1, 64, 8)
	p.Fence(1)
	if got := p.PersistedLoad64(64); got != 42 {
		t.Fatalf("persisted = %d, want 42", got)
	}
	if p.WordState(64).Dirty {
		t.Fatalf("word must be clean after flush+fence")
	}
}

func TestFenceOnlyCommitsOwnThreadsFlushes(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 42)
	p.Flush(1, 64, 8)
	p.Fence(2) // other thread's fence
	if got := p.PersistedLoad64(64); got != 0 {
		t.Fatalf("another thread's fence must not commit, got %d", got)
	}
	p.Fence(1)
	if got := p.PersistedLoad64(64); got != 42 {
		t.Fatalf("own fence must commit, got %d", got)
	}
}

func TestStoreBetweenFlushAndFenceStaysDirty(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 1)
	p.Flush(1, 64, 8)
	p.Store64(1, 8, 64, 2) // overwrite after CLWB captured the line
	p.Fence(1)
	if got := p.PersistedLoad64(64); got != 1 {
		t.Fatalf("fence must commit the flushed value 1, got %d", got)
	}
	if !p.WordState(64).Dirty {
		t.Fatalf("the post-flush store must remain dirty")
	}
	if got := p.Load64(64); got != 2 {
		t.Fatalf("cache must hold the newest value 2, got %d", got)
	}
}

func TestFlushCoversWholeLines(t *testing.T) {
	p := New(1024)
	p.Store64(1, 7, 64, 11)
	p.Store64(1, 7, 120, 22) // same line as 64? line 64..127 -> yes
	p.Flush(1, 64, 8)        // flushing one word flushes the whole line
	p.Fence(1)
	if got := p.PersistedLoad64(120); got != 22 {
		t.Fatalf("line-granularity flush must persist neighbours, got %d", got)
	}
}

func TestNTStorePersistsImmediately(t *testing.T) {
	p := New(1024)
	p.NTStore64(3, 9, 128, 77)
	if got := p.PersistedLoad64(128); got != 77 {
		t.Fatalf("NT store must be persisted, got %d", got)
	}
	if p.WordState(128).Dirty {
		t.Fatalf("NT store must leave the word clean")
	}
	if got := p.Load64(128); got != 77 {
		t.Fatalf("NT store must be visible in cache, got %d", got)
	}
}

func TestStoreBytesAndLoadBytes(t *testing.T) {
	p := New(1024)
	data := []byte("hello persistent world")
	p.StoreBytes(2, 5, 200, data)
	if got := p.LoadBytes(200, uint64(len(data))); !bytes.Equal(got, data) {
		t.Fatalf("LoadBytes = %q, want %q", got, data)
	}
	if _, _, dirty := p.WordDirtyRange(200, uint64(len(data))); !dirty {
		t.Fatalf("byte store must dirty covered words")
	}
}

func TestCAS64(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 64, 10)
	ok, old := p.CAS64(2, 2, 64, 10, 20)
	if !ok || old != 10 {
		t.Fatalf("CAS success expected, ok=%v old=%d", ok, old)
	}
	if got := p.Load64(64); got != 20 {
		t.Fatalf("CAS must store new value, got %d", got)
	}
	st := p.WordState(64)
	if st.Writer != 2 {
		t.Fatalf("CAS writer = %d, want 2", st.Writer)
	}
	ok, old = p.CAS64(3, 3, 64, 10, 30)
	if ok || old != 20 {
		t.Fatalf("CAS failure expected, ok=%v old=%d", ok, old)
	}
	if p.WordState(64).Writer != 2 {
		t.Fatalf("failed CAS must not change writer")
	}
}

func TestCrashImageDropsUnflushedWrites(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 0, 111)
	p.Flush(1, 0, 8)
	p.Fence(1)
	p.Store64(1, 2, 512, 222) // never flushed
	img := p.CrashImage()
	q := FromImage(img)
	if got := q.Load64(0); got != 111 {
		t.Fatalf("persisted write lost across crash: got %d", got)
	}
	if got := q.Load64(512); got != 0 {
		t.Fatalf("unflushed write must be lost, got %d", got)
	}
}

func TestCrashImageWithForcesRanges(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 512, 222) // unflushed
	img := p.CrashImageWith([]Range{{Off: 512, Len: 8}})
	q := FromImage(img)
	if got := q.Load64(512); got != 222 {
		t.Fatalf("forced range must appear in image, got %d", got)
	}
}

// TestCrashImageWithOutOfBoundsPanics is the regression test for the silent
// `continue` that used to drop fully out-of-range side-effect ranges: a bad
// range would yield a crash image missing its own side effect and a
// falsely-clean recovery run. It must panic with a diagnostic instead.
func TestCrashImageWithOutOfBoundsPanics(t *testing.T) {
	p := New(128)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("fully out-of-range crash-image range must panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "outside pool") {
			t.Fatalf("panic = %v, want range diagnostic", r)
		}
	}()
	p.CrashImageWith([]Range{{Off: 1 << 30, Len: 8}})
}

// TestCrashImageWithClampsPartialOverlap: a range that starts inside the pool
// but runs past its end is clamped to the pool boundary, not dropped.
func TestCrashImageWithClampsPartialOverlap(t *testing.T) {
	p := New(128)
	p.Store64(1, 1, 120, 77) // unflushed, in the last word
	img := p.CrashImageWith([]Range{{Off: 120, Len: 64}})
	if len(img) != 128 {
		t.Fatalf("image size = %d, want 128", len(img))
	}
	if got := FromImage(img).Load64(120); got != 77 {
		t.Fatalf("clamped range must still force the in-bounds prefix, got %d", got)
	}
}

// TestCrashImageWithZeroLenRangeIgnored: zero-length ranges stay no-ops even
// when their offset is out of range (a Range{} zero value must be harmless).
func TestCrashImageWithZeroLenRangeIgnored(t *testing.T) {
	p := New(128)
	img := p.CrashImageWith([]Range{{Off: 1 << 30, Len: 0}})
	if len(img) != 128 {
		t.Fatalf("image size = %d, want 128", len(img))
	}
}

func TestCrashStatesSingleIsAdversarialImage(t *testing.T) {
	p := New(256)
	p.Store64(1, 1, 64, 9) // unflushed
	states := p.CrashStates([]Range{{Off: 64, Len: 8}}, 1)
	if len(states) != 1 {
		t.Fatalf("max=1 must yield exactly the adversarial state, got %d", len(states))
	}
	st := states[0]
	if st.Name != StateSideEffect || !st.HasSideEffect {
		t.Fatalf("state = %+v, want side-effect-persisted", st)
	}
	if got := FromImage(st.Img).Load64(64); got != 9 {
		t.Fatalf("adversarial image must force the side effect, got %d", got)
	}
}

func TestCrashStatesEnumeratesBaselineAndPendingLines(t *testing.T) {
	p := New(512)
	p.Store64(1, 1, 64, 5)
	p.PersistNow(1, 64, 8)
	p.Store64(1, 1, 128, 7) // flushed but unfenced: a pending line
	p.Flush(1, 128, 8)
	p.Store64(1, 1, 256, 3) // dirty side effect
	states := p.CrashStates([]Range{{Off: 256, Len: 8}}, 8)
	if len(states) != 3 {
		t.Fatalf("got %d states, want adversarial+baseline+1 pending line", len(states))
	}
	if states[0].Name != StateSideEffect || states[1].Name != StateBaseline {
		t.Fatalf("state order = %q, %q", states[0].Name, states[1].Name)
	}
	if states[1].HasSideEffect {
		t.Fatalf("baseline must not claim the side effect")
	}
	base := FromImage(states[1].Img)
	if base.Load64(64) != 5 || base.Load64(256) != 0 {
		t.Fatalf("baseline must be the plain persisted image")
	}
	pend := states[2]
	if pend.Name != "pending-line@0x80" || !pend.HasSideEffect {
		t.Fatalf("pending state = %+v", pend)
	}
	pimg := FromImage(pend.Img)
	if pimg.Load64(128) != 7 {
		t.Fatalf("pending state must apply the staged line, got %d", pimg.Load64(128))
	}
	if pimg.Load64(256) != 3 {
		t.Fatalf("pending state must keep the adversarial side effect, got %d", pimg.Load64(256))
	}
	RecycleStates(states)
}

func TestCrashStatesRespectsCap(t *testing.T) {
	p := New(1024)
	for i := 0; i < 4; i++ {
		addr := Addr(64 * (i + 1))
		p.Store64(1, 1, addr, uint64(i+1))
		p.Flush(1, addr, 8)
	}
	p.Store64(1, 1, 768, 9)
	states := p.CrashStates([]Range{{Off: 768, Len: 8}}, 3)
	if len(states) != 3 {
		t.Fatalf("got %d states, want cap of 3", len(states))
	}
}

func TestRecycleStatesClearsImages(t *testing.T) {
	p := New(128)
	states := p.CrashStates(nil, 2)
	RecycleStates(states)
	for i, st := range states {
		if st.Img != nil {
			t.Fatalf("state %d image not cleared after recycle", i)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 64, 5)
	p.PersistNow(1, 64, 8)
	s := p.Snapshot()
	p.Store64(1, 2, 64, 99)
	p.Store64(1, 2, 128, 100)
	p.Restore(s)
	if got := p.Load64(64); got != 5 {
		t.Fatalf("restore must revert cache, got %d", got)
	}
	if got := p.Load64(128); got != 0 {
		t.Fatalf("restore must revert later writes, got %d", got)
	}
	if got := p.PersistedLoad64(64); got != 5 {
		t.Fatalf("restore must revert persisted image, got %d", got)
	}
}

func TestNewFromSnapshotIsIndependent(t *testing.T) {
	p := New(256)
	p.Store64(1, 1, 0, 7)
	s := p.Snapshot()
	q := NewFromSnapshot(s)
	q.Store64(1, 2, 0, 8)
	if got := p.Load64(0); got != 7 {
		t.Fatalf("pools must be independent, got %d", got)
	}
	if got := q.Load64(0); got != 8 {
		t.Fatalf("snapshot pool write lost, got %d", got)
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on size mismatch")
		}
	}()
	p := New(128)
	q := New(256)
	p.Restore(q.Snapshot())
}

func TestOutOfBoundsAccessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on out-of-bounds load")
		}
	}()
	New(128).Load64(128)
}

func TestShadowLabels(t *testing.T) {
	p := New(1024)
	p.SetShadowLabel(64, 16, 9)
	if got := p.ShadowLabel(64); got != 9 {
		t.Fatalf("shadow = %d, want 9", got)
	}
	if got := p.ShadowLabel(72); got != 9 {
		t.Fatalf("shadow of second word = %d, want 9", got)
	}
	if got := p.ShadowLabel(80); got != 0 {
		t.Fatalf("untouched shadow = %d, want 0", got)
	}
	p.SetShadowLabel(72, 8, 4)
	labels := p.ShadowLabelRange(64, 24)
	if len(labels) != 2 {
		t.Fatalf("label range = %v, want two labels", labels)
	}
}

func TestShadowLabelRangeDeduplicates(t *testing.T) {
	p := New(1024)
	p.SetShadowLabel(0, 64, 5)
	labels := p.ShadowLabelRange(0, 64)
	if len(labels) != 1 || labels[0] != 5 {
		t.Fatalf("labels = %v, want [5]", labels)
	}
}

func TestSwapAccessor(t *testing.T) {
	p := New(1024)
	prev := p.SwapAccessor(64, Accessor{Site: 1, Thread: 1, Valid: true})
	if prev.Valid {
		t.Fatalf("first access must see invalid previous accessor")
	}
	prev = p.SwapAccessor(64, Accessor{Site: 2, Thread: 2, Valid: true})
	if !prev.Valid || prev.Site != 1 || prev.Thread != 1 {
		t.Fatalf("prev = %+v, want site 1 thread 1", prev)
	}
}

func TestEpochAdvancesPerStore(t *testing.T) {
	p := New(1024)
	e0 := p.EpochAt(64)
	p.Store64(1, 1, 64, 1)
	e1 := p.EpochAt(64)
	p.Store64(1, 1, 64, 2)
	e2 := p.EpochAt(64)
	if e1 != e0+1 || e2 != e1+1 {
		t.Fatalf("epochs %d %d %d must increase by one per store", e0, e1, e2)
	}
}

func TestPersistedEquals(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 64, 42)
	if p.PersistedEquals(64, 8) {
		t.Fatalf("dirty range must not compare equal")
	}
	p.PersistNow(1, 64, 8)
	if !p.PersistedEquals(64, 8) {
		t.Fatalf("persisted range must compare equal")
	}
}

func TestStats(t *testing.T) {
	p := New(1024)
	p.Store64(1, 1, 0, 1)
	p.Flush(1, 0, 8)
	p.Fence(1)
	s, f, fe := p.Stats()
	if s != 1 || f != 1 || fe != 1 {
		t.Fatalf("stats = %d %d %d, want 1 1 1", s, f, fe)
	}
}

func TestRandomEvictionPersistsButKeepsDirty(t *testing.T) {
	p := NewWithOptions(LineSize, Options{EvictProb: 1, EvictSeed: 1})
	p.Store64(1, 1, 0, 9)
	// With one line and eviction probability 1, one more store forces the
	// dirty line back to the persisted image.
	p.Store64(1, 1, 8, 10)
	if got := p.PersistedLoad64(0); got != 9 {
		t.Fatalf("evicted line must be persisted, got %d", got)
	}
	if !p.WordState(0).Dirty {
		t.Fatalf("eviction must not clear the dirty bit")
	}
}

func TestWordDirtyRangeFindsFirstDirtyWord(t *testing.T) {
	p := New(1024)
	p.Store64(4, 11, 72, 1)
	st, waddr, dirty := p.WordDirtyRange(64, 24)
	if !dirty || waddr != 72 || st.Writer != 4 || st.Site != 11 {
		t.Fatalf("got %+v addr=%d dirty=%v", st, waddr, dirty)
	}
}

// Property: any write that was flushed and fenced before a crash survives in
// the crash image; any write that was never flushed is absent (zero).
func TestCrashConsistencyProperty(t *testing.T) {
	f := func(seed int64, spec []byte) bool {
		if len(spec) == 0 {
			return true
		}
		p := New(4096)
		type rec struct {
			addr Addr
			val  uint64
			per  bool
		}
		written := map[Addr]rec{}
		for i, b := range spec {
			// Keep flushed and unflushed writes on distinct cache
			// lines so line-granularity flushes don't persist
			// bystanders.
			persist := b%2 == 0
			slot := Addr(b%16) * 2
			if persist {
				slot++
			}
			addr := slot * LineSize
			val := uint64(i + 1)
			p.Store64(1, 1, addr, val)
			if persist {
				p.Flush(1, addr, 8)
				p.Fence(1)
			}
			written[addr] = rec{addr, val, persist}
		}
		img := p.CrashImage()
		q := FromImage(img)
		for _, r := range written {
			got := q.Load64(r.addr)
			if r.per && got != r.val {
				return false
			}
			if !r.per && got != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is an exact round trip for cache and persisted
// images regardless of interleaved stores and flushes.
func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := New(2048)
		for i, op := range ops {
			addr := Addr(op%(2048/8)) * 8
			p.Store64(1, 1, addr, uint64(i))
			if op%3 == 0 {
				p.PersistNow(1, addr, 8)
			}
		}
		before := p.Snapshot()
		img0 := p.CrashImage()
		cache0 := p.LoadBytes(0, 2048)
		for i, op := range ops {
			addr := Addr(op%(2048/8)) * 8
			p.Store64(2, 2, addr, uint64(i)+7777)
		}
		p.Restore(before)
		return bytes.Equal(p.CrashImage(), img0) && bytes.Equal(p.LoadBytes(0, 2048), cache0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fence is idempotent — a second fence with no intervening flush
// changes nothing.
func TestFenceIdempotentProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		p := New(1024)
		for i, v := range vals {
			addr := Addr(v%(1024/8)) * 8
			p.Store64(1, 1, addr, uint64(i))
			p.Flush(1, addr, 8)
		}
		p.Fence(1)
		img1 := p.CrashImage()
		p.Fence(1)
		return bytes.Equal(img1, p.CrashImage())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64(b *testing.B) {
	p := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Store64(1, 1, Addr(i%(1<<17))*8, uint64(i))
	}
}

func BenchmarkFlushFence(b *testing.B) {
	p := New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := Addr(i%(1<<14)) * 64
		p.Store64(1, 1, addr, uint64(i))
		p.Flush(1, addr, 8)
		p.Fence(1)
	}
}

func TestEADRStoresAreDurableImmediately(t *testing.T) {
	p := NewWithOptions(1024, Options{EADR: true})
	if !p.EADR() {
		t.Fatalf("EADR flag lost")
	}
	p.Store64(1, 7, 64, 42)
	if got := p.PersistedLoad64(64); got != 42 {
		t.Fatalf("eADR store must be durable at visibility, got %d", got)
	}
	if p.WordState(64).Dirty {
		t.Fatalf("eADR words are never dirty")
	}
	p.StoreBytes(1, 7, 128, []byte("battery-backed"))
	if !p.PersistedEquals(128, 14) {
		t.Fatalf("eADR byte store must be durable")
	}
	ok, _ := p.CAS64(2, 8, 64, 42, 43)
	if !ok || p.PersistedLoad64(64) != 43 {
		t.Fatalf("eADR CAS must be durable")
	}
}

func TestEADRCrashLosesNothing(t *testing.T) {
	p := NewWithOptions(1024, Options{EADR: true})
	p.Store64(1, 7, 64, 42) // never flushed
	q := FromImage(p.CrashImage())
	if got := q.Load64(64); got != 42 {
		t.Fatalf("eADR crash must preserve unflushed stores, got %d", got)
	}
}
