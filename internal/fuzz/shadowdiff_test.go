package fuzz

import (
	"sort"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/instr"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclhtgen"
)

// TestShadowFilePrefixMatchesGenerator pins the normalizer's prefix to the
// generator's: if they drift, normalized shadow fingerprints stop matching
// the hand-instrumented namespace. (fuzz deliberately does not import instr
// outside tests.)
func TestShadowFilePrefixMatchesGenerator(t *testing.T) {
	if ShadowFilePrefix != instr.ShadowFilePrefix {
		t.Fatalf("fuzz.ShadowFilePrefix = %q, instr.ShadowFilePrefix = %q; the two must stay identical", ShadowFilePrefix, instr.ShadowFilePrefix)
	}
}

func TestNormalizeFingerprint(t *testing.T) {
	cases := [][2]string{
		{"inter|pminstr_pclht.go:334->pminstr_pclht.go:164=>pminstr_pclht.go:218|address",
			"inter|pclht.go:334->pclht.go:164=>pclht.go:218|address"},
		{"sync|bucket-lock@pminstr_pclht.go:201", "sync|bucket-lock@pclht.go:201"},
		{"intra|a.go:1->b.go:2=>c.go:3|value", "intra|a.go:1->b.go:2=>c.go:3|value"},
		// A prefix that is not at a token boundary is untouched.
		{"sync|my_pminstr_lock@pminstr_x.go:9", "sync|my_pminstr_lock@x.go:9"},
	}
	for _, c := range cases {
		if got := NormalizeFingerprint(c[0]); got != c[1] {
			t.Errorf("NormalizeFingerprint(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

// campaignFingerprints runs one deterministic campaign against target name
// and returns the normalized fingerprints of every validated bug.
func campaignFingerprints(t *testing.T, name string) map[string]bool {
	t.Helper()
	fz, err := New(name, Options{
		Threads:    4,
		KeySpace:   12,
		OpsPerSeed: 40,
		MaxExecs:   60,
		Duration:   60 * time.Second,
		Seed:       7,
		Workers:    2,
	})
	if err != nil {
		t.Fatalf("new %s: %v", name, err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	fps := map[string]bool{}
	for _, j := range res.DB.Inconsistencies() {
		if j.Status == core.StatusBug {
			fps[NormalizeFingerprint(artifact.FingerprintInconsistency(j.Inconsistency))] = true
		}
	}
	for _, j := range res.DB.Syncs() {
		if j.Status == core.StatusBug {
			fps[NormalizeFingerprint(artifact.FingerprintSync(j.SyncInconsistency))] = true
		}
	}
	return fps
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestGeneratedPCLHTMatchesHandInstrumented is the behavioural-fidelity
// oracle for the pminstr generator: identical campaigns against the
// hand-instrumented P-CLHT and the generated shadow must find the same
// seeded bugs with the same file:line fingerprints (the shadow's pminstr_
// file prefix normalized away).
func TestGeneratedPCLHTMatchesHandInstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fuzzing campaigns")
	}
	hand := campaignFingerprints(t, "pclht")
	gen := campaignFingerprints(t, "pclht-gen")
	t.Logf("hand bugs:\n  %v", sortedKeys(hand))
	t.Logf("gen bugs:\n  %v", sortedKeys(gen))

	if len(hand) == 0 {
		t.Fatalf("hand-instrumented campaign found no validated bugs")
	}
	for fp := range hand {
		if !gen[fp] {
			t.Errorf("hand-instrumented bug %s not found by the generated shadow target", fp)
		}
	}
	for fp := range gen {
		if !hand[fp] {
			t.Errorf("generated-shadow bug %s not found by the hand-instrumented target", fp)
		}
	}
}
