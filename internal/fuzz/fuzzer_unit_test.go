package fuzz

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// stubTarget is a minimal in-package target for engine unit tests.
type stubTarget struct {
	// dirtyShare makes Exec write and cross-read a shared word so the
	// detectors have something to find.
	dirtyShare bool
}

func (s *stubTarget) Name() string               { return "stub" }
func (s *stubTarget) PoolSize() uint64           { return 8 << 10 }
func (s *stubTarget) Annotations() int           { return 0 }
func (s *stubTarget) Setup(t *rt.Thread) error   { return nil }
func (s *stubTarget) Recover(t *rt.Thread) error { return nil }
func (s *stubTarget) Exec(t *rt.Thread, op workload.Op) error {
	t.Branch()
	if s.dirtyShare && op.Kind.Mutates() {
		t.Store64(64, targets.Fingerprint(op.Key), taint.None, taint.None)
	} else {
		v, lab := t.Load64(64)
		t.NTStore64(128, v, lab, taint.None)
	}
	return nil
}

func stubFactory(dirty bool) targets.Factory {
	return func() targets.Target { return &stubTarget{dirtyShare: dirty} }
}

func TestSkipBookkeeping(t *testing.T) {
	f := NewWithFactory(stubFactory(false), Options{})
	if got := f.skipFor(64); got != 0 {
		t.Fatalf("fresh skip = %d", got)
	}
	f.addSkip(64, 3)
	f.addSkip(64, 0) // clamps to at least 1
	if got := f.skipFor(64); got != 4 {
		t.Fatalf("skip = %d, want 4", got)
	}
	if got := f.skipFor(128); got != 0 {
		t.Fatalf("other address skip = %d", got)
	}
}

func TestBaseStrategyPerMode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewWithFactory(stubFactory(false), Options{Mode: ModeDelayInj})
	if _, ok := f.baseStrategy(rng).(*sched.DelayInjector); !ok {
		t.Fatalf("delay mode must use DelayInjector")
	}
	f2 := NewWithFactory(stubFactory(false), Options{Mode: ModePMAware})
	if _, ok := f2.baseStrategy(rng).(sched.None); !ok {
		t.Fatalf("pmaware mode uses None as base (interleaving tier adds PMAware)")
	}
}

func TestPickSeedDisabledSeedTierSticksToFirst(t *testing.T) {
	f := NewWithFactory(stubFactory(false), Options{DisableSeedTier: true})
	gen := workload.NewGenerator(1, 8, 2)
	f.corpus = []*workload.Seed{gen.NewSeed(4), gen.NewSeed(4)}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		if got := f.pickSeed(rng); got != f.corpus[0] {
			t.Fatalf("disabled seed tier must always pick the first seed")
		}
	}
}

func TestPickSeedRoundRobin(t *testing.T) {
	f := NewWithFactory(stubFactory(false), Options{})
	gen := workload.NewGenerator(1, 8, 2)
	f.corpus = []*workload.Seed{gen.NewSeed(4), gen.NewSeed(4), gen.NewSeed(4)}
	rng := rand.New(rand.NewSource(2))
	a, b, c, d := f.pickSeed(rng), f.pickSeed(rng), f.pickSeed(rng), f.pickSeed(rng)
	if a != f.corpus[0] || b != f.corpus[1] || c != f.corpus[2] || d != f.corpus[0] {
		t.Fatalf("round robin broken")
	}
}

func TestRunOneMergesEverything(t *testing.T) {
	f := NewWithFactory(stubFactory(true), Options{MaxExecs: 10, Duration: 10 * time.Second})
	f.start = time.Now()
	seed := &workload.Seed{Threads: 2, Ops: []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpGet, Key: "a"},
		{Kind: workload.OpSet, Key: "b", Value: "2"},
		{Kind: workload.OpGet, Key: "b"},
	}}
	out, err := f.runOne(seed, sched.None{}, 0)
	if err != nil {
		t.Fatalf("runOne: %v", err)
	}
	if !out.improved {
		t.Fatalf("first execution must improve coverage")
	}
	if f.execs != 1 || len(f.timeline) != 1 {
		t.Fatalf("execution accounting wrong: execs=%d timeline=%d", f.execs, len(f.timeline))
	}
	if len(f.stats) == 0 {
		t.Fatalf("stats not merged")
	}
	// Re-running the same seed should not improve coverage forever.
	for i := 0; i < 3; i++ {
		f.runOne(seed, sched.None{}, 0)
	}
	out, err = f.runOne(seed, sched.None{}, 0)
	if err != nil {
		t.Fatalf("runOne: %v", err)
	}
	if out.improved {
		t.Fatalf("identical executions must stop improving coverage")
	}
}

func TestValidationRunsOnDetection(t *testing.T) {
	// The stub's NT store based on a dirty read is an inconsistency; the
	// stub's recovery does nothing, so validation must mark it a bug.
	f := NewWithFactory(stubFactory(true), Options{MaxExecs: 4, Duration: 10 * time.Second})
	f.start = time.Now()
	seed := &workload.Seed{Threads: 2, Ops: []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpGet, Key: "a"},
		{Kind: workload.OpSet, Key: "b", Value: "2"},
		{Kind: workload.OpGet, Key: "b"},
	}}
	for i := 0; i < 4; i++ {
		if _, err := f.runOne(seed, sched.None{}, 0); err != nil {
			t.Fatalf("runOne: %v", err)
		}
	}
	for _, j := range f.db.Inconsistencies() {
		if j.Status == core.StatusPending {
			t.Fatalf("inconsistency left unvalidated: %+v", j)
		}
	}
}

func TestExecutorEADRPools(t *testing.T) {
	x := NewExecutor(stubFactory(true), ExecOptions{EADR: true, UseCheckpoints: true})
	seed := &workload.Seed{Threads: 2, Ops: []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpGet, Key: "a"},
	}}
	res, err := x.Run(seed, sched.None{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Candidates) != 0 {
		t.Fatalf("eADR execution must have no dirty-read candidates")
	}
}

func TestExecResultInterCount(t *testing.T) {
	r := &ExecResult{Inconsistencies: []CapturedInconsistency{
		{In: &core.Inconsistency{Kind: core.KindInter}},
		{In: &core.Inconsistency{Kind: core.KindIntra}},
		{In: &core.Inconsistency{Kind: core.KindInter}},
	}}
	if r.InterInconsistencies() != 2 {
		t.Fatalf("inter count = %d", r.InterInconsistencies())
	}
}

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gen := workload.NewGenerator(1, 8, 4)
	s1, s2 := gen.NewSeed(12), gen.HotKeySeed(8)
	if _, _, err := SaveSeed(dir, 0, s1); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Same requested number: exclusive creation skips forward instead of
	// clobbering (concurrent campaigns share corpus directories).
	if _, n, err := SaveSeed(dir, 0, s2); err != nil || n != 1 {
		t.Fatalf("save: n=%d err=%v, want n=1", n, err)
	}
	loaded, err := LoadCorpus(dir, 4)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d seeds, want 2", len(loaded))
	}
	if len(loaded[0].Ops) != len(s1.Ops) {
		t.Fatalf("seed 0 ops = %d, want %d", len(loaded[0].Ops), len(s1.Ops))
	}
}

func TestLoadCorpusMissingDir(t *testing.T) {
	seeds, err := LoadCorpus("/nonexistent/corpus/dir", 4)
	if err != nil || seeds != nil {
		t.Fatalf("missing dir must be empty, got %v %v", seeds, err)
	}
}

func TestFuzzerPersistsImprovingSeeds(t *testing.T) {
	dir := t.TempDir()
	fz := NewWithFactory(stubFactory(true), Options{
		MaxExecs: 6, Duration: 10 * time.Second, CorpusDir: dir,
	})
	if _, err := fz.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	loaded, err := LoadCorpus(dir, 4)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded) == 0 {
		t.Fatalf("coverage-improving seeds must be persisted")
	}
}

// TestSaveSeedIdenticalCollisionIsSuccess: colliding with a corpus file
// that already holds the exact same seed reports success on the existing
// path instead of writing a redundant copy — the shared per-target corpus
// under pmraced needs only one copy of each input.
func TestSaveSeedIdenticalCollisionIsSuccess(t *testing.T) {
	dir := t.TempDir()
	gen := workload.NewGenerator(1, 8, 4)
	s := gen.NewSeed(12)
	path1, n1, err := SaveSeed(dir, 0, s)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	path2, n2, err := SaveSeed(dir, 0, s)
	if err != nil {
		t.Fatalf("identical re-save must succeed, got %v", err)
	}
	if path2 != path1 || n2 != n1 {
		t.Fatalf("identical re-save landed at %s (n=%d), want %s (n=%d)", path2, n2, path1, n1)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("corpus has %d files after duplicate save, want 1", len(ents))
	}
	// A different seed colliding on the same number still skips forward.
	if _, n3, err := SaveSeed(dir, 0, gen.HotKeySeed(8)); err != nil || n3 != 1 {
		t.Fatalf("differing seed: n=%d err=%v, want n=1", n3, err)
	}
}

// TestSharedCorpusIdenticalCampaigns runs the same deterministic campaign
// twice over one corpus directory (the pmraced shared per-target corpus):
// the second campaign re-derives the first's improving seeds, every save
// collides with an identical file, and none of that is an error — nor does
// it duplicate the corpus.
func TestSharedCorpusIdenticalCampaigns(t *testing.T) {
	dir := t.TempDir()
	run := func() *Fuzzer {
		fz := NewWithFactory(stubFactory(true), Options{
			MaxExecs: 6, Duration: 10 * time.Second, CorpusDir: dir, Seed: 5,
		})
		if _, err := fz.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return fz
	}
	f1 := run()
	after1, err := LoadCorpus(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	f2 := run()
	after2, err := LoadCorpus(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f1.corpusErr != nil || f2.corpusErr != nil {
		t.Fatalf("corpus errors: %v / %v", f1.corpusErr, f2.corpusErr)
	}
	if len(after1) == 0 {
		t.Fatalf("first campaign persisted no seeds")
	}
	if len(after2) != len(after1) {
		t.Fatalf("identical second campaign grew the corpus from %d to %d seeds", len(after1), len(after2))
	}
}
