// Package fuzz implements PMRace's PM-aware coverage-guided fuzzer (paper
// §4): the operation mutator generating structured inputs (§4.5), the
// campaign executor that runs seeds against a target under an interleaving
// strategy, the three-tier exploration loop (§4.2.3), in-memory pool
// checkpoints replacing AFL++'s fork server (§5), post-failure validation
// dispatch (§4.4), and result aggregation for the evaluation harness.
//
// Beyond the paper, Options.Protocol switches the campaign to
// protocol-traffic fuzzing (DESIGN.md §16): seeds become per-connection
// memcached text-protocol byte streams played through the internal/wire
// front-end, mutated by ProtoMutator, with mid-request crash points whose
// pool snapshots are replayed through target recovery. Parsed commands
// enter the target through the same Exec path as synthetic seeds, so bug
// fingerprints are identical across the two modes.
package fuzz
