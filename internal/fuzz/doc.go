// Package fuzz implements PMRace's PM-aware coverage-guided fuzzer (paper
// §4): the operation mutator generating structured inputs (§4.5), the
// campaign executor that runs seeds against a target under an interleaving
// strategy, the three-tier exploration loop (§4.2.3), in-memory pool
// checkpoints replacing AFL++'s fork server (§5), post-failure validation
// dispatch (§4.4), and result aggregation for the evaluation harness.
package fuzz
