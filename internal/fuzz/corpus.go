package fuzz

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/pmrace-go/pmrace/internal/workload"
)

// Corpus persistence: like AFL++'s queue directory, seeds that improved
// coverage are written out as plain protocol text so campaigns can resume,
// share seeds across runs, and attach inputs to bug reports. File names
// carry a sequence number; the text format is the one workload.Decode
// parses, so saved seeds are also directly usable as driver input.

// LoadCorpus reads every seed file in dir (sorted by name) with the given
// thread count. A missing directory yields an empty corpus, not an error.
func LoadCorpus(dir string, threads int) ([]*workload.Seed, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: reading corpus dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".seed") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*workload.Seed
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("fuzz: reading seed %s: %w", name, err)
		}
		seed := workload.Decode(string(data), threads)
		if !seed.Empty() {
			out = append(out, seed)
		}
	}
	return out, nil
}

// SaveSeed writes a seed into dir as NNNNNN.seed, returning the path and
// the number actually used. The file is created exclusively (O_EXCL),
// skipping forward past occupied numbers, so concurrent campaigns sharing a
// corpus directory — the pmraced per-target shared corpus — never clobber
// each other's seeds. Colliding with a file that already holds this exact
// seed is success, not an error: two campaigns over the same target and
// seed routinely race to save identical coverage-improving inputs, and the
// corpus only needs one copy.
func SaveSeed(dir string, n int, seed *workload.Seed) (string, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", n, err
	}
	data := []byte(seed.Encode())
	for {
		path := filepath.Join(dir, fmt.Sprintf("%06d.seed", n))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			if existing, rerr := os.ReadFile(path); rerr == nil && bytes.Equal(existing, data) {
				return path, n, nil
			}
			n++
			continue
		}
		if err != nil {
			return "", n, err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return "", n, err
		}
		return path, n, f.Close()
	}
}

// saveCorpusSeed persists a coverage-improving seed when a corpus directory
// is configured. Errors are reported once through the fuzzer's result
// (corpus persistence must never abort a campaign).
func (f *Fuzzer) saveCorpusSeed(seed *workload.Seed) {
	if f.opts.CorpusDir == "" {
		return
	}
	f.mu.Lock()
	n := f.savedSeeds
	f.mu.Unlock()
	_, used, err := SaveSeed(f.opts.CorpusDir, n, seed)
	f.mu.Lock()
	if used >= f.savedSeeds {
		f.savedSeeds = used + 1
	}
	if err != nil {
		f.corpusErr = err
	}
	f.mu.Unlock()
}
