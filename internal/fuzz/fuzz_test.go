package fuzz

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/targets"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclht"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func TestOpMutatorProducesValidSeeds(t *testing.T) {
	m := NewOpMutator(8, 4, 24)
	rng := rand.New(rand.NewSource(1))
	corpus := []*workload.Seed{workload.NewGenerator(1, 8, 4).NewSeed(24)}
	for i := 0; i < 200; i++ {
		s := m.Mutate(rng, corpus)
		if s == nil || len(s.Ops) == 0 {
			t.Fatalf("mutation %d produced empty seed", i)
		}
		for _, op := range s.Ops {
			if op.Kind == workload.OpError {
				t.Fatalf("operation mutator must never emit invalid ops")
			}
		}
		corpus = append(corpus, s)
		if len(corpus) > 8 {
			corpus = corpus[1:]
		}
	}
}

func TestOpMutatorEmptyCorpus(t *testing.T) {
	m := NewOpMutator(8, 4, 24)
	s := m.Mutate(rand.New(rand.NewSource(2)), nil)
	if len(s.Ops) != 24 || s.Threads != 4 {
		t.Fatalf("fresh seed = %d ops %d threads", len(s.Ops), s.Threads)
	}
}

func TestOpMutatorPopulationFallback(t *testing.T) {
	m := NewOpMutator(8, 4, 24)
	m.MarkStale()
	m.MarkStale()
	m.MarkStale()
	rng := rand.New(rand.NewSource(3))
	corpus := []*workload.Seed{workload.NewGenerator(1, 8, 4).NewSeed(4)}
	s := m.Mutate(rng, corpus)
	for _, op := range s.Ops {
		if op.Kind != workload.OpSet {
			t.Fatalf("population fallback must emit inserts only, got %v", op.Kind)
		}
	}
	if len(s.Ops) != 48 {
		t.Fatalf("population seed size = %d", len(s.Ops))
	}
}

func TestByteMutatorProducesErrors(t *testing.T) {
	m := &ByteMutator{Threads: 4}
	rng := rand.New(rand.NewSource(4))
	corpus := []*workload.Seed{workload.NewGenerator(1, 8, 4).NewSeed(32)}
	errors, total := 0, 0
	for i := 0; i < 100; i++ {
		s := m.Mutate(rng, corpus)
		for _, op := range s.Ops {
			total++
			if op.Kind == workload.OpError {
				errors++
			}
		}
	}
	if errors == 0 {
		t.Fatalf("byte-level havoc must produce some invalid commands (Table 4's Error class)")
	}
	if total == 0 {
		t.Fatalf("no ops produced")
	}
}

func pclhtFactory(t *testing.T) targets.Factory {
	t.Helper()
	return func() targets.Target {
		tgt, err := targets.New("pclht")
		if err != nil {
			panic(err)
		}
		return tgt
	}
}

func TestExecutorRunsSeedSequentially(t *testing.T) {
	x := NewExecutor(pclhtFactory(t), ExecOptions{CollectStats: true, HangTimeout: 50 * time.Millisecond})
	seed := workload.NewGenerator(5, 8, 1).NewSeed(20) // single thread
	res, err := x.Run(seed, sched.None{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Duration <= 0 || res.Coverage == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	if br := res.Coverage.Branch.Count(); br == 0 {
		t.Fatalf("branch coverage must be recorded")
	}
	if len(res.Stats) == 0 {
		t.Fatalf("stats must be collected")
	}
}

func TestExecutorCheckpointFasterSetup(t *testing.T) {
	seed := workload.NewGenerator(5, 8, 2).NewSeed(10)
	withCP := NewExecutor(pclhtFactory(t), ExecOptions{UseCheckpoints: true})
	noCP := NewExecutor(pclhtFactory(t), ExecOptions{UseCheckpoints: false})
	// Warm the checkpoint, then compare one run each.
	if _, err := withCP.Run(seed, sched.None{}); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	r1, err := withCP.Run(seed, sched.None{})
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	r2, err := noCP.Run(seed, sched.None{})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	// Not a strict benchmark, but the checkpointed setup path must work
	// and produce a usable execution.
	if r1.Duration <= 0 || r2.Duration <= 0 {
		t.Fatalf("durations: %v %v", r1.Duration, r2.Duration)
	}
}

func TestFuzzerFindsPCLHTBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("full fuzzing loop")
	}
	fz, err := New("pclht", Options{
		Threads:    4,
		KeySpace:   12,
		OpsPerSeed: 40,
		MaxExecs:   60,
		Duration:   60 * time.Second,
		Seed:       7,
		Workers:    2,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Execs == 0 {
		t.Fatalf("no executions ran")
	}
	// Bug 3 (intra, GC from unflushed table_new) must be found and
	// survive validation.
	foundIntra := false
	for _, b := range res.Bugs {
		if b.Kind == core.KindIntra {
			foundIntra = true
		}
	}
	if !foundIntra {
		t.Errorf("intra-thread GC bug (Bug 3) not found; bugs: %+v", res.Bugs)
	}
	// Bug 2 (sync, bucket locks) must be detected; the bucket-lock
	// variable must survive validation as a bug while at least one global
	// lock validates as a false positive.
	syncBug := false
	for _, b := range res.Bugs {
		if b.Kind == core.KindSync && b.VarName == "bucket-lock" {
			syncBug = true
		}
	}
	if !syncBug {
		t.Errorf("bucket-lock sync bug (Bug 2) not found; bugs: %+v", res.Bugs)
	}
	// Bug 1 (inter, insert through unflushed table pointer) should be
	// found by the PM-aware exploration.
	interBug := false
	for _, b := range res.Bugs {
		if b.Kind == core.KindInter {
			interBug = true
		}
	}
	if !interBug {
		t.Errorf("inter-thread data-loss bug (Bug 1) not found; bugs: %+v", res.Bugs)
	}
	// Bug 4: redundant writes reported.
	if len(res.RedundantSites) == 0 {
		t.Errorf("redundant-write finding (Bug 4) missing")
	}
	if res.Counts.InterCandidates == 0 {
		t.Errorf("no inter candidates recorded")
	}
	if res.BranchCov == 0 || res.AliasCov == 0 {
		t.Errorf("coverage empty: branch=%d alias=%d", res.BranchCov, res.AliasCov)
	}
	if len(res.Timeline) != res.Execs {
		t.Errorf("timeline points = %d, execs = %d", len(res.Timeline), res.Execs)
	}
}

func TestFuzzerDelayInjectionMode(t *testing.T) {
	if testing.Short() {
		t.Skip("full fuzzing loop")
	}
	fz, err := New("pclht", Options{
		Mode:     ModeDelayInj,
		MaxExecs: 10,
		Duration: 30 * time.Second,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Mode != ModeDelayInj || res.Execs == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFuzzerUnknownTarget(t *testing.T) {
	if _, err := New("nope", Options{}); err == nil {
		t.Fatalf("unknown target must error")
	}
}

func TestModeStrings(t *testing.T) {
	if ModePMAware.String() != "PMRace" || ModeDelayInj.String() != "DelayInj" || ModeNone.String() != "None" {
		t.Fatalf("mode strings wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Threads != 4 || o.Workers != 1 || o.MaxExecs == 0 || o.Sched.Poll == 0 {
		t.Fatalf("defaults = %+v", o)
	}
}

// TestEADRSuppressesInterButNotSync reproduces the paper's §6.6 discussion:
// on an eADR platform (battery-backed caches) PM Inter-thread Inconsistency
// cannot occur, while PM Synchronization Inconsistency — never-released
// persistent locks — still does.
func TestEADRSuppressesInterButNotSync(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	fz, err := New("pclht", Options{
		MaxExecs: 30,
		Duration: 60 * time.Second,
		Seed:     7,
		EADR:     true,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Counts.InterCandidates != 0 || res.Counts.IntraCandidates != 0 {
		t.Errorf("eADR must eliminate dirty reads: %d inter, %d intra candidates",
			res.Counts.InterCandidates, res.Counts.IntraCandidates)
	}
	for _, b := range res.Bugs {
		if b.Kind == core.KindInter || b.Kind == core.KindIntra {
			t.Errorf("eADR must eliminate inconsistency bugs, got %+v", b)
		}
	}
	syncBug := false
	for _, b := range res.Bugs {
		if b.Kind == core.KindSync && b.VarName == "bucket-lock" {
			syncBug = true
		}
	}
	if !syncBug {
		t.Errorf("the execution-context bug must survive eADR: %+v", res.Bugs)
	}
}
