package fuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/pmrace-go/pmrace/internal/lint"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
)

// TestLoadAliasHintsRoundTrip pins the schema contract between pmvet's
// alias-pair report (lint.AliasReport) and the fuzzer's hint loader: a
// report written with the producer's types must decode into the same pairs.
func TestLoadAliasHintsRoundTrip(t *testing.T) {
	rep := &lint.AliasReport{
		Version:  1,
		Packages: []string{"example.com/p"},
		Pairs: []lint.AliasPair{
			{Object: "root + 16", LoadSite: "p.go:14", StoreSite: "p.go:19", LoadFunc: "reader", StoreFunc: "writer"},
			{Object: "root + 24", LoadSite: "p.go:30", StoreSite: "p.go:41", LoadFunc: "get", StoreFunc: "put"},
		},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alias.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	hints, err := LoadAliasHints(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 2 {
		t.Fatalf("got %d hints, want 2", len(hints))
	}
	for i, want := range rep.Pairs {
		if hints[i].Load != want.LoadSite || hints[i].Store != want.StoreSite {
			t.Errorf("hint %d = %+v, want %s / %s", i, hints[i], want.LoadSite, want.StoreSite)
		}
	}
}

func TestLoadAliasHintsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alias.json")
	if err := os.WriteFile(path, []byte(`{"version":2,"pairs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAliasHints(path); err == nil {
		t.Fatal("want schema-version error, got nil")
	}
}

// TestApplyAliasHints verifies a hinted entry overtakes a dynamically
// hotter one in the interleaving queue.
func TestApplyAliasHints(t *testing.T) {
	hintedLoad := site.Named("hinted-load.go")
	hintedStore := site.Named("hinted-store.go")
	hotLoad := site.Named("hot-load.go")
	hotStore := site.Named("hot-store.go")

	stats := map[pmem.Addr]*sched.AddrStats{}
	hot := sched.NewAddrStats()
	for i := 0; i < 10; i++ {
		hot.Record(1, hotLoad, false)
		hot.Record(2, hotStore, true)
	}
	cold := sched.NewAddrStats()
	cold.Record(1, hintedLoad, false)
	cold.Record(2, hintedStore, true)
	stats[0x100] = hot
	stats[0x200] = cold

	f := &Fuzzer{opts: Options{AliasHints: []AliasHint{{
		Load:  site.Lookup(hintedLoad).String(),
		Store: site.Lookup(hintedStore).String(),
	}}}}

	q := sched.BuildQueue(stats)
	f.applyAliasHints(q)
	first := q.Pop()
	if first == nil || first.Addr != 0x200 {
		t.Fatalf("first entry = %+v, want hinted addr 0x200", first)
	}
	if second := q.Pop(); second == nil || second.Addr != 0x100 {
		t.Fatalf("second entry = %+v, want 0x100", second)
	}

	// Without hints the dynamically hot entry stays first.
	q2 := sched.BuildQueue(stats)
	(&Fuzzer{}).applyAliasHints(q2)
	if first := q2.Pop(); first == nil || first.Addr != 0x100 {
		t.Fatalf("unhinted first entry = %+v, want 0x100", first)
	}
}
