package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
)

// AliasHint is one statically inferred load/store site pair on a shared PM
// object, produced by `pmvet -alias`. Sites are in the runtime site-ID
// format ("pclht.go:333"). When a queue entry's observed sites cover both
// ends of a hint, the entry's priority is boosted above every purely
// dynamic priority: static analysis has flagged the pair as a candidate
// inter-thread alias before any dynamic evidence accumulates.
type AliasHint struct {
	Load  string `json:"load_site"`
	Store string `json:"store_site"`
}

// aliasReportFile mirrors the subset of the pmvet alias-pair JSON schema
// (lint.AliasReport, version 1) the fuzzer consumes. Decoded structurally
// rather than by importing internal/lint so the fuzzer does not link the
// static-analysis stack.
type aliasReportFile struct {
	Version int         `json:"version"`
	Pairs   []AliasHint `json:"pairs"`
}

// LoadAliasHints reads a pmvet alias-pair report (`pmvet -alias out.json`)
// and returns its pairs as scheduler hints.
func LoadAliasHints(path string) ([]AliasHint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: alias hints: %w", err)
	}
	var rep aliasReportFile
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("fuzz: alias hints %s: %w", path, err)
	}
	if rep.Version != 1 {
		return nil, fmt.Errorf("fuzz: alias hints %s: unsupported schema version %d", path, rep.Version)
	}
	return rep.Pairs, nil
}

// aliasBoost lifts a statically hinted entry above every dynamic priority
// (priorities are access counts, bounded far below this).
const aliasBoost = 1 << 20

// applyAliasHints boosts queue entries whose observed load and store sites
// cover both ends of a static alias pair.
func (f *Fuzzer) applyAliasHints(q *sched.Queue) {
	hints := f.opts.AliasHints
	if len(hints) == 0 {
		return
	}
	q.Reprioritize(func(e *sched.Entry) int {
		loads := make(map[string]bool, len(e.LoadSites))
		for id := range e.LoadSites {
			loads[site.Lookup(id).String()] = true
		}
		stores := make(map[string]bool, len(e.StoreSites))
		for id := range e.StoreSites {
			stores[site.Lookup(id).String()] = true
		}
		for _, h := range hints {
			if loads[h.Load] && stores[h.Store] {
				return aliasBoost
			}
		}
		return 0
	})
}
