package fuzz

import (
	"math/rand"
	"strconv"

	"github.com/pmrace-go/pmrace/internal/workload"
)

// Mutator derives a new seed from a corpus. Implementations must be
// deterministic given the rng.
type Mutator interface {
	Mutate(rng *rand.Rand, corpus []*workload.Seed) *workload.Seed
}

// OpMutator is PMRace's operation mutator (paper §4.5): it evolves seeds with
// the five strategies inspired by Krace — mutation, addition, deletion,
// shuffling and merging — prioritizes similar keys to increase shared PM
// accesses, and falls back to insert-heavy population seeds to trigger
// resizing when coverage stalls.
type OpMutator struct {
	// KeySpace bounds the key universe; a small space concentrates
	// operations on shared keys.
	KeySpace int
	// Threads is the worker thread count of produced seeds.
	Threads int
	// OpsPerSeed is the target operation count for fresh seeds.
	OpsPerSeed int
	// stale counts consecutive mutations without coverage improvement;
	// the fuzzer pokes it via MarkStale/MarkProgress.
	stale int
}

// NewOpMutator creates the operation mutator with the evaluation's defaults
// (4 driver threads, paper §6.1).
func NewOpMutator(keySpace, threads, opsPerSeed int) *OpMutator {
	if keySpace <= 0 {
		keySpace = 16
	}
	if threads <= 0 {
		threads = 4
	}
	if opsPerSeed <= 0 {
		opsPerSeed = 48
	}
	return &OpMutator{KeySpace: keySpace, Threads: threads, OpsPerSeed: opsPerSeed}
}

// MarkStale records that recent seeds did not improve coverage; after enough
// stale rounds Mutate emits a population seed (the "load phase" fallback).
func (m *OpMutator) MarkStale() { m.stale++ }

// MarkProgress resets the staleness counter.
func (m *OpMutator) MarkProgress() { m.stale = 0 }

// Mutate implements Mutator.
func (m *OpMutator) Mutate(rng *rand.Rand, corpus []*workload.Seed) *workload.Seed {
	gen := workload.NewGenerator(rng.Int63(), m.KeySpace, m.Threads)
	if len(corpus) == 0 {
		return gen.NewSeed(m.OpsPerSeed)
	}
	if m.stale >= 3 {
		// Population fallback: many inserts with distinct keys to push
		// the system into resizing territory.
		m.stale = 0
		return gen.PopulationSeed(m.OpsPerSeed * 2)
	}
	base := corpus[rng.Intn(len(corpus))].Clone()
	switch rng.Intn(5) {
	case 0:
		return m.mutateOp(rng, gen, base)
	case 1:
		return m.addOp(rng, gen, base)
	case 2:
		return m.deleteOp(rng, base)
	case 3:
		return m.shuffle(rng, base)
	default:
		other := corpus[rng.Intn(len(corpus))]
		return m.merge(rng, base, other)
	}
}

// mutateOp updates an arbitrary parameter of a random operation to another
// valid value, preferring keys already used by the seed (similar keys raise
// the chance of PM alias pairs).
func (m *OpMutator) mutateOp(rng *rand.Rand, gen *workload.Generator, s *workload.Seed) *workload.Seed {
	if len(s.Ops) == 0 {
		return gen.NewSeed(m.OpsPerSeed)
	}
	i := rng.Intn(len(s.Ops))
	op := &s.Ops[i]
	switch {
	case rng.Intn(2) == 0:
		// Prefer a key another operation of this seed already uses.
		op.Key = s.Ops[rng.Intn(len(s.Ops))].Key
	case op.Kind == workload.OpIncr || op.Kind == workload.OpDecr:
		// Deltas must stay numeric to remain valid commands.
		op.Value = strconv.Itoa(1 + rng.Intn(99))
	case op.Kind.Mutates() && op.Kind != workload.OpDelete:
		op.Value = gen.Value()
	default:
		op.Key = gen.Key()
	}
	return s
}

// addOp inserts an operation at an arbitrary position.
func (m *OpMutator) addOp(rng *rand.Rand, gen *workload.Generator, s *workload.Seed) *workload.Seed {
	op := gen.Op()
	if len(s.Ops) > 0 && rng.Intn(2) == 0 {
		op.Key = s.Ops[rng.Intn(len(s.Ops))].Key
	}
	pos := 0
	if len(s.Ops) > 0 {
		pos = rng.Intn(len(s.Ops) + 1)
	}
	s.Ops = append(s.Ops[:pos], append([]workload.Op{op}, s.Ops[pos:]...)...)
	return s
}

// deleteOp removes an arbitrary operation.
func (m *OpMutator) deleteOp(rng *rand.Rand, s *workload.Seed) *workload.Seed {
	if len(s.Ops) <= 1 {
		return s
	}
	i := rng.Intn(len(s.Ops))
	s.Ops = append(s.Ops[:i], s.Ops[i+1:]...)
	return s
}

// shuffle permutes operations; the seed's Split then redistributes them to
// threads.
func (m *OpMutator) shuffle(rng *rand.Rand, s *workload.Seed) *workload.Seed {
	rng.Shuffle(len(s.Ops), func(i, j int) { s.Ops[i], s.Ops[j] = s.Ops[j], s.Ops[i] })
	return s
}

// merge splices two seeds into a new one.
func (m *OpMutator) merge(rng *rand.Rand, a, b *workload.Seed) *workload.Seed {
	cut := 0
	if len(a.Ops) > 0 {
		cut = rng.Intn(len(a.Ops) + 1)
	}
	out := &workload.Seed{Threads: a.Threads}
	out.Ops = append(out.Ops, a.Ops[:cut]...)
	out.Ops = append(out.Ops, b.Ops...)
	if len(out.Ops) > 4*m.OpsPerSeed {
		out.Ops = out.Ops[:4*m.OpsPerSeed]
	}
	return out
}

// ByteMutator is the AFL++-default-style baseline (paper §6.5, Table 4): it
// havoc-mutates the text encoding of a seed byte by byte and re-parses the
// result. Unlike the operation mutator it has no knowledge of command
// syntax, so roughly a third of its outputs fail input parsing ("Error"
// commands).
type ByteMutator struct {
	Threads int
}

// Mutate implements Mutator.
func (b *ByteMutator) Mutate(rng *rand.Rand, corpus []*workload.Seed) *workload.Seed {
	threads := b.Threads
	if threads <= 0 {
		threads = 4
	}
	var text []byte
	if len(corpus) == 0 {
		gen := workload.NewGenerator(rng.Int63(), 16, threads)
		text = []byte(gen.NewSeed(32).Encode())
	} else {
		text = []byte(corpus[rng.Intn(len(corpus))].Encode())
	}
	if len(text) == 0 {
		text = []byte("get key000\n")
	}
	// AFL-style havoc: a burst of random byte edits.
	for n := 1 + rng.Intn(8); n > 0; n-- {
		switch rng.Intn(3) {
		case 0: // flip/replace a byte
			text[rng.Intn(len(text))] = byte(rng.Intn(256))
		case 1: // insert a byte
			i := rng.Intn(len(text) + 1)
			text = append(text[:i], append([]byte{byte(rng.Intn(256))}, text[i:]...)...)
		default: // delete a byte
			if len(text) > 1 {
				i := rng.Intn(len(text))
				text = append(text[:i], text[i+1:]...)
			}
		}
	}
	return workload.Decode(string(text), threads)
}

var (
	_ Mutator = (*OpMutator)(nil)
	_ Mutator = (*ByteMutator)(nil)
)
