// This file implements protocol-traffic execution: playing recorded byte
// streams through the wire front-end instead of dispatching an abstract
// operation vector. The parsed commands enter the target through the same
// Exec path as synthetic seeds, so detection sites — and therefore bug
// fingerprints — are shared between the two modes (DESIGN.md §16).

package fuzz

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/wire"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// maxCrashImagesPerExec bounds the pool snapshots taken at protocol crash
// points in one execution; each is a full pool copy.
const maxCrashImagesPerExec = 4

// protoThreadCount clamps the seed's thread count to the number of
// connection streams: with more streams than threads, each thread serves
// several connections back to back (connection churn).
func protoThreadCount(seed *workload.Seed) int {
	n := seed.Threads
	if n < 1 {
		n = 1
	}
	if ns := len(seed.Proto.Streams); n > ns {
		n = ns
	}
	return n
}

// protoWorker is one driver thread of a protocol execution: it plays
// streams ti, ti+nthreads, ... through an incremental parser, executing
// each parsed command against the target. At a crash point the PM pool is
// snapshotted after the command was parsed but before its first PM store —
// the image a real server would leave if it died mid-request.
func (x *Executor) protoWorker(th *rt.Thread, tgt targets.Target, seed *workload.Seed, ti, nthreads int, res *ExecResult, mu *sync.Mutex) {
	ps := seed.Proto
	crash := make(map[[2]int]bool, len(ps.Crash))
	for _, cp := range ps.Crash {
		crash[[2]int{cp.Stream, cp.Cmd}] = true
	}
	for si := ti; si < len(ps.Streams); si += nthreads {
		p := wire.NewParser()
		p.Feed(ps.Streams[si])
		cmdIdx := 0
	stream:
		for {
			cmd, ok := p.Next()
			if !ok {
				break
			}
			if cmd.Quit {
				break
			}
			if crash[[2]int{si, cmdIdx}] {
				img := th.Env().Pool().CrashImage()
				mu.Lock()
				if len(res.CrashImages) < maxCrashImagesPerExec {
					res.CrashImages = append(res.CrashImages, img)
				}
				mu.Unlock()
			}
			for _, op := range cmd.Ops() {
				if err := tgt.Exec(th, op); err != nil {
					mu.Lock()
					res.ExecErrors++
					mu.Unlock()
				}
			}
			cmdIdx++
			if cmdIdx > 4096 {
				break stream // runaway stream; seeds never get this long
			}
		}
	}
}

// checkCrashRecovery replays one crash image through a fresh target's
// recovery code and reports a non-empty failure description when recovery
// hangs, errors, panics or times out.
func (x *Executor) checkCrashRecovery(img []byte) string {
	tgt := x.factory()
	env := rt.NewEnv(pmem.FromImage(img), rt.Config{HangTimeout: x.opts.HangTimeout})
	done := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(rt.HangError); ok {
					done <- "recovery hung at protocol crash point"
				} else {
					done <- fmt.Sprintf("recovery panicked at protocol crash point: %v", r)
				}
			}
		}()
		th := env.Spawn()
		defer th.Exit()
		if err := tgt.Recover(th); err != nil {
			done <- fmt.Sprintf("recovery failed at protocol crash point: %v", err)
			return
		}
		done <- ""
	}()
	select {
	case msg := <-done:
		return msg
	case <-time.After(time.Second):
		// The goroutine is abandoned; the watchdog wall bound exists for
		// recovery code looping outside any hook.
		return "recovery timed out at protocol crash point"
	}
}

// ProtoMutator mutates protocol byte-stream seeds. Strategies preserve the
// seed form (streams stay framed command traffic, possibly with junk) while
// varying connection count, pipelining depth, command mix and crash-point
// placement.
type ProtoMutator struct {
	gen *workload.ProtoGen
}

// NewProtoMutator creates the protocol mutator; the generator seeds fresh
// command material.
func NewProtoMutator(rngSeed int64, keySpace, threads int) *ProtoMutator {
	return &ProtoMutator{gen: workload.NewProtoGen(rngSeed, keySpace, threads)}
}

// Mutate implements Mutator for protocol seeds. Non-protocol corpus
// entries (possible when a mixed corpus directory is loaded) fall back to a
// freshly generated protocol seed.
func (m *ProtoMutator) Mutate(rng *rand.Rand, corpus []*workload.Seed) *workload.Seed {
	var protoSeeds []*workload.Seed
	for _, s := range corpus {
		if s.Proto != nil && len(s.Proto.Streams) > 0 {
			protoSeeds = append(protoSeeds, s)
		}
	}
	if len(protoSeeds) == 0 {
		return m.gen.MixSeed(6, 10)
	}
	s := protoSeeds[rng.Intn(len(protoSeeds))].Clone()
	ps := s.Proto
	switch rng.Intn(6) {
	case 0:
		// Append a burst of fresh commands to one stream.
		si := rng.Intn(len(ps.Streams))
		b := ps.Streams[si]
		for i := 1 + rng.Intn(6); i > 0; i-- {
			b = m.gen.Command(b)
		}
		ps.Streams[si] = b
	case 1:
		// Open a new connection (stream), sometimes malformed.
		ps.Streams = append(ps.Streams, m.gen.Stream(1+rng.Intn(8), 120))
	case 2:
		// Splice a stream from another corpus entry (crossover).
		o := protoSeeds[rng.Intn(len(protoSeeds))]
		ps.Streams = append(ps.Streams, append([]byte(nil), o.Proto.Streams[rng.Intn(len(o.Proto.Streams))]...))
	case 3:
		// Byte havoc in a small window: malformed frames mid-stream.
		si := rng.Intn(len(ps.Streams))
		b := ps.Streams[si]
		if len(b) > 0 {
			for i := 1 + rng.Intn(4); i > 0; i-- {
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			}
		}
	case 4:
		// Drop a stream (shorter-lived connections).
		if len(ps.Streams) > 1 {
			si := rng.Intn(len(ps.Streams))
			ps.Streams = append(ps.Streams[:si], ps.Streams[si+1:]...)
			kept := ps.Crash[:0]
			for _, cp := range ps.Crash {
				if cp.Stream < si {
					kept = append(kept, cp)
				} else if cp.Stream > si {
					cp.Stream--
					kept = append(kept, cp)
				}
			}
			ps.Crash = kept
		}
	default:
		// Move or add a mid-request crash point.
		cp := workload.CrashPoint{Stream: rng.Intn(len(ps.Streams)), Cmd: rng.Intn(16)}
		if len(ps.Crash) > 0 && rng.Intn(2) == 0 {
			ps.Crash[rng.Intn(len(ps.Crash))] = cp
		} else if len(ps.Crash) < 4 {
			ps.Crash = append(ps.Crash, cp)
		}
	}
	return s
}

var _ Mutator = (*ProtoMutator)(nil)
