package fuzz

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/core"
	_ "github.com/pmrace-go/pmrace/internal/targets/memcached"
	"github.com/pmrace-go/pmrace/internal/workload"
)

func TestProtoThreadCount(t *testing.T) {
	s := workload.NewProtoSeed(4, []byte("a\n"), []byte("b\n"))
	if got := protoThreadCount(s); got != 2 {
		t.Fatalf("threads clamp to streams: got %d", got)
	}
	s.Threads = 1
	if got := protoThreadCount(s); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestProtoMutatorKeepsSeedsPlayable(t *testing.T) {
	m := NewProtoMutator(11, 12, 4)
	rng := rand.New(rand.NewSource(5))
	corpus := []*workload.Seed{
		workload.NewProtoGen(3, 12, 4).MixSeed(6, 10),
		workload.NewProtoGen(4, 12, 4).ChurnSeed(8),
	}
	for i := 0; i < 200; i++ {
		s := m.Mutate(rng, corpus)
		if s.Proto == nil || len(s.Proto.Streams) == 0 {
			t.Fatalf("iteration %d: mutator produced a non-protocol seed", i)
		}
		for _, cp := range s.Proto.Crash {
			if cp.Stream >= len(s.Proto.Streams) {
				t.Fatalf("iteration %d: dangling crash point %+v over %d streams", i, cp, len(s.Proto.Streams))
			}
		}
		// Mutants must round-trip the corpus text format.
		back := workload.Decode(s.Encode(), s.Threads)
		if back.Proto == nil || len(back.Proto.Streams) != len(s.Proto.Streams) {
			t.Fatalf("iteration %d: mutant does not round-trip", i)
		}
		corpus = append(corpus[:1], s)
	}
	// A corpus with no protocol seeds falls back to generation.
	if s := m.Mutate(rng, []*workload.Seed{{Ops: []workload.Op{{Kind: workload.OpGet, Key: "k"}}}}); s.Proto == nil {
		t.Fatal("fallback seed is not a protocol seed")
	}
}

// TestProtocolCampaignSmoke runs a tiny protocol-mode campaign end to end:
// executions complete, protocol parse errors do not kill driver threads, and
// the mid-request crash images replay through recovery.
func TestProtocolCampaignSmoke(t *testing.T) {
	fz, err := New("memcached", Options{
		Threads:  4,
		KeySpace: 8,
		MaxExecs: 12,
		Duration: 30 * time.Second,
		Seed:     3,
		Protocol: true,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Execs == 0 {
		t.Fatal("no executions")
	}
	for _, o := range res.DB.Others() {
		if o.Kind == "crash-recovery" {
			t.Errorf("memcached recovery failed at a protocol crash point: %s", o.Description)
		}
	}
}

// campaignDetections runs one deterministic campaign and returns the
// normalized fingerprints of every judged inconsistency (any status): the
// detection-level view, which is what the protocol mode must reproduce.
func campaignDetections(t *testing.T, protocol bool) (map[string]bool, map[string]bool) {
	t.Helper()
	fz, err := New("memcached", Options{
		Threads:    4,
		KeySpace:   12,
		OpsPerSeed: 40,
		MaxExecs:   80,
		Duration:   120 * time.Second,
		Seed:       7,
		Workers:    2,
		Protocol:   protocol,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	detected := map[string]bool{}
	confirmed := map[string]bool{}
	for _, j := range res.DB.Inconsistencies() {
		fp := NormalizeFingerprint(artifact.FingerprintInconsistency(j.Inconsistency))
		detected[fp] = true
		if j.Status == core.StatusBug {
			confirmed[fp] = true
		}
	}
	for _, j := range res.DB.Syncs() {
		fp := NormalizeFingerprint(artifact.FingerprintSync(j.SyncInconsistency))
		detected[fp] = true
		if j.Status == core.StatusBug {
			confirmed[fp] = true
		}
	}
	return detected, confirmed
}

// TestProtocolCampaignMatchesSynthetic is the acceptance oracle for the wire
// front-end: fuzzing memcached through real protocol bytes must find the
// same seeded bugs as the synthetic-workload campaign, with matching
// file:line fingerprints — the wire path feeds ops into the exact dispatch
// the synthetic path uses, so every shared detection is byte-identical
// after normalization.
func TestProtocolCampaignMatchesSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fuzzing campaigns")
	}
	synDet, synBugs := campaignDetections(t, false)
	protoDet, protoBugs := campaignDetections(t, true)
	t.Logf("synthetic: %d detected / %d confirmed:\n  %v", len(synDet), len(synBugs), sortedKeys(synDet))
	t.Logf("protocol: %d detected / %d confirmed:\n  %v", len(protoDet), len(protoBugs), sortedKeys(protoDet))

	if len(synDet) == 0 {
		t.Fatal("synthetic campaign detected nothing")
	}
	if len(protoDet) == 0 {
		t.Fatal("protocol campaign detected nothing")
	}
	shared := 0
	for fp := range protoDet {
		if synDet[fp] {
			shared++
		}
	}
	if shared == 0 {
		t.Errorf("no overlap between protocol and synthetic detections")
	}
	if len(protoBugs) == 0 {
		t.Errorf("protocol campaign confirmed no bugs")
	}
}
