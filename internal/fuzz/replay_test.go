package fuzz

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/targets"
)

// TestArtifactAllRequiresDir pins that ArtifactAll without ArtifactDir is a
// configuration error, not a silent no-op.
func TestArtifactAllRequiresDir(t *testing.T) {
	fz, err := New("pclht", Options{
		Threads:     2,
		KeySpace:    8,
		OpsPerSeed:  4,
		MaxExecs:    1,
		Duration:    time.Second,
		Workers:     1,
		ArtifactAll: true,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if _, err := fz.Run(); err == nil {
		t.Fatal("Run with ArtifactAll but no ArtifactDir succeeded, want error")
	}
}

// TestArtifactRoundTripReplay drives the full forensic pipeline: a campaign
// with an artifact directory must write one bundle per confirmed bug, and a
// written bundle must Load and ReplayArtifact back to the same fingerprint.
func TestArtifactRoundTripReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full fuzzing loop")
	}
	dir := t.TempDir()
	fz, err := New("pclht", Options{
		Threads:     4,
		KeySpace:    12,
		OpsPerSeed:  40,
		MaxExecs:    60,
		Duration:    60 * time.Second,
		Seed:        7,
		Workers:     2,
		ArtifactDir: dir,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := fz.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Bugs) == 0 {
		t.Fatalf("campaign found no bugs, cannot test artifacts")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("no artifact bundles written for %d bugs", len(res.Bugs))
	}

	factory := func() targets.Target {
		tg, err := targets.New("pclht")
		if err != nil {
			panic(err)
		}
		return tg
	}

	// Every bundle must load; the sync bundle replays deterministically
	// (the detection fires on the plain run), so require reproduction for
	// it and at least attempt the others.
	var reproduced int
	var syncSeen bool
	for _, e := range entries {
		bdir := filepath.Join(dir, e.Name())
		b, err := artifact.Load(bdir)
		if err != nil {
			t.Fatalf("loading %s: %v", e.Name(), err)
		}
		if b.Bug.Fingerprint == "" || b.Bug.Target != "pclht" || b.Bug.Status != "bug" {
			t.Fatalf("%s: malformed report %+v", e.Name(), b.Bug)
		}
		if b.Seed == "" {
			t.Fatalf("%s: empty seed", e.Name())
		}
		r, err := ReplayArtifact(factory, b, 8)
		if err != nil {
			t.Fatalf("replaying %s: %v", e.Name(), err)
		}
		if r.Execs == 0 {
			t.Fatalf("%s: replay ran no executions", e.Name())
		}
		if r.Reproduced {
			reproduced++
		}
		if b.Bug.Kind == "sync" {
			syncSeen = true
			if !r.Reproduced {
				t.Errorf("%s: sync bundle not reproduced; recorded %q, found %v",
					e.Name(), r.Fingerprint, r.Found)
			}
		}
		t.Logf("%s: reproduced=%v execs=%d strategy=%s", e.Name(), r.Reproduced, r.Execs, r.Strategy)
	}
	if !syncSeen {
		t.Errorf("no sync bundle among %d artifacts", len(entries))
	}
	if reproduced == 0 {
		t.Errorf("no bundle reproduced its recorded fingerprint")
	}
}

// TestReplayArtifactRejectsEmptySeed covers the error path a hand-edited
// bundle can hit.
func TestReplayArtifactRejectsEmptySeed(t *testing.T) {
	factory := func() targets.Target {
		tg, err := targets.New("pclht")
		if err != nil {
			panic(err)
		}
		return tg
	}
	b := &artifact.Bundle{Bug: artifact.Report{Fingerprint: "x", Threads: 4}}
	if _, err := ReplayArtifact(factory, b, 4); err == nil {
		t.Fatal("ReplayArtifact accepted an empty seed")
	}
}
