package fuzz

import "strings"

// ShadowFilePrefix is the file-name prefix cmd/pminstr puts on generated
// shadow sources (kept in lockstep with internal/instr.ShadowFilePrefix by
// a test; duplicated here so the runtime layers do not depend on the
// generator). Because site IDs use base filenames and the generator
// preserves line numbers, a shadow target's bug fingerprints differ from
// its hand-instrumented twin's only by this prefix.
const ShadowFilePrefix = "pminstr_"

// NormalizeFingerprint strips ShadowFilePrefix from every site token of a
// bug fingerprint, mapping shadow-target fingerprints onto the
// hand-instrumented namespace so the two can be compared directly. Site
// tokens start at the beginning of the string or after one of the
// fingerprint separators ('|' between fields, '>' in the write->read=>store
// chain, '@' before a sync site); prefix occurrences elsewhere are left
// alone.
func NormalizeFingerprint(fp string) string {
	if !strings.Contains(fp, ShadowFilePrefix) {
		return fp
	}
	var b strings.Builder
	b.Grow(len(fp))
	for i := 0; i < len(fp); {
		atBoundary := i == 0 || fp[i-1] == '|' || fp[i-1] == '>' || fp[i-1] == '@'
		if atBoundary && strings.HasPrefix(fp[i:], ShadowFilePrefix) {
			i += len(ShadowFilePrefix)
			continue
		}
		b.WriteByte(fp[i])
		i++
	}
	return b.String()
}
