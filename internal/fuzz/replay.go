package fuzz

import (
	"fmt"
	"sort"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// describeStrategy renders a strategy's schedule parameters for an artifact
// bundle, including the finding run's outcome for PM-aware exploration.
func describeStrategy(strat sched.Strategy) artifact.Schedule {
	switch s := strat.(type) {
	case *sched.PMAware:
		d := s.Describe()
		o := s.Outcome()
		sd := artifact.Schedule{
			Mode:       "pmaware",
			Addr:       uint64(d.Addr),
			Priority:   d.Priority,
			Skip:       d.InitialSkip,
			CondWaits:  o.CondWaits,
			Signalled:  o.Signalled,
			Disabled:   o.Disabled,
			Privileged: o.PrivilegedUsed,
		}
		for _, id := range d.LoadSites {
			sd.LoadSites = append(sd.LoadSites, site.Lookup(id).String())
		}
		for _, id := range d.StoreSites {
			sd.StoreSites = append(sd.StoreSites, site.Lookup(id).String())
		}
		// Describe iterates Go maps; sort the resolved strings so identical
		// campaigns serialize byte-identical schedule.json files.
		sort.Strings(sd.LoadSites)
		sort.Strings(sd.StoreSites)
		return sd
	case *sched.DelayInjector:
		return artifact.Schedule{Mode: "delay"}
	default:
		return artifact.Schedule{Mode: "none"}
	}
}

// ReplayResult reports one artifact replay.
type ReplayResult struct {
	// Fingerprint is the bug identity the bundle records.
	Fingerprint string
	// Reproduced reports that some replay execution detected an
	// inconsistency with the same fingerprint.
	Reproduced bool
	// Strategy names the execution that reproduced it ("plain" or
	// "pmaware@<addr>").
	Strategy string
	// Execs counts the replay executions performed.
	Execs int
	// Found lists every distinct fingerprint the replays detected, for
	// diagnostics when the recorded one is not among them.
	Found []string
}

// ReplayArtifact re-executes a forensic bundle against the target it was
// recorded from: first the bundle's seed under the plain scheduler, then
// under PM-aware exploration — the recorded sync-point address first (pool
// layout is deterministic for a given target setup, so the address
// identifies the same sync point across processes), then the rest of the
// priority queue, bounded by maxEntries. It reports whether any execution
// reproduced the recorded bug fingerprint.
func ReplayArtifact(factory targets.Factory, b *artifact.Bundle, maxEntries int) (*ReplayResult, error) {
	threads := b.Bug.Threads
	if threads <= 0 {
		threads = 4
	}
	seed := workload.Decode(b.Seed, threads)
	if seed.Empty() {
		return nil, fmt.Errorf("replay: bundle seed contains no operations")
	}
	if maxEntries <= 0 {
		maxEntries = 8
	}
	x := NewExecutor(factory, ExecOptions{
		UseCheckpoints: true,
		CollectStats:   true,
		HangTimeout:    150 * time.Millisecond,
	})

	r := &ReplayResult{Fingerprint: b.Bug.Fingerprint}
	seen := make(map[string]struct{})
	check := func(res *ExecResult) bool {
		hit := false
		record := func(fp string) {
			if _, ok := seen[fp]; !ok {
				seen[fp] = struct{}{}
				r.Found = append(r.Found, fp)
			}
			if fp == r.Fingerprint {
				hit = true
			}
		}
		for _, c := range res.Inconsistencies {
			record(artifact.FingerprintInconsistency(c.In))
		}
		for _, c := range res.Syncs {
			record(artifact.FingerprintSync(c.Si))
		}
		return hit
	}

	res, err := x.Run(seed, sched.None{})
	if err != nil {
		return nil, err
	}
	r.Execs++
	if check(res) {
		r.Reproduced = true
		r.Strategy = "plain"
		return r, nil
	}

	// PM-aware tier: drain the queue the plain run's statistics build,
	// moving the bundle's recorded sync point to the front.
	queue := sched.BuildQueue(res.Stats)
	var entries []*sched.Entry
	for {
		e := queue.Pop()
		if e == nil {
			break
		}
		if b.Schedule.Addr != 0 && uint64(e.Addr) == b.Schedule.Addr {
			entries = append([]*sched.Entry{e}, entries...)
		} else {
			entries = append(entries, e)
		}
	}
	if len(entries) > maxEntries {
		entries = entries[:maxEntries]
	}
	for _, e := range entries {
		skip := 0
		if uint64(e.Addr) == b.Schedule.Addr {
			skip = b.Schedule.Skip
		}
		// Interleavings are timing-sensitive; give each sync point two
		// attempts like the campaign's execution tier.
		for attempt := int64(0); attempt < 2; attempt++ {
			cfg := sched.DefaultConfig()
			cfg.Seed = attempt + 1
			pm := sched.NewPMAware(cfg, e, skip)
			res, err := x.Run(seed, pm)
			if err != nil {
				return nil, err
			}
			r.Execs++
			if check(res) {
				r.Reproduced = true
				r.Strategy = fmt.Sprintf("pmaware@%#x", uint64(e.Addr))
				return r, nil
			}
		}
	}
	return r, nil
}
