package fuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/taint"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// lockyTarget leaves a flushed-but-unfenced lock word behind every mutation:
// its recovery spin-locks that word, so it hangs exactly when a crash state
// contains the unfenced acquisition — the scenario single-adversarial-image
// validation cannot see (the lock store never reaches the persisted image or
// the side-effect range), and bounded crash-state enumeration can.
type lockyTarget struct{}

func (s *lockyTarget) Name() string             { return "locky" }
func (s *lockyTarget) PoolSize() uint64         { return 4096 }
func (s *lockyTarget) Annotations() int         { return 0 }
func (s *lockyTarget) Setup(t *rt.Thread) error { return nil }

func (s *lockyTarget) Exec(t *rt.Thread, op workload.Op) error {
	t.Branch()
	if op.Kind.Mutates() {
		// Acquire-style store, flushed but never fenced: a staged
		// pending line at detection time.
		t.Store64(192, 1, taint.None, taint.None)
		t.Flush(192, 8)
		// Dirty shared word another thread cross-reads.
		t.Store64(64, targets.Fingerprint(op.Key), taint.None, taint.None)
	} else {
		v, lab := t.Load64(64)
		t.NTStore64(512, v, lab, taint.None)
	}
	return nil
}

func (s *lockyTarget) Recover(t *rt.Thread) error {
	t.SpinLock(192) // hangs iff the crash preserved the unfenced acquisition
	t.SpinUnlock(192)
	t.NTStore64(512, 0, taint.None, taint.None) // fix the durable side effect
	return nil
}

func lockyFactory() targets.Factory {
	return func() targets.Target { return &lockyTarget{} }
}

// lockySeed makes one thread mutate and then read back: the dirty read plus
// the NT store is an intra-thread inconsistency, detected deterministically
// regardless of how the runtime schedules driver threads.
func lockySeed() *workload.Seed {
	return &workload.Seed{Threads: 1, Ops: []workload.Op{
		{Kind: workload.OpSet, Key: "a", Value: "1"},
		{Kind: workload.OpGet, Key: "a"},
	}}
}

// driveUntilFinding executes the seed until the detector produces at least
// one judged inconsistency.
func driveUntilFinding(t *testing.T, f *Fuzzer) {
	t.Helper()
	seed := lockySeed()
	for i := 0; i < 20; i++ {
		if _, err := f.runOne(seed, sched.None{}, 0); err != nil {
			t.Fatalf("runOne: %v", err)
		}
		if len(f.db.Inconsistencies()) > 0 {
			return
		}
	}
	t.Fatalf("no inconsistency detected in 20 executions")
}

// TestMultiCrashStateFindsBugSingleImageMisses is the acceptance scenario:
// the same target validates clean under the paper's single adversarial image
// (recovery overwrites the side effect and the lock word is absent from the
// persisted image) but is a confirmed bug under crash-state enumeration (the
// pending-line state preserves the unfenced lock acquisition and recovery
// hangs on it) — with the difference recorded in the artifact bundle's
// per-state verdict table.
func TestMultiCrashStateFindsBugSingleImageMisses(t *testing.T) {
	single := NewWithFactory(lockyFactory(), Options{
		Threads: 2, Workers: 1, Mode: ModeNone,
		MaxExecs: 1000, Duration: time.Minute,
		HangTimeout: 25 * time.Millisecond,
	})
	single.start = time.Now()
	driveUntilFinding(t, single)
	for _, j := range single.db.Inconsistencies() {
		if j.Status == core.StatusBug {
			t.Fatalf("single-image validation found a bug; the lock hang must be invisible to it: %+v", j)
		}
	}

	dir := t.TempDir()
	multi := NewWithFactory(lockyFactory(), Options{
		Threads: 2, Workers: 1, Mode: ModeNone,
		MaxExecs: 1000, Duration: time.Minute,
		HangTimeout:    25 * time.Millisecond,
		MaxCrashStates: 8,
	})
	w, err := artifact.NewWriter(dir)
	if err != nil {
		t.Fatalf("artifact writer: %v", err)
	}
	multi.artifacts = w
	multi.start = time.Now()
	driveUntilFinding(t, multi)

	var bugs int
	for _, j := range multi.db.Inconsistencies() {
		if j.Status == core.StatusBug {
			bugs++
		}
	}
	if bugs == 0 {
		t.Fatalf("multi-crash-state validation must confirm the lock bug")
	}

	// The written bundle must carry the per-state verdict table showing the
	// verdict difference: adversarial state passed, pending-line state hung.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no artifact bundles written (err=%v)", err)
	}
	found := false
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name(), artifact.BugFile))
		if err != nil {
			continue
		}
		var rep artifact.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("decoding %s: %v", e.Name(), err)
		}
		var passed, hung bool
		for _, sv := range rep.States {
			if sv.Status == core.StatusValidatedFP.String() {
				passed = true
			}
			if sv.Status == core.StatusBug.String() && sv.RecoveryHung {
				hung = true
			}
		}
		if passed && hung {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bundle records both a passing and a hung crash state")
	}
}

// TestValidationImageOwnershipRace exercises the crash-image hand-off under
// load: concurrent fuzzing workers produce duplicate findings whose states
// are recycled at merge time while the asynchronous validation pool and the
// artifact writer still hold the first instance's states. Run under -race,
// it fails if a recycled buffer is handed out while validation or pmdiff
// serialization still aliases it.
func TestValidationImageOwnershipRace(t *testing.T) {
	dir := t.TempDir()
	f := NewWithFactory(lockyFactory(), Options{
		Threads: 2, Workers: 4, Mode: ModeNone,
		MaxExecs: 60, Duration: 20 * time.Second,
		HangTimeout:       15 * time.Millisecond,
		MaxCrashStates:    4,
		ValidationWorkers: 2,
		ArtifactDir:       dir,
		ArtifactAll:       true,
	})
	res, err := f.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Execs == 0 {
		t.Fatalf("campaign ran no executions")
	}
}
