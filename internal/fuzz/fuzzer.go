package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/validate"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// ExploreMode selects the interleaving exploration strategy.
type ExploreMode int

const (
	// ModePMAware is PMRace's exploration: priority-queue sync points
	// with cond_wait/cond_signal injection (paper §4.2.2).
	ModePMAware ExploreMode = iota
	// ModeDelayInj is the random delay-injection baseline (§6.1).
	ModeDelayInj
	// ModeNone runs under the Go scheduler alone.
	ModeNone
)

func (m ExploreMode) String() string {
	switch m {
	case ModePMAware:
		return "PMRace"
	case ModeDelayInj:
		return "DelayInj"
	default:
		return "None"
	}
}

// Options configure a fuzzing run. Zero values select the evaluation's
// defaults (§6.1: 4 driver threads; simulation-scaled timings).
type Options struct {
	Threads    int
	KeySpace   int
	OpsPerSeed int
	// Workers is the number of concurrent fuzzing worker goroutines
	// (paper §5 "Concurrent Fuzzing"; the evaluation uses 13 worker
	// processes).
	Workers int
	Mode    ExploreMode
	// MaxExecs bounds the total number of executions; Duration bounds
	// wall-clock time. Whichever is hit first stops the run.
	MaxExecs int
	Duration time.Duration
	// Seed seeds all randomness for reproducibility.
	Seed int64
	// DisableInterleavingTier ablates interleaving-tier exploration
	// ("w/o IE", Figure 9).
	DisableInterleavingTier bool
	// DisableSeedTier ablates seed-tier exploration ("w/o SE", Figure 9).
	DisableSeedTier bool
	// NoCheckpoints disables the in-memory pool checkpoints (Figure 10).
	NoCheckpoints bool
	// ExecsPerInterleaving is the execution-tier repetition count.
	ExecsPerInterleaving int
	// MaxInterleavingsPerSeed bounds interleaving-tier entries per seed.
	MaxInterleavingsPerSeed int
	// ExtraWhitelist adds target-specific whitelist entries on top of the
	// default (mini-PMDK transactional allocation).
	ExtraWhitelist []string
	// Mutator overrides the default operation mutator (the Table 4
	// baseline passes a ByteMutator).
	Mutator Mutator
	// Protocol switches the campaign to protocol-traffic mode: seeds are
	// recorded memcached text-protocol byte streams played through the
	// internal/wire front-end (one stream per connection), generated and
	// mutated by the protocol generator/mutator, with mid-request crash
	// points validated against the target's recovery code.
	Protocol bool
	// HangTimeout bounds lock acquisition per thread.
	HangTimeout time.Duration
	// RedundantThreshold is the dynamic-occurrence count above which a
	// redundant-store site is reported as an "Other" finding (incidental
	// same-value rewrites stay below it; P-CLHT's unnecessary migration
	// writes fire hundreds of times).
	RedundantThreshold int
	// EADR fuzzes against a platform with battery-backed caches (paper
	// §6.6): no store is ever non-persisted, so PM Inter-thread
	// Inconsistency cannot occur; PM Synchronization Inconsistency (and
	// its post-recovery hangs) remains.
	EADR bool
	// CorpusDir, when set, seeds the initial corpus from *.seed files in
	// the directory and persists coverage-improving seeds back into it
	// (the AFL++ queue-directory workflow the paper's artifact uses).
	CorpusDir string
	// ArtifactDir, when set, writes a forensic bundle (bug.json, seed,
	// schedule, PM trace and dirty-word diff) for every confirmed bug into
	// a numbered subdirectory; `pmrace -artifact <dir>` replays bundles.
	ArtifactDir string
	// ArtifactAll extends artifact writing to every deduplicated
	// inconsistency, including validated and whitelisted false positives.
	ArtifactAll bool
	// MaxCrashStates caps the crash states enumerated and validated per
	// finding (WITCHER-style bounded enumeration). Values <= 1 reproduce
	// the paper's single-adversarial-image validation.
	MaxCrashStates int
	// ValidationWallTimeout bounds each recovery run's wall-clock time in
	// post-failure validation; zero selects validate.DefaultWallTimeout.
	ValidationWallTimeout time.Duration
	// ValidationWorkers sizes the asynchronous post-failure validation
	// pool; findings queue to it instead of stalling the fuzzing executor
	// during recovery runs. Zero selects 2.
	ValidationWorkers int
	// InlineValidation validates findings synchronously on the fuzzing
	// worker that discovered them (the pre-pool behavior). It keeps the
	// event stream deterministic for a single-worker campaign, at the cost
	// of stalling that worker during recovery runs.
	InlineValidation bool
	// AliasHints seeds the interleaving queue with statically inferred
	// load/store alias pairs from `pmvet -alias`; entries covering a hint
	// are explored before any purely dynamically prioritized entry.
	AliasHints []AliasHint
	// Sched tunes the PM-aware scheduling algorithm.
	Sched sched.Config
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.KeySpace <= 0 {
		o.KeySpace = 16
	}
	if o.OpsPerSeed <= 0 {
		o.OpsPerSeed = 48
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxExecs <= 0 {
		o.MaxExecs = 200
	}
	if o.Duration <= 0 {
		o.Duration = 30 * time.Second
	}
	if o.ExecsPerInterleaving <= 0 {
		o.ExecsPerInterleaving = 2
	}
	if o.MaxInterleavingsPerSeed <= 0 {
		o.MaxInterleavingsPerSeed = 6
	}
	if o.HangTimeout <= 0 {
		o.HangTimeout = 80 * time.Millisecond
	}
	if o.RedundantThreshold <= 0 {
		o.RedundantThreshold = 100
	}
	if o.MaxCrashStates <= 0 {
		o.MaxCrashStates = 1
	}
	if o.ValidationWallTimeout <= 0 {
		o.ValidationWallTimeout = validate.DefaultWallTimeout
	}
	if o.ValidationWorkers <= 0 {
		o.ValidationWorkers = 2
	}
	if o.Sched.Poll <= 0 {
		o.Sched = sched.DefaultConfig()
	}
	return o
}

// CoverPoint is one sample of the runtime-coverage timeline (Figure 9).
type CoverPoint struct {
	T      time.Duration
	Branch int
	Alias  int
}

// Result aggregates a fuzzing run for the evaluation harness.
type Result struct {
	Target    string
	Mode      ExploreMode
	Execs     int
	Seeds     int
	Elapsed   time.Duration
	DB        *core.DB
	Counts    core.Counts
	Bugs      []core.UniqueBug
	BranchCov int
	AliasCov  int
	// FirstInterTimes holds, for every execution that detected at least
	// one PM Inter-thread Inconsistency, the elapsed time at which it
	// finished (the points of Figure 8).
	FirstInterTimes []time.Duration
	// Timeline samples global coverage after every execution (Figure 9).
	Timeline []CoverPoint
	// ExecsPerSec is the average execution throughput (Figure 10).
	ExecsPerSec float64
	// HangSites lists distinct lock sites that hung pre-failure.
	HangSites []string
	// RedundantSites lists store sites flagged as redundant writes.
	RedundantSites []string
	// Interleavings counts interleaving-tier entries actually scheduled;
	// PrunedInterleavings counts entries dropped by schedule-equivalence
	// pruning.
	Interleavings       int
	PrunedInterleavings int
}

// Fuzzer is PMRace's top-level fuzzing engine for one target.
type Fuzzer struct {
	factory    targets.Factory
	targetName string
	opts       Options
	exec       *Executor
	whitelist  *core.Whitelist
	artifacts  *artifact.Writer

	// ctx stops workers between executions when cancelled; set by
	// RunContext for the run's duration.
	ctx context.Context

	// valCh feeds the asynchronous post-failure validation pool; nil when
	// InlineValidation is set. Jobs own their crash states: the validating
	// worker recycles them only after the verdict is judged and any
	// artifact bundle is written.
	valCh  chan *valJob
	valWG  sync.WaitGroup
	valErr error // first validation-worker error; guarded by mu

	// em is the observability hub; every campaign has one (sink-less by
	// default). The handles below are its cached registry metrics.
	em       *obs.Emitter
	mExecs   *obs.Counter
	mSeeds   *obs.Counter
	mInterl  *obs.Counter
	mPruned  *obs.Counter
	mIncons  *obs.Counter
	gBranch  *obs.Gauge
	gAlias   *obs.Gauge
	hExecLat *obs.Histogram

	// tr records lifecycle spans for sampled executions; nil (inert) unless
	// SetTracer attached one.
	tr *obs.Tracer

	// equiv is the campaign-global schedule-equivalence table; queued
	// interleavings whose class already ran without a novel outcome are
	// dropped instead of executed.
	equiv *sched.EquivClasses

	mu         sync.Mutex
	corpus     []*workload.Seed
	nextSeed   int
	cov        *cover.Coverage
	db         *core.DB
	skips      map[pmem.Addr]int // sync-point skip counts (Pitfall-3 bookkeeping)
	stats      map[pmem.Addr]*sched.AddrStats
	execs      int
	seedCount  int
	candSeen   map[[2]uint32]struct{}
	candInter  int
	candIntra  int
	firstInt   []time.Duration
	timeline   []CoverPoint
	hangSites  map[string]struct{}
	hangExecs  map[string]int // executions that hung at a site
	savedSeeds int
	corpusErr  error
	redSites   map[string]struct{}
	mutator    Mutator
	start      time.Time
}

// New creates a fuzzer for a registered target name.
func New(targetName string, opts Options) (*Fuzzer, error) {
	if _, err := targets.New(targetName); err != nil {
		return nil, err
	}
	factory := func() targets.Target {
		t, err := targets.New(targetName)
		if err != nil {
			panic(err) // cannot happen: validated above
		}
		return t
	}
	return NewWithFactory(factory, opts), nil
}

// NewWithFactory creates a fuzzer from an explicit target factory.
func NewWithFactory(factory targets.Factory, opts Options) *Fuzzer {
	opts = opts.withDefaults()
	wl := core.NewWhitelist(pmdk.DefaultWhitelist()...)
	wl.Add(opts.ExtraWhitelist...)
	mut := opts.Mutator
	if mut == nil {
		if opts.Protocol {
			mut = NewProtoMutator(opts.Seed, opts.KeySpace, opts.Threads)
		} else {
			mut = NewOpMutator(opts.KeySpace, opts.Threads, opts.OpsPerSeed)
		}
	}
	f := &Fuzzer{
		factory:    factory,
		targetName: factory().Name(),
		opts:       opts,
		exec: NewExecutor(factory, ExecOptions{
			HangTimeout:    opts.HangTimeout,
			UseCheckpoints: !opts.NoCheckpoints,
			CollectStats:   true,
			EADR:           opts.EADR,
			MaxCrashStates: opts.MaxCrashStates,
		}),
		whitelist: wl,
		cov:       cover.New(),
		db:        core.NewDB(),
		skips:     make(map[pmem.Addr]int),
		stats:     make(map[pmem.Addr]*sched.AddrStats),
		hangSites: make(map[string]struct{}),
		hangExecs: make(map[string]int),
		redSites:  make(map[string]struct{}),
		candSeen:  make(map[[2]uint32]struct{}),
		mutator:   mut,
		equiv:     sched.NewEquivClasses(),
	}
	// Known-fingerprint predicates let the executor skip forensic capture
	// (crash states, PM diff, trace) for findings the dedup DB already
	// holds — the merge would discard that work unread.
	f.exec.opts.KnownInconsistency = f.db.HasInconsistency
	f.exec.opts.KnownSync = f.db.HasSync
	f.SetEmitter(obs.NewEmitter())
	return f
}

// SetEmitter replaces the campaign's observability emitter and rewires the
// producer layers (executor, detection DB, metric handles) to it. Call
// before Run; the campaign session API uses this to attach the caller's
// sinks and event channel.
func (f *Fuzzer) SetEmitter(em *obs.Emitter) {
	f.em = em
	f.exec.SetEmitter(em)
	f.db.SetEmitter(em)
	reg := em.Registry()
	f.mExecs = reg.Counter(obs.MExecs)
	f.mSeeds = reg.Counter(obs.MSeedsAccepted)
	f.mInterl = reg.Counter(obs.MInterleavings)
	f.mPruned = reg.Counter(obs.MInterleavingsPruned)
	f.mIncons = reg.Counter(obs.MInconsistencies)
	f.gBranch = reg.Gauge(obs.MBranchCov)
	f.gAlias = reg.Gauge(obs.MAliasCov)
	f.hExecLat = reg.Histogram(obs.HExecLatency)
}

// Emitter returns the campaign's observability emitter.
func (f *Fuzzer) Emitter() *obs.Emitter { return f.em }

// SetTracer attaches a span tracer to the campaign and its executor. Call
// before Run; without one, tracing stays inert (nil-tracer no-ops).
func (f *Fuzzer) SetTracer(tr *obs.Tracer) {
	f.tr = tr
	f.exec.SetTracer(tr)
}

// Tracer returns the campaign's span tracer, nil when tracing is disabled.
func (f *Fuzzer) Tracer() *obs.Tracer { return f.tr }

// Run executes the fuzzing loop until the execution or time budget is
// exhausted and returns the aggregated result.
func (f *Fuzzer) Run() (*Result, error) { return f.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: when ctx is cancelled,
// every worker stops at its next inter-execution check (within one
// execution) and the partial Result accumulated so far is returned without
// error — cancellation is a normal way to end a campaign, like exhausting
// the budget.
func (f *Fuzzer) RunContext(ctx context.Context) (*Result, error) {
	// Snapshot may run concurrently from the first instant, so even the
	// setup writes take the fuzzer lock.
	f.mu.Lock()
	f.ctx = ctx
	f.start = time.Now()
	f.mu.Unlock()
	csp := f.tr.Start(obs.LaneSupervisor, obs.SpanCampaign)
	csp.SetAttr("target", f.targetName)
	csp.SetAttr("mode", f.opts.Mode.String())
	defer csp.End()
	f.em.Emit(&obs.PhaseChange{Phase: "fuzzing", Prev: "init"})
	if f.opts.ArtifactDir != "" && f.artifacts == nil {
		w, err := artifact.NewWriter(f.opts.ArtifactDir)
		if err != nil {
			return nil, err
		}
		f.artifacts = w
	}
	if f.opts.ArtifactAll && f.artifacts == nil {
		return nil, fmt.Errorf("fuzz: ArtifactAll requires an artifact directory (set ArtifactDir)")
	}
	// The initial corpus combines a random mixed-operation seed, a
	// populate-heavy seed (the load phase with many insertions triggers
	// the resizing mechanisms of PM key-value stores and indexes) and a
	// hot-key read-modify-write seed (similar keys maximize shared PM
	// accesses and arm the read-after-write sync points) — §4.5. Protocol
	// mode seeds the analogous byte-stream shapes: a zipfian traffic mix, a
	// connection-churn seed, and a hot-key pipelined-burst seed.
	var initial []*workload.Seed
	if f.opts.Protocol {
		pg := workload.NewProtoGen(f.opts.Seed, f.opts.KeySpace, f.opts.Threads)
		cmds := max(f.opts.OpsPerSeed/2, 8)
		initial = []*workload.Seed{
			pg.MixSeed(f.opts.Threads*2, cmds),
			pg.ChurnSeed(f.opts.Threads * 4),
			pg.HotSeed(f.opts.Threads*2, cmds),
		}
	} else {
		gen := workload.NewGenerator(f.opts.Seed, f.opts.KeySpace, f.opts.Threads)
		initial = []*workload.Seed{
			gen.NewSeed(f.opts.OpsPerSeed),
			gen.PopulationSeed(f.opts.OpsPerSeed * 2),
			gen.HotKeySeed(f.opts.OpsPerSeed),
		}
	}
	f.mu.Lock()
	f.corpus = initial
	f.mu.Unlock()
	for _, s := range initial {
		f.mSeeds.Inc()
		f.em.Emit(&obs.SeedAccepted{Origin: "initial", Ops: s.Size(), CorpusSize: len(initial)})
	}
	corpusLen := len(initial)
	if f.opts.CorpusDir != "" {
		loaded, err := LoadCorpus(f.opts.CorpusDir, f.opts.Threads)
		if err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.corpus = append(f.corpus, loaded...)
		corpusLen = len(f.corpus)
		f.mu.Unlock()
		for _, s := range loaded {
			f.mSeeds.Inc()
			f.em.Emit(&obs.SeedAccepted{Origin: "corpus-dir", Ops: s.Size(), CorpusSize: corpusLen})
		}
	}
	f.mu.Lock()
	f.seedCount = corpusLen
	f.mu.Unlock()

	// Post-failure validation pool: findings queue here so recovery runs
	// (each bounded by ValidationWallTimeout, and potentially multiplied by
	// MaxCrashStates) never stall the fuzzing executors. A worker that hits
	// a persistent error (artifact I/O) records it and keeps draining so
	// enqueuers never block on a dead pool.
	if !f.opts.InlineValidation {
		f.valCh = make(chan *valJob, f.opts.ValidationWorkers*4)
		for i := 0; i < f.opts.ValidationWorkers; i++ {
			f.valWG.Add(1)
			go func(i int) {
				defer f.valWG.Done()
				for job := range f.valCh {
					if err := f.validateJob(job, obs.LaneValidatorBase+i); err != nil {
						f.mu.Lock()
						if f.valErr == nil {
							f.valErr = err
						}
						f.mu.Unlock()
					}
				}
			}(i)
		}
	}

	// Each worker owns a private seeded RNG: nothing on the hot path ever
	// touches the locked global math/rand source, and a campaign at a given
	// (seed, worker count) draws the same per-worker random streams even
	// though cross-worker interleaving stays nondeterministic.
	var wg sync.WaitGroup
	errCh := make(chan error, f.opts.Workers)
	for w := 0; w < f.opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(f.opts.Seed + int64(w)*7919))
			for !f.done() {
				if err := f.seedCampaign(rng, w); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain the validation pool before reading results: queued findings
	// must be judged (and their artifacts written) before the campaign's
	// bug tally is final.
	if f.valCh != nil {
		close(f.valCh)
		f.valWG.Wait()
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	f.mu.Lock()
	valErr := f.valErr
	f.mu.Unlock()
	if valErr != nil {
		return nil, valErr
	}
	res := f.result()
	f.em.Emit(&obs.PhaseChange{Phase: "done", Prev: "fuzzing"})
	f.em.Emit(&obs.CampaignDone{Stats: f.Snapshot()})
	return res, nil
}

func (f *Fuzzer) done() bool {
	if f.ctx != nil && f.ctx.Err() != nil {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs >= f.opts.MaxExecs || time.Since(f.start) >= f.opts.Duration
}

// seedCampaign runs one seed-tier iteration: pick or evolve a seed, run the
// execution tier, then walk the priority queue for interleaving-tier
// exploration (paper §4.2.3).
func (f *Fuzzer) seedCampaign(rng *rand.Rand, worker int) error {
	ssp := f.tr.Start(f.traceLane(worker), obs.SpanSeedPick)
	seed := f.pickSeed(rng)
	ssp.SetAttr("ops", strconv.Itoa(seed.Size()))
	ssp.End()

	// Execution tier: base executions collecting coverage and the shared
	// PM access statistics that feed the priority queue.
	improved := false
	for i := 0; i < f.opts.ExecsPerInterleaving && !f.done(); i++ {
		out, err := f.runOne(seed, f.baseStrategy(rng), worker)
		if err != nil {
			return err
		}
		improved = improved || out.improved
	}

	// Interleaving tier: drive executions towards reading non-persisted
	// data at hot shared addresses. Pruned entries do not count against
	// the per-seed budget — the loop keeps popping so the budget is spent
	// on interleavings that actually run.
	if f.opts.Mode == ModePMAware && !f.opts.DisableInterleavingTier {
		queue := f.buildQueue()
		scheduled := 0
		for scheduled < f.opts.MaxInterleavingsPerSeed && !f.done() {
			// The interleaving span covers the decision — queue pop,
			// equivalence-pruning check, schedule choice — not the
			// executions it leads to, which record their own spans.
			isp := f.tr.Start(f.traceLane(worker), obs.SpanInterleaving)
			entry := queue.Pop()
			if entry == nil {
				isp.End()
				break
			}
			skip := f.skipFor(entry.Addr)
			key := sched.EntrySignature(entry, skip)
			isp.SetAttr("entry", entry.Describe())
			isp.SetAttr("skip", strconv.Itoa(skip))
			if f.equiv.ShouldPrune(key) {
				isp.SetAttr("pruned", "true")
				isp.End()
				f.mPruned.Inc()
				continue
			}
			isp.End()
			scheduled++
			f.mInterl.Inc()
			f.em.Emit(&obs.InterleavingScheduled{
				Worker:   worker,
				Addr:     uint64(entry.Addr),
				Priority: entry.Priority,
				Skip:     skip,
			})
			productive, ran := false, 0
			for e := 0; e < f.opts.ExecsPerInterleaving && !f.done(); e++ {
				cfg := f.opts.Sched
				cfg.Seed = rng.Int63()
				pm := sched.NewPMAware(cfg, entry, f.skipFor(entry.Addr))
				out, err := f.runOne(seed, pm, worker)
				if err != nil {
					return err
				}
				ran++
				improved = improved || out.improved
				// A round earns another visit only when it moved
				// the campaign: an unseen outcome signature that
				// also grew global coverage, or a finding the
				// dedup DB had not recorded. Signature novelty
				// alone is not enough — racy allocation order
				// makes chaotic classes produce a fresh dirty
				// set every run, and treating that as progress
				// disables pruning exactly where the schedules
				// are the most expensive (blocked cond_wait
				// windows).
				novel := f.equiv.OutcomeNovel(out.sig)
				if (novel && out.improved) || out.found {
					productive = true
				}
				if o := pm.Outcome(); o.Disabled {
					// Pitfall-3: save an increased skip so
					// future campaigns on this seed bypass
					// the blocking cond_wait executions.
					f.addSkip(entry.Addr, o.CondWaits)
				}
			}
			// A round cut short by the budget before any execution
			// must not mark its class stale.
			if ran > 0 {
				f.equiv.Record(key, productive)
			}
		}
	}

	if improved {
		f.saveCorpusSeed(seed)
		f.mSeeds.Inc()
		f.mu.Lock()
		corpusLen := len(f.corpus)
		f.mu.Unlock()
		f.em.Emit(&obs.SeedAccepted{Origin: "improving", Ops: seed.Size(), CorpusSize: corpusLen})
	}

	// Seed tier: evolve the corpus when this seed stopped helping.
	f.mu.Lock()
	defer f.mu.Unlock()
	if om, ok := f.mutator.(*OpMutator); ok {
		if improved {
			om.MarkProgress()
		} else {
			om.MarkStale()
		}
	}
	if !f.opts.DisableSeedTier {
		next := f.mutator.Mutate(rng, f.corpus)
		f.corpus = append(f.corpus, next)
		f.seedCount++
		if len(f.corpus) > 32 { // bounded corpus, oldest evicted
			f.corpus = f.corpus[1:]
		}
	}
	return nil
}

func (f *Fuzzer) baseStrategy(rng *rand.Rand) sched.Strategy {
	if f.opts.Mode == ModeDelayInj {
		return sched.NewDelayInjector(0, rng.Int63())
	}
	return sched.None{}
}

func (f *Fuzzer) pickSeed(rng *rand.Rand) *workload.Seed {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.DisableSeedTier {
		return f.corpus[0]
	}
	s := f.corpus[f.nextSeed%len(f.corpus)]
	f.nextSeed++
	return s
}

func (f *Fuzzer) buildQueue() *sched.Queue {
	f.mu.Lock()
	defer f.mu.Unlock()
	q := sched.BuildQueue(f.stats)
	f.applyAliasHints(q)
	return q
}

func (f *Fuzzer) skipFor(addr pmem.Addr) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.skips[addr]
}

func (f *Fuzzer) addSkip(addr pmem.Addr, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 1 {
		n = 1
	}
	f.skips[addr] += n
}

// runOutcome summarizes one execution for the tiers: whether coverage
// improved, the outcome signature for equivalence pruning, and whether the
// execution detected at least one inconsistency.
type runOutcome struct {
	improved bool
	sig      sched.OutcomeSig
	found    bool
}

// traceLane returns the span lane for one of worker's executions when the
// tracer samples it, -1 (inert) otherwise.
func (f *Fuzzer) traceLane(worker int) int {
	if f.tr.Sample() {
		return obs.LaneWorkerBase + worker
	}
	return -1
}

// runOne executes the seed once, validates new findings post-failure, and
// merges everything into the global state.
func (f *Fuzzer) runOne(seed *workload.Seed, strat sched.Strategy, worker int) (runOutcome, error) {
	res, err := f.exec.RunTraced(seed, strat, f.traceLane(worker))
	if err != nil {
		return runOutcome{}, err
	}

	// Post-failure stage: merge findings under the lock, then hand each
	// *new* finding — together with ownership of its crash states — to the
	// validation pool (or validate inline). Duplicate findings never
	// consult their states, so those go straight back to the buffer pool;
	// a job's states are recycled by whoever validates it, only after the
	// verdict is judged and any artifact bundle is written.
	var jobs []*valJob
	var recycle [][]pmem.CrashState
	f.mu.Lock()
	// newFindings counts findings unseen by the dedup DB. It — not raw
	// detections — feeds the equivalence table's bug latch: the seeded
	// targets re-detect their known bugs on nearly every execution, and
	// pinning a class for duplicates would disable pruning entirely. A
	// class becomes prunable only after its bug is already in the DB.
	for _, cap := range res.Inconsistencies {
		j, isNew := f.db.MergeInconsistency(cap.In)
		if isNew {
			// Snapshot the finding before leaving the lock: the DB
			// keeps cap.In as the canonical record and bumps its
			// dedup count on later duplicates, concurrently with
			// the validation worker reading it.
			in := *cap.In
			jobs = append(jobs, &valJob{in: &in, j: j, states: cap.States, trace: cap.Trace, dirty: cap.Dirty})
		} else {
			recycle = append(recycle, cap.States)
		}
	}
	for _, cap := range res.Syncs {
		j, isNew := f.db.MergeSync(cap.Si)
		if isNew {
			si := *cap.Si
			jobs = append(jobs, &valJob{si: &si, js: j, states: cap.States, trace: cap.Trace, dirty: cap.Dirty})
		} else {
			recycle = append(recycle, cap.States)
		}
	}
	newFindings := len(jobs)
	f.mu.Unlock()
	for _, states := range recycle {
		pmem.RecycleStates(states)
	}
	if len(jobs) > 0 {
		enc := seed.Encode()
		sd := describeStrategy(strat)
		for _, job := range jobs {
			job.seed = enc
			job.sd = sd
			if f.valCh != nil {
				f.valCh <- job
			} else if err := f.validateJob(job, obs.LaneValidatorBase+worker); err != nil {
				return runOutcome{}, err
			}
		}
	}

	f.mu.Lock()
	hungThisExec := map[string]bool{}
	for _, h := range res.Hangs {
		f.hangSites[h.Site] = struct{}{}
		hungThisExec[h.Site] = true
	}
	for s := range hungThisExec {
		f.hangExecs[s]++
		// Reported as a finding only when the hang recurs: a leaked lock
		// (a missing-unlock bug) hangs execution after execution, while
		// a one-off stall is scheduler starvation on loaded machines.
		// One unique finding per run: hangs at many acquire sites share
		// one root cause; individual sites are kept in HangSites.
		if f.hangExecs[s] >= 3 {
			f.db.AddOther(core.OtherFinding{
				Kind:        "hang",
				Site:        site.Named("pre-failure hang"),
				Description: fmt.Sprintf("threads repeatedly hung acquiring locks (e.g. at %s)", s),
			})
		}
	}
	for _, msg := range res.CrashFailures {
		// A mid-request crash image whose recovery replay failed is a
		// durability bug in its own right, independent of any detected
		// race (the request was parsed but its commit tore).
		f.db.AddOther(core.OtherFinding{
			Kind:        "crash-recovery",
			Site:        site.Named("protocol crash point"),
			Description: msg,
		})
	}
	for _, r := range res.Redundant {
		if r.Count >= f.opts.RedundantThreshold {
			loc := site.Lookup(r.Site).String()
			f.redSites[loc] = struct{}{}
			f.db.AddOther(core.OtherFinding{
				Kind:        "redundant-write",
				Site:        r.Site,
				Description: fmt.Sprintf("redundant PM writes at %s (%d occurrences)", loc, r.Count),
			})
		}
	}
	for _, c := range res.Candidates {
		key := [2]uint32{c.Event.WriteSite, c.Event.ReadSite}
		if _, seen := f.candSeen[key]; seen {
			continue
		}
		f.candSeen[key] = struct{}{}
		if c.Inter() {
			f.candInter++
		} else {
			f.candIntra++
		}
	}
	for addr, st := range res.Stats {
		agg, ok := f.stats[addr]
		if !ok {
			agg = sched.NewAddrStats()
			f.stats[addr] = agg
		}
		agg.Merge(st)
	}
	newBits := f.cov.Merge(res.Coverage)
	f.execs++
	execNo := f.execs
	if res.InterInconsistencies() > 0 {
		f.firstInt = append(f.firstInt, time.Since(f.start))
	}
	br, al := f.cov.Counts()
	f.timeline = append(f.timeline, CoverPoint{T: time.Since(f.start), Branch: br, Alias: al})
	f.mu.Unlock()

	f.mExecs.Inc()
	f.mIncons.Add(int64(len(res.Inconsistencies) + len(res.Syncs)))
	f.gBranch.Set(int64(br))
	f.gAlias.Set(int64(al))
	f.em.Emit(&obs.ExecDone{
		Exec:            execNo,
		Worker:          worker,
		NewBits:         newBits,
		BranchCov:       br,
		AliasCov:        al,
		Candidates:      len(res.Candidates),
		Inconsistencies: len(res.Inconsistencies),
		Syncs:           len(res.Syncs),
		Duration:        res.Duration,
	})
	// Anomaly triggers: a hang-watchdog trip or an execution beyond the
	// campaign's p99.9 latency dumps the flight recorder (rate-limited, and
	// only once the histogram has enough mass to make p99.9 meaningful).
	if f.tr.Enabled() {
		if len(res.Hangs) > 0 {
			f.tr.DumpAnomaly("exec_hang")
		}
		if f.hExecLat.Count() >= 256 {
			if p := f.hExecLat.Quantile(0.999); p > 0 && res.Duration > p {
				f.tr.DumpAnomaly("exec_latency_p999")
			}
		}
	}
	return runOutcome{
		improved: newBits > 0,
		sig:      res.Signature,
		found:    newFindings > 0,
	}, nil
}

// valJob is one finding queued for post-failure validation. Exactly one of
// (in, j) or (si, js) is set. The job owns states: validateJob recycles them.
type valJob struct {
	in *core.Inconsistency
	j  *core.JudgedInconsistency
	si *core.SyncInconsistency
	js *core.JudgedSync

	states []pmem.CrashState
	trace  []rt.Access
	dirty  []pmem.DirtyWord
	seed   string
	sd     artifact.Schedule
}

// validateJob runs post-failure validation for one finding, records the
// verdict in the result database, writes the forensic artifact bundle when
// warranted, and finally recycles the job's crash states — the ownership
// hand-off that keeps images out of the buffer pool while validation or
// artifact serialization still aliases them. lane is the validator's span
// lane (validation spans are always-on when tracing is enabled: findings
// are rare).
func (f *Fuzzer) validateJob(job *valJob, lane int) error {
	defer pmem.RecycleStates(job.states)
	vopts := validate.Options{
		HangTimeout: f.opts.HangTimeout,
		WallTimeout: f.opts.ValidationWallTimeout,
		Whitelist:   f.whitelist,
		Obs:         f.em,
		Trace:       f.tr,
		TraceLane:   lane,
	}
	var r validate.Result
	if job.in != nil {
		r = validate.Inconsistency(f.factory, job.states, job.in, vopts)
		f.db.Judge(job.j, r.Status)
	} else {
		r = validate.Sync(f.factory, job.states, job.si, vopts)
		f.db.JudgeSync(job.js, r.Status)
	}
	// Forensic artifact bundles: every confirmed bug (every judged finding
	// with ArtifactAll) becomes a self-contained replayable directory.
	if f.artifacts == nil || (r.Status != core.StatusBug && !f.opts.ArtifactAll) {
		return nil
	}
	var bug artifact.Report
	if job.in != nil {
		bug = artifact.FromInconsistency(f.targetName, f.opts.Threads, job.in, r.Status, artifactValidation(r))
	} else {
		bug = artifact.FromSync(f.targetName, f.opts.Threads, job.si, r.Status, artifactValidation(r))
	}
	// The bundle carries the flight recorder's last-N spans at write time:
	// the wall-clock timeline leading up to the confirmed bug.
	dir, err := f.artifacts.Write(&artifact.Bundle{
		Bug:      bug,
		Seed:     job.seed,
		Schedule: job.sd,
		Trace:    artifact.ConvertTrace(job.trace),
		PMDiff:   artifact.ConvertDirty(job.dirty),
		Spans:    f.tr.Spans(),
	})
	if err == nil && dir != "" {
		// Exemplar: link the latency distributions to the concrete bundle
		// that exhibited this validation.
		label := filepath.Base(dir)
		f.em.Registry().Histogram(obs.HValidationLatency).SetExemplar(label, r.Latency)
		if f.tr.Enabled() {
			f.em.Registry().Histogram(obs.SpanHistName(obs.SpanValidate)).SetExemplar(label, r.Latency)
		}
	}
	return err
}

// artifactValidation converts a validation result, including the per-state
// verdict table, into its artifact JSON form.
func artifactValidation(r validate.Result) artifact.Validation {
	v := artifact.Validation{Latency: r.Latency, RecoveryHung: r.RecoveryHung}
	for _, s := range r.States {
		sv := artifact.StateVerdict{
			State:        s.State,
			Status:       s.Status.String(),
			RecoveryHung: s.RecoveryHung,
			WallTimeout:  s.WallTimeout,
			LatencyMs:    float64(s.Latency.Microseconds()) / 1e3,
		}
		if s.RecoveryErr != nil {
			sv.RecoveryErr = s.RecoveryErr.Error()
		}
		v.States = append(v.States, sv)
	}
	return v
}

func (f *Fuzzer) result() *Result {
	f.mu.Lock()
	defer f.mu.Unlock()
	br, al := f.cov.Counts()
	elapsed := time.Since(f.start)
	r := &Result{
		Target:          f.targetName,
		Mode:            f.opts.Mode,
		Execs:           f.execs,
		Seeds:           f.seedCount,
		Elapsed:         elapsed,
		DB:              f.db,
		Counts:          f.db.Tally(),
		Bugs:            f.db.UniqueBugs(),
		BranchCov:       br,
		AliasCov:        al,
		FirstInterTimes: append([]time.Duration(nil), f.firstInt...),
		Timeline:        append([]CoverPoint(nil), f.timeline...),
	}
	if elapsed > 0 {
		r.ExecsPerSec = float64(f.execs) / elapsed.Seconds()
	}
	for s := range f.hangSites {
		r.HangSites = append(r.HangSites, s)
	}
	for s := range f.redSites {
		r.RedundantSites = append(r.RedundantSites, s)
	}
	// Candidates are deduplicated across executions in runOne; the DB only
	// holds confirmed inconsistencies.
	r.Counts.InterCandidates = f.candInter
	r.Counts.IntraCandidates = f.candIntra
	r.Interleavings, r.PrunedInterleavings = f.equiv.Counts()
	return r
}

// Snapshot returns a live point-in-time statistics view of the campaign.
// It is safe to call concurrently with Run; after Run returns, the numbers
// equal the final Result's aggregates (and the terminal CampaignDone event
// carries exactly this snapshot).
func (f *Fuzzer) Snapshot() obs.Stats {
	f.mu.Lock()
	br, al := f.cov.Counts()
	var elapsed time.Duration
	if !f.start.IsZero() {
		elapsed = time.Since(f.start)
	}
	execs := f.execs
	seeds := f.seedCount
	f.mu.Unlock()

	st := obs.Stats{
		Target:              f.targetName,
		Mode:                f.opts.Mode.String(),
		Execs:               execs,
		Seeds:               seeds,
		BranchCov:           br,
		AliasCov:            al,
		Inconsistencies:     len(f.db.Inconsistencies()) + len(f.db.Syncs()),
		Bugs:                len(f.db.UniqueBugs()),
		Elapsed:             elapsed,
		Interleavings:       f.em.Registry().Counter(obs.MInterleavings).Value(),
		InterleavingsPruned: f.em.Registry().Counter(obs.MInterleavingsPruned).Value(),
		CheckpointRestores:  f.em.Registry().Counter(obs.MCheckpointRestores).Value(),
		Validations:         f.em.Registry().Counter(obs.MValidations).Value(),
		EventsDropped:       f.em.Dropped(),
	}
	if elapsed > 0 {
		st.ExecsPerSec = float64(execs) / elapsed.Seconds()
	}
	return st
}
