package fuzz

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/targets"
	"github.com/pmrace-go/pmrace/internal/workload"
)

// CapturedInconsistency pairs a detected inconsistency with the crash states
// enumerated at the crash point. States[0] is always the §4.4 adversarial
// image (durable side effect force-persisted, dependent dirty data lost);
// with multi-state validation enabled the list also carries the persisted
// baseline and per-pending-line states (pmem.CrashStates).
type CapturedInconsistency struct {
	In     *core.Inconsistency
	States []pmem.CrashState
	// Trace is the structured tail of the PM access trace at detection and
	// Dirty the pool's dirty-word diff — the forensic state artifact
	// bundles persist (in.Trace holds the human-formatted lines).
	Trace []rt.Access
	Dirty []pmem.DirtyWord
}

// CapturedSync is the synchronization-variable analogue.
type CapturedSync struct {
	Si     *core.SyncInconsistency
	States []pmem.CrashState
	Trace  []rt.Access
	Dirty  []pmem.DirtyWord
}

// ExecResult is everything one execution of a seed produced.
type ExecResult struct {
	Candidates      []*core.Candidate
	Inconsistencies []CapturedInconsistency
	Syncs           []CapturedSync
	Redundant       []*core.RedundantStore
	Hangs           []rt.HangReport
	Coverage        *cover.Coverage
	Stats           map[pmem.Addr]*sched.AddrStats
	Outcome         *sched.Outcome // set when the PM-aware strategy ran
	// Signature is the execution's outcome fingerprint (alias-coverage
	// hash, dirty-word set hash); the fuzzer's interleaving-equivalence
	// pruning keys on it.
	Signature     sched.OutcomeSig
	Duration      time.Duration
	SetupDuration time.Duration
	ExecErrors    int
	// CrashImages are PM snapshots taken at a protocol seed's mid-request
	// crash points (between parse and PM commit); CrashFailures reports
	// those whose recovery replay hung, errored or timed out.
	CrashImages   [][]byte
	CrashFailures []string
}

// InterInconsistencies counts detected cross-thread inconsistencies.
func (r *ExecResult) InterInconsistencies() int {
	n := 0
	for _, c := range r.Inconsistencies {
		if c.In.Kind == core.KindInter {
			n++
		}
	}
	return n
}

// maxDirtyWords bounds the PM-state diff captured per detection; a resize in
// flight can leave thousands of dirty words, and the first few hundred are
// evidence enough.
const maxDirtyWords = 256

// ExecOptions configure the campaign executor.
type ExecOptions struct {
	// HangTimeout bounds lock acquisition during the workload.
	HangTimeout time.Duration
	// UseCheckpoints enables the in-memory pool checkpoint: the pool is
	// initialized once, snapshotted, and every execution starts from a
	// restored copy plus the target's (cheap) recovery, replacing the
	// expensive Setup — the fork-server substitute of paper §5.
	UseCheckpoints bool
	// CollectStats enables per-address access statistics (off for pure
	// input-generation runs, which the paper decouples from interleaving
	// exploration for speed).
	CollectStats bool
	// EADR models battery-backed caches (paper §6.6): stores are durable
	// at visibility, so inter-thread inconsistencies cannot occur while
	// synchronization inconsistencies still can.
	EADR bool
	// MaxCrashStates caps the crash states enumerated per finding; values
	// <= 1 reproduce the paper's single adversarial image.
	MaxCrashStates int
	// KnownInconsistency and KnownSync, when set, report whether a finding
	// fingerprint is already in the campaign's dedup database. Run then
	// skips the forensic capture — crash-state enumeration, PM diff and
	// trace snapshot — for duplicates, which the merge would recycle
	// unread. The predicates may only ever turn false→true (the database
	// grows monotonically), so a stale answer costs one redundant capture,
	// never a lost one.
	KnownInconsistency func([3]uint32) bool
	KnownSync          func(*core.SyncInconsistency) bool
}

// Executor runs fuzz campaign executions against one target.
type Executor struct {
	factory targets.Factory
	opts    ExecOptions

	// Cached metric handles; nil (no-op) until SetEmitter.
	mRestores *obs.Counter
	hExec     *obs.Histogram

	// tr records execution spans for sampled runs; nil (no-op) until
	// SetTracer.
	tr *obs.Tracer

	snapMu sync.Mutex
	snap   *pmem.Snapshot

	// pools recycles checkpoint pools across executions: a recycled pool
	// is already based on the shared snapshot, so restoring it copies only
	// the lines the previous execution dirtied instead of the whole image
	// (and skips the allocation entirely).
	pools sync.Pool
}

// NewExecutor creates an executor for the target factory.
func NewExecutor(factory targets.Factory, opts ExecOptions) *Executor {
	if opts.HangTimeout <= 0 {
		opts.HangTimeout = 80 * time.Millisecond
	}
	if opts.MaxCrashStates <= 0 {
		opts.MaxCrashStates = 1
	}
	return &Executor{factory: factory, opts: opts}
}

// SetEmitter wires the executor's metrics (checkpoint restores, execution
// latency) into the campaign registry. Call before Run.
func (x *Executor) SetEmitter(em *obs.Emitter) {
	x.mRestores = em.Registry().Counter(obs.MCheckpointRestores)
	x.hExec = em.Registry().Histogram(obs.HExecLatency)
}

// SetTracer wires span recording for sampled executions. Call before Run.
func (x *Executor) SetTracer(tr *obs.Tracer) { x.tr = tr }

// newPool creates a pool honouring the executor's platform options.
func (x *Executor) newPool(size uint64) *pmem.Pool {
	return pmem.NewWithOptions(size, pmem.Options{EADR: x.opts.EADR})
}

// checkpoint builds the shared pool snapshot on first use: a fresh pool with
// the target's Setup applied.
func (x *Executor) checkpoint() (*pmem.Snapshot, error) {
	x.snapMu.Lock()
	defer x.snapMu.Unlock()
	if x.snap != nil {
		return x.snap, nil
	}
	tgt := x.factory()
	env := rt.NewEnv(x.newPool(tgt.PoolSize()), rt.Config{})
	th := env.Spawn()
	if err := tgt.Setup(th); err != nil {
		return nil, err
	}
	th.Exit()
	x.snap = env.Pool().Snapshot()
	return x.snap, nil
}

// Run executes the seed once under the given interleaving strategy and
// returns everything the PM checkers and coverage maps observed. Each
// execution begins from an empty, freshly initialized pool (or its
// checkpoint) to avoid the side effects of previous pools (paper §4.5).
func (x *Executor) Run(seed *workload.Seed, strat sched.Strategy) (*ExecResult, error) {
	return x.RunTraced(seed, strat, -1)
}

// RunTraced is Run with span recording: lane >= 0 marks a sampled execution
// and records an exec_run span (with conflict_analysis and crash_state_enum
// children) on that lane; lane -1 records nothing. The per-access hooks are
// never on the span path — only the execution's boundary work is timed.
func (x *Executor) RunTraced(seed *workload.Seed, strat sched.Strategy, lane int) (*ExecResult, error) {
	start := time.Now()
	res := &ExecResult{}
	var mu sync.Mutex // guards res' capture slices across worker threads

	sp := x.tr.Start(lane, obs.SpanExecRun)
	execID := int64(0)
	if sp.Active() {
		execID = x.tr.NextExec()
		sp.SetExec(execID)
	}
	// Crash-state enumeration runs inside detection hooks on driver-thread
	// goroutines, concurrent with the worker's own spans — each capture
	// gets a detail lane of its own so lanes keep nesting properly.
	var subLane atomic.Int32
	crashSpan := func() obs.SpanCtx {
		if !sp.Active() {
			return obs.SpanCtx{}
		}
		l := obs.LaneExecDetailBase + lane*16 + int(subLane.Add(1)%14)
		csp := x.tr.Start(l, obs.SpanCrashStateEnum)
		csp.SetExec(execID)
		return csp
	}

	var pool *pmem.Pool
	fromCheckpoint := false
	tgt := x.factory()
	if x.opts.UseCheckpoints {
		snap, err := x.checkpoint()
		if err != nil {
			return nil, err
		}
		if v := x.pools.Get(); v != nil {
			pool = v.(*pmem.Pool)
			pool.Restore(snap) // dirty-line restore
			x.mRestores.Inc()
		} else {
			pool = pmem.NewFromSnapshot(snap)
		}
		fromCheckpoint = true
	} else {
		pool = x.newPool(tgt.PoolSize())
	}

	// Per-address statistics only feed interleaving-queue construction,
	// which happens before the PM-aware tier runs — an interleaved
	// execution re-collecting them would merge thousands of map entries
	// per run that nothing reads (the paper decouples input generation
	// from interleaving exploration for exactly this reason).
	collectStats := x.opts.CollectStats
	if _, ok := strat.(*sched.PMAware); ok {
		collectStats = false
	}

	env := rt.NewEnv(pool, rt.Config{
		Strategy:     strat,
		HangTimeout:  x.opts.HangTimeout,
		CollectStats: collectStats,
		TraceDepth:   64,
		OnInconsistency: func(e *rt.Env, in *core.Inconsistency) {
			if x.opts.KnownInconsistency != nil && x.opts.KnownInconsistency(in.Key()) {
				// Duplicate fingerprint: the merge only counts it, so
				// skip the crash-state enumeration and trace snapshot.
				mu.Lock()
				res.Inconsistencies = append(res.Inconsistencies, CapturedInconsistency{In: in})
				mu.Unlock()
				return
			}
			accs := e.RecentAccesses()
			in.Trace = rt.FormatTrace(accs, 12)
			in.Input = seed.Encode()
			csp := crashSpan()
			states := e.Pool().CrashStates([]pmem.Range{in.SideEffect}, x.opts.MaxCrashStates)
			csp.SetAttr("states", strconv.Itoa(len(states)))
			csp.End()
			dirty := e.Pool().DirtyWords(maxDirtyWords)
			mu.Lock()
			res.Inconsistencies = append(res.Inconsistencies, CapturedInconsistency{In: in, States: states, Trace: accs, Dirty: dirty})
			mu.Unlock()
		},
		OnSync: func(e *rt.Env, si *core.SyncInconsistency) {
			if x.opts.KnownSync != nil && x.opts.KnownSync(si) {
				mu.Lock()
				res.Syncs = append(res.Syncs, CapturedSync{Si: si})
				mu.Unlock()
				return
			}
			si.Input = seed.Encode()
			csp := crashSpan()
			states := e.Pool().CrashStates([]pmem.Range{{Off: si.Addr, Len: 8}}, x.opts.MaxCrashStates)
			csp.SetAttr("states", strconv.Itoa(len(states)))
			csp.End()
			accs := e.RecentAccesses()
			dirty := e.Pool().DirtyWords(maxDirtyWords)
			mu.Lock()
			res.Syncs = append(res.Syncs, CapturedSync{Si: si, States: states, Trace: accs, Dirty: dirty})
			mu.Unlock()
		},
		OnHang: func(_ *rt.Env, h rt.HangReport) {
			mu.Lock()
			res.Hangs = append(res.Hangs, h)
			mu.Unlock()
		},
	})

	// Setup phase (the cost the checkpoint amortizes).
	setupStart := time.Now()
	init := env.Spawn()
	var err error
	if fromCheckpoint {
		err = tgt.Recover(init)
	} else {
		err = tgt.Setup(init)
	}
	init.Exit()
	if err != nil {
		return nil, err
	}
	res.SetupDuration = time.Since(setupStart)

	// Workload phase: one goroutine per driver thread. A start barrier
	// makes the threads actually overlap: without it, goroutine startup
	// latency exceeds a short workload's runtime and the execution
	// degenerates to sequential order with no cross-thread windows.
	gate := make(chan struct{})
	var ready sync.WaitGroup
	var wg sync.WaitGroup
	if seed.Proto != nil && len(seed.Proto.Streams) > 0 {
		// Protocol mode: each driver thread is a server worker playing
		// recorded connection byte streams through the wire parser.
		nthreads := protoThreadCount(seed)
		env.BeginExec(nthreads)
		for ti := 0; ti < nthreads; ti++ {
			wg.Add(1)
			ready.Add(1)
			go func(ti int) {
				defer wg.Done()
				th := env.Spawn()
				defer th.Exit()
				ready.Done()
				<-gate
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(rt.HangError); !ok {
							panic(r)
						}
					}
				}()
				x.protoWorker(th, tgt, seed, ti, nthreads, res, &mu)
			}(ti)
		}
	} else {
		parts := seed.Split()
		env.BeginExec(len(parts))
		for _, ops := range parts {
			wg.Add(1)
			ready.Add(1)
			go func(ops []workload.Op) {
				defer wg.Done()
				th := env.Spawn()
				defer th.Exit()
				ready.Done()
				<-gate
				defer func() {
					// A hung thread abandons its remaining
					// operations; the hang was already reported
					// through OnHang.
					if r := recover(); r != nil {
						if _, ok := r.(rt.HangError); !ok {
							panic(r)
						}
					}
				}()
				for _, op := range ops {
					if execErr := tgt.Exec(th, op); execErr != nil {
						mu.Lock()
						res.ExecErrors++
						mu.Unlock()
					}
				}
			}(ops)
		}
	}
	ready.Wait()
	close(gate)
	wg.Wait()
	asp := sp.Child(obs.SpanConflictAnalysis)
	env.EndExec()
	if asp.Active() {
		batches, records := env.Batch().Counts()
		asp.SetAttr("batches", strconv.FormatInt(batches, 10))
		asp.SetAttr("records", strconv.FormatInt(records, 10))
	}
	asp.End()

	// Replay each mid-request crash image through the target's recovery
	// code: a server that cannot recover from a crash between parse and
	// commit has a durability bug regardless of any detected race.
	for _, img := range res.CrashImages {
		if msg := x.checkCrashRecovery(img); msg != "" {
			res.CrashFailures = append(res.CrashFailures, msg)
		}
	}

	res.Candidates = env.Detector().Candidates()
	res.Redundant = env.Detector().RedundantStores()
	res.Coverage = env.Coverage()
	if collectStats {
		res.Stats = env.Stats()
	}
	if pm, ok := strat.(*sched.PMAware); ok {
		o := pm.Outcome()
		res.Outcome = &o
	}
	// The outcome signature must be taken before the pool is recycled:
	// the next execution's restore wipes the dirty-word state.
	res.Signature = sched.OutcomeSig{
		Alias: env.Coverage().Alias.Hash(),
		Dirty: pool.DirtySetHash(),
	}
	if fromCheckpoint {
		// Hand the pool back for the next execution; nothing retains it
		// (crash images are independent copies).
		x.pools.Put(pool)
	}
	res.Duration = time.Since(start)
	x.hExec.Observe(res.Duration)
	if sp.Active() {
		sp.SetAttr("setup_us", strconv.FormatInt(res.SetupDuration.Microseconds(), 10))
		if fromCheckpoint {
			sp.SetAttr("checkpoint", "true")
		}
	}
	sp.End()
	return res, nil
}
