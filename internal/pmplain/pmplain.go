// Package pmplain is the uninstrumented persistent-memory dialect consumed
// by the pminstr generator (internal/instr, cmd/pminstr). A plain package
// writes its PM accesses against pmplain.Mem — whose method names mirror the
// rt.Thread hook vocabulary exactly, minus every taint label and multi-value
// label result — and pminstr rewrites each access into the corresponding
// instrumented hook call, threading labels through automatically.
//
// The dialect is directly runnable: Mem forwards to the raw pmem.Pool, so a
// plain package can be unit-tested standalone before it is ever
// instrumented. What a plain package can NOT do is participate in a fuzzing
// campaign — only the generated shadow package (with real rt.Thread hooks)
// registers as a target.
//
// Method-name parity with rt.Thread is deliberate and load-bearing: the
// generator classifies accesses through internal/lint's exported hook table
// (lint.ThreadHookKind), the same table pmvet's analyzers check, so the
// generator and the linter can never disagree about what counts as a PM
// operation.
package pmplain

import (
	"runtime"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmem"
)

// Hint is one recorded SyncVarHint annotation: the plain-dialect spelling of
// the paper's pm_sync_var_hint. In the plain dialect the hint is volatile
// bookkeeping only (tests can inspect it); pminstr rewrites the call into
// the runtime's AnnotateSyncVar.
type Hint struct {
	Name    string
	Addr    pmem.Addr
	Size    uint64
	InitVal uint64
}

// Mem is a plain, hook-free view of a persistent pool. One Mem per logical
// thread, like one rt.Thread per thread in instrumented code.
type Mem struct {
	pool *pmem.Pool
	tid  pmem.ThreadID

	mu    sync.Mutex
	hints []Hint
}

// NewMem wraps pool for thread tid.
func NewMem(pool *pmem.Pool, tid pmem.ThreadID) *Mem {
	return &Mem{pool: pool, tid: tid}
}

// Pool exposes the underlying pool (plain-dialect analogue of
// rt.Thread.Env().Pool()).
func (m *Mem) Pool() *pmem.Pool { return m.pool }

// Hints returns the SyncVarHint annotations recorded so far.
func (m *Mem) Hints() []Hint {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Hint(nil), m.hints...)
}

// Load64 reads one word.
func (m *Mem) Load64(addr pmem.Addr) uint64 { return m.pool.Load64(addr) }

// LoadBytes reads n bytes.
func (m *Mem) LoadBytes(addr pmem.Addr, n uint64) []byte { return m.pool.LoadBytes(addr, n) }

// Store64 writes one word through the cache (needs Flush+Fence to persist).
func (m *Mem) Store64(addr pmem.Addr, val uint64) { m.pool.Store64(m.tid, 0, addr, val) }

// StoreBytes writes bytes through the cache.
func (m *Mem) StoreBytes(addr pmem.Addr, data []byte) { m.pool.StoreBytes(m.tid, 0, addr, data) }

// NTStore64 writes one word non-temporally (needs a trailing Fence).
func (m *Mem) NTStore64(addr pmem.Addr, val uint64) { m.pool.NTStore64(m.tid, 0, addr, val) }

// NTStoreBytes writes bytes non-temporally.
func (m *Mem) NTStoreBytes(addr pmem.Addr, data []byte) { m.pool.NTStoreBytes(m.tid, 0, addr, data) }

// CAS64 atomically compares-and-swaps one word, returning whether it swapped
// and the value observed.
func (m *Mem) CAS64(addr pmem.Addr, old, new uint64) (bool, uint64) {
	return m.pool.CAS64(m.tid, 0, addr, old, new)
}

// Flush writes the cache lines covering [addr, addr+n) back (asynchronously;
// a Fence orders them).
func (m *Mem) Flush(addr pmem.Addr, n uint64) { m.pool.Flush(m.tid, addr, n) }

// Fence drains pending flushes and non-temporal stores.
func (m *Mem) Fence() { m.pool.Fence(m.tid) }

// Persist is Flush+Fence fused.
func (m *Mem) Persist(addr pmem.Addr, n uint64) { m.pool.PersistNow(m.tid, addr, n) }

// SpinLock acquires the in-PM test-and-set lock at addr.
func (m *Mem) SpinLock(addr pmem.Addr) {
	for {
		if ok, _ := m.CAS64(addr, 0, 1); ok {
			return
		}
		runtime.Gosched()
	}
}

// SpinUnlock releases the in-PM lock at addr.
func (m *Mem) SpinUnlock(addr pmem.Addr) { m.Store64(addr, 0) }

// Branch marks a control-flow decision point (a scheduling hint in
// instrumented code; a no-op here).
func (m *Mem) Branch() {}

// SyncVarHint declares a persistent synchronization variable (lock word,
// status flag) for the detector's sync-inconsistency analysis. pminstr
// rewrites the call into t.Env().AnnotateSyncVar(core.SyncVar{...}).
func (m *Mem) SyncVarHint(name string, addr pmem.Addr, size, initVal uint64) {
	m.mu.Lock()
	m.hints = append(m.hints, Hint{Name: name, Addr: addr, Size: size, InitVal: initVal})
	m.mu.Unlock()
}
