package pmplain

import (
	"fmt"
	"sync"

	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
)

// ObjPool is the plain-dialect mirror of pmdk.ObjPool: pool formatting, a
// root object and a bump allocator over the same on-media layout, written
// without instrumentation hooks. pminstr maps the pmplain pool API onto the
// instrumented pmdk one (pmplain.Create → pmdk.Create and so on), so a pool
// formatted by plain code opens cleanly under the instrumented runtime and
// vice versa. The layout constants are asserted against pmdk by
// TestObjPoolLayoutMatchesPMDK.
type ObjPool struct {
	allocMu sync.Mutex
	size    uint64
}

// Header offsets, mirroring pmdk's pool layout.
const (
	offMagic   = 0
	offRoot    = 8
	offHeapTop = 16
)

// Create formats the pool behind m: zero every line, then write the header.
func Create(m *Mem) *ObjPool {
	p := &ObjPool{size: m.Pool().Size()}
	zero := make([]byte, pmem.LineSize)
	for off := uint64(0); off < p.size; off += pmem.LineSize {
		m.NTStoreBytes(off, zero)
	}
	m.NTStore64(offHeapTop, pmdk.HeapBase)
	m.NTStore64(offRoot, 0)
	m.NTStore64(offMagic, pmdk.Magic)
	m.Fence()
	return p
}

// Open maps an existing formatted pool. The plain dialect has no
// transactions, so unlike pmdk.Open there is no undo-log recovery to run.
func Open(m *Mem) (*ObjPool, error) {
	if magic := m.Load64(offMagic); magic != pmdk.Magic {
		return nil, fmt.Errorf("%w: magic %#x", pmdk.ErrNotFormatted, magic)
	}
	return &ObjPool{size: m.Pool().Size()}, nil
}

// Root returns the root object offset (0 when unset).
func (p *ObjPool) Root(m *Mem) pmem.Addr { return m.Load64(offRoot) }

// SetRoot durably points the pool's root object at off.
func (p *ObjPool) SetRoot(m *Mem, off pmem.Addr) {
	m.Store64(offRoot, off)
	m.Persist(offRoot, 8)
}

// Alloc carves size bytes (rounded up to a cache line) off the persistent
// heap and durably advances the bump pointer before returning.
func (p *ObjPool) Alloc(m *Mem, size uint64) (pmem.Addr, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if rem := size % pmem.LineSize; rem != 0 {
		size += pmem.LineSize - rem
	}
	top := m.Load64(offHeapTop)
	if top+size > p.size {
		return 0, pmdk.ErrOutOfMemory
	}
	m.Store64(offHeapTop, top+size)
	m.Persist(offHeapTop, 8)
	return top, nil
}

// HeapUsed returns the number of allocated heap bytes.
func (p *ObjPool) HeapUsed(m *Mem) uint64 {
	return m.Load64(offHeapTop) - pmdk.HeapBase
}
