package pmplain

import (
	"testing"
	"time"

	"github.com/pmrace-go/pmrace/internal/pmdk"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
)

// TestMemRoundTrip exercises the plain access surface end to end.
func TestMemRoundTrip(t *testing.T) {
	m := NewMem(pmem.New(4096), 0)
	m.Store64(64, 0xdead)
	m.Persist(64, 8)
	if got := m.Load64(64); got != 0xdead {
		t.Fatalf("Load64 = %#x", got)
	}
	m.NTStore64(128, 0xbeef)
	m.Fence()
	m.StoreBytes(192, []byte("hello"))
	m.Flush(192, 8)
	m.Fence()
	if got := string(m.LoadBytes(192, 5)); got != "hello" {
		t.Fatalf("LoadBytes = %q", got)
	}
	if ok, cur := m.CAS64(128, 0xbeef, 1); !ok || cur != 0xbeef {
		t.Fatalf("CAS64 = %v, %#x", ok, cur)
	}
	m.SpinLock(256)
	if got := m.Load64(256); got != 1 {
		t.Fatalf("lock word = %d after SpinLock", got)
	}
	m.SpinUnlock(256)
	if got := m.Load64(256); got != 0 {
		t.Fatalf("lock word = %d after SpinUnlock", got)
	}
	m.Branch()
	m.SyncVarHint("lock", 256, 8, 0)
	if h := m.Hints(); len(h) != 1 || h[0].Name != "lock" || h[0].Addr != 256 {
		t.Fatalf("hints = %+v", h)
	}
}

// TestObjPoolLayoutMatchesPMDK pins the cross-dialect pool-layout contract:
// a pool formatted by the plain dialect must open under the instrumented
// pmdk runtime (and expose the same root), because pminstr maps
// pmplain.Create/Open onto pmdk.Create/Open in generated code.
func TestObjPoolLayoutMatchesPMDK(t *testing.T) {
	pool := pmem.New(64 << 10)
	m := NewMem(pool, 0)
	p := Create(m)
	root, err := p.Alloc(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	m.Store64(root, 42)
	m.Persist(root, 8)
	p.SetRoot(m, root)
	if used := p.HeapUsed(m); used != 128 {
		t.Fatalf("HeapUsed = %d, want 128", used)
	}

	// Re-open the same media with the instrumented mini-PMDK.
	env := rt.NewEnv(pool, rt.Config{HangTimeout: 100 * time.Millisecond})
	th := env.Spawn()
	ip, err := pmdk.Open(th)
	if err != nil {
		t.Fatalf("pmdk.Open on pmplain-formatted pool: %v", err)
	}
	iroot, _ := ip.Root(th)
	if iroot != root {
		t.Fatalf("pmdk root = %#x, pmplain root = %#x", iroot, root)
	}
	if v, _ := th.Load64(iroot); v != 42 {
		t.Fatalf("root word = %d, want 42", v)
	}

	// And the reverse direction: pmdk-formatted opens under pmplain.
	pool2 := pmem.New(64 << 10)
	env2 := rt.NewEnv(pool2, rt.Config{HangTimeout: 100 * time.Millisecond})
	th2 := env2.Spawn()
	p2 := pmdk.Create(th2)
	r2, err := p2.Alloc(th2, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2.SetRoot(th2, r2)
	m2 := NewMem(pool2, 0)
	pp2, err := Open(m2)
	if err != nil {
		t.Fatalf("pmplain.Open on pmdk-formatted pool: %v", err)
	}
	if got := pp2.Root(m2); got != r2 {
		t.Fatalf("pmplain root = %#x, pmdk root = %#x", got, r2)
	}
}
