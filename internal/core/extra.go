package core

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
)

// This file implements the two additional checkers the paper sketches as
// examples of the framework's extensibility (§4.3): a checker for
// unnecessary persistency operations (flushing data that is already clean)
// and a checker for PM writes that are still unflushed when the execution
// ends (missing-flush candidates — the pattern PMDebugger reported Bugs
// 11-14 of memcached-pmem as, before PMRace showed their concurrent
// consequences).

// RedundantFlush records a flush site observed flushing only clean data.
type RedundantFlush struct {
	Site  site.ID
	Addr  pmem.Addr
	Count int
}

// OnFlush feeds the unnecessary-persistency checker: the runtime reports
// whether any word covered by the flush was dirty. A flush whose words were
// all clean is recorded as redundant (a performance bug: wasted CLWB).
func (d *Detector) OnFlush(s site.ID, addr pmem.Addr, anyDirty bool) {
	if anyDirty {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.redFlush[uint32(s)]; ok {
		r.Count++
		return
	}
	if d.redFlush == nil {
		d.redFlush = make(map[uint32]*RedundantFlush)
	}
	d.redFlush[uint32(s)] = &RedundantFlush{Site: s, Addr: addr, Count: 1}
	d.redFlushOrd = append(d.redFlushOrd, uint32(s))
}

// RedundantFlushes returns the recorded redundant-flush sites in detection
// order.
func (d *Detector) RedundantFlushes() []*RedundantFlush {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*RedundantFlush, 0, len(d.redFlushOrd))
	for _, k := range d.redFlushOrd {
		out = append(out, d.redFlush[k])
	}
	return out
}

// UnflushedWrite summarizes PM writes from one store site that were still
// non-persisted when the execution finished: missing-flush candidates.
type UnflushedWrite struct {
	Site   site.ID
	Writer pmem.ThreadID
	// Words is how many words from this site remained dirty.
	Words int
	// FirstAddr is the lowest dirty address, for the report.
	FirstAddr pmem.Addr
}

// UnflushedScanner walks a pool's persistency state at the end of an
// execution and groups still-dirty words by their writing store site. It is
// a sequential crash-consistency checker living on PMRace's framework: data
// that no code path ever flushes would be lost by a crash at any time.
func UnflushedScanner(pool *pmem.Pool) []*UnflushedWrite {
	bySite := map[uint32]*UnflushedWrite{}
	var order []uint32
	for addr := pmem.Addr(0); addr < pool.Size(); addr += pmem.WordSize {
		m := pool.WordState(addr)
		if !m.Dirty {
			continue
		}
		u, ok := bySite[m.Site]
		if !ok {
			u = &UnflushedWrite{Site: site.ID(m.Site), Writer: m.Writer, FirstAddr: addr}
			bySite[m.Site] = u
			order = append(order, m.Site)
		}
		u.Words++
	}
	out := make([]*UnflushedWrite, 0, len(order))
	for _, s := range order {
		out = append(out, bySite[s])
	}
	return out
}
