// Package core implements PMRace's PM inconsistency checkers (paper §4.3)
// and the bug bookkeeping around them. The detector consumes instrumented PM
// accesses delivered by the runtime (internal/rt) and identifies:
//
//   - PM Inter-/Intra-thread Inconsistency Candidates: a thread reads data
//     that is visible in the cache but not persisted (Definition 1);
//   - PM Inter-/Intra-thread Inconsistencies: a durable side effect — a PM
//     store whose value or target address derives, via taint analysis, from
//     still-non-persisted data (Definition 2);
//   - PM Synchronization Inconsistencies: updates of annotated persistent
//     synchronization variables such as bucket or segment locks
//     (Definition 3).
//
// Detected inconsistencies are deduplicated into unique bugs the way the
// paper counts them (§6.2): inconsistencies are grouped by the store
// instruction that wrote the non-persisted data, and synchronization
// inconsistencies by the annotated variable.
package core
