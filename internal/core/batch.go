package core

import (
	"sync"
	"sync/atomic"

	"github.com/pmrace-go/pmrace/internal/cover"
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/sched"
	"github.com/pmrace-go/pmrace/internal/site"
)

// LogRecord is one entry of a thread's epoch-append access log. Hooks append
// a record per PM access without taking any analysis lock; the deferred
// analyses (alias-pair coverage, per-address statistics, redundant-store
// bookkeeping) run over whole batches when the log drains at a sync point.
// Everything a deferred analysis needs is captured at access time — in
// particular Prev, the accessor displaced by the access — so drain timing
// changes when results are published, never what they are.
type LogRecord struct {
	// Addr is the accessed PM offset.
	Addr pmem.Addr
	// Prev is the word's previous accessor, swapped out by this access.
	Prev pmem.Accessor
	// Site is the instruction site of this access.
	Site site.ID
	// Kind is a bitmask of the Kind* flags below.
	Kind uint8
}

// Kind flags of a LogRecord.
const (
	// KindStore marks the access as a store (CAS counts as a store).
	KindStore uint8 = 1 << iota
	// KindDirty records the persistency state the access observed/left,
	// the P component of the paper's (I, P, T) alias triple.
	KindDirty
	// KindRedundant marks a store that overwrote an identical non-zero
	// value (the unnecessary-write checker's trigger).
	KindRedundant
)

// BatchAnalyzer runs the deferred per-access analyses over drained log
// batches. One analyzer is shared by all threads of an execution environment;
// a drain costs one mutex acquisition per batch (statistics only) instead of
// one per access, and the alias bitmap is lock-free as before.
type BatchAnalyzer struct {
	det   *Detector
	alias *cover.Bitmap

	batches atomic.Int64
	records atomic.Int64

	collectStats bool
	statsMu      sync.Mutex
	stats        map[pmem.Addr]*sched.AddrStats
	clocks       map[pmem.ThreadID]uint32
}

// NewBatchAnalyzer creates an analyzer feeding the given detector and alias
// coverage bitmap. collectStats enables per-address access statistics.
func NewBatchAnalyzer(det *Detector, alias *cover.Bitmap, collectStats bool) *BatchAnalyzer {
	return &BatchAnalyzer{
		det:          det,
		alias:        alias,
		collectStats: collectStats,
		stats:        make(map[pmem.Addr]*sched.AddrStats),
		clocks:       make(map[pmem.ThreadID]uint32),
	}
}

// Process analyzes one drained batch from thread tid. clock is the thread's
// epoch counter at the drain (FastTrack-style: it advances once per drain, so
// all records of a batch share the epoch). Records are processed in program
// order.
func (b *BatchAnalyzer) Process(tid pmem.ThreadID, clock uint32, recs []LogRecord) {
	b.batches.Add(1)
	b.records.Add(int64(len(recs)))
	for i := range recs {
		r := &recs[i]
		if r.Prev.Valid && r.Prev.Thread != tid {
			b.alias.Set(cover.AliasHash(r.Prev.Site, r.Prev.Dirty, uint32(r.Site), r.Kind&KindDirty != 0))
		}
		if r.Kind&KindRedundant != 0 {
			b.det.OnRedundantStore(r.Site, r.Addr)
		}
	}
	b.statsMu.Lock()
	if clock >= b.clocks[tid] {
		b.clocks[tid] = clock + 1
	}
	if b.collectStats {
		for i := range recs {
			r := &recs[i]
			st, ok := b.stats[r.Addr]
			if !ok {
				st = sched.NewAddrStats()
				b.stats[r.Addr] = st
			}
			st.Record(tid, r.Site, r.Kind&KindStore != 0)
		}
	}
	b.statsMu.Unlock()
}

// Stats returns a deep copy of the per-address statistics accumulated so far.
// Statistics become visible when a thread's log drains (sync points, full
// log, thread exit), so callers read them at quiescent points.
func (b *BatchAnalyzer) Stats() map[pmem.Addr]*sched.AddrStats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	out := make(map[pmem.Addr]*sched.AddrStats, len(b.stats))
	for a, st := range b.stats {
		c := sched.NewAddrStats()
		c.Merge(st)
		out[a] = c
	}
	return out
}

// Counts returns how many batches and log records the analyzer has
// processed, for span attribution of conflict-analysis cost.
func (b *BatchAnalyzer) Counts() (batches, records int64) {
	if b == nil {
		return 0, 0
	}
	return b.batches.Load(), b.records.Load()
}

// Clock returns the epoch the analyzer has observed from thread tid: one past
// the clock of its latest drained batch. Zero means no batch was processed.
func (b *BatchAnalyzer) Clock(tid pmem.ThreadID) uint32 {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	return b.clocks[tid]
}
