package core

import (
	"strings"
	"testing"

	"github.com/pmrace-go/pmrace/internal/site"

	"github.com/pmrace-go/pmrace/internal/taint"
)

func mkIncon(kind Kind, writeSite, storeSite uint32) *Inconsistency {
	wr, rd := int32(1), int32(2)
	if kind == KindIntra {
		rd = 1
	}
	return &Inconsistency{
		Kind:      kind,
		Event:     taint.Event{Addr: 64, Epoch: 1, WriteSite: writeSite, ReadSite: writeSite + 1, Writer: wr, Reader: rd},
		StoreSite: site.ID(storeSite),
		Count:     1,
	}
}

func TestDBMergeDeduplicates(t *testing.T) {
	db := NewDB()
	j1, new1 := db.MergeInconsistency(mkIncon(KindInter, 10, 20))
	_, new2 := db.MergeInconsistency(mkIncon(KindInter, 10, 20))
	if !new1 || new2 {
		t.Fatalf("first merge new=%v, second new=%v; want true,false", new1, new2)
	}
	if j1.Count != 2 {
		t.Fatalf("count = %d, want 2", j1.Count)
	}
	if len(db.Inconsistencies()) != 1 {
		t.Fatalf("db must hold one record")
	}
}

func TestDBMergeSyncDeduplicates(t *testing.T) {
	db := NewDB()
	si := &SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 7, Count: 1}
	_, new1 := db.MergeSync(si)
	_, new2 := db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 7, Count: 1})
	_, new3 := db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 8, Count: 1})
	if !new1 || new2 || !new3 {
		t.Fatalf("merge flags = %v %v %v", new1, new2, new3)
	}
	if len(db.Syncs()) != 2 {
		t.Fatalf("syncs = %d, want 2", len(db.Syncs()))
	}
}

func TestDBAddOtherDeduplicates(t *testing.T) {
	db := NewDB()
	if !db.AddOther(OtherFinding{Kind: "hang", Site: 3}) {
		t.Fatalf("first AddOther must be new")
	}
	if db.AddOther(OtherFinding{Kind: "hang", Site: 3}) {
		t.Fatalf("duplicate AddOther must be rejected")
	}
	if !db.AddOther(OtherFinding{Kind: "hang", Site: 4}) {
		t.Fatalf("different site must be new")
	}
	if len(db.Others()) != 2 {
		t.Fatalf("others = %d, want 2", len(db.Others()))
	}
}

func TestUniqueBugsGroupByWriteSite(t *testing.T) {
	db := NewDB()
	// Two inconsistencies with the same dirty write site but different
	// side-effect sites: one unique bug.
	db.MergeInconsistency(mkIncon(KindInter, 10, 20))
	db.MergeInconsistency(mkIncon(KindInter, 10, 21))
	// A different write site: second bug.
	db.MergeInconsistency(mkIncon(KindInter, 11, 22))
	// An intra inconsistency with the same write site is a separate bug
	// (different kind).
	db.MergeInconsistency(mkIncon(KindIntra, 10, 23))
	bugs := db.UniqueBugs()
	if len(bugs) != 3 {
		t.Fatalf("unique bugs = %d, want 3: %+v", len(bugs), bugs)
	}
}

func TestUniqueBugsExcludeFalsePositives(t *testing.T) {
	db := NewDB()
	j1, _ := db.MergeInconsistency(mkIncon(KindInter, 10, 20))
	j2, _ := db.MergeInconsistency(mkIncon(KindInter, 11, 21))
	j3, _ := db.MergeInconsistency(mkIncon(KindInter, 12, 22))
	j1.Status = StatusValidatedFP
	j2.Status = StatusWhitelistedFP
	j3.Status = StatusBug
	bugs := db.UniqueBugs()
	if len(bugs) != 1 {
		t.Fatalf("unique bugs = %d, want 1", len(bugs))
	}
}

func TestUniqueBugsIncludeSync(t *testing.T) {
	db := NewDB()
	db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 7, Count: 1})
	db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 8, Count: 1})
	db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "seg-lock"}, Site: 9, Count: 1})
	bugs := db.UniqueBugs()
	if len(bugs) != 2 {
		t.Fatalf("sync bugs must group by variable: got %d, want 2", len(bugs))
	}
}

func TestTally(t *testing.T) {
	db := NewDB()
	j1, _ := db.MergeInconsistency(mkIncon(KindInter, 10, 20))
	j1.Status = StatusValidatedFP
	j2, _ := db.MergeInconsistency(mkIncon(KindInter, 11, 21))
	j2.Status = StatusWhitelistedFP
	db.MergeInconsistency(mkIncon(KindInter, 12, 22))
	j4, _ := db.MergeInconsistency(mkIncon(KindIntra, 13, 23))
	j4.Status = StatusBug
	js, _ := db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "lock"}, Site: 7, Count: 1})
	js.Status = StatusValidatedFP
	db.MergeSync(&SyncInconsistency{Var: SyncVar{Name: "seg"}, Site: 8, Count: 1})
	db.AddOther(OtherFinding{Kind: "hang", Site: 3})

	c := db.Tally()
	if c.Inter != 3 || c.InterValidated != 1 || c.InterWhitelist != 1 {
		t.Fatalf("inter tallies = %+v", c)
	}
	if c.Intra != 1 || c.Sync != 2 || c.SyncValidated != 1 {
		t.Fatalf("intra/sync tallies = %+v", c)
	}
	if c.InterBugs != 1 || c.IntraBugs != 1 || c.SyncBugs != 1 || c.OtherBugs != 1 {
		t.Fatalf("bug tallies = %+v", c)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending:       "pending",
		StatusBug:           "bug",
		StatusValidatedFP:   "validated-fp",
		StatusWhitelistedFP: "whitelisted-fp",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestFormatInconsistency(t *testing.T) {
	in := mkIncon(KindInter, 10, 20)
	in.Stack = []string{"pclht.go:417 Put"}
	j := &JudgedInconsistency{Inconsistency: in, Status: StatusBug}
	out := FormatInconsistency(j)
	for _, want := range []string{"Inter", "bug", "thread 1", "thread 2", "pclht.go:417"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSync(t *testing.T) {
	j := &JudgedSync{
		SyncInconsistency: &SyncInconsistency{
			Var: SyncVar{Name: "bucket-lock", InitVal: 0}, Site: 7,
			OldVal: 0, NewVal: 1, Count: 3, Stack: []string{"pclht.go:429 lock"},
		},
		Status: StatusPending,
	}
	out := FormatSync(j)
	for _, want := range []string{"bucket-lock", "pending", "pclht.go:429"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
