package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

// Kind classifies a detected inconsistency.
type Kind int

const (
	// KindInterCandidate is a cross-thread read of non-persisted data.
	KindInterCandidate Kind = iota
	// KindIntraCandidate is a same-thread read of non-persisted data.
	KindIntraCandidate
	// KindInter is a PM Inter-thread Inconsistency: a durable side effect
	// based on non-persisted data written by another thread.
	KindInter
	// KindIntra is the same-thread variant.
	KindIntra
	// KindSync is a PM Synchronization Inconsistency.
	KindSync
)

// String returns the paper's abbreviation for the kind.
func (k Kind) String() string {
	switch k {
	case KindInterCandidate:
		return "Inter-Cand"
	case KindIntraCandidate:
		return "Intra-Cand"
	case KindInter:
		return "Inter"
	case KindIntra:
		return "Intra"
	case KindSync:
		return "Sync"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FlowKind distinguishes the two data flows that make a PM write a durable
// side effect (paper §4.3).
type FlowKind int

const (
	// FlowValue: the contents written to PM derive from non-persisted
	// data (unexpected data contents after a crash).
	FlowValue FlowKind = iota
	// FlowAddress: the target address of the PM store derives from
	// non-persisted data (inconsistent data layout, potential data loss —
	// the P-CLHT example).
	FlowAddress
)

func (f FlowKind) String() string {
	if f == FlowAddress {
		return "address"
	}
	return "value"
}

// Candidate records one deduplicated inconsistency candidate: a (write site,
// read site) pair observed reading non-persisted data.
type Candidate struct {
	Event taint.Event
	Count int // dynamic occurrences
}

// Inter reports whether the candidate crosses threads.
func (c *Candidate) Inter() bool { return c.Event.Inter() }

// Inconsistency records one confirmed PM inter- or intra-thread
// inconsistency: a durable side effect based on non-persisted data.
type Inconsistency struct {
	Kind Kind
	// Event is the dirty-read event the side effect depends on.
	Event taint.Event
	// StoreSite and StoreThread identify the durable side effect.
	StoreSite   site.ID
	StoreThread pmem.ThreadID
	// SideEffect is the byte range the side effect wrote; post-failure
	// validation checks whether recovery overwrites it.
	SideEffect pmem.Range
	// DirtyRange is the still-non-persisted range the side effect depends
	// on; the adversarial crash image persists SideEffect but not this.
	DirtyRange pmem.Range
	// Flow tells whether the dependency flows through the stored value or
	// the store address.
	Flow FlowKind
	// External marks a durable side effect outside the pool — a disk
	// write or data shared with another program (Definition 2 lists these
	// alongside PM writes). External effects cannot be overwritten by
	// recovery, so validation reports them as bugs unless whitelisted.
	External bool
	// Stack is the call stack at the side effect, for bug reports and
	// whitelist matching.
	Stack []string
	// Lineage is the full taint expansion of the label that made the store
	// a durable side effect: every dirty-read event the stored value (or
	// address) transitively derives from. Forensic artifacts persist it so
	// a triager can follow the data flow from the original non-persisted
	// store to the side effect without re-running the campaign.
	Lineage []taint.Event
	// Trace is the tail of the PM access trace at detection time — the
	// interleaving evidence attached to the report.
	Trace []string
	// Input is the encoded program input (operation sequence) of the
	// campaign that found the inconsistency (§4.1 step 6: reports carry
	// "corresponding program inputs").
	Input string
	Count int
}

// Key returns the dedup key: inconsistencies with the same dirty write site
// and side-effect site are one report.
func (in *Inconsistency) Key() [3]uint32 {
	k := uint32(0)
	if in.Kind == KindIntra {
		k = 1
	}
	return [3]uint32{in.Event.WriteSite, uint32(in.StoreSite), k}
}

// SyncVar is a programmer annotation for a persistent synchronization
// variable (paper §5): its pool offset, size and the value it must be
// re-initialized to after recovery.
type SyncVar struct {
	Name    string
	Addr    pmem.Addr
	Size    uint64
	InitVal uint64
}

// SyncInconsistency records one update of an annotated synchronization
// variable in PM. Updates are deduplicated by (variable name, update site):
// the paper checks "each type of update operation for only one time", and
// annotations share a name across instances of the same variable type (e.g.
// every bucket lock of a hash table is the one "bucket-lock" annotation).
type SyncInconsistency struct {
	Var SyncVar
	// Addr is the concrete updated address (one instance of the variable
	// type); post-failure validation checks this address against the
	// annotation's expected initial value.
	Addr   pmem.Addr
	Site   site.ID
	Thread pmem.ThreadID
	OldVal uint64
	NewVal uint64
	Stack  []string
	// Input is the encoded program input of the finding campaign.
	Input string
	Count int
}

// DedupKey returns the (variable, site) key the result database dedups by.
func (si *SyncInconsistency) DedupKey() string {
	return fmt.Sprintf("%s@%d", si.Var.Name, si.Site)
}

// Detector implements the runtime PM checkers for one fuzz campaign.
type Detector struct {
	mu     sync.Mutex
	labels *taint.Table

	syncVars []SyncVar
	// hasSync mirrors len(syncVars) > 0; the store hook polls it on every
	// store, so it is atomic instead of taking mu.
	hasSync atomic.Bool

	candidates map[[2]uint32]*Candidate // (writeSite, readSite)
	candList   [][2]uint32

	incons   map[[3]uint32]*Inconsistency
	inconOrd [][3]uint32

	syncSeen map[string]*SyncInconsistency // "name@site"
	syncOrd  []string

	redundant map[uint32]*RedundantStore
	redOrd    []uint32

	redFlush    map[uint32]*RedundantFlush
	redFlushOrd []uint32
}

// RedundantStore records a PM store site observed writing back the value the
// word already held. It is an example of the additional checkers the PMRace
// framework admits (§4.3 discusses checking unnecessary persistency
// operations); the paper's Bug 4 in P-CLHT — unnecessary bucket writes — was
// confirmed from such a report.
type RedundantStore struct {
	Site  site.ID
	Addr  pmem.Addr
	Count int
}

// NewDetector creates a detector sharing the given taint label table with the
// runtime.
func NewDetector(labels *taint.Table) *Detector {
	return &Detector{
		labels:     labels,
		candidates: make(map[[2]uint32]*Candidate),
		incons:     make(map[[3]uint32]*Inconsistency),
		syncSeen:   make(map[string]*SyncInconsistency),
		redundant:  make(map[uint32]*RedundantStore),
	}
}

// OnRedundantStore records that the store at site s wrote a value identical
// to the word's current contents. The runtime filters out zero-over-zero
// writes (initialization noise) before calling.
func (d *Detector) OnRedundantStore(s site.ID, addr pmem.Addr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.redundant[uint32(s)]; ok {
		r.Count++
		return
	}
	d.redundant[uint32(s)] = &RedundantStore{Site: s, Addr: addr, Count: 1}
	d.redOrd = append(d.redOrd, uint32(s))
}

// RedundantStores returns the recorded redundant-store sites in detection
// order.
func (d *Detector) RedundantStores() []*RedundantStore {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*RedundantStore, 0, len(d.redOrd))
	for _, k := range d.redOrd {
		out = append(out, d.redundant[k])
	}
	return out
}

// Labels returns the detector's taint table.
func (d *Detector) Labels() *taint.Table { return d.labels }

// AnnotateSyncVar registers a persistent synchronization variable. It
// corresponds to the pm_sync_var_hint(size, init_val) annotation macro.
func (d *Detector) AnnotateSyncVar(v SyncVar) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncVars = append(d.syncVars, v)
	d.hasSync.Store(true)
}

// HasSyncVars cheaply reports whether any annotation is registered.
func (d *Detector) HasSyncVars() bool {
	return d.hasSync.Load()
}

// SyncVars returns the registered annotations.
func (d *Detector) SyncVars() []SyncVar {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SyncVar(nil), d.syncVars...)
}

// OnDirtyRead records an inconsistency candidate: thread ev.Reader read the
// word at ev.Addr while it was dirty from a store by ev.Writer at
// ev.WriteSite. It returns a taint label for the loaded value so the runtime
// can propagate the dependency.
func (d *Detector) OnDirtyRead(ev taint.Event) taint.Label {
	d.mu.Lock()
	key := [2]uint32{ev.WriteSite, ev.ReadSite}
	if c, ok := d.candidates[key]; ok {
		c.Count++
	} else {
		d.candidates[key] = &Candidate{Event: ev, Count: 1}
		d.candList = append(d.candList, key)
	}
	d.mu.Unlock()
	return d.labels.NewLeaf(ev)
}

// StoreCheck is the input to OnStore: one instrumented PM store with the
// taint labels of its value and of its target address computation.
type StoreCheck struct {
	Thread  pmem.ThreadID
	Site    site.ID
	Addr    pmem.Addr
	Size    uint64
	ValLab  taint.Label
	AddrLab taint.Label
	// External marks a non-PM durable effect (see Inconsistency.External).
	External   bool
	Stack      []string
	StillDirty func(addr pmem.Addr, epoch uint32) bool
}

// OnStore checks a PM store for durable side effects based on non-persisted
// data. For every taint event reachable from the value or address label, if
// the originating word is still dirty at the recorded epoch, an inter- or
// intra-thread inconsistency is recorded. Events whose dirty word lies
// inside the stored range itself are skipped: overwriting the dependent
// non-persisted data is not a side effect (Definition 2). It returns the
// newly recorded inconsistencies (empty when all were duplicates or stale).
func (d *Detector) OnStore(sc StoreCheck) []*Inconsistency {
	var found []*Inconsistency
	for _, pair := range [2]struct {
		lab  taint.Label
		flow FlowKind
	}{{sc.ValLab, FlowValue}, {sc.AddrLab, FlowAddress}} {
		if pair.lab == taint.None {
			continue
		}
		lineage := d.labels.Events(pair.lab)
		for _, ev := range lineage {
			// Skip self-overwrite of the dependent data (external
			// effects overwrite nothing).
			if !sc.External && ev.Addr >= sc.Addr&^7 && ev.Addr < sc.Addr+sc.Size {
				continue
			}
			if sc.StillDirty != nil && !sc.StillDirty(ev.Addr, ev.Epoch) {
				continue
			}
			kind := KindIntra
			if ev.Inter() {
				kind = KindInter
			}
			in := &Inconsistency{
				Kind:        kind,
				Event:       ev,
				StoreSite:   sc.Site,
				StoreThread: sc.Thread,
				External:    sc.External,
				SideEffect:  pmem.Range{Off: sc.Addr, Len: sc.Size},
				DirtyRange:  pmem.Range{Off: ev.Addr, Len: pmem.WordSize},
				Flow:        pair.flow,
				Stack:       sc.Stack,
				Lineage:     lineage,
				Count:       1,
			}
			d.mu.Lock()
			if prev, ok := d.incons[in.Key()]; ok {
				prev.Count++
				d.mu.Unlock()
				continue
			}
			d.incons[in.Key()] = in
			d.inconOrd = append(d.inconOrd, in.Key())
			d.mu.Unlock()
			found = append(found, in)
		}
	}
	return found
}

// OnSyncStore checks whether a store touches an annotated synchronization
// variable and records a PM Synchronization Inconsistency if so. Only value
// changes count (the checker watches "the changes of user-annotated
// synchronization variables", §4.1); each (variable, site) pair is recorded
// once. It returns the inconsistency when newly recorded.
func (d *Detector) OnSyncStore(t pmem.ThreadID, s site.ID, addr pmem.Addr, size uint64, oldVal, newVal uint64, stack []string) *SyncInconsistency {
	if oldVal == newVal {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, v := range d.syncVars {
		if addr+size <= v.Addr || addr >= v.Addr+v.Size {
			continue
		}
		key := fmt.Sprintf("%s@%d", v.Name, s)
		if prev, ok := d.syncSeen[key]; ok {
			prev.Count++
			return nil
		}
		si := &SyncInconsistency{
			Var:    v,
			Addr:   v.Addr,
			Site:   s,
			Thread: t,
			OldVal: oldVal,
			NewVal: newVal,
			Stack:  stack,
			Count:  1,
		}
		d.syncSeen[key] = si
		d.syncOrd = append(d.syncOrd, key)
		return si
	}
	return nil
}

// Candidates returns all recorded candidates in detection order.
func (d *Detector) Candidates() []*Candidate {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Candidate, 0, len(d.candList))
	for _, k := range d.candList {
		out = append(out, d.candidates[k])
	}
	return out
}

// Inconsistencies returns all recorded inter-/intra-thread inconsistencies in
// detection order.
func (d *Detector) Inconsistencies() []*Inconsistency {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Inconsistency, 0, len(d.inconOrd))
	for _, k := range d.inconOrd {
		out = append(out, d.incons[k])
	}
	return out
}

// SyncInconsistencies returns all recorded synchronization inconsistencies in
// detection order.
func (d *Detector) SyncInconsistencies() []*SyncInconsistency {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*SyncInconsistency, 0, len(d.syncOrd))
	for _, k := range d.syncOrd {
		out = append(out, d.syncSeen[k])
	}
	return out
}

// CandidateCounts returns the numbers of inter- and intra-thread candidates.
func (d *Detector) CandidateCounts() (inter, intra int) {
	for _, c := range d.Candidates() {
		if c.Inter() {
			inter++
		} else {
			intra++
		}
	}
	return inter, intra
}
