package core

import (
	"testing"

	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func newDet() *Detector { return NewDetector(taint.NewTable()) }

func interEvent(writeSite, readSite uint32, addr uint64) taint.Event {
	return taint.Event{Addr: addr, Epoch: 1, WriteSite: writeSite, ReadSite: readSite, Writer: 1, Reader: 2}
}

func intraEvent(writeSite, readSite uint32, addr uint64) taint.Event {
	return taint.Event{Addr: addr, Epoch: 1, WriteSite: writeSite, ReadSite: readSite, Writer: 3, Reader: 3}
}

func alwaysDirty(pmem.Addr, uint32) bool { return true }
func neverDirty(pmem.Addr, uint32) bool  { return false }

func TestOnDirtyReadRecordsCandidate(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(interEvent(10, 20, 64))
	if lab == taint.None {
		t.Fatalf("dirty read must return a taint label")
	}
	cands := d.Candidates()
	if len(cands) != 1 || !cands[0].Inter() || cands[0].Count != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestCandidatesDeduplicateBySitePair(t *testing.T) {
	d := newDet()
	d.OnDirtyRead(interEvent(10, 20, 64))
	d.OnDirtyRead(interEvent(10, 20, 128)) // same site pair, different address
	d.OnDirtyRead(interEvent(10, 21, 64))  // different read site
	cands := d.Candidates()
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	if cands[0].Count != 2 {
		t.Fatalf("first candidate count = %d, want 2", cands[0].Count)
	}
}

func TestCandidateCounts(t *testing.T) {
	d := newDet()
	d.OnDirtyRead(interEvent(1, 2, 64))
	d.OnDirtyRead(intraEvent(3, 4, 128))
	d.OnDirtyRead(intraEvent(5, 6, 192))
	inter, intra := d.CandidateCounts()
	if inter != 1 || intra != 2 {
		t.Fatalf("counts = %d inter %d intra, want 1 and 2", inter, intra)
	}
}

func TestOnStoreConfirmsInterInconsistency(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(interEvent(10, 20, 64))
	found := d.OnStore(StoreCheck{
		Thread: 2, Site: 99, Addr: 256, Size: 8,
		ValLab: lab, StillDirty: alwaysDirty,
	})
	if len(found) != 1 {
		t.Fatalf("found %d inconsistencies, want 1", len(found))
	}
	in := found[0]
	if in.Kind != KindInter || in.Flow != FlowValue {
		t.Fatalf("kind=%v flow=%v", in.Kind, in.Flow)
	}
	if in.SideEffect != (pmem.Range{Off: 256, Len: 8}) {
		t.Fatalf("side effect = %+v", in.SideEffect)
	}
	if in.DirtyRange.Off != 64 {
		t.Fatalf("dirty range = %+v", in.DirtyRange)
	}
}

func TestOnStoreAddressFlow(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(interEvent(10, 20, 64))
	found := d.OnStore(StoreCheck{
		Thread: 2, Site: 99, Addr: 512, Size: 16,
		AddrLab: lab, StillDirty: alwaysDirty,
	})
	if len(found) != 1 || found[0].Flow != FlowAddress {
		t.Fatalf("found = %+v, want one address-flow inconsistency", found)
	}
}

func TestOnStoreIntraClassification(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(intraEvent(10, 20, 64))
	found := d.OnStore(StoreCheck{Thread: 3, Site: 99, Addr: 256, Size: 8, ValLab: lab, StillDirty: alwaysDirty})
	if len(found) != 1 || found[0].Kind != KindIntra {
		t.Fatalf("found = %+v, want intra", found)
	}
}

func TestOnStoreSkipsPersistedEvents(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(interEvent(10, 20, 64))
	found := d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 256, Size: 8, ValLab: lab, StillDirty: neverDirty})
	if len(found) != 0 {
		t.Fatalf("persisted dependency must not be an inconsistency, got %+v", found)
	}
	if len(d.Inconsistencies()) != 0 {
		t.Fatalf("nothing must be recorded")
	}
}

func TestOnStoreSkipsSelfOverwrite(t *testing.T) {
	d := newDet()
	lab := d.OnDirtyRead(interEvent(10, 20, 64))
	// Storing over the dependent word itself is not a side effect.
	found := d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 64, Size: 8, ValLab: lab, StillDirty: alwaysDirty})
	if len(found) != 0 {
		t.Fatalf("self-overwrite must be skipped, got %+v", found)
	}
}

func TestOnStoreUntaintedIsNoop(t *testing.T) {
	d := newDet()
	found := d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 64, Size: 8, StillDirty: alwaysDirty})
	if len(found) != 0 {
		t.Fatalf("untainted store must not report, got %+v", found)
	}
}

func TestInconsistencyDeduplication(t *testing.T) {
	d := newDet()
	lab1 := d.OnDirtyRead(interEvent(10, 20, 64))
	d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 256, Size: 8, ValLab: lab1, StillDirty: alwaysDirty})
	lab2 := d.OnDirtyRead(interEvent(10, 20, 64))
	found := d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 256, Size: 8, ValLab: lab2, StillDirty: alwaysDirty})
	if len(found) != 0 {
		t.Fatalf("duplicate must not be re-reported")
	}
	ins := d.Inconsistencies()
	if len(ins) != 1 || ins[0].Count != 2 {
		t.Fatalf("inconsistencies = %+v", ins)
	}
}

func TestMultipleEventsInOneLabel(t *testing.T) {
	d := newDet()
	a := d.OnDirtyRead(interEvent(10, 20, 64))
	b := d.OnDirtyRead(interEvent(11, 21, 128))
	u := d.Labels().Union(a, b)
	found := d.OnStore(StoreCheck{Thread: 2, Site: 99, Addr: 256, Size: 8, ValLab: u, StillDirty: alwaysDirty})
	if len(found) != 2 {
		t.Fatalf("found %d, want 2 (one per source event)", len(found))
	}
}

func TestSyncVarAnnotationAndDetection(t *testing.T) {
	d := newDet()
	d.AnnotateSyncVar(SyncVar{Name: "bucket-lock", Addr: 128, Size: 8, InitVal: 0})
	si := d.OnSyncStore(1, 50, 128, 8, 0, 1, nil)
	if si == nil || si.Var.Name != "bucket-lock" || si.NewVal != 1 {
		t.Fatalf("sync inconsistency = %+v", si)
	}
	// Same site again: counted, not re-reported.
	if d.OnSyncStore(1, 50, 128, 8, 1, 0, nil) != nil {
		t.Fatalf("same update site must be reported once")
	}
	sis := d.SyncInconsistencies()
	if len(sis) != 1 || sis[0].Count != 2 {
		t.Fatalf("syncs = %+v", sis)
	}
	// Different site on the same var: new report.
	if d.OnSyncStore(2, 51, 128, 8, 0, 1, nil) == nil {
		t.Fatalf("different update site must be reported")
	}
}

func TestSyncStoreOutsideAnnotationIgnored(t *testing.T) {
	d := newDet()
	d.AnnotateSyncVar(SyncVar{Name: "lock", Addr: 128, Size: 8})
	if d.OnSyncStore(1, 50, 136, 8, 0, 1, nil) != nil {
		t.Fatalf("store outside annotated range must be ignored")
	}
	if d.OnSyncStore(1, 50, 120, 8, 0, 1, nil) != nil {
		t.Fatalf("store before annotated range must be ignored")
	}
}

func TestSyncStoreOverlapDetected(t *testing.T) {
	d := newDet()
	d.AnnotateSyncVar(SyncVar{Name: "lock", Addr: 128, Size: 16})
	if d.OnSyncStore(1, 50, 136, 8, 0, 1, nil) == nil {
		t.Fatalf("store overlapping annotated range must be detected")
	}
}

func TestSyncVarsAccessor(t *testing.T) {
	d := newDet()
	d.AnnotateSyncVar(SyncVar{Name: "a", Addr: 0, Size: 8})
	d.AnnotateSyncVar(SyncVar{Name: "b", Addr: 8, Size: 8})
	if got := d.SyncVars(); len(got) != 2 || got[0].Name != "a" {
		t.Fatalf("SyncVars = %+v", got)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindInterCandidate: "Inter-Cand",
		KindIntraCandidate: "Intra-Cand",
		KindInter:          "Inter",
		KindIntra:          "Intra",
		KindSync:           "Sync",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if FlowValue.String() != "value" || FlowAddress.String() != "address" {
		t.Fatalf("flow strings wrong")
	}
}

func TestWhitelistMatch(t *testing.T) {
	w := NewWhitelist("pmdk_tx_alloc")
	if !w.MatchStack([]string{"target.go:10 doPut", "pmdk.go:55 pmdk_tx_alloc"}) {
		t.Fatalf("whitelist must match stack frame substring")
	}
	if w.MatchStack([]string{"target.go:10 doPut"}) {
		t.Fatalf("whitelist must not match unrelated stacks")
	}
	w.Add("items.go:42")
	if !w.MatchStack([]string{"items.go:42 rebuild"}) {
		t.Fatalf("added entry must match")
	}
	if len(w.Entries()) != 2 {
		t.Fatalf("entries = %v", w.Entries())
	}
}

func TestWhitelistMatchInconsistencyBySite(t *testing.T) {
	redo := site.Named("redo-log-alloc")
	d := newDet()
	lab := d.OnDirtyRead(taint.Event{Addr: 64, Epoch: 1, WriteSite: uint32(redo), ReadSite: 2, Writer: 1, Reader: 2})
	found := d.OnStore(StoreCheck{Thread: 2, Site: 9, Addr: 256, Size: 8, ValLab: lab, StillDirty: alwaysDirty})
	if len(found) != 1 {
		t.Fatalf("setup failed")
	}
	w := NewWhitelist("redo-log-alloc")
	if !w.MatchInconsistency(found[0]) {
		t.Fatalf("whitelist must match by write-site name")
	}
	if NewWhitelist("unrelated").MatchInconsistency(found[0]) {
		t.Fatalf("unrelated whitelist must not match")
	}
}

func TestOnFlushRedundantDetection(t *testing.T) {
	d := newDet()
	d.OnFlush(31, 64, false) // all clean: redundant
	d.OnFlush(31, 64, false)
	d.OnFlush(32, 128, true) // dirty data: useful flush
	red := d.RedundantFlushes()
	if len(red) != 1 || red[0].Count != 2 || red[0].Site != 31 {
		t.Fatalf("redundant flushes = %+v", red)
	}
}
