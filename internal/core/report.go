package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/site"
)

// Status is the post-failure verdict on a detected inconsistency (§4.4).
type Status int

const (
	// StatusPending: not yet validated.
	StatusPending Status = iota
	// StatusBug: survived post-failure validation; reported as a bug.
	StatusBug
	// StatusValidatedFP: the recovery code overwrote the durable side
	// effect (or re-initialized the sync variable), so the inconsistency
	// is benign.
	StatusValidatedFP
	// StatusWhitelistedFP: the detection stack matched a whitelist entry
	// (e.g. transactional allocation protected by redo logging).
	StatusWhitelistedFP
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusBug:
		return "bug"
	case StatusValidatedFP:
		return "validated-fp"
	case StatusWhitelistedFP:
		return "whitelisted-fp"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Whitelist lets developers mark benign reads of non-persisted data (§4.4):
// crash-consistent patterns such as redo-logged allocation or checksummed
// regions. An inconsistency whose stack trace or involved sites contain a
// whitelisted location is reported as safe.
type Whitelist struct {
	mu      sync.Mutex
	entries []string
}

// NewWhitelist creates a whitelist with the given entries.
func NewWhitelist(entries ...string) *Whitelist {
	w := &Whitelist{}
	w.Add(entries...)
	return w
}

// Add appends entries; each is a substring matched against stack frames and
// site strings (file:line or function name).
func (w *Whitelist) Add(entries ...string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.entries = append(w.entries, entries...)
}

// Entries returns a copy of the whitelist contents.
func (w *Whitelist) Entries() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.entries...)
}

// MatchStack reports whether any stack frame contains a whitelisted entry.
func (w *Whitelist) MatchStack(stack []string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, fr := range stack {
		for _, e := range w.entries {
			if e != "" && strings.Contains(fr, e) {
				return true
			}
		}
	}
	return false
}

// MatchInconsistency reports whether the inconsistency's stack or the
// file:line of its read/write/store sites match the whitelist.
func (w *Whitelist) MatchInconsistency(in *Inconsistency) bool {
	if w.MatchStack(in.Stack) {
		return true
	}
	locs := []string{
		site.Lookup(site.ID(in.Event.WriteSite)).String(),
		site.Lookup(site.ID(in.Event.ReadSite)).String(),
		site.Lookup(in.StoreSite).String(),
		site.Lookup(site.ID(in.Event.WriteSite)).Function,
		site.Lookup(site.ID(in.Event.ReadSite)).Function,
		site.Lookup(in.StoreSite).Function,
	}
	return w.MatchStack(locs)
}

// JudgedInconsistency pairs a detected inconsistency with its post-failure
// verdict.
type JudgedInconsistency struct {
	*Inconsistency
	Status Status
}

// JudgedSync pairs a synchronization inconsistency with its verdict.
type JudgedSync struct {
	*SyncInconsistency
	Status Status
}

// OtherFinding records findings outside the two main patterns: hangs from
// conventional concurrency bugs, redundant PM writes surfaced from candidate
// reports, and similar (Table 2 "Other").
type OtherFinding struct {
	Kind        string // e.g. "hang", "redundant-write"
	Site        site.ID
	Description string
}

// UniqueBug is the paper's unit of counting (§6.2): a group of
// inconsistencies caused by the same non-persisted store instruction, or all
// synchronization inconsistencies of the same variable.
type UniqueBug struct {
	ID        int
	Kind      Kind
	GroupSite site.ID // dirty write site (inter/intra) or sync-update site
	VarName   string  // for sync bugs
	Samples   int
	Summary   string
}

// DB accumulates detection results across fuzz campaigns and computes the
// paper's evaluation aggregates (Tables 2/3/5/6).
type DB struct {
	mu     sync.Mutex
	em     *obs.Emitter
	incons map[[3]uint32]*JudgedInconsistency
	order  [][3]uint32
	syncs  map[string]*JudgedSync // key: varName + site
	syncO  []string
	others []OtherFinding
}

// NewDB creates an empty result database.
func NewDB() *DB {
	return &DB{
		incons: make(map[[3]uint32]*JudgedInconsistency),
		syncs:  make(map[string]*JudgedSync),
	}
}

// SetEmitter attaches the observability emitter: new deduplicated findings
// emit InconsistencyFound, and verdicts that land as bugs emit BugConfirmed.
// Call before the campaign starts; a nil emitter (the default) is inert.
func (db *DB) SetEmitter(em *obs.Emitter) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.em = em
}

// MergeInconsistency records an inconsistency found during a campaign,
// deduplicating against earlier campaigns. It returns the judged record (new
// or existing) and whether it was new.
func (db *DB) MergeInconsistency(in *Inconsistency) (*JudgedInconsistency, bool) {
	db.mu.Lock()
	if prev, ok := db.incons[in.Key()]; ok {
		prev.Count += in.Count
		db.mu.Unlock()
		return prev, false
	}
	j := &JudgedInconsistency{Inconsistency: in, Status: StatusPending}
	db.incons[in.Key()] = j
	db.order = append(db.order, in.Key())
	em := db.em
	db.mu.Unlock()
	em.Emit(&obs.InconsistencyFound{
		Class:     classOf(in.Kind),
		WriteSite: site.Lookup(site.ID(in.Event.WriteSite)).String(),
		ReadSite:  site.Lookup(site.ID(in.Event.ReadSite)).String(),
		StoreSite: site.Lookup(in.StoreSite).String(),
		Flow:      strings.ToLower(in.Flow.String()),
	})
	return j, true
}

// classOf maps a finding kind to its event-stream class label.
func classOf(k Kind) string {
	switch k {
	case KindInter, KindInterCandidate:
		return "inter"
	case KindIntra, KindIntraCandidate:
		return "intra"
	default:
		return "sync"
	}
}

// HasInconsistency reports whether a finding with the given dedup key is
// already recorded. The fuzzing executor consults it at detection time to
// skip the forensic capture (crash-state enumeration, PM diff, trace) for
// duplicates, whose capture the merge would discard unread.
func (db *DB) HasInconsistency(key [3]uint32) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.incons[key]
	return ok
}

// HasSync is the synchronization-finding analogue of HasInconsistency.
func (db *DB) HasSync(si *SyncInconsistency) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.syncs[si.DedupKey()]
	return ok
}

// MergeSync records a synchronization inconsistency, deduplicating by
// variable and site.
func (db *DB) MergeSync(si *SyncInconsistency) (*JudgedSync, bool) {
	db.mu.Lock()
	key := si.DedupKey()
	if prev, ok := db.syncs[key]; ok {
		prev.Count += si.Count
		db.mu.Unlock()
		return prev, false
	}
	j := &JudgedSync{SyncInconsistency: si, Status: StatusPending}
	db.syncs[key] = j
	db.syncO = append(db.syncO, key)
	em := db.em
	db.mu.Unlock()
	em.Emit(&obs.InconsistencyFound{
		Class:     "sync",
		StoreSite: site.Lookup(si.Site).String(),
		Var:       si.Var.Name,
	})
	return j, true
}

// Judge records the post-failure verdict on an inter-/intra-thread finding,
// emitting BugConfirmed when it survives validation as a bug.
func (db *DB) Judge(j *JudgedInconsistency, st Status) {
	db.mu.Lock()
	j.Status = st
	em := db.em
	db.mu.Unlock()
	if st == StatusBug {
		em.Emit(&obs.BugConfirmed{
			Class: classOf(j.Kind),
			Site:  site.Lookup(site.ID(j.Event.WriteSite)).String(),
			Summary: fmt.Sprintf("durable side effect at %s based on non-persisted data from %s",
				site.Lookup(j.StoreSite), site.Lookup(site.ID(j.Event.WriteSite))),
		})
	}
}

// JudgeSync is the synchronization-variable analogue of Judge.
func (db *DB) JudgeSync(j *JudgedSync, st Status) {
	db.mu.Lock()
	j.Status = st
	em := db.em
	db.mu.Unlock()
	if st == StatusBug {
		em.Emit(&obs.BugConfirmed{
			Class: "sync",
			Site:  site.Lookup(j.Site).String(),
			Var:   j.Var.Name,
			Summary: fmt.Sprintf("persistent synchronization variable %q updated at %s survives restart",
				j.Var.Name, site.Lookup(j.Site)),
		})
	}
}

// AddOther records a finding outside the two main patterns, deduplicated by
// kind and site.
func (db *DB) AddOther(f OtherFinding) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, o := range db.others {
		if o.Kind == f.Kind && o.Site == f.Site {
			return false
		}
	}
	db.others = append(db.others, f)
	return true
}

// Inconsistencies returns the judged inconsistencies in insertion order.
func (db *DB) Inconsistencies() []*JudgedInconsistency {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*JudgedInconsistency, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.incons[k])
	}
	return out
}

// Syncs returns the judged synchronization inconsistencies in insertion
// order.
func (db *DB) Syncs() []*JudgedSync {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*JudgedSync, 0, len(db.syncO))
	for _, k := range db.syncO {
		out = append(out, db.syncs[k])
	}
	return out
}

// Others returns the recorded other findings.
func (db *DB) Others() []OtherFinding {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]OtherFinding(nil), db.others...)
}

// Counts aggregates verdicts per kind for the Table 3/6 rows.
type Counts struct {
	InterCandidates int
	IntraCandidates int
	Inter           int
	Intra           int
	InterValidated  int // validated FPs among inter
	InterWhitelist  int
	IntraValidated  int
	IntraWhitelist  int
	Sync            int
	SyncValidated   int
	InterBugs       int // unique bugs
	IntraBugs       int
	SyncBugs        int
	OtherBugs       int
}

// Tally computes the verdict aggregates. Candidate counts must be supplied
// by the caller (they live in per-campaign detectors). The whole aggregation
// holds the lock: verdict fields (Status, Count) are written under it by
// Judge/Merge while the campaign runs, and Tally may be called concurrently
// through live statistics snapshots.
func (db *DB) Tally() Counts {
	db.mu.Lock()
	defer db.mu.Unlock()
	var c Counts
	for _, k := range db.order {
		j := db.incons[k]
		switch j.Kind {
		case KindInter:
			c.Inter++
			switch j.Status {
			case StatusValidatedFP:
				c.InterValidated++
			case StatusWhitelistedFP:
				c.InterWhitelist++
			}
		case KindIntra:
			c.Intra++
			switch j.Status {
			case StatusValidatedFP:
				c.IntraValidated++
			case StatusWhitelistedFP:
				c.IntraWhitelist++
			}
		}
	}
	for _, k := range db.syncO {
		j := db.syncs[k]
		c.Sync++
		if j.Status == StatusValidatedFP || j.Status == StatusWhitelistedFP {
			c.SyncValidated++
		}
	}
	bugs := db.uniqueBugsLocked()
	for _, b := range bugs {
		switch b.Kind {
		case KindInter:
			c.InterBugs++
		case KindIntra:
			c.IntraBugs++
		case KindSync:
			c.SyncBugs++
		}
	}
	c.OtherBugs = len(db.others)
	return c
}

// UniqueBugs groups the surviving (non-FP) inconsistencies by the store
// instruction that produced the non-persisted data, and synchronization
// inconsistencies by variable, producing the paper's unique-bug counts. Safe
// to call while the campaign is still judging findings.
func (db *DB) UniqueBugs() []UniqueBug {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.uniqueBugsLocked()
}

func (db *DB) uniqueBugsLocked() []UniqueBug {
	type group struct {
		kind    Kind
		site    site.ID
		varName string
		samples int
		summary string
	}
	groups := map[string]*group{}
	var order []string
	for _, k := range db.order {
		j := db.incons[k]
		if j.Status == StatusValidatedFP || j.Status == StatusWhitelistedFP {
			continue
		}
		key := fmt.Sprintf("%s/%d", j.Kind, j.Event.WriteSite)
		g, ok := groups[key]
		if !ok {
			g = &group{
				kind: j.Kind,
				site: site.ID(j.Event.WriteSite),
				summary: fmt.Sprintf("read non-persisted data written at %s (read at %s), durable side effect at %s (%s flow)",
					site.Lookup(site.ID(j.Event.WriteSite)), site.Lookup(site.ID(j.Event.ReadSite)),
					site.Lookup(j.StoreSite), j.Flow),
			}
			groups[key] = g
			order = append(order, key)
		}
		g.samples += j.Count
	}
	for _, k := range db.syncO {
		j := db.syncs[k]
		if j.Status == StatusValidatedFP || j.Status == StatusWhitelistedFP {
			continue
		}
		key := "sync/" + j.Var.Name
		g, ok := groups[key]
		if !ok {
			g = &group{
				kind:    KindSync,
				site:    j.Site,
				varName: j.Var.Name,
				summary: fmt.Sprintf("persistent synchronization variable %q updated at %s is not re-initialized after restart", j.Var.Name, site.Lookup(j.Site)),
			}
			groups[key] = g
			order = append(order, key)
		}
		g.samples += j.Count
	}
	sort.Strings(order)
	out := make([]UniqueBug, 0, len(order))
	for i, key := range order {
		g := groups[key]
		out = append(out, UniqueBug{
			ID:        i + 1,
			Kind:      g.kind,
			GroupSite: g.site,
			VarName:   g.varName,
			Samples:   g.samples,
			Summary:   g.summary,
		})
	}
	return out
}

// FormatInconsistency renders a detailed bug report in the spirit of the
// paper's "detailed bug reports with stack traces" (§4.1 step 6).
func FormatInconsistency(j *JudgedInconsistency) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s inconsistency (%s flow)\n", j.Status, j.Kind, j.Flow)
	fmt.Fprintf(&b, "  non-persisted write: %s by thread %d\n", site.Lookup(site.ID(j.Event.WriteSite)), j.Event.Writer)
	fmt.Fprintf(&b, "  dirty read:          %s by thread %d (PM offset %#x)\n", site.Lookup(site.ID(j.Event.ReadSite)), j.Event.Reader, j.Event.Addr)
	fmt.Fprintf(&b, "  durable side effect: %s by thread %d (PM offset %#x, %d bytes)\n", site.Lookup(j.StoreSite), j.StoreThread, j.SideEffect.Off, j.SideEffect.Len)
	fmt.Fprintf(&b, "  dynamic occurrences: %d\n", j.Count)
	if len(j.Stack) > 0 {
		b.WriteString("  stack at side effect:\n")
		for _, fr := range j.Stack {
			fmt.Fprintf(&b, "    %s\n", fr)
		}
	}
	if len(j.Trace) > 0 {
		b.WriteString("  interleaving (recent PM accesses):\n")
		for _, line := range j.Trace {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	if j.Input != "" {
		b.WriteString("  program input:\n")
		for _, line := range strings.Split(strings.TrimSpace(j.Input), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// FormatSync renders a synchronization inconsistency report.
func FormatSync(j *JudgedSync) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] Sync inconsistency on %q\n", j.Status, j.Var.Name)
	fmt.Fprintf(&b, "  update: %s by thread %d (%#x -> %#x, expected init %#x)\n",
		site.Lookup(j.Site), j.Thread, j.OldVal, j.NewVal, j.Var.InitVal)
	fmt.Fprintf(&b, "  dynamic occurrences: %d\n", j.Count)
	if len(j.Stack) > 0 {
		b.WriteString("  stack at update:\n")
		for _, fr := range j.Stack {
			fmt.Fprintf(&b, "    %s\n", fr)
		}
	}
	return b.String()
}
