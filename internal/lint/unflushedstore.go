package lint

import (
	"go/ast"
)

// UnflushedStore reports Thread.Store64/StoreBytes calls whose written
// object has no subsequent Flush+Fence (or fused Persist) before the
// function returns or releases a spinlock.
//
// The check is intraprocedural and flow-insensitive by design: instrumented
// PM code in this repo writes its persistence protocol as straight-line
// store → flush → fence sequences, so source order approximates execution
// order. Coverage is matched on the *base object* of the address expression
// (see baseExpr), so `Persist(node, nodeSize)` covers `Store64(node+off,
// ...)`. Helper functions that intentionally defer flushing to their caller
// suppress the finding with a //pmvet:ignore comment naming the caller that
// persists.
var UnflushedStore = &Analyzer{
	Name: "unflushed-store",
	Doc: "reports cached PM stores with no dominating Flush+Fence before " +
		"function exit or lock release; an unflushed store is invisible to " +
		"crash-consistency detection because the runtime never observes the " +
		"line leave the (simulated) cache",
	Run: runUnflushedStore,
}

func runUnflushedStore(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkUnflushed(pass, fn)
		}
	}
	return nil
}

func checkUnflushed(pass *Pass, fn *ast.FuncDecl) {
	calls := hookCallsIn(pass.TypesInfo, fn)
	for i, h := range calls {
		if h.kind != hookStore {
			continue
		}
		base := baseString(pass.TypesInfo, h.addr)
		// Scan forward for a flush or persist covering the same base
		// object. A lock release before coverage means the store becomes
		// visible to other threads while (possibly) still unflushed.
		covered := false
		fenced := false
		for j := i + 1; j < len(calls); j++ {
			c := calls[j]
			switch c.kind {
			case hookUnlock:
				if !covered {
					pass.Reportf(h.pos,
						"%s to %s is not flushed before SpinUnlock releases the lock",
						h.name, exprString(h.addr))
					covered, fenced = true, true // report once per store
				}
			case hookFlush:
				if !covered && baseString(pass.TypesInfo, c.addr) == base {
					covered = true
				}
			case hookPersist:
				if !covered && baseString(pass.TypesInfo, c.addr) == base {
					covered, fenced = true, true
				}
			case hookFence:
				if covered {
					fenced = true
				}
			}
			if covered && fenced {
				break
			}
		}
		switch {
		case !covered:
			pass.Reportf(h.pos,
				"%s to %s has no Flush/Persist before function exit",
				h.name, exprString(h.addr))
		case !fenced:
			pass.Reportf(h.pos,
				"%s to %s is flushed but never fenced before function exit",
				h.name, exprString(h.addr))
		}
	}
}
