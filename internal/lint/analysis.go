package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one pmvet check. The type deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name, Doc, Run over a Pass):
// this build environment is offline and x/tools is not vendored, so the
// repo carries this minimal structural clone instead. Migrating an
// analyzer to the upstream framework is a mechanical change of import
// path plus a driver swap; the Run functions themselves only consume
// go/ast and go/types.
type Analyzer struct {
	// Name identifies the analyzer in reports, -include/-exclude driver
	// flags and //pmvet:ignore suppression comments. Stable; treated as
	// part of the output format.
	Name string
	// Doc is the one-paragraph help text shown by `pmvet -list`.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package through an Analyzer.Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic. Never nil during Run.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position, mirroring
// analysis.Diagnostic.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: the analyzer that produced it plus the
// file:line:col position, ready for printing or JSON encoding. Positions use
// the base file name (like site.Info) so they are comparable with the
// runtime's site-ID strings.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // base name, e.g. "pclht.go"
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Site renders the finding's position in the runtime site-ID format
// ("pclht.go:333"), the join key between static findings and dynamic
// coverage.
func (f Finding) Site() string { return fmt.Sprintf("%s:%d", f.File, f.Line) }

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}
