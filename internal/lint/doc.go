// Package lint is pmvet: a suite of static analyzers that check the
// hand-written PM instrumentation of this repository for completeness.
//
// This repo replaces PMRace's LLVM instrumentation pass with hand-written
// rt hook calls, so a forgotten Flush/Fence, a raw pmem.Pool access or a
// dropped taint label silently removes a bug from the dynamically
// detectable set. The four analyzers — unflushed-store, missing-hook,
// taint-gap and fence-pairing — restore a compile-time completeness
// guarantee over that hand instrumentation, and BuildAliasReport emits the
// static load/store alias pairs the fuzzer consumes as scheduler hints.
//
// The Analyzer/Pass/Diagnostic types structurally mirror
// golang.org/x/tools/go/analysis (unavailable in this offline build);
// Loader replaces go/packages with go/parser plus the stdlib source
// importer. The cmd/pmvet driver wires the suite into a gosec-style CLI
// with -include/-exclude selection and //pmvet:ignore suppression. See
// DESIGN.md §11 for the architecture, the paper-fidelity argument and the
// alias-pair JSON schema.
package lint
