package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzers returns the full pmvet suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{FencePairing, MissingHook, TaintGap, UnflushedStore}
}

// ByName resolves a comma-separated analyzer name list against the
// registry, mirroring gosec's -include/-exclude rule selection.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", n, analyzerNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// ignoreDirective is the comment marker suppressing findings, modelled on
// gosec's #nosec: `//pmvet:ignore <analyzer>[,<analyzer>...] -- reason`.
// A bare `//pmvet:ignore` suppresses every analyzer. The directive covers
// its own source line and the next line, so it works both as a trailing
// comment and as a comment line above the offending statement.
const ignoreDirective = "//pmvet:ignore"

// suppression maps file base name → line → set of suppressed analyzer
// names ("" key = all analyzers).
type suppression map[string]map[int]map[string]bool

func (s suppression) add(file string, line int, names []string) {
	lines, ok := s[file]
	if !ok {
		lines = map[int]map[string]bool{}
		s[file] = lines
	}
	set, ok := lines[line]
	if !ok {
		set = map[string]bool{}
		lines[line] = set
	}
	if len(names) == 0 {
		set[""] = true
		return
	}
	for _, n := range names {
		set[n] = true
	}
}

func (s suppression) matches(file string, line int, analyzer string) bool {
	set, ok := s[file][line]
	if !ok {
		return false
	}
	return set[""] || set[analyzer]
}

// collectSuppressions scans a package's comments for ignore directives.
func collectSuppressions(pkg *Package) suppression {
	sup := suppression{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				// Strip the justification after " -- ".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				var names []string
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				p := pkg.Fset.Position(c.Pos())
				base := filepath.Base(p.Filename)
				sup.add(base, p.Line, names)
				sup.add(base, p.Line+1, names)
			}
		}
	}
	return sup
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by file, line, column, analyzer. Suppressed findings are
// dropped; analyzer errors abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				f := Finding{
					Analyzer: a.Name,
					File:     filepath.Base(p.Filename),
					Line:     p.Line,
					Col:      p.Column,
					Message:  d.Message,
				}
				if sup.matches(f.File, f.Line, f.Analyzer) {
					return
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// sitePos renders a token position in the runtime's site-ID format
// ("pclht.go:333").
func sitePos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
