// Package fencepair seeds violations for the fence-pairing analyzer.
package fencepair

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func ntNoFence(t *rt.Thread, root pmem.Addr) {
	t.NTStore64(root, 1, taint.None, taint.None) // want `NTStore64 to root has no subsequent Fence`
}

func ntFenced(t *rt.Thread, root pmem.Addr) {
	t.NTStore64(root, 2, taint.None, taint.None)
	t.Fence()
}

func doubleFlush(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+8, 3, taint.None, taint.None)
	t.Flush(root+8, 8)
	t.Flush(root+8, 8) // want `duplicate Flush of root \+ 8`
	t.Fence()
}

func reflushAfterFence(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+16, 4, taint.None, taint.None)
	t.Flush(root+16, 8)
	t.Fence()
	t.Store64(root+16, 5, taint.None, taint.None)
	t.Flush(root+16, 8)
	t.Fence()
}

func reflushAfterStore(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+24, 6, taint.None, taint.None)
	t.Flush(root+24, 8)
	t.Store64(root+24, 7, taint.None, taint.None)
	t.Flush(root+24, 8)
	t.Fence()
}
