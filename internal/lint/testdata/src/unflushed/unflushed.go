// Package unflushed seeds violations for the unflushed-store analyzer.
package unflushed

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func neverFlushed(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+8, 1, taint.None, taint.None) // want `Store64 to root \+ 8 has no Flush/Persist before function exit`
}

func flushedNotFenced(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+16, 2, taint.None, taint.None) // want `Store64 to root \+ 16 is flushed but never fenced`
	t.Flush(root+16, 8)
}

func storeBeforeUnlock(t *rt.Thread, root pmem.Addr) {
	t.SpinLock(root)
	t.Store64(root+24, 3, taint.None, taint.None) // want `Store64 to root \+ 24 is not flushed before SpinUnlock`
	t.SpinUnlock(root)
	t.Persist(root+24, 8)
}

func persisted(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+32, 4, taint.None, taint.None)
	t.Persist(root+32, 8)
}

func flushedAndFenced(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+40, 5, taint.None, taint.None)
	t.Flush(root+40, 8)
	t.Fence()
}

// coveredByBase: a whole-object Persist covers stores at offsets of the
// same base.
func coveredByBase(t *rt.Thread, node pmem.Addr) {
	t.Store64(node+8, 6, taint.None, taint.None)
	t.Store64(node+16, 7, taint.None, taint.None)
	t.Persist(node, 64)
}

func suppressed(t *rt.Thread, root pmem.Addr) {
	//pmvet:ignore unflushed-store -- caller persists
	t.Store64(root+48, 8, taint.None, taint.None)
}
