// Package missinghook seeds violations for the missing-hook analyzer.
package missinghook

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func rawLoad(p *pmem.Pool, addr pmem.Addr) uint64 {
	return p.Load64(addr) // want `raw pmem\.Pool\.Load64 bypasses the rt\.Thread hook API`
}

func rawStore(p *pmem.Pool, id pmem.ThreadID, addr pmem.Addr) {
	p.Store64(id, 0, addr, 1) // want `raw pmem\.Pool\.Store64 bypasses the rt\.Thread hook API`
}

func rawFlush(p *pmem.Pool, id pmem.ThreadID, addr pmem.Addr) {
	p.Flush(id, addr, 8) // want `raw pmem\.Pool\.Flush bypasses the rt\.Thread hook API`
}

func hooked(t *rt.Thread, addr pmem.Addr) uint64 {
	v, _ := t.Load64(addr)
	t.Store64(addr, v+1, taint.None, taint.None)
	t.Persist(addr, 8)
	return v
}

// Metadata queries are not data accesses and stay allowed.
func allowedQuery(p *pmem.Pool, addr pmem.Addr) pmem.WordMeta {
	return p.WordState(addr)
}
