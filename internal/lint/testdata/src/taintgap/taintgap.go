// Package taintgap seeds violations for the taint-gap analyzer.
package taintgap

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

func directGap(t *rt.Thread, root pmem.Addr) {
	c, _ := t.Load64(root)
	t.Store64(root, c+1, taint.None, taint.None) // want `value c \+ 1 derives from the label-dropping load at taintgap\.go:11`
	t.Persist(root, 8)
}

func derivedGap(t *rt.Thread, root pmem.Addr) {
	c, _ := t.Load64(root)
	d := c * 2
	t.Store64(root, d, taint.None, taint.None) // want `value d derives from the label-dropping load at taintgap\.go:17`
	t.Persist(root, 8)
}

func addrGap(t *rt.Thread, root pmem.Addr) {
	p, _ := t.Load64(root)
	t.NTStore64(pmem.Addr(p)+8, 1, taint.None, taint.None) // want `address pmem\.Addr\(p\) \+ 8 derives from the label-dropping load at taintgap\.go:24`
	t.Fence()
}

func propagated(t *rt.Thread, root pmem.Addr) {
	c, lab := t.Load64(root)
	t.Store64(root, c+1, lab, taint.None)
	t.Persist(root, 8)
}

// Recover is exempt: recovery reads persisted, clean state.
func Recover(t *rt.Thread, root pmem.Addr) {
	c, _ := t.Load64(root)
	t.Store64(root, c+1, taint.None, taint.None)
	t.Persist(root, 8)
}
