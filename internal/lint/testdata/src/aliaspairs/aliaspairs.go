// Package aliaspairs exercises the static alias-pair report: reader and
// writer touch the same object through identical address expressions.
package aliaspairs

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/rt"
	"github.com/pmrace-go/pmrace/internal/taint"
)

const fldCount = 16

func reader(t *rt.Thread, root pmem.Addr) uint64 {
	v, _ := t.Load64(root + fldCount)
	return v
}

func writer(t *rt.Thread, root pmem.Addr) {
	t.Store64(root+fldCount, 1, taint.None, taint.None)
	t.Persist(root+fldCount, 8)
}

func unrelated(t *rt.Thread, other pmem.Addr) {
	t.Store64(other+64, 2, taint.None, taint.None)
	t.Persist(other+64, 8)
}
