package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TaintGap reports hand-propagation gaps in the DRAM-side taint plumbing:
// a value read through Thread.Load64/LoadBytes/CAS64 whose taint label was
// discarded (assigned to _), flowing into a later store that passes the
// literal taint.None where that value's (or address's) label belongs.
//
// The runtime's cross-thread "unflushed data passed to other threads"
// detector (DESIGN §5) depends entirely on these hand-threaded labels; a
// dropped label at one load silently breaks the taint chain for every
// downstream store, exactly like a missed propagation edge in the paper's
// DRAM shadow propagation.
//
// Recovery functions are exempt: recovery runs single-threaded over
// already-persisted state, and dropping labels there is the idiomatic way
// to mark recovered values clean.
var TaintGap = &Analyzer{
	Name: "taint-gap",
	Doc: "reports Load-derived values reaching a Store with a literal " +
		"taint.None label after the load's label was discarded, breaking " +
		"the hand-propagated taint chain",
	Run: runTaintGap,
}

func runTaintGap(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Recovery code reads persisted (clean) state; label dropping
			// there is intentional.
			if strings.Contains(fn.Name.Name, "Recover") || strings.HasPrefix(fn.Name.Name, "recover") {
				continue
			}
			checkTaintGap(pass, fn)
		}
	}
	return nil
}

// droppedLoad records where a label-dropping load defined (or redefined) a
// value object.
type droppedLoad struct {
	loadSite string // "file.go:line" of the originating load
}

func checkTaintGap(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// dropped maps value objects whose taint label was discarded to the
	// load that produced them. Built to a fixed point so that derived
	// values (x := c + 1; y := x) inherit the dropped status.
	dropped := map[types.Object]droppedLoad{}

	lhsObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	mentionsDropped := func(e ast.Expr) (droppedLoad, bool) {
		for _, obj := range identsIn(info, e) {
			if d, ok := dropped[obj]; ok {
				return d, true
			}
		}
		return droppedLoad{}, false
	}

	// Pass 1 (to fixed point): seed from label-dropping loads, then
	// propagate through assignments.
	for iter := 0; iter < 8; iter++ {
		changed := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Tuple assignment from a single hook call: c, lab := t.Load64(a)
			// or ok, old, lab := t.CAS64(...).
			if len(as.Rhs) == 1 {
				if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
					h := classifyRTHook(info, call)
					valIdx, labIdx := -1, -1
					switch h.kind {
					case hookLoad:
						valIdx, labIdx = 0, 1
					case hookCAS:
						valIdx, labIdx = 1, 2
					}
					if labIdx >= 0 && labIdx < len(as.Lhs) && isBlank(as.Lhs[labIdx]) {
						if obj := lhsObj(as.Lhs[valIdx]); obj != nil {
							if _, seen := dropped[obj]; !seen {
								p := pass.Fset.Position(call.Pos())
								dropped[obj] = droppedLoad{loadSite: sitePos(p)}
								changed = true
							}
						}
						return true
					}
					if h.kind != hookNone {
						return true
					}
					// Tuple from a non-hook call: if any argument is
					// dropped, conservatively drop all results.
					if len(as.Lhs) > 1 {
						if d, hit := mentionsDropped(call); hit {
							for _, lhs := range as.Lhs {
								if obj := lhsObj(lhs); obj != nil {
									if _, seen := dropped[obj]; !seen {
										dropped[obj] = d
										changed = true
									}
								}
							}
						}
						return true
					}
				}
			}
			// Parallel assignment: propagate per position.
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					d, hit := mentionsDropped(as.Rhs[i])
					if !hit {
						continue
					}
					if obj := lhsObj(as.Lhs[i]); obj != nil {
						if _, seen := dropped[obj]; !seen {
							dropped[obj] = d
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	if len(dropped) == 0 {
		return
	}

	// Pass 2: stores passing literal taint.None for a dropped-derived
	// value or address.
	for _, h := range hookCallsIn(info, fn) {
		switch h.kind {
		case hookStore, hookNTStore, hookCAS:
		default:
			continue
		}
		if h.valLab != nil && isTaintNone(info, h.valLab) {
			if d, hit := mentionsDropped(h.val); hit {
				pass.Reportf(h.pos,
					"%s value %s derives from the label-dropping load at %s but passes taint.None as its value label",
					h.name, exprString(h.val), d.loadSite)
			}
		}
		if h.addrLab != nil && isTaintNone(info, h.addrLab) {
			if d, hit := mentionsDropped(h.addr); hit {
				pass.Reportf(h.pos,
					"%s address %s derives from the label-dropping load at %s but passes taint.None as its address label",
					h.name, exprString(h.addr), d.loadSite)
			}
		}
	}
}
