package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package, the unit every
// analyzer consumes. It corresponds to go/packages.Package restricted to the
// fields the analyzers need.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages without network access: syntax
// comes from go/parser and types from the stdlib source importer, which
// type-checks dependencies from source inside the module (and GOROOT). One
// Loader shares a FileSet and an importer across Load calls so dependency
// packages are checked once.
//
// The source importer resolves module import paths through the go command,
// which consults the module of the process working directory — callers must
// run from inside the repository (cmd/pmvet enforces this by chdir-ing to
// the module root).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader creates a loader with a fresh FileSet.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goListPkg is the subset of `go list -json` output the loader consumes.
type goListPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load resolves go-list patterns (e.g. "./internal/targets/...") to
// packages and type-checks each. Test files are excluded: the analyzers
// check instrumented production code, and _test.go files routinely poke at
// internals in ways the rules are not written for.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var gp goListPkg
		if err := dec.Decode(&gp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if len(gp.GoFiles) == 0 {
			continue
		}
		files := make([]string, 0, len(gp.GoFiles))
		for _, f := range gp.GoFiles {
			files = append(files, filepath.Join(gp.Dir, f))
		}
		pkg, err := l.check(gp.ImportPath, gp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads every non-test .go file of one directory as a package with
// the given import path. Fixture packages live under testdata/ (invisible
// to the go tool, so `go build ./...` never compiles their seeded
// violations) and are loaded through this entry point.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(pkgPath, dir, files)
}

// check parses and type-checks one package from explicit file paths.
func (l *Loader) check(pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   syntax,
		Types:   tpkg,
		Info:    info,
	}, nil
}
