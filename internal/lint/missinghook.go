package lint

import (
	"go/ast"
)

// MissingHook reports direct pmem.Pool data and persistency operations in
// code that should go through the rt.Thread hook API. A raw Pool access is
// invisible to every dynamic detector — no site ID, no taint, no
// interleaving point, no alias coverage — so the access (and any bug on it)
// silently drops out of the detectable set. This is the Go-side equivalent
// of a PM store the paper's LLVM pass failed to instrument.
//
// The runtime packages (internal/rt, internal/pmem, internal/core, ...)
// legitimately layer on the raw Pool API; the cmd/pmvet driver therefore
// runs this analyzer over workload code (internal/targets/..., examples/...)
// only.
var MissingHook = &Analyzer{
	Name: "missing-hook",
	Doc: "reports raw pmem.Pool loads/stores/flushes that bypass the " +
		"rt.Thread hook API and are therefore invisible to the dynamic " +
		"detectors",
	Run: runMissingHook,
}

func runMissingHook(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, raw := isRawPoolAccess(pass.TypesInfo, call); raw {
				pass.Reportf(call.Pos(),
					"raw pmem.Pool.%s bypasses the rt.Thread hook API; the access is invisible to PM race/crash detection",
					method)
			}
			return true
		})
	}
	return nil
}
