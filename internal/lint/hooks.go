package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Import-path suffixes of the two instrumentation-bearing packages. Matched
// by suffix so the analyzers also work on forks or vendored copies of the
// module with a different module path.
const (
	rtPathSuffix   = "internal/rt"
	pmemPathSuffix = "internal/pmem"
)

// hookKind classifies one rt.Thread hook call for the analyzers.
type hookKind int

const (
	hookNone    hookKind = iota
	hookLoad             // Load64, LoadBytes
	hookStore            // Store64, StoreBytes (cached stores: need flush+fence)
	hookNTStore          // NTStore64, NTStoreBytes (durable: need trailing fence)
	hookCAS              // CAS64
	hookFlush            // Flush (needs a later fence)
	hookPersist          // Persist (flush+fence fused)
	hookFence            // Fence
	hookLock             // SpinLock
	hookUnlock           // SpinUnlock
)

// rtHookKinds maps rt.Thread method names to their classification.
var rtHookKinds = map[string]hookKind{
	"Load64":       hookLoad,
	"LoadBytes":    hookLoad,
	"Store64":      hookStore,
	"StoreBytes":   hookStore,
	"NTStore64":    hookNTStore,
	"NTStoreBytes": hookNTStore,
	"CAS64":        hookCAS,
	"Flush":        hookFlush,
	"Persist":      hookPersist,
	"Fence":        hookFence,
	"SpinLock":     hookLock,
	"SpinUnlock":   hookUnlock,
}

// hookCall is one classified rt.Thread hook call with its interesting
// arguments picked out by role.
type hookCall struct {
	kind hookKind
	name string // method name
	call *ast.CallExpr
	pos  token.Pos

	addr    ast.Expr // PM address argument (nil for Fence)
	length  ast.Expr // byte count (Flush/Persist/LoadBytes only)
	val     ast.Expr // stored value (stores and CAS new-value)
	valLab  ast.Expr // taint label of the stored value
	addrLab ast.Expr // taint label of the address computation
}

// methodRecv resolves the receiver of a method call expression, returning
// the defining package path and type name ("", "" for non-methods).
func methodRecv(info *types.Info, sel *ast.SelectorExpr) (pkgPath, typeName, method string) {
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), fn.Name()
}

// classifyRTHook classifies a call expression as an rt.Thread hook call,
// returning hookNone for everything else.
func classifyRTHook(info *types.Info, call *ast.CallExpr) hookCall {
	none := hookCall{kind: hookNone}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return none
	}
	pkgPath, typeName, method := methodRecv(info, sel)
	if typeName != "Thread" || !strings.HasSuffix(pkgPath, rtPathSuffix) {
		return none
	}
	kind, ok := rtHookKinds[method]
	if !ok {
		return none
	}
	h := hookCall{kind: kind, name: method, call: call, pos: call.Pos()}
	arg := func(i int) ast.Expr {
		if i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
	switch kind {
	case hookLoad:
		h.addr = arg(0)
		if method == "LoadBytes" {
			h.length = arg(1)
		}
	case hookStore, hookNTStore:
		h.addr, h.val, h.valLab, h.addrLab = arg(0), arg(1), arg(2), arg(3)
	case hookCAS:
		// CAS64(addr, old, new, valLab, addrLab): new is the stored value.
		h.addr, h.val, h.valLab, h.addrLab = arg(0), arg(2), arg(3), arg(4)
	case hookFlush, hookPersist:
		h.addr, h.length = arg(0), arg(1)
	case hookLock, hookUnlock:
		h.addr = arg(0)
	}
	return h
}

// isRawPoolAccess reports whether call is a direct pmem.Pool data or
// persistency operation — the uninstrumented layer underneath the rt hooks.
var rawPoolMethods = map[string]bool{
	"Load64":            true,
	"LoadBytes":         true,
	"Store64":           true,
	"StoreBytes":        true,
	"NTStore64":         true,
	"NTStoreBytes":      true,
	"CAS64":             true,
	"Flush":             true,
	"Fence":             true,
	"PersistNow":        true,
	"SetShadowLabel":    true,
	"InstrLoad64":       true,
	"InstrLoadBytes":    true,
	"InstrStore64":      true,
	"InstrStoreBytes":   true,
	"InstrNTStore64":    true,
	"InstrNTStoreBytes": true,
	"InstrCAS64":        true,
}

func isRawPoolAccess(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgPath, typeName, method := methodRecv(info, sel)
	if typeName != "Pool" || !strings.HasSuffix(pkgPath, pmemPathSuffix) {
		return "", false
	}
	return method, rawPoolMethods[method]
}

// hookCallsIn collects every rt.Thread hook call inside fn in source order.
// Source order is a deliberate approximation of execution order: the hook
// protocol under analysis (store → flush → fence) is written as straight-line
// sequences in instrumented code, and the approximation's failure modes are
// documented in DESIGN.md §11.
func hookCallsIn(info *types.Info, fn *ast.FuncDecl) []hookCall {
	if fn.Body == nil {
		return nil
	}
	var out []hookCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if h := classifyRTHook(info, call); h.kind != hookNone {
			out = append(out, h)
		}
		return true
	})
	return out
}

// exprString renders an expression in normalized single-spaced Go syntax,
// the key used to compare address expressions across call sites.
func exprString(e ast.Expr) string {
	if e == nil {
		return ""
	}
	return types.ExprString(e)
}

// baseExpr peels an address expression down to its base object: parens are
// unwrapped, additive offset chains keep their leftmost operand, and
// single-argument type conversions (pmem.Addr(x)) are unwrapped to x. The
// result identifies the PM object a store or flush addresses, so that
// `Persist(root, rootSize)` is recognized as covering `root+fldHtOff`.
func baseExpr(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.BinaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB {
				e = x.X
				continue
			}
			return e
		case *ast.CallExpr:
			// Unwrap type conversions only.
			if len(x.Args) == 1 && info != nil {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					e = x.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// baseString is baseExpr rendered for comparison.
func baseString(info *types.Info, e ast.Expr) string {
	return exprString(baseExpr(info, e))
}

// identsIn returns the used objects of every identifier in e.
func identsIn(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// isTaintNone reports whether e is the literal selector taint.None (any
// package named taint).
func isTaintNone(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "None" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Name() == "taint"
}
