package lint

import (
	"go/ast"
	"sort"
)

// AliasReport is the static alias-pair report pmvet emits for the fuzzer.
// Each pair is a (load site, store site) on the same PM object, inferred
// syntactically: two hook calls whose normalized address expressions render
// identically address the same object. This is the static counterpart of
// the runtime's dynamic alias tracking — the fuzzer uses the pairs as seed
// prioritization hints for the PM-aware scheduler before any dynamic
// coverage exists (see DESIGN §11 for the schema contract).
type AliasReport struct {
	// Version is the schema version; consumers must reject versions they
	// do not understand.
	Version int `json:"version"`
	// Packages lists the analyzed package import paths.
	Packages []string `json:"packages"`
	// Pairs is sorted by Object, LoadSite, StoreSite.
	Pairs []AliasPair `json:"pairs"`
}

// AliasPair is one statically inferred load/store pair on a shared object.
// Sites use the runtime site-ID format ("pclht.go:333"), the join key with
// dynamic scheduler entries.
type AliasPair struct {
	// Object is the normalized source rendering of the shared address
	// expression, e.g. "h.root + fldItemCount". Informational: consumers
	// key on the sites.
	Object string `json:"object"`
	// LoadSite / StoreSite are the two access positions in site-ID format.
	LoadSite  string `json:"load_site"`
	StoreSite string `json:"store_site"`
	// LoadFunc / StoreFunc name the enclosing functions, for report
	// readability.
	LoadFunc  string `json:"load_func"`
	StoreFunc string `json:"store_func"`
}

// aliasAccess is one load or store hook call keyed by its address
// expression.
type aliasAccess struct {
	object string
	site   string
	fn     string
}

// BuildAliasReport scans every package for load and store hook calls and
// pairs those whose full address expressions render identically. Pairing is
// per package (the address vocabulary — field offsets, root pointers — is
// package-local) and uses the complete normalized expression rather than
// the base object, trading recall for precision: a spurious pair only skews
// scheduler priorities, but thousands of base-level pairs would drown the
// real ones.
func BuildAliasReport(pkgs []*Package) *AliasReport {
	rep := &AliasReport{Version: 1}
	seen := map[AliasPair]bool{}
	for _, pkg := range pkgs {
		rep.Packages = append(rep.Packages, pkg.PkgPath)
		var loads, stores []aliasAccess
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				for _, h := range hookCallsIn(pkg.Info, fn) {
					acc := aliasAccess{
						object: exprString(h.addr),
						site:   sitePos(pkg.Fset.Position(h.pos)),
						fn:     fn.Name.Name,
					}
					switch h.kind {
					case hookLoad:
						loads = append(loads, acc)
					case hookStore, hookNTStore, hookCAS:
						stores = append(stores, acc)
					}
				}
			}
		}
		for _, ld := range loads {
			for _, st := range stores {
				if ld.object != st.object || ld.site == st.site {
					continue
				}
				p := AliasPair{
					Object:    ld.object,
					LoadSite:  ld.site,
					StoreSite: st.site,
					LoadFunc:  ld.fn,
					StoreFunc: st.fn,
				}
				if !seen[p] {
					seen[p] = true
					rep.Pairs = append(rep.Pairs, p)
				}
			}
		}
	}
	sort.Strings(rep.Packages)
	sort.Slice(rep.Pairs, func(i, j int) bool {
		a, b := rep.Pairs[i], rep.Pairs[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.LoadSite != b.LoadSite {
			return a.LoadSite < b.LoadSite
		}
		return a.StoreSite < b.StoreSite
	})
	return rep
}
