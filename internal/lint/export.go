package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the shared-vocabulary surface between pmvet and the pminstr
// instrumentation generator (internal/instr): the generator classifies PM
// accesses with exactly the tables the analyzers check, so the two tools can
// never disagree about what counts as a persistent-memory operation. The
// tables themselves stay unexported (hooks.go); only read access is exported.

// HookKind is the exported alias of the analyzers' hook classification.
type HookKind = hookKind

// Exported hook kinds. HookNone classifies non-hooks.
const (
	HookNone    = hookNone
	HookLoad    = hookLoad
	HookStore   = hookStore
	HookNTStore = hookNTStore
	HookCAS     = hookCAS
	HookFlush   = hookFlush
	HookPersist = hookPersist
	HookFence   = hookFence
	HookLock    = hookLock
	HookUnlock  = hookUnlock
)

// ThreadHookKind classifies an rt.Thread hook method name (the same names
// the pmplain.Mem dialect mirrors), returning HookNone for non-hooks.
func ThreadHookKind(method string) HookKind { return rtHookKinds[method] }

// ThreadHookNames returns every rt.Thread hook method name, sorted, for
// tools that enumerate the full hook vocabulary.
func ThreadHookNames() []string {
	out := make([]string, 0, len(rtHookKinds))
	for name := range rtHookKinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsRawPoolMethod reports whether name is a pmem.Pool data or persistency
// method — the uninstrumented layer pmvet's missing-hook analyzer flags.
func IsRawPoolMethod(name string) bool { return rawPoolMethods[name] }

// MethodRecv resolves the receiver of a method call's selector, returning
// the defining package path, type name and method name ("", "", "" for
// non-methods).
func MethodRecv(info *types.Info, sel *ast.SelectorExpr) (pkgPath, typeName, method string) {
	return methodRecv(info, sel)
}
