package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/pmrace-go/pmrace/internal/lint"
)

// sharedLoader is reused across tests so dependency packages (rt, pmem,
// taint, ...) are type-checked from source once, not once per fixture.
var sharedLoader = lint.NewLoader()

const fixtureModule = "github.com/pmrace-go/pmrace/internal/lint/testdata/src/"

func loadFixture(t *testing.T, name string) *lint.Package {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", name), fixtureModule+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe matches the analysistest expectation convention used in fixtures:
// a trailing comment `// want `regex“ on the line the diagnostic must hit.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// collectWants maps "file.go:line" to the expected message regexp.
func collectWants(t *testing.T, dir string) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", e.Name(), line, err)
			}
			wants[fmt.Sprintf("%s:%d", e.Name(), line)] = re
		}
		f.Close()
	}
	return wants
}

// runFixture asserts the analyzer reports exactly the fixture's `// want`
// expectations, at the expected file:line positions.
func runFixture(t *testing.T, analyzerName, fixture string) {
	t.Helper()
	analyzers, err := lint.ByName(analyzerName)
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, fixture)
	findings, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg.Dir)
	matched := map[string]bool{}
	for _, f := range findings {
		site := f.Site()
		re, ok := wants[site]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !re.MatchString(f.Message) {
			t.Errorf("%s: message %q does not match want %q", site, f.Message, re)
		}
		matched[site] = true
	}
	for site, re := range wants {
		if !matched[site] {
			t.Errorf("%s: expected diagnostic matching %q, got none", site, re)
		}
	}
}

func TestUnflushedStore(t *testing.T) { runFixture(t, "unflushed-store", "unflushed") }
func TestMissingHook(t *testing.T)    { runFixture(t, "missing-hook", "missinghook") }
func TestTaintGap(t *testing.T)       { runFixture(t, "taint-gap", "taintgap") }
func TestFencePairing(t *testing.T)   { runFixture(t, "fence-pairing", "fencepair") }

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 4, nil", len(all), err)
	}
	two, err := lint.ByName("taint-gap, fence-pairing")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName two = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := lint.ByName("no-such-analyzer"); err == nil {
		t.Fatal("ByName(no-such-analyzer): want error, got nil")
	}
}

func TestAliasReport(t *testing.T) {
	pkg := loadFixture(t, "aliaspairs")
	rep := lint.BuildAliasReport([]*lint.Package{pkg})
	if rep.Version != 1 {
		t.Fatalf("version = %d, want 1", rep.Version)
	}
	var got *lint.AliasPair
	for i := range rep.Pairs {
		p := &rep.Pairs[i]
		if p.Object == "root + fldCount" {
			got = p
		}
		if strings.HasPrefix(p.Object, "other") {
			t.Errorf("unrelated store paired: %+v", *p)
		}
	}
	if got == nil {
		t.Fatalf("no pair for root + fldCount in %+v", rep.Pairs)
	}
	if got.LoadSite != "aliaspairs.go:14" || got.StoreSite != "aliaspairs.go:19" {
		t.Errorf("pair sites = %s / %s, want aliaspairs.go:14 / aliaspairs.go:19", got.LoadSite, got.StoreSite)
	}
	if got.LoadFunc != "reader" || got.StoreFunc != "writer" {
		t.Errorf("pair funcs = %s / %s, want reader / writer", got.LoadFunc, got.StoreFunc)
	}
}

// TestTargetsClean pins the triage of this repo's instrumented workloads:
// every true positive pmvet found has been fixed, and every intentional
// (seeded-bug or rebuilt-on-recovery) site carries a //pmvet:ignore
// justification. A regression here means new instrumented code shipped
// with an instrumentation gap.
func TestTargetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole target tree from source")
	}
	pkgs, err := sharedLoader.Load("./../targets/...", "./../../examples/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("pmvet finding in shipped target: %s", f)
	}
}
