package lint

import (
	"go/ast"
)

// FencePairing reports two persistency-ordering mistakes around the
// non-temporal and flush primitives:
//
//  1. an NTStore64/NTStoreBytes with no subsequent Fence (or Persist) in
//     the same function — NT stores bypass the cache and are durable
//     immediately, but without a fence their ordering against later stores
//     is unconstrained, which is exactly the window the runtime's
//     crash-image generator explores;
//  2. a duplicate Flush of the same object with no intervening store or
//     fence — the second flush is dead and usually indicates a
//     copy-paste protocol error (the paper's "extra flush" performance
//     bug class).
var FencePairing = &Analyzer{
	Name: "fence-pairing",
	Doc: "reports NT stores with no subsequent Fence in the function, and " +
		"duplicate flushes of the same object with no intervening store or " +
		"fence",
	Run: runFencePairing,
}

func runFencePairing(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkFencePairing(pass, fn)
		}
	}
	return nil
}

func checkFencePairing(pass *Pass, fn *ast.FuncDecl) {
	calls := hookCallsIn(pass.TypesInfo, fn)

	// NT store with no later fence.
	for i, h := range calls {
		if h.kind != hookNTStore {
			continue
		}
		fenced := false
		for j := i + 1; j < len(calls); j++ {
			if k := calls[j].kind; k == hookFence || k == hookPersist {
				fenced = true
				break
			}
		}
		if !fenced {
			pass.Reportf(h.pos,
				"%s to %s has no subsequent Fence in the function; NT store ordering is unconstrained until a fence",
				h.name, exprString(h.addr))
		}
	}

	// Duplicate flush: a second Flush of the same base object while the
	// first is still "live" (no intervening fence or store to that object).
	live := map[string]bool{}
	for _, h := range calls {
		switch h.kind {
		case hookFlush:
			base := baseString(pass.TypesInfo, h.addr)
			if live[base] {
				pass.Reportf(h.pos,
					"duplicate Flush of %s with no intervening store or fence",
					exprString(h.addr))
			}
			live[base] = true
		case hookFence:
			live = map[string]bool{}
		case hookPersist:
			// Persist fences, clearing all pending flushes.
			live = map[string]bool{}
		case hookStore, hookNTStore, hookCAS:
			delete(live, baseString(pass.TypesInfo, h.addr))
		}
	}
}
