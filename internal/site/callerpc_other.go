//go:build !amd64

package site

// ReturnPC is the portable stub: it reports no PC, making VerifyReturnPC
// false so hook code takes the runtime.Callers path on architectures without
// the frame-pointer fast path.
func ReturnPC() uintptr { return 0 }
