package site

import (
	"strings"
	"sync"
	"testing"
)

// hookLike stands in for a runtime hook: its caller is the "instrumented
// instruction".
func hookLike() ID { return Here(0) }

func TestHereIdentifiesCaller(t *testing.T) {
	id := hookLike()
	info := Lookup(id)
	if info.File != "site_test.go" {
		t.Fatalf("file = %q, want site_test.go", info.File)
	}
	if info.Line == 0 {
		t.Fatalf("line must be nonzero")
	}
	if !strings.Contains(info.Function, "TestHereIdentifiesCaller") {
		t.Fatalf("function = %q, want the test function", info.Function)
	}
}

func TestSameCallSiteSameID(t *testing.T) {
	var a, b ID
	for i := 0; i < 2; i++ {
		id := hookLike()
		if i == 0 {
			a = id
		} else {
			b = id
		}
	}
	if a != b {
		t.Fatalf("same call site produced different IDs %d and %d", a, b)
	}
}

func TestDifferentCallSitesDifferentIDs(t *testing.T) {
	a := hookLike()
	b := hookLike()
	if a == b {
		t.Fatalf("distinct call sites must have distinct IDs")
	}
}

func TestNamedStable(t *testing.T) {
	a := Named("synthetic-store")
	b := Named("synthetic-store")
	c := Named("other")
	if a != b {
		t.Fatalf("Named must be stable: %d != %d", a, b)
	}
	if a == c {
		t.Fatalf("distinct names must get distinct IDs")
	}
	if Lookup(a).File != "synthetic-store" {
		t.Fatalf("Lookup(Named) = %+v", Lookup(a))
	}
}

func TestLookupUnknown(t *testing.T) {
	if got := Lookup(Unknown); got != (Info{}) {
		t.Fatalf("Lookup(Unknown) = %+v, want zero", got)
	}
	if got := Lookup(1 << 30); got != (Info{}) {
		t.Fatalf("out-of-range lookup = %+v, want zero", got)
	}
}

func TestInfoString(t *testing.T) {
	if got := (Info{File: "a.go", Line: 12}).String(); got != "a.go:12" {
		t.Fatalf("String = %q", got)
	}
	if got := (Info{}).String(); got != "<unknown>" {
		t.Fatalf("zero Info String = %q", got)
	}
}

func TestRegistryCount(t *testing.T) {
	r := NewRegistry()
	if r.Count() != 0 {
		t.Fatalf("fresh registry count = %d", r.Count())
	}
	r.Named("x")
	r.Named("x")
	r.Named("y")
	if r.Count() != 2 {
		t.Fatalf("count = %d, want 2", r.Count())
	}
}

func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	ids := make([]ID, 64)
	for g := range ids {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = r.Named("shared")
		}(g)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("concurrent Named returned inconsistent IDs")
		}
	}
}

func BenchmarkHereCached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hookLike()
	}
}
