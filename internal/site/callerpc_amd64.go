//go:build amd64

package site

// ReturnPC returns the return PC of its caller: the program counter just past
// the call instruction in the caller's caller. Hook implementations call it
// directly from the exported hook body, so the returned PC identifies the
// instrumented instruction in the target — the same value runtime.Callers
// would report for that frame, at a fraction of the cost (one frame-pointer
// load instead of a stack unwind).
//
// The caller must be a real stack frame: the hook must be marked
// //go:noinline, or inlining would make ReturnPC's BP walk land one frame too
// high. VerifyReturnPC checks the mechanism at startup; callers fall back to
// runtime.Callers when it reports false.
func ReturnPC() uintptr
