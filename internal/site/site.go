package site

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
)

// ID identifies one instrumented instruction (hook call site).
type ID uint32

// Unknown is the zero site, used when a location cannot be resolved.
const Unknown ID = 0

// Info describes a resolved call site.
type Info struct {
	File     string // base file name, e.g. "pclht.go"
	Line     int
	Function string // short function name, e.g. "Resize"
}

// String formats the site like the paper's bug tables: "pclht.go:785".
func (i Info) String() string {
	if i.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", i.File, i.Line)
}

// Registry maps program counters to stable site IDs. The zero value is not
// usable; create registries with NewRegistry. A process-wide registry is
// exposed through the package-level functions so that site IDs remain stable
// across fuzz campaigns within one run.
//
// The steady-state read path is lock-free: lookups load an atomic pointer to
// an immutable PC→ID map (and an immutable Info slice), so hook calls from
// concurrent fuzzing workers never serialize on the registry once their call
// sites are known. Registration of a new site copies the map under mu and
// publishes the copy (copy-on-write); sites are registered once per call site
// per process, so the write path is cold.
type Registry struct {
	mu    sync.Mutex                     // serializes writers (copy-on-write)
	byPC  atomic.Pointer[map[uintptr]ID] // immutable published map
	byKey map[string]ID                  // slow path only, guarded by mu
	infos atomic.Pointer[[]Info]         // immutable published slice; index = ID
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{byKey: make(map[string]ID)}
	pcs := make(map[uintptr]ID)
	infos := make([]Info, 1) // 0 reserved for Unknown
	r.byPC.Store(&pcs)
	r.infos.Store(&infos)
	return r
}

var global = NewRegistry()

// Here resolves the caller's caller (adjusted by skip) to a site ID using the
// global registry. skip follows runtime.Callers conventions relative to the
// caller of Here: skip 0 identifies the direct caller of the function calling
// Here.
func Here(skip int) ID { return global.Here(skip + 2) }

// Lookup returns the Info recorded for a global-registry site ID.
func Lookup(id ID) Info { return global.Lookup(id) }

// Named returns a stable global-registry ID for a symbolic location, used by
// tests and synthetic workloads that have no meaningful program counter.
func Named(name string) ID { return global.Named(name) }

// Here resolves the caller at the given skip depth to a stable ID.
func (r *Registry) Here(skip int) ID {
	var pcs [1]uintptr
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return Unknown
	}
	return r.ResolvePC(pcs[0])
}

// ResolvePC returns the stable ID for a program counter captured with
// runtime.Callers, registering it on first sight. The hit path is lock-free.
func (r *Registry) ResolvePC(pc uintptr) ID {
	if id, ok := (*r.byPC.Load())[pc]; ok {
		return id
	}
	return r.registerPC(pc)
}

// registerPC is the cold path of ResolvePC: symbolize the PC and publish a
// new immutable map that includes it.
func (r *Registry) registerPC(pc uintptr) ID {
	// Resolve outside the lock: CallersFrames may be slow.
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	info := Info{
		File:     filepath.Base(frame.File),
		Line:     frame.Line,
		Function: shortFunc(frame.Function),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := (*r.byPC.Load())[pc]; ok {
		return id
	}
	// Two distinct PCs can resolve to the same file:line (inlining);
	// reuse the existing ID so coverage and dedup stay stable.
	key := fmt.Sprintf("%s:%d", frame.File, frame.Line)
	id, known := r.byKey[key]
	if !known {
		id = r.appendInfoLocked(info)
		r.byKey[key] = id
	}
	r.publishPCLocked(pc, id)
	return id
}

// publishPCLocked copies the current PC map, adds pc→id and publishes the
// copy. Callers hold mu.
func (r *Registry) publishPCLocked(pc uintptr, id ID) {
	old := *r.byPC.Load()
	next := make(map[uintptr]ID, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[pc] = id
	r.byPC.Store(&next)
}

// appendInfoLocked publishes a new immutable Info slice with info appended
// and returns its ID. Callers hold mu.
func (r *Registry) appendInfoLocked(info Info) ID {
	old := *r.infos.Load()
	next := make([]Info, len(old)+1)
	copy(next, old)
	next[len(old)] = info
	r.infos.Store(&next)
	return ID(len(old))
}

// Named returns a stable ID for a symbolic name.
func (r *Registry) Named(name string) ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byKey[name]; ok {
		return id
	}
	id := r.appendInfoLocked(Info{File: name, Line: 0, Function: name})
	r.byKey[name] = id
	return id
}

// Lookup returns the Info recorded for id, or a zero Info for Unknown or
// out-of-range IDs. Lookup is lock-free.
func (r *Registry) Lookup(id ID) Info {
	infos := *r.infos.Load()
	if id == Unknown || int(id) >= len(infos) {
		return Info{}
	}
	return infos[id]
}

// Count returns the number of registered sites.
func (r *Registry) Count() int {
	return len(*r.infos.Load()) - 1
}

// cacheSize is the number of direct-mapped entries in a Cache. Instrumented
// targets have at most a few hundred distinct hook call sites; 256 entries
// keep the steady-state miss rate near zero.
const cacheSize = 256

// Cache is a small direct-mapped PC→ID cache in front of a Registry. Each
// simulated thread owns one, so steady-state hook calls resolve their site ID
// without touching the shared registry at all — not even its lock-free map
// load. A Cache is not safe for concurrent use; it is as thread-local as the
// rt.Thread that embeds it.
type Cache struct {
	reg *Registry
	pcs [cacheSize]uintptr
	ids [cacheSize]ID
}

// NewCache creates a PC cache over the global registry.
func NewCache() *Cache { return &Cache{reg: global} }

// NewCacheFor creates a PC cache over an explicit registry.
func NewCacheFor(r *Registry) *Cache { return &Cache{reg: r} }

// Here resolves the caller at the given skip depth to a stable ID, consulting
// the cache first. skip follows the same convention as the package-level
// Here: skip 0 identifies the direct caller of the function calling Here.
func (c *Cache) Here(skip int) ID {
	var pcs [1]uintptr
	if runtime.Callers(skip+3, pcs[:]) == 0 {
		return Unknown
	}
	return c.ForPC(pcs[0])
}

// ForPC resolves a raw return PC (from runtime.Callers or ReturnPC) to a
// stable ID through the cache. Both capture paths produce the same PC value
// for a given call site, so they share cache slots and registry entries.
func (c *Cache) ForPC(pc uintptr) ID {
	// Return PCs are instruction-aligned; drop the low bits so adjacent
	// call sites spread over distinct slots.
	slot := (pc >> 3) % cacheSize
	if c.pcs[slot] == pc {
		return c.ids[slot]
	}
	id := c.reg.ResolvePC(pc)
	c.pcs[slot] = pc
	c.ids[slot] = id
	return id
}

// returnPCProbe compares the two caller-PC capture mechanisms from one frame:
// the frame-pointer walk of ReturnPC and the runtime.Callers unwind (skip 2 =
// the caller of this function, the same frame ReturnPC reports). It must not
// be inlined — ReturnPC needs a real stack frame to walk out of.
//
//go:noinline
func returnPCProbe() (fp, unwind uintptr) {
	var pcs [1]uintptr
	if runtime.Callers(2, pcs[:]) == 0 {
		return 0, 1
	}
	return ReturnPC(), pcs[0]
}

// VerifyReturnPC reports whether the frame-pointer caller-PC fast path works
// in this build: ReturnPC must agree exactly with runtime.Callers. It returns
// false on architectures without the assembly implementation and on any build
// whose frame layout the walk does not match, in which case callers must keep
// using runtime.Callers.
func VerifyReturnPC() bool {
	fp, unwind := returnPCProbe()
	return fp != 0 && fp == unwind
}

func shortFunc(fn string) string {
	for i := len(fn) - 1; i >= 0; i-- {
		if fn[i] == '/' {
			return fn[i+1:]
		}
	}
	return fn
}
