// Package site assigns stable integer identifiers to instrumentation call
// sites. It replaces the unique instruction IDs that PMRace's LLVM pass
// assigns at compile time (paper §4.2.1): in this reproduction, instrumented
// instructions are calls into the runtime hook API, and the hook resolves its
// caller's program counter to a site ID the first time it is seen. Site IDs
// feed the PM alias pair coverage metric and appear in bug reports as
// file:line locations, mirroring the "Write code"/"Read code" columns of the
// paper's Table 2.
package site

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
)

// ID identifies one instrumented instruction (hook call site).
type ID uint32

// Unknown is the zero site, used when a location cannot be resolved.
const Unknown ID = 0

// Info describes a resolved call site.
type Info struct {
	File     string // base file name, e.g. "pclht.go"
	Line     int
	Function string // short function name, e.g. "Resize"
}

// String formats the site like the paper's bug tables: "pclht.go:785".
func (i Info) String() string {
	if i.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", i.File, i.Line)
}

// Registry maps program counters to stable site IDs. The zero value is not
// usable; create registries with NewRegistry. A process-wide registry is
// exposed through the package-level functions so that site IDs remain stable
// across fuzz campaigns within one run.
type Registry struct {
	mu    sync.Mutex
	byPC  map[uintptr]ID
	byKey map[string]ID
	infos []Info // index = ID; 0 reserved for Unknown
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byPC:  make(map[uintptr]ID),
		byKey: make(map[string]ID),
		infos: make([]Info, 1),
	}
}

var global = NewRegistry()

// Here resolves the caller's caller (adjusted by skip) to a site ID using the
// global registry. skip follows runtime.Callers conventions relative to the
// caller of Here: skip 0 identifies the direct caller of the function calling
// Here.
func Here(skip int) ID { return global.Here(skip + 2) }

// Lookup returns the Info recorded for a global-registry site ID.
func Lookup(id ID) Info { return global.Lookup(id) }

// Named returns a stable global-registry ID for a symbolic location, used by
// tests and synthetic workloads that have no meaningful program counter.
func Named(name string) ID { return global.Named(name) }

// Here resolves the caller at the given skip depth to a stable ID.
func (r *Registry) Here(skip int) ID {
	var pcs [1]uintptr
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return Unknown
	}
	pc := pcs[0]
	r.mu.Lock()
	if id, ok := r.byPC[pc]; ok {
		r.mu.Unlock()
		return id
	}
	r.mu.Unlock()
	// Resolve outside the lock: CallersFrames may be slow.
	frames := runtime.CallersFrames(pcs[:])
	frame, _ := frames.Next()
	info := Info{
		File:     filepath.Base(frame.File),
		Line:     frame.Line,
		Function: shortFunc(frame.Function),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byPC[pc]; ok {
		return id
	}
	// Two distinct PCs can resolve to the same file:line (inlining);
	// reuse the existing ID so coverage and dedup stay stable.
	key := fmt.Sprintf("%s:%d", frame.File, frame.Line)
	if id, ok := r.byKey[key]; ok {
		r.byPC[pc] = id
		return id
	}
	id := ID(len(r.infos))
	r.infos = append(r.infos, info)
	r.byPC[pc] = id
	r.byKey[key] = id
	return id
}

// Named returns a stable ID for a symbolic name.
func (r *Registry) Named(name string) ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byKey[name]; ok {
		return id
	}
	id := ID(len(r.infos))
	r.infos = append(r.infos, Info{File: name, Line: 0, Function: name})
	r.byKey[name] = id
	return id
}

// Lookup returns the Info recorded for id, or a zero Info for Unknown or
// out-of-range IDs.
func (r *Registry) Lookup(id ID) Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == Unknown || int(id) >= len(r.infos) {
		return Info{}
	}
	return r.infos[id]
}

// Count returns the number of registered sites.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.infos) - 1
}

func shortFunc(fn string) string {
	for i := len(fn) - 1; i >= 0; i-- {
		if fn[i] == '/' {
			return fn[i+1:]
		}
	}
	return fn
}
