//go:build amd64

#include "textflag.h"

// func ReturnPC() uintptr
//
// Returns the return PC of the function that calls ReturnPC — the program
// counter just past the call instruction in that function's caller. The Go
// compiler maintains frame pointers on amd64: at entry the callee-saved BP
// register still holds the caller's frame pointer, which points at the
// caller's saved-BP slot, with the caller's own return address in the word
// above it. One dependent load replaces the ~100ns runtime.Callers unwind on
// the instrumented-access hot path.
//
// NOSPLIT with a zero frame: no prologue is emitted, so BP is untouched and
// still belongs to the caller when the load executes.
TEXT ·ReturnPC(SB), NOSPLIT, $0-8
	MOVQ	8(BP), AX
	MOVQ	AX, ret+0(FP)
	RET
