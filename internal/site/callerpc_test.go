package site

import "testing"

// fpHook mimics an instrumented hook: resolve the caller's call site through
// both capture paths from the same frame. Must stay noinline like real hooks.
//
//go:noinline
func fpHook(c *Cache) (fast, slow ID) {
	fast = c.ForPC(ReturnPC())
	slow = c.Here(0)
	return fast, slow
}

func TestVerifyReturnPC(t *testing.T) {
	if !VerifyReturnPC() {
		t.Skip("frame-pointer fast path unavailable on this build")
	}
}

// TestReturnPCMatchesRuntimeCallers checks that the assembly frame-pointer
// walk and runtime.Callers resolve one call site to the same registry ID —
// the invariant that lets coverage, dedup keys and bug fingerprints stay
// identical whichever capture path a build uses.
func TestReturnPCMatchesRuntimeCallers(t *testing.T) {
	if !VerifyReturnPC() {
		t.Skip("frame-pointer fast path unavailable on this build")
	}
	c := NewCacheFor(NewRegistry())
	var first ID
	// Repeated calls from one site: iteration 0 exercises the registry cold
	// path, the rest must hit the cache and keep resolving identically.
	for i := 0; i < 3; i++ {
		fast, slow := fpHook(c)
		if fast == Unknown {
			t.Fatal("fast path resolved to Unknown")
		}
		if fast != slow {
			t.Fatalf("ForPC(ReturnPC()) = %d, Here(0) = %d: capture paths disagree", fast, slow)
		}
		if i == 0 {
			first = fast
		} else if fast != first {
			t.Fatalf("iteration %d resolved to %d, want %d", i, fast, first)
		}
	}
}
