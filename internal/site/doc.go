// Package site assigns stable integer identifiers to instrumentation call
// sites. It replaces the unique instruction IDs that PMRace's LLVM pass
// assigns at compile time (paper §4.2.1): in this reproduction, instrumented
// instructions are calls into the runtime hook API, and the hook resolves its
// caller's program counter to a site ID the first time it is seen. Site IDs
// feed the PM alias pair coverage metric and appear in bug reports as
// file:line locations, mirroring the "Write code"/"Read code" columns of the
// paper's Table 2.
package site
