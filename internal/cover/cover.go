// Package cover implements the two coverage metrics PMRace feeds back into
// fuzzing (paper §4.2.1): conventional branch (edge) coverage and the novel
// PM alias pair coverage. A PM alias pair is two back-to-back PM accesses to
// the same address by different threads, identified by the instruction site
// and persistency state of each access. Both metrics are kept in fixed-size
// bitmaps, mirroring AFL-style shared-memory coverage maps.
package cover

import "sync"

// MapSize is the number of bits in each coverage bitmap.
const MapSize = 1 << 16

// Bitmap is a fixed-size coverage bitmap safe for concurrent use.
type Bitmap struct {
	mu   sync.Mutex
	bits [MapSize / 8]byte
	n    int
}

// NewBitmap creates an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Set marks the bit selected by hash and reports whether it was previously
// unset.
func (b *Bitmap) Set(hash uint64) bool {
	idx := hash % MapSize
	byteIdx, mask := idx/8, byte(1)<<(idx%8)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bits[byteIdx]&mask != 0 {
		return false
	}
	b.bits[byteIdx] |= mask
	b.n++
	return true
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Merge ORs other into b and returns how many bits were newly set in b.
func (b *Bitmap) Merge(other *Bitmap) int {
	other.mu.Lock()
	src := other.bits
	other.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	newBits := 0
	for i := range src {
		diff := src[i] &^ b.bits[i]
		if diff == 0 {
			continue
		}
		b.bits[i] |= diff
		for ; diff != 0; diff &= diff - 1 {
			newBits++
		}
	}
	b.n += newBits
	return newBits
}

// Reset clears the bitmap.
func (b *Bitmap) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bits = [MapSize / 8]byte{}
	b.n = 0
}

// Coverage bundles the two PMRace feedback metrics.
type Coverage struct {
	// Branch is conventional edge coverage over instrumented branch
	// points.
	Branch *Bitmap
	// Alias is PM alias pair coverage over cross-thread access pairs.
	Alias *Bitmap
}

// New creates empty coverage maps.
func New() *Coverage {
	return &Coverage{Branch: NewBitmap(), Alias: NewBitmap()}
}

// Merge ORs other into c and returns the total number of newly set bits
// across both maps.
func (c *Coverage) Merge(other *Coverage) int {
	return c.Branch.Merge(other.Branch) + c.Alias.Merge(other.Alias)
}

// Counts returns the set-bit counts of the branch and alias maps.
func (c *Coverage) Counts() (branch, alias int) {
	return c.Branch.Count(), c.Alias.Count()
}

// Reset clears both maps.
func (c *Coverage) Reset() {
	c.Branch.Reset()
	c.Alias.Reset()
}

// EdgeHash hashes a control-flow edge between two branch sites, AFL-style:
// the previous location is shifted so that A->B and B->A map to different
// bits.
func EdgeHash(prev, cur uint32) uint64 {
	return mix(uint64(prev)<<17 ^ uint64(cur))
}

// AliasHash hashes a PM alias pair: two back-to-back accesses to the same
// address by different threads. Each access contributes its instruction site
// and persistency state (paper: the (I, P, T) triple). Concrete thread IDs
// are deliberately excluded from the hash — the T components only impose the
// cross-thread constraint Tx != Ty, and hashing raw IDs would make coverage
// depend on arbitrary thread numbering across campaigns.
func AliasHash(prevSite uint32, prevDirty bool, curSite uint32, curDirty bool) uint64 {
	h := uint64(prevSite)<<33 ^ uint64(curSite)<<2
	if prevDirty {
		h ^= 1 << 1
	}
	if curDirty {
		h ^= 1
	}
	return mix(h)
}

// mix is a 64-bit finalizer (splitmix64) spreading input bits across the map.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
