package cover

import (
	"math/bits"
	"sync/atomic"
)

// MapSize is the number of bits in each coverage bitmap.
const MapSize = 1 << 16

// wordBits is the width of one bitmap word.
const wordBits = 64

// Bitmap is a fixed-size coverage bitmap safe for concurrent use. The hot
// path (Set) is lock-free: the bitmap is an array of atomic 64-bit words and
// a bit is raised with a compare-and-swap loop, so coverage recording from
// concurrent fuzzing workers and driver threads never contends on a mutex.
type Bitmap struct {
	words [MapSize / wordBits]atomic.Uint64
	// summary has one bit per data word, set once the word is non-zero.
	// Coverage bitmaps are sparse (an execution touches a few hundred bits
	// of 64Ki), so Merge and Hash walk the 16 summary words and skip the
	// zero runs instead of loading all 1024 data words. A summary bit is
	// raised after its data word becomes non-zero: a completed Set is
	// always visible to a later Merge, and a Set racing a Merge may land in
	// either side of it — the same linearization Merge already allows.
	summary [MapSize / wordBits / wordBits]atomic.Uint64
	n       atomic.Int64
}

// NewBitmap creates an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Set marks the bit selected by hash and reports whether it was previously
// unset.
func (b *Bitmap) Set(hash uint64) bool {
	idx := hash % MapSize
	wi := idx / wordBits
	w := &b.words[wi]
	mask := uint64(1) << (idx % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			// The CAS makes exactly one caller the setter of this
			// bit, so the counter stays exact under concurrency.
			if old == 0 {
				b.markSummary(wi)
			}
			b.n.Add(1)
			return true
		}
	}
}

// markSummary raises the summary bit for data word wi.
func (b *Bitmap) markSummary(wi uint64) {
	s := &b.summary[wi/wordBits]
	mask := uint64(1) << (wi % wordBits)
	for {
		old := s.Load()
		if old&mask != 0 || s.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return int(b.n.Load()) }

// Merge ORs other into b and returns how many bits were newly set in b. It
// walks the set bits of other's summary words and skips the zero runs, so
// the cost scales with the source bitmap's population rather than the map
// size. Merge does not allocate.
func (b *Bitmap) Merge(other *Bitmap) int {
	newBits := 0
	for si := range other.summary {
		sum := other.summary[si].Load()
		base := uint64(si) * wordBits
		for sum != 0 {
			k := uint64(bits.TrailingZeros64(sum))
			sum &^= 1 << k
			i := base + k
			src := other.words[i].Load()
			if src == 0 {
				continue
			}
			w := &b.words[i]
			for {
				old := w.Load()
				diff := src &^ old
				if diff == 0 {
					break
				}
				if w.CompareAndSwap(old, old|diff) {
					if old == 0 {
						b.markSummary(i)
					}
					newBits += bits.OnesCount64(diff)
					break
				}
			}
		}
	}
	b.n.Add(int64(newBits))
	return newBits
}

// Hash folds the bitmap's contents into one 64-bit value: equal bit sets
// produce equal hashes regardless of how (Set vs Merge, in what order) the
// bits were raised. The scheduler's interleaving-equivalence pruning uses it
// as the alias-coverage component of an execution's outcome signature. Like
// Merge it skips zero runs through the summary.
func (b *Bitmap) Hash() uint64 {
	h := uint64(0)
	for si := range b.summary {
		sum := b.summary[si].Load()
		base := uint64(si) * wordBits
		for sum != 0 {
			k := uint64(bits.TrailingZeros64(sum))
			sum &^= 1 << k
			w := b.words[base+k].Load()
			if w == 0 {
				continue
			}
			// XOR of per-word mixes: order-independent, position-aware.
			h ^= mix(w ^ (base+k+1)*0x9e3779b97f4a7c15)
		}
	}
	return h
}

// Reset clears the bitmap. Reset is not atomic with respect to concurrent
// Set/Merge calls; callers reset only between executions.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i].Store(0)
	}
	for i := range b.summary {
		b.summary[i].Store(0)
	}
	b.n.Store(0)
}

// Coverage bundles the two PMRace feedback metrics.
type Coverage struct {
	// Branch is conventional edge coverage over instrumented branch
	// points.
	Branch *Bitmap
	// Alias is PM alias pair coverage over cross-thread access pairs.
	Alias *Bitmap
}

// New creates empty coverage maps.
func New() *Coverage {
	return &Coverage{Branch: NewBitmap(), Alias: NewBitmap()}
}

// Merge ORs other into c and returns the total number of newly set bits
// across both maps.
func (c *Coverage) Merge(other *Coverage) int {
	return c.Branch.Merge(other.Branch) + c.Alias.Merge(other.Alias)
}

// Counts returns the set-bit counts of the branch and alias maps.
func (c *Coverage) Counts() (branch, alias int) {
	return c.Branch.Count(), c.Alias.Count()
}

// Reset clears both maps.
func (c *Coverage) Reset() {
	c.Branch.Reset()
	c.Alias.Reset()
}

// EdgeHash hashes a control-flow edge between two branch sites, AFL-style:
// the previous location is shifted so that A->B and B->A map to different
// bits.
func EdgeHash(prev, cur uint32) uint64 {
	return mix(uint64(prev)<<17 ^ uint64(cur))
}

// AliasHash hashes a PM alias pair: two back-to-back accesses to the same
// address by different threads. Each access contributes its instruction site
// and persistency state (paper: the (I, P, T) triple). Concrete thread IDs
// are deliberately excluded from the hash — the T components only impose the
// cross-thread constraint Tx != Ty, and hashing raw IDs would make coverage
// depend on arbitrary thread numbering across campaigns.
func AliasHash(prevSite uint32, prevDirty bool, curSite uint32, curDirty bool) uint64 {
	h := uint64(prevSite)<<33 ^ uint64(curSite)<<2
	if prevDirty {
		h ^= 1 << 1
	}
	if curDirty {
		h ^= 1
	}
	return mix(h)
}

// mix is a 64-bit finalizer (splitmix64) spreading input bits across the map.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
