package cover

import (
	"math/bits"
	"sync/atomic"
)

// MapSize is the number of bits in each coverage bitmap.
const MapSize = 1 << 16

// wordBits is the width of one bitmap word.
const wordBits = 64

// Bitmap is a fixed-size coverage bitmap safe for concurrent use. The hot
// path (Set) is lock-free: the bitmap is an array of atomic 64-bit words and
// a bit is raised with a compare-and-swap loop, so coverage recording from
// concurrent fuzzing workers and driver threads never contends on a mutex.
type Bitmap struct {
	words [MapSize / wordBits]atomic.Uint64
	n     atomic.Int64
}

// NewBitmap creates an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Set marks the bit selected by hash and reports whether it was previously
// unset.
func (b *Bitmap) Set(hash uint64) bool {
	idx := hash % MapSize
	w := &b.words[idx/wordBits]
	mask := uint64(1) << (idx % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			// The CAS makes exactly one caller the setter of this
			// bit, so the counter stays exact under concurrency.
			b.n.Add(1)
			return true
		}
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int { return int(b.n.Load()) }

// Merge ORs other into b and returns how many bits were newly set in b.
func (b *Bitmap) Merge(other *Bitmap) int {
	newBits := 0
	for i := range other.words {
		src := other.words[i].Load()
		if src == 0 {
			continue
		}
		w := &b.words[i]
		for {
			old := w.Load()
			diff := src &^ old
			if diff == 0 {
				break
			}
			if w.CompareAndSwap(old, old|diff) {
				newBits += bits.OnesCount64(diff)
				break
			}
		}
	}
	b.n.Add(int64(newBits))
	return newBits
}

// Reset clears the bitmap. Reset is not atomic with respect to concurrent
// Set/Merge calls; callers reset only between executions.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i].Store(0)
	}
	b.n.Store(0)
}

// Coverage bundles the two PMRace feedback metrics.
type Coverage struct {
	// Branch is conventional edge coverage over instrumented branch
	// points.
	Branch *Bitmap
	// Alias is PM alias pair coverage over cross-thread access pairs.
	Alias *Bitmap
}

// New creates empty coverage maps.
func New() *Coverage {
	return &Coverage{Branch: NewBitmap(), Alias: NewBitmap()}
}

// Merge ORs other into c and returns the total number of newly set bits
// across both maps.
func (c *Coverage) Merge(other *Coverage) int {
	return c.Branch.Merge(other.Branch) + c.Alias.Merge(other.Alias)
}

// Counts returns the set-bit counts of the branch and alias maps.
func (c *Coverage) Counts() (branch, alias int) {
	return c.Branch.Count(), c.Alias.Count()
}

// Reset clears both maps.
func (c *Coverage) Reset() {
	c.Branch.Reset()
	c.Alias.Reset()
}

// EdgeHash hashes a control-flow edge between two branch sites, AFL-style:
// the previous location is shifted so that A->B and B->A map to different
// bits.
func EdgeHash(prev, cur uint32) uint64 {
	return mix(uint64(prev)<<17 ^ uint64(cur))
}

// AliasHash hashes a PM alias pair: two back-to-back accesses to the same
// address by different threads. Each access contributes its instruction site
// and persistency state (paper: the (I, P, T) triple). Concrete thread IDs
// are deliberately excluded from the hash — the T components only impose the
// cross-thread constraint Tx != Ty, and hashing raw IDs would make coverage
// depend on arbitrary thread numbering across campaigns.
func AliasHash(prevSite uint32, prevDirty bool, curSite uint32, curDirty bool) uint64 {
	h := uint64(prevSite)<<33 ^ uint64(curSite)<<2
	if prevDirty {
		h ^= 1 << 1
	}
	if curDirty {
		h ^= 1
	}
	return mix(h)
}

// mix is a 64-bit finalizer (splitmix64) spreading input bits across the map.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
