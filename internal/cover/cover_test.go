package cover

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetReportsNew(t *testing.T) {
	b := NewBitmap()
	if !b.Set(42) {
		t.Fatalf("first Set must report new")
	}
	if b.Set(42) {
		t.Fatalf("second Set of same hash must not report new")
	}
	if b.Count() != 1 {
		t.Fatalf("count = %d, want 1", b.Count())
	}
}

func TestSetWrapsModuloMapSize(t *testing.T) {
	b := NewBitmap()
	b.Set(7)
	if b.Set(7 + MapSize) {
		t.Fatalf("hashes equal mod MapSize must collide")
	}
}

func TestMergeCountsNewBits(t *testing.T) {
	a, b := NewBitmap(), NewBitmap()
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	newBits := a.Merge(b)
	if newBits != 1 {
		t.Fatalf("merge newBits = %d, want 1", newBits)
	}
	if a.Count() != 3 {
		t.Fatalf("count after merge = %d, want 3", a.Count())
	}
	if n := a.Merge(b); n != 0 {
		t.Fatalf("second merge must add nothing, got %d", n)
	}
}

func TestReset(t *testing.T) {
	b := NewBitmap()
	b.Set(5)
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("count after reset = %d", b.Count())
	}
	if !b.Set(5) {
		t.Fatalf("bit must be new again after reset")
	}
}

func TestCoverageMergeAndCounts(t *testing.T) {
	c1, c2 := New(), New()
	c2.Branch.Set(1)
	c2.Alias.Set(2)
	if n := c1.Merge(c2); n != 2 {
		t.Fatalf("coverage merge = %d, want 2", n)
	}
	br, al := c1.Counts()
	if br != 1 || al != 1 {
		t.Fatalf("counts = %d %d, want 1 1", br, al)
	}
	c1.Reset()
	br, al = c1.Counts()
	if br != 0 || al != 0 {
		t.Fatalf("counts after reset = %d %d", br, al)
	}
}

func TestEdgeHashDirectional(t *testing.T) {
	if EdgeHash(1, 2) == EdgeHash(2, 1) {
		t.Fatalf("edge hash must distinguish direction")
	}
}

func TestAliasHashDistinguishesPersistencyState(t *testing.T) {
	h1 := AliasHash(10, true, 20, false)
	h2 := AliasHash(10, false, 20, false)
	h3 := AliasHash(10, true, 20, true)
	if h1 == h2 || h1 == h3 || h2 == h3 {
		t.Fatalf("alias hashes must depend on persistency states: %d %d %d", h1, h2, h3)
	}
}

func TestAliasHashDistinguishesSites(t *testing.T) {
	if AliasHash(1, false, 2, false) == AliasHash(3, false, 2, false) {
		t.Fatalf("alias hash must depend on the first site")
	}
	if AliasHash(1, false, 2, false) == AliasHash(1, false, 4, false) {
		t.Fatalf("alias hash must depend on the second site")
	}
}

func TestConcurrentSet(t *testing.T) {
	b := NewBitmap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Set(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if b.Count() != 1000 {
		t.Fatalf("concurrent count = %d, want 1000", b.Count())
	}
}

// Property: merge is monotone (counts never decrease) and idempotent.
func TestMergeMonotoneIdempotentProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewBitmap(), NewBitmap()
		for _, x := range xs {
			a.Set(uint64(x))
		}
		for _, y := range ys {
			b.Set(uint64(y))
		}
		before := a.Count()
		a.Merge(b)
		mid := a.Count()
		a.Merge(b)
		return mid >= before && a.Count() == mid && mid <= before+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of set bits equals the number of distinct hashes mod
// MapSize.
func TestCountMatchesDistinctProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		b := NewBitmap()
		distinct := map[uint64]bool{}
		for _, x := range xs {
			h := uint64(x)
			b.Set(h)
			distinct[h%MapSize] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge through the summary fast path sees exactly the bits Set
// raised, and the summary stays consistent across Merge-populated bitmaps.
func TestMergeSummaryEquivalenceProperty(t *testing.T) {
	f := func(xs []uint64) bool {
		src, dst, chained := NewBitmap(), NewBitmap(), NewBitmap()
		distinct := map[uint64]bool{}
		for _, x := range xs {
			src.Set(x)
			distinct[x%MapSize] = true
		}
		if dst.Merge(src) != len(distinct) || dst.Count() != src.Count() {
			return false
		}
		// Merging a merge-populated bitmap must carry the same bits: the
		// summary raised inside Merge has to cover them.
		return chained.Merge(dst) == len(distinct) && chained.Hash() == src.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashOrderIndependent(t *testing.T) {
	a, b := NewBitmap(), NewBitmap()
	hashes := []uint64{3, 99, 7777, 65535, 1 << 40}
	for _, h := range hashes {
		a.Set(h)
	}
	for i := len(hashes) - 1; i >= 0; i-- {
		b.Set(hashes[i])
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("hash depends on insertion order: %#x vs %#x", a.Hash(), b.Hash())
	}
	if a.Hash() == NewBitmap().Hash() {
		t.Fatalf("non-empty bitmap hashes like empty")
	}
	b.Set(123456)
	if a.Hash() == b.Hash() {
		t.Fatalf("different bit sets must hash differently")
	}
	a.Reset()
	if a.Hash() != NewBitmap().Hash() {
		t.Fatalf("reset bitmap must hash like empty")
	}
}

// The hot merge in the fuzzer loop must stay allocation-free; the summary
// walk must not introduce hidden allocations.
func TestMergeAllocFree(t *testing.T) {
	x, y := NewBitmap(), NewBitmap()
	for i := 0; i < 4096; i++ {
		y.Set(uint64(i * 13))
	}
	if avg := testing.AllocsPerRun(100, func() { x.Merge(y); x.Hash() }); avg != 0 {
		t.Fatalf("Merge+Hash allocates %.1f objects per run, want 0", avg)
	}
}

func BenchmarkSet(b *testing.B) {
	bm := NewBitmap()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Set(uint64(i))
	}
}

func BenchmarkMerge(b *testing.B) {
	x, y := NewBitmap(), NewBitmap()
	for i := 0; i < 1000; i++ {
		y.Set(uint64(i * 7))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Merge(y)
	}
}
