// Package cover implements the two coverage metrics PMRace feeds back into
// fuzzing (paper §4.2.1): conventional branch (edge) coverage and the novel
// PM alias pair coverage. A PM alias pair is two back-to-back PM accesses to
// the same address by different threads, identified by the instruction site
// and persistency state of each access. Both metrics are kept in fixed-size
// bitmaps, mirroring AFL-style shared-memory coverage maps.
package cover
