package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/obs"
)

// Handler returns the control plane's HTTP handler: the versioned REST API
// under api.BasePath plus the operational endpoints (/healthz, /readyz,
// /status, /metrics).
func (s *Supervisor) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET "+api.BasePath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Info())
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("POST "+api.BasePath+"/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec api.CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, &api.Error{StatusCode: 400, Code: api.CodeBadRequest,
				Message: "decoding spec: " + err.Error()})
			return
		}
		doc, err := s.Submit(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, doc)
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("DELETE "+api.BasePath+"/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		doc, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		c, err := s.get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		// The emitter exists from submission; subscribers attached while
		// the campaign is Pending see the complete stream. On a terminal
		// campaign the emitter is closed and the stream ends immediately.
		// Campaigns restored from a pre-restart record have no emitter at
		// all — their event stream died with the old process.
		if c.em == nil {
			writeErr(w, &api.Error{StatusCode: 409, Code: api.CodeConflict,
				Message: fmt.Sprintf("campaign %s finished before a server restart; its event stream is gone", c.id)})
			return
		}
		obs.ServeSSE(w, r, c.em)
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns/{id}/artifacts", func(w http.ResponseWriter, r *http.Request) {
		s.handleArtifactList(w, r)
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns/{id}/artifacts/{name}", func(w http.ResponseWriter, r *http.Request) {
		s.handleArtifactGet(w, r)
	})
	mux.HandleFunc("GET "+api.BasePath+"/campaigns/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		s.handleTrace(w, r)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// A draining server is alive but must fall out of load balancing.
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Server    api.ServerInfo `json:"server"`
			Campaigns []api.Campaign `json:"campaigns"`
		}{s.Info(), s.List()})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	return mux
}

// handleMetrics merges every campaign's metrics registry into one labeled
// Prometheus exposition: each family appears once, with one labeled series
// per campaign (campaign="c0001",target="pclht"), plus the server-scoped
// registry (scope="server") carrying admission gauges and self-telemetry.
func (s *Supervisor) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	// Admission-state gauges are sampled at scrape time: the queue depth and
	// budget-in-use are supervisor state, not event-driven counters.
	s.reg.Gauge(obs.GQueueDepth).Set(int64(len(s.queue)))
	s.reg.Gauge(obs.GWorkerBudgetInUse).Set(int64(s.used))
	regs := make([]obs.LabeledRegistry, 0, len(s.order)+1)
	regs = append(regs, obs.LabeledRegistry{
		Labels: []obs.Label{{Name: "scope", Value: "server"}},
		Reg:    s.reg,
	})
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.em == nil { // restored after a restart: no live registry
			continue
		}
		regs = append(regs, obs.LabeledRegistry{
			Labels: []obs.Label{{Name: "campaign", Value: c.id}, {Name: "target", Value: c.spec.Target}},
			Reg:    c.em.Registry(),
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheusLabeled(w, regs...)
}

// handleTrace serves a campaign's span timeline as Chrome trace-event JSON,
// viewable directly in Perfetto (ui.perfetto.dev). Works on running and
// terminal campaigns alike: the tracer outlives the fuzzer.
func (s *Supervisor) handleTrace(w http.ResponseWriter, r *http.Request) {
	c, err := s.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if c.tr == nil {
		writeErr(w, &api.Error{StatusCode: 404, Code: api.CodeNotFound,
			Message: fmt.Sprintf("tracing disabled for campaign %s", c.id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, c.tr.Spans(), c.tr.Meta())
}

func (s *Supervisor) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	c, err := s.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if c.artDir == "" {
		writeJSON(w, http.StatusOK, []api.ArtifactInfo{})
		return
	}
	names, err := listBundles(c.artDir)
	if err != nil {
		writeErr(w, &api.Error{StatusCode: 500, Code: api.CodeInternal, Message: err.Error()})
		return
	}
	infos := make([]api.ArtifactInfo, 0, len(names))
	for _, name := range names {
		info := api.ArtifactInfo{Name: name}
		var rep artifact.Report
		if raw, err := readFileJSON(filepath.Join(c.artDir, name, artifact.BugFile), &rep); err == nil && raw {
			info.Fingerprint = rep.Fingerprint
			info.Kind = rep.Kind
			info.Status = rep.Status
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Supervisor) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	c, err := s.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	name := r.PathValue("name")
	if c.artDir == "" || name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		writeErr(w, &api.Error{StatusCode: 404, Code: api.CodeNotFound,
			Message: fmt.Sprintf("no artifact %q in campaign %s", name, c.id)})
		return
	}
	b, lerr := artifact.Load(filepath.Join(c.artDir, name))
	if lerr != nil {
		writeErr(w, &api.Error{StatusCode: 404, Code: api.CodeNotFound,
			Message: fmt.Sprintf("no artifact %q in campaign %s", name, c.id)})
		return
	}
	doc, derr := bundleDoc(b)
	if derr != nil {
		writeErr(w, &api.Error{StatusCode: 500, Code: api.CodeInternal, Message: derr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// bundleDoc re-frames an artifact bundle as the wire envelope. The bundle
// documents cross as verbatim JSON (schema-versioned by bug.json itself),
// so a JSON round-trip is the conversion.
func bundleDoc(b *artifact.Bundle) (api.ArtifactBundle, error) {
	doc := api.ArtifactBundle{Seed: b.Seed}
	remap := func(src, dst any) error {
		raw, err := json.Marshal(src)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, dst)
	}
	if err := remap(b.Bug, &doc.Bug); err != nil {
		return doc, err
	}
	if err := remap(b.Schedule, &doc.Schedule); err != nil {
		return doc, err
	}
	if len(b.Trace) > 0 {
		if err := remap(b.Trace, &doc.Trace); err != nil {
			return doc, err
		}
	}
	if len(b.PMDiff) > 0 {
		if err := remap(b.PMDiff, &doc.PMDiff); err != nil {
			return doc, err
		}
	}
	if len(b.Spans) > 0 {
		if err := remap(b.Spans, &doc.Spans); err != nil {
			return doc, err
		}
	}
	return doc, nil
}

// readFileJSON decodes path into v, reporting whether the file existed.
func readFileJSON(path string, v any) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	return true, json.Unmarshal(raw, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders the api.Error envelope (wrapping foreign errors as
// internal) with its HTTP status.
func writeErr(w http.ResponseWriter, err error) {
	var ae *api.Error
	if !errors.As(err, &ae) {
		ae = &api.Error{StatusCode: 500, Code: api.CodeInternal, Message: err.Error()}
	}
	status := ae.StatusCode
	if status == 0 {
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ae)
}
