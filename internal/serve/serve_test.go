// End-to-end tests of the pmraced control plane: REST round-trips through
// the real client, error envelopes, SSE parity with the in-process API,
// cross-campaign bug dedup and graceful drain with campaigns mid-flight.
package serve_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	pmrace "github.com/pmrace-go/pmrace"
	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/client"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/serve"
)

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Supervisor, *client.Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	sup, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sup.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sup.Drain(ctx)
	})
	return sup, client.New(ts.URL)
}

// bigSpec is a campaign that will not finish on its own within the test.
func bigSpec(workers int) api.CampaignSpec {
	return api.CampaignSpec{Target: "pclht", Workers: workers,
		MaxExecs: 10_000_000, Duration: time.Hour, Seed: 1}
}

func waitState(t *testing.T, cl *client.Client, id string, want api.State) *api.Campaign {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		doc, err := cl.Get(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if doc.State == want {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q, want %q", id, doc.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitGetCancelRoundTrip drives the full lifecycle over REST: a
// running campaign and a queued one behind a one-worker budget, queue
// cancellation, drain-style cancellation of the running campaign with
// partial results, and the terminal-cancel conflict.
func TestSubmitGetCancelRoundTrip(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{WorkerBudget: 1})
	ctx := context.Background()

	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != api.Version || info.WorkerBudget != 1 {
		t.Fatalf("server info = %+v", info)
	}

	a, err := cl.Submit(ctx, bigSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.State != api.StateRunning {
		t.Fatalf("first campaign state = %q, want running (budget has headroom)", a.State)
	}
	b, err := cl.Submit(ctx, bigSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.State != api.StatePending {
		t.Fatalf("second campaign state = %q, want pending (budget exhausted)", b.State)
	}

	list, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v", list)
	}

	// A queued campaign cancels instantly; it never held workers.
	bDoc, err := cl.Cancel(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bDoc.State != api.StateCancelled {
		t.Fatalf("cancelled pending campaign state = %q", bDoc.State)
	}

	// Cancelling the running campaign drains it: workers finish their
	// in-flight executions and the partial results stay readable.
	if _, err := cl.Cancel(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	aDoc := waitState(t, cl, a.ID, api.StateCancelled)
	if aDoc.Stats.Execs <= 0 {
		t.Fatalf("drained campaign lost its partial results: %+v", aDoc.Stats)
	}
	if aDoc.Stats.State != string(api.StateCancelled) {
		t.Fatalf("stats.state = %q, want %q", aDoc.Stats.State, api.StateCancelled)
	}

	// Cancelling a terminal campaign is a conflict.
	if _, err := cl.Cancel(ctx, a.ID); !api.IsCode(err, api.CodeConflict) {
		t.Fatalf("cancel terminal: err = %v, want code %q", err, api.CodeConflict)
	}
}

// TestHandlerErrorPaths tables the error envelopes: every failure mode maps
// to its documented HTTP status and machine-readable code.
func TestHandlerErrorPaths(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{WorkerBudget: 2})
	ctx := context.Background()

	tests := []struct {
		name string
		call func() error
		code string
	}{
		{"unknown target", func() error {
			_, err := cl.Submit(ctx, api.CampaignSpec{Target: "no-such-system"})
			return err
		}, api.CodeUnknownTarget},
		{"missing target", func() error {
			_, err := cl.Submit(ctx, api.CampaignSpec{})
			return err
		}, api.CodeBadRequest},
		{"bad mode", func() error {
			_, err := cl.Submit(ctx, api.CampaignSpec{Target: "pclht", Mode: "chaotic"})
			return err
		}, api.CodeBadRequest},
		{"workers over budget", func() error {
			_, err := cl.Submit(ctx, api.CampaignSpec{Target: "pclht", Workers: 3})
			return err
		}, api.CodeBadRequest},
		{"artifacts_all without artifacts", func() error {
			_, err := cl.Submit(ctx, api.CampaignSpec{Target: "pclht", ArtifactsAll: true})
			return err
		}, api.CodeBadRequest},
		{"get unknown id", func() error {
			_, err := cl.Get(ctx, "c9999")
			return err
		}, api.CodeNotFound},
		{"cancel unknown id", func() error {
			_, err := cl.Cancel(ctx, "c9999")
			return err
		}, api.CodeNotFound},
		{"artifacts of unknown id", func() error {
			_, err := cl.Artifacts(ctx, "c9999")
			return err
		}, api.CodeNotFound},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !api.IsCode(err, tc.code) {
				t.Fatalf("err = %v, want code %q", err, tc.code)
			}
		})
	}
}

// TestSSEParityWithInProcess runs the same fully deterministic configuration
// once under pmraced (events consumed over the REST SSE stream) and once
// in-process (pmrace.NewCampaign with a collector sink) and asserts the two
// event sequences are fingerprint-identical: the control plane adds
// scheduling around the engine, never inside it.
func TestSSEParityWithInProcess(t *testing.T) {
	_, cl := newTestServer(t, serve.Config{WorkerBudget: 1})
	ctx := context.Background()

	// Fill the budget so the parity campaign queues: subscribers attached
	// while a campaign is Pending observe its complete stream (a campaign
	// admitted with immediate headroom starts emitting before any HTTP
	// client can attach — that race is inherent, queuing is the remedy).
	// The blocker fuzzes a different target: targets share a corpus
	// directory per target, and seeds the blocker saved would otherwise
	// change the parity campaign's initial corpus.
	blockSpec := bigSpec(1)
	blockSpec.Target = "clevel"
	blocker, err := cl.Submit(ctx, blockSpec)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := cl.Submit(ctx, api.CampaignSpec{
		Target: "pclht", Mode: "none", Workers: 1, Threads: 1,
		MaxExecs: 25, Duration: time.Minute, Seed: 7, InlineValidation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != api.StatePending {
		t.Fatalf("parity campaign state = %q, want pending behind the blocker", doc.State)
	}
	events, errFn, err := cl.Events(ctx, doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	var remote []string
	for ev := range events {
		remote = append(remote, obs.Fingerprint(ev))
	}
	if err := errFn(); err != nil {
		t.Fatal(err)
	}

	col := pmrace.NewCollector()
	c, err := pmrace.NewCampaign(ctx, "pclht",
		pmrace.WithBudget(25, time.Minute),
		pmrace.WithWorkers(1),
		pmrace.WithThreads(1),
		pmrace.WithMode(pmrace.ModeNone),
		pmrace.WithSeed(7),
		pmrace.WithInlineValidation(),
		pmrace.WithSink(col),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	local := make([]string, 0, len(col.Events()))
	for _, ev := range col.Events() {
		local = append(local, obs.Fingerprint(ev))
	}

	if len(remote) == 0 {
		t.Fatal("SSE stream delivered no events")
	}
	if len(remote) != len(local) {
		t.Fatalf("event counts differ: SSE %d vs in-process %d", len(remote), len(local))
	}
	for i := range remote {
		if remote[i] != local[i] {
			t.Fatalf("event %d differs:\n  SSE:        %s\n  in-process: %s", i, remote[i], local[i])
		}
	}
	if !strings.HasPrefix(remote[len(remote)-1], "campaign_done") {
		t.Fatalf("last SSE event is not campaign_done: %s", remote[len(remote)-1])
	}
}

// TestDrainMidFlight runs three concurrent campaigns under a shared budget
// and drains the server with all of them mid-flight: drain must reject new
// submissions, cancel the campaigns at their next inter-execution check,
// keep every partial result, and return only when everything settled. Run
// under -race this also exercises the supervisor's locking.
func TestDrainMidFlight(t *testing.T) {
	sup, cl := newTestServer(t, serve.Config{WorkerBudget: 6, DrainTimeout: 30 * time.Second})
	ctx := context.Background()

	ids := make([]string, 3)
	for i := range ids {
		doc, err := cl.Submit(ctx, bigSpec(2))
		if err != nil {
			t.Fatal(err)
		}
		if doc.State != api.StateRunning {
			t.Fatalf("campaign %d state = %q, want running", i, doc.State)
		}
		ids[i] = doc.ID
	}
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.WorkersInUse != 6 {
		t.Fatalf("workers in use = %d, want 6", info.WorkersInUse)
	}

	// Let the campaigns actually fuzz before tearing them down.
	deadline := time.Now().Add(20 * time.Second)
	for {
		doc, err := cl.Get(ctx, ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if doc.Stats.Execs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaigns never started executing")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := sup.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if _, err := cl.Submit(ctx, bigSpec(1)); !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("submit while draining: err = %v, want code %q", err, api.CodeDraining)
	}
	info, err = cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Draining || info.WorkersInUse != 0 {
		t.Fatalf("post-drain info = %+v", info)
	}
	for _, id := range ids {
		doc, err := cl.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if doc.State != api.StateCancelled {
			t.Fatalf("campaign %s state = %q, want cancelled", id, doc.State)
		}
		if doc.Stats.Execs <= 0 {
			t.Fatalf("campaign %s lost its partial results", id)
		}
		if doc.Finished.IsZero() {
			t.Fatalf("campaign %s has no finish stamp", id)
		}
	}
}

// TestCrossCampaignDedupAndArtifacts runs two identical campaigns against
// pclht back to back: the first owns its bug fingerprints and writes
// forensic bundles fetchable over REST; the second re-finds (at least some
// of) the same fingerprints and must have them flagged as duplicates
// pointing back at the first.
func TestCrossCampaignDedupAndArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("two fuzzing campaigns")
	}
	_, cl := newTestServer(t, serve.Config{WorkerBudget: 2})
	ctx := context.Background()

	spec := api.CampaignSpec{Target: "pclht", Workers: 2,
		MaxExecs: 120, Duration: time.Minute, Seed: 2, Artifacts: true}

	first, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	firstDoc, err := cl.Wait(ctx, first.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if firstDoc.State != api.StateDone {
		t.Fatalf("first campaign state = %q (error %q)", firstDoc.State, firstDoc.Error)
	}
	if len(firstDoc.Bugs) == 0 {
		t.Fatal("first campaign found no bugs — pclht's seeded inventory should surface within 120 execs")
	}
	for _, b := range firstDoc.Bugs {
		if b.Duplicate {
			t.Fatalf("first campaign's bug %s flagged duplicate of %s", b.Fingerprint, b.FirstReportedBy)
		}
	}

	arts, err := cl.Artifacts(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 {
		t.Fatal("no artifact bundles listed for a bug-finding campaign")
	}
	bundle, err := cl.Artifact(ctx, first.ID, arts[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if fp, _ := bundle.Bug["fingerprint"].(string); fp != arts[0].Fingerprint || fp == "" {
		t.Fatalf("bundle fingerprint %q does not match listing %q", fp, arts[0].Fingerprint)
	}
	if _, err := cl.Artifact(ctx, first.ID, "no-such-bundle"); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("missing bundle: err = %v, want code %q", err, api.CodeNotFound)
	}

	second, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	secondDoc, err := cl.Wait(ctx, second.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(secondDoc.Bugs) == 0 {
		t.Fatal("second campaign found no bugs")
	}
	firstFPs := map[string]bool{}
	for _, b := range firstDoc.Bugs {
		firstFPs[b.Fingerprint] = true
	}
	dups := 0
	for _, b := range secondDoc.Bugs {
		if firstFPs[b.Fingerprint] {
			if !b.Duplicate || b.FirstReportedBy != first.ID {
				t.Fatalf("re-found bug %s not flagged duplicate of %s: %+v",
					b.Fingerprint, first.ID, b)
			}
			dups++
		} else if b.Duplicate {
			t.Fatalf("bug %s flagged duplicate but %s never reported it", b.Fingerprint, first.ID)
		}
	}
	if dups == 0 {
		t.Fatal("second identical campaign re-found none of the first's fingerprints")
	}
}

// TestMetricsLabeledByCampaign asserts /metrics merges every campaign's
// registry into one exposition with campaign/target labels.
func TestMetricsLabeledByCampaign(t *testing.T) {
	sup, cl := newTestServer(t, serve.Config{WorkerBudget: 2})
	ctx := context.Background()

	doc, err := cl.Submit(ctx, api.CampaignSpec{Target: "clevel", Workers: 1,
		MaxExecs: 5, Duration: time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, cl, doc.ID, api.StateDone)

	ts := httptest.NewServer(sup.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := `campaign="` + doc.ID + `",target="clevel"`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing labeled series %s:\n%s", want, body)
	}
}

// TestRestartRemembersTerminalCampaigns is the durability round-trip: a
// campaign runs to completion, the server drains (process "exit"), and a
// fresh Supervisor over the same DataDir must still serve the campaign's
// record — same state, bugs and final stats — keep its artifacts fetchable,
// refuse to cancel it, keep its bug fingerprints in the dedup store, and
// allocate non-colliding IDs for new submissions.
func TestRestartRemembersTerminalCampaigns(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()

	sup1, cl1 := newTestServer(t, serve.Config{WorkerBudget: 2, DataDir: dataDir})
	spec := api.CampaignSpec{Target: "pclht", Workers: 1, Threads: 2,
		MaxExecs: 30, Duration: time.Minute, Seed: 7, Artifacts: true}
	doc, err := cl1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, cl1, doc.ID, api.StateDone)
	arts1, err := cl1.Artifacts(ctx, doc.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: drain the first supervisor, bring up a second on the same
	// data directory. (newTestServer's cleanup drains again at test end;
	// draining a drained supervisor is a no-op.)
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = sup1.Drain(drainCtx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	_, cl2 := newTestServer(t, serve.Config{WorkerBudget: 2, DataDir: dataDir})

	got, err := cl2.Get(ctx, doc.ID)
	if err != nil {
		t.Fatalf("restarted server forgot campaign %s: %v", doc.ID, err)
	}
	if got.State != api.StateDone {
		t.Fatalf("restored state = %q, want done", got.State)
	}
	if got.Stats.Execs != final.Stats.Execs {
		t.Errorf("restored stats.execs = %d, want %d", got.Stats.Execs, final.Stats.Execs)
	}
	if len(got.Bugs) != len(final.Bugs) {
		t.Fatalf("restored %d bugs, want %d", len(got.Bugs), len(final.Bugs))
	}
	for i := range final.Bugs {
		if got.Bugs[i].Fingerprint != final.Bugs[i].Fingerprint {
			t.Errorf("restored bug %d fingerprint = %q, want %q",
				i, got.Bugs[i].Fingerprint, final.Bugs[i].Fingerprint)
		}
	}

	list, err := cl2.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range list {
		found = found || c.ID == doc.ID
	}
	if !found {
		t.Fatalf("restored campaign %s missing from list", doc.ID)
	}

	// Artifacts live on disk, so the restart keeps serving them.
	arts2, err := cl2.Artifacts(ctx, doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts2) != len(arts1) {
		t.Fatalf("restored %d artifacts, want %d", len(arts2), len(arts1))
	}
	if len(arts2) > 0 {
		if _, err := cl2.Artifact(ctx, doc.ID, arts2[0].Name); err != nil {
			t.Fatalf("fetching restored artifact: %v", err)
		}
	}

	// A restored campaign is terminal: cancelling is a conflict, and its
	// dead event stream is refused cleanly rather than hanging.
	if _, err := cl2.Cancel(ctx, doc.ID); !api.IsCode(err, api.CodeConflict) {
		t.Fatalf("cancel restored: err = %v, want code %q", err, api.CodeConflict)
	}

	// New submissions must not collide with restored IDs, and the dedup
	// store must remember the pre-restart fingerprints: the same seeded
	// campaign re-finding the same bugs sees them flagged as duplicates.
	doc2, err := cl2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.ID == doc.ID {
		t.Fatalf("restarted server reallocated campaign ID %s", doc.ID)
	}
	final2 := waitState(t, cl2, doc2.ID, api.StateDone)
	if len(final.Bugs) > 0 {
		dups := 0
		for _, b := range final2.Bugs {
			if b.Duplicate && b.FirstReportedBy == doc.ID {
				dups++
			}
		}
		if dups == 0 {
			t.Fatalf("re-run campaign re-found no pre-restart fingerprints as duplicates: %+v", final2.Bugs)
		}
	}
}
