// Package serve is the pmraced control plane: a supervisor scheduling many
// concurrent fuzzing campaigns over a shared worker budget, and the REST
// handlers (package api's wire contract) that drive it.
//
// The supervisor admits submitted campaigns from a FIFO queue whenever the
// worker budget has headroom, runs each on the engine (internal/fuzz) with
// its own emitter — so every campaign has an independent event stream and
// metrics registry — and shares two things across campaigns: a per-target
// corpus directory (coverage found by one campaign seeds the next) and a
// cross-campaign bug-fingerprint store that flags re-discovered bugs as
// duplicates. Graceful drain cancels contexts and lets in-flight executions
// finish, so partial results are persisted, never lost.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/pmrace-go/pmrace/api"
	"github.com/pmrace-go/pmrace/internal/artifact"
	"github.com/pmrace-go/pmrace/internal/core"
	"github.com/pmrace-go/pmrace/internal/fuzz"
	"github.com/pmrace-go/pmrace/internal/obs"
	"github.com/pmrace-go/pmrace/internal/site"
	"github.com/pmrace-go/pmrace/internal/targets"

	// The supervisor validates specs against the target registry, so it is
	// responsible for linking the shipped targets in — cmd/pmraced does not
	// import the root pmrace package that registers them for the CLI.
	_ "github.com/pmrace-go/pmrace/internal/targets/cceh"
	_ "github.com/pmrace-go/pmrace/internal/targets/clevel"
	_ "github.com/pmrace-go/pmrace/internal/targets/fastfair"
	_ "github.com/pmrace-go/pmrace/internal/targets/memcached"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclht"
	_ "github.com/pmrace-go/pmrace/internal/targets/pclhtgen"
	_ "github.com/pmrace-go/pmrace/internal/targets/pmwal"
)

// Config sizes a Supervisor. The zero value is usable: 4 shared workers, a
// temporary data directory, no artifact retention limit.
type Config struct {
	// WorkerBudget is the shared fuzzing-worker capacity. Campaigns are
	// admitted from the queue while their Workers fit under it (default 4).
	WorkerBudget int
	// MaxCampaigns bounds campaigns tracked at once, queued and terminal
	// included; submissions beyond it are rejected with 409 (default 64).
	MaxCampaigns int
	// DataDir roots the server's state: DataDir/corpus/<target> is the
	// shared per-target corpus, DataDir/artifacts/<campaign> the per-
	// campaign bundle directories. Empty selects a fresh temp directory.
	DataDir string
	// Retention caps the artifact bundles kept across all campaigns;
	// after each campaign finishes the oldest beyond it are collected
	// (internal/artifact.GC). 0 keeps everything.
	Retention int
	// GCGrace exempts bundles younger than it from retention GC, so one
	// campaign's post-run sweep never deletes a bundle another in-flight
	// campaign just published (default 1m; negative disables the grace).
	GCGrace time.Duration
	// DrainTimeout bounds Drain's wait for in-flight executions
	// (default 30s).
	DrainTimeout time.Duration
	// TraceSample is the server-default span-tracing sample rate applied
	// to campaigns whose spec leaves TraceSample zero: one execution in
	// TraceSample records detailed spans. 0 selects
	// obs.DefaultTraceSample; negative disables tracing by default (a
	// spec can still opt in with an explicit positive TraceSample).
	TraceSample int
}

func (c Config) withDefaults() Config {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = 4
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.GCGrace == 0 {
		c.GCGrace = time.Minute
	} else if c.GCGrace < 0 {
		c.GCGrace = 0
	}
	if c.TraceSample == 0 {
		c.TraceSample = obs.DefaultTraceSample
	}
	return c
}

// campaign is one supervised campaign. The fuzzer and emitter exist from
// submission on — subscribers attached while the campaign is still Pending
// observe the complete event stream.
type campaign struct {
	id     string
	spec   api.CampaignSpec
	fz     *fuzz.Fuzzer
	em     *obs.Emitter
	tr     *obs.Tracer // nil when tracing is disabled for this campaign
	qsp    obs.SpanCtx // queue_wait span, open while Pending
	ctx    context.Context
	cancel context.CancelFunc
	artDir string
	// restored is the persisted final document of a campaign reloaded after
	// a server restart. A restored campaign has no fuzzer, emitter, tracer
	// or context — it exists to keep its record (and artifacts) readable —
	// so every path below that touches those fields guards on it.
	restored *api.Campaign

	mu       sync.Mutex
	state    api.State
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	bugs     []api.Bug
	done     chan struct{}
}

// Supervisor owns the campaign table, the admission queue and the shared
// worker budget.
type Supervisor struct {
	cfg Config

	// reg holds server-level metrics (queue depth, budget in use, runtime
	// self-telemetry); sampler feeds the runtime gauges at 1 Hz.
	reg     *obs.Registry
	sampler *obs.RuntimeSampler

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string    // insertion order, for stable listings
	queue     []*campaign // pending, FIFO
	used      int         // workers charged to running campaigns
	nextID    int
	draining  bool
	// seen is the cross-campaign dedup store: target -> bug fingerprint ->
	// ID of the campaign that first reported it.
	seen map[string]map[string]string
	wg   sync.WaitGroup
}

// New creates a Supervisor. It owns cfg.DataDir's corpus/ and artifacts/
// subtrees (creating them as needed).
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "pmraced-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "corpus"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "artifacts"), 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "campaigns"), 0o755); err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:       cfg,
		reg:       obs.NewRegistry(),
		campaigns: map[string]*campaign{},
		seen:      map[string]map[string]string{},
	}
	if err := s.restoreCampaigns(); err != nil {
		return nil, err
	}
	s.sampler = obs.StartRuntimeSampler(s.reg, time.Second)
	return s, nil
}

// DataDir returns the resolved state directory.
func (s *Supervisor) DataDir() string { return s.cfg.DataDir }

// optionsFromSpec translates the wire spec into engine options. Workers
// defaults to 1 — under a shared budget a spec's cost must be explicit —
// while everything else keeps the engine's evaluation defaults.
func optionsFromSpec(spec api.CampaignSpec) (fuzz.Options, error) {
	var mode fuzz.ExploreMode
	switch spec.Mode {
	case "", "pmrace", "pmaware":
		mode = fuzz.ModePMAware
	case "delay":
		mode = fuzz.ModeDelayInj
	case "none":
		mode = fuzz.ModeNone
	default:
		return fuzz.Options{}, &api.Error{
			StatusCode: 400, Code: api.CodeBadRequest,
			Message: fmt.Sprintf("unknown mode %q (want pmrace, delay or none)", spec.Mode),
		}
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 1
	}
	return fuzz.Options{
		Mode:             mode,
		Workers:          workers,
		Threads:          spec.Threads,
		MaxExecs:         spec.MaxExecs,
		Duration:         spec.Duration,
		Seed:             spec.Seed,
		KeySpace:         spec.KeySpace,
		OpsPerSeed:       spec.OpsPerSeed,
		Protocol:         spec.Protocol,
		MaxCrashStates:   spec.MaxCrashStates,
		InlineValidation: spec.InlineValidation,
		EADR:             spec.EADR,
		NoCheckpoints:    spec.NoCheckpoints,
		ArtifactAll:      spec.ArtifactsAll,
	}, nil
}

// Submit validates spec, creates the campaign (fuzzer + emitter live from
// here on) and queues it for admission. It returns the campaign document in
// its initial state — Pending, or already Running when the budget had
// immediate headroom.
func (s *Supervisor) Submit(spec api.CampaignSpec) (api.Campaign, error) {
	if spec.Target == "" {
		return api.Campaign{}, &api.Error{StatusCode: 400, Code: api.CodeBadRequest,
			Message: "spec.target is required"}
	}
	if !targets.Has(spec.Target) {
		return api.Campaign{}, &api.Error{StatusCode: 400, Code: api.CodeUnknownTarget,
			Message: fmt.Sprintf("unknown target %q (registered: %s)",
				spec.Target, strings.Join(targets.Names(), ", "))}
	}
	opts, err := optionsFromSpec(spec)
	if err != nil {
		return api.Campaign{}, err
	}
	if opts.Workers > s.cfg.WorkerBudget {
		return api.Campaign{}, &api.Error{StatusCode: 400, Code: api.CodeBadRequest,
			Message: fmt.Sprintf("spec.workers %d exceeds the server's worker budget %d",
				opts.Workers, s.cfg.WorkerBudget)}
	}
	if spec.ArtifactsAll && !spec.Artifacts {
		return api.Campaign{}, &api.Error{StatusCode: 400, Code: api.CodeBadRequest,
			Message: "spec.artifacts_all requires spec.artifacts"}
	}

	corpus := filepath.Join(s.cfg.DataDir, "corpus", spec.Target)
	if err := os.MkdirAll(corpus, 0o755); err != nil {
		return api.Campaign{}, &api.Error{StatusCode: 500, Code: api.CodeInternal, Message: err.Error()}
	}
	opts.CorpusDir = corpus

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return api.Campaign{}, &api.Error{StatusCode: 503, Code: api.CodeDraining,
			Message: "server is draining; not accepting campaigns"}
	}
	if len(s.campaigns) >= s.cfg.MaxCampaigns {
		s.mu.Unlock()
		return api.Campaign{}, &api.Error{StatusCode: 409, Code: api.CodeConflict,
			Message: fmt.Sprintf("campaign table full (%d)", s.cfg.MaxCampaigns)}
	}
	s.nextID++
	id := fmt.Sprintf("c%04d", s.nextID)
	s.mu.Unlock()

	var artDir string
	if spec.Artifacts {
		artDir = filepath.Join(s.cfg.DataDir, "artifacts", id)
		opts.ArtifactDir = artDir
	}
	fz, ferr := fuzz.New(spec.Target, opts)
	if ferr != nil {
		return api.Campaign{}, &api.Error{StatusCode: 500, Code: api.CodeInternal, Message: ferr.Error()}
	}
	em := obs.NewEmitter()
	fz.SetEmitter(em)

	// Span tracing: the spec's explicit rate wins; zero inherits the server
	// default; a negative value (either side) disables.
	var tr *obs.Tracer
	sample := s.cfg.TraceSample
	if spec.TraceSample != 0 {
		sample = spec.TraceSample
	}
	if sample > 0 {
		tr = obs.NewTracer(em.Registry(), sample)
		tr.SetMeta(id, spec.Target)
		tr.SetAnomalyDir(filepath.Join(s.cfg.DataDir, "anomalies", id))
		fz.SetTracer(tr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &campaign{
		id: id, spec: spec, fz: fz, em: em, tr: tr, ctx: ctx, cancel: cancel,
		artDir: artDir, state: api.StatePending, created: time.Now(),
		done: make(chan struct{}),
	}
	// The queue_wait span measures admission latency: opened here, ended
	// when the campaign is admitted (or cancelled while pending).
	c.qsp = tr.Start(obs.LaneSupervisor, obs.SpanQueueWait)

	s.mu.Lock()
	if s.draining { // re-check: Drain may have raced the ID allocation
		s.mu.Unlock()
		cancel()
		em.Close()
		return api.Campaign{}, &api.Error{StatusCode: 503, Code: api.CodeDraining,
			Message: "server is draining; not accepting campaigns"}
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.queue = append(s.queue, c)
	s.admitLocked()
	s.mu.Unlock()

	return s.document(c), nil
}

// admitLocked pops queued campaigns while the budget has headroom. Admission
// is strictly FIFO: a wide campaign at the head blocks narrower ones behind
// it, which keeps ordering predictable (no starvation of wide campaigns).
func (s *Supervisor) admitLocked() {
	for len(s.queue) > 0 {
		c := s.queue[0]
		w := workersOf(c)
		if s.used+w > s.cfg.WorkerBudget {
			return
		}
		s.queue = s.queue[1:]
		s.used += w
		c.mu.Lock()
		c.state = api.StateRunning
		c.started = time.Now()
		c.qsp.End()
		c.mu.Unlock()
		s.wg.Add(1)
		go s.run(c)
	}
}

func workersOf(c *campaign) int {
	if c.spec.Workers <= 0 {
		return 1
	}
	return c.spec.Workers
}

// run executes one admitted campaign to completion, finalizes its document
// (terminal state, bug inventory with cross-campaign dedup), releases its
// workers and admits successors.
func (s *Supervisor) run(c *campaign) {
	defer s.wg.Done()
	res, err := c.fz.RunContext(c.ctx)

	bugs := s.dedupBugs(c, res)

	c.mu.Lock()
	c.finished = time.Now()
	c.bugs = bugs
	switch {
	case err != nil:
		c.state = api.StateFailed
		c.err = err
	case c.ctx.Err() != nil:
		// Context cancellation ends a campaign normally: workers finished
		// their in-flight executions and res holds the partial results.
		c.state = api.StateCancelled
	default:
		c.state = api.StateDone
	}
	c.mu.Unlock()
	close(c.done)
	c.em.Close()
	s.persistCampaign(c)

	s.mu.Lock()
	s.used -= workersOf(c)
	s.admitLocked()
	s.mu.Unlock()

	if s.cfg.Retention > 0 {
		// Retention is a global budget across campaigns; GC walks the
		// artifacts root and removes the oldest bundles beyond it.
		_, _ = artifact.GC(filepath.Join(s.cfg.DataDir, "artifacts"), s.cfg.Retention, s.cfg.GCGrace)
	}
}

// dedupBugs builds the campaign's bug inventory from the judged findings and
// runs it through the cross-campaign fingerprint store: the first campaign
// to report a fingerprint on a target owns it; later reports are flagged
// Duplicate with a pointer back.
func (s *Supervisor) dedupBugs(c *campaign, res *fuzz.Result) []api.Bug {
	if res == nil || res.DB == nil {
		return nil
	}
	var bugs []api.Bug
	for _, j := range res.DB.Inconsistencies() {
		if j.Status != core.StatusBug {
			continue
		}
		kind := "intra"
		if j.Kind == core.KindInter {
			kind = "inter"
		}
		st := site.Lookup(j.StoreSite).String()
		bugs = append(bugs, api.Bug{
			Fingerprint: artifact.FingerprintInconsistency(j.Inconsistency),
			Kind:        kind,
			Site:        st,
			Summary: fmt.Sprintf("durable side effect at %s based on non-persisted data (%s flow)",
				st, j.Flow),
		})
	}
	for _, j := range res.DB.Syncs() {
		if j.Status != core.StatusBug {
			continue
		}
		st := site.Lookup(j.Site).String()
		bugs = append(bugs, api.Bug{
			Fingerprint: artifact.FingerprintSync(j.SyncInconsistency),
			Kind:        "sync",
			Site:        st,
			Summary:     fmt.Sprintf("sync variable %s persisted at %s", j.Var.Name, st),
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	byFP := s.seen[c.spec.Target]
	if byFP == nil {
		byFP = map[string]string{}
		s.seen[c.spec.Target] = byFP
	}
	for i := range bugs {
		if first, ok := byFP[bugs[i].Fingerprint]; ok && first != c.id {
			bugs[i].Duplicate = true
			bugs[i].FirstReportedBy = first
		} else if !ok {
			byFP[bugs[i].Fingerprint] = c.id
		}
	}
	return bugs
}

// document renders the campaign's current api.Campaign.
func (s *Supervisor) document(c *campaign) api.Campaign {
	if c.restored != nil {
		// A restored campaign serves its persisted final document; only the
		// artifact count is recomputed, since retention GC may have run
		// since the record was written.
		doc := *c.restored
		doc.Bugs = append([]api.Bug(nil), c.restored.Bugs...)
		if c.artDir != "" {
			doc.ArtifactCount = 0
			if names, err := listBundles(c.artDir); err == nil {
				doc.ArtifactCount = len(names)
			}
		}
		return doc
	}
	c.mu.Lock()
	state := c.state
	cerr := c.err
	created, started, finished := c.created, c.started, c.finished
	bugs := append([]api.Bug(nil), c.bugs...)
	c.mu.Unlock()
	if state == api.StateRunning && c.ctx.Err() != nil {
		state = api.StateDraining
	}
	st := c.fz.Snapshot()
	st.State = string(state)
	doc := api.Campaign{
		ID: c.id, Spec: c.spec, State: state,
		Created: created, Started: started, Finished: finished,
		Stats: st, Bugs: bugs,
	}
	if cerr != nil {
		doc.Error = cerr.Error()
	}
	if c.artDir != "" {
		if names, err := listBundles(c.artDir); err == nil {
			doc.ArtifactCount = len(names)
		}
	}
	return doc
}

// get looks a campaign up by ID.
func (s *Supervisor) get(id string) (*campaign, error) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return nil, &api.Error{StatusCode: 404, Code: api.CodeNotFound,
			Message: fmt.Sprintf("no campaign %q", id)}
	}
	return c, nil
}

// Get returns one campaign's document.
func (s *Supervisor) Get(id string) (api.Campaign, error) {
	c, err := s.get(id)
	if err != nil {
		return api.Campaign{}, err
	}
	return s.document(c), nil
}

// List returns every tracked campaign in submission order.
func (s *Supervisor) List() []api.Campaign {
	s.mu.Lock()
	cs := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]api.Campaign, len(cs))
	for i, c := range cs {
		out[i] = s.document(c)
	}
	return out
}

// Cancel stops a campaign. A pending campaign leaves the queue and settles
// Cancelled immediately; a running one drains (workers finish their
// in-flight executions, partial results are kept). Cancelling a terminal
// campaign is a conflict.
func (s *Supervisor) Cancel(id string) (api.Campaign, error) {
	c, err := s.get(id)
	if err != nil {
		return api.Campaign{}, err
	}

	s.mu.Lock()
	c.mu.Lock()
	switch {
	case c.state == api.StatePending:
		for i, q := range s.queue {
			if q == c {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		c.state = api.StateCancelled
		c.finished = time.Now()
		c.qsp.End()
		c.mu.Unlock()
		s.mu.Unlock()
		close(c.done)
		c.cancel()
		c.em.Close()
		s.persistCampaign(c)
	case c.state.Terminal():
		state := c.state
		c.mu.Unlock()
		s.mu.Unlock()
		return api.Campaign{}, &api.Error{StatusCode: 409, Code: api.CodeConflict,
			Message: fmt.Sprintf("campaign %s is already %s", id, state)}
	default: // running (or already draining)
		c.mu.Unlock()
		s.mu.Unlock()
		c.cancel()
	}
	return s.document(c), nil
}

// Info returns the server document.
func (s *Supervisor) Info() api.ServerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.ServerInfo{
		Version:      api.Version,
		Targets:      targets.Names(),
		WorkerBudget: s.cfg.WorkerBudget,
		WorkersInUse: s.used,
		Campaigns:    len(s.campaigns),
		Draining:     s.draining,
	}
}

// Draining reports whether Drain has started.
func (s *Supervisor) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the supervisor down: new submissions are rejected,
// queued campaigns are cancelled, running campaigns' contexts are cancelled
// so their workers stop at the next inter-execution check, and Drain waits —
// bounded by DrainTimeout and ctx — for them to finalize (partial results
// and artifacts persisted). It returns nil when everything drained, or the
// timeout/context error with campaigns still in flight.
func (s *Supervisor) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	pending := s.queue
	s.queue = nil
	var running []*campaign
	for _, id := range s.order {
		c := s.campaigns[id]
		c.mu.Lock()
		if c.state == api.StateRunning {
			running = append(running, c)
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()

	for _, c := range pending {
		c.mu.Lock()
		if c.state != api.StatePending { // a concurrent Cancel won the race
			c.mu.Unlock()
			continue
		}
		c.state = api.StateCancelled
		c.finished = time.Now()
		c.qsp.End()
		c.mu.Unlock()
		close(c.done)
		c.cancel()
		c.em.Close()
		s.persistCampaign(c)
	}
	for _, c := range running {
		c.cancel()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	defer s.sampler.Close()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("serve: drain timed out after %v", s.cfg.DrainTimeout)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// listBundles names the artifact bundles under dir, oldest first (the
// writer numbers them, so lexical order is chronological).
func listBundles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		// Dot-prefixed directories are the artifact writer's staging areas:
		// a bundle mid-write, not yet renamed into place.
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name(), artifact.BugFile)); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
