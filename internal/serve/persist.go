package serve

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/pmrace-go/pmrace/api"
)

// Terminal campaign records are persisted as DataDir/campaigns/<id>.json so
// a pmraced restart does not forget finished work: GET /campaigns/{id}
// keeps answering for campaigns that completed before the restart, and the
// cross-campaign bug dedup store keeps flagging re-discoveries of bugs a
// pre-restart campaign already reported. Only terminal states are written —
// a pending or running campaign that dies with the process was never
// durable and reappearing as "running" with no workers would be a lie.

// campaignsDir is the durable campaign-record directory.
func (s *Supervisor) campaignsDir() string {
	return filepath.Join(s.cfg.DataDir, "campaigns")
}

// persistCampaign writes c's final document. Best-effort: the control plane
// keeps serving from memory if the disk write fails. The record lands via
// write-to-temp + rename so a crash mid-write never leaves a torn .json for
// the next restore to trip over (dot-prefixed temp names are skipped there).
func (s *Supervisor) persistCampaign(c *campaign) {
	doc := s.document(c)
	if !doc.State.Terminal() {
		return
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	tmp := filepath.Join(s.campaignsDir(), "."+doc.ID+".json.tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, filepath.Join(s.campaignsDir(), doc.ID+".json")); err != nil {
		_ = os.Remove(tmp)
	}
}

// restoreCampaigns loads every persisted record into the campaign table as
// a restored (fuzzer-less) terminal campaign, re-seeds the cross-campaign
// dedup store from their bug inventories, and advances the ID allocator
// past every restored ID. Called from New with s unpublished, so no lock.
func (s *Supervisor) restoreCampaigns() error {
	ents, err := os.ReadDir(s.campaignsDir())
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.campaignsDir(), name))
		if err != nil {
			continue
		}
		doc := new(api.Campaign)
		if err := json.Unmarshal(raw, doc); err != nil || doc.ID == "" || !doc.State.Terminal() {
			continue // torn or foreign file; skip rather than refuse to start
		}
		if _, dup := s.campaigns[doc.ID]; dup {
			continue
		}
		done := make(chan struct{})
		close(done)
		c := &campaign{
			id: doc.ID, spec: doc.Spec, restored: doc,
			state: doc.State, created: doc.Created, started: doc.Started,
			finished: doc.Finished, bugs: append([]api.Bug(nil), doc.Bugs...),
			done: done,
		}
		if doc.Error != "" {
			c.err = errors.New(doc.Error)
		}
		if doc.Spec.Artifacts {
			// Bundles outlive the process; re-attach them so the artifact
			// endpoints keep serving after the restart.
			c.artDir = filepath.Join(s.cfg.DataDir, "artifacts", doc.ID)
		}
		s.campaigns[doc.ID] = c
		ids = append(ids, doc.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(doc.ID, "c")); err == nil && n > s.nextID {
			s.nextID = n
		}
		byFP := s.seen[doc.Spec.Target]
		if byFP == nil {
			byFP = map[string]string{}
			s.seen[doc.Spec.Target] = byFP
		}
		for _, b := range doc.Bugs {
			owner := doc.ID
			if b.Duplicate && b.FirstReportedBy != "" {
				owner = b.FirstReportedBy
			}
			if _, ok := byFP[b.Fingerprint]; !ok {
				byFP[b.Fingerprint] = owner
			}
		}
	}
	sort.Strings(ids)
	s.order = append(s.order, ids...)
	return nil
}
