// Package badplain is an instr test fixture: each function uses a pmplain
// construct the v1 generator deliberately rejects, so Generate over this
// package must fail with one diagnostic per function. The package still
// type-checks — the restrictions are stylistic, not semantic.
package badplain

import (
	"github.com/pmrace-go/pmrace/internal/pmem"
	"github.com/pmrace-go/pmrace/internal/pmplain"
)

// Nested buries a load inside a condition, so its taint label has no
// variable to bind to.
func Nested(t *pmplain.Mem) uint64 {
	if t.Load64(8) != 0 {
		return 1
	}
	return 0
}

// Unsupported calls a pmplain.Mem method with no rt.Thread equivalent.
func Unsupported(t *pmplain.Mem) *pmem.Pool {
	return t.Pool()
}

// PlainAssign binds a load with = instead of :=, so no new variable exists
// for the appended label result.
func PlainAssign(t *pmplain.Mem) uint64 {
	var x uint64
	x = t.Load64(16)
	return x
}
