package instr

import (
	"fmt"
	"sort"
	"strings"
)

// A vlab is a virtual taint-label variable: the label result of one
// label-producing call (Load64, CAS64, ObjPool.Root, or a call to an
// augmented in-package function). During dataflow the generator refers to
// labels by *vlab pointer; concrete names are assigned only after the whole
// function is analyzed, so a label that no downstream edit references
// becomes the blank identifier — exactly the hand idiom `k, _ := t.Load64`.
type vlab struct {
	base string // suggested name stem (the value variable's name)
	used bool   // referenced by at least one emitted term
	name string // assigned after analysis: "<base>Lab" or "_"
}

// A labset is a sorted, duplicate-free set of labels in creation order.
// Creation order is source order, which keeps emitted unions deterministic
// (Union(tableLab, nLab), never the reverse).
type labset []*vlab

func (s labset) union(o labset) labset {
	if len(o) == 0 {
		return s
	}
	out := s
	for _, v := range o {
		found := false
		for _, have := range out {
			if have == v {
				found = true
				break
			}
		}
		if !found {
			out = append(out[:len(out):len(out)], v)
		}
	}
	return out
}

// An edit is one byte-range splice against the original source. Parts are
// literal strings and *vlab references (rendered after naming). Except for
// the freeform end-of-file marker, an edit must preserve the newline count
// of the region it replaces — line-number preservation is the contract that
// makes generated bug fingerprints match the hand-instrumented target.
type edit struct {
	lo, hi   int    // byte offsets into the source; lo==hi inserts
	parts    []any  // string | *vlab
	what     string // human description for error messages
	freeform bool   // exempt from the newline-preservation assertion
}

func (e *edit) render() string {
	var b strings.Builder
	for _, p := range e.parts {
		switch p := p.(type) {
		case string:
			b.WriteString(p)
		case *vlab:
			b.WriteString(p.name)
		default:
			panic(fmt.Sprintf("instr: bad edit part %T", p))
		}
	}
	return b.String()
}

// applyEdits splices the edits into src, enforcing ordering, non-overlap
// and newline preservation.
func applyEdits(src []byte, edits []*edit) ([]byte, error) {
	sorted := append([]*edit(nil), edits...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].lo != sorted[j].lo {
			return sorted[i].lo < sorted[j].lo
		}
		return sorted[i].hi < sorted[j].hi
	})
	var out []byte
	prev := 0
	for _, e := range sorted {
		if e.lo < prev {
			return nil, fmt.Errorf("instr: overlapping edits at byte %d (%s)", e.lo, e.what)
		}
		if e.hi > len(src) || e.lo > e.hi {
			return nil, fmt.Errorf("instr: edit out of range (%s)", e.what)
		}
		text := e.render()
		if !e.freeform {
			if got, want := strings.Count(text, "\n"), strings.Count(string(src[e.lo:e.hi]), "\n"); got != want {
				return nil, fmt.Errorf("instr: edit %q changes line count (%d -> %d newlines); line numbers must be preserved", e.what, want, got)
			}
		}
		out = append(out, src[prev:e.lo]...)
		out = append(out, text...)
		prev = e.hi
	}
	out = append(out, src[prev:]...)
	return out, nil
}
